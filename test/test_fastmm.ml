open Tcmm_fastmm
module S = Tcmm_test_support.Support
module Prng = Tcmm_util.Prng

(* ------------------------------------------------------------------ *)
(* Matrix                                                             *)
(* ------------------------------------------------------------------ *)

let test_matrix_create_get_set () =
  let m = Matrix.create ~rows:2 ~cols:3 in
  S.check_int "zeroed" 0 (Matrix.get m 1 2);
  Matrix.set m 1 2 7;
  S.check_int "set/get" 7 (Matrix.get m 1 2);
  S.check_int "rows" 2 (Matrix.rows m);
  S.check_int "cols" 3 (Matrix.cols m);
  (try
     ignore (Matrix.get m 2 0);
     Alcotest.fail "expected invalid_arg"
   with Invalid_argument _ -> ());
  try
    ignore (Matrix.create ~rows:0 ~cols:1);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_matrix_of_rows () =
  let m = Matrix.of_rows [| [| 1; 2 |]; [| 3; 4 |] |] in
  S.check_int "entry" 3 (Matrix.get m 1 0);
  Alcotest.(check (array (array int))) "round trip" [| [| 1; 2 |]; [| 3; 4 |] |] (Matrix.to_rows m);
  try
    ignore (Matrix.of_rows [| [| 1 |]; [| 1; 2 |] |]);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_matrix_add_sub_scale () =
  let a = Matrix.of_rows [| [| 1; 2 |]; [| 3; 4 |] |] in
  let b = Matrix.of_rows [| [| 5; 6 |]; [| 7; 8 |] |] in
  S.check_bool "add" true
    (Matrix.equal (Matrix.add a b) (Matrix.of_rows [| [| 6; 8 |]; [| 10; 12 |] |]));
  S.check_bool "sub" true
    (Matrix.equal (Matrix.sub b a) (Matrix.of_rows [| [| 4; 4 |]; [| 4; 4 |] |]));
  S.check_bool "scale" true
    (Matrix.equal (Matrix.scale (-2) a) (Matrix.of_rows [| [| -2; -4 |]; [| -6; -8 |] |]))

let test_matrix_mul_identity_assoc () =
  let rng = Prng.create ~seed:1 in
  let a = Matrix.random rng ~rows:4 ~cols:4 ~lo:(-5) ~hi:5 in
  let b = Matrix.random rng ~rows:4 ~cols:4 ~lo:(-5) ~hi:5 in
  let c = Matrix.random rng ~rows:4 ~cols:4 ~lo:(-5) ~hi:5 in
  S.check_bool "I*a = a" true (Matrix.equal (Matrix.mul (Matrix.identity 4) a) a);
  S.check_bool "a*I = a" true (Matrix.equal (Matrix.mul a (Matrix.identity 4)) a);
  S.check_bool "assoc" true
    (Matrix.equal (Matrix.mul (Matrix.mul a b) c) (Matrix.mul a (Matrix.mul b c)))

let test_matrix_mul_known () =
  let a = Matrix.of_rows [| [| 1; 2 |]; [| 3; 4 |] |] in
  let b = Matrix.of_rows [| [| 5; 6 |]; [| 7; 8 |] |] in
  S.check_bool "2x2 product" true
    (Matrix.equal (Matrix.mul a b) (Matrix.of_rows [| [| 19; 22 |]; [| 43; 50 |] |]))

let test_matrix_mul_rectangular () =
  let a = Matrix.of_rows [| [| 1; 2; 3 |] |] in
  let b = Matrix.of_rows [| [| 4 |]; [| 5 |]; [| 6 |] |] in
  S.check_int "1x3 * 3x1" 32 (Matrix.get (Matrix.mul a b) 0 0);
  try
    ignore (Matrix.mul a a);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_matrix_transpose_trace_pow () =
  let a = Matrix.of_rows [| [| 1; 2 |]; [| 3; 4 |] |] in
  S.check_bool "transpose" true
    (Matrix.equal (Matrix.transpose a) (Matrix.of_rows [| [| 1; 3 |]; [| 2; 4 |] |]));
  S.check_int "trace" 5 (Matrix.trace a);
  S.check_bool "pow 0" true (Matrix.equal (Matrix.pow a 0) (Matrix.identity 2));
  S.check_bool "pow 3" true
    (Matrix.equal (Matrix.pow a 3) (Matrix.mul a (Matrix.mul a a)));
  try
    ignore (Matrix.trace (Matrix.create ~rows:1 ~cols:2));
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_matrix_blocks () =
  let m = Matrix.init ~rows:4 ~cols:4 (fun i j -> (10 * i) + j) in
  let blk = Matrix.sub_block m ~row:2 ~col:1 ~rows:2 ~cols:2 in
  S.check_bool "sub_block" true
    (Matrix.equal blk (Matrix.of_rows [| [| 21; 22 |]; [| 31; 32 |] |]));
  let dst = Matrix.create ~rows:4 ~cols:4 in
  Matrix.blit_block ~src:blk ~dst ~row:0 ~col:2;
  S.check_int "blitted" 32 (Matrix.get dst 1 3);
  S.check_int "untouched" 0 (Matrix.get dst 3 3)

let test_matrix_max_abs () =
  S.check_int "max abs" 9
    (Matrix.max_abs (Matrix.of_rows [| [| -9; 2 |]; [| 3; 4 |] |]))

let prop_mul_distributes =
  S.qcheck_case ~count:50 "a(b+c) = ab + ac"
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let m () = Matrix.random rng ~rows:3 ~cols:3 ~lo:(-8) ~hi:8 in
      let a = m () and b = m () and c = m () in
      Matrix.equal (Matrix.mul a (Matrix.add b c)) (Matrix.add (Matrix.mul a b) (Matrix.mul a c)))

(* ------------------------------------------------------------------ *)
(* Bilinear + instances                                               *)
(* ------------------------------------------------------------------ *)

let test_all_instances_exact () =
  List.iter
    (fun algo ->
      S.check_bool (algo.Bilinear.name ^ " satisfies Brent's equations") true
        (Verify.exact algo))
    (Instances.all ())

let test_all_instances_random_check () =
  let rng = Prng.create ~seed:7 in
  List.iter
    (fun algo ->
      S.check_bool (algo.Bilinear.name ^ " random check") true
        (Verify.random_check rng algo))
    (Instances.all ())

let test_defective_algorithm_detected () =
  (* Corrupt one Strassen coefficient: the verifier must notice. *)
  let s = Instances.strassen in
  let u = Array.map Array.copy s.Bilinear.u in
  u.(0).(0) <- -1;
  let bad = Bilinear.make ~name:"bad" ~t_dim:2 ~u ~v:s.Bilinear.v ~w:s.Bilinear.w in
  S.check_bool "defects found" true (Verify.defects bad <> []);
  S.check_bool "not exact" false (Verify.exact bad)

let test_strassen_shape () =
  let s = Instances.strassen in
  S.check_int "T" 2 s.Bilinear.t_dim;
  S.check_int "r" 7 s.Bilinear.rank;
  Alcotest.(check (float 1e-6)) "omega" (log 7. /. log 2.) (Bilinear.omega s)

let test_naive_shape () =
  let n3 = Instances.naive ~t_dim:3 in
  S.check_int "r = 27" 27 n3.Bilinear.rank;
  Alcotest.(check (float 1e-9)) "omega = 3" 3. (Bilinear.omega n3)

let test_apply_once_matches_mul () =
  let rng = Prng.create ~seed:3 in
  List.iter
    (fun algo ->
      let n = 2 * algo.Bilinear.t_dim in
      let a = Matrix.random rng ~rows:n ~cols:n ~lo:(-6) ~hi:6 in
      let b = Matrix.random rng ~rows:n ~cols:n ~lo:(-6) ~hi:6 in
      S.check_bool (algo.Bilinear.name ^ " apply_once") true
        (Matrix.equal (Bilinear.apply_once algo a b) (Matrix.mul a b)))
    (Instances.all ())

let test_multiply_recursive () =
  let rng = Prng.create ~seed:4 in
  List.iter
    (fun (algo, n) ->
      let a = Matrix.random rng ~rows:n ~cols:n ~lo:(-5) ~hi:5 in
      let b = Matrix.random rng ~rows:n ~cols:n ~lo:(-5) ~hi:5 in
      S.check_bool
        (Printf.sprintf "%s recursive n=%d" algo.Bilinear.name n)
        true
        (Matrix.equal (Bilinear.multiply algo a b) (Matrix.mul a b)))
    [
      (Instances.strassen, 8);
      (Instances.strassen, 16);
      (Instances.winograd, 8);
      (Instances.naive ~t_dim:3, 9);
      (Instances.strassen_squared, 16);
    ]

let test_multiply_cutoff () =
  let rng = Prng.create ~seed:5 in
  let a = Matrix.random rng ~rows:16 ~cols:16 ~lo:(-4) ~hi:4 in
  let b = Matrix.random rng ~rows:16 ~cols:16 ~lo:(-4) ~hi:4 in
  let expect = Matrix.mul a b in
  List.iter
    (fun cutoff ->
      S.check_bool
        (Printf.sprintf "cutoff %d" cutoff)
        true
        (Matrix.equal (Bilinear.multiply ~cutoff Instances.strassen a b) expect))
    [ 1; 2; 4; 8; 16 ]

let test_multiply_rejects_bad_size () =
  let a = Matrix.create ~rows:6 ~cols:6 in
  try
    ignore (Bilinear.multiply Instances.strassen a a);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_scalar_multiplications () =
  (* Strassen on 8x8 with cutoff 1: 7^3 = 343 scalar products. *)
  S.check_int "7^3" 343
    (Bilinear.scalar_multiplications Instances.strassen ~n:8 ~cutoff:1);
  (* Cutoff 2: 7^2 * 2^3 = 392. *)
  S.check_int "7^2*8" 392
    (Bilinear.scalar_multiplications Instances.strassen ~n:8 ~cutoff:2);
  (* Naive 2: 8^3 * 1 = 512 at cutoff 1. *)
  S.check_int "naive cubed" 512
    (Bilinear.scalar_multiplications (Instances.naive ~t_dim:2) ~n:8 ~cutoff:1)

let test_block_index_roundtrip () =
  let s = Instances.strassen in
  for p = 0 to 1 do
    for q = 0 to 1 do
      let j = Bilinear.block_index s p q in
      Alcotest.(check (pair int int)) "roundtrip" (p, q) (Bilinear.block_pos s j)
    done
  done

(* ------------------------------------------------------------------ *)
(* Tensor                                                             *)
(* ------------------------------------------------------------------ *)

let test_tensor_shapes () =
  let sq = Instances.strassen_squared in
  S.check_int "T = 4" 4 sq.Bilinear.t_dim;
  S.check_int "r = 49" 49 sq.Bilinear.rank;
  Alcotest.(check (float 1e-9)) "same omega" (Bilinear.omega Instances.strassen)
    (Bilinear.omega sq)

let test_tensor_mixed_exact () =
  let mixed = Tensor.product ~name:"strassen x naive2" Instances.strassen (Instances.naive ~t_dim:2) in
  S.check_int "T" 4 mixed.Bilinear.t_dim;
  S.check_int "r" 56 mixed.Bilinear.rank;
  S.check_bool "exact" true (Verify.exact mixed)

let test_tensor_power () =
  let cube = Tensor.power ~name:"strassen^3" Instances.strassen 3 in
  S.check_int "T = 8" 8 cube.Bilinear.t_dim;
  S.check_int "r = 343" 343 cube.Bilinear.rank;
  S.check_bool "exact" true (Verify.exact cube);
  try
    ignore (Tensor.power ~name:"zero" Instances.strassen 0);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_laderman_shape () =
  let l = Instances.laderman in
  S.check_int "T = 3" 3 l.Bilinear.t_dim;
  S.check_int "r = 23" 23 l.Bilinear.rank;
  let p = Sparsity.analyze l in
  S.check_int "s_A = 51" 51 p.Sparsity.a.Sparsity.total;
  S.check_int "s_B = 51" 51 p.Sparsity.b.Sparsity.total;
  S.check_int "s_C = 51" 51 p.Sparsity.c.Sparsity.total;
  (* omega = log_3 23 ~ 2.854: subcubic, strictly between naive-3 and
     Strassen. *)
  let omega = Bilinear.omega l in
  S.check_bool "omega < 3" true (omega < 3.0);
  S.check_bool "omega > strassen's" true (omega > Bilinear.omega Instances.strassen)

let test_strassen_squared_is_generic_kronecker () =
  (* Regression for the PR that replaced the bespoke strassen^2 tables
     with Bilinear.kronecker: the generic construction and Tensor.product
     must agree coefficient-for-coefficient. *)
  let sq = Instances.strassen_squared in
  let via_tensor =
    Tensor.product ~name:sq.Bilinear.name Instances.strassen Instances.strassen
  in
  S.check_int "same T" via_tensor.Bilinear.t_dim sq.Bilinear.t_dim;
  S.check_int "same rank" via_tensor.Bilinear.rank sq.Bilinear.rank;
  Alcotest.(check (array (array int))) "same u" via_tensor.Bilinear.u sq.Bilinear.u;
  Alcotest.(check (array (array int))) "same v" via_tensor.Bilinear.v sq.Bilinear.v;
  Alcotest.(check (array (array int))) "same w" via_tensor.Bilinear.w sq.Bilinear.w

(* ------------------------------------------------------------------ *)
(* Kronpow                                                            *)
(* ------------------------------------------------------------------ *)

(* Every split of a delta-step computes the same child matrices as the
   flat expansion — the factoring algebra itself, with no circuits. *)
let prop_kronpow_apply_plan_equivalence =
  S.qcheck_case ~count:40 "kronpow: all plans compute the same children"
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let pick l = List.nth l (Prng.int rng ~bound:(List.length l)) in
      let algo =
        pick [ Instances.strassen; Instances.winograd; Instances.naive ~t_dim:2 ]
      in
      let t_dim = algo.Bilinear.t_dim in
      (* w is T^2 x r; the sum tree consumes its transpose. *)
      let w_t =
        Array.init algo.Bilinear.rank (fun i ->
            Array.init (t_dim * t_dim) (fun j -> algo.Bilinear.w.(j).(i)))
      in
      let coeffs = pick [ algo.Bilinear.u; algo.Bilinear.v; w_t ] in
      let delta = 2 in
      let size = t_dim * t_dim * pick [ 1; 2 ] in
      let m = Matrix.random rng ~rows:size ~cols:size ~lo:(-9) ~hi:9 in
      let flat = Kronpow.apply ~coeffs ~t_dim ~delta ~plan:Kronpow.Flat m in
      List.for_all
        (fun d1 ->
          let split =
            Kronpow.apply ~coeffs ~t_dim ~delta ~plan:(Kronpow.Split { d1 }) m
          in
          Array.length split = Array.length flat
          && Array.for_all2 (fun a b -> Matrix.equal a b) flat split)
        (Kronpow.splits ~delta))

let prop_kronpow_apply_laderman_delta2 =
  S.qcheck_case ~count:10 "kronpow: laderman delta-2 split equivalence"
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let algo = Instances.laderman in
      let coeffs = algo.Bilinear.u in
      let m = Matrix.random rng ~rows:9 ~cols:9 ~lo:(-4) ~hi:4 in
      let flat = Kronpow.apply ~coeffs ~t_dim:3 ~delta:2 ~plan:Kronpow.Flat m in
      let split =
        Kronpow.apply ~coeffs ~t_dim:3 ~delta:2 ~plan:(Kronpow.Split { d1 = 1 }) m
      in
      Array.for_all2 (fun a b -> Matrix.equal a b) flat split)

let test_kronpow_choose_prefers_flat_on_tie () =
  S.check_bool "empty splits" true (Kronpow.choose ~flat:10 ~splits:[] = Kronpow.Flat);
  S.check_bool "tie" true
    (Kronpow.choose ~flat:10 ~splits:[ (1, 10) ] = Kronpow.Flat);
  S.check_bool "strict win" true
    (Kronpow.choose ~flat:10 ~splits:[ (1, 11); (2, 9) ] = Kronpow.Split { d1 = 2 });
  S.check_int "splits of 3" 2 (List.length (Kronpow.splits ~delta:3))

(* ------------------------------------------------------------------ *)
(* Sparsity                                                           *)
(* ------------------------------------------------------------------ *)

let test_strassen_sparsity_paper_constants () =
  let p = Sparsity.analyze Instances.strassen in
  S.check_int "s_A = 12" 12 p.Sparsity.a.Sparsity.total;
  S.check_int "s_B = 12" 12 p.Sparsity.b.Sparsity.total;
  S.check_int "s_C = 12" 12 p.Sparsity.c.Sparsity.total;
  S.check_int "s = 12" 12 p.Sparsity.sparsity;
  (* Paper, Section 4.3: alpha = 7/12, beta = 3; gamma ~ 0.491;
     Theorem 4.5: c ~ 1.585.  Appendix: c'_j = 4, 2, 2, 4. *)
  Alcotest.(check (float 1e-9)) "alpha" (7. /. 12.) p.Sparsity.overall.Sparsity.alpha;
  Alcotest.(check (float 1e-9)) "beta" 3. p.Sparsity.overall.Sparsity.beta;
  Alcotest.(check (float 1e-3)) "gamma ~ 0.491" 0.491 p.Sparsity.overall.Sparsity.gamma;
  Alcotest.(check (float 1e-3)) "c ~ 1.585" 1.585 p.Sparsity.c_const;
  Alcotest.(check (array int)) "c'_j" [| 4; 2; 2; 4 |] p.Sparsity.c_prime

let test_strassen_per_multiplication_counts () =
  let p = Sparsity.analyze Instances.strassen in
  (* From Figure 1: a_i = 1,2,2,1,2,2,2 and b_i = 2,1,2,2,1,2,2. *)
  Alcotest.(check (array int)) "a_i" [| 1; 2; 2; 1; 2; 2; 2 |] p.Sparsity.a.Sparsity.counts;
  Alcotest.(check (array int)) "b_i" [| 2; 1; 2; 2; 1; 2; 2 |] p.Sparsity.b.Sparsity.counts;
  (* c_i: how many C-expressions mention M_i: M1:2 M2:2 M3:2 M4:2 M5:2 M6:1 M7:1. *)
  Alcotest.(check (array int)) "c_i" [| 2; 2; 2; 2; 2; 1; 1 |] p.Sparsity.c.Sparsity.counts

let test_winograd_sparsity_worse () =
  let s = Sparsity.analyze Instances.strassen in
  let w = Sparsity.analyze Instances.winograd in
  S.check_bool "winograd sparser... no: larger s" true
    (w.Sparsity.sparsity > s.Sparsity.sparsity);
  S.check_bool "winograd larger gamma" true
    (w.Sparsity.overall.Sparsity.gamma > s.Sparsity.overall.Sparsity.gamma)

let test_naive_sparsity_degenerate () =
  let p = Sparsity.analyze (Instances.naive ~t_dim:2) in
  Alcotest.(check (float 1e-9)) "alpha = 1" 1. p.Sparsity.overall.Sparsity.alpha;
  Alcotest.(check (float 1e-9)) "gamma = 0" 0. p.Sparsity.overall.Sparsity.gamma

let test_tensor_square_sparsity_squares () =
  let s = Sparsity.analyze Instances.strassen in
  let sq = Sparsity.analyze Instances.strassen_squared in
  (* Sparsity multiplies under tensor product: 12^2 = 144; gamma is
     preserved because both alpha and beta square. *)
  S.check_int "s squared" (12 * 12) sq.Sparsity.sparsity;
  Alcotest.(check (float 1e-9)) "same gamma" s.Sparsity.overall.Sparsity.gamma
    sq.Sparsity.overall.Sparsity.gamma

let test_sparsity_rejects_r_le_t2 () =
  try
    ignore (Sparsity.analyze (Instances.naive ~t_dim:1));
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let prop_tensor_product_correct_and_multiplicative =
  S.qcheck_case ~count:20 "tensor products verify; sparsity multiplies"
    QCheck2.Gen.(pair (int_range 0 2) (int_range 0 2))
    (fun (i, j) ->
      let base = [| Instances.strassen; Instances.winograd; Instances.naive ~t_dim:2 |] in
      let a = base.(i) and b = base.(j) in
      let prod = Tensor.product ~name:"p" a b in
      let ok_exact = Verify.exact prod in
      let sp p =
        match Sparsity.analyze p with
        | profile -> Some profile.Sparsity.sparsity
        | exception Invalid_argument _ -> None
      in
      let ok_sparsity =
        match (sp a, sp b, sp prod) with
        | Some sa, Some sb, Some sp -> sp = sa * sb
        | _ -> true (* naive factors can make r <= T^2 analyses unavailable *)
      in
      ok_exact && ok_sparsity)

let prop_recursive_multiply_random =
  S.qcheck_case ~count:30 "recursive fast multiply = naive multiply"
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 0 2))
    (fun (seed, pick) ->
      let rng = Prng.create ~seed in
      let algo = [| Instances.strassen; Instances.winograd; Instances.naive ~t_dim:2 |].(pick) in
      let l = 1 + Prng.int rng ~bound:3 in
      let n = 1 lsl l in
      let a = Matrix.random rng ~rows:n ~cols:n ~lo:(-9) ~hi:9 in
      let b = Matrix.random rng ~rows:n ~cols:n ~lo:(-9) ~hi:9 in
      let cutoff = 1 lsl Prng.int rng ~bound:(l + 1) in
      Matrix.equal (Bilinear.multiply ~cutoff algo a b) (Matrix.mul a b))

let prop_trace_of_product_cyclic =
  S.qcheck_case ~count:30 "trace(AB) = trace(BA)"
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let n = 2 + Prng.int rng ~bound:5 in
      let a = Matrix.random rng ~rows:n ~cols:n ~lo:(-9) ~hi:9 in
      let b = Matrix.random rng ~rows:n ~cols:n ~lo:(-9) ~hi:9 in
      Matrix.trace (Matrix.mul a b) = Matrix.trace (Matrix.mul b a))

(* ------------------------------------------------------------------ *)
(* Orbit                                                              *)
(* ------------------------------------------------------------------ *)

let identity2 = [| [| 1; 0 |]; [| 0; 1 |] |]

let test_orbit_unimodular_set () =
  let mats = Orbit.unimodular_2x2 () in
  S.check_int "40 small unimodular matrices" 40 (List.length mats);
  List.iter
    (fun m ->
      let det = (m.(0).(0) * m.(1).(1)) - (m.(0).(1) * m.(1).(0)) in
      S.check_bool "det +-1" true (det = 1 || det = -1))
    mats

let test_orbit_identity_transform () =
  let t = Orbit.transform Instances.strassen ~x:identity2 ~y:identity2 ~z:identity2 in
  Alcotest.(check (array (array int))) "u unchanged" Instances.strassen.Bilinear.u t.Bilinear.u;
  Alcotest.(check (array (array int))) "v unchanged" Instances.strassen.Bilinear.v t.Bilinear.v;
  Alcotest.(check (array (array int))) "w unchanged" Instances.strassen.Bilinear.w t.Bilinear.w

let prop_orbit_transforms_verify =
  S.qcheck_case ~count:50 "sandwiched algorithms satisfy Brent's equations"
    QCheck2.Gen.(triple (int_range 0 39) (int_range 0 39) (int_range 0 39))
    (fun (i, j, k) ->
      let mats = Array.of_list (Orbit.unimodular_2x2 ()) in
      let t =
        Orbit.transform Instances.strassen ~x:mats.(i) ~y:mats.(j) ~z:mats.(k)
      in
      Verify.exact t)

let test_orbit_search_strassen_sample () =
  (* A bounded search must find nothing below 12 (the full search in the
     E15 bench confirms optimality over the whole orbit). *)
  let r = Orbit.search ~limit:2000 Instances.strassen in
  S.check_int "tried" 2000 r.Orbit.triples_tried;
  S.check_int "sparsity stays 12" 12 r.Orbit.sparsity;
  S.check_bool "not better" false r.Orbit.better_than_start;
  S.check_bool "result verifies" true (Verify.exact r.Orbit.algorithm)

let test_orbit_search_rejects_non_2x2 () =
  try
    ignore (Orbit.search (Instances.naive ~t_dim:3));
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_orbit_transformed_circuits_work () =
  (* A transformed algorithm must drive the circuit compiler unchanged. *)
  let mats = Array.of_list (Orbit.unimodular_2x2 ()) in
  let algo = Orbit.transform Instances.strassen ~x:mats.(7) ~y:mats.(13) ~z:mats.(29) in
  let rng = Prng.create ~seed:55 in
  let a = Matrix.random rng ~rows:4 ~cols:4 ~lo:(-3) ~hi:3 in
  let b = Matrix.random rng ~rows:4 ~cols:4 ~lo:(-3) ~hi:3 in
  S.check_bool "recursive multiply" true
    (Matrix.equal (Bilinear.multiply algo a b) (Matrix.mul a b))

let () =
  Alcotest.run "tcmm_fastmm"
    [
      ( "matrix",
        [
          Alcotest.test_case "create/get/set" `Quick test_matrix_create_get_set;
          Alcotest.test_case "of_rows" `Quick test_matrix_of_rows;
          Alcotest.test_case "add/sub/scale" `Quick test_matrix_add_sub_scale;
          Alcotest.test_case "identity/assoc" `Quick test_matrix_mul_identity_assoc;
          Alcotest.test_case "known product" `Quick test_matrix_mul_known;
          Alcotest.test_case "rectangular" `Quick test_matrix_mul_rectangular;
          Alcotest.test_case "transpose/trace/pow" `Quick test_matrix_transpose_trace_pow;
          Alcotest.test_case "blocks" `Quick test_matrix_blocks;
          Alcotest.test_case "max_abs" `Quick test_matrix_max_abs;
          prop_mul_distributes;
        ] );
      ( "bilinear",
        [
          Alcotest.test_case "all instances exact" `Quick test_all_instances_exact;
          Alcotest.test_case "all instances random" `Quick test_all_instances_random_check;
          Alcotest.test_case "defect detection" `Quick test_defective_algorithm_detected;
          Alcotest.test_case "strassen shape" `Quick test_strassen_shape;
          Alcotest.test_case "naive shape" `Quick test_naive_shape;
          Alcotest.test_case "apply_once" `Quick test_apply_once_matches_mul;
          Alcotest.test_case "recursive multiply" `Quick test_multiply_recursive;
          Alcotest.test_case "cutoffs" `Quick test_multiply_cutoff;
          Alcotest.test_case "bad size" `Quick test_multiply_rejects_bad_size;
          Alcotest.test_case "scalar mult count" `Quick test_scalar_multiplications;
          Alcotest.test_case "block index" `Quick test_block_index_roundtrip;
        ] );
      ( "tensor",
        [
          Alcotest.test_case "shapes" `Quick test_tensor_shapes;
          Alcotest.test_case "mixed product" `Quick test_tensor_mixed_exact;
          Alcotest.test_case "power" `Quick test_tensor_power;
          Alcotest.test_case "laderman shape" `Quick test_laderman_shape;
          Alcotest.test_case "strassen^2 = generic kronecker" `Quick
            test_strassen_squared_is_generic_kronecker;
        ] );
      ( "kronpow",
        [
          prop_kronpow_apply_plan_equivalence;
          prop_kronpow_apply_laderman_delta2;
          Alcotest.test_case "choose/splits" `Quick
            test_kronpow_choose_prefers_flat_on_tie;
        ] );
      ( "properties",
        [
          prop_tensor_product_correct_and_multiplicative;
          prop_recursive_multiply_random;
          prop_trace_of_product_cyclic;
        ] );
      ( "orbit",
        [
          Alcotest.test_case "unimodular set" `Quick test_orbit_unimodular_set;
          Alcotest.test_case "identity transform" `Quick test_orbit_identity_transform;
          prop_orbit_transforms_verify;
          Alcotest.test_case "search sample" `Quick test_orbit_search_strassen_sample;
          Alcotest.test_case "rejects non-2x2" `Quick test_orbit_search_rejects_non_2x2;
          Alcotest.test_case "transformed circuits" `Quick test_orbit_transformed_circuits_work;
        ] );
      ( "sparsity",
        [
          Alcotest.test_case "strassen paper constants" `Quick
            test_strassen_sparsity_paper_constants;
          Alcotest.test_case "strassen per-M counts" `Quick
            test_strassen_per_multiplication_counts;
          Alcotest.test_case "winograd worse" `Quick test_winograd_sparsity_worse;
          Alcotest.test_case "naive degenerate" `Quick test_naive_sparsity_degenerate;
          Alcotest.test_case "tensor square" `Quick test_tensor_square_sparsity_squares;
          Alcotest.test_case "rejects r <= T^2" `Quick test_sparsity_rejects_r_le_t2;
        ] );
    ]
