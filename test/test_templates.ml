(* Template-stamped construction: stamped circuits must be gate-for-gate
   identical to the legacy (template-free) builder in every mode, on
   every standard schedule, for every circuit family that routes through
   [Builder.templated]. *)

open Tcmm
open Tcmm_fastmm
open Tcmm_threshold
module Prng = Tcmm_util.Prng

let strassen = Instances.strassen

let schedule ~name ~n = Level_schedule.resolve ~algo:strassen ~name ~d:2 ~n

let gate_equal (a : Gate.t) (b : Gate.t) =
  a.Gate.inputs = b.Gate.inputs
  && a.Gate.weights = b.Gate.weights
  && a.Gate.threshold = b.Gate.threshold

let check_circuit_equal label (a : Circuit.t) (b : Circuit.t) =
  Alcotest.(check int) (label ^ ": num_inputs") a.Circuit.num_inputs b.Circuit.num_inputs;
  Alcotest.(check int)
    (label ^ ": num_gates")
    (Array.length a.Circuit.gates)
    (Array.length b.Circuit.gates);
  Alcotest.(check (array int)) (label ^ ": outputs") a.Circuit.outputs b.Circuit.outputs;
  Array.iteri
    (fun g ga ->
      if not (gate_equal ga b.Circuit.gates.(g)) then
        Alcotest.failf "%s: gate %d differs" label g)
    a.Circuit.gates;
  Alcotest.(check (array int)) (label ^ ": depths") a.Circuit.depths b.Circuit.depths

let build_matmul ~mode ~templates ~sched ~n =
  Matmul_circuit.build ~mode ~templates ~algo:strassen ~schedule:sched
    ~entry_bits:1 ~n ()

(* Tentpole invariant: with templates on, the materialized circuit is
   byte-identical to the legacy builder's, across all four standard
   schedules at N in {4, 8}. *)
let test_matmul_stamped_identical () =
  List.iter
    (fun (algo, sizes) ->
      List.iter
        (fun n ->
          List.iter
            (fun name ->
              let sched = Level_schedule.resolve ~algo ~name ~d:2 ~n in
              let build templates =
                Matmul_circuit.build ~mode:Builder.Materialize ~templates ~algo
                  ~schedule:sched ~entry_bits:1 ~n ()
              in
              let legacy = build false and stamped = build true in
              check_circuit_equal
                (Printf.sprintf "matmul %s N=%d %s" algo.Bilinear.name n name)
                (Option.get legacy.Matmul_circuit.circuit)
                (Option.get stamped.Matmul_circuit.circuit))
            Level_schedule.standard_names)
        sizes)
    [ (strassen, [ 4; 8 ]); (Instances.laderman, [ 3; 9 ]) ]

let test_trace_stamped_identical () =
  List.iter
    (fun name ->
      let n = 4 in
      let sched = schedule ~name ~n in
      let build templates =
        Trace_circuit.build ~mode:Builder.Materialize ~templates ~algo:strassen
          ~schedule:sched ~entry_bits:1 ~tau:(n * n) ~n ()
      in
      let legacy = build false and stamped = build true in
      check_circuit_equal
        (Printf.sprintf "trace N=4 %s" name)
        (Option.get legacy.Trace_circuit.circuit)
        (Option.get stamped.Trace_circuit.circuit))
    Level_schedule.standard_names

(* Direct mode: the packed form's lazily materialized Circuit.t must
   equal the legacy circuit too — the arena lowering and the gate
   materialization agree. *)
let test_direct_lazy_circuit_identical () =
  let n = 4 in
  let sched = schedule ~name:"thm45" ~n in
  let legacy = build_matmul ~mode:Builder.Materialize ~templates:false ~sched ~n in
  let direct = build_matmul ~mode:Builder.Direct ~templates:true ~sched ~n in
  let packed = Matmul_circuit.pack direct in
  check_circuit_equal "direct lazy circuit"
    (Option.get legacy.Matmul_circuit.circuit)
    (Packed.circuit packed)

(* Stats agree between all modes with templates on and off. *)
let test_count_only_stats_equal () =
  List.iter
    (fun n ->
      let sched = schedule ~name:"thm45" ~n in
      let stats mode templates =
        Builder.stats (build_matmul ~mode ~templates ~sched ~n).Matmul_circuit.builder
      in
      let reference = stats Builder.Materialize false in
      List.iter
        (fun (mode, templates) ->
          Alcotest.(check bool)
            (Printf.sprintf "stats N=%d" n)
            true
            (stats mode templates = reference))
        [
          (Builder.Materialize, true);
          (Builder.Count_only, false);
          (Builder.Count_only, true);
          (Builder.Direct, true);
        ])
    [ 4; 8 ]

(* Stamped circuits compute the right answer end-to-end, in both
   Materialize and Direct modes. *)
let test_stamped_run_agrees () =
  let rng = Prng.create ~seed:7 in
  let n = 4 in
  let sched = schedule ~name:"thm45" ~n in
  let stamped = build_matmul ~mode:Builder.Materialize ~templates:true ~sched ~n in
  let direct = build_matmul ~mode:Builder.Direct ~templates:true ~sched ~n in
  for _ = 1 to 5 do
    let a = Matrix.random rng ~rows:n ~cols:n ~lo:0 ~hi:1 in
    let b = Matrix.random rng ~rows:n ~cols:n ~lo:0 ~hi:1 in
    let expect = Matrix.mul a b in
    Alcotest.(check bool) "stamped run" true
      (Matrix.equal (Matmul_circuit.run stamped ~a ~b) expect);
    Alcotest.(check bool) "direct run" true
      (Matrix.equal (Matmul_circuit.run direct ~a ~b) expect)
  done

(* The naive and tiled families route through the same template layer;
   their stats must be invariant under templates on/off as well. *)
let test_naive_tiled_stats_equal () =
  let naive templates =
    Builder.stats
      (Naive_circuits.matmul ~templates ~entry_bits:1 ~n:3 ()).Naive_circuits.builder
  in
  Alcotest.(check bool) "naive matmul stats" true (naive true = naive false);
  let trace templates =
    Builder.stats
      (Naive_circuits.trace_threshold ~templates ~entry_bits:1 ~tau:4 ~n:3 ())
        .Naive_circuits.builder
  in
  Alcotest.(check bool) "naive trace stats" true (trace true = trace false);
  let sched = schedule ~name:"thm45" ~n:4 in
  let tiled templates =
    Tiled_matmul.stats
      (Tiled_matmul.build ~templates ~algo:strassen ~schedule:sched ~entry_bits:1
         ~rows:4 ~inner:4 ~cols:8 ())
  in
  Alcotest.(check bool) "tiled stats" true (tiled true = tiled false)

(* Kernel differential: for every standard schedule, both a fast and a
   naive bilinear algorithm, and N in {4, 8}, the kernelized batch
   (Direct arena, template-specialized kernels) must be bit-identical —
   outputs, firings, level firings — to the kernel-free batch over the
   same packed lowering, decode to the integer product, and (at N=4)
   match the gate-at-a-time Simulator. *)
let test_kernel_differential () =
  let rng = Prng.create ~seed:19 in
  List.iter
    (fun (algo, sizes) ->
      List.iter
        (fun n ->
          List.iter
            (fun name ->
              let label =
                Printf.sprintf "%s/%s N=%d" algo.Bilinear.name name n
              in
              let sched = Level_schedule.resolve ~algo ~name ~d:2 ~n in
              let build () =
                Matmul_circuit.build ~mode:Builder.Direct ~algo ~schedule:sched
                  ~entry_bits:1 ~n ()
              in
              let built_k = build () and built_g = build () in
              let p_k = Matmul_circuit.pack built_k in
              let p_g = Matmul_circuit.pack ~kernels:false built_g in
              let cov = Packed.coverage p_k in
              Alcotest.(check bool)
                (label ^ ": kernels cover some segments")
                true
                (cov.Packed.kernel_segments > 0);
              Alcotest.(check int)
                (label ^ ": no-kernels is all-fallback")
                0 (Packed.coverage p_g).Packed.kernel_segments;
              let lanes = 4 in
              let pairs =
                Array.init lanes (fun _ ->
                    ( Matrix.random rng ~rows:n ~cols:n ~lo:0 ~hi:1,
                      Matrix.random rng ~rows:n ~cols:n ~lo:0 ~hi:1 ))
              in
              let inputs =
                Array.map
                  (fun (a, b) -> Matmul_circuit.encode_inputs built_k ~a ~b)
                  pairs
              in
              let bk = Packed.run_batch p_k inputs in
              let bg = Packed.run_batch p_g inputs in
              for lane = 0 to lanes - 1 do
                Alcotest.(check bool)
                  (label ^ ": outputs kernel = generic")
                  true
                  (Packed.batch_outputs bk ~lane = Packed.batch_outputs bg ~lane);
                Alcotest.(check int)
                  (label ^ ": firings kernel = generic")
                  (Packed.batch_firings bg ~lane)
                  (Packed.batch_firings bk ~lane);
                Alcotest.(check bool)
                  (label ^ ": level firings kernel = generic")
                  true
                  (Packed.batch_level_firings bk ~lane
                  = Packed.batch_level_firings bg ~lane);
                let a, b = pairs.(lane) in
                Alcotest.(check bool)
                  (label ^ ": decodes to the product")
                  true
                  (Matrix.equal
                     (Matmul_circuit.decode built_k (fun w ->
                          Packed.batch_value bk ~lane w))
                     (Matrix.mul a b))
              done;
              if n <= 4 then begin
                let r = Simulator.run (Packed.circuit p_k) inputs.(0) in
                Alcotest.(check bool)
                  (label ^ ": Simulator agrees with kernel lane 0")
                  true
                  (Packed.batch_outputs bk ~lane:0 = r.Simulator.outputs
                  && Packed.batch_firings bk ~lane:0 = r.Simulator.firings)
              end)
            Level_schedule.standard_names)
        sizes)
    (* The cross-algorithm matrix: base-2, base-3 and base-4 algorithms,
       each at its native sizes. *)
    [
      (strassen, [ 4; 8 ]);
      (Instances.naive ~t_dim:2, [ 4; 8 ]);
      (Instances.winograd, [ 4 ]);
      (Instances.laderman, [ 3; 9 ]);
      (Instances.strassen_squared, [ 4; 16 ]);
    ]

(* The E19 certifier checks template-built circuits (templates are the
   construction default) against the counting DP, the depth model and
   the theorem bounds. *)
let test_certifier_over_templates () =
  List.iter
    (fun (kind, algo, schedule, n, tau) ->
      let spec =
        {
          Tcmm_check.Certify.kind;
          algo;
          schedule;
          d = 2;
          n;
          entry_bits = 1;
          signed = false;
          tau;
        }
      in
      let cert = Tcmm_check.Certify.certify ~samples:2 ~seed:11 spec in
      if not (Tcmm_check.Certify.ok cert) then
        Alcotest.failf "certifier failed (%s %s n=%d): %s" algo schedule n
          (Tcmm_check.Certify.to_json cert))
    [
      (Tcmm_check.Case.Matmul, "strassen", "thm45", 4, 0);
      (Tcmm_check.Case.Matmul, "laderman", "thm45", 9, 0);
      (Tcmm_check.Case.Matmul, "laderman", "direct", 9, 0);
      (Tcmm_check.Case.Trace, "laderman", "thm44", 9, 5);
      (Tcmm_check.Case.Matmul, "strassen^2", "thm45", 16, 0);
      (Tcmm_check.Case.Trace, "winograd", "thm45", 4, 3);
    ]

(* The differential fuzzer drives template-built circuits against the
   integer reference across random specs. *)
let test_fuzzer_over_templates () =
  let outcome = Tcmm_check.Fuzz.run ~seed:3 ~cases:6 () in
  Alcotest.(check int) "fuzz cases" 6 outcome.Tcmm_check.Fuzz.tested;
  match outcome.Tcmm_check.Fuzz.failures with
  | [] -> ()
  | f :: _ -> Alcotest.failf "fuzz failure: %s" f.Tcmm_check.Fuzz.message

(* Kronpow rewrite over built circuits: on every matrix-of-algorithms
   config with a multi-level step, the kronpow arm must (a) compute
   bit-identical products, and (b) never exceed the flat arm's
   gates + edges.  The strassen configs are known to factor (strict
   decrease) — assert that too, so a planner regression that silently
   stops factoring fails the suite. *)
let kronpow_size kronpow ~mode ~algo ~sched ~entry_bits ~n =
  let built =
    Matmul_circuit.build ~mode ~signed_inputs:true ~kronpow ~algo ~schedule:sched
      ~entry_bits ~n ()
  in
  let s = Builder.stats built.Matmul_circuit.builder in
  (s.Stats.gates + s.Stats.edges, built)

let test_kronpow_value_and_size () =
  let rng = Prng.create ~seed:23 in
  List.iter
    (fun (algo, n, entry_bits, sname, expect_strict) ->
      let label = Printf.sprintf "%s/%s N=%d b=%d" algo.Bilinear.name sname n entry_bits in
      let sched = Level_schedule.resolve ~algo ~name:sname ~d:1 ~n in
      let size_flat, flat =
        kronpow_size false ~mode:Builder.Materialize ~algo ~sched ~entry_bits ~n
      in
      let size_kron, kron =
        kronpow_size true ~mode:Builder.Materialize ~algo ~sched ~entry_bits ~n
      in
      Alcotest.(check bool)
        (label ^ ": gates+edges never increase")
        true (size_kron <= size_flat);
      if expect_strict then
        Alcotest.(check bool) (label ^ ": strictly smaller") true (size_kron < size_flat);
      let hi = max 1 ((1 lsl (entry_bits - 1)) - 1) in
      for _ = 1 to 3 do
        let a = Matrix.random rng ~rows:n ~cols:n ~lo:(-hi) ~hi in
        let b = Matrix.random rng ~rows:n ~cols:n ~lo:(-hi) ~hi in
        let expect = Matrix.mul a b in
        Alcotest.(check bool)
          (label ^ ": kronpow value = product")
          true
          (Matrix.equal (Matmul_circuit.run kron ~a ~b) expect);
        Alcotest.(check bool)
          (label ^ ": flat value = product")
          true
          (Matrix.equal (Matmul_circuit.run flat ~a ~b) expect)
      done)
    [ (strassen, 4, 3, "direct", true); (Instances.laderman, 9, 2, "direct", false) ]

(* Heavier matrix points: compare sizes only, in Count_only mode (no
   materialization) — the width-gated planner must stay monotone on the
   dense algorithms too. *)
let test_kronpow_size_counts () =
  List.iter
    (fun (algo, n, entry_bits, sname, expect_strict) ->
      let label = Printf.sprintf "%s/%s N=%d b=%d" algo.Bilinear.name sname n entry_bits in
      let sched = Level_schedule.resolve ~algo ~name:sname ~d:1 ~n in
      let size kronpow =
        fst (kronpow_size kronpow ~mode:Builder.Count_only ~algo ~sched ~entry_bits ~n)
      in
      let size_flat = size false and size_kron = size true in
      Alcotest.(check bool)
        (label ^ ": gates+edges never increase")
        true (size_kron <= size_flat);
      if expect_strict then
        Alcotest.(check bool) (label ^ ": strictly smaller") true (size_kron < size_flat))
    [
      (strassen, 8, 3, "thm45", true);
      (Instances.winograd, 8, 2, "direct", false);
      (Instances.laderman, 9, 4, "direct", true);
      (Instances.strassen_squared, 16, 2, "direct", true);
    ]

(* The trace circuit threads kronpow through all three sum trees. *)
let test_kronpow_trace_value () =
  let rng = Prng.create ~seed:29 in
  let algo = strassen in
  let n = 4 in
  let sched = Level_schedule.resolve ~algo ~name:"direct" ~d:1 ~n in
  let tau = 3 in
  let build kronpow =
    Trace_circuit.build ~kronpow ~algo ~schedule:sched ~entry_bits:1 ~tau ~n ()
  in
  let flat = build false and kron = build true in
  for _ = 1 to 8 do
    let m = Matrix.random rng ~rows:n ~cols:n ~lo:0 ~hi:1 in
    let expect = Trace_circuit.reference m >= tau in
    Alcotest.(check bool) "kron trace" expect (Trace_circuit.run kron m);
    Alcotest.(check bool) "flat trace" expect (Trace_circuit.run flat m)
  done

let () =
  Alcotest.run "templates"
    [
      ( "identical",
        [
          Alcotest.test_case "matmul stamped = legacy" `Quick
            test_matmul_stamped_identical;
          Alcotest.test_case "trace stamped = legacy" `Quick
            test_trace_stamped_identical;
          Alcotest.test_case "direct lazy circuit" `Quick
            test_direct_lazy_circuit_identical;
        ] );
      ( "stats",
        [
          Alcotest.test_case "count-only and direct" `Quick
            test_count_only_stats_equal;
          Alcotest.test_case "naive and tiled" `Quick
            test_naive_tiled_stats_equal;
        ] );
      ( "behavior",
        [
          Alcotest.test_case "runs agree" `Quick test_stamped_run_agrees;
          Alcotest.test_case "kernel differential" `Quick
            test_kernel_differential;
          Alcotest.test_case "certifier" `Quick test_certifier_over_templates;
          Alcotest.test_case "fuzzer" `Quick test_fuzzer_over_templates;
        ] );
      ( "kronpow",
        [
          Alcotest.test_case "value + size" `Quick test_kronpow_value_and_size;
          Alcotest.test_case "size counts" `Quick test_kronpow_size_counts;
          Alcotest.test_case "trace value" `Quick test_kronpow_trace_value;
        ] );
    ]
