(* Template-stamped construction: stamped circuits must be gate-for-gate
   identical to the legacy (template-free) builder in every mode, on
   every standard schedule, for every circuit family that routes through
   [Builder.templated]. *)

open Tcmm
open Tcmm_fastmm
open Tcmm_threshold
module Prng = Tcmm_util.Prng

let strassen = Instances.strassen

let schedule ~name ~n = Level_schedule.resolve ~algo:strassen ~name ~d:2 ~n

let gate_equal (a : Gate.t) (b : Gate.t) =
  a.Gate.inputs = b.Gate.inputs
  && a.Gate.weights = b.Gate.weights
  && a.Gate.threshold = b.Gate.threshold

let check_circuit_equal label (a : Circuit.t) (b : Circuit.t) =
  Alcotest.(check int) (label ^ ": num_inputs") a.Circuit.num_inputs b.Circuit.num_inputs;
  Alcotest.(check int)
    (label ^ ": num_gates")
    (Array.length a.Circuit.gates)
    (Array.length b.Circuit.gates);
  Alcotest.(check (array int)) (label ^ ": outputs") a.Circuit.outputs b.Circuit.outputs;
  Array.iteri
    (fun g ga ->
      if not (gate_equal ga b.Circuit.gates.(g)) then
        Alcotest.failf "%s: gate %d differs" label g)
    a.Circuit.gates;
  Alcotest.(check (array int)) (label ^ ": depths") a.Circuit.depths b.Circuit.depths

let build_matmul ~mode ~templates ~sched ~n =
  Matmul_circuit.build ~mode ~templates ~algo:strassen ~schedule:sched
    ~entry_bits:1 ~n ()

(* Tentpole invariant: with templates on, the materialized circuit is
   byte-identical to the legacy builder's, across all four standard
   schedules at N in {4, 8}. *)
let test_matmul_stamped_identical () =
  List.iter
    (fun n ->
      List.iter
        (fun name ->
          let sched = schedule ~name ~n in
          let legacy =
            build_matmul ~mode:Builder.Materialize ~templates:false ~sched ~n
          in
          let stamped =
            build_matmul ~mode:Builder.Materialize ~templates:true ~sched ~n
          in
          check_circuit_equal
            (Printf.sprintf "matmul N=%d %s" n name)
            (Option.get legacy.Matmul_circuit.circuit)
            (Option.get stamped.Matmul_circuit.circuit))
        Level_schedule.standard_names)
    [ 4; 8 ]

let test_trace_stamped_identical () =
  List.iter
    (fun name ->
      let n = 4 in
      let sched = schedule ~name ~n in
      let build templates =
        Trace_circuit.build ~mode:Builder.Materialize ~templates ~algo:strassen
          ~schedule:sched ~entry_bits:1 ~tau:(n * n) ~n ()
      in
      let legacy = build false and stamped = build true in
      check_circuit_equal
        (Printf.sprintf "trace N=4 %s" name)
        (Option.get legacy.Trace_circuit.circuit)
        (Option.get stamped.Trace_circuit.circuit))
    Level_schedule.standard_names

(* Direct mode: the packed form's lazily materialized Circuit.t must
   equal the legacy circuit too — the arena lowering and the gate
   materialization agree. *)
let test_direct_lazy_circuit_identical () =
  let n = 4 in
  let sched = schedule ~name:"thm45" ~n in
  let legacy = build_matmul ~mode:Builder.Materialize ~templates:false ~sched ~n in
  let direct = build_matmul ~mode:Builder.Direct ~templates:true ~sched ~n in
  let packed = Matmul_circuit.pack direct in
  check_circuit_equal "direct lazy circuit"
    (Option.get legacy.Matmul_circuit.circuit)
    (Packed.circuit packed)

(* Stats agree between all modes with templates on and off. *)
let test_count_only_stats_equal () =
  List.iter
    (fun n ->
      let sched = schedule ~name:"thm45" ~n in
      let stats mode templates =
        Builder.stats (build_matmul ~mode ~templates ~sched ~n).Matmul_circuit.builder
      in
      let reference = stats Builder.Materialize false in
      List.iter
        (fun (mode, templates) ->
          Alcotest.(check bool)
            (Printf.sprintf "stats N=%d" n)
            true
            (stats mode templates = reference))
        [
          (Builder.Materialize, true);
          (Builder.Count_only, false);
          (Builder.Count_only, true);
          (Builder.Direct, true);
        ])
    [ 4; 8 ]

(* Stamped circuits compute the right answer end-to-end, in both
   Materialize and Direct modes. *)
let test_stamped_run_agrees () =
  let rng = Prng.create ~seed:7 in
  let n = 4 in
  let sched = schedule ~name:"thm45" ~n in
  let stamped = build_matmul ~mode:Builder.Materialize ~templates:true ~sched ~n in
  let direct = build_matmul ~mode:Builder.Direct ~templates:true ~sched ~n in
  for _ = 1 to 5 do
    let a = Matrix.random rng ~rows:n ~cols:n ~lo:0 ~hi:1 in
    let b = Matrix.random rng ~rows:n ~cols:n ~lo:0 ~hi:1 in
    let expect = Matrix.mul a b in
    Alcotest.(check bool) "stamped run" true
      (Matrix.equal (Matmul_circuit.run stamped ~a ~b) expect);
    Alcotest.(check bool) "direct run" true
      (Matrix.equal (Matmul_circuit.run direct ~a ~b) expect)
  done

(* The naive and tiled families route through the same template layer;
   their stats must be invariant under templates on/off as well. *)
let test_naive_tiled_stats_equal () =
  let naive templates =
    Builder.stats
      (Naive_circuits.matmul ~templates ~entry_bits:1 ~n:3 ()).Naive_circuits.builder
  in
  Alcotest.(check bool) "naive matmul stats" true (naive true = naive false);
  let trace templates =
    Builder.stats
      (Naive_circuits.trace_threshold ~templates ~entry_bits:1 ~tau:4 ~n:3 ())
        .Naive_circuits.builder
  in
  Alcotest.(check bool) "naive trace stats" true (trace true = trace false);
  let sched = schedule ~name:"thm45" ~n:4 in
  let tiled templates =
    Tiled_matmul.stats
      (Tiled_matmul.build ~templates ~algo:strassen ~schedule:sched ~entry_bits:1
         ~rows:4 ~inner:4 ~cols:8 ())
  in
  Alcotest.(check bool) "tiled stats" true (tiled true = tiled false)

(* Kernel differential: for every standard schedule, both a fast and a
   naive bilinear algorithm, and N in {4, 8}, the kernelized batch
   (Direct arena, template-specialized kernels) must be bit-identical —
   outputs, firings, level firings — to the kernel-free batch over the
   same packed lowering, decode to the integer product, and (at N=4)
   match the gate-at-a-time Simulator. *)
let test_kernel_differential () =
  let rng = Prng.create ~seed:19 in
  List.iter
    (fun algo ->
      List.iter
        (fun n ->
          List.iter
            (fun name ->
              let label =
                Printf.sprintf "%s/%s N=%d" algo.Bilinear.name name n
              in
              let sched = Level_schedule.resolve ~algo ~name ~d:2 ~n in
              let build () =
                Matmul_circuit.build ~mode:Builder.Direct ~algo ~schedule:sched
                  ~entry_bits:1 ~n ()
              in
              let built_k = build () and built_g = build () in
              let p_k = Matmul_circuit.pack built_k in
              let p_g = Matmul_circuit.pack ~kernels:false built_g in
              let cov = Packed.coverage p_k in
              Alcotest.(check bool)
                (label ^ ": kernels cover some segments")
                true
                (cov.Packed.kernel_segments > 0);
              Alcotest.(check int)
                (label ^ ": no-kernels is all-fallback")
                0 (Packed.coverage p_g).Packed.kernel_segments;
              let lanes = 4 in
              let pairs =
                Array.init lanes (fun _ ->
                    ( Matrix.random rng ~rows:n ~cols:n ~lo:0 ~hi:1,
                      Matrix.random rng ~rows:n ~cols:n ~lo:0 ~hi:1 ))
              in
              let inputs =
                Array.map
                  (fun (a, b) -> Matmul_circuit.encode_inputs built_k ~a ~b)
                  pairs
              in
              let bk = Packed.run_batch p_k inputs in
              let bg = Packed.run_batch p_g inputs in
              for lane = 0 to lanes - 1 do
                Alcotest.(check bool)
                  (label ^ ": outputs kernel = generic")
                  true
                  (Packed.batch_outputs bk ~lane = Packed.batch_outputs bg ~lane);
                Alcotest.(check int)
                  (label ^ ": firings kernel = generic")
                  (Packed.batch_firings bg ~lane)
                  (Packed.batch_firings bk ~lane);
                Alcotest.(check bool)
                  (label ^ ": level firings kernel = generic")
                  true
                  (Packed.batch_level_firings bk ~lane
                  = Packed.batch_level_firings bg ~lane);
                let a, b = pairs.(lane) in
                Alcotest.(check bool)
                  (label ^ ": decodes to the product")
                  true
                  (Matrix.equal
                     (Matmul_circuit.decode built_k (fun w ->
                          Packed.batch_value bk ~lane w))
                     (Matrix.mul a b))
              done;
              if n = 4 then begin
                let r = Simulator.run (Packed.circuit p_k) inputs.(0) in
                Alcotest.(check bool)
                  (label ^ ": Simulator agrees with kernel lane 0")
                  true
                  (Packed.batch_outputs bk ~lane:0 = r.Simulator.outputs
                  && Packed.batch_firings bk ~lane:0 = r.Simulator.firings)
              end)
            Level_schedule.standard_names)
        [ 4; 8 ])
    [ strassen; Instances.naive ~t_dim:2 ]

(* The E19 certifier checks template-built circuits (templates are the
   construction default) against the counting DP, the depth model and
   the theorem bounds. *)
let test_certifier_over_templates () =
  let spec =
    {
      Tcmm_check.Certify.kind = Tcmm_check.Case.Matmul;
      algo = "strassen";
      schedule = "thm45";
      d = 2;
      n = 4;
      entry_bits = 1;
      signed = false;
      tau = 0;
    }
  in
  let cert = Tcmm_check.Certify.certify ~samples:2 ~seed:11 spec in
  if not (Tcmm_check.Certify.ok cert) then
    Alcotest.failf "certifier failed: %s" (Tcmm_check.Certify.to_json cert)

(* The differential fuzzer drives template-built circuits against the
   integer reference across random specs. *)
let test_fuzzer_over_templates () =
  let outcome = Tcmm_check.Fuzz.run ~seed:3 ~cases:6 () in
  Alcotest.(check int) "fuzz cases" 6 outcome.Tcmm_check.Fuzz.tested;
  match outcome.Tcmm_check.Fuzz.failures with
  | [] -> ()
  | f :: _ -> Alcotest.failf "fuzz failure: %s" f.Tcmm_check.Fuzz.message

let () =
  Alcotest.run "templates"
    [
      ( "identical",
        [
          Alcotest.test_case "matmul stamped = legacy" `Quick
            test_matmul_stamped_identical;
          Alcotest.test_case "trace stamped = legacy" `Quick
            test_trace_stamped_identical;
          Alcotest.test_case "direct lazy circuit" `Quick
            test_direct_lazy_circuit_identical;
        ] );
      ( "stats",
        [
          Alcotest.test_case "count-only and direct" `Quick
            test_count_only_stats_equal;
          Alcotest.test_case "naive and tiled" `Quick
            test_naive_tiled_stats_equal;
        ] );
      ( "behavior",
        [
          Alcotest.test_case "runs agree" `Quick test_stamped_run_agrees;
          Alcotest.test_case "kernel differential" `Quick
            test_kernel_differential;
          Alcotest.test_case "certifier" `Quick test_certifier_over_templates;
          Alcotest.test_case "fuzzer" `Quick test_fuzzer_over_templates;
        ] );
    ]
