open Tcmm_threshold
module S = Tcmm_test_support.Support

(* ------------------------------------------------------------------ *)
(* Gate                                                               *)
(* ------------------------------------------------------------------ *)

let test_gate_make_mismatch () =
  try
    ignore (Gate.make ~inputs:[| 0; 1 |] ~weights:[| 1 |] ~threshold:0);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_gate_eval () =
  let g = Gate.make ~inputs:[| 0; 1; 2 |] ~weights:[| 2; -1; 3 |] ~threshold:3 in
  let read values w = values.(w) in
  S.check_bool "2-1+3>=3" true (Gate.eval g (read [| true; true; true |]));
  S.check_bool "2>=3 false" false (Gate.eval g (read [| true; false; false |]));
  S.check_bool "3>=3" true (Gate.eval g (read [| false; false; true |]));
  S.check_bool "-1>=3 false" false (Gate.eval g (read [| false; true; false |]));
  S.check_bool "empty sum" true
    (Gate.eval (Gate.make ~inputs:[||] ~weights:[||] ~threshold:0) (fun _ -> false))

let test_gate_eval_checked_matches () =
  let g = Gate.make ~inputs:[| 0; 1 |] ~weights:[| 5; -7 |] ~threshold:(-1) in
  S.all_inputs 2
  |> List.iter (fun input ->
         S.check_bool "checked = unchecked"
           (Gate.eval g (fun w -> input.(w)))
           (Gate.eval_checked g (fun w -> input.(w))))

let test_gate_max_abs_weight () =
  let g = Gate.make ~inputs:[| 0; 1 |] ~weights:[| -9; 4 |] ~threshold:0 in
  S.check_int "max |w|" 9 (Gate.max_abs_weight g);
  S.check_int "empty" 0 (Gate.max_abs_weight (Gate.make ~inputs:[||] ~weights:[||] ~threshold:1))

(* ------------------------------------------------------------------ *)
(* Builder + Circuit                                                  *)
(* ------------------------------------------------------------------ *)

let test_builder_inputs_first () =
  let b = Builder.create () in
  let _ = Builder.add_input b in
  let _ = Builder.add_gate b ~inputs:[| 0 |] ~weights:[| 1 |] ~threshold:1 in
  try
    ignore (Builder.add_input b);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_builder_dangling_wire () =
  let b = Builder.create () in
  let _ = Builder.add_inputs b 2 in
  try
    ignore (Builder.add_gate b ~inputs:[| 5 |] ~weights:[| 1 |] ~threshold:1);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_builder_depth_tracking () =
  let b = Builder.create () in
  let x = Builder.add_input b in
  S.check_int "input depth" 0 (Builder.depth_of b x);
  let g1 = Builder.add_gate b ~inputs:[| x |] ~weights:[| 1 |] ~threshold:1 in
  S.check_int "first layer" 1 (Builder.depth_of b g1);
  let g2 = Builder.add_gate b ~inputs:[| x; g1 |] ~weights:[| 1; 1 |] ~threshold:2 in
  S.check_int "second layer" 2 (Builder.depth_of b g2);
  let g3 = Builder.add_gate b ~inputs:[| x |] ~weights:[| 1 |] ~threshold:1 in
  S.check_int "parallel gate stays shallow" 1 (Builder.depth_of b g3)

let test_builder_stats () =
  let b = Builder.create () in
  let ins = Builder.add_inputs b 3 in
  let g1 =
    Builder.add_gate b ~inputs:ins ~weights:[| 1; 2; -4 |] ~threshold:1
  in
  let g2 = Builder.add_gate b ~inputs:[| g1 |] ~weights:[| 1 |] ~threshold:1 in
  Builder.output b g2;
  let s = Builder.stats b in
  S.check_int "inputs" 3 s.Stats.inputs;
  S.check_int "outputs" 1 s.Stats.outputs;
  S.check_int "gates" 2 s.Stats.gates;
  S.check_int "edges" 4 s.Stats.edges;
  S.check_int "depth" 2 s.Stats.depth;
  S.check_int "max fan-in" 3 s.Stats.max_fan_in;
  S.check_int "max |w|" 4 s.Stats.max_abs_weight;
  Alcotest.(check (array int)) "by depth" [| 1; 1 |] s.Stats.gates_by_depth

let test_count_only_matches_materialize () =
  (* The same construction must produce identical stats in both modes. *)
  let build b =
    let ins = Builder.add_inputs b 4 in
    let layer1 =
      Array.map
        (fun w -> Builder.add_gate b ~inputs:[| w |] ~weights:[| 1 |] ~threshold:1)
        ins
    in
    let top =
      Builder.add_gate b ~inputs:layer1 ~weights:[| 1; 1; 1; 1 |] ~threshold:2
    in
    Builder.output b top
  in
  let bm = Builder.create () in
  build bm;
  let bc = Builder.create ~mode:Builder.Count_only () in
  build bc;
  let sm = Builder.stats bm and sc = Builder.stats bc in
  S.check_int "gates" sm.Stats.gates sc.Stats.gates;
  S.check_int "edges" sm.Stats.edges sc.Stats.edges;
  S.check_int "depth" sm.Stats.depth sc.Stats.depth;
  S.check_int "fan-in" sm.Stats.max_fan_in sc.Stats.max_fan_in;
  Alcotest.(check (array int)) "by depth" sm.Stats.gates_by_depth sc.Stats.gates_by_depth

let test_shared_gates_match_individual () =
  (* add_shared_gates must be observationally identical to a sequence of
     add_gate calls: same stats, same simulation. *)
  let inputs_weights = ([| 0; 1; 2 |], [| 2; -1; 3 |]) in
  let thresholds = [| 0; 1; 2; 3; 4 |] in
  let build_shared b =
    let _ = Builder.add_inputs b 3 in
    let inputs, weights = inputs_weights in
    let y = Builder.add_shared_gates b ~inputs ~weights ~thresholds in
    Array.iter (Builder.output b) y
  in
  let build_individual b =
    let _ = Builder.add_inputs b 3 in
    let inputs, weights = inputs_weights in
    Array.iter
      (fun threshold -> Builder.output b (Builder.add_gate b ~inputs ~weights ~threshold))
      thresholds
  in
  let bs = Builder.create () and bi = Builder.create () in
  build_shared bs;
  build_individual bi;
  let ss = Builder.stats bs and si = Builder.stats bi in
  S.check_int "gates" si.Stats.gates ss.Stats.gates;
  S.check_int "edges" si.Stats.edges ss.Stats.edges;
  S.check_int "depth" si.Stats.depth ss.Stats.depth;
  S.check_int "fan-in" si.Stats.max_fan_in ss.Stats.max_fan_in;
  S.check_int "|w|" si.Stats.max_abs_weight ss.Stats.max_abs_weight;
  let cs = Builder.finalize bs and ci = Builder.finalize bi in
  S.all_inputs 3
  |> List.iter (fun input ->
         Alcotest.(check (array bool))
           "same outputs"
           (Simulator.read_outputs ci input)
           (Simulator.read_outputs cs input))

let test_shared_gates_empty_thresholds () =
  let b = Builder.create () in
  let x = Builder.add_input b in
  let y = Builder.add_shared_gates b ~inputs:[| x |] ~weights:[| 5 |] ~thresholds:[||] in
  S.check_int "no wires" 0 (Array.length y);
  let s = Builder.stats b in
  S.check_int "no gates" 0 s.Stats.gates;
  S.check_int "no weight recorded" 0 s.Stats.max_abs_weight

let test_shared_gates_validation () =
  let b = Builder.create () in
  let x = Builder.add_input b in
  (try
     ignore (Builder.add_shared_gates b ~inputs:[| x |] ~weights:[| 1; 2 |] ~thresholds:[| 1 |]);
     Alcotest.fail "expected invalid_arg (length)"
   with Invalid_argument _ -> ());
  try
    ignore (Builder.add_shared_gates b ~inputs:[| 7 |] ~weights:[| 1 |] ~thresholds:[| 1 |]);
    Alcotest.fail "expected invalid_arg (dangling)"
  with Invalid_argument _ -> ()

let test_count_only_finalize_rejected () =
  let b = Builder.create ~mode:Builder.Count_only () in
  let _ = Builder.add_input b in
  try
    ignore (Builder.finalize b);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_circuit_stats_match_builder () =
  let b = Builder.create () in
  let ins = Builder.add_inputs b 2 in
  let g = Builder.add_gate b ~inputs:ins ~weights:[| 1; 1 |] ~threshold:2 in
  Builder.output b g;
  let c = Builder.finalize b in
  let sb = Builder.stats b and sc = Circuit.stats c in
  S.check_int "gates" sb.Stats.gates sc.Stats.gates;
  S.check_int "edges" sb.Stats.edges sc.Stats.edges;
  S.check_int "depth" sb.Stats.depth sc.Stats.depth;
  S.check_int "outputs" sb.Stats.outputs sc.Stats.outputs

let test_const_wires () =
  let b = Builder.create () in
  let t = Builder.const b true in
  let f = Builder.const b false in
  Builder.output b t;
  Builder.output b f;
  let c = Builder.finalize b in
  let r = Simulator.run c [||] in
  Alcotest.(check (array bool)) "consts" [| true; false |] r.Simulator.outputs

(* ------------------------------------------------------------------ *)
(* Simulator                                                          *)
(* ------------------------------------------------------------------ *)

let test_simulate_and_or_majority () =
  (* AND, OR and MAJ of three inputs as single threshold gates. *)
  let b = Builder.create () in
  let ins = Builder.add_inputs b 3 in
  let weights = [| 1; 1; 1 |] in
  let and3 = Builder.add_gate b ~inputs:ins ~weights ~threshold:3 in
  let or3 = Builder.add_gate b ~inputs:ins ~weights ~threshold:1 in
  let maj3 = Builder.add_gate b ~inputs:ins ~weights ~threshold:2 in
  List.iter (Builder.output b) [ and3; or3; maj3 ];
  let c = Builder.finalize b in
  S.all_inputs 3
  |> List.iter (fun input ->
         let expect_and = Array.for_all Fun.id input in
         let expect_or = Array.exists Fun.id input in
         let ones = Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 input in
         let out = Simulator.read_outputs c input in
         S.check_bool "and" expect_and out.(0);
         S.check_bool "or" expect_or out.(1);
         S.check_bool "maj" (ones >= 2) out.(2))

let test_simulate_parity_2layer () =
  (* XOR via threshold gates: x+y>=1 and -(x+y)>=-1 ANDed. *)
  let b = Builder.create () in
  let ins = Builder.add_inputs b 2 in
  let ge1 = Builder.add_gate b ~inputs:ins ~weights:[| 1; 1 |] ~threshold:1 in
  let le1 = Builder.add_gate b ~inputs:ins ~weights:[| -1; -1 |] ~threshold:(-1) in
  let xor = Builder.add_gate b ~inputs:[| ge1; le1 |] ~weights:[| 1; 1 |] ~threshold:2 in
  Builder.output b xor;
  let c = Builder.finalize b in
  S.all_inputs 2
  |> List.iter (fun input ->
         let out = Simulator.read_outputs c input in
         S.check_bool "xor" (input.(0) <> input.(1)) out.(0))

let test_simulate_firings () =
  let b = Builder.create () in
  let x = Builder.add_input b in
  let id = Builder.add_gate b ~inputs:[| x |] ~weights:[| 1 |] ~threshold:1 in
  let neg = Builder.add_gate b ~inputs:[| x |] ~weights:[| -1 |] ~threshold:0 in
  Builder.output b id;
  Builder.output b neg;
  let c = Builder.finalize b in
  let r1 = Simulator.run c [| true |] in
  S.check_int "one fires on true" 1 r1.Simulator.firings;
  let r0 = Simulator.run c [| false |] in
  S.check_int "one fires on false" 1 r0.Simulator.firings

let test_simulate_input_mismatch () =
  let b = Builder.create () in
  let _ = Builder.add_inputs b 2 in
  let c = Builder.finalize b in
  try
    ignore (Simulator.run c [| true |]);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let prop_random_circuit_firings_bounded =
  S.qcheck_case "firings never exceed gate count"
    QCheck2.Gen.(pair (int_range 1 6) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Tcmm_util.Prng.create ~seed in
      let b = Builder.create () in
      let _ = Builder.add_inputs b n in
      (* Random layered circuit over the existing wires. *)
      for _ = 1 to 20 do
        let avail = Builder.num_wires b in
        let fan = 1 + Tcmm_util.Prng.int rng ~bound:(min 4 avail) in
        let inputs = Array.init fan (fun _ -> Tcmm_util.Prng.int rng ~bound:avail) in
        (* Deduplicate to keep Validate clean. *)
        let inputs = Array.of_list (List.sort_uniq compare (Array.to_list inputs)) in
        let weights =
          Array.map (fun _ -> Tcmm_util.Prng.int_range rng ~lo:(-3) ~hi:3) inputs
        in
        let weights = Array.map (fun w -> if w = 0 then 1 else w) weights in
        let threshold = Tcmm_util.Prng.int_range rng ~lo:(-2) ~hi:4 in
        ignore (Builder.add_gate b ~inputs ~weights ~threshold)
      done;
      let c = Builder.finalize b in
      let input = Array.init n (fun _ -> Tcmm_util.Prng.bool rng) in
      let r = Simulator.run ~check:true c input in
      r.Simulator.firings <= Circuit.num_gates c)

(* ------------------------------------------------------------------ *)
(* Validate                                                           *)
(* ------------------------------------------------------------------ *)

let test_validate_clean () =
  let b = Builder.create () in
  let ins = Builder.add_inputs b 2 in
  let g = Builder.add_gate b ~inputs:ins ~weights:[| 1; -1 |] ~threshold:0 in
  Builder.output b g;
  let c = Builder.finalize b in
  S.check_bool "clean" true (Validate.is_clean c)

let test_validate_duplicate_and_zero () =
  let g1 = Gate.make ~inputs:[| 0; 0 |] ~weights:[| 1; 1 |] ~threshold:1 in
  let g2 = Gate.make ~inputs:[| 0 |] ~weights:[| 0 |] ~threshold:1 in
  let c = Circuit.make ~num_inputs:1 ~gates:[| g1; g2 |] ~outputs:[| 0 |] in
  let issues = Validate.check c in
  (* g1: duplicate wire; g2: zero weight and (threshold 1 > max sum 0) a
     never-fires warning; output 0 is a raw input. *)
  S.check_int "four issues" 4 (List.length issues);
  S.check_bool "has duplicate" true
    (List.exists (function Validate.Duplicate_input_wire _ -> true | _ -> false) issues);
  S.check_bool "has zero weight" true
    (List.exists (function Validate.Zero_weight _ -> true | _ -> false) issues);
  S.check_bool "has never-fires" true
    (List.exists
       (function Validate.Never_fires { gate = 1; _ } -> true | _ -> false)
       issues);
  S.check_bool "has raw-input output" true
    (List.exists (function Validate.Unreachable_output _ -> true | _ -> false) issues);
  (* Only the zero weight is error-severity; duplicates, constant gates
     and raw-input outputs are warnings. *)
  S.check_int "one error" 1 (List.length (Validate.errors c))

let test_validate_reports_every_gate () =
  (* One violation per gate across four gates: the checker must return
     them all, in gate order, each carrying the offending gate id. *)
  let g0 = Gate.make ~inputs:[| 0 |] ~weights:[| 0 |] ~threshold:0 in
  let g1 = Gate.make ~inputs:[| 0; 0 |] ~weights:[| 1; 2 |] ~threshold:1 in
  let g2 = Gate.make ~inputs:[| 0 |] ~weights:[| 1 |] ~threshold:5 in
  let g3 = Gate.make ~inputs:[| 0 |] ~weights:[| 1 |] ~threshold:0 in
  let c =
    Circuit.make ~num_inputs:1 ~gates:[| g0; g1; g2; g3 |] ~outputs:[| 4 |]
  in
  let gate_of = function
    | Validate.Dangling_wire { gate; _ }
    | Validate.Duplicate_input_wire { gate; _ }
    | Validate.Zero_weight { gate; _ }
    | Validate.Never_fires { gate; _ }
    | Validate.Always_fires { gate; _ } ->
        gate
    | Validate.Unreachable_output _ -> -1
  in
  let issues = Validate.check c in
  (* g0: zero weight + always fires (threshold 0 <= min sum 0);
     g1: duplicate read; g2: never fires (5 > 1); g3: always fires. *)
  Alcotest.(check (list int)) "all gates reported, in order" [ 0; 0; 1; 2; 3 ]
    (List.map gate_of issues);
  S.check_bool "g2 detail" true
    (List.exists
       (function
         | Validate.Never_fires { gate = 2; threshold = 5; max_sum = 1 } -> true
         | _ -> false)
       issues);
  S.check_bool "g3 detail" true
    (List.exists
       (function
         | Validate.Always_fires { gate = 3; threshold = 0; min_sum = 0 } -> true
         | _ -> false)
       issues);
  S.check_int "one error (the zero weight)" 1 (List.length (Validate.errors c))

(* ------------------------------------------------------------------ *)
(* Energy                                                             *)
(* ------------------------------------------------------------------ *)

let test_energy_summary () =
  let b = Builder.create () in
  let x = Builder.add_input b in
  let g = Builder.add_gate b ~inputs:[| x |] ~weights:[| 1 |] ~threshold:1 in
  Builder.output b g;
  let c = Builder.finalize b in
  let s = Energy.measure c [ [| true |]; [| false |]; [| true |] ] in
  S.check_int "samples" 3 s.Energy.samples;
  S.check_int "min" 0 s.Energy.min_firings;
  S.check_int "max" 1 s.Energy.max_firings;
  Alcotest.(check (float 1e-9)) "mean" (2. /. 3.) s.Energy.mean_firings;
  Alcotest.(check (float 1e-9)) "fraction" (2. /. 3.) (Energy.firing_fraction s);
  S.check_int "one level" 1 (Array.length s.Energy.mean_level_firings);
  Alcotest.(check (float 1e-9)) "level mean" (2. /. 3.) s.Energy.mean_level_firings.(0);
  (* Both engines aggregate identically. *)
  let s_ref =
    Energy.measure ~engine:Simulator.Reference c
      [ [| true |]; [| false |]; [| true |] ]
  in
  Alcotest.(check (float 1e-9)) "engines agree" s.Energy.mean_firings
    s_ref.Energy.mean_firings;
  S.check_int "engines agree (min)" s.Energy.min_firings s_ref.Energy.min_firings

(* Energy's per-level aggregation must agree gate-for-gate with a
   direct [Simulator.run] on the same input — across every standard
   schedule, both matrix sizes, and both build paths (legacy gate
   derivation and template stamping, which are documented to be
   gate-for-gate identical). *)
let test_energy_levels_match_simulator () =
  let algo = Tcmm_fastmm.Instances.strassen in
  let rng = Tcmm_util.Prng.create ~seed:5 in
  List.iter
    (fun name ->
      List.iter
        (fun n ->
          List.iter
            (fun templates ->
              let ctx =
                Printf.sprintf "%s n=%d %s" name n
                  (if templates then "templated" else "legacy")
              in
              let schedule = Tcmm.Level_schedule.resolve ~algo ~name ~d:2 ~n in
              let built =
                Tcmm.Matmul_circuit.build ~templates ~algo ~schedule
                  ~entry_bits:1 ~n ()
              in
              match built.Tcmm.Matmul_circuit.circuit with
              | None -> Alcotest.fail (ctx ^ ": expected a materialized circuit")
              | Some c ->
                  Energy.random_inputs rng ~num_inputs:c.Circuit.num_inputs
                    ~samples:2
                  |> List.iter (fun input ->
                         let r = Simulator.run c input in
                         let s = Energy.measure c [ input ] in
                         S.check_int (ctx ^ ": total firings")
                           r.Simulator.firings s.Energy.min_firings;
                         S.check_int (ctx ^ ": max = min at one sample")
                           s.Energy.min_firings s.Energy.max_firings;
                         S.check_int (ctx ^ ": level count")
                           (Array.length r.Simulator.level_firings)
                           (Array.length s.Energy.mean_level_firings);
                         Array.iteri
                           (fun lvl expect ->
                             S.check_int
                               (Printf.sprintf "%s: level %d firings" ctx lvl)
                               expect
                               (int_of_float s.Energy.mean_level_firings.(lvl)))
                           r.Simulator.level_firings))
            [ false; true ])
        [ 4; 8 ])
    [ "uniform-2"; "direct"; "thm44"; "thm45" ]

let test_energy_empty_rejected () =
  let b = Builder.create () in
  let _ = Builder.add_input b in
  let c = Builder.finalize b in
  try
    ignore (Energy.measure c []);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Spiking                                                            *)
(* ------------------------------------------------------------------ *)

let test_spiking_settles_to_simulator () =
  (* A 3-layer circuit: spiking semantics must converge to the DAG value
     within depth ticks. *)
  let b = Builder.create () in
  let ins = Builder.add_inputs b 4 in
  let l1 =
    Array.init 3 (fun i ->
        Builder.add_gate b ~inputs:[| ins.(i); ins.(i + 1) |] ~weights:[| 1; 1 |]
          ~threshold:1)
  in
  let l2 = Builder.add_gate b ~inputs:l1 ~weights:[| 1; 1; -1 |] ~threshold:1 in
  let l3 = Builder.add_gate b ~inputs:[| l2; ins.(0) |] ~weights:[| 2; -1 |] ~threshold:1 in
  Builder.output b l3;
  let c = Builder.finalize b in
  S.all_inputs 4
  |> List.iter (fun input ->
         let ticks, out = Spiking.settle c input in
         Alcotest.(check (array bool))
           "fixed point = DAG semantics" (Simulator.read_outputs c input) out;
         S.check_bool "settles within depth" true
           (ticks <= (Circuit.stats c).Stats.depth))

let test_spiking_settles_arithmetic_circuit () =
  let built =
    Tcmm.Trace_circuit.build ~algo:Tcmm_fastmm.Instances.strassen
      ~schedule:(Tcmm.Level_schedule.full ~l:1) ~entry_bits:1 ~tau:2 ~n:2 ()
  in
  match built.Tcmm.Trace_circuit.circuit with
  | None -> Alcotest.fail "expected circuit"
  | Some c ->
      let m = Tcmm_fastmm.Matrix.of_rows [| [| 1; 1 |]; [| 1; 0 |] |] in
      let input = Tcmm.Trace_circuit.encode_input built m in
      let ticks, out = Spiking.settle c input in
      let expect = Simulator.read_outputs c input in
      Alcotest.(check (array bool)) "same answer" expect out;
      let depth = (Circuit.stats c).Stats.depth in
      S.check_bool
        (Printf.sprintf "ticks %d <= depth %d" ticks depth)
        true (ticks <= depth)

let test_spiking_tick_progression () =
  (* A chain of identity gates: the signal front advances one gate per
     tick, exactly modelling per-layer latency. *)
  let b = Builder.create () in
  let x = Builder.add_input b in
  let g1 = Builder.add_gate b ~inputs:[| x |] ~weights:[| 1 |] ~threshold:1 in
  let g2 = Builder.add_gate b ~inputs:[| g1 |] ~weights:[| 1 |] ~threshold:1 in
  let g3 = Builder.add_gate b ~inputs:[| g2 |] ~weights:[| 1 |] ~threshold:1 in
  Builder.output b g3;
  let c = Builder.finalize b in
  let st = Spiking.init c [| true |] in
  S.check_bool "t0: output quiet" false (Spiking.value st g3);
  Spiking.tick st;
  S.check_bool "t1: first gate" true (Spiking.value st g1);
  S.check_bool "t1: output still quiet" false (Spiking.value st g3);
  Spiking.tick st;
  S.check_bool "t2: second gate" true (Spiking.value st g2);
  Spiking.tick st;
  S.check_bool "t3: output fires" true (Spiking.value st g3)

let test_spiking_max_ticks () =
  let b = Builder.create () in
  let x = Builder.add_input b in
  let g = Builder.add_gate b ~inputs:[| x |] ~weights:[| 1 |] ~threshold:1 in
  Builder.output b g;
  let c = Builder.finalize b in
  (* max_ticks 0 forces failure whenever a change is needed. *)
  try
    ignore (Spiking.settle ~max_ticks:0 c [| true |]);
    Alcotest.fail "expected failure"
  with Failure _ -> ()

(* ------------------------------------------------------------------ *)
(* Export                                                             *)
(* ------------------------------------------------------------------ *)

let sample_circuit () =
  let b = Builder.create () in
  let ins = Builder.add_inputs b 3 in
  let g1 = Builder.add_gate b ~inputs:ins ~weights:[| 1; -2; 3 |] ~threshold:1 in
  let g2 = Builder.add_gate b ~inputs:[| ins.(0); g1 |] ~weights:[| 1; 1 |] ~threshold:2 in
  Builder.output b g2;
  Builder.output b g1;
  Builder.finalize b

let test_netlist_roundtrip () =
  let c = sample_circuit () in
  let c' = Export.of_netlist (Export.to_netlist c) in
  S.check_int "inputs" c.Circuit.num_inputs c'.Circuit.num_inputs;
  S.check_int "gates" (Circuit.num_gates c) (Circuit.num_gates c');
  Alcotest.(check (array int)) "outputs" c.Circuit.outputs c'.Circuit.outputs;
  S.all_inputs 3
  |> List.iter (fun input ->
         Alcotest.(check (array bool))
           "same behaviour"
           (Simulator.read_outputs c input)
           (Simulator.read_outputs c' input))

let test_netlist_roundtrip_large () =
  (* A real arithmetic circuit must survive the round trip. *)
  let b = Builder.create () in
  let ins = Builder.add_inputs b 6 in
  let u =
    Tcmm_arith.Repr.unsigned_of_terms
      (Array.to_list (Array.mapi (fun i w -> (w, i + 1)) ins))
  in
  let bits = Tcmm_arith.Weighted_sum.to_bits b u in
  Array.iter (Builder.output b) bits;
  let c = Builder.finalize b in
  let c' = Export.of_netlist (Export.to_netlist c) in
  S.all_inputs 6
  |> List.iter (fun input ->
         Alcotest.(check (array bool))
           "same bits"
           (Simulator.read_outputs c input)
           (Simulator.read_outputs c' input))

let test_netlist_rejects_garbage () =
  List.iter
    (fun text ->
      try
        ignore (Export.of_netlist text);
        Alcotest.fail "expected failure"
      with Failure _ -> ())
    [
      "";
      "inputs two";
      "tcmm-netlist 2\ninputs 1";
      "inputs 1\ngate x";
      "inputs 1\ngate 1 0-1";
      "inputs 1\nbogus 3";
      "inputs 1\ninputs 1";
    ]

let test_netlist_comments_and_blanks () =
  let c =
    Export.of_netlist
      "tcmm-netlist 1\n# a comment\ninputs 2\n\ngate 2 0:1 1:1  # and\noutput 2\n"
  in
  S.check_int "one gate" 1 (Circuit.num_gates c);
  Alcotest.(check (array bool)) "AND" [| true |] (Simulator.read_outputs c [| true; true |]);
  Alcotest.(check (array bool)) "not AND" [| false |]
    (Simulator.read_outputs c [| true; false |])

let test_dot_renders () =
  let c = sample_circuit () in
  let dot = Export.to_dot c in
  let contains sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length dot && (String.sub dot i n = sub || go (i + 1)) in
    go 0
  in
  S.check_bool "digraph" true (contains "digraph tcmm");
  S.check_bool "input box" true (contains "shape=box");
  S.check_bool "threshold label" true (contains ">=1");
  S.check_bool "weight edge" true (contains "label=\"-2\"");
  S.check_bool "output doublecircle" true (contains "doublecircle");
  try
    ignore (Export.to_dot ~max_gates:1 c);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_export_write_file () =
  (* The full file-based hand-off: serialize, write, read back, parse. *)
  let c = sample_circuit () in
  let path = "exported.netlist" in
  Export.write_file path (Export.to_netlist c);
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let c' = Export.of_netlist contents in
  S.all_inputs 3
  |> List.iter (fun input ->
         Alcotest.(check (array bool))
           "same behaviour after file round-trip"
           (Simulator.read_outputs c input)
           (Simulator.read_outputs c' input))

(* ------------------------------------------------------------------ *)
(* Transform                                                          *)
(* ------------------------------------------------------------------ *)

let test_prune_removes_dead_gates () =
  let b = Builder.create () in
  let ins = Builder.add_inputs b 2 in
  let live = Builder.add_gate b ~inputs:ins ~weights:[| 1; 1 |] ~threshold:2 in
  let dead = Builder.add_gate b ~inputs:ins ~weights:[| 1; 1 |] ~threshold:1 in
  let dead2 = Builder.add_gate b ~inputs:[| dead |] ~weights:[| 1 |] ~threshold:1 in
  ignore dead2;
  Builder.output b live;
  let c = Builder.finalize b in
  let lv = Transform.live_gates c in
  Alcotest.(check (array bool)) "liveness" [| true; false; false |] lv;
  let { Transform.circuit = pruned; wire_map } = Transform.prune c in
  S.check_int "one gate left" 1 (Circuit.num_gates pruned);
  S.check_int "live wire mapped" 2 wire_map.(live);
  S.check_int "dead wire dropped" (-1) wire_map.(dead);
  S.all_inputs 2
  |> List.iter (fun input ->
         Alcotest.(check (array bool))
           "same outputs"
           (Simulator.read_outputs c input)
           (Simulator.read_outputs pruned input))

let test_prune_keeps_everything_live () =
  (* A trace circuit: every gate feeds the single output. *)
  let built =
    Tcmm.Trace_circuit.build ~algo:Tcmm_fastmm.Instances.strassen
      ~schedule:(Tcmm.Level_schedule.full ~l:1) ~entry_bits:1 ~tau:1 ~n:2 ()
  in
  match built.Tcmm.Trace_circuit.circuit with
  | None -> Alcotest.fail "expected materialized circuit"
  | Some c ->
      let { Transform.circuit = pruned; _ } = Transform.prune c in
      S.check_int "nothing pruned" (Circuit.num_gates c) (Circuit.num_gates pruned)

let test_prune_chain () =
  (* Deep chain: all live through transitivity. *)
  let b = Builder.create () in
  let x = Builder.add_input b in
  let rec chain w k = if k = 0 then w else chain (Builder.add_gate b ~inputs:[| w |] ~weights:[| 1 |] ~threshold:1) (k - 1) in
  let top = chain x 10 in
  Builder.output b top;
  let c = Builder.finalize b in
  let { Transform.circuit = pruned; _ } = Transform.prune c in
  S.check_int "all kept" 10 (Circuit.num_gates pruned)

(* ------------------------------------------------------------------ *)
(* Cross-cutting properties on random circuits                        *)
(* ------------------------------------------------------------------ *)

let random_circuit seed =
  let rng = Tcmm_util.Prng.create ~seed in
  let n = 2 + Tcmm_util.Prng.int rng ~bound:4 in
  let b = Builder.create () in
  let _ = Builder.add_inputs b n in
  for _ = 1 to 5 + Tcmm_util.Prng.int rng ~bound:20 do
    let avail = Builder.num_wires b in
    let fan = 1 + Tcmm_util.Prng.int rng ~bound:(min 5 avail) in
    let inputs =
      Array.init fan (fun _ -> Tcmm_util.Prng.int rng ~bound:avail)
      |> Array.to_list |> List.sort_uniq compare |> Array.of_list
    in
    let weights =
      Array.map
        (fun _ ->
          let w = Tcmm_util.Prng.int_range rng ~lo:(-4) ~hi:4 in
          if w = 0 then 1 else w)
        inputs
    in
    let threshold = Tcmm_util.Prng.int_range rng ~lo:(-3) ~hi:5 in
    ignore (Builder.add_gate b ~inputs ~weights ~threshold)
  done;
  (* Mark a few random wires as outputs (gates only, to keep Validate quiet). *)
  let gates = Builder.num_gates b in
  for _ = 1 to 3 do
    Builder.output b (Builder.num_inputs b + Tcmm_util.Prng.int rng ~bound:gates)
  done;
  let input = Array.init n (fun _ -> Tcmm_util.Prng.bool rng) in
  (Builder.finalize b, input)

let prop_netlist_roundtrip_random =
  S.qcheck_case ~count:100 "netlist roundtrip preserves behaviour"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let c, input = random_circuit seed in
      let c' = Export.of_netlist (Export.to_netlist c) in
      Simulator.read_outputs c input = Simulator.read_outputs c' input)

let prop_spiking_settles_random =
  S.qcheck_case ~count:100 "spiking settles to DAG semantics within depth"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let c, input = random_circuit seed in
      let ticks, out = Spiking.settle c input in
      out = Simulator.read_outputs c input && ticks <= (Circuit.stats c).Stats.depth)

let prop_prune_preserves_outputs =
  S.qcheck_case ~count:100 "prune preserves output behaviour"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let c, input = random_circuit seed in
      let { Transform.circuit = pruned; _ } = Transform.prune c in
      Simulator.read_outputs c input = Simulator.read_outputs pruned input
      && Circuit.num_gates pruned <= Circuit.num_gates c)

(* ------------------------------------------------------------------ *)
(* Packed engine agreement                                            *)
(* ------------------------------------------------------------------ *)

(* Random levelized circuit exercising the packed engine's code paths:
   shared-threshold layers (multi-gate segments), negative weights,
   const gates, mixed fan-ins, and occasionally a 0-gate circuit. *)
let random_packed_circuit seed =
  let rng = Tcmm_util.Prng.create ~seed in
  let b = Builder.create () in
  let n = 1 + Tcmm_util.Prng.int rng ~bound:6 in
  let _ = Builder.add_inputs b n in
  let gates = ref [] in
  if Tcmm_util.Prng.int rng ~bound:20 > 0 then begin
    if Tcmm_util.Prng.bool rng then
      gates := Builder.const b (Tcmm_util.Prng.bool rng) :: !gates;
    for _ = 1 to 3 + Tcmm_util.Prng.int rng ~bound:15 do
      let avail = Builder.num_wires b in
      let fan = 1 + Tcmm_util.Prng.int rng ~bound:(min 12 avail) in
      let inputs =
        Array.init fan (fun _ -> Tcmm_util.Prng.int rng ~bound:avail)
        |> Array.to_list |> List.sort_uniq compare |> Array.of_list
      in
      let weights =
        Array.map
          (fun _ ->
            let w = Tcmm_util.Prng.int_range rng ~lo:(-4) ~hi:4 in
            if w = 0 then -1 else w)
          inputs
      in
      if Tcmm_util.Prng.bool rng then begin
        (* Shared layer: becomes one multi-gate segment. *)
        let k = 1 + Tcmm_util.Prng.int rng ~bound:5 in
        let thresholds =
          Array.init k (fun _ -> Tcmm_util.Prng.int_range rng ~lo:(-5) ~hi:6)
        in
        Builder.add_shared_gates b ~inputs ~weights ~thresholds
        |> Array.iter (fun g -> gates := g :: !gates)
      end
      else
        gates :=
          Builder.add_gate b ~inputs ~weights
            ~threshold:(Tcmm_util.Prng.int_range rng ~lo:(-3) ~hi:5)
          :: !gates
    done
  end;
  List.iter
    (fun g -> if Tcmm_util.Prng.int rng ~bound:3 = 0 then Builder.output b g)
    !gates;
  (match !gates with g :: _ -> Builder.output b g | [] -> ());
  let c = Builder.finalize b in
  let input = Array.init n (fun _ -> Tcmm_util.Prng.bool rng) in
  (c, input, rng)

let same_result (a : Simulator.result) (b : Simulator.result) =
  a.Simulator.outputs = b.Simulator.outputs
  && a.Simulator.firings = b.Simulator.firings
  && a.Simulator.level_firings = b.Simulator.level_firings
  && a.Simulator.values = b.Simulator.values

let prop_packed_matches_reference =
  S.qcheck_case ~count:150 "packed run = reference run (exactly)"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let c, input, _ = random_packed_circuit seed in
      let r_ref = Simulator.run ~check:true c input in
      let p = Packed.of_circuit c in
      let r_seq = Packed.run p input in
      let r_chk = Packed.run ~check:true p input in
      same_result r_ref r_seq && same_result r_ref r_chk
      && Array.fold_left ( + ) 0 r_seq.Simulator.level_firings
         = r_seq.Simulator.firings)

let prop_packed_parallel_matches_reference =
  S.qcheck_case ~count:30 "parallel run = reference run (exactly)"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let c, input, _ = random_packed_circuit seed in
      let r_ref = Simulator.run c input in
      let r_par = Packed.run ~domains:3 (Packed.of_circuit c) input in
      same_result r_ref r_par)

let prop_packed_batch_matches_reference =
  S.qcheck_case ~count:60 "batched lanes = reference runs (exactly)"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let c, _, rng = random_packed_circuit seed in
      let n = c.Circuit.num_inputs in
      let lanes = 1 + Tcmm_util.Prng.int rng ~bound:7 in
      let batch =
        Array.init lanes (fun _ ->
            Array.init n (fun _ -> Tcmm_util.Prng.bool rng))
      in
      let br = Packed.run_batch (Packed.of_circuit c) batch in
      Packed.lanes br = lanes
      && Array.for_all Fun.id
           (Array.mapi
              (fun lane input ->
                let r = Simulator.run c input in
                Packed.batch_outputs br ~lane = r.Simulator.outputs
                && Packed.batch_firings br ~lane = r.Simulator.firings
                && Packed.batch_level_firings br ~lane
                   = r.Simulator.level_firings)
              batch))

(* Incremental sessions: every intermediate state of a random flip
   sequence must match a from-scratch run exactly — outputs, firings,
   level_firings, and every wire value. *)
let session_agrees ~check c input rng =
  let p = Packed.of_circuit c in
  let ss = Packed.session ~check p input in
  let current = Array.copy input in
  let n = Array.length input in
  let steps = 1 + Tcmm_util.Prng.int rng ~bound:8 in
  let ok = ref (same_result (Packed.run ~check p current) (Packed.session_result ss)) in
  for _ = 1 to steps do
    let k = 1 + Tcmm_util.Prng.int rng ~bound:(max n 1) in
    let delta =
      Array.init k (fun _ ->
          let i = Tcmm_util.Prng.int rng ~bound:n in
          (* Mix real flips, no-op rewrites and duplicate indices. *)
          let v =
            if Tcmm_util.Prng.int rng ~bound:4 = 0 then current.(i)
            else not current.(i)
          in
          (i, v))
    in
    Array.iter (fun (i, v) -> current.(i) <- v) delta;
    let r_inc = Packed.update ss delta in
    let r_full = Packed.run ~check p current in
    ok := !ok && same_result r_full r_inc;
    ok := !ok && Packed.session_inputs ss = current
  done;
  !ok

let prop_packed_session_matches_full =
  S.qcheck_case ~count:120 "incremental update = from-scratch run (exactly)"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let c, input, rng = random_packed_circuit seed in
      if c.Circuit.num_inputs = 0 then true
      else session_agrees ~check:false c input rng)

let prop_packed_session_checked_matches_full =
  S.qcheck_case ~count:60 "checked incremental update = from-scratch run"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let c, input, rng = random_packed_circuit seed in
      if c.Circuit.num_inputs = 0 then true
      else session_agrees ~check:true c input rng)

let test_packed_session_rejects_bad_delta () =
  let b = Builder.create () in
  let ins = Builder.add_inputs b 2 in
  let g =
    Builder.add_gate b ~inputs:ins ~weights:[| 1; 1 |] ~threshold:2
  in
  Builder.output b g;
  let p = Packed.of_circuit (Builder.finalize b) in
  let ss = Packed.session p [| false; false |] in
  (try
     ignore (Packed.update ss [| (2, true) |]);
     Alcotest.fail "expected invalid_arg"
   with Invalid_argument _ -> ());
  (* Flip-then-unflip in one delta: a structural no-op. *)
  let r = Packed.update ss [| (0, true); (0, false) |] in
  S.check_bool "no-op outputs" true (r.Simulator.outputs = [| false |]);
  let stats = Packed.session_stats ss in
  S.check_int "two flips counted" 2 stats.Packed.su_flips;
  S.check_int "gates" 1 stats.Packed.su_gates

(* > 62 lanes forces the multi-word batch path; the wide shared layer with
   few distinct weights drives the grouped-popcount accumulation. *)
let test_packed_batch_multiword () =
  let rng = Tcmm_util.Prng.create ~seed:42 in
  let b = Builder.create () in
  let n = 10 in
  let ins = Builder.add_inputs b n in
  let wide =
    Array.init 120 (fun _ -> ins.(Tcmm_util.Prng.int rng ~bound:n))
    |> Array.to_list |> List.sort_uniq compare |> Array.of_list
  in
  (* Only three distinct weights: every group is a popcount candidate. *)
  let weights =
    Array.map (fun _ -> [| 1; -2; 3 |].(Tcmm_util.Prng.int rng ~bound:3)) wide
  in
  let layer =
    Builder.add_shared_gates b ~inputs:wide ~weights
      ~thresholds:(Array.init 8 (fun i -> (2 * i) - 6))
  in
  let top =
    Builder.add_gate b ~inputs:layer
      ~weights:(Array.map (fun _ -> 1) layer)
      ~threshold:4
  in
  Array.iter (Builder.output b) layer;
  Builder.output b top;
  let c = Builder.finalize b in
  let lanes = 70 in
  let batch =
    Array.init lanes (fun _ ->
        Array.init n (fun _ -> Tcmm_util.Prng.bool rng))
  in
  let p = Packed.of_circuit c in
  let br = Packed.run_batch p batch in
  S.check_int "lanes" lanes (Packed.lanes br);
  Array.iteri
    (fun lane input ->
      let r = Simulator.run ~check:true c input in
      S.check_bool "outputs agree" true
        (Packed.batch_outputs br ~lane = r.Simulator.outputs);
      S.check_int "firings agree" r.Simulator.firings
        (Packed.batch_firings br ~lane);
      S.check_bool "level firings agree" true
        (Packed.batch_level_firings br ~lane = r.Simulator.level_firings);
      for w = 0 to Circuit.num_wires c - 1 do
        S.check_bool "wire value agrees" (Simulator.value r w)
          (Packed.batch_value br ~lane w)
      done)
    batch

(* Lane counts straddling the 62-bit word boundary: 61 (one partial
   word), 62 (one exactly-full word), 63 (a one-lane second word) and
   124 (two full words).  The circuit goes through a Direct-mode arena
   so the specialized kernels (not just the generic CSR loop) sit on
   the dispatch path, and every batch is checked bit-identically
   against both the kernel-free batch and the sequential evaluator.
   One workspace is reused across the growing batches on purpose. *)
let test_packed_batch_lane_boundaries () =
  let rng = Tcmm_util.Prng.create ~seed:7 in
  let b = Builder.create ~mode:Builder.Direct () in
  let n = 24 in
  let ins = Builder.add_inputs b n in
  let block slots =
    let res, _ =
      Builder.templated b ~tag:91 ~data:[||] ~inputs:slots
        ~build:(fun () ->
          (* Three weight groups of eight: a carry-save kernel shape. *)
          let csa =
            Builder.add_shared_gates b ~inputs:slots
              ~weights:(Array.init n (fun i -> [| 1; -2; 4 |].(i / 8)))
              ~thresholds:[| -9; -3; 0; 4; 11; 26 |]
          in
          (* Single weight, fan-in above the truth-table cap: popcount. *)
          let pop =
            Builder.add_shared_gates b
              ~inputs:(Array.sub slots 0 12)
              ~weights:(Array.make 12 1) ~thresholds:[| 2; 5; 9 |]
          in
          (* Fan-in 3: truth-table kernel. *)
          let tt =
            Builder.add_gate b
              ~inputs:[| csa.(0); pop.(1); csa.(4) |]
              ~weights:[| 2; -1; 1 |] ~threshold:1
          in
          (Array.concat [ csa; pop; [| tt |] ], [||]))
    in
    res
  in
  let r1 = block ins in
  let r2 = block (Array.init n (fun i -> ins.(n - 1 - i))) in
  Array.iter (Builder.output b) r1;
  Array.iter (Builder.output b) r2;
  let arena = Builder.arena b in
  let p_k = Packed.of_arena ~kernels:true arena in
  let p_g = Packed.of_arena ~kernels:false arena in
  let cov = Packed.coverage p_k in
  S.check_bool "stamped segments have kernels" true
    (cov.Packed.kernel_segments > 0 && cov.Packed.kernel_gates > 0);
  S.check_int "no-kernels compile is all-fallback" 0
    (Packed.coverage p_g).Packed.kernel_segments;
  let ws = Packed.workspace () in
  List.iter
    (fun lanes ->
      let batch =
        Array.init lanes (fun _ ->
            Array.init n (fun _ -> Tcmm_util.Prng.bool rng))
      in
      let bk = Packed.run_batch ~ws p_k batch in
      let bg = Packed.run_batch p_g batch in
      S.check_int "lanes" lanes (Packed.lanes bk);
      for lane = 0 to lanes - 1 do
        let r = Packed.run p_k batch.(lane) in
        S.check_bool "outputs: kernel batch = generic batch" true
          (Packed.batch_outputs bk ~lane = Packed.batch_outputs bg ~lane);
        S.check_bool "outputs: batch = sequential" true
          (Packed.batch_outputs bk ~lane = r.Simulator.outputs);
        S.check_int "firings" r.Simulator.firings
          (Packed.batch_firings bk ~lane);
        S.check_int "generic firings" r.Simulator.firings
          (Packed.batch_firings bg ~lane);
        S.check_bool "level firings" true
          (Packed.batch_level_firings bk ~lane = r.Simulator.level_firings)
      done)
    [ 61; 62; 63; 124 ]

let test_packed_zero_gates () =
  let b = Builder.create () in
  let _ = Builder.add_inputs b 3 in
  let c = Builder.finalize b in
  let p = Packed.of_circuit c in
  let input = [| true; false; true |] in
  let r = Packed.run p input in
  S.check_int "no firings" 0 r.Simulator.firings;
  S.check_int "no outputs" 0 (Array.length r.Simulator.outputs);
  S.check_bool "matches reference" true
    (same_result (Simulator.run c input) r);
  let br = Packed.run_batch p [| input; [| false; false; false |] |] in
  S.check_int "batch lanes" 2 (Packed.lanes br);
  S.check_int "batch firings" 0 (Packed.batch_firings br ~lane:1)

(* Every engine must trap the same wrap-around under ~check:true. *)
let test_packed_overflow_all_engines () =
  let big = max_int / 2 in
  let b = Builder.create () in
  let ins = Builder.add_inputs b 3 in
  let _ =
    Builder.add_gate b ~inputs:ins ~weights:[| big; big; big |] ~threshold:1
  in
  let c = Builder.finalize b in
  let input = [| true; true; true |] in
  let p = Packed.of_circuit c in
  let traps name f =
    try
      ignore (f ());
      Alcotest.fail (name ^ ": expected Checked.Overflow")
    with Tcmm_util.Checked.Overflow _ -> ()
  in
  traps "reference" (fun () -> Simulator.run ~check:true c input);
  traps "packed seq" (fun () -> Packed.run ~check:true p input);
  traps "packed par" (fun () -> Packed.run ~check:true ~domains:3 p input);
  traps "packed batch" (fun () ->
      Packed.run_batch ~check:true p [| input; input |]);
  (* Unchecked evaluation still agrees with the (wrapping) reference. *)
  S.check_bool "unchecked agrees" true
    (same_result (Simulator.run c input) (Packed.run p input))

let test_engine_cache_reuse () =
  let b = Builder.create () in
  let x = Builder.add_input b in
  let g = Builder.add_gate b ~inputs:[| x |] ~weights:[| 1 |] ~threshold:1 in
  Builder.output b g;
  let c = Builder.finalize b in
  let cache = Engine.create_cache () in
  let p1 = Engine.packed cache c in
  let p2 = Engine.packed cache c in
  S.check_bool "compiled once" true (p1 == p2);
  let r_packed = Engine.run cache c [| true |] in
  let r_ref = Engine.run ~engine:Simulator.Reference cache c [| true |] in
  S.check_bool "engines agree" true (same_result r_packed r_ref)

(* Regression: the cache used to hold a single slot, so alternating
   between two circuits recompiled on every call. *)
let test_engine_cache_alternation () =
  let mk_circuit threshold =
    let b = Builder.create () in
    let x = Builder.add_input b in
    let g = Builder.add_gate b ~inputs:[| x |] ~weights:[| 2 |] ~threshold in
    Builder.output b g;
    Builder.finalize b
  in
  let c1 = mk_circuit 1 and c2 = mk_circuit 2 in
  let cache = Engine.create_cache ~capacity:4 () in
  let p1 = Engine.packed cache c1 in
  let p2 = Engine.packed cache c2 in
  for _ = 1 to 3 do
    S.check_bool "c1 stays compiled" true (Engine.packed cache c1 == p1);
    S.check_bool "c2 stays compiled" true (Engine.packed cache c2 == p2)
  done;
  let st = Engine.stats cache in
  S.check_int "misses" 2 st.Tcmm_util.Lru.misses;
  S.check_int "hits" 6 st.Tcmm_util.Lru.hits;
  S.check_int "evictions" 0 st.Tcmm_util.Lru.evictions;
  (* Physically equal circuits share an entry; structurally equal ones
     do not (identity keying). *)
  let c3 = mk_circuit 1 in
  let p3 = Engine.packed cache c3 in
  S.check_bool "identity-keyed" true (p3 != p1)

let () =
  Alcotest.run "tcmm_threshold"
    [
      ( "gate",
        [
          Alcotest.test_case "make mismatch" `Quick test_gate_make_mismatch;
          Alcotest.test_case "eval" `Quick test_gate_eval;
          Alcotest.test_case "eval checked" `Quick test_gate_eval_checked_matches;
          Alcotest.test_case "max_abs_weight" `Quick test_gate_max_abs_weight;
        ] );
      ( "builder",
        [
          Alcotest.test_case "inputs first" `Quick test_builder_inputs_first;
          Alcotest.test_case "dangling wire" `Quick test_builder_dangling_wire;
          Alcotest.test_case "depth tracking" `Quick test_builder_depth_tracking;
          Alcotest.test_case "stats" `Quick test_builder_stats;
          Alcotest.test_case "count-only = materialize" `Quick
            test_count_only_matches_materialize;
          Alcotest.test_case "shared gates = individual" `Quick
            test_shared_gates_match_individual;
          Alcotest.test_case "shared gates empty" `Quick test_shared_gates_empty_thresholds;
          Alcotest.test_case "shared gates validation" `Quick test_shared_gates_validation;
          Alcotest.test_case "count-only finalize" `Quick
            test_count_only_finalize_rejected;
          Alcotest.test_case "circuit stats" `Quick test_circuit_stats_match_builder;
          Alcotest.test_case "const wires" `Quick test_const_wires;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "and/or/majority" `Quick test_simulate_and_or_majority;
          Alcotest.test_case "xor depth 2" `Quick test_simulate_parity_2layer;
          Alcotest.test_case "firing counts" `Quick test_simulate_firings;
          Alcotest.test_case "input mismatch" `Quick test_simulate_input_mismatch;
          prop_random_circuit_firings_bounded;
        ] );
      ( "validate",
        [
          Alcotest.test_case "clean circuit" `Quick test_validate_clean;
          Alcotest.test_case "flags issues" `Quick test_validate_duplicate_and_zero;
          Alcotest.test_case "reports every gate" `Quick test_validate_reports_every_gate;
        ] );
      ( "spiking",
        [
          Alcotest.test_case "settles to DAG semantics" `Quick
            test_spiking_settles_to_simulator;
          Alcotest.test_case "settles trace circuit" `Quick
            test_spiking_settles_arithmetic_circuit;
          Alcotest.test_case "tick progression" `Quick test_spiking_tick_progression;
          Alcotest.test_case "max ticks" `Quick test_spiking_max_ticks;
        ] );
      ( "export",
        [
          Alcotest.test_case "netlist roundtrip" `Quick test_netlist_roundtrip;
          Alcotest.test_case "netlist roundtrip large" `Quick test_netlist_roundtrip_large;
          Alcotest.test_case "netlist rejects garbage" `Quick test_netlist_rejects_garbage;
          Alcotest.test_case "comments and blanks" `Quick test_netlist_comments_and_blanks;
          Alcotest.test_case "dot renders" `Quick test_dot_renders;
          Alcotest.test_case "write file" `Quick test_export_write_file;
        ] );
      ( "transform",
        [
          Alcotest.test_case "prune dead gates" `Quick test_prune_removes_dead_gates;
          Alcotest.test_case "prune keeps live" `Quick test_prune_keeps_everything_live;
          Alcotest.test_case "prune chain" `Quick test_prune_chain;
        ] );
      ( "energy",
        [
          Alcotest.test_case "summary" `Quick test_energy_summary;
          Alcotest.test_case "levels match simulator" `Quick
            test_energy_levels_match_simulator;
          Alcotest.test_case "empty rejected" `Quick test_energy_empty_rejected;
        ] );
      ( "properties",
        [
          prop_netlist_roundtrip_random;
          prop_spiking_settles_random;
          prop_prune_preserves_outputs;
        ] );
      ( "packed",
        [
          Alcotest.test_case "batch multiword" `Quick test_packed_batch_multiword;
          Alcotest.test_case "batch lane boundaries" `Quick
            test_packed_batch_lane_boundaries;
          Alcotest.test_case "zero gates" `Quick test_packed_zero_gates;
          Alcotest.test_case "overflow traps everywhere" `Quick
            test_packed_overflow_all_engines;
          Alcotest.test_case "engine cache" `Quick test_engine_cache_reuse;
          Alcotest.test_case "engine cache alternation" `Quick
            test_engine_cache_alternation;
          prop_packed_matches_reference;
          prop_packed_parallel_matches_reference;
          prop_packed_batch_matches_reference;
          Alcotest.test_case "session delta validation" `Quick
            test_packed_session_rejects_bad_delta;
          prop_packed_session_matches_full;
          prop_packed_session_checked_matches_full;
        ] );
    ]
