(* Cross-library integration properties: whole pipelines driven by
   randomized configurations.  Each property exercises several libraries
   at once (encode -> trees -> products -> combine -> simulate/export/
   spike -> decode) against exact integer references. *)

open Tcmm
open Tcmm_fastmm
open Tcmm_threshold
module S = Tcmm_test_support.Support
module Prng = Tcmm_util.Prng

let strassen = Instances.strassen
let profile = Sparsity.analyze strassen

(* A random small configuration: size, schedule, bits, signedness. *)
let random_config rng =
  let n = [| 2; 4; 4; 8 |].(Prng.int rng ~bound:4) in
  let l = Level_schedule.height ~t_dim:2 ~n in
  let schedule =
    match Prng.int rng ~bound:4 with
    | 0 -> Level_schedule.full ~l
    | 1 -> Level_schedule.direct ~l
    | 2 -> Level_schedule.uniform ~steps:(1 + Prng.int rng ~bound:l) ~l
    | _ -> Level_schedule.theorem45 ~profile ~d:(1 + Prng.int rng ~bound:3) ~n
  in
  let entry_bits = 1 + Prng.int rng ~bound:2 in
  let signed = Prng.bool rng in
  let share_top = Prng.bool rng in
  (n, schedule, entry_bits, signed, share_top)

let random_matrix rng ~n ~entry_bits ~signed =
  let hi = (1 lsl entry_bits) - 1 in
  let lo = if signed then -hi else 0 in
  Matrix.random rng ~rows:n ~cols:n ~lo ~hi

let prop_matmul_pipeline =
  S.qcheck_case ~count:25 "matmul circuit = exact product (random configs)"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let n, schedule, entry_bits, signed, share_top = random_config rng in
      let a = random_matrix rng ~n ~entry_bits ~signed in
      let b = random_matrix rng ~n ~entry_bits ~signed in
      let built =
        Matmul_circuit.build ~algo:strassen ~schedule ~signed_inputs:signed ~share_top
          ~entry_bits ~n ()
      in
      Matrix.equal (Matmul_circuit.run built ~a ~b) (Matrix.mul a b))

let prop_trace_pipeline =
  S.qcheck_case ~count:25 "trace circuit = exact trace (random configs)"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let n, schedule, entry_bits, signed, share_top = random_config rng in
      let m = random_matrix rng ~n ~entry_bits ~signed in
      let expect = Trace_circuit.reference m in
      let built =
        Trace_circuit.build ~algo:strassen ~schedule ~signed_inputs:signed ~share_top
          ~entry_bits ~tau:expect ~n ()
      in
      Trace_circuit.trace_value built m = expect && Trace_circuit.run built m)

let prop_trace_dp_matches_builder =
  S.qcheck_case ~count:25 "trace counting DP = count-only builder (random configs)"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let n, schedule, entry_bits, signed, share_top = random_config rng in
      let built =
        Trace_circuit.build ~mode:Builder.Count_only ~algo:strassen ~schedule
          ~signed_inputs:signed ~share_top ~entry_bits ~tau:1 ~n ()
      in
      let s = Trace_circuit.stats built in
      let dp =
        Gate_count.trace ~algo:strassen ~schedule ~entry_bits ~signed_inputs:signed
          ~share_top ~n ()
      in
      s.Stats.gates = dp.Gate_count.gates && s.Stats.edges = dp.Gate_count.edges)

let prop_matmul_dp_matches_builder =
  S.qcheck_case ~count:15 "matmul counting DP = count-only builder (random configs)"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let n, schedule, entry_bits, signed, share_top = random_config rng in
      (* Keep the heaviest direct-combine cases out of the property's
         budget. *)
      let n = min n 4 in
      let schedule =
        if Level_schedule.height ~t_dim:2 ~n < Level_schedule.steps schedule then
          Level_schedule.full ~l:(Level_schedule.height ~t_dim:2 ~n)
        else
          Level_schedule.of_levels ~description:"clipped"
            (Array.of_list
               (List.sort_uniq compare
                  (List.filter
                     (fun h -> h <= Level_schedule.height ~t_dim:2 ~n)
                     (Array.to_list schedule.Level_schedule.levels)
                  @ [ Level_schedule.height ~t_dim:2 ~n ])))
      in
      let built =
        Matmul_circuit.build ~mode:Builder.Count_only ~algo:strassen ~schedule
          ~signed_inputs:signed ~share_top ~entry_bits ~n ()
      in
      let s = Matmul_circuit.stats built in
      let dp =
        Gate_count_matmul.matmul ~algo:strassen ~schedule ~entry_bits
          ~signed_inputs:signed ~share_top ~n ()
      in
      s.Stats.gates = dp.Gate_count.gates && s.Stats.edges = dp.Gate_count.edges)

let prop_tiled_matches_mul =
  S.qcheck_case ~count:20 "tiled rectangular product = exact product"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let block_l = 1 + Prng.int rng ~bound:2 in
      let block = 1 lsl block_l in
      let dim () = block * (1 + Prng.int rng ~bound:2) in
      let rows = dim () and inner = dim () and cols = dim () in
      let entry_bits = 1 + Prng.int rng ~bound:2 in
      let signed = Prng.bool rng in
      let hi = (1 lsl entry_bits) - 1 in
      let lo = if signed then -hi else 0 in
      let a = Matrix.random rng ~rows ~cols:inner ~lo ~hi in
      let b = Matrix.random rng ~rows:inner ~cols ~lo ~hi in
      let built =
        Tiled_matmul.build ~algo:strassen ~schedule:(Level_schedule.full ~l:block_l)
          ~signed_inputs:signed ~entry_bits ~rows ~inner ~cols ()
      in
      Matrix.equal (Tiled_matmul.run built ~a ~b) (Matrix.mul a b))

let prop_graph_threshold_queries =
  S.qcheck_case ~count:20 "triangle threshold query = exact comparison"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let n = 8 in
      let p = 0.2 +. (0.6 *. Prng.float rng) in
      let g = Tcmm_graph.Generate.erdos_renyi rng ~n ~p in
      let exact = Tcmm_graph.Triangles.count g in
      let tau = Prng.int rng ~bound:(max 1 (2 * max exact 1)) in
      let schedule = Level_schedule.theorem45 ~profile ~d:2 ~n in
      let built =
        Trace_circuit.build ~algo:strassen ~schedule ~entry_bits:1 ~tau:(6 * tau) ~n ()
      in
      Trace_circuit.run built (Tcmm_graph.Graph.adjacency g) = (exact >= tau))

let prop_export_spike_roundtrip =
  S.qcheck_case ~count:10 "export -> parse -> spike = simulate"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let m = random_matrix rng ~n:4 ~entry_bits:1 ~signed:false in
      let built =
        Trace_circuit.build ~algo:strassen ~schedule:(Level_schedule.full ~l:2)
          ~entry_bits:1 ~tau:(Prng.int_range rng ~lo:0 ~hi:20) ~n:4 ()
      in
      match built.Trace_circuit.circuit with
      | None -> false
      | Some c ->
          let reloaded = Export.of_netlist (Export.to_netlist c) in
          let input = Trace_circuit.encode_input built m in
          let _, spiked = Spiking.settle reloaded input in
          spiked = Simulator.read_outputs c input)

let prop_prune_keeps_matmul_exact =
  S.qcheck_case ~count:10 "pruned matmul circuit still computes the product"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let a = random_matrix rng ~n:4 ~entry_bits:2 ~signed:true in
      let b = random_matrix rng ~n:4 ~entry_bits:2 ~signed:true in
      let built =
        Matmul_circuit.build ~algo:strassen ~schedule:(Level_schedule.full ~l:2)
          ~signed_inputs:true ~entry_bits:2 ~n:4 ()
      in
      match built.Matmul_circuit.circuit with
      | None -> false
      | Some c ->
          let { Transform.circuit = pruned; wire_map } = Transform.prune c in
          let input = Matmul_circuit.encode_inputs built ~a ~b in
          let r = Simulator.run pruned input in
          let read w = Simulator.value r wire_map.(w) in
          let decoded =
            Matrix.init ~rows:4 ~cols:4 (fun i j ->
                Tcmm_arith.Repr.eval_sbits read built.Matmul_circuit.c_grid.(i).(j))
          in
          Matrix.equal decoded (Matrix.mul a b))

let prop_energy_deterministic =
  S.qcheck_case ~count:10 "simulation and firing counts are deterministic"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let m = random_matrix rng ~n:4 ~entry_bits:1 ~signed:false in
      let built =
        Trace_circuit.build ~algo:strassen ~schedule:(Level_schedule.full ~l:2)
          ~entry_bits:1 ~tau:3 ~n:4 ()
      in
      match built.Trace_circuit.circuit with
      | None -> false
      | Some c ->
          let input = Trace_circuit.encode_input built m in
          let r1 = Simulator.run c input and r2 = Simulator.run c input in
          r1.Simulator.firings = r2.Simulator.firings
          && r1.Simulator.firings <= Circuit.num_gates c
          && r1.Simulator.outputs = r2.Simulator.outputs)

let prop_validate_clean_constructions =
  S.qcheck_case ~count:10 "constructed circuits pass structural validation"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let n, schedule, entry_bits, signed, share_top = random_config rng in
      ignore rng;
      let built =
        Trace_circuit.build ~algo:strassen ~schedule ~signed_inputs:signed ~share_top
          ~entry_bits ~tau:1 ~n ()
      in
      match built.Trace_circuit.circuit with
      | None -> false
      | Some c ->
          (* Our constructors never emit error-severity issues (dangling
             wires, duplicate inputs, zero weights); warnings such as
             constant gates can legitimately appear near the threshold
             comparator. *)
          List.for_all
            (fun issue -> Validate.severity issue = `Warning)
            (Validate.check c))

let () =
  Alcotest.run "tcmm_integration"
    [
      ( "pipelines",
        [
          prop_matmul_pipeline;
          prop_trace_pipeline;
          prop_tiled_matches_mul;
          prop_graph_threshold_queries;
        ] );
      ( "counting",
        [ prop_trace_dp_matches_builder; prop_matmul_dp_matches_builder ] );
      ( "interop",
        [
          prop_export_spike_roundtrip;
          prop_prune_keeps_matmul_exact;
          prop_energy_deterministic;
          prop_validate_clean_constructions;
        ] );
    ]
