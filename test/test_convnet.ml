open Tcmm_convnet
module S = Tcmm_test_support.Support
module Matrix = Tcmm_fastmm.Matrix
module Prng = Tcmm_util.Prng

(* ------------------------------------------------------------------ *)
(* Image                                                              *)
(* ------------------------------------------------------------------ *)

let test_image_basic () =
  let img = Image.init ~channels:2 ~height:3 ~width:4 (fun c y x -> (100 * c) + (10 * y) + x) in
  S.check_int "get" 112 (Image.get img ~c:1 ~y:1 ~x:2);
  Image.set img ~c:0 ~y:2 ~x:3 (-5);
  S.check_int "set/get" (-5) (Image.get img ~c:0 ~y:2 ~x:3);
  (try
     ignore (Image.get img ~c:2 ~y:0 ~x:0);
     Alcotest.fail "expected invalid_arg"
   with Invalid_argument _ -> ());
  try
    ignore (Image.create ~channels:0 ~height:1 ~width:1);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_image_equal () =
  let a = Image.init ~channels:1 ~height:2 ~width:2 (fun _ y x -> y + x) in
  let b = Image.init ~channels:1 ~height:2 ~width:2 (fun _ y x -> y + x) in
  S.check_bool "equal" true (Image.equal a b);
  Image.set b ~c:0 ~y:0 ~x:0 9;
  S.check_bool "unequal" false (Image.equal a b)

(* ------------------------------------------------------------------ *)
(* Im2col                                                             *)
(* ------------------------------------------------------------------ *)

let test_output_dims () =
  let img = Image.create ~channels:1 ~height:5 ~width:7 in
  Alcotest.(check (pair int int)) "stride 1" (3, 5)
    (Im2col.output_dims { Im2col.q = 3; stride = 1 } img);
  Alcotest.(check (pair int int)) "stride 2" (2, 3)
    (Im2col.output_dims { Im2col.q = 3; stride = 2 } img);
  (try
     ignore (Im2col.output_dims { Im2col.q = 8; stride = 1 } img);
     Alcotest.fail "expected invalid_arg (kernel too big)"
   with Invalid_argument _ -> ());
  try
    ignore (Im2col.output_dims { Im2col.q = 2; stride = 0 } img);
    Alcotest.fail "expected invalid_arg (stride)"
  with Invalid_argument _ -> ()

let test_patch_matrix_shape_and_values () =
  let img = Image.init ~channels:2 ~height:3 ~width:3 (fun c y x -> (100 * c) + (10 * y) + x) in
  let spec = { Im2col.q = 2; stride = 1 } in
  let p = Im2col.patch_matrix spec img in
  S.check_int "rows = P" 4 (Matrix.rows p);
  S.check_int "cols = Q" 8 (Matrix.cols p);
  (* Patch (0,0), channel 0 values: 0, 1, 10, 11; then channel 1. *)
  S.check_int "first value" 0 (Matrix.get p 0 0);
  S.check_int "c0 (1,1)" 11 (Matrix.get p 0 3);
  S.check_int "c1 first" 100 (Matrix.get p 0 4);
  (* Patch (1,1) starts at y=1,x=1: c0 values 11, 12, 21, 22. *)
  S.check_int "patch 3 value" 11 (Matrix.get p 3 0)

let test_kernel_matrix () =
  let k0 = Image.init ~channels:1 ~height:2 ~width:2 (fun _ y x -> (10 * y) + x) in
  let k1 = Image.init ~channels:1 ~height:2 ~width:2 (fun _ y x -> -((10 * y) + x)) in
  let km = Im2col.kernel_matrix [| k0; k1 |] in
  S.check_int "rows = Q" 4 (Matrix.rows km);
  S.check_int "cols = K" 2 (Matrix.cols km);
  S.check_int "k0 (1,1)" 11 (Matrix.get km 3 0);
  S.check_int "k1 (0,1)" (-1) (Matrix.get km 1 1);
  (try
     ignore (Im2col.kernel_matrix [||]);
     Alcotest.fail "expected invalid_arg (empty)"
   with Invalid_argument _ -> ());
  let tall = Image.create ~channels:1 ~height:3 ~width:2 in
  try
    ignore (Im2col.kernel_matrix [| tall |]);
    Alcotest.fail "expected invalid_arg (non-square)"
  with Invalid_argument _ -> ()

let test_embed () =
  let m = Matrix.of_rows [| [| 1; 2 |] |] in
  let e = Im2col.embed m ~n:4 in
  S.check_int "copied" 2 (Matrix.get e 0 1);
  S.check_int "padding" 0 (Matrix.get e 3 3);
  try
    ignore (Im2col.embed (Matrix.create ~rows:5 ~cols:2) ~n:4);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Conv                                                               *)
(* ------------------------------------------------------------------ *)

let random_setup seed ~channels ~size ~q ~stride ~kernels =
  let rng = Prng.create ~seed in
  let img = Image.random rng ~channels ~height:size ~width:size ~lo:(-3) ~hi:3 in
  let ks =
    Array.init kernels (fun _ -> Image.random rng ~channels ~height:q ~width:q ~lo:(-2) ~hi:2)
  in
  ({ Im2col.q; stride }, img, ks)

let test_direct_known_edge_detector () =
  (* 1-channel 3x3 image, 2x2 kernel [[1;-1];[1;-1]]: horizontal contrast. *)
  let img = Image.init ~channels:1 ~height:3 ~width:3 (fun _ _ x -> x) in
  let ker = Image.init ~channels:1 ~height:2 ~width:2 (fun _ _ x -> if x = 0 then 1 else -1) in
  let scores = Conv.direct { Im2col.q = 2; stride = 1 } img [| ker |] in
  (* Every patch has columns differing by 1 twice: score -2. *)
  Array.iter
    (Array.iter (fun v -> S.check_int "uniform gradient" (-2) v))
    scores.(0)

let test_via_matmul_matches_direct () =
  List.iter
    (fun (seed, channels, size, q, stride, kernels) ->
      let spec, img, ks = random_setup seed ~channels ~size ~q ~stride ~kernels in
      let d = Conv.direct spec img ks in
      let m = Conv.via_matmul spec img ks in
      S.check_bool
        (Printf.sprintf "seed=%d ch=%d n=%d q=%d s=%d k=%d" seed channels size q stride kernels)
        true (d = m))
    [
      (1, 1, 4, 2, 1, 1);
      (2, 2, 5, 3, 1, 2);
      (3, 3, 6, 2, 2, 4);
      (4, 1, 8, 3, 2, 3);
      (5, 2, 7, 3, 2, 2);
    ]

let test_circuit_size () =
  let spec, img, ks = random_setup 6 ~channels:1 ~size:5 ~q:2 ~stride:1 ~kernels:2 in
  (* P = 16, Q = 4, K = 2 -> need 16 -> T^l = 16 for T = 2. *)
  S.check_int "pow2 envelope" 16 (Conv.circuit_size spec img ks ~t_dim:2);
  S.check_int "pow3 envelope" 27 (Conv.circuit_size spec img ks ~t_dim:3)

(* ------------------------------------------------------------------ *)
(* End-to-end: conv layer through the threshold circuit               *)
(* ------------------------------------------------------------------ *)

let test_conv_through_circuit () =
  let spec, img, ks = random_setup 7 ~channels:1 ~size:4 ~q:2 ~stride:2 ~kernels:2 in
  (* P = 4, Q = 4, K = 2 -> 4x4 circuit. *)
  let n = Conv.circuit_size spec img ks ~t_dim:2 in
  S.check_int "n = 4" 4 n;
  let a = Im2col.embed (Im2col.patch_matrix spec img) ~n in
  let b = Im2col.embed (Im2col.kernel_matrix ks) ~n in
  let built =
    Tcmm.Matmul_circuit.build ~algo:Tcmm_fastmm.Instances.strassen
      ~schedule:(Tcmm.Level_schedule.full ~l:2) ~signed_inputs:true ~entry_bits:3 ~n ()
  in
  let c = Tcmm.Matmul_circuit.run built ~a ~b in
  let scores = Conv.direct spec img ks in
  let oh, ow = Im2col.output_dims spec img in
  for k = 0 to 1 do
    for py = 0 to oh - 1 do
      for px = 0 to ow - 1 do
        S.check_int
          (Printf.sprintf "score k=%d (%d,%d)" k py px)
          scores.(k).(py).(px)
          (Matrix.get c ((py * ow) + px) k)
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* Inference (fixed-weight in-circuit networks)                       *)
(* ------------------------------------------------------------------ *)

open Tcmm_threshold

let image_values (img : Image.t) =
  Array.init img.Image.channels (fun c ->
      Array.init img.Image.height (fun y ->
          Array.init img.Image.width (fun x -> Image.get img ~c ~y ~x)))

let test_inference_conv_matches_reference () =
  let rng = Prng.create ~seed:71 in
  List.iter
    (fun (channels, size, q, stride, k, signed) ->
      let img =
        Image.random rng ~channels ~height:size ~width:size
          ~lo:(if signed then -3 else 0)
          ~hi:3
      in
      let kernels =
        Array.init k (fun _ -> Image.random rng ~channels ~height:q ~width:q ~lo:(-2) ~hi:2)
      in
      let spec = { Im2col.q; stride } in
      let b = Builder.create () in
      let fm, write = Inference.input_image b ~channels ~height:size ~width:size ~entry_bits:2 ~signed in
      let out = Inference.conv_fixed b ~spec ~kernels fm in
      let c = Builder.finalize b in
      let input = Array.make (Circuit.num_wires c - Circuit.num_gates c) false in
      let input = Array.sub input 0 c.Circuit.num_inputs in
      write img input;
      let r = Simulator.run ~check:true c input in
      let got = Inference.read_feature_map (Simulator.value r) out in
      let expect = Inference.reference_conv spec kernels (image_values img) in
      S.check_bool
        (Printf.sprintf "conv ch=%d n=%d q=%d s=%d k=%d" channels size q stride k)
        true (got = expect))
    [ (1, 4, 2, 1, 2, false); (2, 4, 2, 2, 3, true); (1, 5, 3, 1, 1, true) ]

let test_inference_relu () =
  let rng = Prng.create ~seed:72 in
  let img = Image.random rng ~channels:1 ~height:4 ~width:4 ~lo:(-3) ~hi:3 in
  let ker = Image.random rng ~channels:1 ~height:2 ~width:2 ~lo:(-2) ~hi:2 in
  let spec = { Im2col.q = 2; stride = 1 } in
  let b = Builder.create () in
  let fm, write = Inference.input_image b ~channels:1 ~height:4 ~width:4 ~entry_bits:2 ~signed:true in
  let conv = Inference.conv_fixed b ~spec ~kernels:[| ker |] fm in
  let rectified = Inference.relu b conv in
  let c = Builder.finalize b in
  let input = Array.make c.Circuit.num_inputs false in
  write img input;
  let r = Simulator.run ~check:true c input in
  let got = Inference.read_feature_map (Simulator.value r) rectified in
  let expect =
    Inference.reference_relu (Inference.reference_conv spec [| ker |] (image_values img))
  in
  S.check_bool "relu(conv)" true (got = expect);
  (* ReLU outputs carry no negative part. *)
  Array.iter
    (Array.iter
       (Array.iter (fun (sb : Tcmm_arith.Repr.signed_bits) ->
            S.check_int "nonneg encoding" 0 (Array.length sb.Tcmm_arith.Repr.neg_bits))))
    rectified

let test_inference_relu_identity_on_unsigned () =
  (* An unsigned feature map passes through relu with zero gates. *)
  let b = Builder.create () in
  let fm, _ = Inference.input_image b ~channels:1 ~height:2 ~width:2 ~entry_bits:2 ~signed:false in
  let before = Builder.num_gates b in
  let _ = Inference.relu b fm in
  S.check_int "no gates" before (Builder.num_gates b)

let test_inference_two_layer_network () =
  let rng = Prng.create ~seed:73 in
  let img = Image.random rng ~channels:1 ~height:6 ~width:6 ~lo:0 ~hi:3 in
  let k1 = Array.init 2 (fun _ -> Image.random rng ~channels:1 ~height:3 ~width:3 ~lo:(-2) ~hi:2) in
  let k2 = Array.init 2 (fun _ -> Image.random rng ~channels:2 ~height:2 ~width:2 ~lo:(-1) ~hi:1) in
  let s1 = { Im2col.q = 3; stride = 1 } and s2 = { Im2col.q = 2; stride = 2 } in
  let b = Builder.create () in
  let fm, write = Inference.input_image b ~channels:1 ~height:6 ~width:6 ~entry_bits:2 ~signed:false in
  let layer1 = Inference.relu b (Inference.conv_fixed b ~spec:s1 ~kernels:k1 fm) in
  let layer2 = Inference.conv_fixed b ~spec:s2 ~kernels:k2 layer1 in
  let c = Builder.finalize b in
  let input = Array.make c.Circuit.num_inputs false in
  write img input;
  let r = Simulator.run ~check:true c input in
  let got = Inference.read_feature_map (Simulator.value r) layer2 in
  let expect =
    Inference.reference_conv s2 k2
      (Inference.reference_relu (Inference.reference_conv s1 k1 (image_values img)))
  in
  S.check_bool "two-layer network" true (got = expect);
  (* The whole network is constant-depth. *)
  let st = Circuit.stats c in
  S.check_bool "depth <= 10" true (st.Stats.depth <= 10)

let test_inference_bias () =
  let rng = Prng.create ~seed:74 in
  let img = Image.random rng ~channels:1 ~height:4 ~width:4 ~lo:(-3) ~hi:3 in
  let kernels =
    Array.init 3 (fun _ -> Image.random rng ~channels:1 ~height:2 ~width:2 ~lo:(-2) ~hi:2)
  in
  let bias = [| 5; -7; 0 |] in
  let spec = { Im2col.q = 2; stride = 1 } in
  let b = Builder.create () in
  let fm, write =
    Inference.input_image b ~channels:1 ~height:4 ~width:4 ~entry_bits:2 ~signed:true
  in
  let out = Inference.conv_fixed ~bias b ~spec ~kernels fm in
  let c = Builder.finalize b in
  let input = Array.make c.Circuit.num_inputs false in
  write img input;
  let r = Simulator.run ~check:true c input in
  let got = Inference.read_feature_map (Simulator.value r) out in
  let expect = Inference.reference_conv ~bias spec kernels (image_values img) in
  S.check_bool "biased conv" true (got = expect);
  (* A zero bias array must behave exactly like no bias. *)
  let b2 = Builder.create () in
  let fm2, _ =
    Inference.input_image b2 ~channels:1 ~height:4 ~width:4 ~entry_bits:2 ~signed:true
  in
  let before = Builder.num_gates b2 in
  let _ = Inference.conv_fixed ~bias:[| 0; 0; 0 |] b2 ~spec ~kernels fm2 in
  let all_zero_gates = Builder.num_gates b2 - before in
  let b3 = Builder.create () in
  let fm3, _ =
    Inference.input_image b3 ~channels:1 ~height:4 ~width:4 ~entry_bits:2 ~signed:true
  in
  let before3 = Builder.num_gates b3 in
  let _ = Inference.conv_fixed b3 ~spec ~kernels fm3 in
  S.check_int "zero bias = no bias" (Builder.num_gates b3 - before3) all_zero_gates;
  (* Wrong bias length rejected. *)
  let b4 = Builder.create () in
  let fm4, _ =
    Inference.input_image b4 ~channels:1 ~height:4 ~width:4 ~entry_bits:1 ~signed:false
  in
  try
    ignore (Inference.conv_fixed ~bias:[| 1 |] b4 ~spec ~kernels fm4);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_inference_max_pool () =
  let rng = Prng.create ~seed:75 in
  let img = Image.random rng ~channels:2 ~height:4 ~width:4 ~lo:0 ~hi:7 in
  let b = Builder.create () in
  let fm, write =
    Inference.input_image b ~channels:2 ~height:4 ~width:4 ~entry_bits:3 ~signed:false
  in
  let pooled = Inference.max_pool b ~size:2 fm in
  let c = Builder.finalize b in
  let input = Array.make c.Circuit.num_inputs false in
  write img input;
  let r = Simulator.run ~check:true c input in
  let got = Inference.read_feature_map (Simulator.value r) pooled in
  let expect = Inference.reference_max_pool ~size:2 (image_values img) in
  S.check_bool "2x2 max pool" true (got = expect);
  (* Rejections. *)
  let b2 = Builder.create () in
  let fm2, _ =
    Inference.input_image b2 ~channels:1 ~height:3 ~width:3 ~entry_bits:1 ~signed:false
  in
  (try
     ignore (Inference.max_pool b2 ~size:2 fm2);
     Alcotest.fail "expected invalid_arg (divisibility)"
   with Invalid_argument _ -> ());
  let b3 = Builder.create () in
  let fm3, _ =
    Inference.input_image b3 ~channels:1 ~height:2 ~width:2 ~entry_bits:1 ~signed:true
  in
  try
    ignore (Inference.max_pool b3 ~size:2 fm3);
    Alcotest.fail "expected invalid_arg (signed)"
  with Invalid_argument _ -> ()

let test_inference_lenet_style_pipeline () =
  (* conv -> relu -> max-pool -> conv, all in one circuit. *)
  let rng = Prng.create ~seed:76 in
  let img = Image.random rng ~channels:1 ~height:8 ~width:8 ~lo:0 ~hi:3 in
  let k1 =
    Array.init 2 (fun _ -> Image.random rng ~channels:1 ~height:3 ~width:3 ~lo:(-2) ~hi:2)
  in
  let bias = [| 3; -2 |] in
  let k2 =
    Array.init 2 (fun _ -> Image.random rng ~channels:2 ~height:2 ~width:2 ~lo:(-1) ~hi:1)
  in
  let s1 = { Im2col.q = 3; stride = 1 } and s2 = { Im2col.q = 2; stride = 1 } in
  let b = Builder.create () in
  let fm, write =
    Inference.input_image b ~channels:1 ~height:8 ~width:8 ~entry_bits:2 ~signed:false
  in
  let l1 = Inference.relu b (Inference.conv_fixed ~bias b ~spec:s1 ~kernels:k1 fm) in
  let l2 = Inference.max_pool b ~size:2 l1 in
  let l3 = Inference.conv_fixed b ~spec:s2 ~kernels:k2 l2 in
  let c = Builder.finalize b in
  let input = Array.make c.Circuit.num_inputs false in
  write img input;
  let r = Simulator.run ~check:true c input in
  let got = Inference.read_feature_map (Simulator.value r) l3 in
  let expect =
    Inference.reference_conv s2 k2
      (Inference.reference_max_pool ~size:2
         (Inference.reference_relu
            (Inference.reference_conv ~bias s1 k1 (image_values img))))
  in
  S.check_bool "lenet-style pipeline" true (got = expect)

let test_inference_rejections () =
  let b = Builder.create () in
  let fm, _ = Inference.input_image b ~channels:2 ~height:4 ~width:4 ~entry_bits:1 ~signed:false in
  let bad_kernel = Image.create ~channels:1 ~height:2 ~width:2 in
  try
    ignore (Inference.conv_fixed b ~spec:{ Im2col.q = 2; stride = 1 } ~kernels:[| bad_kernel |] fm);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Served inference (protocol v7 Run_conv through a forked daemon)    *)
(* ------------------------------------------------------------------ *)

module P = Tcmm_server.Protocol

(* Every served score plane must be bit-identical to the direct
   convolution — across algorithms (base-2 Strassen, base-3 Laderman)
   and both linear-layer builds.  Pipelined like a real client so the
   jobs coalesce into one matmul batch server-side. *)
let test_served_conv_bit_identical () =
  Tcmm_check.Harness.with_loopback_server (fun cl ->
      List.iter
        (fun (label, algo, n, kronpow, seed, size, kernels) ->
          let spec_c, img, ks =
            random_setup seed ~channels:1 ~size ~q:2 ~stride:1 ~kernels
          in
          let spec =
            { P.kind = P.Conv; algo; schedule = "thm45"; d = 2; n;
              entry_bits = 2; signed = true; tau = 0; kronpow }
          in
          let job =
            { P.cj_q = 2; cj_stride = 1; cj_image = img; cj_kernels = ks }
          in
          (* Two pipelined copies: the reply must be deterministic and
             the batcher must keep per-request framing straight. *)
          Tcmm_server.Client.send cl (P.Run_conv (spec, job));
          Tcmm_server.Client.send cl (P.Run_conv (spec, job));
          let expect = Conv.direct spec_c img ks in
          for i = 1 to 2 do
            match Tcmm_server.Client.recv cl with
            | Ok (P.Conv_result (scores, firings)) ->
                S.check_bool
                  (Printf.sprintf "%s reply %d bit-identical" label i)
                  true (scores = expect);
                S.check_bool
                  (Printf.sprintf "%s reply %d counted firings" label i)
                  true (firings > 0)
            | Ok (P.Error msg) -> Alcotest.fail (label ^ ": server error: " ^ msg)
            | Ok _ -> Alcotest.fail (label ^ ": unexpected response")
            | Error msg -> Alcotest.fail (label ^ ": transport: " ^ msg)
          done)
        [
          ("strassen", "strassen", 16, false, 81, 4, 2);
          ("strassen-kronpow", "strassen", 16, true, 82, 4, 2);
          ("laderman", "laderman", 9, false, 83, 4, 2);
        ])

let test_served_conv_rejects_oversized () =
  (* A job whose patch matrix cannot fit the spec's circuit must come
     back as a typed protocol error, not a wrong answer or a hang. *)
  Tcmm_check.Harness.with_loopback_server (fun cl ->
      let _, img, ks = random_setup 84 ~channels:1 ~size:8 ~q:2 ~stride:1 ~kernels:1 in
      let spec =
        { P.kind = P.Conv; algo = "strassen"; schedule = "thm45"; d = 2;
          n = 4; entry_bits = 2; signed = true; tau = 0; kronpow = false }
      in
      let job = { P.cj_q = 2; cj_stride = 1; cj_image = img; cj_kernels = ks } in
      match Tcmm_server.Client.request cl (P.Run_conv (spec, job)) with
      | Ok (P.Error _) -> ()
      | Ok _ -> Alcotest.fail "oversized conv job accepted"
      | Error msg -> Alcotest.fail ("transport: " ^ msg))

let () =
  Alcotest.run "tcmm_convnet"
    [
      (* The served suite comes first: it forks, and OCaml forbids
         Unix.fork once any other test has spawned a domain. *)
      ( "served",
        [
          Alcotest.test_case "conv bit-identical" `Slow
            test_served_conv_bit_identical;
          Alcotest.test_case "oversized job rejected" `Quick
            test_served_conv_rejects_oversized;
        ] );
      ( "image",
        [
          Alcotest.test_case "basic" `Quick test_image_basic;
          Alcotest.test_case "equal" `Quick test_image_equal;
        ] );
      ( "im2col",
        [
          Alcotest.test_case "output dims" `Quick test_output_dims;
          Alcotest.test_case "patch matrix" `Quick test_patch_matrix_shape_and_values;
          Alcotest.test_case "kernel matrix" `Quick test_kernel_matrix;
          Alcotest.test_case "embed" `Quick test_embed;
        ] );
      ( "conv",
        [
          Alcotest.test_case "edge detector" `Quick test_direct_known_edge_detector;
          Alcotest.test_case "matmul = direct" `Quick test_via_matmul_matches_direct;
          Alcotest.test_case "circuit size" `Quick test_circuit_size;
        ] );
      ( "end_to_end",
        [ Alcotest.test_case "conv through circuit" `Quick test_conv_through_circuit ] );
      ( "inference",
        [
          Alcotest.test_case "conv_fixed" `Quick test_inference_conv_matches_reference;
          Alcotest.test_case "relu" `Quick test_inference_relu;
          Alcotest.test_case "relu identity" `Quick test_inference_relu_identity_on_unsigned;
          Alcotest.test_case "two-layer network" `Quick test_inference_two_layer_network;
          Alcotest.test_case "bias" `Quick test_inference_bias;
          Alcotest.test_case "max pool" `Quick test_inference_max_pool;
          Alcotest.test_case "lenet-style pipeline" `Quick test_inference_lenet_style_pipeline;
          Alcotest.test_case "rejections" `Quick test_inference_rejections;
        ] );
    ]
