open Tcmm_graph
module S = Tcmm_test_support.Support
module Matrix = Tcmm_fastmm.Matrix
module Prng = Tcmm_util.Prng

(* ------------------------------------------------------------------ *)
(* Graph                                                              *)
(* ------------------------------------------------------------------ *)

let test_graph_basic () =
  let g = Graph.empty 4 in
  S.check_int "vertices" 4 (Graph.num_vertices g);
  S.check_int "no edges" 0 (Graph.num_edges g);
  let g = Graph.add_edge g 2 0 in
  S.check_bool "edge both ways" true (Graph.has_edge g 0 2 && Graph.has_edge g 2 0);
  S.check_int "one edge" 1 (Graph.num_edges g);
  let g2 = Graph.add_edge g 0 2 in
  S.check_int "idempotent" 1 (Graph.num_edges g2);
  Alcotest.(check (list (pair int int))) "edges normalized" [ (0, 2) ] (Graph.edges g)

let test_graph_rejections () =
  let g = Graph.empty 3 in
  (try
     ignore (Graph.add_edge g 1 1);
     Alcotest.fail "expected invalid_arg (self-loop)"
   with Invalid_argument _ -> ());
  (try
     ignore (Graph.add_edge g 0 3);
     Alcotest.fail "expected invalid_arg (range)"
   with Invalid_argument _ -> ());
  try
    ignore (Graph.empty 0);
    Alcotest.fail "expected invalid_arg (empty)"
  with Invalid_argument _ -> ()

let test_graph_degree_neighbours () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (0, 2); (0, 3); (2, 3) ] in
  S.check_int "deg 0" 3 (Graph.degree g 0);
  S.check_int "deg 4" 0 (Graph.degree g 4);
  Alcotest.(check (list int)) "neighbours 0" [ 1; 2; 3 ] (Graph.neighbours g 0);
  Alcotest.(check (list int)) "neighbours 3" [ 0; 2 ] (Graph.neighbours g 3)

let test_graph_adjacency_roundtrip () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (0, 3) ] in
  let a = Graph.adjacency g in
  S.check_int "symmetric" (Matrix.get a 0 1) (Matrix.get a 1 0);
  S.check_int "diagonal zero" 0 (Matrix.get a 2 2);
  let g2 = Graph.of_adjacency a in
  Alcotest.(check (list (pair int int))) "roundtrip" (Graph.edges g) (Graph.edges g2)

let test_graph_of_adjacency_rejections () =
  (try
     ignore (Graph.of_adjacency (Matrix.identity 3));
     Alcotest.fail "expected invalid_arg (diag)"
   with Invalid_argument _ -> ());
  let m = Matrix.create ~rows:2 ~cols:2 in
  Matrix.set m 0 1 2;
  Matrix.set m 1 0 2;
  try
    ignore (Graph.of_adjacency m);
    Alcotest.fail "expected invalid_arg (non-binary)"
  with Invalid_argument _ -> ()

let test_graph_pad () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let padded = Graph.pad_to g 8 in
  S.check_int "vertices" 8 (Graph.num_vertices padded);
  S.check_int "same triangles" (Triangles.count g) (Triangles.count padded);
  try
    ignore (Graph.pad_to g 2);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Triangles                                                          *)
(* ------------------------------------------------------------------ *)

let test_triangles_known () =
  S.check_int "K3" 1 (Triangles.count (Generate.complete 3));
  S.check_int "K4" 4 (Triangles.count (Generate.complete 4));
  S.check_int "K5" 10 (Triangles.count (Generate.complete 5));
  S.check_int "K6" 20 (Triangles.count (Generate.complete 6));
  S.check_int "empty" 0 (Triangles.count (Graph.empty 5));
  let c4 = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  S.check_int "4-cycle" 0 (Triangles.count c4)

let test_triangles_trace_agreement () =
  let rng = Prng.create ~seed:61 in
  for _ = 1 to 10 do
    let g = Generate.erdos_renyi rng ~n:10 ~p:0.4 in
    S.check_int "count = trace/6" (Triangles.count g) (Triangles.count_via_trace g)
  done

let test_wedges_known () =
  S.check_int "K4 wedges" 12 (Triangles.wedges (Generate.complete 4));
  S.check_int "star wedges" 6
    (Triangles.wedges (Graph.of_edges ~n:5 [ (0, 1); (0, 2); (0, 3); (0, 4) ]));
  S.check_int "empty" 0 (Triangles.wedges (Graph.empty 3))

let test_clustering_coefficient () =
  Alcotest.(check (float 1e-9)) "complete graph" 1.
    (Triangles.clustering_coefficient (Generate.complete 5));
  Alcotest.(check (float 1e-9)) "star" 0.
    (Triangles.clustering_coefficient
       (Graph.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3) ]));
  Alcotest.(check (float 1e-9)) "no wedges" 0.
    (Triangles.clustering_coefficient (Graph.empty 3))

let test_per_vertex () =
  let g = Generate.complete 4 in
  let counts = Triangles.per_vertex g in
  Alcotest.(check (array int)) "K4 per vertex" [| 3; 3; 3; 3 |] counts;
  S.check_int "sum = 3*count" (3 * Triangles.count g) (Array.fold_left ( + ) 0 counts)

(* ------------------------------------------------------------------ *)
(* Generate                                                           *)
(* ------------------------------------------------------------------ *)

let test_er_determinism_and_p_extremes () =
  let g1 = Generate.erdos_renyi (Prng.create ~seed:5) ~n:12 ~p:0.3 in
  let g2 = Generate.erdos_renyi (Prng.create ~seed:5) ~n:12 ~p:0.3 in
  Alcotest.(check (list (pair int int))) "deterministic" (Graph.edges g1) (Graph.edges g2);
  let full = Generate.erdos_renyi (Prng.create ~seed:1) ~n:6 ~p:1. in
  S.check_int "p=1 complete" (6 * 5 / 2) (Graph.num_edges full);
  let none = Generate.erdos_renyi (Prng.create ~seed:1) ~n:6 ~p:0. in
  S.check_int "p=0 empty" 0 (Graph.num_edges none);
  try
    ignore (Generate.erdos_renyi (Prng.create ~seed:1) ~n:4 ~p:1.5);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_er_edge_count_plausible () =
  let rng = Prng.create ~seed:9 in
  let n = 40 and p = 0.25 in
  let g = Generate.erdos_renyi rng ~n ~p in
  let expected = p *. float_of_int (n * (n - 1) / 2) in
  let got = float_of_int (Graph.num_edges g) in
  S.check_bool "within 35% of expectation" true
    (got > 0.65 *. expected && got < 1.35 *. expected)

let test_blocked_community_structure () =
  let rng = Prng.create ~seed:10 in
  let g = Generate.blocked_community rng ~blocks:4 ~block_size:8 ~p_in:0.9 ~p_out:0.02 in
  S.check_int "vertices" 32 (Graph.num_vertices g);
  (* Dense blocks force a high clustering coefficient relative to a
     global ER graph with the same edge count. *)
  let cc = Triangles.clustering_coefficient g in
  S.check_bool "community clustering > 0.5" true (cc > 0.5);
  let er =
    Generate.erdos_renyi (Prng.create ~seed:11) ~n:32
      ~p:(float_of_int (Graph.num_edges g) /. float_of_int (32 * 31 / 2))
  in
  S.check_bool "higher than matched ER" true
    (cc > Triangles.clustering_coefficient er)

let test_expected_formulas () =
  (* (10 choose 3) = 120. *)
  Alcotest.(check (float 1e-9)) "triangles" (120. *. 0.001)
    (Generate.expected_triangles_er ~n:10 ~p:0.1);
  Alcotest.(check (float 1e-9)) "wedges" (3. *. 120. *. 0.01)
    (Generate.expected_wedges_er ~n:10 ~p:0.1)

(* Naive references the generator properties are checked against:
   triangle/wedge counts straight off the adjacency matrix. *)
let triangles_naive g =
  let a = Graph.adjacency g in
  let n = Graph.num_vertices g in
  let c = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      for k = j + 1 to n - 1 do
        if Matrix.get a i j = 1 && Matrix.get a j k = 1 && Matrix.get a i k = 1
        then incr c
      done
    done
  done;
  !c

let wedges_naive g =
  let n = Graph.num_vertices g in
  let w = ref 0 in
  for v = 0 to n - 1 do
    let d = Graph.degree g v in
    w := !w + (d * (d - 1) / 2)
  done;
  !w

let random_generated rng =
  let n = 4 + Prng.int rng ~bound:8 in
  if Prng.bool rng then Generate.erdos_renyi rng ~n ~p:(Prng.float rng)
  else
    Generate.blocked_community rng ~blocks:(1 + Prng.int rng ~bound:3)
      ~block_size:(2 + Prng.int rng ~bound:4)
      ~p_in:(0.5 +. (0.5 *. Prng.float rng))
      ~p_out:(0.2 *. Prng.float rng)

let prop_generators_wellformed =
  S.qcheck_case ~count:100 "ER/BTER adjacency symmetric with zero diagonal"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let g = random_generated (Prng.create ~seed) in
      let a = Graph.adjacency g in
      let n = Graph.num_vertices g in
      let ok = ref (Matrix.rows a = n && Matrix.cols a = n) in
      for i = 0 to n - 1 do
        ok := !ok && Matrix.get a i i = 0;
        for j = 0 to n - 1 do
          let v = Matrix.get a i j in
          ok := !ok && (v = 0 || v = 1) && v = Matrix.get a j i
        done
      done;
      (* of_adjacency re-validates shape and must round-trip. *)
      !ok && Graph.edges (Graph.of_adjacency a) = Graph.edges g)

let prop_generators_references_agree =
  S.qcheck_case ~count:60 "ER/BTER triangle and wedge references agree"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let g = random_generated (Prng.create ~seed) in
      Triangles.count g = triangles_naive g
      && Triangles.count g = Triangles.count_via_trace g
      && Triangles.wedges g = wedges_naive g)

(* ------------------------------------------------------------------ *)
(* Edge-flip streams                                                  *)
(* ------------------------------------------------------------------ *)

let test_flip_edges_basic () =
  let g = Graph.of_edges ~n:4 [ (0, 1) ] in
  let g' = Graph.flip_edges g [ (1, 0); (2, 3) ] in
  S.check_bool "removed" false (Graph.has_edge g' 0 1);
  S.check_bool "added" true (Graph.has_edge g' 2 3);
  (* Flip-then-unflip is a structural no-op. *)
  let g'' = Graph.flip_edges g [ (2, 3); (3, 2) ] in
  Alcotest.(check (list (pair int int))) "no-op" (Graph.edges g) (Graph.edges g'');
  try
    ignore (Graph.flip_edges g [ (1, 1) ]);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let prop_flip_edges_involutive =
  S.qcheck_case ~count:60 "flipping a set twice restores the graph"
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let g = random_generated rng in
      let n = Graph.num_vertices g in
      let flips =
        List.init
          (1 + Prng.int rng ~bound:6)
          (fun _ ->
            let i = Prng.int rng ~bound:n in
            let j = (i + 1 + Prng.int rng ~bound:(n - 1)) mod n in
            (i, j))
      in
      let once = Graph.flip_edges g flips in
      let twice = Graph.flip_edges once (List.rev flips) in
      Graph.edges twice = Graph.edges g)

let test_stream_delta_wires () =
  let g = Graph.empty 4 in
  let b = Tcmm_threshold.Builder.create () in
  let layout = Tcmm.Encode.alloc b ~n:4 ~entry_bits:1 ~signed:false in
  let w_ij, w_ji = Stream.edge_wires ~layout g 1 2 in
  S.check_int "A[1][2] wire" ((1 * 4) + 2) w_ij;
  S.check_int "A[2][1] wire" ((2 * 4) + 1) w_ji;
  let g', d = Stream.delta ~layout g [ (1, 2); (2, 1) ] in
  S.check_bool "flip-then-unflip graph" true (Graph.edges g' = Graph.edges g);
  Alcotest.(check (array (pair int bool)))
    "delta toggles both mirror wires, in order"
    [| (w_ij, true); (w_ji, true); (w_ji, false); (w_ij, false) |]
    d;
  try
    ignore (Stream.delta ~layout (Graph.empty 5) [ (0, 1) ]);
    Alcotest.fail "expected invalid_arg (size mismatch)"
  with Invalid_argument _ -> ()

(* Stream deltas drive an incremental trace-circuit session: after every
   flip batch the session must agree with a from-scratch packed run and
   with the combinatorial triangle count. *)
let test_stream_incremental_trace () =
  let rng = Prng.create ~seed:77 in
  let n = 8 in
  let g = ref (Generate.erdos_renyi rng ~n ~p:0.4) in
  let tau = 6 * Triangles.count !g in
  let built =
    Tcmm.Trace_circuit.build ~algo:Tcmm_fastmm.Instances.strassen
      ~schedule:(Tcmm.Level_schedule.uniform ~steps:2 ~l:3) ~entry_bits:1 ~tau
      ~n ()
  in
  let layout = built.Tcmm.Trace_circuit.layout in
  let p = Tcmm.Trace_circuit.pack built in
  let ss =
    Tcmm_threshold.Packed.session p
      (Tcmm.Trace_circuit.encode_input built (Graph.adjacency !g))
  in
  for _ = 1 to 12 do
    let flips =
      List.init
        (1 + Prng.int rng ~bound:3)
        (fun _ ->
          let i = Prng.int rng ~bound:n in
          let j = (i + 1 + Prng.int rng ~bound:(n - 1)) mod n in
          (i, j))
    in
    let g', d = Stream.delta ~layout !g flips in
    g := g';
    let r = Tcmm_threshold.Packed.update ss d in
    let input = Tcmm.Trace_circuit.encode_input built (Graph.adjacency !g) in
    S.check_bool "session inputs track the graph" true
      (Tcmm_threshold.Packed.session_inputs ss = input);
    let full = Tcmm_threshold.Packed.run p input in
    S.check_bool "outputs = from-scratch" true
      (r.Tcmm_threshold.Simulator.outputs = full.Tcmm_threshold.Simulator.outputs);
    S.check_int "firings = from-scratch" full.Tcmm_threshold.Simulator.firings
      r.Tcmm_threshold.Simulator.firings;
    S.check_bool "level firings = from-scratch" true
      (r.Tcmm_threshold.Simulator.level_firings
      = full.Tcmm_threshold.Simulator.level_firings);
    S.check_bool "decides 6*triangles >= tau" true
      (r.Tcmm_threshold.Simulator.outputs
      = [| 6 * Triangles.count !g >= tau |])
  done

(* ------------------------------------------------------------------ *)
(* End-to-end: trace circuit counts triangles                         *)
(* ------------------------------------------------------------------ *)

let test_trace_circuit_counts_triangles () =
  (* The headline application: trace(A^3) = 6 * triangles, so the
     threshold circuit with tau = 6*t answers "at least t triangles?". *)
  let rng = Prng.create ~seed:62 in
  let g = Generate.erdos_renyi rng ~n:8 ~p:0.5 in
  let t = Triangles.count g in
  let adj = Graph.adjacency g in
  let schedule = Tcmm.Level_schedule.uniform ~steps:2 ~l:3 in
  let built_yes =
    Tcmm.Trace_circuit.build ~algo:Tcmm_fastmm.Instances.strassen ~schedule
      ~entry_bits:1 ~tau:(6 * t) ~n:8 ()
  in
  S.check_bool "has >= t triangles" true (Tcmm.Trace_circuit.run built_yes adj);
  S.check_int "trace = 6 * triangles" (6 * t)
    (Tcmm.Trace_circuit.trace_value built_yes adj);
  let built_no =
    Tcmm.Trace_circuit.build ~algo:Tcmm_fastmm.Instances.strassen ~schedule
      ~entry_bits:1 ~tau:((6 * t) + 1) ~n:8 ()
  in
  S.check_bool "not >= t+1/6" false (Tcmm.Trace_circuit.run built_no adj)

let prop_triangles_relabel_invariant =
  S.qcheck_case ~count:30 "triangle count invariant under vertex relabeling"
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let n = 4 + Prng.int rng ~bound:6 in
      let g = Generate.erdos_renyi rng ~n ~p:0.4 in
      (* A random permutation via sorting with random keys. *)
      let perm =
        List.init n (fun i -> (Prng.next rng, i))
        |> List.sort compare |> List.map snd |> Array.of_list
      in
      let relabeled =
        Graph.of_edges ~n
          (List.map (fun (i, j) -> (perm.(i), perm.(j))) (Graph.edges g))
      in
      Triangles.count g = Triangles.count relabeled
      && Triangles.wedges g = Triangles.wedges relabeled)

let prop_trace_circuit_random_graphs =
  S.qcheck_case ~count:15 "trace circuit counts triangles on random graphs"
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let g = Generate.erdos_renyi rng ~n:8 ~p:(0.2 +. (0.5 *. Prng.float rng)) in
      let t = Triangles.count g in
      let built =
        Tcmm.Trace_circuit.build ~algo:Tcmm_fastmm.Instances.strassen
          ~schedule:(Tcmm.Level_schedule.uniform ~steps:2 ~l:3) ~entry_bits:1
          ~tau:(6 * t) ~n:8 ()
      in
      Tcmm.Trace_circuit.trace_value built (Graph.adjacency g) = 6 * t)

let () =
  Alcotest.run "tcmm_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "rejections" `Quick test_graph_rejections;
          Alcotest.test_case "degree/neighbours" `Quick test_graph_degree_neighbours;
          Alcotest.test_case "adjacency roundtrip" `Quick test_graph_adjacency_roundtrip;
          Alcotest.test_case "of_adjacency rejections" `Quick
            test_graph_of_adjacency_rejections;
          Alcotest.test_case "pad" `Quick test_graph_pad;
        ] );
      ( "triangles",
        [
          Alcotest.test_case "known counts" `Quick test_triangles_known;
          Alcotest.test_case "trace agreement" `Quick test_triangles_trace_agreement;
          Alcotest.test_case "wedges" `Quick test_wedges_known;
          Alcotest.test_case "clustering" `Quick test_clustering_coefficient;
          Alcotest.test_case "per vertex" `Quick test_per_vertex;
        ] );
      ( "generate",
        [
          Alcotest.test_case "ER determinism/extremes" `Quick
            test_er_determinism_and_p_extremes;
          Alcotest.test_case "ER edge count" `Quick test_er_edge_count_plausible;
          Alcotest.test_case "blocked community" `Quick test_blocked_community_structure;
          Alcotest.test_case "expectation formulas" `Quick test_expected_formulas;
          prop_generators_wellformed;
          prop_generators_references_agree;
        ] );
      ( "stream",
        [
          Alcotest.test_case "flip edges" `Quick test_flip_edges_basic;
          prop_flip_edges_involutive;
          Alcotest.test_case "delta wires" `Quick test_stream_delta_wires;
          Alcotest.test_case "incremental trace session" `Quick
            test_stream_incremental_trace;
        ] );
      ( "end_to_end",
        [
          Alcotest.test_case "trace circuit counts triangles" `Quick
            test_trace_circuit_counts_triangles;
          prop_triangles_relabel_invariant;
          prop_trace_circuit_random_graphs;
        ] );
    ]
