(* The serving subsystem: protocol round-trips, framing, the batcher,
   the circuit cache, and a forked loopback server checked bit-exactly
   against in-process evaluation. *)

module P = Tcmm_server.Protocol
module S = Tcmm_test_support.Support
module F = Tcmm_fastmm
module T = Tcmm
module Th = Tcmm_threshold
open QCheck2

(* ------------------------------------------------------------------ *)
(* Generators                                                         *)
(* ------------------------------------------------------------------ *)

let gen_name = Gen.(string_size ~gen:printable (int_range 0 12))

let gen_spec =
  let open Gen in
  let* kind = oneofl [ P.Matmul; P.Trace; P.Triangles; P.Conv ] in
  let* algo = gen_name in
  let* schedule = gen_name in
  let* d = int_range 0 8 in
  let* n = int_range 0 64 in
  let* entry_bits = int_range 0 8 in
  let* signed = bool in
  let* tau = int_range (-1000) 1000 in
  let+ kronpow = bool in
  { P.kind; algo; schedule; d; n; entry_bits; signed; tau; kronpow }

let gen_matrix =
  let open Gen in
  let* rows = int_range 1 6 in
  let* cols = int_range 1 6 in
  let+ entries = array_size (return (rows * cols)) (int_range (-4096) 4096) in
  F.Matrix.init ~rows ~cols (fun i j -> entries.((i * cols) + j))

let gen_image =
  let open Gen in
  let* channels = int_range 1 3 in
  let* height = int_range 1 5 in
  let* width = int_range 1 5 in
  let+ entries =
    array_size (return (channels * height * width)) (int_range (-64) 64)
  in
  P.Image.init ~channels ~height ~width (fun c y x ->
      entries.((((c * height) + y) * width) + x))

let gen_conv_job =
  let open Gen in
  let* cj_q = int_range 1 4 in
  let* cj_stride = int_range 1 3 in
  let* cj_image = gen_image in
  let+ cj_kernels = array_size (int_range 1 3) gen_image in
  { P.cj_q; cj_stride; cj_image; cj_kernels }

let gen_request =
  let open Gen in
  oneof
    [
      map (fun s -> P.Compile s) gen_spec;
      map (fun s -> P.Stats s) gen_spec;
      map2 (fun s j -> P.Run_conv (s, j)) gen_spec gen_conv_job;
      (let* s = gen_spec in
       let* a = gen_matrix in
       let+ b = gen_matrix in
       P.Run_matmul (s, a, b));
      map2 (fun s a -> P.Run_trace (s, a)) gen_spec gen_matrix;
      map2 (fun s a -> P.Run_triangles (s, a)) gen_spec gen_matrix;
      return P.Metrics;
      return P.Ping;
      return P.Shutdown;
      return P.Fleet;
      map2 (fun s a -> P.Open_session (s, a)) gen_spec gen_matrix;
      (let* sid = int_range 0 1000 in
       let+ delta =
         array_size (int_range 0 8)
           (map2 (fun w v -> (w, v)) (int_range 0 4096) bool)
       in
       P.Update (sid, delta));
      map (fun sid -> P.Close_session sid) (int_range 0 1000);
    ]

let gen_stats =
  let open Gen in
  let* inputs = int_range 0 1000 in
  let* outputs = int_range 0 1000 in
  let* gates = int_range 0 100000 in
  let* edges = int_range 0 1000000 in
  let* depth = int_range 0 40 in
  let* max_fan_in = int_range 0 10000 in
  let* max_abs_weight = int_range 0 1000000 in
  let+ gates_by_depth = array_size (int_range 0 8) (int_range 0 1000) in
  {
    Th.Stats.inputs;
    outputs;
    gates;
    edges;
    depth;
    max_fan_in;
    max_abs_weight;
    gates_by_depth;
  }

let gen_cache_stats =
  let open Gen in
  let* hits = int_range 0 1000 in
  let* misses = int_range 0 1000 in
  let* evictions = int_range 0 1000 in
  let* size = int_range 0 64 in
  let+ capacity = int_range 1 64 in
  { P.hits; misses; evictions; size; capacity }

let gen_histogram =
  let open Gen in
  let* n = int_range 0 6 in
  let* bounds = array_size (return n) (float_range 0.1 1000.) in
  let* counts = array_size (return (n + 1)) (int_range 0 10000) in
  let* sum = float_range 0. 1e6 in
  let+ count = int_range 0 100000 in
  { P.bounds; counts; sum; count }

let gen_metrics =
  let open Gen in
  let* uptime_seconds = float_range 0. 1e6 in
  let* connections_accepted = int_range 0 1000 in
  let* connections_active = int_range 0 100 in
  let* requests_total = int_range 0 100000 in
  let* run_requests = int_range 0 100000 in
  let* errors = int_range 0 1000 in
  let* batches = int_range 0 10000 in
  let* lanes = int_range 0 100000 in
  let* max_lanes = int_range 1 62 in
  let* occupancy = array_size (return max_lanes) (int_range 0 1000) in
  let* latency_ms = gen_histogram in
  let* firings_total = int_range 0 1000000 in
  let* eval_seconds = float_range 0. 1e4 in
  let* build_seconds = float_range 0. 1e4 in
  let* cache = gen_cache_stats in
  let* engine = gen_cache_stats in
  let* accepted = int_range 0 100000 in
  let* shed = int_range 0 100000 in
  let* deadline_expired = int_range 0 100000 in
  let* eval_failures = int_range 0 1000 in
  let* slow_client_drops = int_range 0 1000 in
  let* kernel_gates = int_range 0 1000000 in
  let* fallback_gates = int_range 0 1000000 in
  let* store_loads = int_range 0 100000 in
  let* store_saves = int_range 0 100000 in
  let* store_invalid = int_range 0 1000 in
  let* worker_id = int_range 0 64 in
  let* sessions_opened = int_range 0 1000 in
  let* sessions_active = int_range 0 64 in
  let* sessions_evicted = int_range 0 1000 in
  let* session_updates = int_range 0 100000 in
  let* session_dirty_gates = int_range 0 1000000 in
  let+ session_gates = int_range 0 10000000 in
  {
    P.uptime_seconds;
    connections_accepted;
    connections_active;
    requests_total;
    run_requests;
    errors;
    batches;
    lanes;
    max_lanes;
    occupancy;
    latency_ms;
    firings_total;
    eval_seconds;
    build_seconds;
    cache;
    engine;
    accepted;
    shed;
    deadline_expired;
    eval_failures;
    slow_client_drops;
    kernel_gates;
    fallback_gates;
    store_loads;
    store_saves;
    store_invalid;
    worker_id;
    sessions_opened;
    sessions_active;
    sessions_evicted;
    session_updates;
    session_dirty_gates;
    session_gates;
  }

let gen_fleet_worker =
  let open Gen in
  let* fw_id = int_range 1 64 in
  let* fw_pid = int_range 1 (1 lsl 22) in
  let* fw_addr = gen_name in
  let* fw_restarts = int_range 0 100 in
  let+ fw_alive = bool in
  { P.fw_id; fw_pid; fw_addr; fw_restarts; fw_alive }

let gen_response =
  let open Gen in
  oneof
    [
      (let* cached = bool in
       let* loaded = bool in
       let* build_seconds = float_range 0. 100. in
       let+ stats = gen_stats in
       P.Compiled { P.cached; loaded; build_seconds; stats });
      map2 (fun m f -> P.Matmul_result (m, f)) gen_matrix (int_range 0 1000000);
      (let* k = int_range 1 3 in
       let* oh = int_range 1 4 in
       let* ow = int_range 1 4 in
       let* scores =
         array_size (return k)
           (array_size (return oh)
              (array_size (return ow) (int_range (-4096) 4096)))
       in
       let+ firings = int_range 0 1000000 in
       P.Conv_result (scores, firings));
      map2 (fun b f -> P.Trace_result (b, f)) bool (int_range 0 1000000);
      map2 (fun b f -> P.Triangles_result (b, f)) bool (int_range 0 1000000);
      map (fun s -> P.Stats_result s) gen_stats;
      map (fun m -> P.Metrics_result m) gen_metrics;
      return P.Pong;
      return P.Shutting_down;
      map (fun s -> P.Error s) gen_name;
      return P.Overloaded;
      return P.Deadline_exceeded;
      map (fun ws -> P.Fleet_result ws) (list_size (int_range 0 8) gen_fleet_worker);
      (let* so_sid = int_range 0 1000 in
       let* so_fires = bool in
       let+ so_firings = int_range 0 1000000 in
       P.Session_opened { P.so_sid; so_fires; so_firings });
      (let* ur_fires = bool in
       let* ur_firings = int_range 0 1000000 in
       let* ur_dirty_gates = int_range 0 100000 in
       let+ ur_gates = int_range 0 1000000 in
       P.Update_result { P.ur_fires; ur_firings; ur_dirty_gates; ur_gates });
      return P.Session_closed;
    ]

(* ------------------------------------------------------------------ *)
(* Protocol round-trips                                               *)
(* ------------------------------------------------------------------ *)

let request_roundtrip =
  S.qcheck_case ~count:300 "request round-trip" gen_request (fun req ->
      match P.decode_request (P.encode_request req) with
      | Ok req' -> P.equal_request req req'
      | Error _ -> false)

let response_roundtrip =
  S.qcheck_case ~count:300 "response round-trip" gen_response (fun resp ->
      match P.decode_response (P.encode_response resp) with
      | Ok resp' -> P.equal_response resp resp'
      | Error _ -> false)

let sample_metrics ~worker_id =
  P.(
    { uptime_seconds = 1.; connections_accepted = 1; connections_active = 1;
      requests_total = 1; run_requests = 1; errors = 0; batches = 1; lanes = 1;
      max_lanes = 62; occupancy = Array.make 62 0;
      latency_ms = { P.bounds = [| 1. |]; counts = [| 0; 0 |]; sum = 0.; count = 0 };
      firings_total = 0; eval_seconds = 0.; build_seconds = 0.;
      cache = { P.hits = 0; misses = 0; evictions = 0; size = 0; capacity = 1 };
      engine = { P.hits = 0; misses = 0; evictions = 0; size = 0; capacity = 1 };
      accepted = 1; shed = 0; deadline_expired = 0; eval_failures = 0;
      slow_client_drops = 0; kernel_gates = 0; fallback_gates = 0;
      store_loads = 0; store_saves = 0; store_invalid = 0; worker_id;
      sessions_opened = 0; sessions_active = 0; sessions_evicted = 0;
      session_updates = 0; session_dirty_gates = 0; session_gates = 0;
    })

let test_decode_rejects_truncation () =
  let payloads =
    [
      P.encode_request
        (P.Run_matmul
           ( {
               P.kind = P.Matmul;
               algo = "strassen";
               schedule = "thm45";
               d = 2;
               n = 2;
               entry_bits = 1;
               signed = false;
               tau = 0;
               kronpow = false;
             },
             F.Matrix.identity 2,
             F.Matrix.identity 2 ));
      P.encode_request P.Ping;
    ]
  in
  List.iter
    (fun payload ->
      for k = 0 to String.length payload - 1 do
        match P.decode_request (String.sub payload 0 k) with
        | Ok _ -> Alcotest.fail (Printf.sprintf "decoded a %d-byte prefix" k)
        | Error _ -> ()
      done)
    payloads;
  let resp = P.encode_response (P.Metrics_result (sample_metrics ~worker_id:1)) in
  for k = 0 to String.length resp - 1 do
    match P.decode_response (String.sub resp 0 k) with
    | Ok _ -> Alcotest.fail (Printf.sprintf "decoded a %d-byte response prefix" k)
    | Error _ -> ()
  done

let test_decode_rejects_garbage () =
  let payload = P.encode_request P.Ping in
  (* trailing bytes *)
  (match P.decode_request (payload ^ "x") with
  | Ok _ -> Alcotest.fail "accepted trailing bytes"
  | Error _ -> ());
  (* wrong version *)
  let bad = Bytes.of_string payload in
  Bytes.set bad 0 (Char.chr (Char.code (Bytes.get bad 0) + 1));
  (match P.decode_request (Bytes.to_string bad) with
  | Ok _ -> Alcotest.fail "accepted wrong version"
  | Error _ -> ());
  (* unknown tag *)
  (match P.decode_request "\x01\xff" with
  | Ok _ -> Alcotest.fail "accepted unknown tag"
  | Error _ -> ())

(* Each version appends its metrics fields at the tail of the wire
   layout, so an older peer's Metrics_result payload is byte-for-byte
   the current encoding minus the trailing words: v6 added the six
   session counters (48 bytes), v5 the [worker_id] word before them.
   Synthesize older payloads by stripping those bytes and patching the
   version byte: the decoder must accept them and zero the newer fields
   while preserving everything else.  Version-gated tags must
   conversely be rejected when carried in a frame that claims an older
   version. *)
let patch_version v payload =
  let b = Bytes.of_string payload in
  Bytes.set b 0 (Char.chr v);
  Bytes.to_string b

let test_v4_compat () =
  let v6 = P.encode_response (P.Metrics_result (sample_metrics ~worker_id:7)) in
  let v4 = patch_version 4 (String.sub v6 0 (String.length v6 - (8 * 7))) in
  (match P.decode_response v4 with
  | Ok (P.Metrics_result m) ->
      S.check_int "v4 metrics decode zeroes worker_id" 0 m.P.worker_id;
      S.check_bool "v4 metrics decode preserves the other fields" true
        (P.equal_response
           (P.Metrics_result { m with P.worker_id = 7 })
           (P.Metrics_result (sample_metrics ~worker_id:7)))
  | Ok _ -> Alcotest.fail "v4 metrics payload decoded to a different response"
  | Error e -> Alcotest.fail ("v4 metrics payload rejected: " ^ e));
  (match P.decode_request (patch_version 4 (P.encode_request P.Fleet)) with
  | Ok _ -> Alcotest.fail "Fleet request accepted in a v4 frame"
  | Error _ -> ());
  let ws =
    [ { P.fw_id = 1; fw_pid = 42; fw_addr = "127.0.0.1:9000";
        fw_restarts = 0; fw_alive = true } ]
  in
  (match
     P.decode_response (patch_version 4 (P.encode_response (P.Fleet_result ws)))
   with
  | Ok _ -> Alcotest.fail "Fleet_result accepted in a v4 frame"
  | Error _ -> ());
  (* sanity: the same payloads are fine at the current version *)
  (match P.decode_request (P.encode_request P.Fleet) with
  | Ok P.Fleet -> ()
  | Ok _ -> Alcotest.fail "Fleet request round-trip changed shape"
  | Error e -> Alcotest.fail ("Fleet request round-trip failed: " ^ e));
  match P.decode_response (P.encode_response (P.Fleet_result ws)) with
  | Ok r ->
      S.check_bool "Fleet_result round-trips at v5" true
        (P.equal_response r (P.Fleet_result ws))
  | Error e -> Alcotest.fail ("Fleet_result round-trip failed: " ^ e)

(* v6 gating: a v5 peer's metrics payload (the six session counters
   stripped off the tail) must decode with those counters zeroed, and
   the session tags must be rejected in v5 frames while round-tripping
   at v6. *)
let test_v5_compat () =
  let v6 = P.encode_response (P.Metrics_result (sample_metrics ~worker_id:3)) in
  let v5 = patch_version 5 (String.sub v6 0 (String.length v6 - (8 * 6))) in
  (match P.decode_response v5 with
  | Ok (P.Metrics_result m) ->
      S.check_int "v5 metrics decode zeroes session counters" 0
        (m.P.sessions_opened + m.P.sessions_active + m.P.sessions_evicted
        + m.P.session_updates + m.P.session_dirty_gates + m.P.session_gates);
      S.check_bool "v5 metrics decode preserves the other fields" true
        (P.equal_response (P.Metrics_result m)
           (P.Metrics_result (sample_metrics ~worker_id:3)))
  | Ok _ -> Alcotest.fail "v5 metrics payload decoded to a different response"
  | Error e -> Alcotest.fail ("v5 metrics payload rejected: " ^ e));
  let spec =
    { P.kind = P.Triangles; algo = "strassen"; schedule = "uniform:2x3";
      d = 0; n = 4; entry_bits = 1; signed = false; tau = 6; kronpow = false }
  in
  List.iter
    (fun req ->
      (match P.decode_request (patch_version 5 (P.encode_request req)) with
      | Ok _ -> Alcotest.fail "session request accepted in a v5 frame"
      | Error _ -> ());
      match P.decode_request (P.encode_request req) with
      | Ok req' ->
          S.check_bool "session request round-trips at v6" true
            (P.equal_request req req')
      | Error e -> Alcotest.fail ("session request round-trip failed: " ^ e))
    [ P.Open_session (spec, F.Matrix.init ~rows:4 ~cols:4 (fun _ _ -> 0));
      P.Update (1, [| (0, true); (3, false) |]);
      P.Close_session 1 ];
  List.iter
    (fun resp ->
      (match P.decode_response (patch_version 5 (P.encode_response resp)) with
      | Ok _ -> Alcotest.fail "session response accepted in a v5 frame"
      | Error _ -> ());
      match P.decode_response (P.encode_response resp) with
      | Ok r ->
          S.check_bool "session response round-trips at v6" true
            (P.equal_response resp r)
      | Error e -> Alcotest.fail ("session response round-trip failed: " ^ e))
    [ P.Session_opened { P.so_sid = 1; so_fires = true; so_firings = 42 };
      P.Update_result
        { P.ur_fires = false; ur_firings = 12; ur_dirty_gates = 3;
          ur_gates = 100 };
      P.Session_closed ]

(* v7 gating: the spec gained a trailing [kronpow] byte and the Conv
   kind / Run_conv / Conv_result tags.  A v6 peer's spec payload (the
   kronpow byte stripped off the tail) must decode flat; the conv tags
   and the Conv kind must be rejected in v6 frames while round-tripping
   at v7. *)
let test_v6_compat () =
  let spec kind kronpow =
    { P.kind; algo = "strassen"; schedule = "thm45"; d = 2; n = 4;
      entry_bits = 1; signed = false; tau = 0; kronpow }
  in
  (* Compile's payload is exactly the spec, so stripping the final byte
     of the v7 encoding is precisely the v6 wire layout. *)
  let v7 = P.encode_request (P.Compile (spec P.Matmul true)) in
  let v6 = patch_version 6 (String.sub v7 0 (String.length v7 - 1)) in
  (match P.decode_request v6 with
  | Ok (P.Compile s) ->
      S.check_bool "v6 spec decode is flat" false s.P.kronpow;
      S.check_bool "v6 spec decode preserves the other fields" true
        (s = spec P.Matmul false)
  | Ok _ -> Alcotest.fail "v6 spec payload decoded to a different request"
  | Error e -> Alcotest.fail ("v6 spec payload rejected: " ^ e));
  (* The Conv kind byte itself is version-gated. *)
  let v7_conv = P.encode_request (P.Compile (spec P.Conv false)) in
  (match
     P.decode_request
       (patch_version 6 (String.sub v7_conv 0 (String.length v7_conv - 1)))
   with
  | Ok _ -> Alcotest.fail "Conv kind accepted in a v6 frame"
  | Error _ -> ());
  let job =
    { P.cj_q = 2; cj_stride = 1;
      cj_image = P.Image.init ~channels:1 ~height:3 ~width:3 (fun _ y x -> y + x);
      cj_kernels =
        [| P.Image.init ~channels:1 ~height:2 ~width:2 (fun _ y x -> y - x) |];
    }
  in
  let req = P.Run_conv (spec P.Conv false, job) in
  (match P.decode_request (patch_version 6 (P.encode_request req)) with
  | Ok _ -> Alcotest.fail "Run_conv accepted in a v6 frame"
  | Error _ -> ());
  (match P.decode_request (P.encode_request req) with
  | Ok req' ->
      S.check_bool "Run_conv round-trips at v7" true (P.equal_request req req')
  | Error e -> Alcotest.fail ("Run_conv round-trip failed: " ^ e));
  let resp = P.Conv_result ([| [| [| 1; -2 |]; [| 0; 3 |] |] |], 42) in
  (match P.decode_response (patch_version 6 (P.encode_response resp)) with
  | Ok _ -> Alcotest.fail "Conv_result accepted in a v6 frame"
  | Error _ -> ());
  match P.decode_response (P.encode_response resp) with
  | Ok r ->
      S.check_bool "Conv_result round-trips at v7" true
        (P.equal_response resp r)
  | Error e -> Alcotest.fail ("Conv_result round-trip failed: " ^ e)

(* ------------------------------------------------------------------ *)
(* Framing                                                            *)
(* ------------------------------------------------------------------ *)

(* Adversarial re-chunking: a valid stream of framed responses (the
   generator covers the v2 [Overloaded] / [Deadline_exceeded] status
   codes) must decode identically no matter where the transport splits
   it — random cut sets with chunks spanning several frames, and the
   worst case of one byte per feed. *)
let dechunker_adversarial =
  let gen =
    let open Gen in
    let* resps = list_size (int_range 1 6) gen_response in
    let* n_cuts = int_range 0 12 in
    let+ cut_seeds = list_repeat n_cuts (int_range 1 0x3FFFFFFF) in
    (resps, cut_seeds)
  in
  S.qcheck_case ~count:120 "dechunker survives adversarial chunking" gen
    (fun (resps, cut_seeds) ->
      let stream =
        String.concat ""
          (List.map (fun r -> P.frame (P.encode_response r)) resps)
      in
      let len = String.length stream in
      let decode_with cuts =
        (* [cuts] are the split points; feed each segment, draining
           complete frames after every feed. *)
        let d = P.create_dechunker () in
        let got = ref [] in
        let rec drain () =
          match P.next_frame d with
          | `Frame payload ->
              (match P.decode_response payload with
              | Ok r -> got := r :: !got
              | Error e -> Alcotest.fail e);
              drain ()
          | `More -> ()
          | `Corrupt e -> Alcotest.fail e
        in
        List.iter
          (fun (pos, n) ->
            P.feed d (Bytes.of_string (String.sub stream pos n)) 0 n;
            drain ())
          cuts;
        (List.rev !got, P.buffered d)
      in
      let segments_of_cuts cuts =
        let cuts = List.sort_uniq compare (List.filter (fun c -> c < len) cuts) in
        let bounds = (0 :: cuts) @ [ len ] in
        let rec pair = function
          | a :: (b :: _ as rest) -> (a, b - a) :: pair rest
          | _ -> []
        in
        List.filter (fun (_, n) -> n > 0) (pair bounds)
      in
      let same (got, buffered) =
        buffered = 0
        && List.length got = List.length resps
        && List.for_all2 P.equal_response resps got
      in
      same (decode_with (segments_of_cuts (List.map (fun s -> s mod len) cut_seeds)))
      && same (decode_with (List.init len (fun i -> (i, 1)))))

let test_frame_limits () =
  let huge = String.make P.max_frame_len 'x' in
  let framed = P.frame huge in
  S.check_int "framed length" (P.max_frame_len + 4) (String.length framed);
  (try
     ignore (P.frame (huge ^ "y"));
     Alcotest.fail "framed an oversized payload"
   with Invalid_argument _ -> ());
  (* A max-size frame survives the dechunker, fed in two pieces. *)
  let d = P.create_dechunker () in
  let half = (String.length framed / 2) + 1 in
  P.feed d (Bytes.of_string (String.sub framed 0 half)) 0 half;
  S.check_bool "incomplete" true (P.next_frame d = `More);
  let rest = String.length framed - half in
  P.feed d (Bytes.of_string (String.sub framed half rest)) 0 rest;
  (match P.next_frame d with
  | `Frame payload -> S.check_bool "max frame intact" true (payload = huge)
  | _ -> Alcotest.fail "expected max-size frame");
  S.check_int "drained" 0 (P.buffered d)

let test_dechunker_corrupt_lengths () =
  let corrupt s =
    let d = P.create_dechunker () in
    P.feed d (Bytes.of_string s) 0 (String.length s);
    match P.next_frame d with `Corrupt _ -> true | _ -> false
  in
  S.check_bool "zero length" true (corrupt "\x00\x00\x00\x00");
  S.check_bool "oversized length" true (corrupt "\xff\xff\xff\xff")

let dechunker_chunking =
  let gen =
    let open Gen in
    let* reqs = list_size (int_range 1 5) gen_request in
    let+ chunk = int_range 1 7 in
    (reqs, chunk)
  in
  S.qcheck_case ~count:60 "dechunker reassembles chunked frames" gen
    (fun (reqs, chunk) ->
      let stream =
        String.concat "" (List.map (fun r -> P.frame (P.encode_request r)) reqs)
      in
      let d = P.create_dechunker () in
      let got = ref [] in
      let pos = ref 0 in
      let drain () =
        let rec go () =
          match P.next_frame d with
          | `Frame payload ->
              (match P.decode_request payload with
              | Ok r -> got := r :: !got
              | Error e -> Alcotest.fail e);
              go ()
          | `More -> ()
          | `Corrupt e -> Alcotest.fail e
        in
        go ()
      in
      while !pos < String.length stream do
        let len = min chunk (String.length stream - !pos) in
        P.feed d (Bytes.of_string (String.sub stream !pos len)) 0 len;
        pos := !pos + len;
        drain ()
      done;
      List.length !got = List.length reqs
      && List.for_all2 P.equal_request reqs (List.rev !got)
      && P.buffered d = 0)

(* ------------------------------------------------------------------ *)
(* Batcher                                                            *)
(* ------------------------------------------------------------------ *)

let test_batcher_fills () =
  let b = Tcmm_server.Batcher.create ~max_lanes:3 () in
  S.check_bool "1st" true (Tcmm_server.Batcher.enqueue b ~key:"k" ~now:0. "a" = None);
  S.check_bool "2nd" true (Tcmm_server.Batcher.enqueue b ~key:"k" ~now:0. "b" = None);
  S.check_int "pending" 2 (Tcmm_server.Batcher.pending b);
  (match Tcmm_server.Batcher.enqueue b ~key:"k" ~now:0. "c" with
  | Some jobs -> S.check_bool "arrival order" true (jobs = [ "a"; "b"; "c" ])
  | None -> Alcotest.fail "expected a full batch");
  S.check_int "drained" 0 (Tcmm_server.Batcher.pending b)

let test_batcher_keys_separate () =
  let b = Tcmm_server.Batcher.create ~max_lanes:2 () in
  ignore (Tcmm_server.Batcher.enqueue b ~key:"x" ~now:0. 1);
  ignore (Tcmm_server.Batcher.enqueue b ~key:"y" ~now:0. 2);
  S.check_bool "no cross-key batch" true
    (Tcmm_server.Batcher.enqueue b ~key:"x" ~now:0. 3 = Some [ 1; 3 ]);
  S.check_bool "other key intact" true
    (Tcmm_server.Batcher.drain b = [ ("y", [ 2 ]) ])

let test_batcher_deadline () =
  let b = Tcmm_server.Batcher.create ~max_lanes:62 ~flush_ms:10. () in
  ignore (Tcmm_server.Batcher.enqueue b ~key:"k" ~now:1. "a");
  ignore (Tcmm_server.Batcher.enqueue b ~key:"k" ~now:1.005 "b");
  S.check_bool "deadline from first job" true
    (Tcmm_server.Batcher.next_deadline b = Some 1.01);
  S.check_bool "not due yet" true (Tcmm_server.Batcher.due b ~now:1.009 = []);
  S.check_bool "due" true
    (Tcmm_server.Batcher.due b ~now:1.01 = [ ("k", [ "a"; "b" ]) ]);
  S.check_int "empty" 0 (Tcmm_server.Batcher.pending b)

let test_batcher_adaptive_mode () =
  let b = Tcmm_server.Batcher.create () in
  ignore (Tcmm_server.Batcher.enqueue b ~key:"k" ~now:5. "a");
  S.check_bool "no deadline when adaptive" true
    (Tcmm_server.Batcher.next_deadline b = None);
  S.check_bool "never due by time" true
    (Tcmm_server.Batcher.due b ~now:1e9 = []);
  S.check_bool "drain flushes" true
    (Tcmm_server.Batcher.drain b = [ ("k", [ "a" ]) ])

(* ------------------------------------------------------------------ *)
(* Circuit cache                                                      *)
(* ------------------------------------------------------------------ *)

let small_spec =
  {
    P.kind = P.Matmul;
    algo = "strassen";
    schedule = "thm45";
    d = 1;
    n = 2;
    entry_bits = 1;
    signed = false;
    tau = 0;
    kronpow = false;
  }

let test_circuit_cache_hits () =
  let cc = Tcmm_server.Circuit_cache.create ~capacity:2 () in
  (match Tcmm_server.Circuit_cache.find_or_build cc small_spec with
  | Error e -> Alcotest.fail e
  | Ok (e1, outcome1) ->
      S.check_bool "first build is a miss" true
        (outcome1 = Tcmm_server.Circuit_cache.Built);
      (match Tcmm_server.Circuit_cache.find_or_build cc small_spec with
      | Error e -> Alcotest.fail e
      | Ok (e2, outcome2) ->
          S.check_bool "second is a hit" true
            (outcome2 = Tcmm_server.Circuit_cache.Cached);
          S.check_bool "same entry" true (e1 == e2)));
  let st = Tcmm_server.Circuit_cache.stats cc in
  S.check_int "hits" 1 st.Tcmm_util.Lru.hits;
  S.check_int "misses" 1 st.Tcmm_util.Lru.misses

let test_circuit_cache_rejects () =
  let cc = Tcmm_server.Circuit_cache.create ~capacity:2 () in
  let bad mut =
    match Tcmm_server.Circuit_cache.find_or_build cc (mut small_spec) with
    | Error _ -> true
    | Ok _ -> false
  in
  S.check_bool "unknown algorithm" true (bad (fun s -> { s with P.algo = "nope" }));
  S.check_bool "unknown schedule" true
    (bad (fun s -> { s with P.schedule = "nope" }));
  S.check_bool "bad n" true (bad (fun s -> { s with P.n = 0 }));
  S.check_bool "bad bits" true (bad (fun s -> { s with P.entry_bits = 0 }))

(* Interleaved lookups over more specs than capacity: eviction order
   follows recency (not insertion), counters stay exact, and a rebuilt
   evicted entry is indistinguishable from the original — same packed
   shape, same products. *)
let test_circuit_cache_interleaved_eviction () =
  let module Cc = Tcmm_server.Circuit_cache in
  let fingerprint e =
    ( Th.Packed.num_gates e.Cc.packed,
      Th.Packed.num_levels e.Cc.packed,
      Th.Packed.num_segments e.Cc.packed,
      Th.Packed.pool_edges e.Cc.packed )
  in
  let product e a b =
    match e.Cc.compiled with
    | Cc.Matmul built -> T.Matmul_circuit.run built ~a ~b
    | Cc.Trace _ | Cc.Stored _ -> Alcotest.fail "expected a matmul entry"
  in
  let s1 = small_spec in
  let s2 = { small_spec with P.n = 4 } in
  let s3 = { small_spec with P.entry_bits = 2 } in
  let cc = Cc.create ~capacity:2 () in
  let build spec ~expect_cached what =
    match Cc.find_or_build cc spec with
    | Error e -> Alcotest.fail (what ^ ": " ^ e)
    | Ok (e, outcome) ->
        S.check_bool (what ^ " cached?") expect_cached
          (outcome = Cc.Cached);
        e
  in
  ignore (build s1 ~expect_cached:false "s1 first build");
  let e2 = build s2 ~expect_cached:false "s2 first build" in
  let rng = Tcmm_util.Prng.create ~seed:11 in
  let a = F.Matrix.random rng ~rows:4 ~cols:4 ~lo:0 ~hi:1 in
  let b = F.Matrix.random rng ~rows:4 ~cols:4 ~lo:0 ~hi:1 in
  let shape2 = fingerprint e2 and c2 = product e2 a b in
  S.check_bool "s2 product correct" true (F.Matrix.equal c2 (F.Matrix.mul a b));
  (* Promote s1: s2 becomes least recent and the s3 build evicts it. *)
  ignore (build s1 ~expect_cached:true "s1 promote");
  ignore (build s3 ~expect_cached:false "s3 build");
  ignore (build s1 ~expect_cached:true "s1 survives s3");
  (* s2 was evicted; its rebuild must reproduce the original exactly. *)
  let e2' = build s2 ~expect_cached:false "s2 rebuild" in
  S.check_bool "rebuilt packed shape identical" true (fingerprint e2' = shape2);
  S.check_bool "rebuilt products identical" true
    (F.Matrix.equal (product e2' a b) c2);
  let st = Cc.stats cc in
  S.check_int "hits" 2 st.Tcmm_util.Lru.hits;
  S.check_int "misses" 4 st.Tcmm_util.Lru.misses;
  S.check_int "evictions" 2 st.Tcmm_util.Lru.evictions;
  S.check_int "size" 2 st.Tcmm_util.Lru.size

(* ------------------------------------------------------------------ *)
(* Loopback end-to-end                                                *)
(* ------------------------------------------------------------------ *)

(* Bind port 0 in the parent — the kernel assigns a free ephemeral
   port, so concurrent test runs can never collide — and hand the
   already-listening socket to the forked child.  The listening backlog
   also makes the post-fork connect race-free: no bind-retry loop. *)
let with_server ?(max_sessions = 16) f =
  let cfg =
    {
      (Tcmm_server.Server.default_config (P.Tcp ("127.0.0.1", 0))) with
      cache_capacity = 4;
      max_sessions;
    }
  in
  let listen_fd, addr = Tcmm_server.Server.bind cfg in
  let cfg = { cfg with Tcmm_server.Server.addr } in
  match Unix.fork () with
  | 0 ->
      (try Tcmm_server.Server.serve_fd cfg listen_fd with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close listen_fd;
      Fun.protect
        ~finally:(fun () ->
          (try ignore (Tcmm_server.Client.shutdown addr) with _ -> ());
          ignore (Unix.waitpid [] pid))
        (fun () ->
          let cl = Tcmm_server.Client.connect addr in
          Fun.protect
            ~finally:(fun () -> Tcmm_server.Client.close cl)
            (fun () -> f addr cl))

let mm_spec =
  {
    P.kind = P.Matmul;
    algo = "strassen";
    schedule = "thm45";
    d = 2;
    n = 4;
    entry_bits = 2;
    signed = true;
    tau = 0;
    kronpow = false;
  }

let test_loopback_matmul_bit_identical () =
  with_server (fun _addr cl ->
      (* The in-process oracle: the same circuit run locally. *)
      let algo = F.Instances.strassen in
      let schedule = T.Level_schedule.resolve ~algo ~name:"thm45" ~d:2 ~n:4 in
      let built =
        T.Matmul_circuit.build ~algo ~schedule ~signed_inputs:true ~entry_bits:2
          ~n:4 ()
      in
      let rng = Tcmm_util.Prng.create ~seed:7 in
      let pairs =
        (* > 62 so the server must split the burst across batches *)
        Array.init 70 (fun _ ->
            ( F.Matrix.random rng ~rows:4 ~cols:4 ~lo:(-3) ~hi:3,
              F.Matrix.random rng ~rows:4 ~cols:4 ~lo:(-3) ~hi:3 ))
      in
      (* Pipelined: write the whole burst, then collect. *)
      Array.iter
        (fun (a, b) ->
          Tcmm_server.Client.send cl (P.Run_matmul (mm_spec, a, b)))
        pairs;
      Array.iter
        (fun (a, b) ->
          match Tcmm_server.Client.recv cl with
          | Ok (P.Matmul_result (c, firings)) ->
              let local = T.Matmul_circuit.run built ~a ~b in
              S.check_bool "served = in-process" true (F.Matrix.equal c local);
              S.check_bool "served = integer reference" true
                (F.Matrix.equal c (F.Matrix.mul a b));
              S.check_bool "firings positive" true (firings > 0)
          | Ok (P.Error e) -> Alcotest.fail e
          | Ok _ -> Alcotest.fail "unexpected response"
          | Error e -> Alcotest.fail e)
        pairs)

let test_loopback_trace_and_errors () =
  with_server (fun _addr cl ->
      let rng = Tcmm_util.Prng.create ~seed:11 in
      let m = F.Matrix.random rng ~rows:4 ~cols:4 ~lo:0 ~hi:1 in
      let exact = T.Trace_circuit.reference m in
      let spec tau = { mm_spec with P.kind = P.Trace; signed = false; entry_bits = 1; tau } in
      (match Tcmm_server.Client.request cl (P.Run_trace (spec exact, m)) with
      | Ok (P.Trace_result (fires, _)) -> S.check_bool "trace >= tau" true fires
      | _ -> Alcotest.fail "trace request failed");
      (match Tcmm_server.Client.request cl (P.Run_trace (spec (exact + 1), m)) with
      | Ok (P.Trace_result (fires, _)) ->
          S.check_bool "trace < tau+1" false fires
      | _ -> Alcotest.fail "trace request failed");
      (* A malformed run is answered with Error, not a dropped socket. *)
      let wrong = F.Matrix.identity 3 in
      (match
         Tcmm_server.Client.request cl (P.Run_matmul (mm_spec, wrong, wrong))
       with
      | Ok (P.Error _) -> ()
      | _ -> Alcotest.fail "expected an error reply");
      (* ... and the connection still works. *)
      (match Tcmm_server.Client.request cl P.Ping with
      | Ok P.Pong -> ()
      | _ -> Alcotest.fail "connection unusable after error");
      (* Metrics reflect the work done. *)
      match Tcmm_server.Client.request cl P.Metrics with
      | Ok (P.Metrics_result m) ->
          S.check_bool "requests counted" true (m.P.requests_total >= 4);
          S.check_bool "runs counted" true (m.P.run_requests >= 2);
          S.check_bool "errors counted" true (m.P.errors >= 1);
          S.check_bool "batches ran" true (m.P.batches >= 2);
          S.check_bool "cache populated" true (m.P.cache.P.size >= 1)
      | _ -> Alcotest.fail "metrics request failed")

(* Streaming session end-to-end: open a triangles session, drive it
   with edge flips computed by Stream.delta, and check every reply
   against the graph's exact triangle count — plus the stateless
   Run_triangles path on the same daemon, LRU eviction at the session
   cap, and the v6 metrics counters. *)
let test_loopback_streaming_session () =
  with_server ~max_sessions:2 (fun _addr cl ->
      let module G = Tcmm_graph in
      let n = 4 in
      let spec =
        { P.kind = P.Triangles; algo = "strassen"; schedule = "thm45";
          d = 2; n; entry_bits = 1; signed = false; tau = 1; kronpow = false }
      in
      (* The trace circuit allocates its input layout first, so the
         client reconstitutes it from the spec alone: base 0, one
         unsigned wire per adjacency entry. *)
      let layout =
        T.Encode.restore ~rows:n ~cols:n ~entry_bits:1 ~signed:false ~base:0
      in
      let g = ref (G.Graph.empty n) in
      let sid =
        match
          Tcmm_server.Client.open_session cl spec (G.Graph.adjacency !g)
        with
        | Ok s ->
            S.check_bool "empty graph has no triangle" false s.P.so_fires;
            s.P.so_sid
        | Error e -> Alcotest.fail e
      in
      let flip flips =
        let g', delta = G.Stream.delta ~layout !g flips in
        g := g';
        let expect = G.Triangles.count !g >= 1 in
        match Tcmm_server.Client.update cl ~sid delta with
        | Ok u ->
            S.check_bool "served = reference" expect u.P.ur_fires;
            S.check_bool "dirty cone bounded" true
              (u.P.ur_dirty_gates >= 0 && u.P.ur_dirty_gates <= u.P.ur_gates)
        | Error e -> Alcotest.fail e
      in
      (* Build a triangle edge by edge, then break and rebuild it. *)
      flip [ (0, 1) ];
      flip [ (1, 2) ];
      flip [ (0, 2) ];
      (* flip-then-unflip in one delta is a structural no-op *)
      flip [ (2, 3); (2, 3) ];
      flip [ (0, 1) ];
      (* the stateless batched path on the same daemon agrees *)
      (match
         Tcmm_server.Client.request cl
           (P.Run_triangles (spec, G.Graph.adjacency !g))
       with
      | Ok (P.Triangles_result (fires, _)) ->
          S.check_bool "stateless agrees" (G.Triangles.count !g >= 1) fires
      | _ -> Alcotest.fail "triangles request failed");
      (* unknown sid / malformed delta answer Error; the session and
         the connection both survive *)
      (match Tcmm_server.Client.update cl ~sid:9999 [| (0, true) |] with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "update on unknown session succeeded");
      (match Tcmm_server.Client.update cl ~sid [| (-1, true) |] with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "out-of-range delta accepted");
      flip [ (0, 1) ];
      (* LRU: cap 2 — two more opens evict the original session, which
         was last touched before either of them *)
      let open2 () =
        match
          Tcmm_server.Client.open_session cl spec (G.Graph.adjacency !g)
        with
        | Ok s -> s.P.so_sid
        | Error e -> Alcotest.fail e
      in
      let sid2 = open2 () in
      let _sid3 = open2 () in
      (match Tcmm_server.Client.update cl ~sid [||] with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "evicted session still answered");
      (match Tcmm_server.Client.close_session cl ~sid:sid2 with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      match Tcmm_server.Client.request cl P.Metrics with
      | Ok (P.Metrics_result m) ->
          S.check_int "sessions opened" 3 m.P.sessions_opened;
          S.check_int "sessions active" 1 m.P.sessions_active;
          S.check_int "sessions evicted" 1 m.P.sessions_evicted;
          S.check_int "updates counted" 6 m.P.session_updates;
          S.check_bool "dirty work is a fraction of full sweeps" true
            (m.P.session_dirty_gates <= m.P.session_gates)
      | _ -> Alcotest.fail "metrics request failed")

let () =
  Alcotest.run "tcmm_server"
    [
      ( "protocol",
        [
          request_roundtrip;
          response_roundtrip;
          Alcotest.test_case "rejects truncation" `Quick
            test_decode_rejects_truncation;
          Alcotest.test_case "rejects garbage" `Quick test_decode_rejects_garbage;
          Alcotest.test_case "v4 compatibility" `Quick test_v4_compat;
          Alcotest.test_case "v5 compatibility" `Quick test_v5_compat;
          Alcotest.test_case "v6 compatibility" `Quick test_v6_compat;
        ] );
      ( "framing",
        [
          Alcotest.test_case "frame limits" `Quick test_frame_limits;
          Alcotest.test_case "corrupt lengths" `Quick
            test_dechunker_corrupt_lengths;
          dechunker_chunking;
          dechunker_adversarial;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "fills" `Quick test_batcher_fills;
          Alcotest.test_case "keys separate" `Quick test_batcher_keys_separate;
          Alcotest.test_case "deadline" `Quick test_batcher_deadline;
          Alcotest.test_case "adaptive mode" `Quick test_batcher_adaptive_mode;
        ] );
      ( "circuit-cache",
        [
          Alcotest.test_case "hits" `Quick test_circuit_cache_hits;
          Alcotest.test_case "rejects" `Quick test_circuit_cache_rejects;
          Alcotest.test_case "interleaved eviction" `Quick
            test_circuit_cache_interleaved_eviction;
        ] );
      ( "loopback",
        [
          Alcotest.test_case "matmul bit-identical" `Quick
            test_loopback_matmul_bit_identical;
          Alcotest.test_case "trace, errors, metrics" `Quick
            test_loopback_trace_and_errors;
          Alcotest.test_case "streaming session" `Quick
            test_loopback_streaming_session;
        ] );
    ]
