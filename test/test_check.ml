(* The tcmm_check harness: case serialization, the regression corpus
   (seeded counterexamples replayed deterministically), the structural
   certifier, the mutation sweep and its kill-rate floor, and a smoke
   run of the differential fuzzer — in-process and against a forked
   loopback server. *)

module S = Tcmm_test_support.Support
module Ck = Tcmm_check
module T = Tcmm
module Th = Tcmm_threshold

(* Under `dune runtest` the cwd is the sandboxed test directory; under
   `dune exec test/test_check.exe` it is the workspace root. *)
let corpus_dir =
  if Sys.file_exists "support/corpus" then "support/corpus"
  else "test/support/corpus"

(* ------------------------------------------------------------------ *)
(* Case serialization                                                 *)
(* ------------------------------------------------------------------ *)

let sample_case =
  {
    Ck.Case.kind = Ck.Case.Trace;
    algo = "strassen";
    schedule = "thm45";
    d = 2;
    n = 4;
    entry_bits = 2;
    signed = true;
    tau = -3;
    seed = 42;
    flips = [];
    kronpow = false;
  }

let test_case_roundtrip () =
  List.iter
    (fun c ->
      match Ck.Case.of_string (Ck.Case.to_string c) with
      | Ok c' -> S.check_bool "round-trips" true (Ck.Case.equal c c')
      | Error e -> Alcotest.fail e)
    [
      sample_case;
      { sample_case with Ck.Case.kind = Ck.Case.Matmul; signed = false; tau = 0 };
      { sample_case with Ck.Case.algo = "naive-2"; schedule = "uniform-2" };
      {
        sample_case with
        Ck.Case.entry_bits = 1;
        signed = false;
        flips = [ [ (0, 1); (0, 1) ]; [ (2, 3) ] ];
      };
      { sample_case with Ck.Case.kind = Ck.Case.Conv; tau = 0 };
      { sample_case with Ck.Case.kronpow = true };
      {
        sample_case with
        Ck.Case.kind = Ck.Case.Conv;
        algo = "laderman";
        n = 9;
        tau = 0;
        kronpow = true;
      };
    ]

let test_case_format_back_compat () =
  (* A flat case must serialize without any kronpow line at all, so
     every corpus file written before the kronpow field stays
     byte-identical; the flag only ever appears as "kronpow true". *)
  let lines c = String.split_on_char '\n' (Ck.Case.to_string c) in
  S.check_bool "flat case has no kronpow line" false
    (List.exists
       (fun l -> String.length l >= 7 && String.sub l 0 7 = "kronpow")
       (lines sample_case));
  S.check_bool "kronpow case carries the line" true
    (List.mem "kronpow true" (lines { sample_case with Ck.Case.kronpow = true }))

let prop_case_roundtrip =
  S.qcheck_case ~count:100 "generated cases round-trip" Ck.Fuzz.gen (fun c ->
      Ck.Case.of_string (Ck.Case.to_string c) = Ok c)

let prop_incremental_case_roundtrip =
  S.qcheck_case ~count:100 "incremental cases round-trip"
    Ck.Fuzz.gen_incremental (fun c ->
      Ck.Case.of_string (Ck.Case.to_string c) = Ok c)

let test_case_rejects_garbage () =
  List.iter
    (fun text ->
      match Ck.Case.of_string text with
      | Ok _ -> Alcotest.fail ("accepted: " ^ text)
      | Error _ -> ())
    [
      "";
      "tcmm-case 2\nkind trace";
      "tcmm-case 1\nkind pentagram";
      "tcmm-case 1\nkind trace\nalgo strassen";
      (* missing fields *)
      "tcmm-case 1\nkind trace\nd two";
    ]

(* ------------------------------------------------------------------ *)
(* Regression corpus                                                  *)
(* ------------------------------------------------------------------ *)

(* Every case the fuzzer ever shrank (plus the seeded adversarial
   corners) must keep passing the full differential oracle. *)
let test_corpus_replay () =
  let entries = Ck.Corpus.load_dir corpus_dir in
  S.check_bool "corpus is seeded" true (List.length entries >= 6);
  List.iter
    (fun (file, case) ->
      match Ck.Oracle.check case with
      | Ok () -> ()
      | Error e -> Alcotest.fail (file ^ ": " ^ e))
    entries;
  Ck.Oracle.clear_cache ()

let test_corpus_save_idempotent () =
  let dir = "corpus-tmp" in
  let p1 = Ck.Corpus.save ~dir ~message:"first" sample_case in
  let p2 = Ck.Corpus.save ~dir ~message:"second" sample_case in
  S.check_bool "same path for same case" true (p1 = p2);
  (match Ck.Corpus.load_file p1 with
  | Ok c -> S.check_bool "file parses back" true (Ck.Case.equal c sample_case)
  | Error e -> Alcotest.fail e);
  (match Ck.Corpus.load_dir dir with
  | [ (_, c) ] -> S.check_bool "dir holds one case" true (Ck.Case.equal c sample_case)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 entry, got %d" (List.length l)));
  Sys.remove p1;
  Sys.rmdir dir

let test_corpus_absent_dir_empty () =
  S.check_int "absent dir = empty corpus" 0
    (List.length (Ck.Corpus.load_dir "no-such-directory"))

(* ------------------------------------------------------------------ *)
(* Certifier                                                          *)
(* ------------------------------------------------------------------ *)

let spec ?(kind = Ck.Case.Trace) ?(algo = "strassen") ?(n = 4) schedule =
  {
    Ck.Certify.kind;
    algo;
    schedule;
    d = 2;
    n;
    entry_bits = 1;
    signed = false;
    tau = 1;
  }

let test_certify_all_schedules () =
  List.iter
    (fun kind ->
      List.iter
        (fun (algo, n) ->
          List.iter
            (fun schedule ->
              let cert = Ck.Certify.certify (spec ~kind ~algo ~n schedule) in
              if not (Ck.Certify.ok cert) then
                Alcotest.fail
                  (Format.asprintf "%s/%s/%s: %a" algo schedule
                     (Ck.Case.kind_name kind) Ck.Certify.pp cert))
            T.Level_schedule.standard_names)
        (* n follows each algorithm's power ladder: base-2 instances at
           4, base-3 Laderman at its smallest size. *)
        [ ("strassen", 4); ("naive-2", 4); ("laderman", 3) ])
    [ Ck.Case.Trace; Ck.Case.Matmul ]

let test_certify_theorem_bound_checked () =
  (* The paper's 2d+5 bound is only claimed (and therefore only checked)
     for Theorem 4.5 schedules. *)
  let has_theorem cert =
    List.exists
      (fun v -> v.Ck.Certify.name = "depth-theorem")
      cert.Ck.Certify.verdicts
  in
  S.check_bool "thm45 checks the bound" true
    (has_theorem (Ck.Certify.certify (spec "thm45")));
  S.check_bool "direct does not" false
    (has_theorem (Ck.Certify.certify (spec "direct")))

let test_certify_count_only () =
  (* Forcing a count-only build must keep every structural check exact
     while skipping the two that need a gate array. *)
  let cert = Ck.Certify.certify ~materialize_cap:0 (spec "thm45") in
  S.check_bool "count-only" false cert.Ck.Certify.materialized;
  S.check_bool "still certifies" true (Ck.Certify.ok cert);
  let skipped name =
    List.exists
      (fun v ->
        v.Ck.Certify.name = name && v.Ck.Certify.detail = "skipped (count-only build)")
      cert.Ck.Certify.verdicts
  in
  S.check_bool "walk skipped" true (skipped "walk");
  S.check_bool "validate skipped" true (skipped "validate")

let test_certify_json () =
  let j = Ck.Certify.to_json (Ck.Certify.certify (spec "thm45")) in
  let contains sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length j && (String.sub j i n = sub || go (i + 1)) in
    go 0
  in
  S.check_bool "has ok flag" true (contains "\"ok\":true");
  S.check_bool "has checks" true (contains "\"checks\":[");
  S.check_bool "has gate count" true (contains "\"gates\":")

(* ------------------------------------------------------------------ *)
(* Mutation                                                           *)
(* ------------------------------------------------------------------ *)

let and_circuit () =
  let g = Th.Gate.make ~inputs:[| 0; 1 |] ~weights:[| 1; 1 |] ~threshold:2 in
  Th.Circuit.make ~num_inputs:2 ~gates:[| g |] ~outputs:[| 2 |]

let mutant_with ~threshold original =
  let g = Th.Gate.make ~inputs:[| 0; 1 |] ~weights:[| 1; 1 |] ~threshold in
  {
    Ck.Mutate.op = Ck.Mutate.Perturb_threshold;
    gate = 0;
    detail = "test";
    circuit = Th.Circuit.map_gates original ~f:(fun _ _ -> g);
  }

let test_judge_behavioral_kill () =
  (* AND weakened to OR: caught on the input that distinguishes them. *)
  let original = and_circuit () in
  let inputs = [| [| true; true |]; [| true; false |] |] in
  match Ck.Mutate.judge ~original ~inputs (mutant_with ~threshold:1 original) with
  | Some (Ck.Mutate.Behavioral 1) -> ()
  | Some (Ck.Mutate.Behavioral i) ->
      Alcotest.fail (Printf.sprintf "killed on wrong input %d" i)
  | Some (Ck.Mutate.Structural s) -> Alcotest.fail ("structural: " ^ s)
  | None -> Alcotest.fail "survived"

let test_judge_structural_kill () =
  (* AND pushed to an unsatisfiable threshold: Validate's never-fires
     warning flags it before any workload runs. *)
  let original = and_circuit () in
  match Ck.Mutate.judge ~original ~inputs:[||] (mutant_with ~threshold:3 original) with
  | Some (Ck.Mutate.Structural _) -> ()
  | Some (Ck.Mutate.Behavioral _) -> Alcotest.fail "expected structural kill"
  | None -> Alcotest.fail "survived"

let test_judge_observation_power () =
  (* With only the output bit observed, an inner mutant masked by the
     top gate survives; a stronger observation (the inner wire itself,
     standing in for the oracle's trace-value decode) kills it. *)
  let inner = Th.Gate.make ~inputs:[| 0; 1 |] ~weights:[| 1; 1 |] ~threshold:2 in
  let top = Th.Gate.make ~inputs:[| 2 |] ~weights:[| 1 |] ~threshold:5 in
  let original = Th.Circuit.make ~num_inputs:2 ~gates:[| inner; top |] ~outputs:[| 3 |] in
  let weakened = Th.Gate.make ~inputs:[| 0; 1 |] ~weights:[| 1; 1 |] ~threshold:1 in
  let m =
    {
      Ck.Mutate.op = Ck.Mutate.Perturb_threshold;
      gate = 0;
      detail = "test";
      circuit =
        Th.Circuit.map_gates original ~f:(fun g old -> if g = 0 then weakened else old);
    }
  in
  let inputs = [| [| true; false |] |] in
  S.check_bool "masked at the output" true
    (Ck.Mutate.judge ~original ~inputs m = None);
  let observe r =
    Ck.Mutate.default_observe r
    ^ if Th.Simulator.value r 2 then "|1" else "|0"
  in
  match Ck.Mutate.judge ~observe ~original ~inputs m with
  | Some (Ck.Mutate.Behavioral 0) -> ()
  | _ -> Alcotest.fail "inner-wire observation must kill the mutant"

let test_mutation_battery_kill_rate () =
  let sweep = Ck.Harness.mutation_battery ~seed:3 ~mutants:40 () in
  S.check_bool "sampled mutants" true (sweep.Ck.Mutate.total >= 30);
  let rate = Ck.Mutate.kill_rate sweep in
  S.check_bool
    (Printf.sprintf "kill rate %.3f >= %.2f" rate Ck.Harness.kill_threshold)
    true
    (rate >= Ck.Harness.kill_threshold);
  Ck.Oracle.clear_cache ()

let test_protocol_truncation () =
  let s = Ck.Mutate.protocol_truncation_sweep () in
  S.check_bool "ran cuts" true (s.Ck.Mutate.cuts > 0);
  S.check_int "every truncation detected" s.Ck.Mutate.cuts s.Ck.Mutate.killed

(* ------------------------------------------------------------------ *)
(* Fuzzing                                                            *)
(* ------------------------------------------------------------------ *)

let test_fuzz_smoke () =
  let o = Ck.Fuzz.run ~seed:5 ~cases:8 () in
  S.check_int "all cases ran" 8 o.Ck.Fuzz.tested;
  (match o.Ck.Fuzz.failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.fail
        (Format.asprintf "%a: %s" Ck.Case.pp f.Ck.Fuzz.case f.Ck.Fuzz.message));
  Ck.Oracle.clear_cache ()

let test_shrink_requires_failure () =
  (* Shrinking is only defined for failing cases; a passing one must be
     rejected loudly instead of "minimizing" to an arbitrary case. *)
  try
    ignore (Ck.Fuzz.shrink sample_case);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_incremental_fuzz_smoke () =
  let o = Ck.Fuzz.run_incremental ~seed:7 ~cases:8 () in
  S.check_int "all cases ran" 8 o.Ck.Fuzz.tested;
  (match o.Ck.Fuzz.failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.fail
        (Format.asprintf "%a: %s" Ck.Case.pp f.Ck.Fuzz.case f.Ck.Fuzz.message));
  Ck.Oracle.clear_cache ()

let test_incremental_adversarial_cases () =
  (* The two corners the seeded corpus pins: a flip-then-unflip batch
     whose delta must be a structural no-op, and a flip that lands the
     trace value exactly on tau (a stale cached sum would misreport the
     output on either side of the boundary). *)
  let base =
    {
      sample_case with
      Ck.Case.entry_bits = 1;
      signed = false;
      tau = 1;
      flips = [ [ (0, 1); (0, 1) ]; [ (1, 2) ]; [ (0, 1); (0, 1) ] ];
    }
  in
  (match Ck.Oracle.check base with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("no-op delta: " ^ e));
  let final =
    Tcmm_graph.Graph.flip_edges (Ck.Case.graph base)
      (List.concat base.Ck.Case.flips)
  in
  let boundary =
    {
      base with
      Ck.Case.tau =
        T.Trace_circuit.reference (Tcmm_graph.Graph.adjacency final);
    }
  in
  (match Ck.Oracle.check boundary with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("threshold boundary: " ^ e));
  Ck.Oracle.clear_cache ()

(* The conv oracle leg: direct convolution vs the im2col product vs the
   circuit-evaluated product, across algorithms (including base-3
   Laderman at n = 9) and both linear-layer builds. *)
let test_conv_oracle () =
  List.iter
    (fun c ->
      match Ck.Oracle.check c with
      | Ok () -> ()
      | Error e ->
          Alcotest.fail (Format.asprintf "%a: %s" Ck.Case.pp c e))
    [
      { sample_case with Ck.Case.kind = Ck.Case.Conv; tau = 0 };
      {
        sample_case with
        Ck.Case.kind = Ck.Case.Conv;
        algo = "laderman";
        n = 9;
        entry_bits = 1;
        signed = false;
        tau = 0;
      };
      {
        sample_case with
        Ck.Case.kind = Ck.Case.Conv;
        tau = 0;
        kronpow = true;
      };
    ];
  Ck.Oracle.clear_cache ()

(* Kronpow cases must be value-identical to their flat twins on every
   oracle leg — the factoring may only change wire structure. *)
let test_kronpow_oracle () =
  List.iter
    (fun c ->
      match Ck.Oracle.check c with
      | Ok () -> ()
      | Error e ->
          Alcotest.fail (Format.asprintf "%a: %s" Ck.Case.pp c e))
    [
      { sample_case with Ck.Case.kronpow = true };
      { sample_case with Ck.Case.kind = Ck.Case.Matmul; tau = 0; kronpow = true };
      {
        sample_case with
        Ck.Case.algo = "laderman";
        n = 3;
        entry_bits = 1;
        signed = false;
        tau = 1;
        kronpow = true;
      };
    ];
  Ck.Oracle.clear_cache ()

let prop_kronpow_pinned_fuzz =
  (* Every generated case, forced through the kronpow build, must still
     pass the differential oracle (the width-equality admissibility gate
     makes the factoring safe at any size). *)
  S.qcheck_case ~count:12 "kronpow-pinned cases pass the oracle" Ck.Fuzz.gen
    (fun c ->
      let c = { c with Ck.Case.kronpow = true } in
      match Ck.Oracle.check c with
      | Ok () -> true
      | Error e ->
          Format.eprintf "%a: %s@." Ck.Case.pp c e;
          false)

let test_server_fuzz_smoke () =
  let o, oi =
    Ck.Harness.with_loopback_server (fun cl ->
        ( Ck.Fuzz.run_server ~seed:5 ~cases:3 cl,
          Ck.Fuzz.run_server_incremental ~seed:5 ~cases:3 cl ))
  in
  S.check_int "all cases ran" 3 o.Ck.Fuzz.tested;
  S.check_int "all incremental cases ran" 3 oi.Ck.Fuzz.tested;
  match o.Ck.Fuzz.failures @ oi.Ck.Fuzz.failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.fail
        (Format.asprintf "%a: %s" Ck.Case.pp f.Ck.Fuzz.case f.Ck.Fuzz.message)

let () =
  Alcotest.run "tcmm_check"
    [
      (* The server suite comes first: it forks, and OCaml forbids
         Unix.fork once any later test has spawned a domain (the
         oracle's multi-domain leg does). *)
      ( "server",
        [ Alcotest.test_case "loopback fuzz smoke" `Slow test_server_fuzz_smoke ] );
      ( "case",
        [
          Alcotest.test_case "round-trip" `Quick test_case_roundtrip;
          Alcotest.test_case "format back-compat" `Quick
            test_case_format_back_compat;
          Alcotest.test_case "rejects garbage" `Quick test_case_rejects_garbage;
          prop_case_roundtrip;
          prop_incremental_case_roundtrip;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "seeded corpus replays clean" `Slow test_corpus_replay;
          Alcotest.test_case "save idempotent" `Quick test_corpus_save_idempotent;
          Alcotest.test_case "absent dir" `Quick test_corpus_absent_dir_empty;
        ] );
      ( "certify",
        [
          Alcotest.test_case "all schedules, both kinds" `Slow test_certify_all_schedules;
          Alcotest.test_case "theorem bound gating" `Quick test_certify_theorem_bound_checked;
          Alcotest.test_case "count-only mode" `Quick test_certify_count_only;
          Alcotest.test_case "json" `Quick test_certify_json;
        ] );
      ( "mutate",
        [
          Alcotest.test_case "behavioral kill" `Quick test_judge_behavioral_kill;
          Alcotest.test_case "structural kill" `Quick test_judge_structural_kill;
          Alcotest.test_case "observation power" `Quick test_judge_observation_power;
          Alcotest.test_case "battery kill rate" `Slow test_mutation_battery_kill_rate;
          Alcotest.test_case "protocol truncation" `Quick test_protocol_truncation;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "in-process smoke" `Slow test_fuzz_smoke;
          Alcotest.test_case "incremental smoke" `Slow test_incremental_fuzz_smoke;
          Alcotest.test_case "incremental adversarial corners" `Slow
            test_incremental_adversarial_cases;
          Alcotest.test_case "conv oracle legs" `Slow test_conv_oracle;
          Alcotest.test_case "kronpow oracle legs" `Slow test_kronpow_oracle;
          prop_kronpow_pinned_fuzz;
          Alcotest.test_case "shrink requires failure" `Quick test_shrink_requires_failure;
        ] );
    ]
