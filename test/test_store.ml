(* The artifact store: round-trip identity, corruption robustness,
   concurrent-writer atomicity, and the CRC-64 primitive underneath.

   The fork-based race test MUST run first and nothing in this binary
   may spawn domains: OCaml forbids [Unix.fork] after [Domain.spawn],
   so every packed evaluation here stays on the default sequential
   path. *)

module T = Tcmm
module F = Tcmm_fastmm
module Th = Tcmm_threshold
module A = Tcmm_store.Artifact
module St = Tcmm_store.Store
module Sv = Tcmm_server
module P = Tcmm_server.Protocol
module Crc64 = Tcmm_util.Crc64
module S = Tcmm_test_support.Support
open QCheck2

let strassen = F.Instances.strassen

(* ------------------------------------------------------------------ *)
(* Filesystem helpers                                                 *)
(* ------------------------------------------------------------------ *)

let temp_dir () =
  let path = Filename.temp_file "tcmm_test_store" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec remove_dir dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then remove_dir p
        else try Sys.remove p with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let with_temp_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> remove_dir dir) @@ fun () -> f dir

let with_temp_path f =
  let path = Filename.temp_file "tcmm_test_store" ".tcmm" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* ------------------------------------------------------------------ *)
(* Concurrent writers: two forked servers, one store directory        *)
(* ------------------------------------------------------------------ *)

let race_spec =
  {
    P.kind = P.Matmul;
    algo = "strassen";
    schedule = "thm45";
    d = 2;
    n = 4;
    entry_bits = 2;
    signed = true;
    tau = 0;
    kronpow = false;
  }

(* All K workers get the same compile pipelined before any reply is
   read, so every one of them misses its in-process cache and races the
   shared directory: each either builds the circuit and write-behind
   saves it, or wins a store load of a sibling's completed save.
   Temp-file + atomic rename must leave exactly one complete artifact,
   never a torn file, every worker must answer bit-identically, and —
   since a store miss ends in exactly one save and a store hit in
   exactly one load — the per-worker counters must satisfy
   [sum loads + sum saves = K]. *)
let race_workers = 4

let test_concurrent_writers () =
  with_temp_dir @@ fun dir ->
  let cfg =
    {
      (Sv.Server.default_config (P.Tcp ("127.0.0.1", 0))) with
      Sv.Server.store = Some dir;
    }
  in
  let start () =
    let listen_fd, addr = Sv.Server.bind cfg in
    let cfg = { cfg with Sv.Server.addr = addr } in
    match Unix.fork () with
    | 0 ->
        (try Sv.Server.serve_fd cfg listen_fd with _ -> ());
        Unix._exit 0
    | pid ->
        Unix.close listen_fd;
        (pid, addr)
  in
  let servers = Array.init race_workers (fun _ -> start ()) in
  let killed = ref false in
  let kill_all () =
    if not !killed then begin
      killed := true;
      Array.iter
        (fun (pid, _) ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid))
        servers
    end
  in
  Fun.protect ~finally:kill_all @@ fun () ->
  let clients =
    Array.map (fun (_, addr) -> Sv.Client.connect addr) servers
  in
  Array.iter (fun cl -> Sv.Client.send cl (P.Compile race_spec)) clients;
  Array.iteri
    (fun i cl ->
      match Sv.Client.recv cl with
      | Ok (P.Compiled c) ->
          S.check_bool
            (Printf.sprintf "worker %d compile not a cache hit" i)
            false c.P.cached
      | Ok _ -> Alcotest.failf "worker %d: unexpected reply to compile" i
      | Error m -> Alcotest.failf "worker %d: %s" i m)
    clients;
  let rng = Tcmm_util.Prng.create ~seed:0xC0FFEE in
  for _ = 1 to 4 do
    let a = F.Matrix.random rng ~rows:4 ~cols:4 ~lo:(-3) ~hi:3 in
    let b = F.Matrix.random rng ~rows:4 ~cols:4 ~lo:(-3) ~hi:3 in
    let want = F.Matrix.mul a b in
    Array.iteri
      (fun i cl ->
        match Sv.Client.request cl (P.Run_matmul (race_spec, a, b)) with
        | Ok (P.Matmul_result (m, _)) ->
            S.check_bool
              (Printf.sprintf "worker %d answers A*B" i)
              true
              (F.Matrix.equal m want)
        | Ok _ -> Alcotest.failf "worker %d: unexpected reply to run" i
        | Error m -> Alcotest.failf "worker %d: %s" i m)
      clients
  done;
  let loads = ref 0 and saves = ref 0 in
  Array.iteri
    (fun i cl ->
      match Sv.Client.request cl P.Metrics with
      | Ok (P.Metrics_result m) ->
          loads := !loads + m.P.store_loads;
          saves := !saves + m.P.store_saves;
          S.check_int
            (Printf.sprintf "worker %d store accesses" i)
            1
            (m.P.store_loads + m.P.store_saves);
          S.check_int
            (Printf.sprintf "worker %d no invalid artifacts" i)
            0 m.P.store_invalid
      | Ok _ -> Alcotest.failf "worker %d: unexpected reply to metrics" i
      | Error m -> Alcotest.failf "worker %d: %s" i m)
    clients;
  S.check_int "store loads + saves sum to the worker count" race_workers
    (!loads + !saves);
  S.check_bool "at least one worker saved" true (!saves >= 1);
  Array.iter Sv.Client.close clients;
  kill_all ();
  let files = Sys.readdir dir |> Array.to_list in
  let artifacts =
    List.filter (fun f -> Filename.check_suffix f ".tcmm") files
  in
  S.check_int "exactly one artifact survives the race" 1
    (List.length artifacts);
  S.check_bool "no temp or quarantined droppings" true
    (List.for_all (fun f -> Filename.check_suffix f ".tcmm") files);
  let key = Sv.Circuit_cache.key race_spec in
  match
    A.read ~key ~path:(Filename.concat dir (List.hd artifacts)) ()
  with
  | Ok a -> S.check_bool "post-race artifact verifies" true (a.A.a_bytes > 0)
  | Error m -> Alcotest.failf "post-race artifact invalid: %s" m

(* ------------------------------------------------------------------ *)
(* Fixtures: one trace circuit (template kernels), one matmul         *)
(* (materialized, no kernels — the empty [sec_kern] case)             *)
(* ------------------------------------------------------------------ *)

let trace_fixture =
  lazy
    (let schedule = T.Level_schedule.full ~l:1 in
     let built =
       T.Trace_circuit.build ~mode:Th.Builder.Direct ~templates:true
         ~algo:strassen ~schedule ~entry_bits:2 ~tau:3 ~n:2 ()
     in
     let packed = T.Trace_circuit.pack ~kernels:true built in
     let io =
       A.Trace_io
         {
           layout = built.T.Trace_circuit.layout;
           output = built.T.Trace_circuit.output;
           tau = built.T.Trace_circuit.tau;
         }
     in
     let meta =
       {
         A.m_key = "trace|strassen|full|d=1|n=2|b=2|signed=false|tau=3";
         m_templates = true;
         m_kernels = true;
         m_build_seconds = 0.25;
         m_stats = T.Trace_circuit.stats built;
         m_io = io;
       }
     in
     (built, packed, meta))

(* Pristine artifact bytes for the corruption properties, written once. *)
let trace_bytes =
  lazy
    (let _, packed, meta = Lazy.force trace_fixture in
     with_temp_path @@ fun path ->
     match A.write ~path meta packed with
     | Error m -> Alcotest.failf "fixture write failed: %s" m
     | Ok _ -> read_file path)

let matmul_fixture =
  lazy
    (let schedule = T.Level_schedule.full ~l:1 in
     let built =
       T.Matmul_circuit.build ~mode:Th.Builder.Materialize ~algo:strassen
         ~schedule ~signed_inputs:false ~entry_bits:2 ~n:2 ()
     in
     let packed = T.Matmul_circuit.pack ~kernels:false built in
     let io =
       A.Matmul_io
         {
           layout_a = built.T.Matmul_circuit.layout_a;
           layout_b = built.T.Matmul_circuit.layout_b;
           c_grid = built.T.Matmul_circuit.c_grid;
         }
     in
     let meta =
       {
         A.m_key = "matmul|strassen|full|d=1|n=2|b=2|signed=false|tau=0";
         m_templates = false;
         m_kernels = false;
         m_build_seconds = 0.125;
         m_stats = T.Matmul_circuit.stats built;
         m_io = io;
       }
     in
     (built, packed, meta))

(* ------------------------------------------------------------------ *)
(* CRC-64                                                             *)
(* ------------------------------------------------------------------ *)

let test_crc64_check_vector () =
  Alcotest.(check string)
    "CRC-64/XZ of \"123456789\"" "995dc9bbdf1939fa"
    (Crc64.to_hex (Crc64.digest (Crc64.feed_string Crc64.init "123456789")))

let test_crc64_word_vs_bytes =
  S.qcheck_case ~count:500 "feed_word = feed_bytes over the 8 LE bytes"
    Gen.int (fun w ->
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0 (Int64.logand (Int64.of_int w) Int64.max_int);
      Crc64.equal
        (Crc64.digest (Crc64.feed_word Crc64.init w))
        (Crc64.digest (Crc64.feed_bytes Crc64.init b ~pos:0 ~len:8)))

(* ------------------------------------------------------------------ *)
(* Round-trip identity                                                *)
(* ------------------------------------------------------------------ *)

let test_trace_round_trip () =
  let built, packed, meta = Lazy.force trace_fixture in
  with_temp_path @@ fun path ->
  (match A.write ~path meta packed with
  | Error m -> Alcotest.failf "write failed: %s" m
  | Ok bytes -> S.check_bool "write reports the file size" true (bytes > 0));
  match A.read ~key:meta.A.m_key ~path () with
  | Error m -> Alcotest.failf "read failed: %s" m
  | Ok a ->
      let loaded = a.A.a_packed in
      S.check_bool "structural identity" true
        (Th.Packed.structural_equal packed loaded);
      S.check_bool "no kernel recompilation on a fresh artifact" false
        a.A.a_kern_recompiled;
      S.check_bool "kernel coverage survives the trip" true
        (Th.Packed.coverage packed = Th.Packed.coverage loaded);
      Alcotest.(check string) "header carries the key" meta.A.m_key
        a.A.a_header.A.h_key;
      let out_loaded =
        match a.A.a_io with
        | A.Trace_io t -> t.output
        | A.Matmul_io _ -> Alcotest.fail "wrong io kind"
      in
      let rng = Tcmm_util.Prng.create ~seed:7 in
      let lanes =
        Array.init 8 (fun _ ->
            F.Matrix.random rng ~rows:2 ~cols:2 ~lo:0 ~hi:3)
      in
      let inputs = Array.map (T.Trace_circuit.encode_input built) lanes in
      let fresh = Th.Packed.run_batch packed inputs in
      let warm = Th.Packed.run_batch loaded inputs in
      Array.iteri
        (fun lane _ ->
          S.check_bool
            (Printf.sprintf "lane %d evaluates identically" lane)
            (Th.Packed.batch_value fresh ~lane built.T.Trace_circuit.output)
            (Th.Packed.batch_value warm ~lane out_loaded))
        lanes

let test_matmul_round_trip () =
  let built, packed, meta = Lazy.force matmul_fixture in
  with_temp_path @@ fun path ->
  (match A.write ~path meta packed with
  | Error m -> Alcotest.failf "write failed: %s" m
  | Ok _ -> ());
  match A.read ~key:meta.A.m_key ~path () with
  | Error m -> Alcotest.failf "read failed: %s" m
  | Ok a ->
      let loaded = a.A.a_packed in
      (* A materialized, kernels-off circuit has an empty kernel table;
         the artifact must reproduce that faithfully, not invent
         kernels on load. *)
      S.check_bool "structural identity (empty sec_kern)" true
        (Th.Packed.structural_equal packed loaded);
      let rng = Tcmm_util.Prng.create ~seed:11 in
      let a_m = F.Matrix.random rng ~rows:2 ~cols:2 ~lo:0 ~hi:3 in
      let b_m = F.Matrix.random rng ~rows:2 ~cols:2 ~lo:0 ~hi:3 in
      let input = T.Matmul_circuit.encode_inputs built ~a:a_m ~b:b_m in
      let fresh = Th.Packed.run_batch packed [| input |] in
      let warm = Th.Packed.run_batch loaded [| input |] in
      let dec br =
        T.Matmul_circuit.decode built (Th.Packed.batch_value br ~lane:0)
      in
      let want = F.Matrix.mul a_m b_m in
      S.check_bool "fresh circuit answers A*B" true
        (F.Matrix.equal (dec fresh) want);
      S.check_bool "loaded circuit answers A*B" true
        (F.Matrix.equal (dec warm) want)

(* ------------------------------------------------------------------ *)
(* Store tier: save / find, counters, quarantine                      *)
(* ------------------------------------------------------------------ *)

let open_store dir =
  match St.create ~dir () with
  | Ok s -> s
  | Error m -> Alcotest.failf "store open failed: %s" m

let test_store_save_find () =
  let _, packed, meta = Lazy.force trace_fixture in
  with_temp_dir @@ fun dir ->
  let store = open_store dir in
  (match St.save store ~meta packed with
  | Error m -> Alcotest.failf "save failed: %s" m
  | Ok _ -> ());
  (match St.find store ~key:meta.A.m_key with
  | None -> Alcotest.fail "saved artifact not found"
  | Some a ->
      S.check_bool "found artifact is the saved circuit" true
        (Th.Packed.structural_equal packed a.A.a_packed));
  S.check_bool "absent key misses cleanly" true
    (St.find store ~key:"no|such|key" = None);
  let c = St.counters store in
  S.check_int "one save" 1 c.St.saves;
  S.check_int "one load" 1 c.St.loads;
  S.check_int "nothing quarantined" 0 c.St.invalid

let test_key_mismatch () =
  let _, packed, meta = Lazy.force trace_fixture in
  with_temp_dir @@ fun dir ->
  let store = open_store dir in
  (match St.save store ~meta packed with
  | Error m -> Alcotest.failf "save failed: %s" m
  | Ok _ -> ());
  let right = St.path_of_key store meta.A.m_key in
  (* Direct read with the wrong expected key is refused. *)
  (match A.read ~key:"some|other|key" ~path:right () with
  | Ok _ -> Alcotest.fail "read accepted a spec-key mismatch"
  | Error m ->
      S.check_bool "error names the key mismatch" true
        (String.length m > 0));
  (* A file parked under another spec's name is quarantined on find. *)
  let wrong_key = "trace|strassen|full|d=1|n=2|b=2|signed=false|tau=9" in
  let wrong = St.path_of_key store wrong_key in
  Unix.rename right wrong;
  S.check_bool "mismatched artifact reports a miss" true
    (St.find store ~key:wrong_key = None);
  S.check_int "mismatch counted as invalid" 1 (St.counters store).St.invalid;
  S.check_bool "mismatched file quarantined" true
    (Sys.file_exists (wrong ^ ".corrupt"));
  S.check_bool "quarantined file is not re-read" true
    (St.find store ~key:wrong_key = None);
  S.check_int "second miss does not re-quarantine" 1
    (St.counters store).St.invalid

let test_payload_corruption_quarantined () =
  let _, packed, meta = Lazy.force trace_fixture in
  with_temp_dir @@ fun dir ->
  let store = open_store dir in
  (match St.save store ~meta packed with
  | Error m -> Alcotest.failf "save failed: %s" m
  | Ok _ -> ());
  let path = St.path_of_key store meta.A.m_key in
  let header =
    match A.read_header ~path with
    | Ok (h, _) -> h
    | Error m -> Alcotest.failf "read_header failed: %s" m
  in
  let sec =
    List.fold_left
      (fun best s -> if s.A.s_len > best.A.s_len then s else best)
      (List.hd header.A.h_sections)
      header.A.h_sections
  in
  S.check_bool "fixture has a non-empty section" true (sec.A.s_len > 0);
  let bytes = Bytes.of_string (read_file path) in
  let pos = sec.A.s_off * 8 in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 1));
  write_file path (Bytes.to_string bytes);
  S.check_bool "corrupted payload reports a miss" true
    (St.find store ~key:meta.A.m_key = None);
  S.check_int "corruption counted" 1 (St.counters store).St.invalid;
  S.check_bool "corrupted file quarantined" true
    (Sys.file_exists (path ^ ".corrupt"))

(* ------------------------------------------------------------------ *)
(* Stale format version                                               *)
(* ------------------------------------------------------------------ *)

(* Byte layout under test: magic at 0, u64 header length at 8, the
   Codec-encoded header at 16 (tuple tags 't','t','t', then an 'i' tag
   and [h_format] as a u64 LE at bytes 20..27), and the header CRC-64
   as one u64 LE at [16 + hlen].  Bump the version payload and re-sign
   the header so only the version check can object. *)
let stale_format_bytes () =
  let bytes = Bytes.of_string (Lazy.force trace_bytes) in
  S.check_int "codec tuple tag" (Char.code 't') (Char.code (Bytes.get bytes 16));
  S.check_int "codec int tag" (Char.code 'i') (Char.code (Bytes.get bytes 19));
  S.check_int "h_format low byte is the current version"
    (A.format_version land 0xff)
    (Char.code (Bytes.get bytes 20));
  let hlen = Int64.to_int (Bytes.get_int64_le bytes 8) in
  Bytes.set bytes 20 (Char.chr ((A.format_version + 1) land 0xff));
  let hi, lo =
    Crc64.digest (Crc64.feed_bytes Crc64.init bytes ~pos:16 ~len:hlen)
  in
  Bytes.set_int64_le bytes (16 + hlen)
    (Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo));
  Bytes.to_string bytes

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_stale_format_rejected () =
  with_temp_path @@ fun path ->
  write_file path (stale_format_bytes ());
  (match A.read_header ~path with
  | Ok _ -> Alcotest.fail "read_header accepted a stale format version"
  | Error m ->
      S.check_bool "error names the stale format" true
        (contains ~needle:"stale format" m));
  match A.read ~path () with
  | Ok _ -> Alcotest.fail "read accepted a stale format version"
  | Error _ -> ()

let test_gc () =
  let _, packed, meta = Lazy.force trace_fixture in
  with_temp_dir @@ fun dir ->
  let store = open_store dir in
  (match St.save store ~meta packed with
  | Error m -> Alcotest.failf "save failed: %s" m
  | Ok _ -> ());
  (* Dead weight gc must sweep: a stale-format artifact, a quarantined
     file, an orphaned temp file, and header garbage. *)
  write_file (Filename.concat dir "stale.tcmm") (stale_format_bytes ());
  write_file (Filename.concat dir "old.tcmm.corrupt") "quarantined";
  write_file (Filename.concat dir "orphan.tcmm.tmp.12345") "half a write";
  write_file (Filename.concat dir "junk.tcmm") "not an artifact";
  let removed = ref [] in
  let freed = St.gc store ~removed:(fun f -> removed := f :: !removed) in
  S.check_int "gc removed the four dead files" 4 (List.length !removed);
  S.check_bool "gc reports bytes freed" true (freed > 0);
  S.check_bool "the live artifact survives gc" true
    (Sys.file_exists (St.path_of_key store meta.A.m_key));
  match St.list store with
  | [ (_, Ok (h, _)) ] ->
      Alcotest.(check string) "list shows the surviving artifact"
        meta.A.m_key h.A.h_key
  | l -> Alcotest.failf "expected one listed artifact, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Corruption properties: truncation and bit flips                    *)
(* ------------------------------------------------------------------ *)

(* Any truncation must fail cleanly — an Error, never an exception,
   never a mapped read off the end of the file.  The one admissible
   acceptance: a cut confined to the zero padding after the last
   section (sections are page-aligned, so the file carries trailing
   pad), which must still load the identical circuit. *)
let test_truncation =
  S.qcheck_case ~count:80 "every truncation point fails cleanly"
    Gen.(int_bound 0x3FFFFFFF)
    (fun r ->
      let pristine = Lazy.force trace_bytes in
      let _, packed, _ = Lazy.force trace_fixture in
      let len = r mod String.length pristine in
      with_temp_path @@ fun path ->
      let content_end =
        write_file path pristine;
        match A.read_header ~path with
        | Ok (h, _) ->
            List.fold_left
              (fun e s -> max e ((s.A.s_off + s.A.s_len) * 8))
              0 h.A.h_sections
        | Error m -> Test.fail_reportf "pristine header unreadable: %s" m
      in
      write_file path (String.sub pristine 0 len);
      match A.read ~path () with
      | Error _ -> true
      | Ok a when len >= content_end ->
          Th.Packed.structural_equal packed a.A.a_packed
          || Test.fail_reportf
               "pad-only truncation to %d bytes loaded a different circuit"
               len
      | Ok _ ->
          Test.fail_reportf "accepted a %d-byte truncation (content ends at %d)"
            len content_end
      | exception e ->
          Test.fail_reportf "raised on a %d-byte truncation: %s" len
            (Printexc.to_string e))

(* A single flipped bit is either detected (Error) or provably
   harmless: padding bytes and bit 63 of a stored word are outside the
   logical content, so an accepted load must still be structurally
   identical.  A wrong answer or a crash is the one forbidden
   outcome. *)
let test_bit_flips =
  S.qcheck_case ~count:120 "every bit flip is detected or harmless"
    Gen.(pair (int_bound 0x3FFFFFFF) (int_bound 7))
    (fun (r, bit) ->
      let pristine = Lazy.force trace_bytes in
      let _, packed, meta = Lazy.force trace_fixture in
      let pos = r mod String.length pristine in
      let bytes = Bytes.of_string pristine in
      Bytes.set bytes pos
        (Char.chr (Char.code (Bytes.get bytes pos) lxor (1 lsl bit)));
      with_temp_path @@ fun path ->
      write_file path (Bytes.to_string bytes);
      match A.read ~key:meta.A.m_key ~path () with
      | Error _ -> true
      | Ok a ->
          Th.Packed.structural_equal packed a.A.a_packed
          || Test.fail_reportf
               "flip at byte %d bit %d loaded a different circuit" pos bit
      | exception e ->
          Test.fail_reportf "flip at byte %d bit %d raised: %s" pos bit
            (Printexc.to_string e))

(* Flips inside a section's logical words (bit 63 excluded) are inside
   CRC-covered content and must always be detected. *)
let test_section_flips_detected =
  S.qcheck_case ~count:80 "in-section content flips are always detected"
    Gen.(triple (int_bound 0x3FFFFFFF) (int_bound 0x3FFFFFFF) (int_bound 62))
    (fun (rs, rw, bit) ->
      let pristine = Lazy.force trace_bytes in
      with_temp_path @@ fun path ->
      write_file path pristine;
      let header =
        match A.read_header ~path with
        | Ok (h, _) -> h
        | Error m -> Test.fail_reportf "pristine header unreadable: %s" m
      in
      let sections =
        List.filter (fun s -> s.A.s_len > 0) header.A.h_sections
      in
      if sections = [] then Test.fail_report "fixture has no sections";
      let s = List.nth sections (rs mod List.length sections) in
      let word = s.A.s_off + (rw mod s.A.s_len) in
      let pos = (word * 8) + (bit / 8) in
      let bytes = Bytes.of_string pristine in
      Bytes.set bytes pos
        (Char.chr (Char.code (Bytes.get bytes pos) lxor (1 lsl (bit mod 8))));
      write_file path (Bytes.to_string bytes);
      match A.read ~path () with
      | Error _ -> true
      | Ok _ ->
          Test.fail_reportf
            "undetected flip in section %S (word %d, bit %d)" s.A.s_name
            (word - s.A.s_off) bit)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "store"
    [
      (* Fork-based tests first: no domain may have been spawned yet. *)
      ( "concurrency",
        [
          Alcotest.test_case "four workers, one store dir" `Quick
            test_concurrent_writers;
        ] );
      ( "crc64",
        [
          Alcotest.test_case "check vector" `Quick test_crc64_check_vector;
          test_crc64_word_vs_bytes;
        ] );
      ( "round-trip",
        [
          Alcotest.test_case "trace identity" `Quick test_trace_round_trip;
          Alcotest.test_case "matmul identity (no kernels)" `Quick
            test_matmul_round_trip;
        ] );
      ( "store",
        [
          Alcotest.test_case "save and find" `Quick test_store_save_find;
          Alcotest.test_case "spec-key mismatch quarantined" `Quick
            test_key_mismatch;
          Alcotest.test_case "payload corruption quarantined" `Quick
            test_payload_corruption_quarantined;
          Alcotest.test_case "stale format rejected" `Quick
            test_stale_format_rejected;
          Alcotest.test_case "gc sweeps dead files" `Quick test_gc;
        ] );
      ( "corruption",
        [ test_truncation; test_bit_flips; test_section_flips_detected ] );
    ]
