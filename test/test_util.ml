open Tcmm_util
module S = Tcmm_test_support.Support

(* ------------------------------------------------------------------ *)
(* Checked                                                            *)
(* ------------------------------------------------------------------ *)

let test_checked_add_basic () =
  S.check_int "2+3" 5 (Checked.add 2 3);
  S.check_int "neg" (-7) (Checked.add (-3) (-4));
  S.check_int "mixed" 1 (Checked.add 4 (-3));
  S.check_int "zero" max_int (Checked.add max_int 0)

let test_checked_add_overflow () =
  Alcotest.check_raises "max_int+1" (Checked.Overflow "Checked.add: 4611686018427387903 1")
    (fun () -> ignore (Checked.add max_int 1));
  Alcotest.check_raises "min_int-1"
    (Checked.Overflow "Checked.add: -4611686018427387904 -1") (fun () ->
      ignore (Checked.add min_int (-1)))

let test_checked_sub () =
  S.check_int "5-3" 2 (Checked.sub 5 3);
  S.check_int "3-5" (-2) (Checked.sub 3 5);
  S.check_int "edge" min_int (Checked.sub min_int 0);
  (try
     ignore (Checked.sub min_int 1);
     Alcotest.fail "expected overflow"
   with Checked.Overflow _ -> ());
  try
    ignore (Checked.sub max_int (-1));
    Alcotest.fail "expected overflow"
  with Checked.Overflow _ -> ()

let test_checked_mul () =
  S.check_int "6*7" 42 (Checked.mul 6 7);
  S.check_int "by zero" 0 (Checked.mul 0 max_int);
  S.check_int "neg" (-42) (Checked.mul (-6) 7);
  S.check_int "both neg" 42 (Checked.mul (-6) (-7));
  (try
     ignore (Checked.mul max_int 2);
     Alcotest.fail "expected overflow"
   with Checked.Overflow _ -> ());
  try
    ignore (Checked.mul min_int (-1));
    Alcotest.fail "expected overflow"
  with Checked.Overflow _ -> ()

let test_checked_pow () =
  S.check_int "2^10" 1024 (Checked.pow 2 10);
  S.check_int "3^4" 81 (Checked.pow 3 4);
  S.check_int "x^0" 1 (Checked.pow 12345 0);
  S.check_int "0^5" 0 (Checked.pow 0 5);
  S.check_int "1^62" 1 (Checked.pow 1 62);
  S.check_int "2^61" (1 lsl 61) (Checked.pow 2 61);
  (try
     ignore (Checked.pow 2 63);
     Alcotest.fail "expected overflow"
   with Checked.Overflow _ -> ());
  try
    ignore (Checked.pow 2 (-1));
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_checked_neg_abs () =
  S.check_int "neg" (-5) (Checked.neg 5);
  S.check_int "abs" 5 (Checked.abs (-5));
  (try
     ignore (Checked.neg min_int);
     Alcotest.fail "expected overflow"
   with Checked.Overflow _ -> ());
  try
    ignore (Checked.abs min_int);
    Alcotest.fail "expected overflow"
  with Checked.Overflow _ -> ()

let test_checked_sums () =
  S.check_int "list" 10 (Checked.sum [ 1; 2; 3; 4 ]);
  S.check_int "empty" 0 (Checked.sum []);
  S.check_int "array" 15 (Checked.sum_array [| 1; 2; 3; 4; 5 |])

let prop_checked_matches_native =
  S.qcheck_case "checked ops match native on small ints"
    QCheck2.Gen.(pair (int_range (-1000000) 1000000) (int_range (-1000000) 1000000))
    (fun (a, b) ->
      Checked.add a b = a + b && Checked.sub a b = a - b && Checked.mul a b = a * b)

(* ------------------------------------------------------------------ *)
(* Ilog                                                               *)
(* ------------------------------------------------------------------ *)

let test_bits_table () =
  List.iter
    (fun (m, expect) -> S.check_int (Printf.sprintf "bits %d" m) expect (Ilog.bits m))
    [ (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4); (255, 8); (256, 9) ]

let test_bits_negative () =
  try
    ignore (Ilog.bits (-1));
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let prop_bits_definition =
  S.qcheck_case "bits m is least l with m < 2^l"
    QCheck2.Gen.(int_range 0 (1 lsl 40))
    (fun m ->
      let l = Ilog.bits m in
      m < 1 lsl l && (l = 0 || m >= 1 lsl (l - 1)))

let test_log2 () =
  S.check_int "floor_log2 1" 0 (Ilog.floor_log2 1);
  S.check_int "floor_log2 7" 2 (Ilog.floor_log2 7);
  S.check_int "floor_log2 8" 3 (Ilog.floor_log2 8);
  S.check_int "ceil_log2 1" 0 (Ilog.ceil_log2 1);
  S.check_int "ceil_log2 7" 3 (Ilog.ceil_log2 7);
  S.check_int "ceil_log2 8" 3 (Ilog.ceil_log2 8);
  S.check_int "ceil_log2 9" 4 (Ilog.ceil_log2 9)

let test_log_base () =
  S.check_int "floor_log 3 26" 2 (Ilog.floor_log ~base:3 26);
  S.check_int "floor_log 3 27" 3 (Ilog.floor_log ~base:3 27);
  S.check_int "ceil_log 3 27" 3 (Ilog.ceil_log ~base:3 27);
  S.check_int "ceil_log 3 28" 4 (Ilog.ceil_log ~base:3 28);
  S.check_int "ceil_log 7 1" 0 (Ilog.ceil_log ~base:7 1)

let test_is_pow () =
  S.check_bool "8 pow2" true (Ilog.is_pow ~base:2 8);
  S.check_bool "6 pow2" false (Ilog.is_pow ~base:2 6);
  S.check_bool "1 pow7" true (Ilog.is_pow ~base:7 1);
  S.check_bool "49 pow7" true (Ilog.is_pow ~base:7 49);
  S.check_int "exact_log 7 49" 2 (Ilog.exact_log ~base:7 49);
  try
    ignore (Ilog.exact_log ~base:2 6);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let prop_log_base_bounds =
  S.qcheck_case "floor/ceil log bracket m"
    QCheck2.Gen.(pair (int_range 2 7) (int_range 1 1000000))
    (fun (base, m) ->
      let f = Ilog.floor_log ~base m and c = Ilog.ceil_log ~base m in
      Checked.pow base f <= m
      && m < Checked.pow base (f + 1)
      && Checked.pow base c >= m
      && (c = 0 || Checked.pow base (c - 1) < m))

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    S.check_int "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref true in
  for _ = 1 to 10 do
    if Prng.next a <> Prng.next b then same := false
  done;
  S.check_bool "different seeds diverge" false !same

let test_prng_bounds () =
  let rng = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng ~bound:17 in
    S.check_bool "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Prng.int_range rng ~lo:(-5) ~hi:5 in
    S.check_bool "in closed range" true (v >= -5 && v <= 5)
  done

let test_prng_float_unit () =
  let rng = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let f = Prng.float rng in
    S.check_bool "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_prng_rough_uniformity () =
  let rng = Prng.create ~seed:11 in
  let counts = Array.make 8 0 in
  let n = 8000 in
  for _ = 1 to n do
    let v = Prng.int rng ~bound:8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c -> S.check_bool "bucket within 20% of mean" true (c > 800 && c < 1200))
    counts

let test_prng_split_independent () =
  let rng = Prng.create ~seed:5 in
  let child = Prng.split rng in
  S.check_bool "parent and child differ" true (Prng.next rng <> Prng.next child)

(* ------------------------------------------------------------------ *)
(* Intvec                                                             *)
(* ------------------------------------------------------------------ *)

let test_intvec_push_get () =
  let v = Intvec.create () in
  for i = 0 to 999 do
    Intvec.push v (i * i)
  done;
  S.check_int "length" 1000 (Intvec.length v);
  S.check_int "get 0" 0 (Intvec.get v 0);
  S.check_int "get 999" (999 * 999) (Intvec.get v 999);
  Intvec.set v 10 (-7);
  S.check_int "set/get" (-7) (Intvec.get v 10)

let test_intvec_bounds () =
  let v = Intvec.create () in
  Intvec.push v 1;
  (try
     ignore (Intvec.get v 1);
     Alcotest.fail "expected invalid_arg"
   with Invalid_argument _ -> ());
  try
    Intvec.set v (-1) 0;
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_intvec_to_array_fold () =
  let v = Intvec.create ~capacity:1 () in
  List.iter (Intvec.push v) [ 3; 1; 4; 1; 5 ];
  Alcotest.(check (array int)) "to_array" [| 3; 1; 4; 1; 5 |] (Intvec.to_array v);
  S.check_int "fold sum" 14 (Intvec.fold_left ( + ) 0 v)

(* ------------------------------------------------------------------ *)
(* Tablefmt                                                           *)
(* ------------------------------------------------------------------ *)

let test_tablefmt_renders () =
  let s =
    Tablefmt.render ~title:"t" ~header:[ "a"; "b" ]
      ~rows:[ [ Tablefmt.Str "x"; Tablefmt.Int 42 ]; [ Tablefmt.Str "yy" ] ]
  in
  let contains sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  S.check_bool "contains title" true (contains "== t ==");
  S.check_bool "contains headers" true (contains "a" && contains "b");
  S.check_bool "contains int cell" true (contains "42");
  S.check_bool "short row padded" true (contains "yy")

let test_tablefmt_rejects_wide_row () =
  try
    ignore
      (Tablefmt.render ~title:"t" ~header:[ "a" ]
         ~rows:[ [ Tablefmt.Int 1; Tablefmt.Int 2 ] ]);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Lru                                                                *)
(* ------------------------------------------------------------------ *)

let lru_stats t =
  let s = Lru.stats t in
  (s.Lru.hits, s.Lru.misses, s.Lru.evictions, s.Lru.size)

let test_lru_basic () =
  let t = Lru.create ~capacity:2 () in
  S.check_bool "empty find" true (Lru.find t "a" = None);
  Lru.add t "a" 1;
  Lru.add t "b" 2;
  S.check_bool "finds a" true (Lru.find t "a" = Some 1);
  S.check_bool "finds b" true (Lru.find t "b" = Some 2);
  S.check_bool "mem" true (Lru.mem t "a" && not (Lru.mem t "c"));
  let hits, misses, evictions, size = lru_stats t in
  S.check_int "hits" 2 hits;
  S.check_int "misses" 1 misses;
  S.check_int "evictions" 0 evictions;
  S.check_int "size" 2 size

let test_lru_evicts_least_recent () =
  let t = Lru.create ~capacity:2 () in
  Lru.add t "a" 1;
  Lru.add t "b" 2;
  ignore (Lru.find t "a");  (* promote a: b is now least recent *)
  Lru.add t "c" 3;
  S.check_bool "b evicted" false (Lru.mem t "b");
  S.check_bool "a kept" true (Lru.mem t "a");
  S.check_bool "c kept" true (Lru.mem t "c");
  let _, _, evictions, size = lru_stats t in
  S.check_int "evictions" 1 evictions;
  S.check_int "size" 2 size;
  S.check_bool "mru order" true (Lru.to_list t = [ ("c", 3); ("a", 1) ])

let test_lru_find_or_add () =
  let t = Lru.create ~capacity:2 () in
  let builds = ref 0 in
  let build () = incr builds; !builds in
  S.check_int "built" 1 (Lru.find_or_add t "a" ~create:build);
  S.check_int "cached" 1 (Lru.find_or_add t "a" ~create:build);
  S.check_int "one build" 1 !builds;
  (* A failing create inserts nothing. *)
  (try ignore (Lru.find_or_add t "b" ~create:(fun () -> failwith "boom"))
   with Failure _ -> ());
  S.check_bool "failed create not inserted" false (Lru.mem t "b")

let test_lru_add_replaces () =
  let t = Lru.create ~capacity:2 () in
  Lru.add t "a" 1;
  Lru.add t "b" 2;
  Lru.add t "a" 10;  (* replacement, not an eviction *)
  S.check_bool "replaced" true (Lru.find t "a" = Some 10);
  let _, _, evictions, size = lru_stats t in
  S.check_int "no eviction" 0 evictions;
  S.check_int "size" 2 size

(* A longer interleaved find/add trace over more keys than capacity:
   recency (not insertion order) decides every eviction, and the
   hit/miss/eviction counters track the trace exactly. *)
let test_lru_interleaved_trace () =
  let t = Lru.create ~capacity:3 () in
  Lru.add t "a" 1;
  Lru.add t "b" 2;
  Lru.add t "c" 3;
  S.check_bool "hit a" true (Lru.find t "a" = Some 1);
  S.check_bool "mru after promote" true
    (Lru.to_list t = [ ("a", 1); ("c", 3); ("b", 2) ]);
  Lru.add t "d" 4;  (* evicts b, the least recent *)
  S.check_bool "b evicted" false (Lru.mem t "b");
  S.check_bool "miss b" true (Lru.find t "b" = None);
  S.check_bool "hit c promotes" true (Lru.find t "c" = Some 3);
  Lru.add t "e" 5;  (* evicts a: d and c are more recent *)
  S.check_bool "a evicted" false (Lru.mem t "a");
  Lru.add t "d" 40;  (* replacement promotes, no eviction *)
  Lru.add t "f" 6;  (* evicts c: e and d are more recent *)
  S.check_bool "c evicted" false (Lru.mem t "c");
  S.check_bool "final order" true
    (Lru.to_list t = [ ("f", 6); ("d", 40); ("e", 5) ]);
  let hits, misses, evictions, size = lru_stats t in
  S.check_int "hits" 2 hits;  (* a, c *)
  S.check_int "misses" 1 misses;  (* b after eviction *)
  S.check_int "evictions" 3 evictions;  (* b, a, c *)
  S.check_int "size" 3 size

let test_lru_clear_and_validation () =
  (try
     ignore (Lru.create ~capacity:0 ());
     Alcotest.fail "expected invalid_arg"
   with Invalid_argument _ -> ());
  let t = Lru.create ~capacity:3 () in
  Lru.add t 1 "x";
  Lru.add t 2 "y";
  Lru.clear t;
  S.check_int "cleared" 0 (Lru.stats t).Lru.size;
  S.check_bool "gone" false (Lru.mem t 1)

let () =
  Alcotest.run "tcmm_util"
    [
      ( "checked",
        [
          Alcotest.test_case "add basic" `Quick test_checked_add_basic;
          Alcotest.test_case "add overflow" `Quick test_checked_add_overflow;
          Alcotest.test_case "sub" `Quick test_checked_sub;
          Alcotest.test_case "mul" `Quick test_checked_mul;
          Alcotest.test_case "pow" `Quick test_checked_pow;
          Alcotest.test_case "neg/abs" `Quick test_checked_neg_abs;
          Alcotest.test_case "sums" `Quick test_checked_sums;
          prop_checked_matches_native;
        ] );
      ( "ilog",
        [
          Alcotest.test_case "bits table" `Quick test_bits_table;
          Alcotest.test_case "bits negative" `Quick test_bits_negative;
          prop_bits_definition;
          Alcotest.test_case "log2" `Quick test_log2;
          Alcotest.test_case "log base" `Quick test_log_base;
          Alcotest.test_case "is_pow/exact_log" `Quick test_is_pow;
          prop_log_base_bounds;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "float unit interval" `Quick test_prng_float_unit;
          Alcotest.test_case "rough uniformity" `Quick test_prng_rough_uniformity;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
        ] );
      ( "intvec",
        [
          Alcotest.test_case "push/get/set" `Quick test_intvec_push_get;
          Alcotest.test_case "bounds" `Quick test_intvec_bounds;
          Alcotest.test_case "to_array/fold" `Quick test_intvec_to_array_fold;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "renders" `Quick test_tablefmt_renders;
          Alcotest.test_case "rejects wide row" `Quick test_tablefmt_rejects_wide_row;
        ] );
      ( "lru",
        [
          Alcotest.test_case "basic" `Quick test_lru_basic;
          Alcotest.test_case "evicts least recent" `Quick test_lru_evicts_least_recent;
          Alcotest.test_case "find_or_add" `Quick test_lru_find_or_add;
          Alcotest.test_case "add replaces" `Quick test_lru_add_replaces;
          Alcotest.test_case "interleaved trace" `Quick test_lru_interleaved_trace;
          Alcotest.test_case "clear and validation" `Quick test_lru_clear_and_validation;
        ] );
    ]
