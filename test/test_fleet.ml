(* Fleet serving: supervisor + K forked workers, spec-affinity routing.

   The process-level tests fork a real Fleet supervisor (which forks
   its workers) over loopback TCP using the bind-then-fork pattern:
   every port is concrete before the child exists.  Nothing in this
   binary spawns a domain, so forking is safe throughout.  The router
   properties are pure QCheck2. *)

module P = Tcmm_server.Protocol
module Server = Tcmm_server.Server
module Fleet = Tcmm_server.Fleet
module Client = Tcmm_server.Client
module Pool = Tcmm_server.Client.Pool
module T = Tcmm
module F = Tcmm_fastmm
module Prng = Tcmm_util.Prng
module S = Tcmm_test_support.Support
open QCheck2

(* ------------------------------------------------------------------ *)
(* Workload: one tiny circuit under several cache keys                 *)
(* ------------------------------------------------------------------ *)

(* [tau] is part of the spec key but ignored by matmul evaluation, so
   these four specs give the router four distinct keys to spread across
   workers while a single in-process oracle verifies every reply. *)
let spec tau =
  {
    P.kind = P.Matmul;
    algo = "strassen";
    schedule = "thm45";
    d = 2;
    n = 4;
    entry_bits = 2;
    signed = true;
    tau;
    kronpow = false;
  }

let specs = List.init 4 (fun t -> spec t)

let oracle_built =
  lazy
    (let algo = F.Instances.strassen in
     let schedule = T.Level_schedule.resolve ~algo ~name:"thm45" ~d:2 ~n:4 in
     T.Matmul_circuit.build ~algo ~schedule ~signed_inputs:true ~entry_bits:2
       ~n:4 ())

let oracle ~a ~b = T.Matmul_circuit.run (Lazy.force oracle_built) ~a ~b

let random_pair rng =
  ( F.Matrix.random rng ~rows:4 ~cols:4 ~lo:(-3) ~hi:3,
    F.Matrix.random rng ~rows:4 ~cols:4 ~lo:(-3) ~hi:3 )

(* ------------------------------------------------------------------ *)
(* Harness                                                            *)
(* ------------------------------------------------------------------ *)

let grace_s = 8.

(* Bind the whole fleet in the parent, supervise in a forked child:
   front, control, and every worker endpoint are known (and listening)
   before any client runs, so there is no startup race to retry
   around. *)
let with_fleet ?(workers = 3) f =
  let cfg =
    {
      (Server.default_config (P.Tcp ("127.0.0.1", 0))) with
      cache_capacity = 4;
      grace_s;
    }
  in
  let fcfg =
    {
      (Fleet.default_config cfg) with
      workers;
      restart_limit = 100;
      restart_window_s = 3600.;
    }
  in
  let handle = Fleet.bind fcfg in
  let front = Fleet.front_addr handle in
  let control = Fleet.control_addr handle in
  let endpoints = Fleet.endpoints handle in
  match Unix.fork () with
  | 0 ->
      (try Fleet.supervise handle with _ -> ());
      Unix._exit 0
  | pid ->
      Fleet.close_handle handle;
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          let deadline = Unix.gettimeofday () +. grace_s +. 7. in
          let rec reap () =
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
            | 0, _ ->
                if Unix.gettimeofday () > deadline then begin
                  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                  try ignore (Unix.waitpid [] pid)
                  with Unix.Unix_error _ -> ()
                end
                else begin
                  Unix.sleepf 0.05;
                  reap ()
                end
            | _ -> ()
          in
          reap ())
        (fun () -> f ~front ~control ~endpoints ~sup_pid:pid)

let fetch_roster control =
  match Client.call control P.Fleet with
  | Ok (P.Fleet_result ws) -> ws
  | Ok _ -> Alcotest.fail "unexpected response to fleet roster request"
  | Error f -> Alcotest.failf "roster request failed: %a" Client.pp_failure f

let worker_metrics addr =
  match Client.call addr P.Metrics with
  | Ok (P.Metrics_result m) -> m
  | Ok _ -> Alcotest.fail "unexpected response to metrics"
  | Error f -> Alcotest.failf "metrics request failed: %a" Client.pp_failure f

let issue_verified pool sp pair =
  let a, b = pair in
  match
    Pool.call pool ~key:(Pool.key_of_spec sp) (P.Run_matmul (sp, a, b))
  with
  | Ok (P.Matmul_result (c, _)) ->
      S.check_bool "pool reply = Matmul_circuit.run" true
        (F.Matrix.equal c (oracle ~a ~b));
      S.check_bool "pool reply = integer reference" true
        (F.Matrix.equal c (F.Matrix.mul a b))
  | Ok _ -> Alcotest.fail "unexpected response to pooled run"
  | Error f -> Alcotest.failf "pooled run failed: %a" Client.pp_failure f

(* ------------------------------------------------------------------ *)
(* Spec affinity: repeated specs land on their rendezvous shard        *)
(* ------------------------------------------------------------------ *)

let test_spec_affinity () =
  with_fleet ~workers:3 (fun ~front:_ ~control ~endpoints ~sup_pid:_ ->
      let pool = Pool.create endpoints in
      let eps = Array.of_list endpoints in
      let index_of addr =
        let rec go i =
          if i >= Array.length eps then
            Alcotest.fail "shard not in the endpoint list"
          else if eps.(i) = addr then i
          else go (i + 1)
        in
        go 0
      in
      let per_spec = 6 in
      let expected = Array.make (Array.length eps) 0 in
      let rng = Prng.create ~seed:3 in
      List.iter
        (fun sp ->
          let shard = Pool.shard pool ~key:(Pool.key_of_spec sp) in
          expected.(index_of shard) <- expected.(index_of shard) + per_spec;
          for _ = 1 to per_spec do
            issue_verified pool sp (random_pair rng)
          done)
        specs;
      (* Nothing was killed, so routing is pure affinity: each worker's
         own run counter must equal exactly the requests of the specs
         that hash to it — proof the repeated specs landed on one
         worker's hot cache rather than spraying. *)
      let ws = fetch_roster control in
      Array.iteri
        (fun i ep ->
          let m = worker_metrics ep in
          S.check_int
            (Printf.sprintf "worker %d run_requests" (i + 1))
            expected.(i) m.P.run_requests;
          let w =
            List.find (fun w -> w.P.fw_addr = P.addr_string ep) ws
          in
          S.check_int
            (Printf.sprintf "worker %d stamps its id" (i + 1))
            w.P.fw_id m.P.worker_id)
        eps)

(* ------------------------------------------------------------------ *)
(* SIGKILL one worker mid-burst                                       *)
(* ------------------------------------------------------------------ *)

let test_kill_one_mid_burst () =
  with_fleet ~workers:3 (fun ~front:_ ~control ~endpoints ~sup_pid:_ ->
      let pool = Pool.create endpoints in
      let sp = spec 0 in
      let key = Pool.key_of_spec sp in
      let shard = Pool.shard pool ~key in
      let rng = Prng.create ~seed:5 in
      (* First pipelined burst straight at the shard: all served, all
         bit-identical. *)
      let cl = Client.connect shard in
      let first = Array.init 15 (fun _ -> random_pair rng) in
      Array.iter (fun (a, b) -> Client.send cl (P.Run_matmul (sp, a, b))) first;
      Array.iter
        (fun (a, b) ->
          match Client.recv cl with
          | Ok (P.Matmul_result (c, _)) ->
              S.check_bool "pre-kill reply bit-identical" true
                (F.Matrix.equal c (oracle ~a ~b))
          | Ok _ -> Alcotest.fail "unexpected response in first burst"
          | Error e -> Alcotest.fail e)
        first;
      (* SIGKILL the shard's worker, then keep driving the now-dead
         connection: every request must resolve — a served reply that
         is bit-identical, or a transport failure that completes on
         re-issue through the failing-over pool.  Nothing may be
         silently dropped. *)
      let w =
        List.find
          (fun w -> w.P.fw_addr = P.addr_string shard)
          (fetch_roster control)
      in
      Unix.kill w.P.fw_pid Sys.sigkill;
      let second = Array.init 15 (fun _ -> random_pair rng) in
      let sent = ref [] in
      let unanswered = ref [] in
      (try
         Array.iter
           (fun pair ->
             let a, b = pair in
             Client.send cl (P.Run_matmul (sp, a, b));
             sent := pair :: !sent)
           second
       with Unix.Unix_error _ | Sys_error _ -> ());
      let not_sent =
        let n_sent = List.length !sent in
        Array.to_list second |> List.filteri (fun i _ -> i >= n_sent)
      in
      let rec collect = function
        | [] -> ()
        | (a, b) :: rest -> (
            match Client.recv cl with
            | Ok (P.Matmul_result (c, _)) ->
                S.check_bool "raced-out reply still bit-identical" true
                  (F.Matrix.equal c (oracle ~a ~b));
                collect rest
            | Ok _ -> Alcotest.fail "unexpected response in second burst"
            | Error _ -> unanswered := List.rev_append rest ((a, b) :: !unanswered))
      in
      collect (List.rev !sent);
      Client.close cl;
      let to_reissue = not_sent @ !unanswered in
      S.check_bool "the kill actually disrupted the burst" true
        (to_reissue <> []);
      (* Failover completes every disrupted request against the
         restarted worker (same endpoint — the supervisor kept the
         listening socket). *)
      List.iter (fun pair -> issue_verified pool sp pair) to_reissue;
      let restarts =
        List.fold_left
          (fun acc w -> acc + w.P.fw_restarts)
          0 (fetch_roster control)
      in
      S.check_bool "supervisor restarted the killed worker" true
        (restarts >= 1))

(* ------------------------------------------------------------------ *)
(* Fleet-wide status and aggregation                                  *)
(* ------------------------------------------------------------------ *)

let test_fleet_status_aggregate () =
  with_fleet ~workers:3 (fun ~front:_ ~control ~endpoints ~sup_pid:_ ->
      let pool = Pool.create endpoints in
      let rng = Prng.create ~seed:9 in
      let total = 10 in
      for i = 0 to total - 1 do
        issue_verified pool (List.nth specs (i mod 4)) (random_pair rng)
      done;
      let ws = fetch_roster control in
      S.check_int "roster size" 3 (List.length ws);
      List.iteri
        (fun i w ->
          S.check_int "worker ids are 1-based and ordered" (i + 1) w.P.fw_id;
          S.check_bool "worker alive" true w.P.fw_alive;
          S.check_bool "worker has a pid" true (w.P.fw_pid > 0);
          S.check_int "no restarts in a clean run" 0 w.P.fw_restarts)
        ws;
      (* The control-plane aggregate sums every worker: all issued runs
         appear once, the accounting identity survives summation, and
         the snapshot is stamped as supervisor-side. *)
      let m = worker_metrics control in
      S.check_int "aggregate run_requests" total m.P.run_requests;
      S.check_int "aggregate worker_id" 0 m.P.worker_id;
      S.check_int "aggregate accounting identity" m.P.accepted
        (m.P.run_requests + m.P.deadline_expired + m.P.eval_failures))

(* ------------------------------------------------------------------ *)
(* SIGTERM drain                                                      *)
(* ------------------------------------------------------------------ *)

let test_sigterm_drain () =
  with_fleet ~workers:3 (fun ~front ~control:_ ~endpoints:_ ~sup_pid ->
      (* Serve something first so workers are warm, then require the
         whole fleet to exit within the grace period (plus scheduling
         slack). *)
      let rng = Prng.create ~seed:13 in
      let a, b = random_pair rng in
      (match Client.call front (P.Run_matmul (spec 0, a, b)) with
      | Ok (P.Matmul_result (c, _)) ->
          S.check_bool "front-socket reply bit-identical" true
            (F.Matrix.equal c (oracle ~a ~b))
      | Ok _ -> Alcotest.fail "unexpected response via front socket"
      | Error f -> Alcotest.failf "front request failed: %a" Client.pp_failure f);
      Unix.kill sup_pid Sys.sigterm;
      let deadline = Unix.gettimeofday () +. grace_s +. 4. in
      let rec wait () =
        match Unix.waitpid [ Unix.WNOHANG ] sup_pid with
        | 0, _ ->
            if Unix.gettimeofday () > deadline then
              Alcotest.fail "fleet did not exit within the grace period"
            else begin
              Unix.sleepf 0.05;
              wait ()
            end
        | _, status ->
            S.check_bool "supervisor exited cleanly" true
              (status = Unix.WEXITED 0)
      in
      wait ())

(* ------------------------------------------------------------------ *)
(* Router properties (pure)                                           *)
(* ------------------------------------------------------------------ *)

let gen_endpoints =
  let open Gen in
  let* k = int_range 2 8 in
  let* base = int_range 1025 60000 in
  let+ step = int_range 1 97 in
  List.init k (fun i -> P.Tcp ("127.0.0.1", base + (i * step)))

let gen_key =
  Gen.(string_size ~gen:printable (int_range 1 40))

let shuffle ~seed xs =
  let a = Array.of_list xs in
  let rng = Prng.create ~seed in
  for i = Array.length a - 1 downto 1 do
    let j = Prng.int rng ~bound:(i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let sorted_addrs eps =
  List.sort compare (List.map P.addr_string eps)

let router_deterministic =
  S.qcheck_case ~count:300 "shard is deterministic and list-order independent"
    Gen.(triple gen_endpoints gen_key small_int)
    (fun (eps, key, seed) ->
      let p1 = Pool.create eps in
      let p2 = Pool.create (shuffle ~seed eps) in
      Pool.shard p1 ~key = Pool.shard p2 ~key
      && Pool.rank p1 ~key = Pool.rank p2 ~key
      && Pool.shard p1 ~key = Pool.shard p1 ~key)

let router_rank_permutation =
  S.qcheck_case ~count:300 "failover order is a permutation of the endpoints"
    Gen.(pair gen_endpoints gen_key)
    (fun (eps, key) ->
      let rank = Pool.rank (Pool.create eps) ~key in
      sorted_addrs rank = sorted_addrs eps)

let router_bounded_disruption =
  S.qcheck_case ~count:300
    "removing an endpoint only remaps the keys it owned"
    Gen.(triple gen_endpoints (list_size (int_range 1 20) gen_key) small_int)
    (fun (eps, keys, pick) ->
      let removed = List.nth eps (pick mod List.length eps) in
      let survivors = List.filter (fun e -> e <> removed) eps in
      survivors = []
      || let before = Pool.create eps in
         let after = Pool.create survivors in
         List.for_all
           (fun key ->
             let s = Pool.shard before ~key in
             if s <> removed then
               (* unaffected keys keep their shard, bit for bit *)
               Pool.shard after ~key = s
             else
               (* an owned key falls to its old second choice *)
               Pool.shard after ~key
               = List.nth (Pool.rank before ~key) 1)
           keys)

(* ------------------------------------------------------------------ *)

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Alcotest.run "tcmm_fleet"
    [
      ( "fleet",
        [
          Alcotest.test_case "spec affinity" `Quick test_spec_affinity;
          Alcotest.test_case "SIGKILL one worker mid-burst" `Quick
            test_kill_one_mid_burst;
          Alcotest.test_case "fleet status and aggregation" `Quick
            test_fleet_status_aggregate;
          Alcotest.test_case "SIGTERM drain" `Quick test_sigterm_drain;
        ] );
      ( "router",
        [
          router_deterministic;
          router_rank_permutation;
          router_bounded_disruption;
        ] );
    ]
