(** Multi-worker serving fleet: one supervisor, [K] forked workers.

    The supervisor binds the TCP front socket {e once} and forks [K]
    workers that inherit it — the kernel load-balances [accept] across
    the sleeping workers, so the fleet serves the same address a
    standalone daemon would ([--reuseport] swaps the shared socket for
    [K] [SO_REUSEPORT] sockets, one per worker, letting the kernel hash
    connections instead of waking accept queues).  Each worker is the
    {e whole} existing single-process {!Server} event loop — its own
    {!Circuit_cache}, batcher, deadlines and load shedding — plus a
    private spec-affinity endpoint the {!Client.Pool} router targets,
    all backed by one shared artifact store directory so a circuit
    compiled by any worker (or by [tcmm compile]) warms every other.

    Fleets are TCP-only: a worker endpoint must survive its process
    (the supervisor keeps the listening socket open across restarts),
    which a Unix-socket path unlinked at child exit cannot.

    {2 Supervision}

    The supervisor reaps crashed workers ([waitpid]/[WNOHANG]) and
    restarts them warm from the store — rate-limited to
    [restart_limit] restarts per [restart_window_s] so a deterministic
    crash loop downs the worker ([fw_alive = false] in the roster)
    instead of melting the machine.  SIGTERM (or a [Shutdown] control
    request) is propagated as a fleet-wide graceful drain: every worker
    runs its own quiescence drain, stragglers are SIGKILLed after the
    grace period, and the supervisor exits only once every child is
    reaped.

    {2 Control plane}

    A separate control socket answers {!Protocol} frames: [Fleet]
    returns the roster (worker ids, pids, endpoints, restart counts),
    [Metrics] fans out to every live worker and returns the
    {!aggregate} (summed counters, merged histograms, [worker_id = 0]),
    which is how `tcmm fleet-status` renders fleet-wide counters and
    how the chaos harness checks the accounting identity
    [accepted = run_requests + deadline_expired + eval_failures]
    {e summed over workers}. *)

type config = {
  server : Server.config;
      (** per-worker configuration; [server.addr] is the TCP front
          address the fleet serves (port 0 picks an ephemeral port) *)
  workers : int;  (** fleet size [K >= 1] *)
  reuseport : bool;
      (** [K] [SO_REUSEPORT] front sockets (one per worker) instead of
          one shared inherited socket *)
  control : Protocol.addr option;
      (** control-plane address; [None] binds an ephemeral TCP port on
          the front host (recover it from {!handle}'s [control_addr]) *)
  restart_limit : int;  (** crash restarts allowed per window *)
  restart_window_s : float;
}

val default_config : Server.config -> config
(** 2 workers, shared inherited socket, ephemeral control port, 5
    restarts per 30 s window. *)

type handle
(** Bound but not yet supervising: all sockets exist, no child does. *)

val bind : config -> handle
(** Bind the front socket(s), the control socket, and one spec-affinity
    endpoint per worker — every port is concrete after [bind], so a
    harness can bind in the parent, hand addresses to clients, and
    {!supervise} in a forked child with no startup race (the
    bind-then-fork pattern of {!Server.bind}).  Raises
    [Invalid_argument] on [workers < 1] or a Unix-socket front address,
    [Unix.Unix_error] when binding fails. *)

val front_addr : handle -> Protocol.addr
val control_addr : handle -> Protocol.addr

val endpoints : handle -> Protocol.addr list
(** Worker spec-affinity endpoints in worker order — the
    {!Client.Pool} construction list. *)

val roster : handle -> Protocol.fleet_worker list
(** Current roster snapshot (pids are 0 before {!supervise} forks). *)

val close_handle : handle -> unit
(** Close every supervisor-held socket — what the {e parent} calls
    after forking a child that runs {!supervise}. *)

val supervise : handle -> unit
(** Fork the workers and run the supervision loop until a drain
    completes (SIGTERM or a control-plane [Shutdown]).  Installs
    SIGTERM/SIGPIPE handlers for the duration; closes the handle on
    exit.  Must run in a process that has never spawned a domain
    (OCaml 5 forbids [fork] after [Domain.spawn]). *)

val run : config -> unit
(** [supervise (bind cfg)] — what `tcmm serve --workers K` calls. *)

val aggregate : Protocol.metrics list -> Protocol.metrics option
(** Fleet-wide rollup: counters summed, latency histograms merged
    bucket-wise (matching bounds) and occupancy padded to the widest
    worker, [uptime_seconds]/[max_lanes] maxed, [worker_id] forced to 0
    (the supervisor-side aggregate).  [None] on the empty list.  The
    PR 5 accounting identity is preserved by summation: if every worker
    satisfies [accepted = run_requests + deadline_expired +
    eval_failures] at quiescence, so does the aggregate. *)
