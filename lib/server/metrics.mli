(** Serving instrumentation: counters, the per-request latency
    histogram, and the batch-occupancy histogram.

    One value lives in the server; every dispatch and reply feeds it,
    and the [Metrics] request serializes a {!Protocol.metrics} snapshot
    of it. *)

type t

val create : ?worker_id:int -> max_lanes:int -> unit -> t
(** [max_lanes] sizes the occupancy histogram; [worker_id] (default 0 =
    standalone) stamps every snapshot with the fleet identity protocol
    v5 carries. *)

val latency_bounds : float array
(** The latency histogram's bucket upper bounds, in milliseconds. *)

val connection_opened : t -> unit
val connection_closed : t -> unit
val request : t -> unit
val error : t -> unit
val observe_build : t -> seconds:float -> unit

val observe_coverage : t -> kernel_gates:int -> fallback_gates:int -> unit
(** One cache-miss build's kernel coverage ({!Circuit_cache.entry}'s
    [coverage] field); totals feed the [metrics] response's coverage
    fraction. *)

val observe_batch : t -> lanes:int -> firings:int -> seconds:float -> unit
(** One coalesced dispatch: lanes it carried, summed firings of those
    lanes, evaluation wall-clock. *)

val observe_latency : t -> seconds:float -> unit
(** One run request's enqueue-to-reply latency. *)

(** {2 Robustness accounting}

    Every run request the daemon admits is eventually counted exactly
    once as completed ([observe_batch] lanes), [deadline_expired], or
    [eval_failure]; refused requests count as [shed].  The chaos soak
    asserts this identity over the final snapshot. *)

(** {2 Streaming sessions}

    Protocol v6 accounting for the stateful dirty-cone sessions: the
    gauge [sessions_active] tracks opens minus closes minus LRU
    evictions, and [session_update] accumulates the incremental work
    ratio's numerator ([dirty_gates] re-examined) and denominator
    ([gates] a from-scratch sweep would have visited). *)

val session_opened : t -> unit
val session_closed : t -> unit
val session_evicted : t -> unit
val session_update : t -> dirty_gates:int -> gates:int -> unit

val accepted : t -> unit
val shed : t -> unit
val deadline_expired : t -> unit
val eval_failure : t -> unit
val slow_client_drop : t -> unit

val snapshot :
  t ->
  uptime_seconds:float ->
  cache:Tcmm_util.Lru.stats ->
  engine:Tcmm_util.Lru.stats ->
  store:int * int * int ->
  Protocol.metrics
(** [store] is the artifact store's [(loads, saves, invalid)] counter
    triple ([(0, 0, 0)] when no store is attached) — sampled at
    snapshot time from {!Tcmm_store.Store.counters} rather than
    mirrored into [t]. *)
