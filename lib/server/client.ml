type t = { fd : Unix.file_descr }

let connect addr =
  let domain =
    match addr with
    | Protocol.Unix_socket _ -> Unix.PF_UNIX
    | Protocol.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Protocol.Tcp _ -> (
      try Unix.setsockopt fd Unix.TCP_NODELAY true
      with Unix.Unix_error _ -> ())
  | Protocol.Unix_socket _ -> ());
  (try Unix.connect fd (Protocol.sockaddr_of_addr addr)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection addr f =
  let t = connect addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let send t req = Protocol.write_frame t.fd (Protocol.encode_request req)

let recv t =
  match Protocol.read_frame t.fd with
  | Error _ as e -> e
  | Ok payload -> Protocol.decode_response payload

let request t req =
  send t req;
  recv t

let shutdown addr =
  with_connection addr (fun t ->
      match request t Protocol.Shutdown with
      | Ok Protocol.Shutting_down -> Ok ()
      | Ok (Protocol.Error msg) -> Error msg
      | Ok _ -> Error "unexpected response to shutdown"
      | Error _ as e -> e)

(* ------------------------------------------------------------------ *)
(* Streaming sessions (protocol v6)                                   *)
(* ------------------------------------------------------------------ *)

(* Typed wrappers on one connection.  No retry machinery: session
   requests are stateful ([idempotent] below says no), so ambiguous
   failures surface to the caller instead of being re-sent. *)

let open_session t spec m =
  match request t (Protocol.Open_session (spec, m)) with
  | Ok (Protocol.Session_opened s) -> Ok s
  | Ok (Protocol.Error msg) -> Error msg
  | Ok _ -> Error "unexpected response to open_session"
  | Error _ as e -> e

let update t ~sid delta =
  match request t (Protocol.Update (sid, delta)) with
  | Ok (Protocol.Update_result u) -> Ok u
  | Ok (Protocol.Error msg) -> Error msg
  | Ok _ -> Error "unexpected response to update"
  | Error _ as e -> e

let close_session t ~sid =
  match request t (Protocol.Close_session sid) with
  | Ok Protocol.Session_closed -> Ok ()
  | Ok (Protocol.Error msg) -> Error msg
  | Ok _ -> Error "unexpected response to close_session"
  | Error _ as e -> e

(* ------------------------------------------------------------------ *)
(* Deadlines and bounded retry                                        *)
(* ------------------------------------------------------------------ *)

type failure =
  | Timeout
  | Overloaded
  | Deadline_exceeded
  | Transport of string
  | Remote of string

let pp_failure ppf = function
  | Timeout -> Format.pp_print_string ppf "timeout"
  | Overloaded -> Format.pp_print_string ppf "overloaded"
  | Deadline_exceeded -> Format.pp_print_string ppf "deadline exceeded"
  | Transport msg -> Format.fprintf ppf "transport: %s" msg
  | Remote msg -> Format.fprintf ppf "remote: %s" msg

type policy = {
  attempts : int;
  timeout_ms : float;
  base_delay_ms : float;
  max_delay_ms : float;
}

let default_policy =
  { attempts = 3; timeout_ms = 5000.; base_delay_ms = 25.; max_delay_ms = 1000. }

(* Retrying is only sound because the protocol's non-[Shutdown]
   requests are idempotent: a request is a pure function of its spec
   and payload (circuit building is deterministic and cached by spec;
   evaluation has no server-side state a duplicate could corrupt), so
   re-sending after an ambiguous failure — the reply may or may not
   have been computed — at worst evaluates twice and returns the same
   bits.  [Shutdown] is excluded: its effect is external, and so are
   the v6 session requests: a duplicate [Open_session] leaks a second
   session (and can LRU-evict a live one), a duplicate [Update] or
   [Close_session] mutates state whose first copy may already have
   been applied. *)
let idempotent = function
  | Protocol.Shutdown | Protocol.Open_session _ | Protocol.Update _
  | Protocol.Close_session _ ->
      false
  | Protocol.Compile _ | Protocol.Run_matmul _ | Protocol.Run_trace _
  | Protocol.Run_triangles _ | Protocol.Run_conv _ | Protocol.Stats _
  | Protocol.Metrics | Protocol.Ping | Protocol.Fleet ->
      true

(* One attempt on a fresh connection, reply read bounded by an absolute
   deadline so a stalled or killed server surfaces as [Timeout], never
   a hang. *)
let attempt addr req ~deadline =
  match connect addr with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Transport (Unix.error_message e))
  | t ->
      Fun.protect
        ~finally:(fun () -> close t)
        (fun () ->
          match send t req with
          | exception Unix.Unix_error (e, _, _) ->
              Error (Transport (Unix.error_message e))
          | () -> (
              match
                Protocol.read_frame_within t.fd ~deadline
                  ~now:Tcmm_util.Clock.now
              with
              | Error `Timeout -> Error Timeout
              | Error (`Closed msg) -> Error (Transport msg)
              | Ok payload -> (
                  match Protocol.decode_response payload with
                  | Error msg -> Error (Transport msg)
                  | Ok Protocol.Overloaded -> Error Overloaded
                  | Ok Protocol.Deadline_exceeded -> Error Deadline_exceeded
                  | Ok (Protocol.Error msg) -> Error (Remote msg)
                  | Ok resp -> Ok resp)))

(* [Remote] is the server deterministically rejecting the request (bad
   spec, shape mismatch) — retrying cannot change the answer. *)
let retryable = function
  | Timeout | Overloaded | Deadline_exceeded | Transport _ -> true
  | Remote _ -> false

let call ?(policy = default_policy) ?(seed = 0x5eed) addr req =
  if policy.attempts < 1 then invalid_arg "Client.call: attempts < 1";
  let rng = Tcmm_util.Prng.create ~seed in
  let rec go k =
    let deadline = Tcmm_util.Clock.now () +. (policy.timeout_ms /. 1000.) in
    match attempt addr req ~deadline with
    | Ok _ as ok -> ok
    | Error f when retryable f && idempotent req && k + 1 < policy.attempts ->
        (* Full jitter: sleep a uniform fraction of the exponential
           backoff so synchronized retry storms decorrelate. *)
        let cap =
          Float.min policy.max_delay_ms
            (policy.base_delay_ms *. Float.of_int (1 lsl Stdlib.min k 20))
        in
        let delay_s = Tcmm_util.Prng.float rng *. cap /. 1000. in
        if delay_s > 0. then Unix.sleepf delay_s;
        go (k + 1)
    | Error _ as e -> e
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Spec-affinity shard router                                         *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  type pool = { endpoints : Protocol.addr array }
  type t = pool

  let create endpoints =
    if endpoints = [] then invalid_arg "Client.Pool.create: no endpoints";
    { endpoints = Array.of_list endpoints }

  let endpoints t = Array.to_list t.endpoints
  let size t = Array.length t.endpoints
  let key_of_spec = Circuit_cache.key

  (* FNV-1a over 64 bits.  The offset basis does not fit OCaml's 63-bit
     native int, so the hash lives in Int64 and comparisons are
     unsigned. *)
  let fnv1a64 s =
    let h = ref 0xcbf29ce484222325L in
    String.iter
      (fun c ->
        h :=
          Int64.mul
            (Int64.logxor !h (Int64.of_int (Char.code c)))
            0x100000001b3L)
      s;
    !h

  let score ~key addr = fnv1a64 (key ^ "\x00" ^ Protocol.addr_string addr)

  (* Rendezvous (highest-random-weight) ranking.  Every (key, endpoint)
     pair is scored independently, so the relative order of surviving
     endpoints never changes when one is removed: a key moves only if
     its top-ranked endpoint vanished, every other key keeps its shard
     (bounded disruption), and the failover order is by construction a
     permutation of the endpoints.  Ties (astronomically unlikely with
     distinct endpoints) break on the canonical address string so the
     ranking stays a deterministic total order. *)
  let rank t ~key =
    let scored = Array.map (fun a -> (score ~key a, a)) t.endpoints in
    Array.sort
      (fun (sa, aa) (sb, ab) ->
        match Int64.unsigned_compare sb sa with
        | 0 -> compare (Protocol.addr_string aa) (Protocol.addr_string ab)
        | c -> c)
      scored;
    Array.to_list (Array.map snd scored)

  let shard t ~key =
    match rank t ~key with [] -> assert false | addr :: _ -> addr

  (* Failover walks the rank order, spending the full bounded-retry
     [call] budget on each endpoint before moving on.  The same
     idempotence argument as [call] applies — and caps the walk: a
     non-idempotent request or a deterministic [Remote] rejection never
     fails over. *)
  let call ?policy ?seed t ~key req =
    let rec go = function
      | [] -> assert false
      | [ addr ] -> call ?policy ?seed addr req
      | addr :: rest -> (
          match call ?policy ?seed addr req with
          | Ok _ as ok -> ok
          | Error f when retryable f && idempotent req -> go rest
          | Error _ as e -> e)
    in
    go (rank t ~key)
end
