type t = { fd : Unix.file_descr }

let connect addr =
  let domain =
    match addr with
    | Protocol.Unix_socket _ -> Unix.PF_UNIX
    | Protocol.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Protocol.Tcp _ -> (
      try Unix.setsockopt fd Unix.TCP_NODELAY true
      with Unix.Unix_error _ -> ())
  | Protocol.Unix_socket _ -> ());
  (try Unix.connect fd (Protocol.sockaddr_of_addr addr)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection addr f =
  let t = connect addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let send t req = Protocol.write_frame t.fd (Protocol.encode_request req)

let recv t =
  match Protocol.read_frame t.fd with
  | Error _ as e -> e
  | Ok payload -> Protocol.decode_response payload

let request t req =
  send t req;
  recv t

let shutdown addr =
  with_connection addr (fun t ->
      match request t Protocol.Shutdown with
      | Ok Protocol.Shutting_down -> Ok ()
      | Ok (Protocol.Error msg) -> Error msg
      | Ok _ -> Error "unexpected response to shutdown"
      | Error _ as e -> e)
