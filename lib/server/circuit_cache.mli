(** Spec-keyed LRU of compiled circuits for the serving daemon.

    Building a circuit (driver build + packed compilation) is the
    expensive part of serving — seconds for the N=16 flagship circuits —
    so the daemon keeps whole built drivers resident, keyed by the
    request {!Protocol.spec} ((kind, algorithm, schedule, d, n,
    entry_bits, signed, tau)).  Backed by {!Tcmm_util.Lru}, so hit /
    miss / eviction counters come for free and feed the [metrics]
    response.

    By default misses build through the template-stamping [Direct] path:
    repeated block shapes are hash-consed and stamped by offset
    arithmetic, and the arena lowers straight to the packed CSR form
    without materializing a {!Tcmm_threshold.Circuit.t} (available
    lazily through {!Tcmm_threshold.Packed.circuit} if ever needed). *)

type compiled =
  | Matmul of Tcmm.Matmul_circuit.built
  | Trace of Tcmm.Trace_circuit.built
      (** serves both [Trace] and [Triangles] specs (the latter with the
          threshold scaled to [6 * tau]) *)

type entry = {
  spec : Protocol.spec;
  compiled : compiled;
  packed : Tcmm_threshold.Packed.t;
  coverage : Tcmm_threshold.Packed.coverage;
      (** kernel vs generic-fallback gate/segment counts of [packed]
          (all-fallback when kernels are off or the build materialized) *)
  build_seconds : float;  (** wall-clock build + pack time (= construct + lower) *)
  construct_seconds : float;  (** driver build (gate construction / stamping) *)
  lower_seconds : float;  (** packed lowering / engine compilation *)
}

type t

val create : ?templates:bool -> ?kernels:bool -> capacity:int -> unit -> t
(** [templates] (default [true]) selects the template-stamped [Direct]
    build path for cache misses; [false] restores the legacy
    materialize-then-pack path.  [kernels] (default [true]) dispatches
    template segments of Direct-built entries to their specialized batch
    evaluators; [false] is the [--no-kernels] escape hatch (forces the
    generic CSR loop — bit-identical results, only slower).  Raises
    [Invalid_argument] when [capacity < 1]. *)

val key : Protocol.spec -> string
(** The canonical cache key (also the {!Batcher} coalescing key). *)

val find_or_build :
  t -> Protocol.spec -> (entry * bool, string) result
(** The entry for a spec, building it on a miss.  The boolean is [true]
    when the entry was already cached.  [Error] on an invalid spec
    (unknown algorithm or schedule, bad dimensions, out-of-range
    parameters) — building never raises. *)

val stats : t -> Tcmm_util.Lru.stats
