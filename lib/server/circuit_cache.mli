(** Spec-keyed LRU of compiled circuits for the serving daemon.

    Building a circuit (driver build + packed compilation) is the
    expensive part of serving — seconds for the N=16 flagship circuits —
    so the daemon keeps whole built drivers resident, keyed by the
    request {!Protocol.spec} ((kind, algorithm, schedule, d, n,
    entry_bits, signed, tau)).  Backed by {!Tcmm_util.Lru}, so hit /
    miss / eviction counters come for free and feed the [metrics]
    response. *)

type compiled =
  | Matmul of Tcmm.Matmul_circuit.built
  | Trace of Tcmm.Trace_circuit.built
      (** serves both [Trace] and [Triangles] specs (the latter with the
          threshold scaled to [6 * tau]) *)

type entry = {
  spec : Protocol.spec;
  compiled : compiled;
  circuit : Tcmm_threshold.Circuit.t;
  packed : Tcmm_threshold.Packed.t;
  build_seconds : float;  (** wall-clock build + pack time *)
}

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val key : Protocol.spec -> string
(** The canonical cache key (also the {!Batcher} coalescing key). *)

val find_or_build :
  t -> Protocol.spec -> (entry * bool, string) result
(** The entry for a spec, building it on a miss.  The boolean is [true]
    when the entry was already cached.  [Error] on an invalid spec
    (unknown algorithm or schedule, bad dimensions, out-of-range
    parameters) — building never raises. *)

val stats : t -> Tcmm_util.Lru.stats
