(** Spec-keyed LRU of compiled circuits for the serving daemon.

    Building a circuit (driver build + packed compilation) is the
    expensive part of serving — seconds for the N=16 flagship circuits —
    so the daemon keeps whole built drivers resident, keyed by the
    request {!Protocol.spec} ((kind, algorithm, schedule, d, n,
    entry_bits, signed, tau)).  Backed by {!Tcmm_util.Lru}, so hit /
    miss / eviction counters come for free and feed the [metrics]
    response.

    By default misses build through the template-stamping [Direct] path:
    repeated block shapes are hash-consed and stamped by offset
    arithmetic, and the arena lowers straight to the packed CSR form
    without materializing a {!Tcmm_threshold.Circuit.t} (available
    lazily through {!Tcmm_threshold.Packed.circuit} if ever needed). *)

type compiled =
  | Matmul of Tcmm.Matmul_circuit.built
  | Trace of Tcmm.Trace_circuit.built
      (** serves both [Trace] and [Triangles] specs (the latter with the
          threshold scaled to [6 * tau]) *)
  | Stored of Tcmm_store.Artifact.io
      (** loaded from an artifact: no driver value, just the packed
          circuit plus the I/O descriptor the artifact header carried *)

type source =
  | Fresh  (** entered the cache by building *)
  | Warm  (** entered the cache from the artifact store *)

type entry = {
  spec : Protocol.spec;
  compiled : compiled;
  packed : Tcmm_threshold.Packed.t;
  coverage : Tcmm_threshold.Packed.coverage;
      (** kernel vs generic-fallback gate/segment counts of [packed]
          (all-fallback when kernels are off or the build materialized) *)
  stats : Tcmm_threshold.Stats.t;
      (** structural stats — computed for fresh builds, recovered from
          the artifact header for warm loads *)
  source : source;
  build_seconds : float;
      (** wall-clock cost of making the entry resident: build + pack
          for [Fresh] entries, artifact load for [Warm] ones *)
  construct_seconds : float;  (** driver build (stamping); 0 for [Warm] *)
  lower_seconds : float;  (** packed lowering, or the artifact load *)
}

type outcome =
  | Cached  (** LRU hit *)
  | Built  (** miss, compiled from scratch *)
  | Loaded  (** miss, recovered from the artifact store *)

type t

val create :
  ?templates:bool ->
  ?kernels:bool ->
  ?store:Tcmm_store.Store.t ->
  capacity:int ->
  unit ->
  t
(** [templates] (default [true]) selects the template-stamped [Direct]
    build path for cache misses; [false] restores the legacy
    materialize-then-pack path.  [kernels] (default [true]) dispatches
    template segments of Direct-built entries to their specialized batch
    evaluators; [false] is the [--no-kernels] escape hatch (forces the
    generic CSR loop — bit-identical results, only slower).  [store]
    adds a persistent tier under the LRU: misses read through it before
    building and write fresh builds behind ({!Tcmm_store.Store}).
    Raises [Invalid_argument] when [capacity < 1]. *)

val store : t -> Tcmm_store.Store.t option

val key : Protocol.spec -> string
(** The canonical cache key (also the {!Batcher} coalescing key). *)

val find_or_build :
  t -> Protocol.spec -> (entry * outcome, string) result
(** The entry for a spec: an LRU hit, an artifact-store load, or a
    fresh build (persisted write-behind when a store is attached), in
    that order of preference.  [Error] on an invalid spec (unknown
    algorithm or schedule, bad dimensions, out-of-range parameters) —
    building never raises, and a corrupt artifact is quarantined and
    rebuilt, never surfaced. *)

val stats : t -> Tcmm_util.Lru.stats
