(* 62 lanes: one per bit of a packed word (Packed.run_batch). *)
let lane_limit = 62

type 'job group = {
  mutable jobs : 'job list;  (* newest first *)
  mutable count : int;
  deadline : float;  (* infinity when flush_ms = 0 *)
}

type 'job t = {
  max_lanes : int;
  flush_ms : float;
  mutable groups : (string * 'job group) list;  (* oldest group first *)
  mutable pending : int;
}

let create ?(max_lanes = lane_limit) ?(flush_ms = 0.) () =
  if flush_ms < 0. then invalid_arg "Batcher.create: flush_ms < 0";
  {
    max_lanes = max 1 (min lane_limit max_lanes);
    flush_ms;
    groups = [];
    pending = 0;
  }

let max_lanes t = t.max_lanes
let flush_ms t = t.flush_ms
let pending t = t.pending

let take_group t key =
  match List.assoc_opt key t.groups with
  | None -> None
  | Some g ->
      t.groups <- List.remove_assoc key t.groups;
      t.pending <- t.pending - g.count;
      Some g

let enqueue t ~key ~now job =
  let g =
    match List.assoc_opt key t.groups with
    | Some g -> g
    | None ->
        let deadline =
          if t.flush_ms > 0. then now +. (t.flush_ms /. 1000.) else infinity
        in
        let g = { jobs = []; count = 0; deadline } in
        t.groups <- t.groups @ [ (key, g) ];
        g
  in
  g.jobs <- job :: g.jobs;
  g.count <- g.count + 1;
  t.pending <- t.pending + 1;
  if g.count >= t.max_lanes then begin
    ignore (take_group t key);
    Some (List.rev g.jobs)
  end
  else None

let due t ~now =
  let ready, waiting =
    List.partition (fun (_, g) -> g.deadline <= now) t.groups
  in
  t.groups <- waiting;
  List.map
    (fun (key, g) ->
      t.pending <- t.pending - g.count;
      (key, List.rev g.jobs))
    ready

(* Remove every job matching [f] (deadline expiry reaches into waiting
   groups).  Groups left empty disappear so their flush deadline stops
   driving the select timeout. *)
let reap t ~f =
  let reaped = ref [] in
  t.groups <-
    List.filter_map
      (fun (key, g) ->
        let gone, kept = List.partition f g.jobs in
        if gone = [] then Some (key, g)
        else begin
          reaped := List.rev_append gone !reaped;
          t.pending <- t.pending - List.length gone;
          g.jobs <- kept;
          g.count <- List.length kept;
          if kept = [] then None else Some (key, g)
        end)
      t.groups;
  List.rev !reaped

let drain t =
  let all = t.groups in
  t.groups <- [];
  t.pending <- 0;
  List.map (fun (key, g) -> (key, List.rev g.jobs)) all

let next_deadline t =
  List.fold_left
    (fun acc (_, g) ->
      if g.deadline = infinity then acc
      else
        match acc with
        | None -> Some g.deadline
        | Some d -> Some (min d g.deadline))
    None t.groups
