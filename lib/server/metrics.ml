let latency_bounds =
  [| 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 1000. |]

type t = {
  max_lanes : int;
  worker_id : int;
  mutable connections_accepted : int;
  mutable connections_active : int;
  mutable requests_total : int;
  mutable run_requests : int;
  mutable errors : int;
  mutable batches : int;
  mutable lanes : int;
  occupancy : int array;
  latency_counts : int array;
  mutable latency_sum : float;  (* ms *)
  mutable latency_count : int;
  mutable firings_total : int;
  mutable eval_seconds : float;
  mutable build_seconds : float;
  mutable accepted : int;
  mutable shed : int;
  mutable deadline_expired : int;
  mutable eval_failures : int;
  mutable slow_client_drops : int;
  mutable kernel_gates : int;
  mutable fallback_gates : int;
  mutable sessions_opened : int;
  mutable sessions_active : int;
  mutable sessions_evicted : int;
  mutable session_updates : int;
  mutable session_dirty_gates : int;
  mutable session_gates : int;
}

let create ?(worker_id = 0) ~max_lanes () =
  {
    max_lanes;
    worker_id;
    connections_accepted = 0;
    connections_active = 0;
    requests_total = 0;
    run_requests = 0;
    errors = 0;
    batches = 0;
    lanes = 0;
    occupancy = Array.make max_lanes 0;
    latency_counts = Array.make (Array.length latency_bounds + 1) 0;
    latency_sum = 0.;
    latency_count = 0;
    firings_total = 0;
    eval_seconds = 0.;
    build_seconds = 0.;
    accepted = 0;
    shed = 0;
    deadline_expired = 0;
    eval_failures = 0;
    slow_client_drops = 0;
    kernel_gates = 0;
    fallback_gates = 0;
    sessions_opened = 0;
    sessions_active = 0;
    sessions_evicted = 0;
    session_updates = 0;
    session_dirty_gates = 0;
    session_gates = 0;
  }

let connection_opened t =
  t.connections_accepted <- t.connections_accepted + 1;
  t.connections_active <- t.connections_active + 1

let connection_closed t = t.connections_active <- t.connections_active - 1
let request t = t.requests_total <- t.requests_total + 1
let error t = t.errors <- t.errors + 1
let observe_build t ~seconds = t.build_seconds <- t.build_seconds +. seconds

let observe_coverage t ~kernel_gates ~fallback_gates =
  t.kernel_gates <- t.kernel_gates + kernel_gates;
  t.fallback_gates <- t.fallback_gates + fallback_gates

let observe_batch t ~lanes ~firings ~seconds =
  t.batches <- t.batches + 1;
  t.lanes <- t.lanes + lanes;
  t.run_requests <- t.run_requests + lanes;
  let slot = max 1 (min lanes t.max_lanes) - 1 in
  t.occupancy.(slot) <- t.occupancy.(slot) + 1;
  t.firings_total <- t.firings_total + firings;
  t.eval_seconds <- t.eval_seconds +. seconds

let session_opened t =
  t.sessions_opened <- t.sessions_opened + 1;
  t.sessions_active <- t.sessions_active + 1

let session_closed t = t.sessions_active <- t.sessions_active - 1

let session_evicted t =
  t.sessions_evicted <- t.sessions_evicted + 1;
  t.sessions_active <- t.sessions_active - 1

let session_update t ~dirty_gates ~gates =
  t.session_updates <- t.session_updates + 1;
  t.session_dirty_gates <- t.session_dirty_gates + dirty_gates;
  t.session_gates <- t.session_gates + gates

let accepted t = t.accepted <- t.accepted + 1
let shed t = t.shed <- t.shed + 1
let deadline_expired t = t.deadline_expired <- t.deadline_expired + 1
let eval_failure t = t.eval_failures <- t.eval_failures + 1
let slow_client_drop t = t.slow_client_drops <- t.slow_client_drops + 1

let observe_latency t ~seconds =
  let ms = seconds *. 1000. in
  let rec bucket i =
    if i >= Array.length latency_bounds then i
    else if ms <= latency_bounds.(i) then i
    else bucket (i + 1)
  in
  let b = bucket 0 in
  t.latency_counts.(b) <- t.latency_counts.(b) + 1;
  t.latency_sum <- t.latency_sum +. ms;
  t.latency_count <- t.latency_count + 1

let snapshot t ~uptime_seconds ~cache ~engine ~store : Protocol.metrics =
  let store_loads, store_saves, store_invalid = store in
  {
    Protocol.uptime_seconds;
    connections_accepted = t.connections_accepted;
    connections_active = t.connections_active;
    requests_total = t.requests_total;
    run_requests = t.run_requests;
    errors = t.errors;
    batches = t.batches;
    lanes = t.lanes;
    max_lanes = t.max_lanes;
    occupancy = Array.copy t.occupancy;
    latency_ms =
      {
        Protocol.bounds = Array.copy latency_bounds;
        counts = Array.copy t.latency_counts;
        sum = t.latency_sum;
        count = t.latency_count;
      };
    firings_total = t.firings_total;
    eval_seconds = t.eval_seconds;
    build_seconds = t.build_seconds;
    cache;
    engine;
    accepted = t.accepted;
    shed = t.shed;
    deadline_expired = t.deadline_expired;
    eval_failures = t.eval_failures;
    slow_client_drops = t.slow_client_drops;
    kernel_gates = t.kernel_gates;
    fallback_gates = t.fallback_gates;
    store_loads;
    store_saves;
    store_invalid;
    worker_id = t.worker_id;
    sessions_opened = t.sessions_opened;
    sessions_active = t.sessions_active;
    sessions_evicted = t.sessions_evicted;
    session_updates = t.session_updates;
    session_dirty_gates = t.session_dirty_gates;
    session_gates = t.session_gates;
  }
