module P = Protocol
module T = Tcmm
module Th = Tcmm_threshold
module Cn = Tcmm_convnet
module Clock = Tcmm_util.Clock

let src = Logs.Src.create "tcmm.server" ~doc:"tcmm serving daemon"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  addr : P.addr;
  cache_capacity : int;
  flush_ms : float;
  max_lanes : int;
  domains : int;
  templates : bool;
  kernels : bool;
  profile_build : bool;
  profile_eval : bool;
  max_pending : int;
  deadline_ms : float;
  grace_s : float;
  max_backlog : int;
  store : string option;
  worker_id : int;
  max_sessions : int;
}

let default_config addr =
  { addr; cache_capacity = 8; flush_ms = 0.; max_lanes = 62; domains = 1;
    templates = true; kernels = true; profile_build = false;
    profile_eval = false;
    max_pending = 0; deadline_ms = 0.; grace_s = 5.;
    max_backlog = 1 lsl 26; store = None; worker_id = 0; max_sessions = 16 }

type conn = {
  fd : Unix.file_descr;
  dech : P.dechunker;
  out : Buffer.t;
  mutable sent : int;  (* prefix of [out] already written to the socket *)
  mutable alive : bool;
  mutable closing : bool;  (* close once [out] is flushed *)
}

type job = {
  jconn : conn;
  packed : Th.Packed.t;
  input : bool array;
  reply : Th.Packed.batch_result -> lane:int -> P.response;
  enqueued_at : float;
  (* Set when the job has been answered (dispatched, expired, or
     failed).  The timer wheel cancels lazily: an answered job's wheel
     entry is skipped when it surfaces. *)
  mutable answered : bool;
}

(* One resident streaming session (protocol v6).  The packed session
   holds the last input bits and every gate's cached sum, so an
   [Update] re-examines only the flipped wires' dirty cone.
   [se_last_dirty] snapshots the session's cumulative dirty-gate
   counter so each update reports its own cone size. *)
type session_entry = {
  se_id : int;
  se_session : Th.Packed.session;
  se_out : int;  (* the trace/triangles output wire *)
  se_gates : int;
  mutable se_last_dirty : int;
  mutable se_touched : int;  (* LRU clock stamp *)
}

type state = {
  cfg : config;
  (* One fd standalone; a fleet worker also accepts on the supervisor's
     shared front socket (inherited across fork), so the kernel load
     balances un-routed connections while the worker's own endpoint
     receives spec-affine traffic. *)
  listen_fds : Unix.file_descr list;
  mutable conns : conn list;
  cache : Circuit_cache.t;
  batcher : job Batcher.t;
  wheel : job Timer_wheel.t;
  metrics : Metrics.t;
  pool : Th.Packed.Pool.t option;
  (* The dispatch loop is single-threaded, so one shared wire-value
     workspace is safe and amortizes the per-batch buffer allocation;
     replies are fully decoded inside [dispatch], before the next
     batch can reuse it. *)
  ws : Th.Packed.workspace;
  (* Per-circuit accumulated eval profiles ([profile_eval]), keyed by
     the batcher's coalescing key. *)
  profiles : (string, Th.Packed.eval_profile) Hashtbl.t;
  mutable stopping : bool;
  mutable stop_at : float;
  (* The previous select round found no readable connection: together
     with an empty batcher and flushed buffers this is the drain's
     quiescence condition. *)
  mutable quiet : bool;
  mutable term_pending : bool;  (* set by the SIGTERM handler *)
  started : float;
  read_buf : Bytes.t;
  (* Streaming sessions, LRU-capped at [cfg.max_sessions].  Sessions
     are few (each pins a full wire-value image), so the LRU scan is a
     linear fold over the table rather than an intrusive list. *)
  sessions : (int, session_entry) Hashtbl.t;
  mutable next_sid : int;
  mutable session_clock : int;
}

let close_conn st c =
  if c.alive then begin
    c.alive <- false;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    st.conns <- List.filter (fun c' -> c' != c) st.conns;
    Metrics.connection_closed st.metrics;
    Log.debug (fun m -> m "connection closed (%d active)" (List.length st.conns))
  end

let send st c resp =
  if c.alive then begin
    (match resp with P.Error _ -> Metrics.error st.metrics | _ -> ());
    let payload = P.encode_response resp in
    let framed =
      match P.frame payload with
      | framed -> framed
      | exception Invalid_argument _ ->
          Metrics.error st.metrics;
          P.frame (P.encode_response (P.Error "response exceeds frame limit"))
    in
    Buffer.add_string c.out framed;
    if Buffer.length c.out - c.sent > st.cfg.max_backlog then begin
      Metrics.slow_client_drop st.metrics;
      Log.warn (fun m -> m "dropping connection: output backlog exceeded");
      close_conn st c
    end
  end

let flush_conn st c =
  if c.alive then begin
    let len = Buffer.length c.out in
    if len > c.sent then begin
      let s = Buffer.contents c.out in
      match Unix.write_substring c.fd s c.sent (len - c.sent) with
      | n ->
          c.sent <- c.sent + n;
          if c.sent = Buffer.length c.out then begin
            Buffer.clear c.out;
            c.sent <- 0
          end
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error _ -> close_conn st c
    end;
    if c.alive && c.closing && Buffer.length c.out = c.sent then close_conn st c
  end

let circuit_stats (entry : Circuit_cache.entry) = entry.Circuit_cache.stats

let dispatch st ~key jobs =
  (* Deadline-expired jobs were already answered and reaped; any still
     in a dispatch list (drain racing expiry) are skipped here. *)
  match List.filter (fun j -> not j.answered) jobs with
  | [] -> ()
  | first :: _ as jobs ->
      List.iter (fun j -> j.answered <- true) jobs;
      let batch = Array.of_list (List.map (fun j -> j.input) jobs) in
      let lanes = Array.length batch in
      let profile =
        if not st.cfg.profile_eval then None
        else
          match Hashtbl.find_opt st.profiles key with
          | Some p -> Some p
          | None ->
              let p = Th.Packed.make_profile first.packed in
              Hashtbl.replace st.profiles key p;
              Some p
      in
      let t0 = Clock.now () in
      (match
         Th.Packed.run_batch ?pool:st.pool ?profile ~ws:st.ws first.packed
           batch
       with
      | br ->
          let t1 = Clock.now () in
          let firings = ref 0 in
          List.iteri
            (fun lane j ->
              firings := !firings + Th.Packed.batch_firings br ~lane;
              send st j.jconn (j.reply br ~lane);
              Metrics.observe_latency st.metrics ~seconds:(t1 -. j.enqueued_at))
            jobs;
          Metrics.observe_batch st.metrics ~lanes ~firings:!firings
            ~seconds:(t1 -. t0);
          Log.debug (fun m -> m "dispatched batch of %d lane(s)" lanes)
      | exception e ->
          (* Supervised recovery: a raising evaluation fails its own
             lanes and the daemon keeps serving. *)
          let msg = Printexc.to_string e in
          Log.err (fun m -> m "batch evaluation failed (%d lanes): %s" lanes msg);
          List.iter
            (fun j ->
              Metrics.eval_failure st.metrics;
              send st j.jconn (P.Error ("evaluation failed: " ^ msg)))
            jobs)

(* Sweep the timer wheel and answer every queued job whose deadline
   passed; reap them out of the batcher so a later flush cannot answer
   them twice (and so an emptied group stops driving the timeout). *)
let expire_deadlines st ~now =
  match Timer_wheel.advance st.wheel ~now with
  | [] -> ()
  | expired -> (
      match List.filter (fun j -> not j.answered) expired with
      | [] -> ()
      | newly ->
          List.iter
            (fun j ->
              j.answered <- true;
              Metrics.deadline_expired st.metrics;
              send st j.jconn P.Deadline_exceeded)
            newly;
          let reaped = Batcher.reap st.batcher ~f:(fun j -> j.answered) in
          Log.debug (fun m ->
              m "expired %d job(s) past deadline (%d reaped from queue)"
                (List.length newly) (List.length reaped)))

(* Served convolution (protocol v7): embed the im2col operands into the
   spec's [n x n] matmul circuit; the top-left [P x K] block of the
   product is the score matrix.  Raises [Invalid_argument] on a
   mis-shaped job, which the caller converts to an [Error] reply. *)
let conv_matrices (job : P.conv_job) ~n =
  let cspec = { Cn.Im2col.q = job.P.cj_q; stride = job.P.cj_stride } in
  let img = job.P.cj_image in
  Array.iter
    (fun (k : Cn.Image.t) ->
      if
        k.Cn.Image.channels <> img.Cn.Image.channels
        || k.Cn.Image.height <> job.P.cj_q
        || k.Cn.Image.width <> job.P.cj_q
      then invalid_arg "conv kernels must be image-channels x q x q")
    job.P.cj_kernels;
  let patches = Cn.Im2col.patch_matrix cspec img in
  let kmat = Cn.Im2col.kernel_matrix job.P.cj_kernels in
  let p = P.Matrix.rows patches and q = P.Matrix.cols patches in
  let k = P.Matrix.cols kmat in
  if p > n || q > n || k > n then
    invalid_arg
      (Printf.sprintf
         "conv job needs a circuit of n >= %d (P=%d, Q=%d, K=%d); spec has n=%d"
         (max p (max q k)) p q k n);
  let a = Cn.Im2col.embed patches ~n and b = Cn.Im2col.embed kmat ~n in
  let finish get firings =
    let product = P.Matrix.init ~rows:p ~cols:k get in
    P.Conv_result (Cn.Im2col.scores_of_product cspec img product, firings)
  in
  (a, b, finish)

(* Encode the request's matrices into an input vector and build the
   per-lane decoder.  [Encode.write] raises [Invalid_argument] on a
   wrongly-shaped matrix or an entry outside the layout's range, which
   the caller converts to an [Error] reply. *)
let prepare_run (entry : Circuit_cache.entry) req =
  match (entry.compiled, req) with
  | Circuit_cache.Matmul built, P.Run_matmul (_, a, b) ->
      let input = T.Matmul_circuit.encode_inputs built ~a ~b in
      let reply br ~lane =
        P.Matmul_result
          ( T.Matmul_circuit.decode built (fun w ->
                Th.Packed.batch_value br ~lane w),
            Th.Packed.batch_firings br ~lane )
      in
      (input, reply)
  | Circuit_cache.Trace built, P.Run_trace (_, a) ->
      let input = T.Trace_circuit.encode_input built a in
      let out = built.T.Trace_circuit.output in
      let reply br ~lane =
        P.Trace_result
          (Th.Packed.batch_value br ~lane out, Th.Packed.batch_firings br ~lane)
      in
      (input, reply)
  | Circuit_cache.Trace built, P.Run_triangles (_, a) ->
      let input = T.Trace_circuit.encode_input built a in
      let out = built.T.Trace_circuit.output in
      let reply br ~lane =
        P.Triangles_result
          (Th.Packed.batch_value br ~lane out, Th.Packed.batch_firings br ~lane)
      in
      (input, reply)
  (* Store-loaded entries carry no driver value; the artifact's I/O
     descriptor (layouts + output representation) is enough to encode
     requests and decode replies. *)
  | ( Circuit_cache.Stored (Tcmm_store.Artifact.Matmul_io io),
      P.Run_matmul (_, a, b) ) ->
      let wa = T.Encode.total_wires io.layout_a in
      let input = Array.make (wa + T.Encode.total_wires io.layout_b) false in
      T.Encode.write io.layout_a a input;
      T.Encode.write io.layout_b b input;
      let n = Array.length io.c_grid in
      let reply br ~lane =
        P.Matmul_result
          ( Tcmm_fastmm.Matrix.init ~rows:n ~cols:n (fun i j ->
                Tcmm_arith.Repr.eval_sbits
                  (fun w -> Th.Packed.batch_value br ~lane w)
                  io.c_grid.(i).(j)),
            Th.Packed.batch_firings br ~lane )
      in
      (input, reply)
  | ( Circuit_cache.Stored (Tcmm_store.Artifact.Trace_io io),
      (P.Run_trace (_, a) | P.Run_triangles (_, a)) ) ->
      let input = Array.make (T.Encode.total_wires io.layout) false in
      T.Encode.write io.layout a input;
      let out = io.output in
      let reply br ~lane =
        let fired = Th.Packed.batch_value br ~lane out in
        let firings = Th.Packed.batch_firings br ~lane in
        match req with
        | P.Run_triangles _ -> P.Triangles_result (fired, firings)
        | _ -> P.Trace_result (fired, firings)
      in
      (input, reply)
  | Circuit_cache.Matmul built, P.Run_conv (_, job) ->
      let a, b, finish = conv_matrices job ~n:entry.spec.P.n in
      let input = T.Matmul_circuit.encode_inputs built ~a ~b in
      let reply br ~lane =
        let m =
          T.Matmul_circuit.decode built (fun w ->
              Th.Packed.batch_value br ~lane w)
        in
        finish
          (fun i j -> P.Matrix.get m i j)
          (Th.Packed.batch_firings br ~lane)
      in
      (input, reply)
  | ( Circuit_cache.Stored (Tcmm_store.Artifact.Matmul_io io),
      P.Run_conv (_, job) ) ->
      let a, b, finish = conv_matrices job ~n:entry.spec.P.n in
      let wa = T.Encode.total_wires io.layout_a in
      let input = Array.make (wa + T.Encode.total_wires io.layout_b) false in
      T.Encode.write io.layout_a a input;
      T.Encode.write io.layout_b b input;
      let reply br ~lane =
        finish
          (fun i j ->
            Tcmm_arith.Repr.eval_sbits
              (fun w -> Th.Packed.batch_value br ~lane w)
              io.c_grid.(i).(j))
          (Th.Packed.batch_firings br ~lane)
      in
      (input, reply)
  | _ -> invalid_arg "request kind does not match the compiled circuit"

let with_entry st c spec k =
  match Circuit_cache.find_or_build st.cache spec with
  | Error msg -> send st c (P.Error msg)
  | Ok (entry, outcome) ->
      (match outcome with
      | Circuit_cache.Cached -> ()
      | Circuit_cache.Built ->
          Metrics.observe_build st.metrics ~seconds:entry.build_seconds;
          let cov = entry.Circuit_cache.coverage in
          Metrics.observe_coverage st.metrics
            ~kernel_gates:cov.Th.Packed.kernel_gates
            ~fallback_gates:cov.Th.Packed.fallback_gates;
          let level = if st.cfg.profile_build then Logs.App else Logs.Info in
          Log.msg level (fun m ->
              let total = cov.Th.Packed.kernel_gates + cov.Th.Packed.fallback_gates in
              m
                "built %s in %.3fs (construct %.3fs, lower %.3fs; kernels \
                 cover %d/%d gates)"
                (Circuit_cache.key spec) entry.build_seconds
                entry.construct_seconds entry.lower_seconds
                cov.Th.Packed.kernel_gates total)
      | Circuit_cache.Loaded ->
          Log.info (fun m ->
              m "loaded %s warm from the artifact store in %.3fs"
                (Circuit_cache.key spec) entry.build_seconds));
      k entry outcome

let handle_run st c ~now spec req =
  (* Admission gate: shedding here (before the build) keeps an
     overloaded daemon answering in constant time. *)
  if st.cfg.max_pending > 0 && Batcher.pending st.batcher >= st.cfg.max_pending
  then begin
    Metrics.shed st.metrics;
    send st c P.Overloaded
  end
  else
    with_entry st c spec (fun entry _outcome ->
        match prepare_run entry req with
        | exception Invalid_argument msg | exception Failure msg ->
            send st c (P.Error msg)
        | exception Tcmm_util.Checked.Overflow msg ->
            send st c (P.Error ("arithmetic overflow: " ^ msg))
        | input, reply ->
            Metrics.accepted st.metrics;
            let job =
              { jconn = c; packed = entry.packed; input; reply;
                enqueued_at = now; answered = false }
            in
            if st.cfg.deadline_ms > 0. then
              Timer_wheel.add st.wheel
                ~deadline:(now +. (st.cfg.deadline_ms /. 1000.))
                job;
            let key = Circuit_cache.key spec in
            (match Batcher.enqueue st.batcher ~key ~now job with
            | Some jobs -> dispatch st ~key jobs
            | None -> ()))

(* ------------------------------------------------------------------ *)
(* Streaming sessions (protocol v6)                                   *)
(* ------------------------------------------------------------------ *)

let session_input (entry : Circuit_cache.entry) m =
  match entry.compiled with
  | Circuit_cache.Trace built ->
      (T.Trace_circuit.encode_input built m, built.T.Trace_circuit.output)
  | Circuit_cache.Stored (Tcmm_store.Artifact.Trace_io io) ->
      let input = Array.make (T.Encode.total_wires io.layout) false in
      T.Encode.write io.layout m input;
      (input, io.output)
  | _ -> invalid_arg "streaming sessions serve trace/triangles circuits"

let evict_lru_session st =
  if Hashtbl.length st.sessions >= max 1 st.cfg.max_sessions then begin
    let victim =
      Hashtbl.fold
        (fun _ e acc ->
          match acc with
          | Some b when b.se_touched <= e.se_touched -> acc
          | _ -> Some e)
        st.sessions None
    in
    match victim with
    | Some e ->
        Hashtbl.remove st.sessions e.se_id;
        Metrics.session_evicted st.metrics;
        Log.info (fun m ->
            m "evicted session %d (LRU, cap %d)" e.se_id
              (max 1 st.cfg.max_sessions))
    | None -> ()
  end

let wire_value (res : Th.Simulator.result) w =
  Bytes.get res.Th.Simulator.values w <> '\000'

let handle_open_session st c spec m =
  if spec.P.kind = P.Matmul || spec.P.kind = P.Conv then
    send st c (P.Error "streaming sessions serve trace/triangles circuits")
  else
  with_entry st c spec (fun entry _outcome ->
      match session_input entry m with
      | exception Invalid_argument msg | exception Failure msg ->
          send st c (P.Error msg)
      | input, out -> (
          match Th.Packed.session entry.packed input with
          | exception Invalid_argument msg -> send st c (P.Error msg)
          | session ->
              evict_lru_session st;
              let sid = st.next_sid in
              st.next_sid <- sid + 1;
              st.session_clock <- st.session_clock + 1;
              let stats = Th.Packed.session_stats session in
              Hashtbl.replace st.sessions sid
                {
                  se_id = sid;
                  se_session = session;
                  se_out = out;
                  se_gates = stats.Th.Packed.su_gates;
                  se_last_dirty = 0;
                  se_touched = st.session_clock;
                };
              Metrics.session_opened st.metrics;
              let res = Th.Packed.session_result session in
              send st c
                (P.Session_opened
                   {
                     P.so_sid = sid;
                     so_fires = wire_value res out;
                     so_firings = res.Th.Simulator.firings;
                   })))

let handle_update st c sid delta =
  match Hashtbl.find_opt st.sessions sid with
  | None -> send st c (P.Error (Printf.sprintf "unknown session %d" sid))
  | Some e -> (
      st.session_clock <- st.session_clock + 1;
      e.se_touched <- st.session_clock;
      match Th.Packed.update e.se_session delta with
      | exception Invalid_argument msg -> send st c (P.Error msg)
      | res ->
          let stats = Th.Packed.session_stats e.se_session in
          let dirty = stats.Th.Packed.su_dirty_gates - e.se_last_dirty in
          e.se_last_dirty <- stats.Th.Packed.su_dirty_gates;
          Metrics.session_update st.metrics ~dirty_gates:dirty
            ~gates:e.se_gates;
          send st c
            (P.Update_result
               {
                 P.ur_fires = wire_value res e.se_out;
                 ur_firings = res.Th.Simulator.firings;
                 ur_dirty_gates = dirty;
                 ur_gates = e.se_gates;
               }))

let handle_close_session st c sid =
  match Hashtbl.find_opt st.sessions sid with
  | None -> send st c (P.Error (Printf.sprintf "unknown session %d" sid))
  | Some _ ->
      Hashtbl.remove st.sessions sid;
      Metrics.session_closed st.metrics;
      send st c P.Session_closed

let begin_drain st ~now reason =
  if not st.stopping then begin
    st.stopping <- true;
    st.stop_at <- now +. st.cfg.grace_s;
    st.quiet <- false;
    Log.info (fun m ->
        m "%s: draining (grace %.1fs, %d pending)" reason st.cfg.grace_s
          (Batcher.pending st.batcher))
  end

let store_counters st =
  match Circuit_cache.store st.cache with
  | None -> (0, 0, 0)
  | Some store ->
      let c = Tcmm_store.Store.counters store in
      (c.Tcmm_store.Store.loads, c.Tcmm_store.Store.saves,
       c.Tcmm_store.Store.invalid)

let handle_request st c ~now req =
  match req with
  | P.Ping -> send st c P.Pong
  | P.Shutdown ->
      send st c P.Shutting_down;
      begin_drain st ~now "shutdown requested"
  | P.Metrics ->
      let m =
        Metrics.snapshot st.metrics
          ~uptime_seconds:(now -. st.started)
          ~cache:(Circuit_cache.stats st.cache)
          ~engine:(Th.Engine.stats (Th.Engine.shared ()))
          ~store:(store_counters st)
      in
      send st c (P.Metrics_result m)
  | P.Fleet ->
      (* A worker (or standalone daemon) only knows itself; the
         supervisor answers this with the whole roster. *)
      send st c
        (P.Fleet_result
           [
             {
               P.fw_id = st.cfg.worker_id;
               fw_pid = Unix.getpid ();
               fw_addr = P.addr_string st.cfg.addr;
               fw_restarts = 0;
               fw_alive = true;
             };
           ])
  | P.Compile spec ->
      with_entry st c spec (fun entry outcome ->
          send st c
            (P.Compiled
               {
                 P.cached = (outcome = Circuit_cache.Cached);
                 loaded = (outcome = Circuit_cache.Loaded);
                 build_seconds =
                   (if outcome = Circuit_cache.Cached then 0.
                    else entry.build_seconds);
                 stats = circuit_stats entry;
               }))
  | P.Stats spec ->
      with_entry st c spec (fun entry _outcome ->
          send st c (P.Stats_result (circuit_stats entry)))
  (* Run constructors dictate the circuit kind: normalizing the spec
     here keeps a mislabelled spec from building the wrong circuit. *)
  | P.Run_matmul (spec, _, _) ->
      handle_run st c ~now { spec with P.kind = P.Matmul } req
  | P.Run_trace (spec, _) ->
      handle_run st c ~now { spec with P.kind = P.Trace } req
  | P.Run_triangles (spec, _) ->
      handle_run st c ~now { spec with P.kind = P.Triangles } req
  | P.Run_conv (spec, _) ->
      handle_run st c ~now { spec with P.kind = P.Conv } req
  (* Session requests are answered synchronously in the event loop —
     an update's dirty cone is orders of magnitude cheaper than a full
     evaluation, so routing it through the batcher would only add
     queueing latency. *)
  | P.Open_session (spec, m) -> handle_open_session st c spec m
  | P.Update (sid, delta) -> handle_update st c sid delta
  | P.Close_session sid -> handle_close_session st c sid

(* Frames keep being processed while draining: the drain serves what
   existing connections already sent, it only stops admitting new
   connections. *)
let process_frames st c ~now =
  let rec go () =
    if c.alive && not c.closing then
      match P.next_frame c.dech with
      | `More -> ()
      | `Corrupt msg ->
          Metrics.request st.metrics;
          send st c (P.Error ("corrupt frame: " ^ msg));
          (* A framing error desynchronizes the byte stream for good:
             answer, flush, drop the connection. *)
          c.closing <- true
      | `Frame payload ->
          Metrics.request st.metrics;
          (match P.decode_request payload with
          | Error msg -> send st c (P.Error ("bad request: " ^ msg))
          | Ok req -> handle_request st c ~now req);
          go ()
  in
  go ()

let read_conn st c ~now =
  let rec drain () =
    match Unix.read c.fd st.read_buf 0 (Bytes.length st.read_buf) with
    | 0 -> close_conn st c
    | len ->
        P.feed c.dech st.read_buf 0 len;
        if len = Bytes.length st.read_buf then drain ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn st c
  in
  drain ();
  if c.alive then process_frames st c ~now

let accept_all st listen_fd =
  let rec go () =
    match Unix.accept ~cloexec:true listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        (match st.cfg.addr with
        | P.Tcp _ -> (
            try Unix.setsockopt fd Unix.TCP_NODELAY true
            with Unix.Unix_error _ -> ())
        | P.Unix_socket _ -> ());
        st.conns <-
          {
            fd;
            dech = P.create_dechunker ();
            out = Buffer.create 256;
            sent = 0;
            alive = true;
            closing = false;
          }
          :: st.conns;
        Metrics.connection_opened st.metrics;
        Log.debug (fun m -> m "connection accepted (%d active)" (List.length st.conns));
        go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (ECONNABORTED, _, _) -> go ()
  in
  go ()

let log_final st ~now reason =
  let m =
    Metrics.snapshot st.metrics
      ~uptime_seconds:(now -. st.started)
      ~cache:(Circuit_cache.stats st.cache)
      ~engine:(Th.Engine.stats (Th.Engine.shared ()))
      ~store:(store_counters st)
  in
  Log.info (fun f ->
      f
        "drained (%s): accepted=%d completed=%d shed=%d deadline_expired=%d \
         eval_failures=%d slow_client_drops=%d pending=%d"
        reason m.P.accepted m.P.run_requests m.P.shed m.P.deadline_expired
        m.P.eval_failures m.P.slow_client_drops
        (Batcher.pending st.batcher));
  if st.cfg.profile_eval then
    Hashtbl.iter
      (fun key (p : Th.Packed.eval_profile) ->
        if Array.length p.Th.Packed.ep_level_ns > 0 then begin
        let total = Array.fold_left ( +. ) 0. p.Th.Packed.ep_level_ns in
        let hottest = ref 0 in
        Array.iteri
          (fun l ns ->
            if ns > p.Th.Packed.ep_level_ns.(!hottest) then hottest := l)
          p.Th.Packed.ep_level_ns;
        Log.app (fun f ->
            f
              "eval profile %s: %d batches, %d lanes, %.3f ms total \
               (hottest level %d at %.3f ms)"
              key p.Th.Packed.ep_batches p.Th.Packed.ep_lanes (total /. 1e6)
              !hottest
              (p.Th.Packed.ep_level_ns.(!hottest) /. 1e6))
        end)
      st.profiles

let rec loop st =
  let now = Clock.now () in
  if st.term_pending then begin
    st.term_pending <- false;
    begin_drain st ~now "SIGTERM"
  end;
  expire_deadlines st ~now;
  List.iter (fun (key, jobs) -> dispatch st ~key jobs) (Batcher.due st.batcher ~now);
  let flushed = List.for_all (fun c -> Buffer.length c.out = c.sent) st.conns in
  let drained =
    st.stopping && Batcher.pending st.batcher = 0 && flushed && st.quiet
  in
  if st.stopping && (drained || now >= st.stop_at) then
    log_final st ~now (if drained then "quiescent" else "grace expired")
  else begin
    let reads =
      (if st.stopping then [] else st.listen_fds)
      @ List.filter_map
          (fun c -> if c.closing then None else Some c.fd)
          st.conns
    in
    let writes =
      List.filter_map
        (fun c -> if Buffer.length c.out > c.sent then Some c.fd else None)
        st.conns
    in
    let timeout =
      if st.stopping then max 0.02 (min 0.25 (st.stop_at -. now))
      else begin
        let earliest =
          List.fold_left
            (fun acc d -> match d with Some d -> min acc d | None -> acc)
            infinity
            [ Batcher.next_deadline st.batcher;
              Timer_wheel.next_deadline st.wheel ]
        in
        if Batcher.pending st.batcher > 0 && st.cfg.flush_ms = 0. then
          0. (* adaptive mode: flush as soon as input drains *)
        else if earliest = infinity then -1.
        else max 0. (earliest -. now)
      end
    in
    let r, w, _ =
      try Unix.select reads writes [] timeout
      with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun c -> if List.mem c.fd w then flush_conn st c)
      (List.filter (fun c -> c.alive) st.conns);
    let read_activity = ref false in
    if not st.stopping then
      List.iter
        (fun fd -> if List.mem fd r then accept_all st fd)
        st.listen_fds;
    List.iter
      (fun c ->
        if c.alive && List.mem c.fd r then begin
          read_activity := true;
          read_conn st c ~now
        end)
      st.conns;
    st.quiet <- not !read_activity;
    if
      Batcher.pending st.batcher > 0
      && (st.cfg.flush_ms = 0. || st.stopping)
      && not !read_activity
    then
      List.iter
        (fun (key, jobs) -> dispatch st ~key jobs)
        (Batcher.drain st.batcher);
    loop st
  end

let bind cfg =
  let domain =
    match cfg.addr with P.Unix_socket _ -> Unix.PF_UNIX | P.Tcp _ -> Unix.PF_INET
  in
  let listen_fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (match cfg.addr with
  | P.Unix_socket path -> if Sys.file_exists path then Sys.remove path
  | P.Tcp _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true);
  Unix.bind listen_fd (P.sockaddr_of_addr cfg.addr);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  (* Recover the kernel-assigned port so callers can bind port 0 and
     hand the real address to clients (no fixed-port collisions). *)
  let bound =
    match cfg.addr with
    | P.Unix_socket _ as a -> a
    | P.Tcp (host, _) -> (
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, port) -> P.Tcp (host, port)
        | _ -> cfg.addr)
  in
  (listen_fd, bound)

let serve_fds cfg listen_fds =
  if listen_fds = [] then invalid_arg "Server.serve_fds: no listening sockets";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let max_lanes = max 1 (min 62 cfg.max_lanes) in
  let pool =
    if cfg.domains > 1 then Some (Th.Packed.Pool.create ~domains:cfg.domains)
    else None
  in
  let started = Clock.now () in
  let store =
    match cfg.store with
    | None -> None
    | Some dir -> (
        match Tcmm_store.Store.create ~kernels:cfg.kernels ~dir () with
        | Ok s -> Some s
        | Error msg ->
            Log.err (fun m ->
                m "artifact store disabled: could not open %s: %s" dir msg);
            None)
  in
  let st =
    {
      cfg;
      listen_fds;
      conns = [];
      cache =
        Circuit_cache.create ~templates:cfg.templates ~kernels:cfg.kernels
          ?store ~capacity:(max 1 cfg.cache_capacity) ();
      batcher = Batcher.create ~max_lanes ~flush_ms:cfg.flush_ms ();
      wheel = Timer_wheel.create ~now:started ();
      metrics = Metrics.create ~worker_id:cfg.worker_id ~max_lanes ();
      pool;
      ws = Th.Packed.workspace ();
      profiles = Hashtbl.create 8;
      stopping = false;
      stop_at = infinity;
      quiet = false;
      term_pending = false;
      started;
      read_buf = Bytes.create 65536;
      sessions = Hashtbl.create 16;
      next_sid = 1;
      session_clock = 0;
    }
  in
  let prev_term =
    try
      Some
        (Sys.signal Sys.sigterm
           (Sys.Signal_handle (fun _ -> st.term_pending <- true)))
    with Invalid_argument _ -> None
  in
  Log.info (fun m ->
      m
        "%slistening on %a (cache %d, lanes %d, flush %gms, domains %d, \
         max_pending %d, deadline %gms%s)"
        (if cfg.worker_id > 0 then Printf.sprintf "worker %d " cfg.worker_id
         else "")
        P.pp_addr cfg.addr (max 1 cfg.cache_capacity) max_lanes cfg.flush_ms
        cfg.domains cfg.max_pending cfg.deadline_ms
        (if List.length listen_fds > 1 then
           Printf.sprintf ", %d listen sockets" (List.length listen_fds)
         else ""));
  Fun.protect
    ~finally:(fun () ->
      (match prev_term with
      | Some b -> ( try Sys.set_signal Sys.sigterm b with Invalid_argument _ -> ())
      | None -> ());
      List.iter (fun c -> close_conn st c) st.conns;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        listen_fds;
      (match cfg.addr with
      | P.Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
      | P.Tcp _ -> ());
      Option.iter Th.Packed.Pool.shutdown pool;
      Log.info (fun m -> m "stopped"))
    (fun () -> loop st)

let serve_fd cfg listen_fd = serve_fds cfg [ listen_fd ]

let serve cfg =
  let listen_fd, addr = bind cfg in
  serve_fd { cfg with addr } listen_fd
