(** Blocking client for the serving daemon.

    One connection, synchronous request/response by default; {!send} /
    {!recv} expose the pipelined half-duplex form the coalescing bench
    uses (write a burst of requests, then read the burst of replies —
    the server buffers responses, so this cannot deadlock). *)

type t

val connect : Protocol.addr -> t
(** Raises [Unix.Unix_error] when the server is not reachable. *)

val close : t -> unit

val with_connection : Protocol.addr -> (t -> 'a) -> 'a
(** Connect, run, close (also on exceptions). *)

val send : t -> Protocol.request -> unit
(** Write one framed request (blocking). *)

val recv : t -> (Protocol.response, string) result
(** Read one framed response (blocking).  [Error] on EOF or a corrupt
    frame. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** [send] then [recv]. *)

val shutdown : Protocol.addr -> (unit, string) result
(** Connect, send [Shutdown], await [Shutting_down]. *)

(** {1 Deadlines and bounded retry} *)

type failure =
  | Timeout  (** no complete reply frame before the attempt's deadline *)
  | Overloaded  (** server shed the request at its admission gate *)
  | Deadline_exceeded  (** server expired the request before dispatch *)
  | Transport of string  (** connect / send / read / decode failure *)
  | Remote of string
      (** server answered [Error] — deterministic rejection, never
          retried *)

val pp_failure : Format.formatter -> failure -> unit

type policy = {
  attempts : int;  (** total attempts (first try included); >= 1 *)
  timeout_ms : float;  (** per-attempt reply deadline *)
  base_delay_ms : float;  (** backoff base; attempt [k] waits up to
                              [base * 2^k] *)
  max_delay_ms : float;  (** backoff cap *)
}

val default_policy : policy
(** 3 attempts, 5 s timeout, 25 ms base, 1 s cap. *)

val call :
  ?policy:policy ->
  ?seed:int ->
  Protocol.addr ->
  Protocol.request ->
  (Protocol.response, failure) result
(** One logical request with per-attempt deadlines and bounded,
    full-jitter exponential backoff, each attempt on a fresh
    connection.  Retrying after an ambiguous failure (the server may or
    may not have evaluated the request) is sound {e only} because every
    non-[Shutdown] request is idempotent: a pure, spec-keyed
    computation whose duplicate evaluation returns the same bits and
    mutates nothing.  [Shutdown] is therefore never retried, and
    [Remote] (a deterministic rejection) never retries either.  [seed]
    feeds the jitter PRNG — deterministic for tests. *)
