(** Blocking client for the serving daemon.

    One connection, synchronous request/response by default; {!send} /
    {!recv} expose the pipelined half-duplex form the coalescing bench
    uses (write a burst of requests, then read the burst of replies —
    the server buffers responses, so this cannot deadlock). *)

type t

val connect : Protocol.addr -> t
(** Raises [Unix.Unix_error] when the server is not reachable. *)

val close : t -> unit

val with_connection : Protocol.addr -> (t -> 'a) -> 'a
(** Connect, run, close (also on exceptions). *)

val send : t -> Protocol.request -> unit
(** Write one framed request (blocking). *)

val recv : t -> (Protocol.response, string) result
(** Read one framed response (blocking).  [Error] on EOF or a corrupt
    frame. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** [send] then [recv]. *)

val shutdown : Protocol.addr -> (unit, string) result
(** Connect, send [Shutdown], await [Shutting_down]. *)
