(** Blocking client for the serving daemon.

    One connection, synchronous request/response by default; {!send} /
    {!recv} expose the pipelined half-duplex form the coalescing bench
    uses (write a burst of requests, then read the burst of replies —
    the server buffers responses, so this cannot deadlock). *)

type t

val connect : Protocol.addr -> t
(** Raises [Unix.Unix_error] when the server is not reachable. *)

val close : t -> unit

val with_connection : Protocol.addr -> (t -> 'a) -> 'a
(** Connect, run, close (also on exceptions). *)

val send : t -> Protocol.request -> unit
(** Write one framed request (blocking). *)

val recv : t -> (Protocol.response, string) result
(** Read one framed response (blocking).  [Error] on EOF or a corrupt
    frame. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** [send] then [recv]. *)

val shutdown : Protocol.addr -> (unit, string) result
(** Connect, send [Shutdown], await [Shutting_down]. *)

(** {1 Streaming sessions (protocol v6)}

    Typed wrappers over one connection.  Session requests are stateful,
    so none of them participate in {!call}'s retry machinery: an
    ambiguous transport failure surfaces as [Error] instead of being
    re-sent (a duplicate [Open_session] would leak a server-side
    session; a duplicate [Update] would double-count metrics). *)

val open_session :
  t ->
  Protocol.spec ->
  Protocol.Matrix.t ->
  (Protocol.session_opened, string) result
(** Open a dirty-cone session on a [Trace] / [Triangles] circuit,
    evaluated from scratch on the given matrix. *)

val update :
  t ->
  sid:int ->
  (int * bool) array ->
  (Protocol.update_result, string) result
(** Apply an input-bit delta (e.g. {!Tcmm_graph.Stream.delta}'s output)
    to an open session; only the dirty cone re-evaluates. *)

val close_session : t -> sid:int -> (unit, string) result

(** {1 Deadlines and bounded retry} *)

type failure =
  | Timeout  (** no complete reply frame before the attempt's deadline *)
  | Overloaded  (** server shed the request at its admission gate *)
  | Deadline_exceeded  (** server expired the request before dispatch *)
  | Transport of string  (** connect / send / read / decode failure *)
  | Remote of string
      (** server answered [Error] — deterministic rejection, never
          retried *)

val pp_failure : Format.formatter -> failure -> unit

type policy = {
  attempts : int;  (** total attempts (first try included); >= 1 *)
  timeout_ms : float;  (** per-attempt reply deadline *)
  base_delay_ms : float;  (** backoff base; attempt [k] waits up to
                              [base * 2^k] *)
  max_delay_ms : float;  (** backoff cap *)
}

val default_policy : policy
(** 3 attempts, 5 s timeout, 25 ms base, 1 s cap. *)

val call :
  ?policy:policy ->
  ?seed:int ->
  Protocol.addr ->
  Protocol.request ->
  (Protocol.response, failure) result
(** One logical request with per-attempt deadlines and bounded,
    full-jitter exponential backoff, each attempt on a fresh
    connection.  Retrying after an ambiguous failure (the server may or
    may not have evaluated the request) is sound {e only} because every
    non-[Shutdown] request is idempotent: a pure, spec-keyed
    computation whose duplicate evaluation returns the same bits and
    mutates nothing.  [Shutdown] is therefore never retried, and
    [Remote] (a deterministic rejection) never retries either.  [seed]
    feeds the jitter PRNG — deterministic for tests. *)

(** {1 Spec-affinity shard router}

    Client-side routing over a fleet of worker endpoints.  Requests
    hash their circuit-spec key to a preferred worker (rendezvous /
    highest-random-weight hashing over FNV-1a64 of [key ++ endpoint]),
    so repeated requests for the same circuit land on the worker whose
    {!Circuit_cache} already holds it hot.  Rendezvous hashing gives
    the three properties the property suite checks: the shard is a
    deterministic function of (key, endpoint set) independent of list
    order; the failover ranking is a permutation of the endpoints; and
    removing one endpoint remaps {e only} the keys it owned. *)

module Pool : sig
  type t

  val create : Protocol.addr list -> t
  (** Raises [Invalid_argument] on an empty list.  Duplicate endpoints
      are kept (they score identically and tie-break stably). *)

  val endpoints : t -> Protocol.addr list
  val size : t -> int

  val key_of_spec : Protocol.spec -> string
  (** The canonical routing key: {!Circuit_cache.key} — the same string
      the server keys its circuit cache by, so affinity lines up with
      cache residency exactly. *)

  val rank : t -> key:string -> Protocol.addr list
  (** All endpoints in descending rendezvous-score order: head is the
      preferred shard, the tail the failover sequence. *)

  val shard : t -> key:string -> Protocol.addr
  (** [List.hd (rank t ~key)]. *)

  val call :
    ?policy:policy ->
    ?seed:int ->
    t ->
    key:string ->
    Protocol.request ->
    (Protocol.response, failure) result
  (** {!Client.call} against the preferred shard, failing over down the
      {!rank} order when an endpoint exhausts its retry budget with a
      retryable failure.  Non-idempotent requests and deterministic
      [Remote] rejections never fail over, mirroring {!Client.call}'s
      retry rules. *)
end
