module Matrix = Tcmm_fastmm.Matrix
module Image = Tcmm_convnet.Image

let version = 7
let min_version = 1
let max_frame_len = 1 lsl 24

type kind = Matmul | Trace | Triangles | Conv

type spec = {
  kind : kind;
  algo : string;
  schedule : string;
  d : int;
  n : int;
  entry_bits : int;
  signed : bool;
  tau : int;
  kronpow : bool;
      (** apply the Kronecker-power linear-circuit rewrite when building
          (protocol v7; false when decoding an older peer) *)
}

(* One im2col inference job (protocol v7): [cj_q]/[cj_stride] pick the
   patch grid, the kernels all share the image's channel count.  The
   server embeds patch and kernel matrices into the spec's [n x n]
   matmul circuit and replies with the [K x out_h x out_w] scores. *)
type conv_job = { cj_q : int; cj_stride : int; cj_image : Image.t; cj_kernels : Image.t array }

type request =
  | Compile of spec
  | Run_matmul of spec * Matrix.t * Matrix.t
  | Run_trace of spec * Matrix.t
  | Run_triangles of spec * Matrix.t
  | Stats of spec
  | Metrics
  | Ping
  | Shutdown
  | Fleet
  | Open_session of spec * Matrix.t
  | Update of int * (int * bool) array
  | Close_session of int
  | Run_conv of spec * conv_job

type compiled = {
  cached : bool;
  loaded : bool;
      (** the entry came from the artifact store, not a build (protocol
          v4; false when decoding an older peer) *)
  build_seconds : float;
  stats : Tcmm_threshold.Stats.t;
}

type cache_stats = Tcmm_util.Lru.stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

type histogram = {
  bounds : float array;
  counts : int array;
  sum : float;
  count : int;
}

type metrics = {
  uptime_seconds : float;
  connections_accepted : int;
  connections_active : int;
  requests_total : int;
  run_requests : int;
  errors : int;
  batches : int;
  lanes : int;
  max_lanes : int;
  occupancy : int array;
  latency_ms : histogram;
  firings_total : int;
  eval_seconds : float;
  build_seconds : float;
  cache : cache_stats;
  engine : cache_stats;
  (* Robustness accounting (protocol v2; zero when decoding a v1 peer).
     Invariant once the queue is empty:
     [accepted = run_requests + deadline_expired + eval_failures]. *)
  accepted : int;
  shed : int;
  deadline_expired : int;
  eval_failures : int;
  slow_client_drops : int;
  (* Kernel coverage (protocol v3; zero when decoding an older peer):
     gates of cache-miss builds that evaluate through a specialized
     kernel vs the generic CSR fallback, summed over all builds. *)
  kernel_gates : int;
  fallback_gates : int;
  (* Artifact-store traffic (protocol v4; zero when decoding an older
     peer): warm loads, write-behind saves, and quarantined invalid
     artifacts since the daemon started. *)
  store_loads : int;
  store_saves : int;
  store_invalid : int;
  (* Fleet identity (protocol v5; zero when decoding an older peer):
     which worker produced this snapshot.  0 = a standalone daemon or a
     supervisor-side aggregate; fleet workers are numbered from 1. *)
  worker_id : int;
  (* Streaming-session accounting (protocol v6; zero when decoding an
     older peer).  [session_dirty_gates / session_gates] is the
     fleet-wide incremental work ratio: gates actually re-examined by
     dirty-cone updates over gates a from-scratch re-evaluation of the
     same updates would have swept. *)
  sessions_opened : int;
  sessions_active : int;
  sessions_evicted : int;
  session_updates : int;
  session_dirty_gates : int;
  session_gates : int;
}

type fleet_worker = {
  fw_id : int;  (** 1-based worker number, stable across restarts *)
  fw_pid : int;
  fw_addr : string;  (** the worker's own endpoint, [parse_addr] form *)
  fw_restarts : int;
  fw_alive : bool;
}

type session_opened = {
  so_sid : int;  (** server-assigned session id *)
  so_fires : bool;  (** the circuit's output on the initial input *)
  so_firings : int;
}

type update_result = {
  ur_fires : bool;
  ur_firings : int;
  ur_dirty_gates : int;  (** gates re-examined by this update's dirty cone *)
  ur_gates : int;  (** total gates a from-scratch sweep would visit *)
}

type response =
  | Compiled of compiled
  | Matmul_result of Matrix.t * int
  | Trace_result of bool * int
  | Triangles_result of bool * int
  | Stats_result of Tcmm_threshold.Stats.t
  | Metrics_result of metrics
  | Pong
  | Shutting_down
  | Error of string
  | Overloaded
  | Deadline_exceeded
  | Fleet_result of fleet_worker list
  | Session_opened of session_opened
  | Update_result of update_result
  | Session_closed
  | Conv_result of int array array array * int
      (** [K x out_h x out_w] score planes and the lane's firings
          (protocol v7) *)

(* ------------------------------------------------------------------ *)
(* Encoding                                                           *)
(* ------------------------------------------------------------------ *)

let w_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))
let w_int buf v = Buffer.add_int64_le buf (Int64.of_int v)
let w_bool buf b = w_u8 buf (if b then 1 else 0)
let w_float buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let w_string buf s =
  w_int buf (String.length s);
  Buffer.add_string buf s

let w_int_array buf a =
  w_int buf (Array.length a);
  Array.iter (w_int buf) a

let w_float_array buf a =
  w_int buf (Array.length a);
  Array.iter (w_float buf) a

let w_matrix buf m =
  w_int buf (Matrix.rows m);
  w_int buf (Matrix.cols m);
  for i = 0 to Matrix.rows m - 1 do
    for j = 0 to Matrix.cols m - 1 do
      w_int buf (Matrix.get m i j)
    done
  done

let w_kind buf = function
  | Matmul -> w_u8 buf 0
  | Trace -> w_u8 buf 1
  | Triangles -> w_u8 buf 2
  | Conv -> w_u8 buf 3

let w_spec buf s =
  w_kind buf s.kind;
  w_string buf s.algo;
  w_string buf s.schedule;
  w_int buf s.d;
  w_int buf s.n;
  w_int buf s.entry_bits;
  w_bool buf s.signed;
  w_int buf s.tau;
  (* The v7 field rides at the tail, like the metrics counters. *)
  w_bool buf s.kronpow

let w_image buf (img : Image.t) =
  w_int buf img.Image.channels;
  w_int buf img.Image.height;
  w_int buf img.Image.width;
  Array.iter (w_int buf) img.Image.data

let w_conv_job buf j =
  w_int buf j.cj_q;
  w_int buf j.cj_stride;
  w_image buf j.cj_image;
  w_int buf (Array.length j.cj_kernels);
  Array.iter (w_image buf) j.cj_kernels

let w_scores buf (scores : int array array array) =
  let k = Array.length scores in
  let oh = if k = 0 then 0 else Array.length scores.(0) in
  let ow = if k = 0 || oh = 0 then 0 else Array.length scores.(0).(0) in
  w_int buf k;
  w_int buf oh;
  w_int buf ow;
  Array.iter (fun plane -> Array.iter (fun row -> Array.iter (w_int buf) row) plane) scores

let w_stats buf (s : Tcmm_threshold.Stats.t) =
  w_int buf s.inputs;
  w_int buf s.outputs;
  w_int buf s.gates;
  w_int buf s.edges;
  w_int buf s.depth;
  w_int buf s.max_fan_in;
  w_int buf s.max_abs_weight;
  w_int_array buf s.gates_by_depth

let w_cache_stats buf (s : cache_stats) =
  w_int buf s.hits;
  w_int buf s.misses;
  w_int buf s.evictions;
  w_int buf s.size;
  w_int buf s.capacity

let w_histogram buf h =
  w_float_array buf h.bounds;
  w_int_array buf h.counts;
  w_float buf h.sum;
  w_int buf h.count

let w_metrics buf m =
  w_float buf m.uptime_seconds;
  w_int buf m.connections_accepted;
  w_int buf m.connections_active;
  w_int buf m.requests_total;
  w_int buf m.run_requests;
  w_int buf m.errors;
  w_int buf m.batches;
  w_int buf m.lanes;
  w_int buf m.max_lanes;
  w_int_array buf m.occupancy;
  w_histogram buf m.latency_ms;
  w_int buf m.firings_total;
  w_float buf m.eval_seconds;
  w_float buf m.build_seconds;
  w_cache_stats buf m.cache;
  w_cache_stats buf m.engine;
  (* v2 fields ride at the tail so a v1 reader body is a prefix. *)
  w_int buf m.accepted;
  w_int buf m.shed;
  w_int buf m.deadline_expired;
  w_int buf m.eval_failures;
  w_int buf m.slow_client_drops;
  w_int buf m.kernel_gates;
  w_int buf m.fallback_gates;
  w_int buf m.store_loads;
  w_int buf m.store_saves;
  w_int buf m.store_invalid;
  w_int buf m.worker_id;
  (* v6 session counters ride at the tail, like every version before. *)
  w_int buf m.sessions_opened;
  w_int buf m.sessions_active;
  w_int buf m.sessions_evicted;
  w_int buf m.session_updates;
  w_int buf m.session_dirty_gates;
  w_int buf m.session_gates

let w_fleet_worker buf w =
  w_int buf w.fw_id;
  w_int buf w.fw_pid;
  w_string buf w.fw_addr;
  w_int buf w.fw_restarts;
  w_bool buf w.fw_alive

let payload tag fill =
  let buf = Buffer.create 256 in
  w_u8 buf version;
  w_u8 buf tag;
  fill buf;
  Buffer.contents buf

let encode_request = function
  | Compile spec -> payload 1 (fun buf -> w_spec buf spec)
  | Run_matmul (spec, a, b) ->
      payload 2 (fun buf ->
          w_spec buf spec;
          w_matrix buf a;
          w_matrix buf b)
  | Run_trace (spec, m) ->
      payload 3 (fun buf ->
          w_spec buf spec;
          w_matrix buf m)
  | Run_triangles (spec, m) ->
      payload 4 (fun buf ->
          w_spec buf spec;
          w_matrix buf m)
  | Stats spec -> payload 5 (fun buf -> w_spec buf spec)
  | Metrics -> payload 6 ignore
  | Ping -> payload 7 ignore
  | Shutdown -> payload 8 ignore
  (* Tag 13, not 9: a zero-payload request is a 2-byte frame, so its
     tag byte must not collide with any response tag that carries a
     payload (9 is [Error]) — otherwise that response's 2-byte
     truncation prefix would decode as a valid request.  13 is unused
     in both tag spaces. *)
  | Fleet -> payload 13 ignore
  | Open_session (spec, m) ->
      payload 14 (fun buf ->
          w_spec buf spec;
          w_matrix buf m)
  | Update (sid, delta) ->
      payload 15 (fun buf ->
          w_int buf sid;
          w_int buf (Array.length delta);
          Array.iter
            (fun (w, v) ->
              w_int buf w;
              w_bool buf v)
            delta)
  | Close_session sid -> payload 16 (fun buf -> w_int buf sid)
  | Run_conv (spec, job) ->
      (* Tag 17: unused in both tag spaces. *)
      payload 17 (fun buf ->
          w_spec buf spec;
          w_conv_job buf job)

let encode_response = function
  | Compiled c ->
      payload 1 (fun buf ->
          w_bool buf c.cached;
          w_float buf c.build_seconds;
          w_stats buf c.stats;
          (* v4 field rides at the tail, mirroring the metrics layout
             discipline. *)
          w_bool buf c.loaded)
  | Matmul_result (m, firings) ->
      payload 2 (fun buf ->
          w_matrix buf m;
          w_int buf firings)
  | Trace_result (b, firings) ->
      payload 3 (fun buf ->
          w_bool buf b;
          w_int buf firings)
  | Triangles_result (b, firings) ->
      payload 4 (fun buf ->
          w_bool buf b;
          w_int buf firings)
  | Stats_result s -> payload 5 (fun buf -> w_stats buf s)
  | Metrics_result m -> payload 6 (fun buf -> w_metrics buf m)
  | Pong -> payload 7 ignore
  | Shutting_down -> payload 8 ignore
  | Error msg -> payload 9 (fun buf -> w_string buf msg)
  | Overloaded -> payload 10 ignore
  | Deadline_exceeded -> payload 11 ignore
  | Fleet_result workers ->
      payload 12 (fun buf ->
          w_int buf (List.length workers);
          List.iter (w_fleet_worker buf) workers)
  | Session_opened s ->
      payload 14 (fun buf ->
          w_int buf s.so_sid;
          w_bool buf s.so_fires;
          w_int buf s.so_firings)
  | Update_result u ->
      payload 15 (fun buf ->
          w_bool buf u.ur_fires;
          w_int buf u.ur_firings;
          w_int buf u.ur_dirty_gates;
          w_int buf u.ur_gates)
  (* Tag 18, not 16: [Session_closed] is a zero-payload response, so by
     the [Fleet] rule's mirror image its tag must not collide with a
     payload-carrying request tag (16 is [Close_session]) — otherwise a
     request's 2-byte truncation prefix would decode as a valid
     response. *)
  | Session_closed -> payload 18 ignore
  | Conv_result (scores, firings) ->
      (* Tag 19: unused in both tag spaces. *)
      payload 19 (fun buf ->
          w_scores buf scores;
          w_int buf firings)

(* ------------------------------------------------------------------ *)
(* Decoding                                                           *)
(* ------------------------------------------------------------------ *)

exception Fail of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Fail msg)) fmt

type reader = { s : string; mutable pos : int }

let remaining r = String.length r.s - r.pos

let need r n what =
  if n < 0 || n > remaining r then
    fail "truncated payload: need %d bytes for %s, have %d" n what (remaining r)

let r_u8 r what =
  need r 1 what;
  let v = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_int r what =
  need r 8 what;
  let v = Int64.to_int (String.get_int64_le r.s r.pos) in
  r.pos <- r.pos + 8;
  v

let r_bool r what =
  match r_u8 r what with
  | 0 -> false
  | 1 -> true
  | v -> fail "bad boolean %d for %s" v what

let r_float r what =
  need r 8 what;
  let v = Int64.float_of_bits (String.get_int64_le r.s r.pos) in
  r.pos <- r.pos + 8;
  v

let r_string r what =
  let len = r_int r what in
  need r len what;
  let s = String.sub r.s r.pos len in
  r.pos <- r.pos + len;
  s

let r_counted r ~elem_bytes what =
  let count = r_int r what in
  (* The bound also keeps [count * elem_bytes] far from overflow. *)
  if count < 0 || count > max_frame_len then fail "bad count %d for %s" count what;
  need r (count * elem_bytes) what;
  count

let r_int_array r what =
  let count = r_counted r ~elem_bytes:8 what in
  Array.init count (fun _ -> r_int r what)

let r_float_array r what =
  let count = r_counted r ~elem_bytes:8 what in
  Array.init count (fun _ -> r_float r what)

let r_matrix r what =
  let rows = r_int r what in
  let cols = r_int r what in
  if rows < 1 || cols < 1 || rows > max_frame_len || cols > max_frame_len then
    fail "bad matrix shape %dx%d for %s" rows cols what;
  need r (rows * cols * 8) what;
  Matrix.of_rows (Array.init rows (fun _ -> Array.init cols (fun _ -> r_int r what)))

let r_kind r ~version:v =
  match r_u8 r "kind" with
  | 0 -> Matmul
  | 1 -> Trace
  | 2 -> Triangles
  | 3 when v >= 7 -> Conv
  | k -> fail "unknown circuit kind %d" k

let r_spec r ~version:v =
  let kind = r_kind r ~version:v in
  let algo = r_string r "spec.algo" in
  let schedule = r_string r "spec.schedule" in
  let d = r_int r "spec.d" in
  let n = r_int r "spec.n" in
  let entry_bits = r_int r "spec.entry_bits" in
  let signed = r_bool r "spec.signed" in
  let tau = r_int r "spec.tau" in
  (* The kronpow flag joined in v7; older builds are always flat. *)
  let kronpow = if v >= 7 then r_bool r "spec.kronpow" else false in
  { kind; algo; schedule; d; n; entry_bits; signed; tau; kronpow }

let r_image r what =
  let channels = r_int r what in
  let height = r_int r what in
  let width = r_int r what in
  (* Per-dimension bounds first, so the size product cannot overflow. *)
  if channels < 1 || height < 1 || width < 1 || channels > max_frame_len
     || height > max_frame_len || width > max_frame_len
  then fail "bad image shape %dx%dx%d for %s" channels height width what;
  if channels * height > max_frame_len || channels * height * width > max_frame_len
  then fail "oversized image for %s" what;
  need r (channels * height * width * 8) what;
  let data =
    Array.init (channels * height * width) (fun _ -> r_int r what)
  in
  Image.init ~channels ~height ~width (fun c y x ->
      data.((((c * height) + y) * width) + x))

let r_conv_job r =
  let cj_q = r_int r "conv.q" in
  let cj_stride = r_int r "conv.stride" in
  let cj_image = r_image r "conv.image" in
  let count = r_counted r ~elem_bytes:24 "conv.kernels" in
  if count < 1 then fail "conv job carries no kernels";
  let cj_kernels = Array.init count (fun _ -> r_image r "conv.kernel") in
  { cj_q; cj_stride; cj_image; cj_kernels }

let r_scores r =
  let k = r_int r "scores.k" in
  let oh = r_int r "scores.out_h" in
  let ow = r_int r "scores.out_w" in
  if k < 0 || oh < 0 || ow < 0 || k > max_frame_len || oh > max_frame_len
     || ow > max_frame_len
  then fail "bad score shape %dx%dx%d" k oh ow;
  if k * oh > max_frame_len || k * oh * ow > max_frame_len then
    fail "oversized score block %dx%dx%d" k oh ow;
  need r (k * oh * ow * 8) "scores.data";
  Array.init k (fun _ ->
      Array.init oh (fun _ -> Array.init ow (fun _ -> r_int r "scores.data")))

let r_stats r : Tcmm_threshold.Stats.t =
  let inputs = r_int r "stats.inputs" in
  let outputs = r_int r "stats.outputs" in
  let gates = r_int r "stats.gates" in
  let edges = r_int r "stats.edges" in
  let depth = r_int r "stats.depth" in
  let max_fan_in = r_int r "stats.max_fan_in" in
  let max_abs_weight = r_int r "stats.max_abs_weight" in
  let gates_by_depth = r_int_array r "stats.gates_by_depth" in
  { inputs; outputs; gates; edges; depth; max_fan_in; max_abs_weight; gates_by_depth }

let r_cache_stats r : cache_stats =
  let hits = r_int r "cache.hits" in
  let misses = r_int r "cache.misses" in
  let evictions = r_int r "cache.evictions" in
  let size = r_int r "cache.size" in
  let capacity = r_int r "cache.capacity" in
  { hits; misses; evictions; size; capacity }

let r_histogram r =
  let bounds = r_float_array r "histogram.bounds" in
  let counts = r_int_array r "histogram.counts" in
  let sum = r_float r "histogram.sum" in
  let count = r_int r "histogram.count" in
  { bounds; counts; sum; count }

let r_metrics r ~version:v =
  let uptime_seconds = r_float r "metrics.uptime" in
  let connections_accepted = r_int r "metrics.accepted" in
  let connections_active = r_int r "metrics.active" in
  let requests_total = r_int r "metrics.requests" in
  let run_requests = r_int r "metrics.run_requests" in
  let errors = r_int r "metrics.errors" in
  let batches = r_int r "metrics.batches" in
  let lanes = r_int r "metrics.lanes" in
  let max_lanes = r_int r "metrics.max_lanes" in
  let occupancy = r_int_array r "metrics.occupancy" in
  let latency_ms = r_histogram r in
  let firings_total = r_int r "metrics.firings" in
  let eval_seconds = r_float r "metrics.eval_seconds" in
  let build_seconds = r_float r "metrics.build_seconds" in
  let cache = r_cache_stats r in
  let engine = r_cache_stats r in
  (* The robustness counters joined in v2; a v1 peer simply never saw a
     shed or expired request. *)
  let accepted = if v >= 2 then r_int r "metrics.accepted" else 0 in
  let shed = if v >= 2 then r_int r "metrics.shed" else 0 in
  let deadline_expired = if v >= 2 then r_int r "metrics.deadline_expired" else 0 in
  let eval_failures = if v >= 2 then r_int r "metrics.eval_failures" else 0 in
  let slow_client_drops =
    if v >= 2 then r_int r "metrics.slow_client_drops" else 0
  in
  (* Kernel coverage joined in v3; older peers predate the kernels. *)
  let kernel_gates = if v >= 3 then r_int r "metrics.kernel_gates" else 0 in
  let fallback_gates = if v >= 3 then r_int r "metrics.fallback_gates" else 0 in
  (* Artifact-store counters joined in v4; older daemons had no store. *)
  let store_loads = if v >= 4 then r_int r "metrics.store_loads" else 0 in
  let store_saves = if v >= 4 then r_int r "metrics.store_saves" else 0 in
  let store_invalid = if v >= 4 then r_int r "metrics.store_invalid" else 0 in
  (* The fleet identity joined in v5; an older daemon is standalone. *)
  let worker_id = if v >= 5 then r_int r "metrics.worker_id" else 0 in
  (* Streaming sessions joined in v6; older daemons served none. *)
  let sessions_opened = if v >= 6 then r_int r "metrics.sessions_opened" else 0 in
  let sessions_active = if v >= 6 then r_int r "metrics.sessions_active" else 0 in
  let sessions_evicted =
    if v >= 6 then r_int r "metrics.sessions_evicted" else 0
  in
  let session_updates = if v >= 6 then r_int r "metrics.session_updates" else 0 in
  let session_dirty_gates =
    if v >= 6 then r_int r "metrics.session_dirty_gates" else 0
  in
  let session_gates = if v >= 6 then r_int r "metrics.session_gates" else 0 in
  {
    uptime_seconds; connections_accepted; connections_active; requests_total;
    run_requests; errors; batches; lanes; max_lanes; occupancy; latency_ms;
    firings_total; eval_seconds; build_seconds; cache; engine;
    accepted; shed; deadline_expired; eval_failures; slow_client_drops;
    kernel_gates; fallback_gates; store_loads; store_saves; store_invalid;
    worker_id; sessions_opened; sessions_active; sessions_evicted;
    session_updates; session_dirty_gates; session_gates;
  }

let r_fleet_worker r =
  let fw_id = r_int r "fleet.id" in
  let fw_pid = r_int r "fleet.pid" in
  let fw_addr = r_string r "fleet.addr" in
  let fw_restarts = r_int r "fleet.restarts" in
  let fw_alive = r_bool r "fleet.alive" in
  { fw_id; fw_pid; fw_addr; fw_restarts; fw_alive }

let decode what f s =
  try
    let r = { s; pos = 0 } in
    let v = r_u8 r "version" in
    if v < min_version || v > version then
      fail "unsupported protocol version %d (want %d..%d)" v min_version version;
    let tag = r_u8 r "tag" in
    let value = f r ~version:v tag in
    if remaining r > 0 then fail "%d trailing bytes after %s" (remaining r) what;
    Ok value
  with Fail msg -> Result.Error (Printf.sprintf "bad %s: %s" what msg)

let decode_request =
  decode "request" (fun r ~version tag ->
      match tag with
      | 1 -> Compile (r_spec r ~version)
      | 2 ->
          let spec = r_spec r ~version in
          let a = r_matrix r "run.a" in
          let b = r_matrix r "run.b" in
          Run_matmul (spec, a, b)
      | 3 ->
          let spec = r_spec r ~version in
          Run_trace (spec, r_matrix r "run.a")
      | 4 ->
          let spec = r_spec r ~version in
          Run_triangles (spec, r_matrix r "run.adjacency")
      | 5 -> Stats (r_spec r ~version)
      | 6 -> Metrics
      | 7 -> Ping
      | 8 -> Shutdown
      | 13 when version >= 5 -> Fleet
      | 14 when version >= 6 ->
          let spec = r_spec r ~version in
          Open_session (spec, r_matrix r "session.adjacency")
      | 15 when version >= 6 ->
          let sid = r_int r "update.sid" in
          let count = r_counted r ~elem_bytes:9 "update.delta" in
          Update
            ( sid,
              Array.init count (fun _ ->
                  let w = r_int r "update.wire" in
                  let v = r_bool r "update.value" in
                  (w, v)) )
      | 16 when version >= 6 -> Close_session (r_int r "close.sid")
      | 17 when version >= 7 ->
          let spec = r_spec r ~version in
          Run_conv (spec, r_conv_job r)
      | t -> fail "unknown request tag %d" t)

let decode_response =
  decode "response" (fun r ~version tag ->
      match tag with
      | 1 ->
          let cached = r_bool r "compiled.cached" in
          let build_seconds = r_float r "compiled.build_seconds" in
          let stats = r_stats r in
          let loaded = if version >= 4 then r_bool r "compiled.loaded" else false in
          Compiled { cached; loaded; build_seconds; stats }
      | 2 ->
          let m = r_matrix r "result.c" in
          Matmul_result (m, r_int r "result.firings")
      | 3 ->
          let b = r_bool r "result.fires" in
          Trace_result (b, r_int r "result.firings")
      | 4 ->
          let b = r_bool r "result.fires" in
          Triangles_result (b, r_int r "result.firings")
      | 5 -> Stats_result (r_stats r)
      | 6 -> Metrics_result (r_metrics r ~version)
      | 7 -> Pong
      | 8 -> Shutting_down
      | 9 -> Error (r_string r "error.message")
      | 10 when version >= 2 -> Overloaded
      | 11 when version >= 2 -> Deadline_exceeded
      | 12 when version >= 5 ->
          let count = r_counted r ~elem_bytes:(8 * 4 + 1) "fleet.workers" in
          Fleet_result (List.init count (fun _ -> r_fleet_worker r))
      | 14 when version >= 6 ->
          let so_sid = r_int r "session.sid" in
          let so_fires = r_bool r "session.fires" in
          let so_firings = r_int r "session.firings" in
          Session_opened { so_sid; so_fires; so_firings }
      | 15 when version >= 6 ->
          let ur_fires = r_bool r "update.fires" in
          let ur_firings = r_int r "update.firings" in
          let ur_dirty_gates = r_int r "update.dirty_gates" in
          let ur_gates = r_int r "update.gates" in
          Update_result { ur_fires; ur_firings; ur_dirty_gates; ur_gates }
      | 18 when version >= 6 -> Session_closed
      | 19 when version >= 7 ->
          let scores = r_scores r in
          Conv_result (scores, r_int r "result.firings")
      | t -> fail "unknown response tag %d" t)

(* ------------------------------------------------------------------ *)
(* Framing                                                            *)
(* ------------------------------------------------------------------ *)

let frame p =
  let len = String.length p in
  if len = 0 || len > max_frame_len then
    invalid_arg (Printf.sprintf "Protocol.frame: payload of %d bytes" len);
  let buf = Buffer.create (len + 4) in
  Buffer.add_int32_be buf (Int32.of_int len);
  Buffer.add_string buf p;
  Buffer.contents buf

type dechunker = { mutable buf : Bytes.t; mutable start : int; mutable len : int }

let create_dechunker () = { buf = Bytes.create 4096; start = 0; len = 0 }

let feed d src pos len =
  if len < 0 || pos < 0 || pos + len > Bytes.length src then
    invalid_arg "Protocol.feed";
  (* Compact, then grow if needed. *)
  if d.start > 0 && d.start + d.len + len > Bytes.length d.buf then begin
    Bytes.blit d.buf d.start d.buf 0 d.len;
    d.start <- 0
  end;
  if d.len + len > Bytes.length d.buf then begin
    let cap = ref (Bytes.length d.buf) in
    while d.len + len > !cap do
      cap := !cap * 2
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit d.buf d.start bigger 0 d.len;
    d.buf <- bigger;
    d.start <- 0
  end;
  Bytes.blit src pos d.buf (d.start + d.len) len;
  d.len <- d.len + len

let next_frame d =
  if d.len < 4 then `More
  else
    let len = Int32.to_int (Bytes.get_int32_be d.buf d.start) in
    if len <= 0 || len > max_frame_len then
      `Corrupt (Printf.sprintf "bad frame length %d" len)
    else if d.len < 4 + len then `More
    else begin
      let p = Bytes.sub_string d.buf (d.start + 4) len in
      d.start <- d.start + 4 + len;
      d.len <- d.len - 4 - len;
      if d.len = 0 then d.start <- 0;
      `Frame p
    end

let buffered d = d.len

let write_frame fd p =
  let s = frame p in
  let len = String.length s in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write_substring fd s !written (len - !written)
  done

let read_exactly fd n =
  let b = Bytes.create n in
  let got = ref 0 in
  (try
     while !got < n do
       let k = Unix.read fd b !got (n - !got) in
       if k = 0 then raise Exit;
       got := !got + k
     done
   with Exit -> ());
  if !got = n then Ok (Bytes.unsafe_to_string b)
  else Result.Error (Printf.sprintf "connection closed (%d of %d bytes)" !got n)

let read_frame fd =
  match read_exactly fd 4 with
  | Result.Error _ as e -> e
  | Ok header ->
      let len = Int32.to_int (String.get_int32_be header 0) in
      if len <= 0 || len > max_frame_len then
        Result.Error (Printf.sprintf "bad frame length %d" len)
      else read_exactly fd len

(* Deadline-bounded variant of [read_exactly]: a [select] guards every
   [read] so a stalled peer surfaces as [`Timeout] instead of a hang.
   [deadline] is an absolute instant on the same clock the caller uses
   for [Clock.now]. *)
let read_exactly_within fd n ~deadline ~now =
  let b = Bytes.create n in
  let got = ref 0 in
  let result = ref None in
  while !result = None && !got < n do
    let budget = deadline -. now () in
    if budget <= 0. then result := Some (Result.Error `Timeout)
    else
      match Unix.select [ fd ] [] [] budget with
      | [], _, _ -> result := Some (Result.Error `Timeout)
      | _ -> (
          match Unix.read fd b !got (n - !got) with
          | 0 ->
              result :=
                Some
                  (Result.Error
                     (`Closed
                       (Printf.sprintf "connection closed (%d of %d bytes)" !got n)))
          | k -> got := !got + k
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
          | exception Unix.Unix_error (e, _, _) ->
              (* A reset peer is a closed connection, not a crash. *)
              result := Some (Result.Error (`Closed (Unix.error_message e))))
      | exception Unix.Unix_error (EINTR, _, _) -> ()
  done;
  match !result with
  | Some r -> r
  | None -> Ok (Bytes.unsafe_to_string b)

let read_frame_within fd ~deadline ~now =
  match read_exactly_within fd 4 ~deadline ~now with
  | Result.Error _ as e -> e
  | Ok header ->
      let len = Int32.to_int (String.get_int32_be header 0) in
      if len <= 0 || len > max_frame_len then
        Result.Error (`Closed (Printf.sprintf "bad frame length %d" len))
      else read_exactly_within fd len ~deadline ~now

(* ------------------------------------------------------------------ *)
(* Addresses                                                          *)
(* ------------------------------------------------------------------ *)

type addr = Unix_socket of string | Tcp of string * int

let parse_addr s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 && host <> "" -> Ok (Tcp (host, p))
      | _ -> Result.Error (Printf.sprintf "bad TCP address %S (want HOST:PORT)" s))
  | None -> if s = "" then Result.Error "empty address" else Ok (Unix_socket s)

let pp_addr ppf = function
  | Unix_socket path -> Format.fprintf ppf "unix:%s" path
  | Tcp (host, port) -> Format.fprintf ppf "tcp:%s:%d" host port

(* Round-trips through [parse_addr] (unlike [pp_addr]'s tagged form):
   the fleet roster and the shard router's hash both use this form. *)
let addr_string = function
  | Unix_socket path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let sockaddr_of_addr = function
  | Unix_socket path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.ADDR_INET (inet, port)

(* ------------------------------------------------------------------ *)
(* Equality and printing                                              *)
(* ------------------------------------------------------------------ *)

let equal_spec (a : spec) (b : spec) = a = b

let equal_request a b =
  match (a, b) with
  | Compile sa, Compile sb | Stats sa, Stats sb -> equal_spec sa sb
  | Run_matmul (sa, a1, a2), Run_matmul (sb, b1, b2) ->
      equal_spec sa sb && Matrix.equal a1 b1 && Matrix.equal a2 b2
  | Run_trace (sa, ma), Run_trace (sb, mb)
  | Run_triangles (sa, ma), Run_triangles (sb, mb) ->
      equal_spec sa sb && Matrix.equal ma mb
  | Metrics, Metrics | Ping, Ping | Shutdown, Shutdown | Fleet, Fleet -> true
  | Open_session (sa, ma), Open_session (sb, mb) ->
      equal_spec sa sb && Matrix.equal ma mb
  | Update (ia, da), Update (ib, db) -> ia = ib && da = db
  | Close_session a, Close_session b -> a = b
  | Run_conv (sa, ja), Run_conv (sb, jb) ->
      equal_spec sa sb && ja.cj_q = jb.cj_q && ja.cj_stride = jb.cj_stride
      && Image.equal ja.cj_image jb.cj_image
      && Array.length ja.cj_kernels = Array.length jb.cj_kernels
      && Array.for_all2 Image.equal ja.cj_kernels jb.cj_kernels
  | _ -> false

(* Floats travel by bits, so [=] on the records is exact; NaNs would
   still compare unequal, hence the explicit bit comparison. *)
let equal_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let equal_float_array a b =
  Array.length a = Array.length b && Array.for_all2 equal_float a b

let equal_histogram a b =
  equal_float_array a.bounds b.bounds
  && a.counts = b.counts && equal_float a.sum b.sum && a.count = b.count

let equal_metrics a b =
  equal_float a.uptime_seconds b.uptime_seconds
  && a.connections_accepted = b.connections_accepted
  && a.connections_active = b.connections_active
  && a.requests_total = b.requests_total
  && a.run_requests = b.run_requests
  && a.errors = b.errors && a.batches = b.batches && a.lanes = b.lanes
  && a.max_lanes = b.max_lanes && a.occupancy = b.occupancy
  && equal_histogram a.latency_ms b.latency_ms
  && a.firings_total = b.firings_total
  && equal_float a.eval_seconds b.eval_seconds
  && equal_float a.build_seconds b.build_seconds
  && a.cache = b.cache && a.engine = b.engine
  && a.accepted = b.accepted && a.shed = b.shed
  && a.deadline_expired = b.deadline_expired
  && a.eval_failures = b.eval_failures
  && a.slow_client_drops = b.slow_client_drops
  && a.kernel_gates = b.kernel_gates
  && a.fallback_gates = b.fallback_gates
  && a.store_loads = b.store_loads
  && a.store_saves = b.store_saves
  && a.store_invalid = b.store_invalid
  && a.worker_id = b.worker_id
  && a.sessions_opened = b.sessions_opened
  && a.sessions_active = b.sessions_active
  && a.sessions_evicted = b.sessions_evicted
  && a.session_updates = b.session_updates
  && a.session_dirty_gates = b.session_dirty_gates
  && a.session_gates = b.session_gates

let equal_response a b =
  match (a, b) with
  | Compiled ca, Compiled cb ->
      ca.cached = cb.cached && ca.loaded = cb.loaded
      && equal_float ca.build_seconds cb.build_seconds
      && ca.stats = cb.stats
  | Matmul_result (ma, fa), Matmul_result (mb, fb) -> Matrix.equal ma mb && fa = fb
  | Trace_result (ba, fa), Trace_result (bb, fb)
  | Triangles_result (ba, fa), Triangles_result (bb, fb) ->
      ba = bb && fa = fb
  | Stats_result sa, Stats_result sb -> sa = sb
  | Metrics_result ma, Metrics_result mb -> equal_metrics ma mb
  | Pong, Pong | Shutting_down, Shutting_down -> true
  | Overloaded, Overloaded | Deadline_exceeded, Deadline_exceeded -> true
  | Error ea, Error eb -> ea = eb
  | Fleet_result wa, Fleet_result wb -> wa = wb
  | Session_opened a, Session_opened b -> a = b
  | Update_result a, Update_result b -> a = b
  | Session_closed, Session_closed -> true
  | Conv_result (sa, fa), Conv_result (sb, fb) -> sa = sb && fa = fb
  | _ -> false

let pp_metrics ppf m =
  let frac num den = if den = 0 then 0. else float_of_int num /. float_of_int den in
  Format.fprintf ppf "uptime: %.1f s, connections: %d accepted / %d active%t@."
    m.uptime_seconds m.connections_accepted m.connections_active
    (fun ppf ->
      if m.worker_id > 0 then Format.fprintf ppf " (worker %d)" m.worker_id);
  Format.fprintf ppf
    "requests: %d total, %d runs, %d errors; latency mean %.3f ms over %d@."
    m.requests_total m.run_requests m.errors
    (if m.latency_ms.count = 0 then 0. else m.latency_ms.sum /. float_of_int m.latency_ms.count)
    m.latency_ms.count;
  Format.fprintf ppf
    "batches: %d carrying %d lanes (mean occupancy %.1f of %d); firings %d@."
    m.batches m.lanes (frac m.lanes m.batches) m.max_lanes m.firings_total;
  Format.fprintf ppf "time: eval %.3f s, build %.3f s@." m.eval_seconds
    m.build_seconds;
  Format.fprintf ppf
    "robustness: %d accepted, %d shed, %d deadline-expired, %d eval failures, %d slow-client drops@."
    m.accepted m.shed m.deadline_expired m.eval_failures m.slow_client_drops;
  Format.fprintf ppf
    "kernels: %d gates kernelized, %d fallback (%.1f%% coverage)@."
    m.kernel_gates m.fallback_gates
    (100. *. frac m.kernel_gates (m.kernel_gates + m.fallback_gates));
  Format.fprintf ppf
    "store: %d warm loads, %d saves, %d invalid artifacts quarantined@."
    m.store_loads m.store_saves m.store_invalid;
  Format.fprintf ppf
    "sessions: %d opened (%d active, %d evicted), %d updates touching \
     %d/%d gates (%.1f%% dirty)@."
    m.sessions_opened m.sessions_active m.sessions_evicted m.session_updates
    m.session_dirty_gates m.session_gates
    (100. *. frac m.session_dirty_gates m.session_gates);
  let pp_cache name (c : cache_stats) =
    Format.fprintf ppf
      "%s cache: %d/%d entries, %d hits / %d misses (%.0f%% hit rate), %d evictions@."
      name c.size c.capacity c.hits c.misses
      (100. *. frac c.hits (c.hits + c.misses))
      c.evictions
  in
  pp_cache "circuit" m.cache;
  pp_cache "engine" m.engine;
  let occupied = ref [] in
  Array.iteri
    (fun i c -> if c > 0 then occupied := (i + 1, c) :: !occupied)
    m.occupancy;
  Format.fprintf ppf "occupancy: %s@."
    (if !occupied = [] then "-"
     else
       String.concat ", "
         (List.rev_map (fun (lanes, c) -> Printf.sprintf "%dx%d-lane" c lanes) !occupied))
