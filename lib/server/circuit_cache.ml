module F = Tcmm_fastmm
module T = Tcmm
module Th = Tcmm_threshold

type compiled =
  | Matmul of T.Matmul_circuit.built
  | Trace of T.Trace_circuit.built

type entry = {
  spec : Protocol.spec;
  compiled : compiled;
  packed : Th.Packed.t;
  coverage : Th.Packed.coverage;
  build_seconds : float;
  construct_seconds : float;
  lower_seconds : float;
}

type t = {
  lru : (string, entry) Tcmm_util.Lru.t;
  templates : bool;
  kernels : bool;
}

let create ?(templates = true) ?(kernels = true) ~capacity () : t =
  { lru = Tcmm_util.Lru.create ~capacity (); templates; kernels }

let key (s : Protocol.spec) =
  Printf.sprintf "%s|%s|%s|d=%d|n=%d|b=%d|signed=%b|tau=%d"
    (match s.kind with
    | Protocol.Matmul -> "matmul"
    | Protocol.Trace -> "trace"
    | Protocol.Triangles -> "triangles")
    s.algo s.schedule s.d s.n s.entry_bits s.signed s.tau

let algo_by_name name =
  match
    List.find_opt
      (fun a -> a.F.Bilinear.name = name)
      (F.Instances.all ())
  with
  | Some a -> a
  | None ->
      invalid_arg
        (Printf.sprintf "unknown algorithm %S (try: %s)" name
           (String.concat ", "
              (List.map (fun a -> a.F.Bilinear.name) (F.Instances.all ()))))

(* Bounds that keep a hostile spec from requesting a terabyte build;
   the real limit is the builder's own memory use. *)
let validate (s : Protocol.spec) =
  if s.n < 2 || s.n > 4096 then
    invalid_arg (Printf.sprintf "n = %d out of range [2, 4096]" s.n);
  if s.entry_bits < 1 || s.entry_bits > 32 then
    invalid_arg (Printf.sprintf "entry_bits = %d out of range [1, 32]" s.entry_bits);
  if s.d < 1 || s.d > 32 then
    invalid_arg (Printf.sprintf "d = %d out of range [1, 32]" s.d)

(* With templates the drivers build in [Direct] mode: stamped blocks go
   straight to the packed CSR form ({!Tcmm_threshold.Packed.of_arena})
   without ever materializing a [Circuit.t].  Without them this is the
   legacy path — materialize, then compile through the engine cache. *)
let build ~templates ~kernels (s : Protocol.spec) =
  validate s;
  let algo = algo_by_name s.algo in
  let schedule = T.Level_schedule.resolve ~algo ~name:s.schedule ~d:s.d ~n:s.n in
  let mode = if templates then Th.Builder.Direct else Th.Builder.Materialize in
  let t0 = Unix.gettimeofday () in
  let compiled =
    match s.kind with
    | Protocol.Matmul ->
        Matmul
          (T.Matmul_circuit.build ~mode ~templates ~algo ~schedule
             ~signed_inputs:s.signed ~entry_bits:s.entry_bits ~n:s.n ())
    | Protocol.Trace | Protocol.Triangles ->
        let tau =
          match s.kind with
          | Protocol.Triangles -> Tcmm_util.Checked.mul 6 s.tau
          | _ -> s.tau
        in
        Trace
          (T.Trace_circuit.build ~mode ~templates ~algo ~schedule
             ~signed_inputs:s.signed ~entry_bits:s.entry_bits ~tau ~n:s.n ())
  in
  let t1 = Unix.gettimeofday () in
  let packed =
    match compiled with
    | Matmul built -> T.Matmul_circuit.pack ~kernels built
    | Trace built -> T.Trace_circuit.pack ~kernels built
  in
  let t2 = Unix.gettimeofday () in
  {
    spec = s;
    compiled;
    packed;
    coverage = Th.Packed.coverage packed;
    build_seconds = t2 -. t0;
    construct_seconds = t1 -. t0;
    lower_seconds = t2 -. t1;
  }

let find_or_build t spec =
  let k = key spec in
  match Tcmm_util.Lru.find t.lru k with
  | Some entry -> Ok (entry, true)
  | None -> (
      match build ~templates:t.templates ~kernels:t.kernels spec with
      | entry ->
          Tcmm_util.Lru.add t.lru k entry;
          Ok (entry, false)
      | exception Invalid_argument msg | exception Failure msg ->
          Error msg
      | exception Tcmm_util.Checked.Overflow msg ->
          Error (Printf.sprintf "arithmetic overflow while building: %s" msg)
      (* Supervised recovery: any other escape (Out_of_memory, a builder
         bug) fails this request, not the daemon. *)
      | exception e ->
          Error (Printf.sprintf "build failed: %s" (Printexc.to_string e)))

let stats t = Tcmm_util.Lru.stats t.lru
