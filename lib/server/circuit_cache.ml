module F = Tcmm_fastmm
module T = Tcmm
module Th = Tcmm_threshold

type compiled =
  | Matmul of T.Matmul_circuit.built
  | Trace of T.Trace_circuit.built
  | Stored of Tcmm_store.Artifact.io

type source = Fresh | Warm

type entry = {
  spec : Protocol.spec;
  compiled : compiled;
  packed : Th.Packed.t;
  coverage : Th.Packed.coverage;
  stats : Th.Stats.t;
  source : source;
  build_seconds : float;
  construct_seconds : float;
  lower_seconds : float;
}

type outcome = Cached | Built | Loaded

type t = {
  lru : (string, entry) Tcmm_util.Lru.t;
  templates : bool;
  kernels : bool;
  store : Tcmm_store.Store.t option;
}

let create ?(templates = true) ?(kernels = true) ?store ~capacity () : t =
  { lru = Tcmm_util.Lru.create ~capacity (); templates; kernels; store }

let store t = t.store

(* [Conv] keys as "matmul": a served convolution runs through exactly
   the n x n matmul circuit, so both kinds share one cache entry.  The
   kronpow flag is appended only when set, keeping pre-v7 keys (and the
   artifact store's on-disk names) byte-identical. *)
let key (s : Protocol.spec) =
  Printf.sprintf "%s|%s|%s|d=%d|n=%d|b=%d|signed=%b|tau=%d%s"
    (match s.kind with
    | Protocol.Matmul | Protocol.Conv -> "matmul"
    | Protocol.Trace -> "trace"
    | Protocol.Triangles -> "triangles")
    s.algo s.schedule s.d s.n s.entry_bits s.signed s.tau
    (if s.kronpow then "|kronpow" else "")

let algo_by_name name =
  match
    List.find_opt
      (fun a -> a.F.Bilinear.name = name)
      (F.Instances.all ())
  with
  | Some a -> a
  | None ->
      invalid_arg
        (Printf.sprintf "unknown algorithm %S (try: %s)" name
           (String.concat ", "
              (List.map (fun a -> a.F.Bilinear.name) (F.Instances.all ()))))

(* Bounds that keep a hostile spec from requesting a terabyte build;
   the real limit is the builder's own memory use. *)
let validate (s : Protocol.spec) =
  if s.n < 2 || s.n > 4096 then
    invalid_arg (Printf.sprintf "n = %d out of range [2, 4096]" s.n);
  if s.entry_bits < 1 || s.entry_bits > 32 then
    invalid_arg (Printf.sprintf "entry_bits = %d out of range [1, 32]" s.entry_bits);
  if s.d < 1 || s.d > 32 then
    invalid_arg (Printf.sprintf "d = %d out of range [1, 32]" s.d)

(* With templates the drivers build in [Direct] mode: stamped blocks go
   straight to the packed CSR form ({!Tcmm_threshold.Packed.of_arena})
   without ever materializing a [Circuit.t].  Without them this is the
   legacy path — materialize, then compile through the engine cache. *)
let build ~templates ~kernels (s : Protocol.spec) =
  validate s;
  let algo = algo_by_name s.algo in
  let schedule = T.Level_schedule.resolve ~algo ~name:s.schedule ~d:s.d ~n:s.n in
  let mode = if templates then Th.Builder.Direct else Th.Builder.Materialize in
  let t0 = Unix.gettimeofday () in
  let compiled =
    match s.kind with
    | Protocol.Matmul | Protocol.Conv ->
        Matmul
          (T.Matmul_circuit.build ~mode ~templates ~kronpow:s.kronpow ~algo
             ~schedule ~signed_inputs:s.signed ~entry_bits:s.entry_bits ~n:s.n ())
    | Protocol.Trace | Protocol.Triangles ->
        let tau =
          match s.kind with
          | Protocol.Triangles -> Tcmm_util.Checked.mul 6 s.tau
          | _ -> s.tau
        in
        Trace
          (T.Trace_circuit.build ~mode ~templates ~kronpow:s.kronpow ~algo
             ~schedule ~signed_inputs:s.signed ~entry_bits:s.entry_bits ~tau
             ~n:s.n ())
  in
  let t1 = Unix.gettimeofday () in
  let packed =
    match compiled with
    | Matmul built -> T.Matmul_circuit.pack ~kernels built
    | Trace built -> T.Trace_circuit.pack ~kernels built
    | Stored _ -> assert false
  in
  let t2 = Unix.gettimeofday () in
  let stats =
    match compiled with
    | Matmul built -> T.Matmul_circuit.stats built
    | Trace built -> T.Trace_circuit.stats built
    | Stored _ -> assert false
  in
  {
    spec = s;
    compiled;
    packed;
    coverage = Th.Packed.coverage packed;
    stats;
    source = Fresh;
    build_seconds = t2 -. t0;
    construct_seconds = t1 -. t0;
    lower_seconds = t2 -. t1;
  }

(* What the artifact store needs to serve this entry later without the
   driver value: the input layouts and output representation. *)
let io_of_entry e =
  match e.compiled with
  | Matmul b ->
      Tcmm_store.Artifact.Matmul_io
        {
          layout_a = b.T.Matmul_circuit.layout_a;
          layout_b = b.T.Matmul_circuit.layout_b;
          c_grid = b.T.Matmul_circuit.c_grid;
        }
  | Trace b ->
      Tcmm_store.Artifact.Trace_io
        {
          layout = b.T.Trace_circuit.layout;
          output = b.T.Trace_circuit.output;
          tau = b.T.Trace_circuit.tau;
        }
  | Stored io -> io

let entry_of_artifact spec ~load_seconds (a : Tcmm_store.Artifact.t) =
  {
    spec;
    compiled = Stored a.Tcmm_store.Artifact.a_io;
    packed = a.Tcmm_store.Artifact.a_packed;
    coverage = Th.Packed.coverage a.Tcmm_store.Artifact.a_packed;
    stats = a.Tcmm_store.Artifact.a_header.Tcmm_store.Artifact.h_stats;
    source = Warm;
    build_seconds = load_seconds;
    construct_seconds = 0.;
    lower_seconds = load_seconds;
  }

let find_or_build t spec =
  let k = key spec in
  match Tcmm_util.Lru.find t.lru k with
  | Some entry -> Ok (entry, Cached)
  | None -> (
      (* Read-through: a valid artifact skips the build entirely (the
         store quarantines invalid ones and reports a miss). *)
      let loaded =
        match t.store with
        | None -> None
        | Some store ->
            let t0 = Unix.gettimeofday () in
            Option.map
              (fun a ->
                entry_of_artifact spec ~load_seconds:(Unix.gettimeofday () -. t0) a)
              (Tcmm_store.Store.find store ~key:k)
      in
      match loaded with
      | Some entry ->
          Tcmm_util.Lru.add t.lru k entry;
          Ok (entry, Loaded)
      | None -> (
          match build ~templates:t.templates ~kernels:t.kernels spec with
          | entry ->
              Tcmm_util.Lru.add t.lru k entry;
              (* Write-behind: persist the fresh build so the next
                 process (or the next life of this one) loads warm.  A
                 failed save is logged by the store and costs nothing
                 here. *)
              (match t.store with
              | None -> ()
              | Some store ->
                  let meta =
                    {
                      Tcmm_store.Artifact.m_key = k;
                      m_templates = t.templates;
                      m_kernels = t.kernels;
                      m_build_seconds = entry.build_seconds;
                      m_stats = entry.stats;
                      m_io = io_of_entry entry;
                    }
                  in
                  ignore (Tcmm_store.Store.save store ~meta entry.packed));
              Ok (entry, Built)
          | exception Invalid_argument msg | exception Failure msg ->
              Error msg
          | exception Tcmm_util.Checked.Overflow msg ->
              Error (Printf.sprintf "arithmetic overflow while building: %s" msg)
          (* Supervised recovery: any other escape (Out_of_memory, a builder
             bug) fails this request, not the daemon. *)
          | exception e ->
              Error (Printf.sprintf "build failed: %s" (Printexc.to_string e))))

let stats t = Tcmm_util.Lru.stats t.lru
