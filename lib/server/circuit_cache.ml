module F = Tcmm_fastmm
module T = Tcmm
module Th = Tcmm_threshold

type compiled =
  | Matmul of T.Matmul_circuit.built
  | Trace of T.Trace_circuit.built

type entry = {
  spec : Protocol.spec;
  compiled : compiled;
  circuit : Th.Circuit.t;
  packed : Th.Packed.t;
  build_seconds : float;
}

type t = (string, entry) Tcmm_util.Lru.t

let create ~capacity : t = Tcmm_util.Lru.create ~capacity ()

let key (s : Protocol.spec) =
  Printf.sprintf "%s|%s|%s|d=%d|n=%d|b=%d|signed=%b|tau=%d"
    (match s.kind with
    | Protocol.Matmul -> "matmul"
    | Protocol.Trace -> "trace"
    | Protocol.Triangles -> "triangles")
    s.algo s.schedule s.d s.n s.entry_bits s.signed s.tau

let algo_by_name name =
  match
    List.find_opt
      (fun a -> a.F.Bilinear.name = name)
      (F.Instances.all ())
  with
  | Some a -> a
  | None ->
      invalid_arg
        (Printf.sprintf "unknown algorithm %S (try: %s)" name
           (String.concat ", "
              (List.map (fun a -> a.F.Bilinear.name) (F.Instances.all ()))))

(* Bounds that keep a hostile spec from requesting a terabyte build;
   the real limit is the builder's own memory use. *)
let validate (s : Protocol.spec) =
  if s.n < 2 || s.n > 4096 then
    invalid_arg (Printf.sprintf "n = %d out of range [2, 4096]" s.n);
  if s.entry_bits < 1 || s.entry_bits > 32 then
    invalid_arg (Printf.sprintf "entry_bits = %d out of range [1, 32]" s.entry_bits);
  if s.d < 1 || s.d > 32 then
    invalid_arg (Printf.sprintf "d = %d out of range [1, 32]" s.d)

let build (s : Protocol.spec) =
  validate s;
  let algo = algo_by_name s.algo in
  let schedule = T.Level_schedule.resolve ~algo ~name:s.schedule ~d:s.d ~n:s.n in
  let t0 = Unix.gettimeofday () in
  let compiled, circuit =
    match s.kind with
    | Protocol.Matmul ->
        let built =
          T.Matmul_circuit.build ~algo ~schedule ~signed_inputs:s.signed
            ~entry_bits:s.entry_bits ~n:s.n ()
        in
        (Matmul built, Option.get built.T.Matmul_circuit.circuit)
    | Protocol.Trace | Protocol.Triangles ->
        let tau =
          match s.kind with
          | Protocol.Triangles -> Tcmm_util.Checked.mul 6 s.tau
          | _ -> s.tau
        in
        let built =
          T.Trace_circuit.build ~algo ~schedule ~signed_inputs:s.signed
            ~entry_bits:s.entry_bits ~tau ~n:s.n ()
        in
        (Trace built, Option.get built.T.Trace_circuit.circuit)
  in
  let packed = Th.Engine.packed (Th.Engine.shared ()) circuit in
  let build_seconds = Unix.gettimeofday () -. t0 in
  { spec = s; compiled; circuit; packed; build_seconds }

let find_or_build t spec =
  let k = key spec in
  match Tcmm_util.Lru.find t k with
  | Some entry -> Ok (entry, true)
  | None -> (
      match build spec with
      | entry ->
          Tcmm_util.Lru.add t k entry;
          Ok (entry, false)
      | exception Invalid_argument msg | exception Failure msg ->
          Error msg
      | exception Tcmm_util.Checked.Overflow msg ->
          Error (Printf.sprintf "arithmetic overflow while building: %s" msg))

let stats = Tcmm_util.Lru.stats
