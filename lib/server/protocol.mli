(** The `tcmm serve` wire protocol.

    Version-tagged, length-prefixed binary frames over a Unix or TCP
    socket.  A frame is a 4-byte big-endian payload length followed by
    the payload; a payload is one version byte, one tag byte, and the
    tag's fields (64-bit little-endian integers, IEEE-754 floats by
    bits, length-prefixed strings, count-prefixed arrays).  Both sides
    reject frames longer than {!max_frame_len}, so a corrupt length
    prefix cannot trigger an unbounded allocation.

    Requests name circuits by a {!spec} — the cache key of the serving
    daemon — and carry exact integer matrices as payloads.  The encoders
    and decoders round-trip every value bit-exactly (floats travel as
    their bit patterns), which the property-test suite checks on
    arbitrary requests and responses. *)

module Matrix = Tcmm_fastmm.Matrix
module Image = Tcmm_convnet.Image

val version : int
(** Protocol version carried in every outgoing payload (currently 7).
    Version 2 added the [Overloaded] / [Deadline_exceeded] statuses and
    the robustness counters at the tail of {!metrics}; version 3
    appended the kernel-coverage counters; version 4 the artifact-store
    counters; version 5 the fleet identity ([metrics.worker_id]) and
    the [Fleet] / [Fleet_result] roster exchange; version 6 the
    stateful streaming sessions ([Open_session] / [Update] /
    [Close_session]) and the session counters at the metrics tail;
    version 7 the served im2col convolution ([Conv] specs, [Run_conv] /
    [Conv_result]) and the [spec.kronpow] flag at the spec tail. *)

val min_version : int
(** Oldest peer version the decoders accept (currently 1).  A v1
    [metrics] payload decodes with the robustness counters zeroed, a v2
    payload with the kernel-coverage counters zeroed, a v4 payload with
    the fleet fields zeroed; version-gated tags ([Overloaded],
    [Deadline_exceeded], [Fleet], [Fleet_result]) are rejected in
    payloads older than the version that introduced them. *)

val max_frame_len : int
(** Hard upper bound on a payload's length (16 MiB). *)

(** {1 Circuit specs} *)

type kind =
  | Matmul  (** [C = A * B] (Theorem 4.9) *)
  | Trace  (** [trace(A^3) >= tau] (Theorem 4.5) *)
  | Triangles
      (** triangle threshold query: [trace(A^3) >= 6 * tau] on an
          adjacency matrix (Section 5) *)
  | Conv
      (** im2col convolution served through a matmul circuit of
          dimension [n] (Section 6 application).  Protocol v7. *)

type spec = {
  kind : kind;
  algo : string;  (** bundled algorithm name, e.g. ["strassen"] *)
  schedule : string;  (** {!Tcmm.Level_schedule.resolve} vocabulary *)
  d : int;  (** Theorem 4.5 depth parameter (["thm45"] schedules) *)
  n : int;  (** matrix dimension *)
  entry_bits : int;
  signed : bool;
  tau : int;  (** threshold for [Trace] / [Triangles]; ignored for [Matmul] *)
  kronpow : bool;
      (** build with the Kronecker-power linear-circuit optimization
          (v7; [false] from an older peer).  Value-identical circuits,
          different wire structure — part of the cache key. *)
}

type conv_job = {
  cj_q : int;  (** square kernel side *)
  cj_stride : int;
  cj_image : Image.t;
  cj_kernels : Image.t array;  (** one score map per kernel *)
}

(** {1 Requests and responses} *)

type request =
  | Compile of spec  (** build (or find cached) without running *)
  | Run_matmul of spec * Matrix.t * Matrix.t
  | Run_trace of spec * Matrix.t
  | Run_triangles of spec * Matrix.t
  | Stats of spec  (** exact circuit statistics *)
  | Metrics  (** serving metrics snapshot *)
  | Ping
  | Shutdown  (** graceful stop: flush batches, answer, exit *)
  | Fleet
      (** fleet roster: a supervisor answers with every worker's
          endpoint and restart count, a standalone daemon (or a worker)
          with just itself.  Protocol v5. *)
  | Open_session of spec * Matrix.t
      (** open a stateful streaming session on a [Trace] / [Triangles]
          circuit: evaluate the initial matrix from scratch and keep
          the {!Tcmm_threshold.Packed.session} resident for incremental
          updates.  Protocol v6. *)
  | Update of int * (int * bool) array
      (** [(sid, delta)]: apply an input-bit delta — [(wire, value)]
          pairs, e.g. from {!Tcmm_graph.Stream.delta} — to an open
          session and re-evaluate only the dirty cone.  Protocol v6. *)
  | Close_session of int  (** release a session's state.  Protocol v6. *)
  | Run_conv of spec * conv_job
      (** serve an im2col convolution through the spec's matmul
          circuit: the daemon embeds the patch and kernel matrices into
          [n x n], multiplies through the cached circuit, and folds the
          product back into per-kernel score maps.  Protocol v7. *)

type compiled = {
  cached : bool;  (** was already resident in the circuit cache *)
  loaded : bool;
      (** the entry was recovered from the artifact store instead of
          built (v4; [false] from an older peer) *)
  build_seconds : float;  (** 0 when [cached] *)
  stats : Tcmm_threshold.Stats.t;
}

type cache_stats = Tcmm_util.Lru.stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

type histogram = {
  bounds : float array;  (** bucket upper bounds (inclusive), milliseconds *)
  counts : int array;  (** length [Array.length bounds + 1]; last = overflow *)
  sum : float;  (** sum of observations, milliseconds *)
  count : int;
}

type metrics = {
  uptime_seconds : float;
  connections_accepted : int;
  connections_active : int;
  requests_total : int;
  run_requests : int;
  errors : int;  (** requests answered with [Error] *)
  batches : int;  (** coalesced dispatches through [Packed.run_batch] *)
  lanes : int;  (** total run requests dispatched via batches *)
  max_lanes : int;  (** configured occupancy cap (<= 62) *)
  occupancy : int array;
      (** length [max_lanes]; [occupancy.(k-1)] = batches that carried
          [k] lanes *)
  latency_ms : histogram;  (** per-request latency, enqueue to reply *)
  firings_total : int;  (** summed gate firings over all served lanes *)
  eval_seconds : float;  (** time inside batched circuit evaluation *)
  build_seconds : float;  (** time building + packing circuits *)
  cache : cache_stats;  (** the daemon's spec-keyed circuit cache *)
  engine : cache_stats;  (** the process-wide {!Tcmm_threshold.Engine} cache *)
  accepted : int;
      (** run requests admitted to the batcher.  Once the queue is
          empty, [accepted = run_requests + deadline_expired +
          eval_failures] — every admitted request is accounted for. *)
  shed : int;  (** run requests refused with [Overloaded] at the admission gate *)
  deadline_expired : int;  (** admitted requests answered [Deadline_exceeded] *)
  eval_failures : int;  (** admitted requests answered [Error] because evaluation raised *)
  slow_client_drops : int;
      (** connections closed because the peer stopped draining its
          write buffer past the backlog cap *)
  kernel_gates : int;
      (** gates of cache-miss builds evaluating through a
          template-specialized kernel, summed over all builds (v3) *)
  fallback_gates : int;
      (** gates of cache-miss builds on the generic CSR fallback; the
          kernel coverage fraction is
          [kernel_gates / (kernel_gates + fallback_gates)] *)
  store_loads : int;
      (** circuits recovered warm from the artifact store (v4) *)
  store_saves : int;  (** artifacts written behind fresh builds (v4) *)
  store_invalid : int;
      (** artifacts that failed validation and were quarantined (v4) *)
  worker_id : int;
      (** which fleet worker produced this snapshot (v5; zero from an
          older peer).  0 = a standalone daemon or a supervisor-side
          fleet aggregate; workers are numbered from 1. *)
  sessions_opened : int;
      (** streaming sessions ever opened (v6; zero from an older peer) *)
  sessions_active : int;  (** sessions currently resident *)
  sessions_evicted : int;
      (** sessions dropped by the LRU cap before being closed *)
  session_updates : int;  (** [Update] requests applied *)
  session_dirty_gates : int;
      (** gates re-examined by dirty-cone updates, summed; the
          incremental work ratio is
          [session_dirty_gates / session_gates] *)
  session_gates : int;
      (** gates a from-scratch re-evaluation of the same updates would
          have swept (updates x circuit gate count) *)
}

type fleet_worker = {
  fw_id : int;  (** 1-based worker number, stable across restarts *)
  fw_pid : int;
  fw_addr : string;
      (** the worker's own endpoint in {!parse_addr} form — the
          spec-affinity router's shard targets *)
  fw_restarts : int;  (** crash restarts the supervisor performed *)
  fw_alive : bool;  (** false once the restart budget is exhausted *)
}

type session_opened = {
  so_sid : int;  (** server-assigned session id, unique per daemon *)
  so_fires : bool;  (** the circuit's output on the initial input *)
  so_firings : int;
}

type update_result = {
  ur_fires : bool;
  ur_firings : int;
  ur_dirty_gates : int;
      (** gates re-examined by this update's dirty cone *)
  ur_gates : int;
      (** total circuit gates — [ur_dirty_gates / ur_gates] is the
          update's incremental work ratio *)
}

type response =
  | Compiled of compiled
  | Matmul_result of Matrix.t * int  (** result matrix, gate firings *)
  | Trace_result of bool * int  (** [trace(A^3) >= tau], gate firings *)
  | Triangles_result of bool * int  (** at least [tau] triangles?, firings *)
  | Stats_result of Tcmm_threshold.Stats.t
  | Metrics_result of metrics
  | Pong
  | Shutting_down
  | Error of string
  | Overloaded
      (** load shed: the batcher queue is at capacity; retry later.
          Protocol v2. *)
  | Deadline_exceeded
      (** the request's deadline passed before its batch dispatched.
          Protocol v2. *)
  | Fleet_result of fleet_worker list
      (** answer to {!Fleet}: the supervisor's roster, or a singleton
          for a standalone daemon.  Protocol v5. *)
  | Session_opened of session_opened  (** answer to [Open_session].  v6. *)
  | Update_result of update_result  (** answer to [Update].  v6. *)
  | Session_closed  (** answer to [Close_session].  v6. *)
  | Conv_result of int array array array * int
      (** answer to [Run_conv]: [scores.(k).(y).(x)] per kernel, plus
          gate firings.  Bit-identical to {!Tcmm_convnet.Conv.direct}.
          Protocol v7. *)

(** {1 Binary encoding} *)

val encode_request : request -> string
(** Payload only (no length prefix); starts with the version byte. *)

val decode_request : string -> (request, string) result

val encode_response : response -> string
val decode_response : string -> (response, string) result

val frame : string -> string
(** Prepend the 4-byte big-endian length.  Raises [Invalid_argument] on
    a payload longer than {!max_frame_len}. *)

(** {1 Incremental frame extraction}

    The serving daemon reads sockets in arbitrary chunks; a dechunker
    buffers bytes and yields complete payloads. *)

type dechunker

val create_dechunker : unit -> dechunker

val feed : dechunker -> bytes -> int -> int -> unit
(** [feed d src pos len] appends [len] bytes of [src] at [pos]. *)

val next_frame : dechunker -> [ `Frame of string | `More | `Corrupt of string ]
(** [`Frame payload] pops one complete payload; [`More] means the buffer
    holds only a partial frame; [`Corrupt] means the stream carries an
    invalid length prefix (zero or beyond {!max_frame_len}) and must be
    dropped. *)

val buffered : dechunker -> int
(** Bytes currently buffered (partial-frame backlog). *)

(** {1 Blocking frame I/O (client side)} *)

val write_frame : Unix.file_descr -> string -> unit
(** Frame and write the whole payload (loops over short writes). *)

val read_frame : Unix.file_descr -> (string, string) result
(** Read exactly one frame.  [Error] on EOF or a corrupt length. *)

val read_frame_within :
  Unix.file_descr ->
  deadline:float ->
  now:(unit -> float) ->
  (string, [ `Timeout | `Closed of string ]) result
(** Like {!read_frame}, but every blocking read is guarded by a
    [select] against [deadline] (an absolute instant on the caller's
    [now] clock — the client passes {!Tcmm_util.Clock.now}).  A peer
    that stalls mid-frame surfaces as [`Timeout] instead of hanging
    forever; [`Closed] covers EOF and corrupt lengths. *)

(** {1 Addresses} *)

type addr = Unix_socket of string | Tcp of string * int

val parse_addr : string -> (addr, string) result
(** ["HOST:PORT"] parses to [Tcp]; anything else is a Unix socket
    path. *)

val pp_addr : Format.formatter -> addr -> unit

val addr_string : addr -> string
(** Canonical ["HOST:PORT"] / socket-path form — round-trips through
    {!parse_addr} (the tagged {!pp_addr} form does not).  The fleet
    roster carries worker endpoints in this form, and the shard
    router's rendezvous hash is computed over it. *)

val sockaddr_of_addr : addr -> Unix.sockaddr

(** {1 Equality and printing (tests, CLI)} *)

val equal_request : request -> request -> bool
val equal_response : response -> response -> bool
val pp_metrics : Format.formatter -> metrics -> unit
