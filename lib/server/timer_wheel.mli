(** A hashed timer wheel for per-request deadlines.

    Entries hash into [slots] buckets by [deadline / slot_seconds]; one
    {!advance} sweep visits only the slots the cursor crossed since the
    previous sweep (at most one full rotation), so arming and expiring
    [k] timers across an event-loop iteration costs [O(k + slots
    crossed)] instead of a sorted-structure's [O(k log n)].

    Time is whatever clock the caller samples — the serving daemon feeds
    it {!Tcmm_util.Clock.now}, so backward wall-clock steps cannot fire
    deadlines early.  Expiry is quantized to [slot_seconds]: an entry
    fires on the first [advance] whose [now] is past its deadline, at
    most one slot-width late.

    Entries are not cancellable; callers that resolve work before its
    deadline leave the entry to expire and ignore it then (lazy
    cancellation — the daemon marks jobs answered and skips them when
    they surface). *)

type 'a t

val create : ?slot_seconds:float -> ?slots:int -> now:float -> unit -> 'a t
(** Defaults: 5 ms slots, 256 of them (a 1.28 s rotation).  Raises
    [Invalid_argument] on a non-positive slot width or count. *)

val add : 'a t -> deadline:float -> 'a -> unit
(** Arm an entry.  A deadline already in the past fires on the next
    {!advance}.  Raises [Invalid_argument] on a non-finite deadline
    (an infinite deadline means "no timeout" — don't arm one). *)

val advance : 'a t -> now:float -> 'a list
(** Sweep the cursor forward to [now] and return the expired entries,
    oldest slot first. *)

val next_deadline : 'a t -> float option
(** Earliest armed deadline ([None] when empty) — the event loop's
    select timeout.  [O(pending)]; fine for the bounded queues the
    daemon keeps. *)

val pending : 'a t -> int
