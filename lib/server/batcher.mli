(** Request coalescing for batched circuit evaluation.

    Concurrent [run] requests against the same circuit key queue up
    here; the server drains groups of up to [max_lanes] (the 62
    bit-packed lanes of {!Tcmm_threshold.Packed.run_batch}) jobs in one
    batched traversal.  A group is dispatched when it {b fills}
    ({!enqueue} returns the batch), when its {b flush deadline} expires
    ({!due}), or when the server has {b drained its input} and elects to
    flush everything ({!drain}) — the adaptive mode used when
    [flush_ms = 0]. *)

type 'job t

val create : ?max_lanes:int -> ?flush_ms:float -> unit -> 'job t
(** [max_lanes] defaults to 62 (one lane per bit of a packed word) and
    is clamped to [1 .. 62].  [flush_ms] (default [0.]) is the deadline
    a non-full group waits for more lanes before {!due} surrenders it;
    [0.] means the server flushes on input drain instead. *)

val max_lanes : 'job t -> int
val flush_ms : 'job t -> float

val enqueue : 'job t -> key:string -> now:float -> 'job -> 'job list option
(** Append a job to its key's group.  Returns [Some jobs] (in arrival
    order, group removed) when the group just reached [max_lanes]. *)

val due : 'job t -> now:float -> (string * 'job list) list
(** Remove and return the groups whose flush deadline has passed
    (always empty when [flush_ms = 0]). *)

val drain : 'job t -> (string * 'job list) list
(** Remove and return every group (oldest first). *)

val reap : 'job t -> f:('job -> bool) -> 'job list
(** Remove and return every queued job matching [f] (arrival order),
    keeping the rest queued.  The server uses this to pull
    deadline-expired jobs out of waiting groups; a group left empty is
    dropped so its flush deadline stops driving the event loop. *)

val pending : 'job t -> int
(** Total queued jobs across groups. *)

val next_deadline : 'job t -> float option
(** Earliest flush deadline among pending groups ([None] when empty or
    [flush_ms = 0]). *)
