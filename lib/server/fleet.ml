module P = Protocol
module Clock = Tcmm_util.Clock

let src = Logs.Src.create "tcmm.fleet" ~doc:"tcmm serving fleet supervisor"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  server : Server.config;
  workers : int;
  reuseport : bool;
  control : P.addr option;
  restart_limit : int;
  restart_window_s : float;
}

let default_config server =
  {
    server;
    workers = 2;
    reuseport = false;
    control = None;
    restart_limit = 5;
    restart_window_s = 30.;
  }

type worker = {
  id : int;
  endpoint : P.addr;
  endpoint_fd : Unix.file_descr;
      (* supervisor-held listening socket for the worker's spec-affinity
         endpoint; kept open across crashes so a restarted worker
         re-inherits the same port and no client ever sees the shard
         endpoint vanish *)
  front_fd : Unix.file_descr;
      (* the front socket this worker accepts on: the single shared
         inherited socket, or its own SO_REUSEPORT one *)
  mutable pid : int;
  mutable restarts : int;
  mutable restart_times : float list;
  mutable alive : bool;
}

type handle = {
  cfg : config;
  front_fds : Unix.file_descr list;
  front_addr : P.addr;
  control_fd : Unix.file_descr;
  control_addr : P.addr;
  workers : worker array;
}

let tcp_host = function
  | P.Tcp (host, _) -> host
  | P.Unix_socket _ ->
      invalid_arg "Fleet: front address must be TCP (host:port)"

(* ------------------------------------------------------------------ *)
(* Binding                                                            *)
(* ------------------------------------------------------------------ *)

let bind_reuseport_front ~host ~port ~workers =
  let bind_one addr =
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.setsockopt fd Unix.SO_REUSEPORT true;
       Unix.bind fd (P.sockaddr_of_addr addr);
       Unix.listen fd 64;
       Unix.set_nonblock fd
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  in
  (* Bind the first socket (possibly port 0), recover the kernel port,
     then bind the siblings to the concrete port so the kernel hashes
     incoming connections across all of them. *)
  let first = bind_one (P.Tcp (host, port)) in
  let bound_port =
    match Unix.getsockname first with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let rest =
    List.init (workers - 1) (fun _ -> bind_one (P.Tcp (host, bound_port)))
  in
  (first :: rest, P.Tcp (host, bound_port))

let bind (cfg : config) =
  if cfg.workers < 1 then invalid_arg "Fleet.bind: workers < 1";
  let host = tcp_host cfg.server.Server.addr in
  let front_fds, front_addr =
    if cfg.reuseport then
      let port =
        match cfg.server.Server.addr with P.Tcp (_, p) -> p | _ -> 0
      in
      bind_reuseport_front ~host ~port ~workers:cfg.workers
    else
      let fd, addr = Server.bind cfg.server in
      ([ fd ], addr)
  in
  let cleanup fds =
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) fds
  in
  try
    let control_addr =
      match cfg.control with Some a -> a | None -> P.Tcp (host, 0)
    in
    let control_fd, control_addr =
      Server.bind { cfg.server with Server.addr = control_addr }
    in
    (try
       let workers =
         Array.init cfg.workers (fun i ->
             let endpoint_fd, endpoint =
               Server.bind { cfg.server with Server.addr = P.Tcp (host, 0) }
             in
             let front_fd =
               if cfg.reuseport then List.nth front_fds i
               else List.hd front_fds
             in
             {
               id = i + 1;
               endpoint;
               endpoint_fd;
               front_fd;
               pid = 0;
               restarts = 0;
               restart_times = [];
               alive = true;
             })
       in
       { cfg; front_fds; front_addr; control_fd; control_addr; workers }
     with e ->
       cleanup [ control_fd ];
       raise e)
  with e ->
    cleanup front_fds;
    raise e

let front_addr (handle : handle) = handle.front_addr
let control_addr (handle : handle) = handle.control_addr

let roster (handle : handle) =
  Array.to_list
    (Array.map
       (fun w ->
         {
           P.fw_id = w.id;
           fw_pid = w.pid;
           fw_addr = P.addr_string w.endpoint;
           fw_restarts = w.restarts;
           fw_alive = w.alive;
         })
       handle.workers)

let endpoints (handle : handle) =
  Array.to_list (Array.map (fun w -> w.endpoint) handle.workers)

let close_handle (handle : handle) =
  let close fd = try Unix.close fd with Unix.Unix_error _ -> () in
  List.iter close handle.front_fds;
  close handle.control_fd;
  Array.iter (fun w -> close w.endpoint_fd) handle.workers

(* ------------------------------------------------------------------ *)
(* Metrics aggregation                                                *)
(* ------------------------------------------------------------------ *)

let add_cache (a : P.cache_stats) (b : P.cache_stats) =
  {
    P.hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    evictions = a.evictions + b.evictions;
    size = a.size + b.size;
    capacity = a.capacity + b.capacity;
  }

let add_histogram (a : P.histogram) (b : P.histogram) =
  if a.P.bounds <> b.P.bounds || Array.length a.counts <> Array.length b.counts
  then if a.count >= b.count then a else b
  else
    {
      a with
      P.counts = Array.map2 ( + ) a.counts b.counts;
      sum = a.sum +. b.sum;
      count = a.count + b.count;
    }

let add_occupancy a b =
  let n = max (Array.length a) (Array.length b) in
  Array.init n (fun i ->
      (if i < Array.length a then a.(i) else 0)
      + if i < Array.length b then b.(i) else 0)

let add_metrics (a : P.metrics) (b : P.metrics) =
  {
    P.uptime_seconds = Float.max a.uptime_seconds b.uptime_seconds;
    connections_accepted = a.connections_accepted + b.connections_accepted;
    connections_active = a.connections_active + b.connections_active;
    requests_total = a.requests_total + b.requests_total;
    run_requests = a.run_requests + b.run_requests;
    errors = a.errors + b.errors;
    batches = a.batches + b.batches;
    lanes = a.lanes + b.lanes;
    max_lanes = max a.max_lanes b.max_lanes;
    occupancy = add_occupancy a.occupancy b.occupancy;
    latency_ms = add_histogram a.latency_ms b.latency_ms;
    firings_total = a.firings_total + b.firings_total;
    eval_seconds = a.eval_seconds +. b.eval_seconds;
    build_seconds = a.build_seconds +. b.build_seconds;
    cache = add_cache a.cache b.cache;
    engine = add_cache a.engine b.engine;
    accepted = a.accepted + b.accepted;
    shed = a.shed + b.shed;
    deadline_expired = a.deadline_expired + b.deadline_expired;
    eval_failures = a.eval_failures + b.eval_failures;
    slow_client_drops = a.slow_client_drops + b.slow_client_drops;
    kernel_gates = a.kernel_gates + b.kernel_gates;
    fallback_gates = a.fallback_gates + b.fallback_gates;
    store_loads = a.store_loads + b.store_loads;
    store_saves = a.store_saves + b.store_saves;
    store_invalid = a.store_invalid + b.store_invalid;
    worker_id = 0;
    sessions_opened = a.sessions_opened + b.sessions_opened;
    sessions_active = a.sessions_active + b.sessions_active;
    sessions_evicted = a.sessions_evicted + b.sessions_evicted;
    session_updates = a.session_updates + b.session_updates;
    session_dirty_gates = a.session_dirty_gates + b.session_dirty_gates;
    session_gates = a.session_gates + b.session_gates;
  }

let aggregate = function
  | [] -> None
  | m :: rest -> Some { (List.fold_left add_metrics m rest) with P.worker_id = 0 }

(* ------------------------------------------------------------------ *)
(* Forking workers                                                    *)
(* ------------------------------------------------------------------ *)

(* Fleet-wide counters the supervisor folds into its own log lines. *)
type stats = { mutable forks : int; mutable crash_restarts : int }

let worker_policy =
  (* Control-plane fan-out: short deadline, one retry — a dead worker
     must not stall a [Metrics] aggregation behind a long backoff. *)
  {
    Client.attempts = 2;
    timeout_ms = 2000.;
    base_delay_ms = 10.;
    max_delay_ms = 50.;
  }

let fork_worker ~extra_fds handle stats w =
  stats.forks <- stats.forks + 1;
  match Unix.fork () with
  | 0 ->
      (* Child: keep only this worker's two listening sockets; close
         the supervisor's control plane, any open control connections,
         and every sibling's sockets — cloexec does not help across
         [fork], and a crashed sibling's endpoint must not stay half
         alive inside us. *)
      let keep fd = fd = w.front_fd || fd = w.endpoint_fd in
      let close fd =
        if not (keep fd) then try Unix.close fd with Unix.Unix_error _ -> ()
      in
      close handle.control_fd;
      List.iter close extra_fds;
      List.iter close handle.front_fds;
      Array.iter
        (fun w' -> if w'.id <> w.id then close w'.endpoint_fd)
        handle.workers;
      let code =
        try
          Server.serve_fds
            {
              handle.cfg.server with
              Server.addr = w.endpoint;
              worker_id = w.id;
            }
            [ w.front_fd; w.endpoint_fd ];
          0
        with e ->
          Log.err (fun m ->
              m "worker %d died: %s" w.id (Printexc.to_string e));
          1
      in
      Stdlib.exit code
  | pid ->
      w.pid <- pid;
      Log.info (fun m ->
          m "worker %d: pid %d serving %a" w.id pid P.pp_addr w.endpoint)

(* ------------------------------------------------------------------ *)
(* Supervision                                                        *)
(* ------------------------------------------------------------------ *)

type conn = { fd : Unix.file_descr; dec : P.dechunker }

type sup = {
  handle : handle;
  stats : stats;
  mutable conns : conn list;
  mutable stopping : bool;
}

let close_conn sup c =
  sup.conns <- List.filter (fun c' -> c'.fd != c.fd) sup.conns;
  try Unix.close c.fd with Unix.Unix_error _ -> ()

let conn_fds sup = List.map (fun c -> c.fd) sup.conns

(* Restart policy: a worker that crashed more than [restart_limit]
   times inside [restart_window_s] stays down ([fw_alive = false] in
   the roster) — a deterministic crash loop must not melt the machine.
   Restarts are warm: the artifact store (shared dir) and the
   supervisor-held listening sockets survive the corpse. *)
let restart_allowed cfg w ~now =
  w.restart_times <-
    List.filter (fun t -> now -. t <= cfg.restart_window_s) w.restart_times;
  List.length w.restart_times < cfg.restart_limit

let reap_and_restart sup =
  let handle = sup.handle in
  Array.iter
    (fun w ->
      if w.alive && w.pid > 0 then
        match Unix.waitpid [ Unix.WNOHANG ] w.pid with
        | 0, _ -> ()
        | _, status ->
            let now = Clock.now () in
            Log.warn (fun m ->
                m "worker %d (pid %d) exited %s" w.id w.pid
                  (match status with
                  | Unix.WEXITED c -> Printf.sprintf "with code %d" c
                  | Unix.WSIGNALED s -> Printf.sprintf "on signal %d" s
                  | Unix.WSTOPPED s -> Printf.sprintf "stopped by %d" s));
            w.pid <- 0;
            if sup.stopping then ()
            else if restart_allowed handle.cfg w ~now then (
              w.restart_times <- now :: w.restart_times;
              w.restarts <- w.restarts + 1;
              sup.stats.crash_restarts <- sup.stats.crash_restarts + 1;
              fork_worker ~extra_fds:(conn_fds sup) handle sup.stats w)
            else (
              w.alive <- false;
              Log.err (fun m ->
                  m "worker %d: restart budget exhausted (%d in %gs), leaving down"
                    w.id handle.cfg.restart_limit handle.cfg.restart_window_s))
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> w.pid <- 0)
    handle.workers

let live_pids (handle : handle) =
  Array.to_list handle.workers
  |> List.filter_map (fun w -> if w.pid > 0 then Some w else None)

(* Fleet-wide graceful drain: forward SIGTERM so every worker runs its
   own drain (stop admitting, serve what's queued, answer, exit), wait
   out the worker grace period plus slack, then SIGKILL stragglers so
   the supervisor itself always terminates. *)
let drain sup =
  let handle = sup.handle in
  sup.stopping <- true;
  let victims = live_pids handle in
  Log.info (fun m ->
      m "draining fleet: SIGTERM to %d worker(s)" (List.length victims));
  List.iter
    (fun w ->
      try Unix.kill w.pid Sys.sigterm with Unix.Unix_error _ -> ())
    victims;
  let deadline = Clock.now () +. handle.cfg.server.Server.grace_s +. 2. in
  let rec wait () =
    let remaining = live_pids handle in
    if remaining = [] then ()
    else if Clock.now () > deadline then (
      List.iter
        (fun w ->
          Log.warn (fun m -> m "worker %d: grace expired, SIGKILL" w.id);
          (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] w.pid)
           with Unix.Unix_error _ -> ());
          w.pid <- 0)
        remaining)
    else (
      reap_and_restart sup;
      if live_pids handle <> [] then Unix.sleepf 0.02;
      wait ())
  in
  wait ()

let fleet_metrics (handle : handle) =
  let live =
    Array.to_list handle.workers
    |> List.filter_map (fun w ->
           if not w.alive then None
           else
             match
               Client.call ~policy:worker_policy ~seed:w.id w.endpoint
                 P.Metrics
             with
             | Ok (P.Metrics_result m) -> Some m
             | Ok _ | Error _ -> None)
  in
  aggregate live

let handle_control_request sup req =
  match req with
  | P.Ping -> Some P.Pong
  | P.Fleet -> Some (P.Fleet_result (roster sup.handle))
  | P.Metrics -> (
      match fleet_metrics sup.handle with
      | Some m -> Some (P.Metrics_result m)
      | None -> Some (P.Error "fleet: no worker answered metrics"))
  | P.Shutdown ->
      sup.stopping <- true;
      Some P.Shutting_down
  | _ ->
      Some
        (P.Error
           "fleet control socket: only ping / fleet / metrics / shutdown")

let pump_conn sup buf c =
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn sup c
  | 0 -> close_conn sup c
  | n ->
      P.feed c.dec buf 0 n;
      let rec frames () =
        match P.next_frame c.dec with
        | `More -> ()
        | `Corrupt msg ->
            Log.warn (fun m -> m "control connection: %s" msg);
            close_conn sup c
        | `Frame payload ->
            (match P.decode_request payload with
            | Error msg ->
                (try
                   P.write_frame c.fd (P.encode_response (P.Error msg))
                 with _ -> close_conn sup c)
            | Ok req -> (
                match handle_control_request sup req with
                | None -> ()
                | Some resp -> (
                    try P.write_frame c.fd (P.encode_response resp)
                    with _ -> close_conn sup c)));
            if List.memq c sup.conns then frames ()
      in
      frames ()

let term_flag = ref false

let supervise (handle : handle) =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  term_flag := false;
  let prev_term =
    try
      Some
        (Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> term_flag := true)))
    with Invalid_argument _ -> None
  in
  let sup =
    {
      handle;
      stats = { forks = 0; crash_restarts = 0 };
      conns = [];
      stopping = false;
    }
  in
  let buf = Bytes.create 65536 in
  Log.info (fun m ->
      m "fleet: %d worker(s) on %a (%s front, control %a)"
        handle.cfg.workers P.pp_addr handle.front_addr
        (if handle.cfg.reuseport then "SO_REUSEPORT" else "inherited-socket")
        P.pp_addr handle.control_addr);
  Fun.protect
    ~finally:(fun () ->
      (match prev_term with
      | Some b -> (
          try Sys.set_signal Sys.sigterm b with Invalid_argument _ -> ())
      | None -> ());
      List.iter (fun c -> close_conn sup c) sup.conns;
      close_handle handle;
      Log.info (fun m ->
          m "fleet stopped (%d fork(s), %d crash restart(s))" sup.stats.forks
            sup.stats.crash_restarts))
    (fun () ->
      Array.iter
        (fun w -> fork_worker ~extra_fds:[] handle sup.stats w)
        handle.workers;
      while not sup.stopping do
        if !term_flag then sup.stopping <- true
        else begin
          reap_and_restart sup;
          let reads = handle.control_fd :: conn_fds sup in
          (match Unix.select reads [] [] 0.05 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | r, _, _ ->
              if List.mem handle.control_fd r then
                (let rec accept_all () =
                   match Unix.accept ~cloexec:true handle.control_fd with
                   | exception
                       Unix.Unix_error
                         ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
                     ->
                       ()
                   | fd, _ ->
                       Unix.set_nonblock fd;
                       sup.conns <-
                         { fd; dec = P.create_dechunker () } :: sup.conns;
                       accept_all ()
                 in
                 accept_all ());
              List.iter
                (fun c -> if List.mem c.fd r then pump_conn sup buf c)
                sup.conns)
        end
      done;
      drain sup)

let run cfg = supervise (bind cfg)
