type 'a entry = { deadline : float; item : 'a }

type 'a t = {
  slot_seconds : float;
  slots : 'a entry list array;
  mutable tick : int;  (* last tick already swept by [advance] *)
  mutable count : int;
}

let tick_of t time = int_of_float (time /. t.slot_seconds)

let create ?(slot_seconds = 0.005) ?(slots = 256) ~now () =
  if slot_seconds <= 0. then invalid_arg "Timer_wheel.create: slot_seconds <= 0";
  if slots < 1 then invalid_arg "Timer_wheel.create: slots < 1";
  let t = { slot_seconds; slots = Array.make slots []; tick = 0; count = 0 } in
  t.tick <- tick_of t now;
  t

let pending t = t.count

let add t ~deadline item =
  if deadline <> deadline (* nan *) || deadline = infinity then
    invalid_arg "Timer_wheel.add: deadline must be finite";
  (* Clamp behind-the-cursor deadlines to the next sweep: an entry armed
     in the past still fires, at most one slot late. *)
  let tk = max (tick_of t deadline) (t.tick + 1) in
  let slot = tk mod Array.length t.slots in
  t.slots.(slot) <- { deadline; item } :: t.slots.(slot);
  t.count <- t.count + 1

let advance t ~now =
  let target = tick_of t now in
  if target <= t.tick || t.count = 0 then begin
    t.tick <- max t.tick target;
    []
  end
  else begin
    let n = Array.length t.slots in
    (* Sweeping more than a full rotation visits every slot anyway. *)
    let steps = min (target - t.tick) n in
    let expired = ref [] in
    for i = 1 to steps do
      let slot = (t.tick + i) mod n in
      let keep =
        List.filter
          (fun e ->
            if e.deadline <= now then begin
              expired := e.item :: !expired;
              t.count <- t.count - 1;
              false
            end
            else true)
          t.slots.(slot)
      in
      t.slots.(slot) <- keep
    done;
    t.tick <- target;
    List.rev !expired
  end

let next_deadline t =
  if t.count = 0 then None
  else
    Array.fold_left
      (fun acc entries ->
        List.fold_left
          (fun acc e ->
            match acc with
            | None -> Some e.deadline
            | Some d -> Some (min d e.deadline))
          acc entries)
      None t.slots
