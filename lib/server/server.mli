(** The `tcmm serve` daemon: a single-process event loop serving
    compiled threshold circuits over Unix or TCP sockets.

    Requests arrive as {!Protocol} frames.  [compile] / [stats] answer
    synchronously from the spec-keyed {!Circuit_cache}; [run] requests
    are encoded to input vectors immediately but answered through the
    coalescing {!Batcher} — concurrent (or pipelined) runs against the
    same circuit are evaluated together by
    {!Tcmm_threshold.Packed.run_batch}, up to 62 bit-packed lanes per
    traversal, which is where serving throughput beats
    one-request-per-run (the E18 bench quantifies it).

    Dispatch policy: a batch launches when it fills ([max_lanes]
    lanes), when its flush deadline expires ([flush_ms > 0]), or — in
    the default adaptive mode ([flush_ms = 0]) — as soon as the event
    loop finds no more input to read, so an idle single client never
    waits on a timer while a pipelined burst still coalesces. *)

type config = {
  addr : Protocol.addr;
  cache_capacity : int;  (** circuit-cache entries kept resident *)
  flush_ms : float;  (** batch flush deadline; [0.] = adaptive (see above) *)
  max_lanes : int;  (** lanes per batch, clamped to [1 .. 62] *)
  domains : int;  (** level-parallel evaluation domains ([1] = sequential) *)
  templates : bool;
      (** build cache misses through the template-stamped [Direct] path
          (default); [false] restores the legacy builder *)
  profile_build : bool;
      (** log the per-miss construct / lower phase breakdown at [App]
          level (always available at [Info]) *)
}

val default_config : Protocol.addr -> config
(** capacity 8, adaptive flush, 62 lanes, 1 domain, templates on,
    profiling off. *)

val serve : config -> unit
(** Bind, listen and serve until a [Shutdown] request arrives; then
    flush pending batches and replies (bounded grace period) and
    return.  An existing Unix socket file at the address is replaced.
    Raises [Unix.Unix_error] when binding fails. *)
