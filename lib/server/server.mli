(** The `tcmm serve` daemon: a single-process event loop serving
    compiled threshold circuits over Unix or TCP sockets.

    Requests arrive as {!Protocol} frames.  [compile] / [stats] answer
    synchronously from the spec-keyed {!Circuit_cache}; [run] requests
    are encoded to input vectors immediately but answered through the
    coalescing {!Batcher} — concurrent (or pipelined) runs against the
    same circuit are evaluated together by
    {!Tcmm_threshold.Packed.run_batch}, up to 62 bit-packed lanes per
    traversal, which is where serving throughput beats
    one-request-per-run (the E18 bench quantifies it).

    Dispatch policy: a batch launches when it fills ([max_lanes]
    lanes), when its flush deadline expires ([flush_ms > 0]), or — in
    the default adaptive mode ([flush_ms = 0]) — as soon as the event
    loop finds no more input to read, so an idle single client never
    waits on a timer while a pipelined burst still coalesces.

    {2 Robustness}

    Overload and failure are answered, never dropped:
    - {b Load shedding}: with [max_pending > 0], a run request arriving
      at a full queue is refused with [Overloaded] in constant time.
    - {b Deadlines}: with [deadline_ms > 0], each admitted run is armed
      on a {!Timer_wheel}; a job still queued past its deadline is
      answered [Deadline_exceeded] and reaped from the batcher.
    - {b Slow clients}: a peer that stops draining its replies past
      [max_backlog] buffered bytes is disconnected (counted in
      metrics), so one stalled reader cannot hold the daemon's memory.
    - {b Supervised evaluation}: an exception escaping a batched
      evaluation fails that batch's lanes with [Error] replies; the
      daemon keeps serving.
    - {b Graceful drain}: a [Shutdown] request or SIGTERM stops
      admitting connections but keeps serving what existing
      connections already sent, then exits once quiescent (queue
      empty, replies flushed, no read activity) or after [grace_s].
      Final metrics satisfy
      [accepted = completed + deadline_expired + eval_failures]. *)

type config = {
  addr : Protocol.addr;
  cache_capacity : int;  (** circuit-cache entries kept resident *)
  flush_ms : float;  (** batch flush deadline; [0.] = adaptive (see above) *)
  max_lanes : int;  (** lanes per batch, clamped to [1 .. 62] *)
  domains : int;  (** level-parallel evaluation domains ([1] = sequential) *)
  templates : bool;
      (** build cache misses through the template-stamped [Direct] path
          (default); [false] restores the legacy builder *)
  kernels : bool;
      (** dispatch template segments to their specialized batch
          evaluators (default); [false] is the [--no-kernels] escape
          hatch — the generic CSR loop everywhere, bit-identical
          replies, only slower.  Per-build kernel coverage feeds the
          [metrics] response ([kernel_gates] / [fallback_gates]). *)
  profile_build : bool;
      (** log the per-miss construct / lower phase breakdown at [App]
          level (always available at [Info]) *)
  profile_eval : bool;
      (** accumulate a per-circuit {!Tcmm_threshold.Packed.eval_profile}
          across dispatches and log each circuit's per-level summary at
          [App] level when the daemon drains *)
  max_pending : int;
      (** queued-run cap before shedding with [Overloaded]; [0] =
          unbounded (default) *)
  deadline_ms : float;
      (** per-request deadline from admission to dispatch; [0.] = none
          (default) *)
  grace_s : float;  (** drain grace period after [Shutdown] / SIGTERM *)
  max_backlog : int;
      (** per-connection write-buffer cap in bytes before the peer is
          dropped as a slow client *)
  store : string option;
      (** artifact directory for the persistent circuit tier
          ({!Tcmm_store.Store}): cache misses read through it before
          building and fresh builds are persisted behind; [None]
          (default) disables the tier.  An unopenable directory logs an
          error and serves without the store. *)
  worker_id : int;
      (** fleet identity stamped into protocol v5 metrics; [0]
          (default) = standalone, {!Fleet} workers are numbered from
          1.  Purely informational for a standalone daemon. *)
  max_sessions : int;
      (** resident streaming-session cap (protocol v6); opening a
          session past it evicts the least-recently-updated one
          (counted in [metrics.sessions_evicted]).  Each session pins a
          full wire-value image plus per-gate cached sums, hence the
          cap.  Clamped to at least 1. *)
}

val default_config : Protocol.addr -> config
(** capacity 8, adaptive flush, 62 lanes, 1 domain, templates and
    kernels on, profiling off, no pending cap, no deadline, 5 s grace,
    64 MiB backlog cap, no artifact store, worker id 0, 16 sessions. *)

val bind : config -> Unix.file_descr * Protocol.addr
(** Create, bind and listen the server socket without serving.  The
    returned address is the {e actual} bound address: binding
    [Tcp (host, 0)] resolves the kernel-assigned ephemeral port, which
    is how tests and harnesses avoid fixed-port collisions — bind in
    the parent, pass the address to the client, serve the fd in the
    child.  An existing Unix socket file at the address is replaced.
    Raises [Unix.Unix_error] when binding fails. *)

val serve_fd : config -> Unix.file_descr -> unit
(** Serve an already-bound listening socket (from {!bind}) until
    drained; [config.addr] should be the address {!bind} returned (it
    is logged and, for Unix sockets, unlinked on exit).  Installs a
    SIGTERM handler for the duration (restored on exit). *)

val serve_fds : config -> Unix.file_descr list -> unit
(** Like {!serve_fd} but accepting on several listening sockets at
    once — a fleet worker serves both the supervisor's shared front
    socket (inherited across [fork], kernel-balanced accepts) and its
    own spec-affinity endpoint.  All sockets close on exit.  Raises
    [Invalid_argument] on an empty list. *)

val serve : config -> unit
(** [bind] then [serve_fd]. *)
