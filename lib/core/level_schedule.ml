module Ilog = Tcmm_util.Ilog

type t = { levels : int array; description : string }

let steps t = Array.length t.levels - 1
let levels t = Array.copy t.levels
let final_level t = t.levels.(Array.length t.levels - 1)
let standard_names = [ "uniform-2"; "direct"; "thm44"; "thm45" ]

let height ~t_dim ~n = Ilog.exact_log ~base:t_dim n

let of_levels ~description levels =
  if Array.length levels = 0 || levels.(0) <> 0 then
    invalid_arg "Level_schedule.of_levels: must start at level 0";
  for i = 1 to Array.length levels - 1 do
    if levels.(i) <= levels.(i - 1) then
      invalid_arg "Level_schedule.of_levels: levels must be strictly increasing"
  done;
  { levels; description }

let full ~l =
  if l < 1 then invalid_arg "Level_schedule.full: l < 1";
  of_levels ~description:"full" (Array.init (l + 1) Fun.id)

let direct ~l =
  if l < 1 then invalid_arg "Level_schedule.direct: l < 1";
  of_levels ~description:"direct" [| 0; l |]

let uniform ~steps ~l =
  if l < 1 then invalid_arg "Level_schedule.uniform: l < 1";
  if steps < 1 then invalid_arg "Level_schedule.uniform: steps < 1";
  let steps = min steps l in
  (* h_i = ceil (i*l/steps); deduplicate in case of rounding collisions. *)
  let levels = Array.init (steps + 1) (fun i -> ((i * l) + steps - 1) / steps) in
  let levels = Array.of_list (List.sort_uniq compare (Array.to_list levels)) in
  of_levels ~description:(Printf.sprintf "uniform-%d" steps) levels

let geometric ~gamma ~rho ~l =
  if l < 1 then invalid_arg "Level_schedule.geometric: l < 1";
  if gamma < 0. || gamma >= 1. then
    invalid_arg "Level_schedule.geometric: need 0 <= gamma < 1";
  if rho <= 0. then invalid_arg "Level_schedule.geometric: rho <= 0";
  let rec collect acc gpow =
    let gpow' = gpow *. gamma in
    let h = int_of_float (ceil ((1. -. gpow') *. rho)) in
    let h = min h l in
    let prev = match acc with [] -> 0 | x :: _ -> x in
    if h >= l then List.rev (l :: acc)
    else if h <= prev then
      (* The ceiling stalled before reaching l (rho too small or gamma = 0):
         finish with a direct jump. *)
      List.rev (l :: acc)
    else collect (h :: acc) gpow'
  in
  let levels = 0 :: collect [] 1. in
  of_levels
    ~description:(Printf.sprintf "geometric(g=%.3f,rho=%.2f)" gamma rho)
    (Array.of_list levels)

let theorem44 ~gamma ~t_dim ~n =
  let l = height ~t_dim ~n in
  geometric ~gamma ~rho:(float_of_int l) ~l
  |> fun t -> { t with description = "thm4.4" }

let theorem45 ~profile ~d ~n =
  if d < 1 then invalid_arg "Level_schedule.theorem45: d < 1";
  let open Tcmm_fastmm.Sparsity in
  let algo = profile.algo in
  let t_dim = algo.Tcmm_fastmm.Bilinear.t_dim in
  let l = height ~t_dim ~n in
  let gamma = profile.overall.gamma in
  let ab = profile.overall.alpha *. profile.overall.beta in
  (* rho = log_T N + eps * log_{alpha beta} N,
     eps = gamma^d * log_T(alpha beta) / (1 - gamma).
     log_{alpha beta} N = l * log_T N-to-base conversion: ln N / ln(ab). *)
  let ln_n = float_of_int l *. log (float_of_int t_dim) in
  let eps =
    if gamma = 0. then 0.
    else (gamma ** float_of_int d) *. log ab /. log (float_of_int t_dim) /. (1. -. gamma)
  in
  let rho = float_of_int l +. (eps *. ln_n /. log ab) in
  let sched = geometric ~gamma ~rho ~l in
  (* The theorem guarantees at most d steps; if rounding produced more,
     merge the tail into a final jump to L. *)
  let levels = sched.levels in
  let levels =
    if Array.length levels - 1 <= d then levels
    else Array.append (Array.sub levels 0 d) [| l |]
  in
  of_levels ~description:(Printf.sprintf "thm4.5(d=%d)" d) levels

let resolve ~algo ~name ~d ~n =
  let t_dim = algo.Tcmm_fastmm.Bilinear.t_dim in
  let l = height ~t_dim ~n in
  match name with
  | "thm45" ->
      let profile = Tcmm_fastmm.Sparsity.analyze algo in
      theorem45 ~profile ~d ~n
  | "thm44" ->
      let profile = Tcmm_fastmm.Sparsity.analyze algo in
      theorem44 ~gamma:profile.Tcmm_fastmm.Sparsity.overall.Tcmm_fastmm.Sparsity.gamma
        ~t_dim ~n
  | "full" -> full ~l
  | "direct" -> direct ~l
  | s when String.length s > 8 && String.sub s 0 8 = "uniform-" -> (
      match int_of_string_opt (String.sub s 8 (String.length s - 8)) with
      | Some steps -> uniform ~steps ~l
      | None ->
          invalid_arg
            (Printf.sprintf "Level_schedule.resolve: malformed schedule %S" s))
  | s ->
      invalid_arg
        (Printf.sprintf
           "Level_schedule.resolve: unknown schedule %S (thm44, thm45, full, \
            direct, or uniform-K)"
           s)

let pp ppf t =
  Format.fprintf ppf "%s:[%a]" t.description
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (Array.to_list t.levels)
