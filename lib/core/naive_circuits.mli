(** The cubic-size baselines the paper sets out to beat (Section 1).

    - {!triangle_threshold}: the paper's introductory depth-2 circuit for
      "does [G] have at least [tau] triangles?" — one AND gate per vertex
      triple and one output gate, [(N choose 3) + 1] gates total.
    - {!trace_threshold}: the same idea for general integer matrices:
      [trace(A^3) = sum_{i,j,k} A_ij A_jk A_ki] via Lemma 3.3 products
      feeding one comparison gate, [Theta(N^3)] gates at depth 2.
    - {!matmul}: definitional matrix product — entry products (depth 1)
      and one Lemma 3.2 sum per output entry (depth 2), [Theta(N^3)]
      gates at depth 3. *)

open Tcmm_threshold
open Tcmm_arith

type triangle_built = {
  builder : Builder.t;
  circuit : Circuit.t option;
  output : Wire.t;
  n : int;
  tau : int;
  cache : Engine.cache;
}

val triangle_threshold : ?mode:Builder.mode -> n:int -> tau:int -> unit -> triangle_built
(** Inputs: [x_ij] for [i < j] in lexicographic order ([N*(N-1)/2]
    wires). *)

val triangle_encode : triangle_built -> Tcmm_fastmm.Matrix.t -> bool array
(** Encodes a symmetric 0/1 adjacency matrix with zero diagonal; raises
    [Invalid_argument] otherwise. *)

val triangle_run :
  ?engine:Simulator.engine -> ?domains:int -> triangle_built -> Tcmm_fastmm.Matrix.t -> bool

type trace_built = {
  builder : Builder.t;
  circuit : Circuit.t option;
  output : Wire.t;
  trace_repr : Repr.signed;
  layout : Encode.t;
  tau : int;
  cache : Engine.cache;
}

val trace_threshold :
  ?mode:Builder.mode ->
  ?templates:bool ->
  ?signed_inputs:bool ->
  entry_bits:int ->
  tau:int ->
  n:int ->
  unit ->
  trace_built

val trace_run :
  ?engine:Simulator.engine -> ?domains:int -> trace_built -> Tcmm_fastmm.Matrix.t -> bool

val trace_value :
  ?engine:Simulator.engine -> ?domains:int -> trace_built -> Tcmm_fastmm.Matrix.t -> int

type matmul_built = {
  builder : Builder.t;
  circuit : Circuit.t option;
  layout_a : Encode.t;
  layout_b : Encode.t;
  c_grid : Repr.signed_bits array array;
  cache : Engine.cache;
}

val matmul :
  ?mode:Builder.mode ->
  ?templates:bool ->
  ?signed_inputs:bool ->
  entry_bits:int ->
  n:int ->
  unit ->
  matmul_built

val matmul_run :
  ?engine:Simulator.engine ->
  ?domains:int ->
  matmul_built ->
  a:Tcmm_fastmm.Matrix.t ->
  b:Tcmm_fastmm.Matrix.t ->
  Tcmm_fastmm.Matrix.t

(** {1 Closed-form statistics}

    The naive circuits are regular enough that their exact gate/edge
    counts follow from arithmetic; the benches use these for baselines at
    sizes where even a count-only build would be wasteful.  Each is
    checked against count-only builds in the test suite. *)

val triangle_counts : n:int -> int * int
(** [(gates, edges)] of {!triangle_threshold}: [(n choose 3) + 1] gates. *)

val trace_counts : ?signed_inputs:bool -> entry_bits:int -> n:int -> unit -> int * int
(** [(gates, edges)] of {!trace_threshold}. *)

val matmul_counts : ?signed_inputs:bool -> entry_bits:int -> n:int -> unit -> int * int
(** [(gates, edges)] of {!matmul}. *)
