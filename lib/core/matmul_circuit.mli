(** The subcubic matrix-product circuit (Theorems 4.8 and 4.9).

    Computes all bits of [C = A * B] for [n x n] integer matrices:

    + sum trees [T_A] and [T_B] compute the [r^L] leaf scalars of each
      operand (depth [2 * steps], in parallel);
    + Lemma 3.3 multiplies corresponding leaves (depth 1);
    + the bottom-up tree [T_AB] recombines products into [C]
      (depth [2 * steps]).

    Total depth [4 * steps + 1], matching Theorem 4.9's [4d + 1] when the
    schedule is Theorem 4.5's with parameter [d]. *)

open Tcmm_threshold
open Tcmm_arith

type built = {
  builder : Builder.t;
  circuit : Circuit.t option;  (** [Some] only in [Materialize] mode *)
  mutable packed : Packed.t option;  (** memoized {!pack} result *)
  layout_a : Encode.t;
  layout_b : Encode.t;
  c_grid : Repr.signed_bits array array;  (** binary entries of [C] *)
  schedule : Level_schedule.t;
  cache : Engine.cache;  (** memoized packed compilation of [circuit] *)
}

val build :
  ?mode:Builder.mode ->
  ?templates:bool ->
  ?signed_inputs:bool ->
  ?share_top:bool ->
  ?kronpow:bool ->
  algo:Tcmm_fastmm.Bilinear.t ->
  schedule:Level_schedule.t ->
  entry_bits:int ->
  n:int ->
  unit ->
  built
(** All wires of every [C] entry are marked as circuit outputs.
    [templates] (default [true]) stamps repeated block shapes through
    the {!Builder.templated} cache instead of re-deriving their gates;
    the resulting circuit is gate-for-gate identical.  In
    [Builder.Direct] mode no [Circuit.t] is materialized — the arena
    lowers straight to the packed form on first {!pack}/{!run}.
    [kronpow] (default [false]) applies the {!Tcmm_fastmm.Kronpow}
    factoring to the U/V sum trees (see
    {!Sum_tree.compute_leaves}) — value-equal outputs, never more
    gates+edges, but not wire-identical and up to 2 extra depth per
    multi-level step.  The W-side {!Combine_tree} is left flat. *)

val pack :
  ?pool:Packed.Pool.t -> ?domains:int -> ?kernels:bool -> built -> Packed.t
(** The compiled evaluator form, memoized on [built]: the engine-cache
    compilation of [circuit] in [Materialize] mode, a direct
    {!Packed.of_arena} lowering in [Direct] mode ([pool]/[domains]
    parallelize the first lowering only).  Raises [Invalid_argument] in
    [Count_only] mode. *)

val encode_inputs : built -> a:Tcmm_fastmm.Matrix.t -> b:Tcmm_fastmm.Matrix.t -> bool array

val decode : built -> (Tcmm_threshold.Wire.t -> bool) -> Tcmm_fastmm.Matrix.t
(** Decode [C] from any wire reader — {!Simulator.value} of a result, or
    [Packed.batch_value br ~lane] of one lane of a batch.  The serving
    daemon uses this to decode each lane of a coalesced batch. *)

val run :
  ?engine:Simulator.engine ->
  ?domains:int ->
  built ->
  a:Tcmm_fastmm.Matrix.t ->
  b:Tcmm_fastmm.Matrix.t ->
  Tcmm_fastmm.Matrix.t
(** Simulate and decode [C].  Works in [Materialize] and [Direct] modes
    (raises [Invalid_argument] in [Count_only]).  [engine] defaults to
    the packed evaluator ({!Tcmm_threshold.Packed}), compiled once per
    [built] value; [domains > 1] evaluates levels in parallel on that
    many cores. *)

val run_batch :
  ?domains:int ->
  built ->
  (Tcmm_fastmm.Matrix.t * Tcmm_fastmm.Matrix.t) array ->
  Tcmm_fastmm.Matrix.t array
(** Evaluate many [(a, b)] pairs in one batched circuit traversal
    ({!Tcmm_threshold.Packed.run_batch}) — much faster per product than
    repeated {!run}. *)

val stats : built -> Stats.t
