open Tcmm_threshold
open Tcmm_arith
module Matrix = Tcmm_fastmm.Matrix

type built = {
  builder : Builder.t;
  circuit : Circuit.t option;
  mutable packed : Packed.t option;
  output : Wire.t;
  trace_repr : Repr.signed;
  layout : Encode.t;
  schedule : Level_schedule.t;
  tau : int;
  cache : Engine.cache;
}

let build_internal ~mode ~templates ~signed_inputs ?share_top ?kronpow
    ~with_value ~algo ~schedule ~entry_bits ~tau ~n () =
  let b = Builder.create ~mode ~templates () in
  let layout = Encode.alloc b ~n ~entry_bits ~signed:signed_inputs in
  let grid = Encode.grid layout in
  let leaves_a =
    Sum_tree.compute_leaves ?share_top ?kronpow b ~algo
      ~coeffs:(Sum_tree.a_coeffs algo) ~schedule grid
  in
  let leaves_b =
    Sum_tree.compute_leaves ?share_top ?kronpow b ~algo
      ~coeffs:(Sum_tree.b_coeffs algo) ~schedule grid
  in
  let leaves_w =
    Sum_tree.compute_leaves ?share_top ?kronpow b ~algo
      ~coeffs:(Sum_tree.w_transposed_coeffs algo) ~schedule
      (Encode.transposed_grid layout)
  in
  let products =
    Array.init (Array.length leaves_a) (fun k ->
        Product.signed_product3 b leaves_a.(k) leaves_b.(k) leaves_w.(k))
  in
  let trace_repr = Repr.concat_signed (Array.to_list products) in
  let output = Compare.ge b trace_repr tau in
  Builder.output b output;
  let value =
    if not with_value then None
    else begin
      let norm = Binary.normalize b trace_repr in
      Builder.output b norm.Binary.sign_negative;
      Array.iter (Builder.output b) norm.Binary.magnitude;
      Some norm
    end
  in
  let circuit =
    match mode with
    | Builder.Materialize -> Some (Builder.finalize b)
    | Builder.Count_only | Builder.Direct -> None
  in
  ( { builder = b; circuit; packed = None; output; trace_repr; layout; schedule;
      tau; cache = Engine.shared () },
    value )

let build ?(mode = Builder.Materialize) ?(templates = true)
    ?(signed_inputs = false) ?share_top ?kronpow ~algo ~schedule ~entry_bits
    ~tau ~n () =
  fst
    (build_internal ~mode ~templates ~signed_inputs ?share_top ?kronpow
       ~with_value:false ~algo ~schedule ~entry_bits ~tau ~n ())

let build_with_value ?(mode = Builder.Materialize) ?(templates = true)
    ?(signed_inputs = false) ?share_top ?kronpow ~algo ~schedule ~entry_bits
    ~tau ~n () =
  match
    build_internal ~mode ~templates ~signed_inputs ?share_top ?kronpow
      ~with_value:true ~algo ~schedule ~entry_bits ~tau ~n ()
  with
  | built, Some norm -> (built, norm)
  | _, None -> assert false

let build_staged ?(mode = Builder.Materialize) ?(templates = true)
    ?(signed_inputs = false) ~algo ~stages ~entry_bits ~tau ~n () =
  let l =
    Level_schedule.height ~t_dim:algo.Tcmm_fastmm.Bilinear.t_dim ~n
  in
  let b = Builder.create ~mode ~templates () in
  let layout = Encode.alloc b ~n ~entry_bits ~signed:signed_inputs in
  let grid = Encode.grid layout in
  let leaves_a =
    Sum_tree.compute_leaves_staged b ~algo ~coeffs:(Sum_tree.a_coeffs algo) ~stages ~l
      grid
  in
  let leaves_b =
    Sum_tree.compute_leaves_staged b ~algo ~coeffs:(Sum_tree.b_coeffs algo) ~stages ~l
      grid
  in
  let leaves_w =
    Sum_tree.compute_leaves_staged b ~algo ~coeffs:(Sum_tree.w_transposed_coeffs algo)
      ~stages ~l
      (Encode.transposed_grid layout)
  in
  let products =
    Array.init (Array.length leaves_a) (fun k ->
        Product.signed_product3 b leaves_a.(k) leaves_b.(k) leaves_w.(k))
  in
  let trace_repr = Repr.concat_signed (Array.to_list products) in
  let output = Compare.ge b trace_repr tau in
  Builder.output b output;
  let circuit =
    match mode with
    | Builder.Materialize -> Some (Builder.finalize b)
    | Builder.Count_only | Builder.Direct -> None
  in
  {
    builder = b;
    circuit;
    packed = None;
    output;
    trace_repr;
    layout;
    schedule = Level_schedule.direct ~l;
    tau;
    cache = Engine.shared ();
  }

let encode_input built m =
  let input = Array.make (Encode.total_wires built.layout) false in
  Encode.write built.layout m input;
  input

let pack ?pool ?domains ?kernels built =
  match built.packed with
  | Some p -> p
  | None ->
      let p =
        match built.circuit with
        | Some c -> Engine.packed built.cache c
        | None -> (
            match Builder.mode built.builder with
            | Builder.Direct ->
                Packed.of_arena ?pool ?domains ?kernels
                  (Builder.arena built.builder)
            | _ ->
                invalid_arg
                  "Trace_circuit: circuit was built in Count_only mode")
      in
      built.packed <- Some p;
      p

let simulate ?engine ?domains built m =
  let inputs = encode_input built m in
  match built.circuit with
  | Some c -> Engine.run ?engine ?domains built.cache c inputs
  | None -> (
      match engine with
      | Some Simulator.Reference ->
          Simulator.run (Packed.circuit (pack built)) inputs
      | _ -> Packed.run ?domains (pack built) inputs)

let run ?engine ?domains built m =
  let r = simulate ?engine ?domains built m in
  r.Simulator.outputs.(0)

let run_batch ?domains built ms =
  let batch = Array.map (encode_input built) ms in
  let br =
    match built.circuit with
    | Some c -> Engine.run_batch ?domains built.cache c batch
    | None -> Packed.run_batch ?domains (pack built) batch
  in
  Array.init (Array.length ms) (fun lane -> (Packed.batch_outputs br ~lane).(0))

let trace_value ?engine ?domains built m =
  let r = simulate ?engine ?domains built m in
  Repr.eval_signed (Simulator.value r) built.trace_repr

let reference m = Matrix.trace (Matrix.pow m 3)
let stats built = Builder.stats built.builder
