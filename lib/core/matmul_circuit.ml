open Tcmm_threshold
open Tcmm_arith
module Matrix = Tcmm_fastmm.Matrix

type built = {
  builder : Builder.t;
  circuit : Circuit.t option;
  layout_a : Encode.t;
  layout_b : Encode.t;
  c_grid : Repr.signed_bits array array;
  schedule : Level_schedule.t;
  cache : Engine.cache;
}

let build ?(mode = Builder.Materialize) ?(signed_inputs = false) ?share_top ~algo
    ~schedule ~entry_bits ~n () =
  let b = Builder.create ~mode () in
  let layout_a = Encode.alloc b ~n ~entry_bits ~signed:signed_inputs in
  let layout_b = Encode.alloc b ~n ~entry_bits ~signed:signed_inputs in
  let leaves_a =
    Sum_tree.compute_leaves ?share_top b ~algo ~coeffs:(Sum_tree.a_coeffs algo)
      ~schedule (Encode.grid layout_a)
  in
  let leaves_b =
    Sum_tree.compute_leaves ?share_top b ~algo ~coeffs:(Sum_tree.b_coeffs algo)
      ~schedule (Encode.grid layout_b)
  in
  let products =
    Array.init (Array.length leaves_a) (fun k ->
        Product.signed_product2 b leaves_a.(k) leaves_b.(k))
  in
  let c_grid = Combine_tree.combine ?share_top b ~algo ~schedule products in
  Array.iter
    (Array.iter (fun (sb : Repr.signed_bits) ->
         Array.iter (Builder.output b) sb.Repr.pos_bits;
         Array.iter (Builder.output b) sb.Repr.neg_bits))
    c_grid;
  let circuit =
    match mode with
    | Builder.Materialize -> Some (Builder.finalize b)
    | Builder.Count_only -> None
  in
  { builder = b; circuit; layout_a; layout_b; c_grid; schedule;
    cache = Engine.shared () }

let encode_inputs built ~a ~b =
  let input =
    Array.make (Encode.total_wires built.layout_a + Encode.total_wires built.layout_b) false
  in
  Encode.write built.layout_a a input;
  Encode.write built.layout_b b input;
  input

let circuit_exn built =
  match built.circuit with
  | None -> invalid_arg "Matmul_circuit: circuit was built in Count_only mode"
  | Some c -> c

let decode built read =
  let n = Array.length built.c_grid in
  Matrix.init ~rows:n ~cols:n (fun i j -> Repr.eval_sbits read built.c_grid.(i).(j))

let run ?engine ?domains built ~a ~b =
  let c = circuit_exn built in
  let r = Engine.run ?engine ?domains built.cache c (encode_inputs built ~a ~b) in
  decode built (Simulator.value r)

let run_batch ?domains built pairs =
  let c = circuit_exn built in
  let batch = Array.map (fun (a, b) -> encode_inputs built ~a ~b) pairs in
  let br = Engine.run_batch ?domains built.cache c batch in
  Array.init (Array.length pairs) (fun lane ->
      decode built (Packed.batch_value br ~lane))

let stats built = Builder.stats built.builder
