open Tcmm_threshold
open Tcmm_arith
module Matrix = Tcmm_fastmm.Matrix

type built = {
  builder : Builder.t;
  circuit : Circuit.t option;
  mutable packed : Packed.t option;
  layout_a : Encode.t;
  layout_b : Encode.t;
  c_grid : Repr.signed_bits array array;
  schedule : Level_schedule.t;
  cache : Engine.cache;
}

let build ?(mode = Builder.Materialize) ?(templates = true)
    ?(signed_inputs = false) ?share_top ?kronpow ~algo ~schedule ~entry_bits ~n
    () =
  let b = Builder.create ~mode ~templates () in
  let layout_a = Encode.alloc b ~n ~entry_bits ~signed:signed_inputs in
  let layout_b = Encode.alloc b ~n ~entry_bits ~signed:signed_inputs in
  let leaves_a =
    Sum_tree.compute_leaves ?share_top ?kronpow b ~algo
      ~coeffs:(Sum_tree.a_coeffs algo) ~schedule (Encode.grid layout_a)
  in
  let leaves_b =
    Sum_tree.compute_leaves ?share_top ?kronpow b ~algo
      ~coeffs:(Sum_tree.b_coeffs algo) ~schedule (Encode.grid layout_b)
  in
  let products =
    Array.init (Array.length leaves_a) (fun k ->
        Product.signed_product2 b leaves_a.(k) leaves_b.(k))
  in
  let c_grid = Combine_tree.combine ?share_top b ~algo ~schedule products in
  Array.iter
    (Array.iter (fun (sb : Repr.signed_bits) ->
         Array.iter (Builder.output b) sb.Repr.pos_bits;
         Array.iter (Builder.output b) sb.Repr.neg_bits))
    c_grid;
  let circuit =
    match mode with
    | Builder.Materialize -> Some (Builder.finalize b)
    | Builder.Count_only | Builder.Direct -> None
  in
  { builder = b; circuit; packed = None; layout_a; layout_b; c_grid; schedule;
    cache = Engine.shared () }

let encode_inputs built ~a ~b =
  let input =
    Array.make (Encode.total_wires built.layout_a + Encode.total_wires built.layout_b) false
  in
  Encode.write built.layout_a a input;
  Encode.write built.layout_b b input;
  input

let pack ?pool ?domains ?kernels built =
  match built.packed with
  | Some p -> p
  | None ->
      let p =
        match built.circuit with
        | Some c -> Engine.packed built.cache c
        | None -> (
            match Builder.mode built.builder with
            | Builder.Direct ->
                Packed.of_arena ?pool ?domains ?kernels
                  (Builder.arena built.builder)
            | _ ->
                invalid_arg
                  "Matmul_circuit: circuit was built in Count_only mode")
      in
      built.packed <- Some p;
      p

let decode built read =
  let n = Array.length built.c_grid in
  Matrix.init ~rows:n ~cols:n (fun i j -> Repr.eval_sbits read built.c_grid.(i).(j))

let run ?engine ?domains built ~a ~b =
  let inputs = encode_inputs built ~a ~b in
  let r =
    match built.circuit with
    | Some c -> Engine.run ?engine ?domains built.cache c inputs
    | None -> (
        match engine with
        | Some Simulator.Reference ->
            Simulator.run (Packed.circuit (pack built)) inputs
        | _ -> Packed.run ?domains (pack built) inputs)
  in
  decode built (Simulator.value r)

let run_batch ?domains built pairs =
  let batch = Array.map (fun (a, b) -> encode_inputs built ~a ~b) pairs in
  let br =
    match built.circuit with
    | Some c -> Engine.run_batch ?domains built.cache c batch
    | None -> Packed.run_batch ?domains (pack built) batch
  in
  Array.init (Array.length pairs) (fun lane ->
      decode built (Packed.batch_value br ~lane))

let stats built = Builder.stats built.builder
