(** Level selection — the heart of the paper's construction (Section 4).

    The recursion trees [T_A], [T_B], [T_AB] have [L = log_T N] levels.
    A PRAM implementation computes all of them; a constant-depth circuit
    can only afford a few.  A {e schedule} is the strictly increasing
    sequence [0 = h_0 < h_1 < ... < h_t = L] of levels the circuit
    materializes; each selected level costs depth 2 in the sum trees.

    The paper's key insight (Lemma 4.3) is the geometric spacing
    [h_i = ceil ((1 - gamma^i) * rho)], which balances the gate count
    across levels; [rho] trades gate count against the number of levels
    needed to reach [L]. *)

type t = private {
  levels : int array;  (** [h_0 = 0 < h_1 < ... < h_t = L] *)
  description : string;
}

val steps : t -> int
(** [t]: the number of selected levels above the root — each sum-tree
    built from the schedule has depth [2 * steps]. *)

val levels : t -> int array
(** A fresh copy of the selected-level sequence. *)

val final_level : t -> int
(** [h_t], the last selected level — equals [L] for every schedule built
    by this module's constructors. *)

val standard_names : string list
(** The four {!resolve} vocabulary entries the certifier sweeps:
    ["uniform-2"] (uniform), ["direct"] (single jump), ["thm44"] and
    ["thm45"]. *)

val height : t_dim:int -> n:int -> int
(** [L = log_T n].  Raises [Invalid_argument] if [n] is not a positive
    power of [t_dim]. *)

val of_levels : description:string -> int array -> t
(** Validates shape: starts at 0, strictly increasing.  Raises
    [Invalid_argument] otherwise. *)

val full : l:int -> t
(** Every level [0, 1, ..., L] — maximal reuse, depth grows with [N]
    (the conventional recursive algorithm's shape). *)

val direct : l:int -> t
(** The single jump [0, L] — the naive constant-depth attempt of
    Section 4.2 whose gate count is [~N^(1+omega)]. *)

val uniform : steps:int -> l:int -> t
(** [h_i = ceil (i*L/steps)] — "simply selecting every k-th level", which
    the paper notes does {e not} achieve the best bounds (Section 2.2). *)

val geometric : gamma:float -> rho:float -> l:int -> t
(** Lemma 4.3's schedule: [h_i = ceil ((1 - gamma^i) rho)] for
    [i = 1, 2, ...], deduplicated, clipped to [l] and forced to end
    at [l].  Requires [0 <= gamma < 1] and [rho > 0]. *)

val theorem44 : gamma:float -> t_dim:int -> n:int -> t
(** Theorem 4.4's choice: [rho = log_T N], giving
    [t = floor (log_{1/gamma} log_T N) + 1] levels — depth
    [O(log log N)], gates [O~(N^omega)]. *)

val theorem45 : profile:Tcmm_fastmm.Sparsity.profile -> d:int -> n:int -> t
(** Theorem 4.5's choice: [rho = log_T N + eps * log_{alpha*beta} N] with
    [eps = gamma^d * log_T (alpha*beta) / (1 - gamma)], giving at most [d]
    levels — constant depth, gates [O~(d * N^(omega + c*gamma^d))]. *)

val resolve :
  algo:Tcmm_fastmm.Bilinear.t -> name:string -> d:int -> n:int -> t
(** Schedule by name — the vocabulary the CLI and the serving protocol
    share: ["thm44"], ["thm45"] (using [d]), ["full"], ["direct"], or
    ["uniform-K"].  Raises [Invalid_argument] on an unknown name, a
    malformed [uniform-K], an [n] that is not a power of the algorithm's
    [T], or an algorithm whose sparsity profile cannot be analyzed
    (["thm44"] / ["thm45"]). *)

val pp : Format.formatter -> t -> unit
