open Tcmm_threshold
open Tcmm_arith
module Matrix = Tcmm_fastmm.Matrix
module Checked = Tcmm_util.Checked

type built = {
  builder : Builder.t;
  circuit : Circuit.t option;
  layout_a : Encode.t;
  layout_b : Encode.t;
  c_grid : Repr.signed_bits array array;
  block : int;
  cache : Engine.cache;
}

let round_up v ~block = (v + block - 1) / block * block

let build ?(mode = Builder.Materialize) ?(templates = true)
    ?(signed_inputs = false) ?share_top ~algo ~schedule ~entry_bits ~rows ~inner
    ~cols () =
  let levels = (schedule : Level_schedule.t).Level_schedule.levels in
  let block =
    Checked.pow algo.Tcmm_fastmm.Bilinear.t_dim (levels.(Array.length levels - 1))
  in
  if rows mod block <> 0 || inner mod block <> 0 || cols mod block <> 0 then
    invalid_arg "Tiled_matmul.build: dimensions must be multiples of the block size";
  let b = Builder.create ~mode ~templates () in
  let layout_a = Encode.alloc_rect b ~rows ~cols:inner ~entry_bits ~signed:signed_inputs in
  let layout_b = Encode.alloc_rect b ~rows:inner ~cols ~entry_bits ~signed:signed_inputs in
  let bi = rows / block and bk = inner / block and bj = cols / block in
  (* Leaf scalars of every tile of A and B — each tile is computed once
     and reused by all products that need it, as in the conventional
     blocked algorithm. *)
  let leaves_a =
    Array.init bi (fun i ->
        Array.init bk (fun k ->
            Sum_tree.compute_leaves ?share_top b ~algo
              ~coeffs:(Sum_tree.a_coeffs algo) ~schedule
              (Encode.sub_grid layout_a ~row:(i * block) ~col:(k * block) ~size:block)))
  in
  let leaves_b =
    Array.init bk (fun k ->
        Array.init bj (fun j ->
            Sum_tree.compute_leaves ?share_top b ~algo
              ~coeffs:(Sum_tree.b_coeffs algo) ~schedule
              (Encode.sub_grid layout_b ~row:(k * block) ~col:(j * block) ~size:block)))
  in
  let c_grid = Array.make_matrix rows cols Repr.sbits_zero in
  for i = 0 to bi - 1 do
    for j = 0 to bj - 1 do
      (* One Theorem 4.9 tile product per k, then an entrywise sum. *)
      let contributions =
        Array.init bk (fun k ->
            let products =
              Array.init
                (Array.length leaves_a.(i).(k))
                (fun l -> Product.signed_product2 b leaves_a.(i).(k).(l) leaves_b.(k).(j).(l))
            in
            Combine_tree.combine ?share_top b ~algo ~schedule products)
      in
      for x = 0 to block - 1 do
        for y = 0 to block - 1 do
          let entry =
            if bk = 1 then contributions.(0).(x).(y)
            else
              Weighted_sum.signed_sum ?share_top b
                (Array.to_list
                   (Array.map
                      (fun c -> (1, Repr.signed_of_sbits c.(x).(y)))
                      contributions))
          in
          c_grid.((i * block) + x).((j * block) + y) <- entry
        done
      done
    done
  done;
  Array.iter
    (Array.iter (fun (sb : Repr.signed_bits) ->
         Array.iter (Builder.output b) sb.Repr.pos_bits;
         Array.iter (Builder.output b) sb.Repr.neg_bits))
    c_grid;
  let circuit =
    match mode with
    | Builder.Materialize -> Some (Builder.finalize b)
    | Builder.Count_only | Builder.Direct -> None
  in
  { builder = b; circuit; layout_a; layout_b; c_grid; block;
    cache = Engine.shared () }

let run ?engine ?domains built ~a ~b =
  match built.circuit with
  | None -> invalid_arg "Tiled_matmul.run: circuit was not materialized"
  | Some c ->
      let input =
        Array.make
          (Encode.total_wires built.layout_a + Encode.total_wires built.layout_b)
          false
      in
      Encode.write built.layout_a a input;
      Encode.write built.layout_b b input;
      let r = Engine.run ?engine ?domains built.cache c input in
      Matrix.init
        ~rows:(Array.length built.c_grid)
        ~cols:(Array.length built.c_grid.(0))
        (fun i j -> Repr.eval_sbits (Simulator.value r) built.c_grid.(i).(j))

let stats built = Builder.stats built.builder
