module Sparsity = Tcmm_fastmm.Sparsity
module Checked = Tcmm_util.Checked

let exponent (p : Sparsity.profile) ~d =
  p.Sparsity.omega +. (p.Sparsity.c_const *. (p.Sparsity.overall.Sparsity.gamma ** float_of_int d))

let trace_depth_bound ~d = (2 * d) + 5
let matmul_depth_bound ~d = (4 * d) + 1
let trace_depth (s : Level_schedule.t) = (2 * Level_schedule.steps s) + 2
let matmul_depth (s : Level_schedule.t) = (4 * Level_schedule.steps s) + 1

let predicted_depth ~kind s =
  match kind with `Trace -> trace_depth s | `Matmul -> matmul_depth s

let depth_bound ~kind ~d =
  match kind with `Trace -> trace_depth_bound ~d | `Matmul -> matmul_depth_bound ~d

let sum_slots (p : Sparsity.profile) ~schedule ~n ~side =
  let algo = p.Sparsity.algo in
  let t_dim = algo.Tcmm_fastmm.Bilinear.t_dim in
  let r = algo.Tcmm_fastmm.Bilinear.rank in
  let s =
    match side with
    | `A -> p.Sparsity.a.Sparsity.total
    | `C -> p.Sparsity.c.Sparsity.total
  in
  let levels = (schedule : Level_schedule.t).Level_schedule.levels in
  let total = ref 0 in
  for i = 1 to Array.length levels - 1 do
    let h_prev = levels.(i - 1) and h = levels.(i) in
    let nodes_prev = Checked.pow r h_prev in
    let spread = Checked.pow s (h - h_prev) in
    let entries = n / Checked.pow t_dim h in
    let entries = Checked.mul entries entries in
    total := Checked.add !total (Checked.mul nodes_prev (Checked.mul spread entries))
  done;
  !total

let leaf_products (p : Sparsity.profile) ~n =
  let algo = p.Sparsity.algo in
  let l = Level_schedule.height ~t_dim:algo.Tcmm_fastmm.Bilinear.t_dim ~n in
  Checked.pow algo.Tcmm_fastmm.Bilinear.rank l

let fit_exponent points =
  let pts = List.filter (fun (n, g) -> n > 0. && g > 0.) points in
  let xs = List.map (fun (n, _) -> log n) pts in
  let distinct = List.sort_uniq compare xs in
  if List.length distinct < 2 then
    invalid_arg "Gate_model.fit_exponent: need at least two distinct sizes";
  let ys = List.map (fun (_, g) -> log g) pts in
  let len = float_of_int (List.length pts) in
  let mean l = List.fold_left ( +. ) 0. l /. len in
  let mx = mean xs and my = mean ys in
  let num =
    List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0. xs ys
  in
  let den = List.fold_left (fun acc x -> acc +. ((x -. mx) ** 2.)) 0. xs in
  num /. den
