open Tcmm_threshold
open Tcmm_arith
module Matrix = Tcmm_fastmm.Matrix

type t = {
  rows : int;
  cols : int;
  entry_bits : int;
  signed : bool;
  base : int;
  wires_per_entry : int;
}

let alloc_rect b ~rows ~cols ~entry_bits ~signed =
  if rows < 1 || cols < 1 then invalid_arg "Encode.alloc_rect: empty layout";
  if entry_bits < 1 || entry_bits > 60 then
    invalid_arg "Encode.alloc_rect: entry_bits out of range";
  let wires_per_entry = if signed then 2 * entry_bits else entry_bits in
  let base = Builder.num_wires b in
  ignore (Builder.add_inputs b (rows * cols * wires_per_entry));
  { rows; cols; entry_bits; signed; base; wires_per_entry }

let alloc b ~n ~entry_bits ~signed = alloc_rect b ~rows:n ~cols:n ~entry_bits ~signed

let restore ~rows ~cols ~entry_bits ~signed ~base =
  if rows < 1 || cols < 1 then invalid_arg "Encode.restore: empty layout";
  if entry_bits < 1 || entry_bits > 60 then
    invalid_arg "Encode.restore: entry_bits out of range";
  if base < 0 then invalid_arg "Encode.restore: negative base";
  let wires_per_entry = if signed then 2 * entry_bits else entry_bits in
  { rows; cols; entry_bits; signed; base; wires_per_entry }
let total_wires t = t.rows * t.cols * t.wires_per_entry

let entry_wires t i j =
  let off = t.base + (((i * t.cols) + j) * t.wires_per_entry) in
  let pos_bits = Array.init t.entry_bits (fun k -> off + k) in
  let neg_bits =
    if t.signed then Array.init t.entry_bits (fun k -> off + t.entry_bits + k)
    else [||]
  in
  { Repr.pos_bits; neg_bits }

let grid t = Array.init t.rows (fun i -> Array.init t.cols (fun j -> entry_wires t i j))

let sub_grid t ~row ~col ~size =
  if row < 0 || col < 0 || row + size > t.rows || col + size > t.cols || size < 1 then
    invalid_arg "Encode.sub_grid: window out of bounds";
  Array.init size (fun i -> Array.init size (fun j -> entry_wires t (row + i) (col + j)))

let transposed_grid t =
  if t.rows <> t.cols then invalid_arg "Encode.transposed_grid: layout not square";
  Array.init t.rows (fun i -> Array.init t.cols (fun j -> entry_wires t j i))

let max_entry t = (1 lsl t.entry_bits) - 1

let write t m input =
  if Matrix.rows m <> t.rows || Matrix.cols m <> t.cols then
    invalid_arg "Encode.write: matrix dimension mismatch";
  let limit = max_entry t in
  for i = 0 to t.rows - 1 do
    for j = 0 to t.cols - 1 do
      let v = Matrix.get m i j in
      if v < 0 && not t.signed then
        invalid_arg "Encode.write: negative entry in unsigned layout";
      let mag = abs v in
      if mag > limit then invalid_arg "Encode.write: entry does not fit entry_bits";
      let off = t.base + (((i * t.cols) + j) * t.wires_per_entry) in
      for k = 0 to t.entry_bits - 1 do
        let bit = (mag lsr k) land 1 = 1 in
        if v >= 0 then begin
          input.(off + k) <- bit;
          if t.signed then input.(off + t.entry_bits + k) <- false
        end
        else begin
          input.(off + k) <- false;
          input.(off + t.entry_bits + k) <- bit
        end
      done
    done
  done
