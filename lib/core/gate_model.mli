(** Analytic predictions for the experiments.

    The paper's theorems predict gate counts of the form
    [O~(d * N^(omega + c * gamma^d))]; this module computes those
    exponents, the exact combinatorial "summand slot" counts that drive
    the construction (equations (3) and (5)), and least-squares exponent
    fits used to compare measured counts against predictions. *)

val exponent : Tcmm_fastmm.Sparsity.profile -> d:int -> float
(** Theorem 4.5/4.9's gate-count exponent [omega + c * gamma^d]. *)

val trace_depth_bound : d:int -> int
(** [2d + 5] (Theorem 4.5). *)

val matmul_depth_bound : d:int -> int
(** [4d + 1] (Theorem 4.9). *)

val trace_depth : Level_schedule.t -> int
(** The depth this implementation actually achieves:
    [2 * steps + 2]. *)

val matmul_depth : Level_schedule.t -> int
(** [4 * steps + 1]. *)

val predicted_depth : kind:[ `Trace | `Matmul ] -> Level_schedule.t -> int
(** {!trace_depth} or {!matmul_depth}, selected by circuit kind — the
    form the [tcmm_check] certifier consumes. *)

val depth_bound : kind:[ `Trace | `Matmul ] -> d:int -> int
(** {!trace_depth_bound} or {!matmul_depth_bound}, selected by kind. *)

val sum_slots :
  Tcmm_fastmm.Sparsity.profile -> schedule:Level_schedule.t -> n:int -> side:[ `A | `C ] -> int
(** Exact number of (entry, summand) pairs the sum trees feed to
    Lemma 3.2 across all selected levels:
    [sum_i r^(h_(i-1)) * s^(delta_i) * (n / T^(h_i))^2] — the paper's
    equation (3) (side [`A]) / equation (5) (side [`C]) accounting.  This
    is the machine-independent work measure that the gate counts track up
    to the [O(b + log)] per-sum factor. *)

val leaf_products : Tcmm_fastmm.Sparsity.profile -> n:int -> int
(** [r^(log_T n) = n^(log_T r)], the number of scalar multiplications. *)

val fit_exponent : (float * float) list -> float
(** [fit_exponent [(n1, g1); ...]] is the least-squares slope of
    [log g] against [log n] — the measured growth exponent.  Requires at
    least two points with distinct [n]. *)
