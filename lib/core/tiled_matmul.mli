(** Tiled (blocked) matrix products: rectangular shapes and bounded
    fan-in.

    Section 5 of the paper notes two practical deviations from the
    [N x N] square setting: convolution products are rectangular
    ([P x Q] by [Q x K] with small [Q] and [K]), and real architectures
    bound the fan-in, which can be respected by "breaking the matrix
    multiplication into independent pieces ... run in parallel, so they
    have the same depth".

    This module implements that splitting: the operands are partitioned
    into [block x block] tiles ([block = T^L] for the given schedule),
    each tile product is an independent Theorem 4.9 circuit, and each
    output entry sums its [inner/block] tile contributions with one more
    depth-2 layer.  Fan-in now scales with the {e block} size (plus the
    final sums), not with the full operand — and rectangular operands
    only pay for the tiles they actually cover instead of being embedded
    in a square [N x N] circuit. *)

open Tcmm_threshold
open Tcmm_arith

type built = {
  builder : Builder.t;
  circuit : Circuit.t option;
  layout_a : Encode.t;  (** [rows x inner] *)
  layout_b : Encode.t;  (** [inner x cols] *)
  c_grid : Repr.signed_bits array array;  (** [rows x cols] *)
  block : int;
  cache : Engine.cache;  (** memoized packed compilation of [circuit] *)
}

val round_up : int -> block:int -> int
(** Smallest multiple of [block] that is [>=] the argument. *)

val build :
  ?mode:Builder.mode ->
  ?templates:bool ->
  ?signed_inputs:bool ->
  ?share_top:bool ->
  algo:Tcmm_fastmm.Bilinear.t ->
  schedule:Level_schedule.t ->
  entry_bits:int ->
  rows:int ->
  inner:int ->
  cols:int ->
  unit ->
  built
(** [rows], [inner], [cols] must be positive multiples of the schedule's
    block size [T^L] (use {!round_up} and zero-padding via
    {!Tcmm_convnet.Im2col.embed}-style placement, or just pass padded
    shapes — zero entries are free in the simulation and harmless in the
    counts). *)

val run :
  ?engine:Simulator.engine ->
  ?domains:int ->
  built ->
  a:Tcmm_fastmm.Matrix.t ->
  b:Tcmm_fastmm.Matrix.t ->
  Tcmm_fastmm.Matrix.t
(** Simulate and decode the [rows x cols] product.  Requires
    [Materialize] mode.  [engine] defaults to the packed evaluator,
    compiled once per [built] value. *)

val stats : built -> Stats.t
