open Tcmm_threshold
open Tcmm_arith
module Matrix = Tcmm_fastmm.Matrix

(* ------------------------------------------------------------------ *)
(* Triangle threshold (paper, Section 1)                              *)
(* ------------------------------------------------------------------ *)

type triangle_built = {
  builder : Builder.t;
  circuit : Circuit.t option;
  output : Wire.t;
  n : int;
  tau : int;
  cache : Engine.cache;
}

(* Edge variable x_ij (i < j) position in lexicographic order. *)
let edge_index ~n i j =
  if not (0 <= i && i < j && j < n) then invalid_arg "edge_index: need 0 <= i < j < n";
  (* Edges (0,1)..(0,n-1), (1,2)..: offset of row i is
     i*n - i*(i+1)/2 - i ... computed directly. *)
  (i * (n - 1)) - (i * (i - 1) / 2) + (j - i - 1)

let triangle_threshold ?(mode = Builder.Materialize) ~n ~tau () =
  if n < 3 then invalid_arg "Naive_circuits.triangle_threshold: n < 3";
  let b = Builder.create ~mode () in
  let edges = Builder.add_inputs b (n * (n - 1) / 2) in
  let gates = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      for k = j + 1 to n - 1 do
        let inputs =
          [|
            edges.(edge_index ~n i j);
            edges.(edge_index ~n i k);
            edges.(edge_index ~n j k);
          |]
        in
        let g = Builder.add_gate b ~inputs ~weights:[| 1; 1; 1 |] ~threshold:3 in
        gates := (g, 1) :: !gates
      done
    done
  done;
  let output = Builder.add_gate_terms b ~terms:(List.rev !gates) ~threshold:tau in
  Builder.output b output;
  let circuit =
    match mode with
    | Builder.Materialize -> Some (Builder.finalize b)
    | Builder.Count_only | Builder.Direct -> None
  in
  { builder = b; circuit; output; n; tau; cache = Engine.shared () }

let triangle_encode built m =
  let n = built.n in
  if Matrix.rows m <> n || Matrix.cols m <> n then
    invalid_arg "triangle_encode: dimension mismatch";
  let input = Array.make (n * (n - 1) / 2) false in
  for i = 0 to n - 1 do
    if Matrix.get m i i <> 0 then invalid_arg "triangle_encode: nonzero diagonal";
    for j = i + 1 to n - 1 do
      let v = Matrix.get m i j in
      if v <> Matrix.get m j i then invalid_arg "triangle_encode: asymmetric matrix";
      if v <> 0 && v <> 1 then invalid_arg "triangle_encode: non-binary entry";
      input.(edge_index ~n i j) <- v = 1
    done
  done;
  input

let triangle_run ?engine ?domains built m =
  match built.circuit with
  | None -> invalid_arg "triangle_run: Count_only mode"
  | Some c ->
      (Engine.run ?engine ?domains built.cache c (triangle_encode built m))
        .Simulator.outputs.(0)

(* ------------------------------------------------------------------ *)
(* Naive trace threshold                                              *)
(* ------------------------------------------------------------------ *)

type trace_built = {
  builder : Builder.t;
  circuit : Circuit.t option;
  output : Wire.t;
  trace_repr : Repr.signed;
  layout : Encode.t;
  tau : int;
  cache : Engine.cache;
}

let trace_threshold ?(mode = Builder.Materialize) ?(templates = true)
    ?(signed_inputs = false) ~entry_bits ~tau ~n () =
  let b = Builder.create ~mode ~templates () in
  let layout = Encode.alloc b ~n ~entry_bits ~signed:signed_inputs in
  let grid = Encode.grid layout in
  let products = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      for k = 0 to n - 1 do
        products := Product.signed_product3 b grid.(i).(j) grid.(j).(k) grid.(k).(i) :: !products
      done
    done
  done;
  let trace_repr = Repr.concat_signed (List.rev !products) in
  let output = Compare.ge b trace_repr tau in
  Builder.output b output;
  let circuit =
    match mode with
    | Builder.Materialize -> Some (Builder.finalize b)
    | Builder.Count_only | Builder.Direct -> None
  in
  { builder = b; circuit; output; trace_repr; layout; tau;
    cache = Engine.shared () }

let trace_simulate ?engine ?domains built m =
  match built.circuit with
  | None -> invalid_arg "trace_run: Count_only mode"
  | Some c ->
      let input = Array.make (Encode.total_wires built.layout) false in
      Encode.write built.layout m input;
      Engine.run ?engine ?domains built.cache c input

let trace_run ?engine ?domains built m =
  (trace_simulate ?engine ?domains built m).Simulator.outputs.(0)

let trace_value ?engine ?domains built m =
  Repr.eval_signed
    (Simulator.value (trace_simulate ?engine ?domains built m))
    built.trace_repr

(* ------------------------------------------------------------------ *)
(* Naive matrix product                                               *)
(* ------------------------------------------------------------------ *)

type matmul_built = {
  builder : Builder.t;
  circuit : Circuit.t option;
  layout_a : Encode.t;
  layout_b : Encode.t;
  c_grid : Repr.signed_bits array array;
  cache : Engine.cache;
}

let matmul ?(mode = Builder.Materialize) ?(templates = true)
    ?(signed_inputs = false) ~entry_bits ~n () =
  let b = Builder.create ~mode ~templates () in
  let layout_a = Encode.alloc b ~n ~entry_bits ~signed:signed_inputs in
  let layout_b = Encode.alloc b ~n ~entry_bits ~signed:signed_inputs in
  let grid_a = Encode.grid layout_a and grid_b = Encode.grid layout_b in
  let c_grid =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let terms =
              List.init n (fun k ->
                  (1, Product.signed_product2 b grid_a.(i).(k) grid_b.(k).(j)))
            in
            Weighted_sum.signed_sum b terms))
  in
  Array.iter
    (Array.iter (fun (sb : Repr.signed_bits) ->
         Array.iter (Builder.output b) sb.Repr.pos_bits;
         Array.iter (Builder.output b) sb.Repr.neg_bits))
    c_grid;
  let circuit =
    match mode with
    | Builder.Materialize -> Some (Builder.finalize b)
    | Builder.Count_only | Builder.Direct -> None
  in
  { builder = b; circuit; layout_a; layout_b; c_grid;
    cache = Engine.shared () }

(* ------------------------------------------------------------------ *)
(* Closed-form statistics                                             *)
(* ------------------------------------------------------------------ *)

module Checked = Tcmm_util.Checked

let triangle_counts ~n =
  let triples = n * (n - 1) * (n - 2) / 6 in
  (* One AND gate of fan-in 3 per triple plus the output gate reading
     every triple gate. *)
  (triples + 1, (3 * triples) + triples)

let trace_counts ?(signed_inputs = false) ~entry_bits ~n () =
  let m = if signed_inputs then 2 * entry_bits else entry_bits in
  (* signed_product3 emits (sum of widths)^3 AND-3 gates per (i,j,k)
     triple; every product term also feeds the output gate. *)
  let per_triple = m * m * m in
  let products = Checked.mul (Checked.mul n (Checked.mul n n)) per_triple in
  (Checked.add products 1, Checked.add (Checked.mul 3 products) products)

let matmul_counts ?(signed_inputs = false) ~entry_bits ~n () =
  let m = if signed_inputs then 2 * entry_bits else entry_bits in
  let b = entry_bits in
  (* Per output entry: n signed products of b-bit entries (m^2 AND gates
     each, where m counts both sign parts), then one Lemma 3.2 signed sum
     whose positive part receives, for each bit position u < 2b, the
     product terms of that weight. *)
  let per_pair = m * m in
  let product_gates = Checked.mul n per_pair in
  (* Weight multiset of one part of the sum: products of two b-bit
     numbers contribute weight 2^(i+j); for unsigned inputs only the
     (pos, pos) combination feeds the positive part; for signed inputs
     (pos,pos) and (neg,neg) do. *)
  let combos_per_part = if signed_inputs then 2 else 1 in
  let multiset =
    List.init ((2 * b) - 1) (fun u ->
        (* number of (i, j) pairs with i + j = u, i, j < b *)
        let pairs = min u ((2 * b) - 2 - u) + 1 in
        let pairs = min pairs b in
        (1 lsl u, Checked.mul (Checked.mul n pairs) combos_per_part))
  in
  let sum_gates, sum_edges = Tcmm_arith.Weighted_sum.to_bits_cost multiset in
  let parts = if signed_inputs then 2 else 1 in
  let per_entry =
    ( Checked.add product_gates (parts * sum_gates),
      Checked.add (Checked.mul 2 product_gates) (parts * sum_edges) )
  in
  let entries = n * n in
  (Checked.mul entries (fst per_entry), Checked.mul entries (snd per_entry))

let matmul_run ?engine ?domains built ~a ~b =
  match built.circuit with
  | None -> invalid_arg "matmul_run: Count_only mode"
  | Some c ->
      let input =
        Array.make
          (Encode.total_wires built.layout_a + Encode.total_wires built.layout_b)
          false
      in
      Encode.write built.layout_a a input;
      Encode.write built.layout_b b input;
      let r = Engine.run ?engine ?domains built.cache c input in
      let n = Array.length built.c_grid in
      Matrix.init ~rows:n ~cols:n (fun i j ->
          Repr.eval_sbits (Simulator.value r) built.c_grid.(i).(j))
