(** The subcubic trace circuit (Theorems 4.4 and 4.5).

    Decides [trace(A^3) >= tau] for an [n x n] integer matrix [A]:

    + three sum trees compute, for every leaf [k], the A-side scalar, the
      B-side scalar (also over [A], since [C = A * A]) and the weighted
      entry-sum [q_k = sum_{i,j} w_k^(ij) A_ji] of eq. (4)
      (depth [2 * steps] each, in parallel);
    + Lemma 3.3 multiplies the three scalars of each leaf (depth 1);
    + one output gate compares [sum_k p_k q_k = trace(A^3)] against [tau]
      (depth 1).

    Total depth [2 * steps + 2]; with Theorem 4.5's schedule ([steps <= d])
    this meets the paper's [2d + 5] bound with room to spare (the paper's
    constant is looser because it does not fold the product layer's
    representation directly into the output gate's weights the way
    Lemma 3.3 allows). *)

open Tcmm_threshold
open Tcmm_arith

type built = {
  builder : Builder.t;
  circuit : Circuit.t option;  (** [Some] iff built in [Materialize] mode *)
  mutable packed : Packed.t option;  (** memoized {!pack} result *)
  output : Wire.t;  (** fires iff [trace(A^3) >= tau] *)
  trace_repr : Repr.signed;  (** representation of [trace(A^3)] itself *)
  layout : Encode.t;
  schedule : Level_schedule.t;
  tau : int;
  cache : Engine.cache;  (** memoized packed compilation of [circuit] *)
}

val build :
  ?mode:Builder.mode ->
  ?templates:bool ->
  ?signed_inputs:bool ->
  ?share_top:bool ->
  ?kronpow:bool ->
  algo:Tcmm_fastmm.Bilinear.t ->
  schedule:Level_schedule.t ->
  entry_bits:int ->
  tau:int ->
  n:int ->
  unit ->
  built
(** [signed_inputs] defaults to [false] (adjacency-style nonnegative
    entries).  [kronpow] (default [false]) applies the
    {!Tcmm_fastmm.Kronpow} factoring to all three sum trees (U, V and
    the transposed-W side) — value-equal, never larger, not
    wire-identical; see {!Sum_tree.compute_leaves}.
    [share_top] (default [false]) enables the Lemma 3.2
    shared-first-layer optimization in every addition (same function,
    fewer gates — the E11 ablation quantifies it).  [templates] (default
    [true]) stamps repeated block shapes through the
    {!Builder.templated} cache — gate-for-gate identical circuits, much
    faster construction.  [n] must equal [T^L] for the schedule's final
    level [L]. *)

val pack :
  ?pool:Packed.Pool.t -> ?domains:int -> ?kernels:bool -> built -> Packed.t
(** The compiled evaluator form, memoized on [built]: the engine-cache
    compilation of [circuit] in [Materialize] mode, a direct
    {!Packed.of_arena} lowering in [Direct] mode.  Raises
    [Invalid_argument] in [Count_only] mode. *)

val build_staged :
  ?mode:Builder.mode ->
  ?templates:bool ->
  ?signed_inputs:bool ->
  algo:Tcmm_fastmm.Bilinear.t ->
  stages:int ->
  entry_bits:int ->
  tau:int ->
  n:int ->
  unit ->
  built
(** The Theorem 4.1 variant: leaf sums computed by [stages]-round staged
    adders instead of level selection (depth [2 * stages + 2], gates
    [O~(d * N^(omega + 1/d))] for [stages = d]).  Exists so the ablation
    experiments can measure how much Lemma 4.3's schedule improves on
    it; {!build} is the construction to use.  The [built.schedule] field
    holds the direct schedule. *)

val encode_input : built -> Tcmm_fastmm.Matrix.t -> bool array
(** Input vector encoding [A]. *)

val run :
  ?engine:Simulator.engine -> ?domains:int -> built -> Tcmm_fastmm.Matrix.t -> bool
(** Simulate on [A]; works in [Materialize] and [Direct] modes (raises
    [Invalid_argument] in [Count_only]).  [engine] defaults to the
    packed evaluator, compiled once per [built] value. *)

val run_batch :
  ?domains:int -> built -> Tcmm_fastmm.Matrix.t array -> bool array
(** Decide [trace(A^3) >= tau] for many matrices in one batched circuit
    traversal ({!Tcmm_threshold.Packed.run_batch}). *)

val build_with_value :
  ?mode:Builder.mode ->
  ?templates:bool ->
  ?signed_inputs:bool ->
  ?share_top:bool ->
  ?kronpow:bool ->
  algo:Tcmm_fastmm.Bilinear.t ->
  schedule:Level_schedule.t ->
  entry_bits:int ->
  tau:int ->
  n:int ->
  unit ->
  built * Tcmm_arith.Binary.normalized
(** Like {!build} but additionally emits canonical binary outputs for
    [trace(A^3)] itself (sign bit + magnitude bits, marked as circuit
    outputs).  One evaluation then yields the exact trace — e.g. the
    exact triangle count of a graph as [trace/6] — instead of a single
    threshold answer.  Adds depth (a Lemma 3.2 layer plus the
    {!Tcmm_arith.Binary.normalize} stages) on top of the threshold
    output, which is still present. *)

val trace_value :
  ?engine:Simulator.engine -> ?domains:int -> built -> Tcmm_fastmm.Matrix.t -> int
(** Simulate and evaluate {!field-trace_repr} — the exact [trace(A^3)]
    as the circuit internally represents it (test oracle access). *)

val reference : Tcmm_fastmm.Matrix.t -> int
(** [trace(A^3)] by plain integer arithmetic. *)

val stats : built -> Stats.t
