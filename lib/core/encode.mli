(** Input layout: wiring integer matrices into circuit inputs.

    Every circuit in this library takes integer matrices with
    [entry_bits]-bit entries.  A {!layout} records which input wires
    carry which entry bits, provides the corresponding {!Sum_tree.input}
    grid of signed binary representations, and encodes concrete matrices
    into simulator input vectors.

    Nonnegative layouts use [entry_bits] wires per entry; signed layouts
    use [2 * entry_bits] (magnitude bits of the positive and negative
    parts — the paper's [x = x+ - x-] convention). *)

open Tcmm_threshold
open Tcmm_arith

type t = private {
  rows : int;
  cols : int;
  entry_bits : int;
  signed : bool;
  base : int;  (** first wire id of the block *)
  wires_per_entry : int;
}

val alloc : Builder.t -> n:int -> entry_bits:int -> signed:bool -> t
(** Square [n x n] layout.  Allocates the input wires (must precede any
    gate). *)

val restore : rows:int -> cols:int -> entry_bits:int -> signed:bool -> base:int -> t
(** Reconstitute a layout from persisted parameters {i without} a
    builder — the artifact store records [(rows, cols, entry_bits,
    signed, base)] per layout and warm loads rebuild the wire mapping
    from them; the input wires already exist inside the stored packed
    circuit.  Raises [Invalid_argument] on parameters {!alloc_rect}
    would have rejected. *)

val alloc_rect : Builder.t -> rows:int -> cols:int -> entry_bits:int -> signed:bool -> t
(** Rectangular layout — the tiled multiplier uses these for the paper's
    [P x Q] by [Q x K] convolution products. *)

val total_wires : t -> int

val grid : t -> Repr.signed_bits array array
(** The [rows x cols] grid of entry representations, for the tree
    compilers. *)

val sub_grid : t -> row:int -> col:int -> size:int -> Repr.signed_bits array array
(** A square [size x size] window — the tiled multiplier feeds these to
    the per-block circuits.  Bounds-checked. *)

val transposed_grid : t -> Repr.signed_bits array array
(** Same wires, transposed indexing — the trace circuit's third tree
    reads [A^T].  Requires a square layout. *)

val write : t -> Tcmm_fastmm.Matrix.t -> bool array -> unit
(** [write layout m input] sets this layout's segment of [input] to encode
    [m].  Raises [Invalid_argument] if [m] has the wrong shape, if an
    entry does not fit in [entry_bits] bits, or if an entry is negative
    in an unsigned layout. *)

val max_entry : t -> int
(** Largest representable magnitude: [2^entry_bits - 1]. *)
