open Tcmm_arith
module Bilinear = Tcmm_fastmm.Bilinear
module Matrix = Tcmm_fastmm.Matrix
module Kronpow = Tcmm_fastmm.Kronpow
module Checked = Tcmm_util.Checked
module Ilog = Tcmm_util.Ilog

type input = Repr.signed_bits array array

let a_coeffs (algo : Bilinear.t) = algo.Bilinear.u
let b_coeffs (algo : Bilinear.t) = algo.Bilinear.v

let w_transposed_coeffs (algo : Bilinear.t) =
  Array.init algo.Bilinear.rank (fun i ->
      Array.init
        (algo.Bilinear.t_dim * algo.Bilinear.t_dim)
        (fun j -> algo.Bilinear.w.(j).(i)))

let leaf_count (algo : Bilinear.t) ~l = Checked.pow algo.Bilinear.rank l

(* For every relative multiplication path of length [delta] below a node
   whose matrix has dimension [size], the list of (coefficient, row offset,
   column offset) of the ancestor blocks that sum to the descendant's
   matrix.  Indexed by the path read as a base-r numeral (root digit most
   significant).  Total size over all paths is s^delta — equation (3). *)
let expansions ~coeffs ~t_dim ~delta ~size =
  let r = Array.length coeffs in
  let result = Array.make (Checked.pow r delta) [] in
  let rec go level path_id exp =
    if level = delta then result.(path_id) <- exp
    else begin
      let sub = size / Checked.pow t_dim (level + 1) in
      for i = 0 to r - 1 do
        let exp' =
          List.concat_map
            (fun (c, ro, co) ->
              let acc = ref [] in
              Array.iteri
                (fun j w ->
                  if w <> 0 then begin
                    let p = j / t_dim and q = j mod t_dim in
                    acc := (Checked.mul c w, ro + (p * sub), co + (q * sub)) :: !acc
                  end)
                coeffs.(i);
              List.rev !acc)
            exp
        in
        go (level + 1) ((path_id * r) + i) exp'
      done
    end
  in
  go 0 0 [ (1, 0, 0) ];
  result

(* --- Exact cost model for the kronpow planner ------------------------

   A node's entries all share one width state (pos_len, neg_len): level 0
   is uniform by construction (every entry comes out of the same encoder)
   and [Weighted_sum.signed_sum]'s output widths depend only on the term
   multiset, which is per-node constant.  That makes the cost of a whole
   step a function of the parent's width state alone, and
   [Weighted_sum.to_bits_cost] prices each candidate sum exactly —
   the planner's numbers equal the built circuit's gate/edge counts. *)

type widths = { pw : int; nw : int }

let widths_of (sb : Repr.signed_bits) =
  { pw = Array.length sb.Repr.pos_bits; nw = Array.length sb.Repr.neg_bits }

(* Exact (gates + edges, output widths) of [signed_sum] over terms of
   (coefficient, entry widths).  Mirrors the part routing of signed_sum:
   a positive coefficient sends the entry's pos part to the output pos
   side, a negative one swaps the parts and uses |c|. *)
let sum_cost ?share_top terms =
  let side hi lo =
    let tbl = Hashtbl.create 16 in
    let bound = ref 0 in
    List.iter
      (fun (c, st) ->
        let len = if c > 0 then hi st else if c < 0 then lo st else 0 in
        let a = abs c in
        for i = 0 to len - 1 do
          let w = Checked.mul a (Checked.pow 2 i) in
          Hashtbl.replace tbl w
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl w));
          bound := Checked.add !bound w
        done)
      terms;
    let multiset = Hashtbl.fold (fun w m acc -> (w, m) :: acc) tbl [] in
    let gates, edges = Weighted_sum.to_bits_cost ?share_top multiset in
    (gates + edges, Ilog.bits !bound)
  in
  let cost_p, pw = side (fun s -> s.pw) (fun s -> s.nw) in
  let cost_n, nw = side (fun s -> s.nw) (fun s -> s.pw) in
  (cost_p + cost_n, { pw; nw })

(* Pick flat vs factored for one delta-step, given the parent width
   state.  Costs drop the common size'^2 entry factor (every candidate
   emits the same per-entry sums over the node grid).

   A split is admissible only when every child path comes out with
   exactly the flat plan's output widths: partial sums round a stage-A
   bound up to [2^bits - 1], so a factored child can be {e wider} than
   its flat twin, and wider leaves make every downstream consumer
   (later steps, products, the combine tree) more expensive in ways a
   per-step comparison cannot see.  With equal widths the downstream
   circuit is cost-identical, so a strict local win is a global one —
   the "gates + edges never increases" guarantee. *)
let plan_step ?share_top ~coeffs ~t_dim ~delta state =
  let t2 = t_dim * t_dim in
  let flat =
    Array.map
      (fun exp -> sum_cost ?share_top (List.map (fun (c, _) -> (c, state)) exp))
      (Kronpow.path_expansions ~coeffs ~t_dim ~delta)
  in
  let flat_cost = Array.fold_left (fun a (c, _) -> a + c) 0 flat in
  let splits =
    List.filter_map
      (fun d1 ->
        let d2 = delta - d1 in
        let fine = Kronpow.path_expansions ~coeffs ~t_dim ~delta:d2 in
        let coarse = Kronpow.path_expansions ~coeffs ~t_dim ~delta:d1 in
        let r2 = Array.length fine in
        let used = Array.make (Checked.pow t2 d1) false in
        Array.iter (List.iter (fun (_, j1) -> used.(j1) <- true)) coarse;
        let used_count =
          Array.fold_left (fun a u -> if u then a + 1 else a) 0 used
        in
        (* Stage A: C^{x d2} inside every used coarse block. *)
        let stage_a =
          Array.map
            (fun exp ->
              sum_cost ?share_top (List.map (fun (c, _) -> (c, state)) exp))
            fine
        in
        let cost_a =
          used_count * Array.fold_left (fun a (c, _) -> a + c) 0 stage_a
        in
        (* Stage B: C^{x d1} over the partials, per fine path. *)
        let cost_b = ref 0 in
        let widths_ok = ref true in
        Array.iteri
          (fun p1 exp ->
            Array.iteri
              (fun p2 (_, st2) ->
                let c, w =
                  sum_cost ?share_top (List.map (fun (c, _) -> (c, st2)) exp)
                in
                cost_b := !cost_b + c;
                if w <> snd flat.((p1 * r2) + p2) then widths_ok := false)
              stage_a)
          coarse;
        if !widths_ok then Some (d1, cost_a + !cost_b) else None)
      (Kronpow.splits ~delta)
  in
  Kronpow.choose ~flat:flat_cost ~splits

let check_coeffs ~algo ~coeffs =
  let t2 = algo.Bilinear.t_dim * algo.Bilinear.t_dim in
  if Array.length coeffs <> algo.Bilinear.rank then
    invalid_arg "Sum_tree: coefficient row count must equal the rank";
  Array.iter
    (fun row ->
      if Array.length row <> t2 then
        invalid_arg "Sum_tree: coefficient row width must be T^2")
    coeffs

let compute_leaves ?share_top ?(kronpow = false) b ~algo ~coeffs ~schedule
    input =
  check_coeffs ~algo ~coeffs;
  let t_dim = algo.Bilinear.t_dim and r = algo.Bilinear.rank in
  let levels = (schedule : Level_schedule.t).Level_schedule.levels in
  let l_last = levels.(Array.length levels - 1) in
  let n = Array.length input in
  if n <> Checked.pow t_dim l_last then
    invalid_arg "Sum_tree.compute_leaves: input size must be T^L";
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Sum_tree.compute_leaves: input must be square")
    input;
  (* Level 0: one node holding the input matrix, flattened row-major. *)
  let current =
    ref [| Array.init (n * n) (fun idx -> input.(idx / n).(idx mod n)) |]
  in
  let current_size = ref n in
  for idx = 1 to Array.length levels - 1 do
    let delta = levels.(idx) - levels.(idx - 1) in
    let size = !current_size in
    let size' = size / Checked.pow t_dim delta in
    let exps = expansions ~coeffs ~t_dim ~delta ~size in
    let children_per_node = Checked.pow r delta in
    let parents = !current in
    (* Children of one parent share that parent's matrix; the layout
       parent-major keeps child ids equal to the base-r path value. *)
    let flat_children parent =
      Array.init children_per_node (fun path_id ->
          let exp = exps.(path_id) in
          Array.init (size' * size') (fun e ->
              let x = e / size' and y = e mod size' in
              let terms =
                List.map
                  (fun (c, ro, co) ->
                    let entry = parent.(((ro + x) * size) + (co + y)) in
                    (c, Repr.signed_of_sbits entry))
                  exp
              in
              Weighted_sum.signed_sum ?share_top b terms))
    in
    let split_children d1 parent =
      let d2 = delta - d1 in
      let s1 = size / Checked.pow t_dim d1 in
      let offsets = Kronpow.block_offsets ~t_dim ~delta:d1 ~size in
      let fine = expansions ~coeffs ~t_dim ~delta:d2 ~size:s1 in
      let coarse = Kronpow.path_expansions ~coeffs ~t_dim ~delta:d1 in
      let r2 = Checked.pow r d2 in
      let partials = Hashtbl.create 64 in
      let partial j1 p2 =
        match Hashtbl.find_opt partials (j1, p2) with
        | Some z -> z
        | None ->
            let ro1, co1 = offsets.(j1) in
            let z =
              Array.init (size' * size') (fun e ->
                  let x = e / size' and y = e mod size' in
                  let terms =
                    List.map
                      (fun (c, ro, co) ->
                        let entry =
                          parent.(((ro1 + ro + x) * size) + (co1 + co + y))
                        in
                        (c, Repr.signed_of_sbits entry))
                      fine.(p2)
                  in
                  Weighted_sum.signed_sum ?share_top b terms)
            in
            Hashtbl.add partials (j1, p2) z;
            z
      in
      Array.init children_per_node (fun p ->
          let p1 = p / r2 and p2 = p mod r2 in
          let coarse_terms = coarse.(p1) in
          Array.init (size' * size') (fun e ->
              let terms =
                List.map
                  (fun (c, j1) -> (c, Repr.signed_of_sbits (partial j1 p2).(e)))
                  coarse_terms
              in
              Weighted_sum.signed_sum ?share_top b terms))
    in
    let next = Array.make (Array.length parents * children_per_node) [||] in
    if not (kronpow && delta >= 2) then
      Array.iteri
        (fun pi parent ->
          Array.blit (flat_children parent) 0 next (pi * children_per_node)
            children_per_node)
        parents
    else begin
      (* Plans depend only on a parent's width state — memoize. *)
      let memo = Hashtbl.create 8 in
      Array.iteri
        (fun pi parent ->
          let state = widths_of parent.(0) in
          let plan =
            match Hashtbl.find_opt memo state with
            | Some p -> p
            | None ->
                let p = plan_step ?share_top ~coeffs ~t_dim ~delta state in
                Hashtbl.add memo state p;
                p
          in
          let kids =
            match plan with
            | Kronpow.Flat -> flat_children parent
            | Kronpow.Split { d1 } -> split_children d1 parent
          in
          Array.blit kids 0 next (pi * children_per_node) children_per_node)
        parents
    end;
    current := next;
    current_size := size'
  done;
  if !current_size <> 1 then
    invalid_arg "Sum_tree.compute_leaves: schedule does not end at the leaves";
  Array.map (fun node -> node.(0)) !current

let compute_leaves_staged b ~algo ~coeffs ~stages ~l input =
  check_coeffs ~algo ~coeffs;
  let t_dim = algo.Bilinear.t_dim in
  let n = Array.length input in
  if n <> Checked.pow t_dim l then
    invalid_arg "Sum_tree.compute_leaves_staged: input size must be T^l";
  let exps = expansions ~coeffs ~t_dim ~delta:l ~size:n in
  Array.map
    (fun exp ->
      let terms =
        List.map
          (fun (c, ro, co) -> (c, Repr.signed_of_sbits input.(ro).(co)))
          exp
      in
      Staged_sum.signed_sum b ~stages terms)
    exps

let reference_leaves ~algo ~coeffs m =
  check_coeffs ~algo ~coeffs;
  let t_dim = algo.Bilinear.t_dim in
  let acc = ref [] in
  let rec go m =
    let size = Matrix.rows m in
    if size = 1 then acc := Matrix.get m 0 0 :: !acc
    else begin
      let sub = size / t_dim in
      Array.iter
        (fun row ->
          let combined = ref (Matrix.create ~rows:sub ~cols:sub) in
          Array.iteri
            (fun j c ->
              if c <> 0 then
                let p = j / t_dim and q = j mod t_dim in
                let block =
                  Matrix.sub_block m ~row:(p * sub) ~col:(q * sub) ~rows:sub
                    ~cols:sub
                in
                combined := Matrix.add !combined (Matrix.scale c block))
            row;
          go !combined)
        coeffs
    end
  in
  go m;
  Array.of_list (List.rev !acc)
