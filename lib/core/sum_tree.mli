(** The top-down sum-tree compiler (Figure 2, Lemma 4.2).

    Given a bilinear algorithm with coefficient rows [coeffs] ([r x T^2]),
    the tree [T] over an [N x N] input matrix has, at level [h], [r^h]
    nodes; the node reached by multiplication-index path [(i_1 .. i_h)]
    holds the [(N/T^h) x (N/T^h)] matrix

    [sum over block paths (j_1 .. j_h) of
       (prod_l coeffs.(i_l).(j_l)) * (input block at (j_1 .. j_h))].

    With [coeffs = u] this is the paper's [T_A]; with [coeffs = v], [T_B];
    with the transposed [w] over the transposed input it yields the trace
    circuit's third linear form (eq. 4).

    The compiler materializes exactly the levels a {!Level_schedule.t}
    selects: each selected level is computed from the previous one by
    depth-2 weighted sums (Lemma 3.2), so the leaves — the [N^(log_T r)]
    scalars the fast algorithm multiplies — are reached in depth
    [2 * steps]. *)

open Tcmm_threshold
open Tcmm_arith

type input = Repr.signed_bits array array
(** [input.(i).(j)] is the entry in row [i], column [j]. *)

val a_coeffs : Tcmm_fastmm.Bilinear.t -> int array array
val b_coeffs : Tcmm_fastmm.Bilinear.t -> int array array

val w_transposed_coeffs : Tcmm_fastmm.Bilinear.t -> int array array
(** [r x T^2] matrix with entry [(i, j) = w.(j).(i)] — the coefficient of
    product [M_i] in the expression for block [j] of [C].  Feeding this to
    the sum tree over the {e transposed} input computes, for each leaf
    [k], the weighted sum [sum_{i,j} w_k^(ij) A_ji] of eq. (4). *)

val leaf_count : Tcmm_fastmm.Bilinear.t -> l:int -> int
(** [r^l] — the number of scalar products. *)

val compute_leaves :
  ?share_top:bool ->
  ?kronpow:bool ->
  Builder.t ->
  algo:Tcmm_fastmm.Bilinear.t ->
  coeffs:int array array ->
  schedule:Level_schedule.t ->
  input ->
  Repr.signed_bits array
(** [compute_leaves b ~algo ~coeffs ~schedule input] emits the circuit
    computing all [r^L] leaf scalars and returns them indexed by leaf id
    (path [(i_1 .. i_L)] read as a base-[r] numeral, root digit first).
    Requires [input] to be square of size [T^L] where [L] is the
    schedule's last level; raises [Invalid_argument] otherwise.

    [kronpow] (default [false]) enables the {!Tcmm_fastmm.Kronpow}
    rewrite: every multi-level step ([delta >= 2]) is priced exactly
    (flat vs every [d1 + d2] factoring) with
    {!Tcmm_arith.Weighted_sum.to_bits_cost} and emitted in the cheapest
    shape, so [gates + edges] never increases.  Outputs are value-equal
    to the flat circuit but not wire-identical, and a factored step adds
    2 to the circuit's depth — which is why it is opt-in and excluded
    from the depth/DP certification paths. *)

val compute_leaves_staged :
  Builder.t ->
  algo:Tcmm_fastmm.Bilinear.t ->
  coeffs:int array array ->
  stages:int ->
  l:int ->
  input ->
  Repr.signed_bits array
(** The Theorem 4.1 route: no intermediate levels at all — every leaf's
    weighted sum over input entries is expanded directly and added with a
    [stages]-round {!Tcmm_arith.Staged_sum} (depth [2 * stages]).  Used by
    the ablation experiments to show that Lemma 4.3's level selection
    beats generic staged addition, as Section 4.2 argues. *)

val reference_leaves :
  algo:Tcmm_fastmm.Bilinear.t ->
  coeffs:int array array ->
  Tcmm_fastmm.Matrix.t ->
  int array
(** Pure-integer reference computation of the same [r^L] leaf scalars
    (full recursion, no circuits) — the test oracle for
    {!compute_leaves}.  Pass the same [coeffs] (and, for the W side, the
    transposed matrix). *)
