let check_layout (layout : Tcmm.Encode.t) g =
  let n = Graph.num_vertices g in
  if layout.Tcmm.Encode.rows <> n || layout.Tcmm.Encode.cols <> n then
    invalid_arg
      (Printf.sprintf "Stream: layout is %dx%d but the graph has %d vertices"
         layout.Tcmm.Encode.rows layout.Tcmm.Encode.cols n);
  if layout.Tcmm.Encode.signed || layout.Tcmm.Encode.entry_bits <> 1 then
    invalid_arg
      "Stream: adjacency streaming needs an unsigned 1-bit entry layout"

let entry_wire (layout : Tcmm.Encode.t) i j =
  layout.Tcmm.Encode.base
  + (((i * layout.Tcmm.Encode.cols) + j) * layout.Tcmm.Encode.wires_per_entry)

let edge_wires ~layout g i j =
  check_layout layout g;
  (* Normalization (and the self-loop / range validation) via the graph
     itself, so the wire pair always matches what [flip_edges] does. *)
  ignore (Graph.has_edge g i j : bool);
  (entry_wire layout i j, entry_wire layout j i)

let delta ~layout g flips =
  check_layout layout g;
  let g', rev =
    List.fold_left
      (fun (g, acc) (i, j) ->
        let v = not (Graph.has_edge g i j) in
        let g = Graph.flip_edges g [ (i, j) ] in
        ( g,
          (entry_wire layout j i, v) :: (entry_wire layout i j, v) :: acc ))
      (g, []) flips
  in
  (g', Array.of_list (List.rev rev))
