(** Simple undirected graphs as adjacency structures.

    The trace circuit's headline application (paper, Sections 2.3 and 5)
    is triangle counting in social networks; this module provides the
    graph substrate: construction, adjacency matrices, and the exact
    combinatorial references the circuits are checked against. *)

type t
(** A simple undirected graph on vertices [0 .. n-1]: no self-loops, no
    multi-edges. *)

val empty : int -> t
(** [empty n] has [n] vertices and no edges.  Requires [n >= 1]. *)

val num_vertices : t -> int
val num_edges : t -> int

val add_edge : t -> int -> int -> t
(** Ignores an already-present edge; raises [Invalid_argument] on a
    self-loop or out-of-range vertex. *)

val has_edge : t -> int -> int -> bool

val flip_edges : t -> (int * int) list -> t
(** Toggles each listed edge in order (present → absent, absent →
    present) — the streaming scenario's primitive.  A repeated pair
    toggles repeatedly, so a flip-then-unflip list is a structural
    no-op.  Raises like {!add_edge} on self-loops or out-of-range
    vertices. *)

val edges : t -> (int * int) list
(** As [(i, j)] with [i < j], lexicographically sorted. *)

val of_edges : n:int -> (int * int) list -> t
val degree : t -> int -> int
val neighbours : t -> int -> int list

val adjacency : t -> Tcmm_fastmm.Matrix.t
(** Symmetric 0/1 matrix with zero diagonal. *)

val of_adjacency : Tcmm_fastmm.Matrix.t -> t
(** Raises [Invalid_argument] unless the matrix is square, symmetric,
    0/1-valued with zero diagonal. *)

val pad_to : t -> int -> t
(** [pad_to g n] adds isolated vertices up to [n] (so the adjacency
    matrix reaches a circuit-friendly size like [T^l]); triangle and
    wedge counts are unchanged.  Raises [Invalid_argument] if
    [n < num_vertices g]. *)
