module Matrix = Tcmm_fastmm.Matrix

module Edge_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type t = { n : int; edges : Edge_set.t }

let empty n =
  if n < 1 then invalid_arg "Graph.empty: n < 1";
  { n; edges = Edge_set.empty }

let num_vertices g = g.n
let num_edges g = Edge_set.cardinal g.edges

let norm g i j name =
  if i < 0 || j < 0 || i >= g.n || j >= g.n then
    invalid_arg (Printf.sprintf "Graph.%s: vertex out of range" name);
  if i = j then invalid_arg (Printf.sprintf "Graph.%s: self-loop" name);
  if i < j then (i, j) else (j, i)

let add_edge g i j = { g with edges = Edge_set.add (norm g i j "add_edge") g.edges }
let has_edge g i j = Edge_set.mem (norm g i j "has_edge") g.edges

let flip_edge g i j =
  let e = norm g i j "flip_edges" in
  if Edge_set.mem e g.edges then { g with edges = Edge_set.remove e g.edges }
  else { g with edges = Edge_set.add e g.edges }

let flip_edges g flips = List.fold_left (fun g (i, j) -> flip_edge g i j) g flips
let edges g = Edge_set.elements g.edges
let of_edges ~n es = List.fold_left (fun g (i, j) -> add_edge g i j) (empty n) es

let degree g v =
  if v < 0 || v >= g.n then invalid_arg "Graph.degree: vertex out of range";
  Edge_set.fold (fun (i, j) d -> if i = v || j = v then d + 1 else d) g.edges 0

let neighbours g v =
  if v < 0 || v >= g.n then invalid_arg "Graph.neighbours: vertex out of range";
  Edge_set.fold
    (fun (i, j) acc -> if i = v then j :: acc else if j = v then i :: acc else acc)
    g.edges []
  |> List.sort compare

let adjacency g =
  let m = Matrix.create ~rows:g.n ~cols:g.n in
  Edge_set.iter
    (fun (i, j) ->
      Matrix.set m i j 1;
      Matrix.set m j i 1)
    g.edges;
  m

let of_adjacency m =
  let n = Matrix.rows m in
  if Matrix.cols m <> n then invalid_arg "Graph.of_adjacency: non-square";
  let g = ref (empty n) in
  for i = 0 to n - 1 do
    if Matrix.get m i i <> 0 then invalid_arg "Graph.of_adjacency: nonzero diagonal";
    for j = i + 1 to n - 1 do
      let v = Matrix.get m i j in
      if v <> Matrix.get m j i then invalid_arg "Graph.of_adjacency: asymmetric";
      match v with
      | 0 -> ()
      | 1 -> g := add_edge !g i j
      | _ -> invalid_arg "Graph.of_adjacency: non-binary entry"
    done
  done;
  !g

let pad_to g n =
  if n < g.n then invalid_arg "Graph.pad_to: target smaller than graph";
  { g with n }
