(** Edge-flip streams: graph mutations as circuit input-bit deltas.

    The streaming scenario holds a graph on the client, sends edge
    flips, and re-evaluates the trace/triangle circuit incrementally
    ({!Tcmm_threshold.Packed.update}).  An adjacency matrix is encoded
    one input wire per entry (unsigned, [entry_bits = 1]), so flipping
    edge [(i, j)] toggles exactly the two wires carrying [A[i][j]] and
    [A[j][i]].  This module computes those deltas from the circuit's
    {!Tcmm.Encode.t} input layout — the same layout {!Tcmm.Encode.write}
    uses for full encodes, so incremental and from-scratch evaluation
    see identical input bits by construction. *)

val edge_wires : layout:Tcmm.Encode.t -> Graph.t -> int -> int -> int * int
(** The two input wires carrying entries [(i, j)] and [(j, i)].  Raises
    [Invalid_argument] if the layout is not an unsigned 1-bit square
    layout matching the graph's vertex count, or on a self-loop /
    out-of-range pair. *)

val delta :
  layout:Tcmm.Encode.t ->
  Graph.t ->
  (int * int) list ->
  Graph.t * (int * bool) array
(** [delta ~layout g flips] applies the flips in order (repeated pairs
    toggle repeatedly, exactly like {!Graph.flip_edges}) and returns the
    new graph together with the input-bit delta — two [(wire, value)]
    entries per flip, in flip order — ready for
    {!Tcmm_threshold.Packed.update}.  Raises as {!edge_wires}. *)
