open Tcmm_threshold
module Checked = Tcmm_util.Checked
module Ilog = Tcmm_util.Ilog

(* Merge duplicate wires so no gate reads the same wire twice; weights are
   positive so merging never cancels terms. *)
let merged_terms (u : Repr.unsigned) =
  let tbl = Hashtbl.create (Array.length u.Repr.wires) in
  let order = ref [] in
  Array.iteri
    (fun i wire ->
      let w = u.Repr.weights.(i) in
      match Hashtbl.find_opt tbl wire with
      | None ->
          Hashtbl.add tbl wire w;
          order := wire :: !order
      | Some prev -> Hashtbl.replace tbl wire (Checked.add prev w))
    u.Repr.wires;
  List.rev_map (fun wire -> (wire, Hashtbl.find tbl wire)) !order

(* The largest 2-adic valuation among the weights: bits strictly above it
   keep every term, i.e. they are bits of the untruncated sum and can
   share one first layer. *)
let max_valuation terms =
  List.fold_left
    (fun acc (_, w) ->
      let rec v w acc = if w land 1 = 1 then acc else v (w lsr 1) (acc + 1) in
      max acc (v w 0))
    0 terms

let to_bits ?(share_top = false) b (u : Repr.unsigned) =
  if Repr.is_binary u then Array.copy u.Repr.wires
  else if u.Repr.bound = 0 then [||]
  else begin
    let terms = merged_terms u in
    let total_bits = Ilog.bits u.Repr.bound in
    (* Bits j0..total_bits read the untruncated sum; when sharing is on
       and there are at least two wires, build their first layer once. *)
    let j0 = max_valuation terms + 1 in
    let shared =
      if (not share_top) || List.length terms < 2 || j0 > total_bits then None
      else begin
        let k0 = total_bits - j0 + 1 in
        if total_bits >= 62 then None
        else begin
          let inputs = Array.of_list (List.map fst terms) in
          let weights = Array.of_list (List.map snd terms) in
          let step = 1 lsl (j0 - 1) in
          let thresholds = Array.init (1 lsl k0) (fun i -> (i + 1) * step) in
          Some (Builder.add_shared_gates b ~inputs ~weights ~thresholds)
        end
      end
    in
    Array.init total_bits (fun jm1 ->
        let j = jm1 + 1 in
        match shared with
        | Some y when j >= j0 ->
            (* Bit j of the untruncated sum from the shared grid:
               y.(i-1) = (s >= i * 2^(j0-1)); the bit is 1 iff s lies in
               [q*2^(j-1), (q+1)*2^(j-1)) for some odd q. *)
            let stride = 1 lsl (j - j0) in
            let out_terms = ref [] in
            let q = ref 1 in
            let limit = Array.length y in
            while (!q * stride) <= limit do
              out_terms := (y.((!q * stride) - 1), 1) :: !out_terms;
              if ((!q + 1) * stride) <= limit then
                out_terms := (y.(((!q + 1) * stride) - 1), -1) :: !out_terms;
              q := !q + 2
            done;
            Builder.add_gate_terms b ~terms:(List.rev !out_terms) ~threshold:1
        | _ -> (
            (* Terms divisible by 2^j contribute nothing modulo 2^j. *)
            let kept = List.filter (fun (_, w) -> w mod (1 lsl j) <> 0) terms in
            match kept with
            | [] -> Builder.const b false
            | [ (wire, w) ] ->
                (* s_j = w * x: bit j-1 is x AND (bit j-1 of w). *)
                if (w lsr jm1) land 1 = 1 then wire else Builder.const b false
            | _ :: _ :: _ ->
                let bj = Checked.sum (List.map snd kept) in
                let lj = Ilog.bits bj in
                if lj < j then Builder.const b false
                else Msb.kth_msb b ~terms:kept ~l:lj ~k:(lj - j + 1)))
  end

let unsigned_sum ?share_top b terms =
  let scaled =
    List.filter_map
      (fun (c, u) ->
        if c < 0 then invalid_arg "Weighted_sum.unsigned_sum: negative scale"
        else if c = 0 || Repr.num_terms u = 0 then None
        else Some (Repr.scale_unsigned c u))
      terms
  in
  to_bits ?share_top b (Repr.sort_by_weight (Repr.concat_unsigned scaled))

let signed_sum ?share_top b terms =
  let part select_hi select_lo =
    List.filter_map
      (fun (c, (s : Repr.signed)) ->
        if c > 0 then
          let u = select_hi s in
          if Repr.num_terms u = 0 then None else Some (Repr.scale_unsigned c u)
        else if c < 0 then
          let u = select_lo s in
          if Repr.num_terms u = 0 then None
          else Some (Repr.scale_unsigned (Checked.neg c) u)
        else None)
      terms
  in
  (* Canonical term order: structurally identical sums whose terms arrive
     in different child order emit identical gate blocks, so the template
     layer can hash-cons them (the weight vectors are part of the key). *)
  let pos =
    Repr.sort_by_weight
      (Repr.concat_unsigned (part (fun s -> s.Repr.pos) (fun s -> s.Repr.neg)))
  in
  let neg =
    Repr.sort_by_weight
      (Repr.concat_unsigned (part (fun s -> s.Repr.neg) (fun s -> s.Repr.pos)))
  in
  if not (Builder.templating b) then begin
    (* Emit the positive part first, matching the templated build below —
       record-field evaluation order is unspecified, so building the
       record directly from two [to_bits] calls would flip the order and
       stamped circuits would no longer be wire-for-wire identical. *)
    let pos_bits = to_bits ?share_top b pos in
    let neg_bits = to_bits ?share_top b neg in
    { Repr.pos_bits; neg_bits }
  end
  else begin
    (* Template key: everything [to_bits] branches on with wire ids
       abstracted away — the share_top flag, both weight vectors with
       their split point and bounds, and the wire-duplication pattern
       (merged_terms collapses duplicate wires, so aliasing changes the
       emitted gates). *)
    let np = Array.length pos.Repr.wires in
    let nn = Array.length neg.Repr.wires in
    let slots = Array.append pos.Repr.wires neg.Repr.wires in
    let st = match share_top with Some true -> 1 | _ -> 0 in
    let data =
      Array.concat
        [
          [| st; np; nn; pos.Repr.bound; neg.Repr.bound |];
          pos.Repr.weights;
          neg.Repr.weights;
          Template.pattern slots;
        ]
    in
    let outs, meta =
      Builder.templated b ~tag:1 ~data ~inputs:slots ~build:(fun () ->
          let pb = to_bits ?share_top b pos in
          let nb = to_bits ?share_top b neg in
          (Array.append pb nb, [| [| Array.length pb |] |]))
    in
    let npb = meta.(0).(0) in
    {
      Repr.pos_bits = Array.sub outs 0 npb;
      neg_bits = Array.sub outs npb (Array.length outs - npb);
    }
  end

(* Arithmetic mirror of [to_bits]: replay the same per-bit case analysis
   on a (weight, multiplicity) multiset and tally the gates and edges the
   construction would emit.  Must be kept in exact lockstep with
   [to_bits] — the test suite compares the two gate-for-gate. *)
let to_bits_cost ?(share_top = false) multiset =
  let multiset = List.filter (fun (_, m) -> m <> 0) multiset in
  List.iter
    (fun (w, m) ->
      if w <= 0 || m < 0 then invalid_arg "Weighted_sum.to_bits_cost: bad multiset")
    multiset;
  let bound =
    List.fold_left (fun acc (w, m) -> Checked.add acc (Checked.mul w m)) 0 multiset
  in
  if bound = 0 then (0, 0)
  else begin
    (* [is_binary]: weights are exactly 2^0 .. 2^(k-1), one wire each. *)
    let sorted = List.sort compare (List.map fst multiset) in
    let binary =
      List.for_all (fun (_, m) -> m = 1) multiset
      && List.mapi (fun i w -> w = 1 lsl i) sorted |> List.for_all Fun.id
      && List.length sorted < 62
    in
    if binary then (0, 0)
    else begin
      let total_bits = Ilog.bits bound in
      let total_wires = List.fold_left (fun acc (_, m) -> acc + m) 0 multiset in
      let distinct_wires =
        (* The builder's merged term list has one entry per wire, so the
           "fewer than two terms" check counts wires. *)
        total_wires
      in
      let j0 = max_valuation (List.map (fun (w, _) -> ((), w)) multiset) + 1 in
      let sharing = share_top && distinct_wires >= 2 && j0 <= total_bits && total_bits < 62 in
      let gates = ref 0 and edges = ref 0 in
      if sharing then begin
        (* One shared first layer of 2^(L-j0+1) gates, then one output
           gate per bit j >= j0 reading its odd/even pairs. *)
        let k0 = total_bits - j0 + 1 in
        let first = 1 lsl k0 in
        gates := !gates + first;
        edges := !edges + (first * total_wires);
        for j = j0 to total_bits do
          incr gates;
          (* Output fan-in: one term per odd q with q*stride <= 2^k0, plus
             a partner; q ranges over odd 1..2^(L-j+1)-1, each with a
             partner, so 2^(L-j+1) terms. *)
          edges := !edges + (1 lsl (total_bits - j + 1))
        done
      end;
      let last_per_bit = if sharing then j0 - 1 else total_bits in
      for j = 1 to last_per_bit do
        let kept = List.filter (fun (w, _) -> w mod (1 lsl j) <> 0) multiset in
        let wires = List.fold_left (fun acc (_, m) -> acc + m) 0 kept in
        match wires with
        | 0 -> incr gates (* const false *)
        | 1 ->
            let w = fst (List.hd (List.filter (fun (_, m) -> m > 0) kept)) in
            if (w lsr (j - 1)) land 1 = 0 then incr gates (* const false *)
        | _ ->
            let bj =
              List.fold_left (fun acc (w, m) -> Checked.add acc (Checked.mul w m)) 0 kept
            in
            let lj = Ilog.bits bj in
            if lj < j then incr gates (* const false *)
            else begin
              (* Lemma 3.1 with k = lj - j + 1: 2^k first-layer gates of
                 fan-in [wires], plus the output gate reading all 2^k. *)
              let first = 1 lsl (lj - j + 1) in
              gates := !gates + first + 1;
              edges := !edges + (first * wires) + first
            end
      done;
      (!gates, !edges)
    end
  end

let gate_cost_binary ~n ~w ~b =
  (* Paper's accounting: each of the b least significant bits costs
     2^(bits n + bits w + 1) + 1 gates; the remaining a = bits n + bits w
     most significant bits cost 2^k + 1 for k = 1..a. *)
  let a = Ilog.bits n + Ilog.bits w in
  let low = b * ((1 lsl (a + 1)) + 1) in
  let high = ref 0 in
  for k = 1 to a do
    high := !high + (1 lsl k) + 1
  done;
  low + !high
