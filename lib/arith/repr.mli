(** Number representations flowing through the circuits.

    Following Section 3 of the paper, a nonnegative integer is represented
    as an integer-weighted sum of binary wires, [x = sum_i w_i * x_i] with
    [w_i > 0]; a (possibly negative) integer is a pair of such sums with
    [value = pos - neg].  Binary representations (weights [2^0, 2^1, ...])
    are the special case produced by the Lemma 3.2 circuit and consumed by
    the Lemma 3.3 product circuit. *)

open Tcmm_threshold

type unsigned = private {
  wires : Wire.t array;
  weights : int array;  (** parallel to [wires]; every entry is > 0 *)
  bound : int;  (** sum of weights — an inclusive upper bound on the value *)
}

type signed = { pos : unsigned; neg : unsigned }
(** [value = value pos - value neg].  Not canonical: both parts may be
    positive simultaneously (the paper accepts the constant-factor
    overhead of this encoding). *)

type bits = Wire.t array
(** Little-endian binary: value = [sum_i 2^i * bits.(i)]. *)

type signed_bits = { pos_bits : bits; neg_bits : bits }

(** {1 Construction} *)

val unsigned_empty : unsigned
(** The constant 0 (no wires, no gates). *)

val unsigned_of_terms : (Wire.t * int) list -> unsigned
(** Drops zero-weight terms.  Raises [Invalid_argument] on a negative
    weight; raises [Tcmm_util.Checked.Overflow] if the bound overflows. *)

val unsigned_of_bits : bits -> unsigned
(** Weight [2^i] on wire [i]. *)

val unsigned_of_parts :
  wires:Wire.t array -> weights:int array -> bound:int -> unsigned
(** Reassemble an [unsigned] from parts taken from a previously built
    value — the template stamp path reconstructs product outputs this
    way.  The invariants (positive weights, [bound] = their sum) are the
    caller's responsibility; the parts are used as-is, unchecked and
    uncopied. *)

val scale_unsigned : int -> unsigned -> unsigned
(** [scale_unsigned c u] multiplies every weight by [c > 0]. *)

val concat_unsigned : unsigned list -> unsigned
(** Representation of the sum of the arguments (term concatenation — no
    gates; the same wire may appear several times afterwards). *)

val sort_by_weight : unsigned -> unsigned
(** Stable sort of the (wire, weight) pairs by ascending weight — the
    represented value is unchanged.  Canonicalizing term order before
    {!Weighted_sum.to_bits} makes structurally identical sums (same
    weight multiset, terms arriving in different child order) emit
    byte-identical gate blocks, which is what lets the template layer
    hash-cons them into one relocatable template. *)

val signed_zero : signed
val signed_of_unsigned : unsigned -> signed
val signed_of_sbits : signed_bits -> signed
val negate : signed -> signed

val scale_signed : int -> signed -> signed
(** Any integer scale; a negative [c] swaps the parts. [c = 0] yields
    {!signed_zero}. *)

val concat_signed : signed list -> signed

val sbits_zero : signed_bits
val sbits_of_bits : bits -> signed_bits
(** A nonnegative binary number viewed as signed. *)

(** {1 Queries} *)

val num_terms : unsigned -> int
val max_weight : unsigned -> int
(** 0 for the empty representation. *)

val is_binary : unsigned -> bool
(** True iff weights are exactly [2^0 .. 2^(k-1)] in order — i.e. the
    representation already is a binary number and needs no conversion. *)

(** {1 Evaluation (for tests and references)} *)

val eval_unsigned : (Wire.t -> bool) -> unsigned -> int
val eval_signed : (Wire.t -> bool) -> signed -> int
val eval_bits : (Wire.t -> bool) -> bits -> int
val eval_sbits : (Wire.t -> bool) -> signed_bits -> int
