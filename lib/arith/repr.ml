open Tcmm_threshold
module Checked = Tcmm_util.Checked

type unsigned = { wires : Wire.t array; weights : int array; bound : int }
type signed = { pos : unsigned; neg : unsigned }
type bits = Wire.t array
type signed_bits = { pos_bits : bits; neg_bits : bits }

let unsigned_empty = { wires = [||]; weights = [||]; bound = 0 }

let unsigned_of_terms terms =
  let terms = List.filter (fun (_, w) -> w <> 0) terms in
  List.iter
    (fun (_, w) ->
      if w < 0 then invalid_arg "Repr.unsigned_of_terms: negative weight")
    terms;
  {
    wires = Array.of_list (List.map fst terms);
    weights = Array.of_list (List.map snd terms);
    bound = Checked.sum (List.map snd terms);
  }

let unsigned_of_parts ~wires ~weights ~bound = { wires; weights; bound }

let unsigned_of_bits bits =
  {
    wires = Array.copy bits;
    weights = Array.init (Array.length bits) (fun i -> Checked.pow 2 i);
    bound = Checked.sub (Checked.pow 2 (Array.length bits)) 1;
  }

let scale_unsigned c u =
  if c <= 0 then invalid_arg "Repr.scale_unsigned: scale must be positive";
  {
    wires = u.wires;
    weights = Array.map (Checked.mul c) u.weights;
    bound = Checked.mul c u.bound;
  }

let concat_unsigned us =
  {
    wires = Array.concat (List.map (fun u -> u.wires) us);
    weights = Array.concat (List.map (fun u -> u.weights) us);
    bound = Checked.sum (List.map (fun u -> u.bound) us);
  }

let sort_by_weight u =
  let n = Array.length u.weights in
  let sorted = ref true in
  for i = 1 to n - 1 do
    if u.weights.(i - 1) > u.weights.(i) then sorted := false
  done;
  if !sorted then u
  else begin
    let idx = Array.init n (fun i -> i) in
    Array.sort
      (fun i j ->
        let c = compare (u.weights.(i) : int) u.weights.(j) in
        if c <> 0 then c else compare (i : int) j)
      idx;
    {
      wires = Array.map (fun i -> u.wires.(i)) idx;
      weights = Array.map (fun i -> u.weights.(i)) idx;
      bound = u.bound;
    }
  end

let signed_zero = { pos = unsigned_empty; neg = unsigned_empty }
let signed_of_unsigned u = { pos = u; neg = unsigned_empty }

let signed_of_sbits sb =
  { pos = unsigned_of_bits sb.pos_bits; neg = unsigned_of_bits sb.neg_bits }

let negate s = { pos = s.neg; neg = s.pos }

let scale_signed c s =
  if c = 0 then signed_zero
  else if c > 0 then
    { pos = scale_unsigned c s.pos; neg = scale_unsigned c s.neg }
  else
    let c = Checked.neg c in
    { pos = scale_unsigned c s.neg; neg = scale_unsigned c s.pos }

let concat_signed ss =
  {
    pos = concat_unsigned (List.map (fun s -> s.pos) ss);
    neg = concat_unsigned (List.map (fun s -> s.neg) ss);
  }

let sbits_zero = { pos_bits = [||]; neg_bits = [||] }
let sbits_of_bits bits = { pos_bits = bits; neg_bits = [||] }
let num_terms u = Array.length u.wires
let max_weight u = Array.fold_left max 0 u.weights

let is_binary u =
  let ok = ref true in
  Array.iteri (fun i w -> if w <> 1 lsl i then ok := false) u.weights;
  !ok && Array.length u.weights < 62

let eval_unsigned read u =
  let acc = ref 0 in
  Array.iteri
    (fun i w -> if read w then acc := Checked.add !acc u.weights.(i))
    u.wires;
  !acc

let eval_signed read s =
  Checked.sub (eval_unsigned read s.pos) (eval_unsigned read s.neg)

let eval_bits read bits =
  let acc = ref 0 in
  Array.iteri (fun i w -> if read w then acc := Checked.add !acc (1 lsl i)) bits;
  !acc

let eval_sbits read sb =
  Checked.sub (eval_bits read sb.pos_bits) (eval_bits read sb.neg_bits)
