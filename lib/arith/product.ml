open Tcmm_threshold
module Checked = Tcmm_util.Checked

let product2 b (x : Repr.bits) (y : Repr.bits) =
  let terms = ref [] in
  Array.iteri
    (fun i xi ->
      Array.iteri
        (fun j yj ->
          let wire =
            Builder.add_gate b ~inputs:[| xi; yj |] ~weights:[| 1; 1 |] ~threshold:2
          in
          terms := (wire, Checked.pow 2 (i + j)) :: !terms)
        y)
    x;
  Repr.unsigned_of_terms (List.rev !terms)

let product3 b (x : Repr.bits) (y : Repr.bits) (z : Repr.bits) =
  let terms = ref [] in
  Array.iteri
    (fun i xi ->
      Array.iteri
        (fun j yj ->
          Array.iteri
            (fun k zk ->
              let wire =
                Builder.add_gate b ~inputs:[| xi; yj; zk |] ~weights:[| 1; 1; 1 |]
                  ~threshold:3
              in
              terms := (wire, Checked.pow 2 (i + j + k)) :: !terms)
            z)
        y)
    x;
  Repr.unsigned_of_terms (List.rev !terms)

(* Rebuild the two unsigned halves of a templated product from the
   stamped output wires plus the template's metadata payload
   ([| [|n_pos; pos_bound; neg_bound|]; pos_weights; neg_weights |]).
   The weight arrays are shared across instances — Repr treats them as
   immutable (scaling maps into a fresh array). *)
let signed_of_stamp outs meta =
  let np = meta.(0).(0) in
  {
    Repr.pos =
      Repr.unsigned_of_parts ~wires:(Array.sub outs 0 np) ~weights:meta.(1)
        ~bound:meta.(0).(1);
    neg =
      Repr.unsigned_of_parts
        ~wires:(Array.sub outs np (Array.length outs - np))
        ~weights:meta.(2) ~bound:meta.(0).(2);
  }

let stamp_meta (s : Repr.signed) =
  [|
    [| Array.length s.Repr.pos.Repr.wires; s.Repr.pos.Repr.bound; s.Repr.neg.Repr.bound |];
    s.Repr.pos.Repr.weights;
    s.Repr.neg.Repr.weights;
  |]

let stamp_outs (s : Repr.signed) =
  Array.append s.Repr.pos.Repr.wires s.Repr.neg.Repr.wires

let signed_product2 b (x : Repr.signed_bits) (y : Repr.signed_bits) =
  let xp = x.Repr.pos_bits and xn = x.Repr.neg_bits in
  let yp = y.Repr.pos_bits and yn = y.Repr.neg_bits in
  let build () =
    {
      Repr.pos = Repr.concat_unsigned [ product2 b xp yp; product2 b xn yn ];
      neg = Repr.concat_unsigned [ product2 b xp yn; product2 b xn yp ];
    }
  in
  if not (Builder.templating b) then build ()
  else begin
    (* Gate shapes depend only on the four part lengths; the duplication
       pattern pins down which formal each captured ref resolves to. *)
    let slots = Array.concat [ xp; xn; yp; yn ] in
    let data =
      Array.concat
        [
          [|
            Array.length xp; Array.length xn; Array.length yp; Array.length yn;
          |];
          Template.pattern slots;
        ]
    in
    let outs, meta =
      Builder.templated b ~tag:2 ~data ~inputs:slots ~build:(fun () ->
          let s = build () in
          (stamp_outs s, stamp_meta s))
    in
    signed_of_stamp outs meta
  end

let signed_product3 b (x : Repr.signed_bits) (y : Repr.signed_bits)
    (z : Repr.signed_bits) =
  let xp = x.Repr.pos_bits and xn = x.Repr.neg_bits in
  let yp = y.Repr.pos_bits and yn = y.Repr.neg_bits in
  let zp = z.Repr.pos_bits and zn = z.Repr.neg_bits in
  (* A sign combination contributes positively iff it has an even number of
     negative parts. *)
  let build () =
    {
      Repr.pos =
        Repr.concat_unsigned
          [
            product3 b xp yp zp;
            product3 b xp yn zn;
            product3 b xn yp zn;
            product3 b xn yn zp;
          ];
      neg =
        Repr.concat_unsigned
          [
            product3 b xp yp zn;
            product3 b xp yn zp;
            product3 b xn yp zp;
            product3 b xn yn zn;
          ];
    }
  in
  if not (Builder.templating b) then build ()
  else begin
    let slots = Array.concat [ xp; xn; yp; yn; zp; zn ] in
    let data =
      Array.concat
        [
          [|
            Array.length xp;
            Array.length xn;
            Array.length yp;
            Array.length yn;
            Array.length zp;
            Array.length zn;
          |];
          Template.pattern slots;
        ]
    in
    let outs, meta =
      Builder.templated b ~tag:3 ~data ~inputs:slots ~build:(fun () ->
          let s = build () in
          (stamp_outs s, stamp_meta s))
    in
    signed_of_stamp outs meta
  end
