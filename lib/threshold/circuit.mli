(** A finalized threshold circuit.

    Wires [0 .. num_inputs-1] are the circuit inputs; wire
    [num_inputs + g] is the output of gate [g].  Gates are stored in
    topological order: a gate only reads wires with smaller ids, so a
    single left-to-right pass evaluates the circuit. *)

type t = private {
  num_inputs : int;
  gates : Gate.t array;
  outputs : Wire.t array;
  depths : int array;  (** per wire; inputs have depth 0 *)
}

val make : num_inputs:int -> gates:Gate.t array -> outputs:Wire.t array -> t
(** Computes depths and checks topological order.  Raises
    [Invalid_argument] on a malformed circuit (gate reading a wire at or
    above its own id, or an out-of-range output). *)

val map_gates : t -> f:(int -> Gate.t -> Gate.t) -> t
(** [map_gates c ~f] rebuilds the circuit with gate [g] replaced by
    [f g c.gates.(g)], revalidating topology and recomputing depths.
    This is the fault-injection hook used by [tcmm_check]'s mutation
    testing; a rewritten gate may change fan-in but must still read only
    wires below its own id. *)

val num_wires : t -> int
val num_gates : t -> int

val wire_of_gate : t -> int -> Wire.t
(** [wire_of_gate c g] is the output wire of gate index [g]. *)

val gate_of_wire : t -> Wire.t -> Gate.t option
(** [None] when the wire is a circuit input. *)

val depth_of_wire : t -> Wire.t -> int
val stats : t -> Stats.t
