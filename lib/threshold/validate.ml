type issue =
  | Dangling_wire of { gate : int; wire : Wire.t }
  | Duplicate_input_wire of { gate : int; wire : Wire.t }
  | Unreachable_output of { output_index : int; wire : Wire.t }
  | Zero_weight of { gate : int; wire : Wire.t }
  | Never_fires of { gate : int; threshold : int; max_sum : int }
  | Always_fires of { gate : int; threshold : int; min_sum : int }

let pp_issue ppf = function
  | Dangling_wire { gate; wire } ->
      Format.fprintf ppf "gate %d reads dangling wire %a" gate Wire.pp wire
  | Duplicate_input_wire { gate; wire } ->
      Format.fprintf ppf "gate %d reads wire %a more than once" gate Wire.pp wire
  | Unreachable_output { output_index; wire } ->
      Format.fprintf ppf "output %d is raw input wire %a" output_index Wire.pp wire
  | Zero_weight { gate; wire } ->
      Format.fprintf ppf "gate %d has zero weight on wire %a" gate Wire.pp wire
  | Never_fires { gate; threshold; max_sum } ->
      Format.fprintf ppf "gate %d can never fire (threshold %d > max sum %d)" gate
        threshold max_sum
  | Always_fires { gate; threshold; min_sum } ->
      Format.fprintf ppf "gate %d always fires (threshold %d <= min sum %d)" gate
        threshold min_sum

let severity = function
  | Dangling_wire _ | Zero_weight _ -> `Error
  | Duplicate_input_wire _ | Unreachable_output _ | Never_fires _ | Always_fires _
    -> `Warning

let check (c : Circuit.t) =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  Array.iteri
    (fun g (gate : Gate.t) ->
      let self = Circuit.wire_of_gate c g in
      let seen = Hashtbl.create (Array.length gate.Gate.inputs) in
      let min_sum = ref 0 and max_sum = ref 0 in
      Array.iteri
        (fun i w ->
          if w < 0 || w >= self then add (Dangling_wire { gate = g; wire = w });
          if Hashtbl.mem seen w then add (Duplicate_input_wire { gate = g; wire = w })
          else Hashtbl.add seen w ();
          let weight = gate.Gate.weights.(i) in
          if weight = 0 then add (Zero_weight { gate = g; wire = w });
          if weight < 0 then min_sum := !min_sum + weight
          else max_sum := !max_sum + weight)
        gate.Gate.inputs;
      (* Dead thresholds: a gate (with real fan-in — fan-in-0 constants are
         intentional) whose threshold lies outside the achievable weighted-sum
         range computes a constant, which is always suspicious in this
         repository's constructors and exactly what a faulty threshold
         perturbation produces. *)
      if Array.length gate.Gate.inputs > 0 then begin
        if gate.Gate.threshold > !max_sum then
          add (Never_fires { gate = g; threshold = gate.Gate.threshold; max_sum = !max_sum });
        if gate.Gate.threshold <= !min_sum then
          add (Always_fires { gate = g; threshold = gate.Gate.threshold; min_sum = !min_sum })
      end)
    c.Circuit.gates;
  Array.iteri
    (fun i w ->
      if w < c.Circuit.num_inputs then
        add (Unreachable_output { output_index = i; wire = w }))
    c.Circuit.outputs;
  List.rev !issues

let errors c = List.filter (fun i -> severity i = `Error) (check c)
let is_clean c = check c = []
