(** Engine selection glue for circuit drivers.

    The drivers in [lib/core] hold a [cache] next to their circuit and
    route every evaluation through {!run}, so callers pick the evaluator
    with a [?engine] argument ({!Simulator.Packed} by default) without
    the driver re-compiling the packed form on every call.  All engines
    return bit-identical {!Simulator.result}s. *)

type cache
(** Memoized {!Packed.t} for one circuit (compiled on first use). *)

val create_cache : unit -> cache

val packed : cache -> Circuit.t -> Packed.t
(** The compiled form of the circuit, compiling it on first use.  The
    cache is keyed by physical identity of the circuit, so a cache must
    not be shared between circuits. *)

val run :
  ?check:bool ->
  ?engine:Simulator.engine ->
  ?pool:Packed.Pool.t ->
  ?domains:int ->
  cache ->
  Circuit.t ->
  bool array ->
  Simulator.result
(** Evaluate one input vector with the chosen engine (default
    {!Simulator.Packed}, sequential).  [pool] / [domains] only apply to
    the packed engine. *)

val run_batch :
  ?check:bool ->
  ?pool:Packed.Pool.t ->
  ?domains:int ->
  cache ->
  Circuit.t ->
  bool array array ->
  Packed.batch_result
(** Batched evaluation (always the packed engine — the reference
    interpreter has no batched mode). *)
