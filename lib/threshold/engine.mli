(** Engine selection glue for circuit drivers.

    The drivers in [lib/core] route every evaluation through {!run}, so
    callers pick the evaluator with a [?engine] argument
    ({!Simulator.Packed} by default) without the driver re-compiling the
    packed form on every call.  All engines return bit-identical
    {!Simulator.result}s.

    Compiled forms are memoized in a keyed LRU ({!Tcmm_util.Lru}) keyed
    by physical circuit identity, so one cache may serve many circuits:
    alternating between two circuits through the same cache compiles
    each exactly once.  The drivers all use the process-wide {!shared}
    cache; {!create_cache} builds a private one (the serving daemon's
    worker and the tests do this to isolate their counters). *)

type cache
(** A keyed LRU of {!Packed.t} compiled forms, keyed by circuit
    ([==] identity), with hit/miss/eviction counters. *)

val create_cache : ?capacity:int -> unit -> cache
(** [capacity] defaults to 16 compiled circuits.  Raises
    [Invalid_argument] when [capacity < 1]. *)

val shared : unit -> cache
(** The process-wide cache (capacity 32) used by the [lib/core]
    drivers. *)

val packed : cache -> Circuit.t -> Packed.t
(** The compiled form of the circuit, compiling it on first use and
    promoting it to most-recently-used on every call. *)

val stats : cache -> Tcmm_util.Lru.stats
(** Hit/miss/eviction counters — the serving daemon's metrics and the
    alternation regression tests read these. *)

val run :
  ?check:bool ->
  ?engine:Simulator.engine ->
  ?pool:Packed.Pool.t ->
  ?domains:int ->
  cache ->
  Circuit.t ->
  bool array ->
  Simulator.result
(** Evaluate one input vector with the chosen engine (default
    {!Simulator.Packed}, sequential).  [pool] / [domains] only apply to
    the packed engine. *)

val run_batch :
  ?check:bool ->
  ?pool:Packed.Pool.t ->
  ?domains:int ->
  cache ->
  Circuit.t ->
  bool array array ->
  Packed.batch_result
(** Batched evaluation (always the packed engine — the reference
    interpreter has no batched mode). *)
