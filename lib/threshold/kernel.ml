(* Template-specialized SWAR evaluation kernels.

   [Packed.of_arena] knows each segment's fan-in, weights and
   thresholds once per *template* (39 templates cover 7,459 instances
   at N=16), so anything derivable from those arrays alone can be
   computed at compile time and replayed per instance.  [compile] bakes
   a segment into one of two specialized forms — a truth table over all
   input combinations for narrow segments, a popcount-vs-constant
   compare for wide single-weight segments — and the batched evaluator
   dispatches per segment, falling back to the generic CSR loop
   ([Generic]) where neither applies.

   Safety of baking thresholds in: native int addition is mod 2^63,
   which is commutative and associative, so the compile-time subset
   sums of [Tt] equal the generic path's running sums no matter the
   accumulation order; [Pop] is only compiled when |weight| * (fan+1)
   cannot exceed max_int, so neither the generic sum nor the
   compile-time division ever wraps and the count compare is exact.
   Overflow-checked evaluation bypasses kernels entirely (the generic
   edge-order loop is the documented [Checked.add] order). *)

(* ------------------------------------------------------------------ *)
(* Lane packing tables (shared with Packed)                           *)
(* ------------------------------------------------------------------ *)

(* Lanes are packed into the low [word_lanes] bits of a native int (62
   keeps every word nonnegative, so isolated bits stay in 1 lsl 0..61). *)
let word_lanes = 62

(* de Bruijn-style bit indexing: [(b * ctz_mul) lsr 56] is distinct for
   every b = 1 lsl e with e in 0..61 (verified at init), so a single
   multiply maps an isolated bit to a 7-bit hash slot — no division in
   the innermost batched loop.  [ctz_table] decodes a slot back to its
   lane; [lane_slot] is the inverse (lane -> slot), letting per-lane
   accumulators live directly at their hash slots so the accumulate
   loop needs no decode at all. *)
let ctz_mul = 0x540ddf87957338eb
let ctz_slots = 128

let ctz_table, lane_slot =
  let t = Array.make ctz_slots (-1) in
  let inv = Array.make word_lanes 0 in
  for e = 0 to word_lanes - 1 do
    let idx = ((1 lsl e) * ctz_mul) lsr 56 in
    assert (t.(idx) = -1);
    t.(idx) <- e;
    inv.(e) <- idx
  done;
  (t, inv)

(* ------------------------------------------------------------------ *)
(* Kernel specifications                                              *)
(* ------------------------------------------------------------------ *)

(* 2^5 = 32 minterms: a gate's firing set fits one immediate and the
   minterm tree stays within a cache line of scratch. *)
let tt_max_fan = 5

type cmp = Ge | Le

type spec =
  | Generic
  | Tt of { k_fan : int; k_tt : int array }
  | Pop of { k_bits : int; k_cmp : cmp; k_c : int array }
  | Csa of { k_widths : int array; k_mbits : int; k_bth : int array }

(* Smallest b >= 1 with n < 2^b. *)
let bits_for n =
  let b = ref 1 in
  while n lsr !b <> 0 do
    incr b
  done;
  !b

(* ceil(a / b) for b > 0, overflow-free. *)
let cdiv a b =
  let q = a / b and r = a mod b in
  if r > 0 then q + 1 else q

(* floor(a / b), overflow-free (used with b < 0). *)
let fdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && r < 0 <> (b < 0) then q - 1 else q

let compile ~fan ~weights ~thresholds =
  let count = Array.length thresholds in
  if fan <= tt_max_fan then begin
    (* Subset-sum DP over all 2^fan edge combinations; mod-2^63 adds in
       any order equal the generic path's running sum. *)
    let width = 1 lsl fan in
    let sums = Array.make width 0 in
    for c = 1 to width - 1 do
      let b = c land -c in
      let i = ctz_table.((b * ctz_mul) lsr 56) in
      sums.(c) <- sums.(c lxor b) + weights.(i)
    done;
    let tt =
      Array.init count (fun j ->
          let th = thresholds.(j) in
          let m = ref 0 in
          for c = 0 to width - 1 do
            if sums.(c) >= th then m := !m lor (1 lsl c)
          done;
          !m)
    in
    Tt { k_fan = fan; k_tt = tt }
  end
  else begin
    let wt = weights.(0) in
    if
      wt <> 0
      && Array.for_all (fun w -> w = wt) weights
      && abs wt <= max_int / (fan + 1)
    then begin
      (* sum = wt * popcount; the no-wrap bound makes both the generic
         sum and the threshold division exact, so comparing the count
         against a precomputed bound is equivalent. *)
      let bits = bits_for fan in
      if wt > 0 then
        (* wt*pc >= th  <=>  pc >= ceil(th / wt); clamp into
           [0, fan+1] (0 = always, fan+1 = never). *)
        let k_c =
          Array.map
            (fun th ->
              if th <= 0 then 0 else min (cdiv th wt) (fan + 1))
            thresholds
        in
        Pop { k_bits = bits; k_cmp = Ge; k_c }
      else
        (* wt*pc >= th  <=>  pc <= floor(th / wt) (dividing by a
           negative flips); clamp into [-1, fan] (-1 = never). *)
        let k_c =
          Array.map
            (fun th -> max (-1) (min (fdiv th wt) fan))
            thresholds
        in
        Pop { k_bits = bits; k_cmp = Le; k_c }
    end
    else begin
      (* Multi-weight wide segment: a fully bit-sliced carry-save
         kernel.  Groups are the maximal runs of equal weight in pool
         order (adjacent groups always differ, so run detection
         reconstructs the packed form's grouping exactly); each group's
         per-lane count is folded bit-sliced ([k_widths] fixes the
         branchless ripple depth) and shift-added into a bit-sliced
         master accumulator — one add per set bit of [|weight|].
         Negative groups fold {i complemented} inputs, counting zeros:
         [wt * ones = wt * len + |wt| * zeros], so the master stays
         nonnegative and each threshold is re-biased at compile time by
         [bias = sum of negative wt * len].  The master's maximum is
         [span = sum |wt| * len]; we require it to fit [word_lanes]
         bit-planes and every partial sum is bounded by it, so no carry
         ever leaves the top plane and the (biased) compare is exact. *)
      let runs = ref [] in
      let run0 = ref 0 in
      for i = 1 to fan do
        if i = fan || weights.(i) <> weights.(!run0) then begin
          runs := (weights.(!run0), i - !run0) :: !runs;
          run0 := i
        end
      done;
      let groups = Array.of_list (List.rev !runs) in
      let span = ref 0 and bias = ref 0 and ok = ref true in
      Array.iter
        (fun (wt, len) ->
          let a = abs wt in
          if a = 0 || a > ((max_int / 2) - !span) / len then ok := false
          else begin
            span := !span + (a * len);
            if wt < 0 then bias := !bias + (wt * len)
          end)
        groups;
      if (not !ok) || bits_for !span > word_lanes then Generic
      else
        let span = !span and bias = !bias in
        let k_bth =
          (* Biased thresholds, clamped into [0, span + 1] without
             overflow: the master never exceeds [span], so anything
             above [span + bias] can never fire and anything at most
             [bias] always does. *)
          Array.map
            (fun th ->
              if th > span + bias then span + 1
              else if th <= bias then 0
              else th - bias)
            thresholds
        in
        Csa
          {
            k_widths = Array.map (fun (_, len) -> bits_for len) groups;
            k_mbits = bits_for span;
            k_bth;
          }
    end
  end

(* ------------------------------------------------------------------ *)
(* Word-level evaluation                                              *)
(* ------------------------------------------------------------------ *)

(* Minterm product tree: after edge i, mt.(c) is the word of active
   lanes whose first i edge inputs spell combination c.  Doubling keeps
   the whole pass at 2^(fan+1) word ops for all 62 lanes at once;
   contradictory combinations on duplicated wires become zero words
   automatically (v land lnot v = 0).  Gate outputs are then unions of
   minterm words over the baked firing sets; thresholds ascend, so the
   sets are nested and iterating gates from the highest threshold down
   touches each live minterm exactly once. *)
let eval_tt ~mt ~fan ~tt ~count ~full ~ew ~out =
  Array.unsafe_set mt 0 full;
  let width = ref 1 in
  for i = 0 to fan - 1 do
    let v = Array.unsafe_get ew i in
    let w = !width in
    for c = 0 to w - 1 do
      let m = Array.unsafe_get mt c in
      Array.unsafe_set mt (c + w) (m land v);
      Array.unsafe_set mt c (m land lnot v)
    done;
    width := w * 2
  done;
  let prev = ref 0 and acc = ref 0 in
  for j = count - 1 downto 0 do
    let tj = Array.unsafe_get tt j in
    let m = ref (tj land lnot !prev) in
    while !m <> 0 do
      let b = !m land (- !m) in
      acc :=
        !acc lor Array.unsafe_get mt (Array.unsafe_get ctz_table ((b * ctz_mul) lsr 56));
      m := !m lxor b
    done;
    Array.unsafe_set out j !acc;
    prev := tj
  done

(* Bit-sliced count-vs-constant compares: cnt.(base + j) holds bit j of
   every lane's count; sweep MSB-first tracking which lanes are still
   tied with the constant.  [eq] starts at [full], so dead lanes never
   leak through the lnot. *)

let cmp_ge cnt ~base ~bits ~c ~full =
  if c <= 0 then full
  else if c lsr bits <> 0 then 0
  else begin
    let gt = ref 0 and eq = ref full in
    for j = bits - 1 downto 0 do
      let w = Array.unsafe_get cnt (base + j) in
      if (c lsr j) land 1 = 1 then eq := !eq land w
      else begin
        gt := !gt lor (!eq land w);
        eq := !eq land lnot w
      end
    done;
    !gt lor !eq
  end

let cmp_le cnt ~base ~bits ~c ~full =
  if c < 0 then 0
  else if c lsr bits <> 0 then full
  else begin
    let lt = ref 0 and eq = ref full in
    for j = bits - 1 downto 0 do
      let w = Array.unsafe_get cnt (base + j) in
      if (c lsr j) land 1 = 1 then begin
        lt := !lt lor (!eq land lnot w);
        eq := !eq land w
      end
      else eq := !eq land lnot w
    done;
    !lt lor !eq
  end

(* Flat int-array codec for spec arrays, used by the artifact store to
   persist each segment's dispatch decision.  The encoding is
   positional — [tag; fields...; payload-length; payload...] per spec —
   so a decoder reading a stream produced by a different compiler
   revision would misparse; [format_rev] guards against that: artifacts
   carry the revision they were encoded under, and a mismatch makes the
   loader recompile from the CSR pools instead of decoding. *)

let format_rev = 1

let tag_generic = 0
let tag_tt = 1
let tag_pop = 2
let tag_csa = 3

let encode_specs specs =
  let size = ref 0 in
  Array.iter
    (fun s ->
      size :=
        !size
        +
        match s with
        | Generic -> 1
        | Tt { k_tt; _ } -> 3 + Array.length k_tt
        | Pop { k_c; _ } -> 4 + Array.length k_c
        | Csa { k_widths; k_bth; _ } -> 4 + Array.length k_widths + Array.length k_bth)
    specs;
  let out = Array.make !size 0 in
  let pos = ref 0 in
  let put v =
    out.(!pos) <- v;
    incr pos
  in
  let put_arr a =
    put (Array.length a);
    Array.iter put a
  in
  Array.iter
    (fun s ->
      match s with
      | Generic -> put tag_generic
      | Tt { k_fan; k_tt } ->
          put tag_tt;
          put k_fan;
          put_arr k_tt
      | Pop { k_bits; k_cmp; k_c } ->
          put tag_pop;
          put k_bits;
          put (match k_cmp with Ge -> 0 | Le -> 1);
          put_arr k_c
      | Csa { k_widths; k_mbits; k_bth } ->
          put tag_csa;
          put_arr k_widths;
          put k_mbits;
          put_arr k_bth)
    specs;
  out

exception Malformed

let decode_specs enc ~count =
  let len = Array.length enc in
  let pos = ref 0 in
  let take () =
    if !pos >= len then raise Malformed;
    let v = enc.(!pos) in
    incr pos;
    v
  in
  let take_arr () =
    let n = take () in
    if n < 0 || n > len - !pos then raise Malformed;
    let a = Array.sub enc !pos n in
    pos := !pos + n;
    a
  in
  match
    let out =
      Array.init count (fun _ ->
          let tag = take () in
          if tag = tag_generic then Generic
          else if tag = tag_tt then
            let k_fan = take () in
            let k_tt = take_arr () in
            if k_fan < 0 || k_fan > tt_max_fan then raise Malformed;
            Tt { k_fan; k_tt }
          else if tag = tag_pop then
            let k_bits = take () in
            let k_cmp = match take () with 0 -> Ge | 1 -> Le | _ -> raise Malformed in
            let k_c = take_arr () in
            if k_bits < 1 || k_bits > word_lanes then raise Malformed;
            Pop { k_bits; k_cmp; k_c }
          else if tag = tag_csa then
            let k_widths = take_arr () in
            let k_mbits = take () in
            let k_bth = take_arr () in
            if k_mbits < 1 || k_mbits > word_lanes then raise Malformed;
            Csa { k_widths; k_mbits; k_bth }
          else raise Malformed)
    in
    if !pos <> len then raise Malformed;
    out
  with
  | out -> Some out
  | exception Malformed -> None
