(** Relocatable circuit-block templates (see {!Builder.templated}).

    A template is one captured block shape with wire {i offsets} instead
    of wire ids: a ref [r >= 0] names gate [r] inside the block (wire
    [wire0 + r] once stamped at base [wire0]), a ref [r < 0] names
    formal input slot [-r - 1].  Templates are hash-consed on an exact
    structural key and reused across every instance of the shape —
    the recursion tree [T_A] of Figure 2 has [r^level] structurally
    identical nodes per level, so each shape is captured once and
    stamped thousands of times. *)

type key = { tag : int; data : int array }

val hash_int_array : int array -> int
(** Folds over {i every} element (polymorphic hash samples only a
    prefix, and keys here are long weight vectors). *)

module Ktbl : Hashtbl.S with type key = key
module Dtbl : Hashtbl.S with type key = int array

val pattern : Wire.t array -> int array
(** Wire-duplication pattern: position [i] maps to the first position
    holding the same wire.  Call sites fold this into the key because
    constructors that merge duplicate wires emit different gates for
    different aliasing structures. *)

(** Absolute per-gate depths (plus the gates-by-depth histogram slice)
    for one vector of slot depths; computed once and blitted per
    stamp. *)
type plan = {
  p_depths : int array;
  p_hist_lo : int;  (** depth value counted by [p_hist.(0)] *)
  p_hist : int array;
  p_max_depth : int;
}

(** Per-segment lowering plan: the weight grouping, edge permutation and
    threshold sort that [Packed.of_circuit] derives per segment are
    precomputed once per template and replayed per instance. *)
type pseg = {
  q_gate0 : int;  (** first gate — template index (absolute wire for raw runs) *)
  q_count : int;
  q_fan : int;
  q_refs : int array;  (** encoded refs in pool (weight-grouped) order *)
  q_weights : int array;
  q_grp_start : int array;  (** per group: start offset within the segment *)
  q_grp_weight : int array;
  q_th : int array;  (** thresholds, ascending *)
  q_th_gate : int array;  (** gate (same index space as [q_gate0]) per slot *)
  q_kernel : Kernel.spec;
      (** specialized evaluator compiled from the segment's static
          shape ({!Kernel.compile}); [Generic] for raw-gate runs *)
}

type t = {
  n_slots : int;
  n_gates : int;
  seg_start : int array;  (** length [n_segs + 1]; gate index boundaries *)
  seg_off : int array;  (** length [n_segs + 1]; offsets into [s_refs] *)
  s_refs : int array;
      (** per-segment leader refs in original input order; the template's
          footprint is the block's {i physical} edge count, not the
          logical one *)
  s_weights : int array array;  (** per segment, shared by its gates *)
  g_threshold : int array;
  edges : int;  (** logical: sum over segments of [count * fan] *)
  max_fan_in : int;
  max_abs_weight : int;
  outs : int array;  (** encoded refs of the block's result wires *)
  meta : int array array;  (** call-site payload, returned verbatim on stamp *)
  plans : plan Dtbl.t;
  mutable lower : pseg array option;
}

val n_gates : t -> int

val capture :
  wire0:int ->
  inputs:Wire.t array ->
  gates:Gate.t array ->
  outs:Wire.t array ->
  meta:int array array ->
  t
(** Compile a freshly recorded region (gates with absolute wire ids,
    first gate wire [wire0]) into a template.  Raises [Invalid_argument]
    if the region reads or returns a wire that is neither internal nor
    listed in [inputs]. *)

val plan : t -> slot_depths:int array -> plan
(** Depth plan for instances whose formals sit at [slot_depths];
    memoized per template. *)

val lower_plan : t -> pseg array
(** Lowering plans for the template's segments; memoized. *)

val raw_psegs :
  Gate.t array -> gv0:int -> count:int -> wire_of:(int -> int) -> pseg array
(** Lowering plans for a run of raw gates [gates.(gv0 ..)] ([count] of
    them); [wire_of i] is the absolute output wire of the run's [i]-th
    gate.  Refs are absolute wire ids (lowered against base wire 0). *)
