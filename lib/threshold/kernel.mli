(** Template-specialized SWAR evaluation kernels.

    The paper's constructions stamp a handful of block shapes thousands
    of times (39 templates cover 7,459 instances at N=16), so the
    packed evaluator knows each segment's fan-in, weights and
    thresholds {i statically} — once per template, not once per gate.
    This module compiles that static knowledge into a per-segment
    kernel the batched evaluator dispatches on, replacing the general
    hash-slot accumulation loop with straight-line word arithmetic over
    all 62 bit-packed lanes at once:

    - {b Truth-table kernels} ([Tt]): segments with fan-in at most
      {!tt_max_fan} enumerate every input combination at compile time
      and bake the firing set of each gate into a bitmask.  Evaluation
      is a shared minterm product tree (2{^fan+1} word operations for
      all 62 lanes) plus one OR per live minterm — no per-lane loop, no
      accumulator zeroing.
    - {b Popcount kernels} ([Pop]): wider segments whose edges all
      carry one weight reduce to a per-lane set-bit count.  The count
      is built by the same carry-save ladder the generic path uses, and
      each gate's threshold is divided through the weight at compile
      time, turning the comparison into a bit-sliced MSB-first
      count-vs-constant compare ({!cmp_ge} / {!cmp_le}) — again no
      per-lane loop.
    - {b Carry-save kernels} ([Csa]): wide segments with several weight
      groups (the binary-weighted rows of the paper's shared layers)
      are evaluated fully bit-sliced.  Each group's per-lane count is
      built by a branchless Harley-Seal compressor ladder of
      compile-time-fixed depth — the generic path's data-dependent
      carry ripple mispredicts on nearly every edge, where the ladder
      spends ~5 word operations per edge with no branches at all —
      then shift-added into a bit-sliced {i master} accumulator, one
      ripple add per set bit of the group's |weight|.  Negative groups
      fold complemented inputs (counting zeros), and each threshold is
      re-biased at compile time to match, so the master stays
      nonnegative and thresholding is a bit-sliced compare plus one
      per-live-lane extraction — per-lane accumulators are never
      touched.  Every compressor conserves the summed count and the
      master is bounded by the baked span, so all outputs stay
      bit-identical to the generic path.
    - [Generic] falls back to the CSR accumulation loop (raw gate runs,
      narrow leftovers, and anything compiled through
      {!Packed.of_circuit}).

    Baked thresholds are safe because both kernel families reproduce
    the generic path's arithmetic exactly: truth-table sums are folded
    with the same wrap-around [( + )] (addition mod 2{^63} is
    commutative, so enumeration order cannot matter), and popcount
    kernels are only compiled when [|weight| * fan] cannot wrap, which
    makes the compile-time division exact.  Overflow-{i checked}
    evaluation never dispatches kernels — it keeps the generic
    edge-order loop so [Checked.add] observes the documented
    accumulation order. *)

(** {1 Lane packing}

    Lanes are packed into the low {!word_lanes} bits of a native int.
    The de Bruijn-style tables map an isolated bit to its lane without
    divisions; they are shared with {!Packed}. *)

val word_lanes : int
(** 62: keeps every lane word nonnegative. *)

val ctz_mul : int
(** [(b * ctz_mul) lsr 56] is a distinct 7-bit slot for every
    [b = 1 lsl e], [e] in [0..61] (checked at init). *)

val ctz_slots : int
(** 128. *)

val ctz_table : int array
(** Slot -> lane index. *)

val lane_slot : int array
(** Lane index -> slot (inverse of {!ctz_table}). *)

(** {1 Kernel specifications} *)

val tt_max_fan : int
(** Largest fan-in compiled to a truth-table kernel (5: at most 32
    minterms, so a gate's firing set fits one immediate). *)

type cmp = Ge | Le

type spec =
  | Generic  (** fall back to the CSR accumulation loop *)
  | Tt of {
      k_fan : int;
      k_tt : int array;
          (** per gate (thresholds ascending): bit [c] is set iff the
              gate fires on edge-combination [c]; masks are nested
              ([k_tt.(j)] contains [k_tt.(j+1)]) *)
    }
  | Pop of {
      k_bits : int;  (** counter width: enough for counts [0..fan] and every bound *)
      k_cmp : cmp;  (** [Ge] for positive weight, [Le] for negative *)
      k_c : int array;
          (** per gate: the count bound ([-1] / [fan + 1] encode
              never-fires after clamping) *)
    }
  | Csa of {
      k_widths : int array;
          (** per weight group (maximal runs of equal weight in pool
              order): counter width [bits_for len] — the fixed ripple
              depth of the branchless fold *)
      k_mbits : int;
          (** master accumulator width: [bits_for span] where
              [span = sum of |weight| * group length], at most
              {!word_lanes} (wider segments fall back to [Generic]) *)
      k_bth : int array;
          (** per gate (ascending): threshold minus the compile-time
              bias [sum of negative weight * group length], clamped
              into [0 .. span + 1] ([0] = always fires,
              [span + 1] = never) *)
    }

val compile : fan:int -> weights:int array -> thresholds:int array -> spec
(** Compile one segment: [weights] in pool (weight-grouped) order,
    [thresholds] ascending — exactly the arrays a {!Template.pseg}
    carries.  Total per distinct template, replayed per instance. *)

(** {1 Word-level evaluation} *)

val eval_tt :
  mt:int array ->
  fan:int ->
  tt:int array ->
  count:int ->
  full:int ->
  ew:int array ->
  out:int array ->
  unit
(** [eval_tt ~mt ~fan ~tt ~count ~full ~ew ~out] evaluates one
    truth-table segment for one lane word: [ew.(0..fan-1)] are the edge
    input words (bit [l] = lane [l]'s value of that edge's wire),
    [full] the active-lane mask, [mt] a scratch array of at least
    [2^fan] words.  Writes gate [j]'s firing word to [out.(j)] for
    [j < count]. *)

val cmp_ge : int array -> base:int -> bits:int -> c:int -> full:int -> int
(** Mask of lanes whose bit-sliced count ([cnt.(base + j)] holds bit
    [j] of every lane's count) is [>= c].  MSB-first sweep, [bits]
    words deep; [c <= 0] returns [full], [c >= 2^bits] returns [0]. *)

val cmp_le : int array -> base:int -> bits:int -> c:int -> full:int -> int
(** Same, for [<= c]: [c < 0] returns [0], [c >= 2^bits] returns
    [full]. *)

(** {1 Persistence}

    Flat int-array codec for spec arrays, so the artifact store can
    persist each segment's dispatch decision alongside the CSR pools
    and a warm load skips {!compile} entirely. *)

val format_rev : int
(** Revision of the encoding {i and} of the compile heuristics.  Bump
    whenever either changes; artifacts record the revision they were
    written under, and loaders must recompile from the CSR pools (not
    decode) on a mismatch. *)

val encode_specs : spec array -> int array
(** Concatenated tagged encoding of every spec, in order. *)

val decode_specs : int array -> count:int -> spec array option
(** Decode exactly [count] specs, [None] if the stream is malformed,
    truncated, or has trailing words.  Inverse of {!encode_specs} for
    streams written at the current {!format_rev}. *)
