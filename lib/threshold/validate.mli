(** Structural validation of circuits.

    {!Circuit.make} already rejects non-topological circuits; this module
    performs the deeper well-formedness checks used by tests, the CLI's
    [verify] command and the [tcmm_check] certifier, returning {e all}
    violations (each carrying the offending gate/output id) rather than
    failing on the first. *)

type issue =
  | Dangling_wire of { gate : int; wire : Wire.t }
  | Duplicate_input_wire of { gate : int; wire : Wire.t }
      (** a gate reading the same wire twice — semantically equivalent to
          a single merged coefficient; the trace circuit emits these when
          one entry feeds a leaf's sum through two coefficient paths *)
  | Unreachable_output of { output_index : int; wire : Wire.t }
      (** an output wire that is an input: allowed, reported for review *)
  | Zero_weight of { gate : int; wire : Wire.t }
      (** a zero-weight connection — wasted edge *)
  | Never_fires of { gate : int; threshold : int; max_sum : int }
      (** the threshold exceeds the largest achievable weighted sum, so
          the gate computes constant 0 despite having real fan-in *)
  | Always_fires of { gate : int; threshold : int; min_sum : int }
      (** the threshold is at or below the smallest achievable weighted
          sum, so the gate computes constant 1 despite having real
          fan-in *)

val pp_issue : Format.formatter -> issue -> unit

val severity : issue -> [ `Error | `Warning ]
(** [`Error] issues ([Dangling_wire], [Zero_weight]) never appear in
    circuits built by this repository's constructors; [`Warning] issues
    are legal-but-suspicious and are reported for review (duplicate
    reads arise from multi-path coefficients, constant gates from
    extreme thresholds, e.g. a trace query with an unsatisfiable
    [tau]). *)

val check : Circuit.t -> issue list
(** All issues found, in gate order (output issues last). *)

val errors : Circuit.t -> issue list
(** The [`Error]-severity subset of {!check}. *)

val is_clean : Circuit.t -> bool
(** [is_clean c] iff {!check} returns no issues at all. *)
