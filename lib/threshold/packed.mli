(** High-performance levelized evaluation of threshold circuits.

    {!Simulator.run} interprets one {!Gate.t} at a time, chasing a heap
    pointer per gate and re-reading shared input arrays once per gate.
    This module compiles a {!Circuit.t} into a flat CSR-style form and
    exploits two structural properties of the paper's constructions:

    - {b Levelization}: the builder tracks per-wire depths, so gates
      split into depth levels whose members are mutually independent.
      The evaluator walks level by level — the schedule a
      level-synchronous parallel machine (or a spiking chip) would use —
      which enables the multicore evaluator below.
    - {b Shared sums}: {!Builder.add_shared_gates} emits layers of gates
      that differ only in their threshold (Lemma 3.1's [2^k]-gate
      layers) and physically share one input/weight array.  Consecutive
      gates sharing arrays collapse into a {i segment} whose weighted
      sum is computed {b once}; with thresholds sorted ascending, the
      firing gates of a segment are a binary-searched prefix.  On the
      N=16 Strassen matmul circuit this turns 1.8G logical edge
      traversals into 7.3M pooled ones.

    All evaluators return {i bit-identical} [outputs], [firings] and
    [level_firings] to {!Simulator.run} (the property-test suite checks
    this exactly), including the overflow-checked path — only the wire
    evaluation order differs, which is unobservable in the result. *)

type t
(** A compiled circuit. *)

val of_circuit : Circuit.t -> t
(** Compile.  Costs one pass over the gates plus one over the (deduped)
    edges; memory is proportional to the {i unique} edge storage, not
    the logical edge count. *)

val circuit : t -> Circuit.t
(** The per-gate view.  For {!of_circuit}-compiled values this is the
    original circuit; for {!of_arena}-compiled values it is materialized
    lazily on first call (Simulator / Validate / Export consumers only —
    the packed evaluators never force it). *)

val num_gates : t -> int

val num_levels : t -> int
(** Circuit depth: gates of depth [l+1] form level [l]. *)

val num_segments : t -> int
(** Number of shared-sum segments (= gate count when nothing is shared). *)

val pool_edges : t -> int
(** Size of the deduped edge pool — the per-vector edge work, as opposed
    to [Stats.edges] which counts logical edges. *)

(** A fixed pool of OCaml 5 domains for level-synchronous evaluation.
    [create ~domains] spawns [domains - 1] workers; the calling domain
    participates too, so [domains] is the total parallelism.  Each level
    is split into chunks of segments claimed via an atomic counter, with
    a barrier between levels.  Exceptions raised by a chunk (e.g.
    [Tcmm_util.Checked.Overflow] under [~check:true]) are re-raised in
    the caller after the barrier. *)
module Pool : sig
  type t

  val create : domains:int -> t
  (** Raises [Invalid_argument] when [domains < 1]. *)

  val size : t -> int
  val shutdown : t -> unit
  (** Joins the worker domains.  The pool must not be used afterwards. *)

  val with_pool : domains:int -> (t -> 'a) -> 'a
  (** [create], run, then [shutdown] (also on exceptions). *)
end

val of_arena :
  ?pool:Pool.t -> ?domains:int -> ?kernels:bool -> Builder.arena -> t
(** Lower a [Builder Direct]-mode arena straight to the packed form,
    skipping the per-gate [Circuit.t] walk of {!of_circuit}: template
    instances replay their precomputed lowering plans by offset
    arithmetic, so the cost is proportional to the {i pooled} edge
    count, not the logical one.  The result is identical to
    [of_circuit] applied to the materialized circuit.  With [?pool] (or
    [?domains] > 1) the edge-pool fill fans out across the domain
    pool.

    [kernels] (default [true]) dispatches each template segment to its
    specialized batch evaluator ({!Kernel.compile}); [~kernels:false]
    forces the generic CSR loop everywhere (the [--no-kernels] escape
    hatch).  Kernels change evaluation {i speed} only — outputs,
    firings and per-wire values stay bit-identical, which the
    differential suites check exhaustively. *)

(** Kernel coverage of a compiled circuit: how many gates (and
    segments) evaluate through a specialized kernel vs the generic
    fallback.  {!of_circuit}-compiled values are all-fallback. *)
type coverage = {
  kernel_gates : int;
  fallback_gates : int;
  kernel_segments : int;
  generic_segments : int;
}

val coverage : t -> coverage

val run :
  ?check:bool -> ?pool:Pool.t -> ?domains:int -> t -> bool array -> Simulator.result
(** [run t inputs] evaluates one input vector.  [check] (default
    [false]) enables overflow-checked accumulation.  With [?pool] (or
    [?domains] > 1, which spins up a transient pool) levels are
    evaluated in parallel; [~domains:1] (the default) is a tight
    sequential loop.  The result is bit-identical to
    [Simulator.run (circuit t) inputs] in every field. *)

(** {1 Incremental evaluation}

    Streaming workloads (a client holding a graph and sending edge
    flips) change a handful of input bits between evaluations.  A
    session keeps the full wire state of its last evaluation plus, per
    segment, the cached weighted sum, the firing cut, and the threshold
    bracket the sum must leave for the cut to move.  {!update}
    delta-adjusts the sums of every reading segment through the
    transposed (wire → reading edges) CSR index — a batched C loop that
    keeps many state-line misses in flight — but queues only the
    segments whose sum crossed its bracket; the sweep then re-decides
    those level by level, propagating changed gate wires downward until
    no level queues anything further.  A [~check:true] session instead
    queues every reader and recomputes dirty sums by the overflow-checked
    CSR walk, keeping overflow behaviour identical to a from-scratch
    checked run.  Results are bit-identical to a from-scratch {!run} in
    [outputs], [firings] and [level_firings] — the differential fuzzer
    checks this on every intermediate state of random flip sequences. *)

type session
(** Mutable incremental-evaluation state over one compiled circuit.  A
    session must not be shared by concurrent updates.  Creating the
    first session on a [t] builds (and memoizes on [t]) the transposed
    fanout index — O(pool edges) once. *)

val session : ?check:bool -> t -> bool array -> session
(** [session t inputs] evaluates [inputs] from scratch and captures the
    state.  [check] (default [false]) makes this and every subsequent
    {!update} overflow-checked; a raised [Checked.Overflow] leaves the
    session unusable.  Raises [Invalid_argument] on a wrongly-sized
    input vector. *)

val update : session -> (int * bool) array -> Simulator.result
(** [update s delta] sets input wire [i] to [v] for each [(i, v)] of
    [delta] (entries equal to the current value are no-ops; duplicates
    apply in order) and propagates through the dirty cone.  The
    returned [values] buffer {b aliases} the session state — valid only
    until the next [update]; [outputs], [firings] and [level_firings]
    are fresh.  Raises [Invalid_argument] if an index is not an input
    wire. *)

val session_result : session -> Simulator.result
(** The current state as a result, without applying a delta (same
    aliasing as {!update}). *)

val session_inputs : session -> bool array
(** Copy of the session's current input bits. *)

(** Cumulative counters since session creation: how much of the circuit
    the updates actually re-decided — [su_dirty_gates] vs
    [su_updates * su_gates] is the dirty-gate ratio the server reports. *)
type session_stats = {
  su_updates : int;
  su_flips : int;  (** input bits that actually changed *)
  su_dirty_segments : int;
  su_dirty_gates : int;
  su_segments : int;  (** segments in the circuit *)
  su_gates : int;  (** gates in the circuit *)
}

val session_stats : session -> session_stats

(** {1 Batched evaluation}

    [run_batch] evaluates a whole batch of input vectors in {b one}
    traversal of the circuit metadata, however large the batch.  Lanes
    are bit-packed 62 to a machine word and wire values stored
    wire-major, so each edge costs one metadata read for {i all} lanes
    and the words of an edge are swept contiguously; template segments
    additionally dispatch to their specialized kernels (see
    {!of_arena}).  On the paper's circuits only ~8% of wires carry a 1,
    which is where the per-vector speedup over {!run} comes from.  This
    is the natural entry point for {!Energy.measure}, validation sweeps
    and randomized agreement testing. *)

type batch_result

(** Accumulated per-level wall time (ns) plus batch/lane counters;
    pass one to {!run_batch} to fill it ([--profile-eval]). *)
type eval_profile = {
  mutable ep_batches : int;
  mutable ep_lanes : int;
  ep_level_ns : float array;  (** length [num_levels] *)
}

val make_profile : t -> eval_profile

(** A reusable wire-value buffer for repeated batched runs.  A fresh
    buffer for the N=16 matmul circuit is ~13 MB, and allocating plus
    zeroing one per call costs several milliseconds before any gate is
    evaluated; a workspace amortizes that to one [Array.fill].
    Opt-in because it aliases: {!batch_value} on a result whose run
    used [ws] is only valid until the next [run_batch] with the same
    workspace ([batch_outputs] / [batch_firings] /
    [batch_level_firings] are copied out eagerly and stay valid).  A
    workspace must not be shared by concurrent [run_batch] calls. *)
type workspace

val workspace : unit -> workspace

val run_batch :
  ?check:bool ->
  ?pool:Pool.t ->
  ?domains:int ->
  ?profile:eval_profile ->
  ?ws:workspace ->
  t ->
  bool array array ->
  batch_result
(** Raises [Invalid_argument] on an empty batch or a wrongly-sized
    input vector. *)

val lanes : batch_result -> int
val batch_outputs : batch_result -> lane:int -> bool array
val batch_firings : batch_result -> lane:int -> int
val batch_level_firings : batch_result -> lane:int -> int array

val batch_value : batch_result -> lane:int -> Wire.t -> bool
(** Read one wire of one lane (the batch analogue of {!Simulator.value}). *)

(** {1 Persistence}

    Flat-section view of a packed circuit for the artifact store
    ([lib/store]).  This module stays free of file I/O: {!save}
    projects the already-flat internals (the big vectors are shared,
    not copied), and {!load} rebuilds a [t] from sections recovered by
    the store, re-validating every structural invariant the unsafe
    evaluators rely on.  Integrity against bit-level corruption is the
    store's job (checksums); {!load}'s validation is what makes a
    checksum-clean but adversarially-shaped section set safe to
    evaluate. *)

type ivec = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type sections = {
  sec_num_inputs : int;
  sec_num_gates : int;
  sec_levels : int;
  sec_pool_wires : ivec;  (** edge input wires, grouped by weight *)
  sec_pool_weights : ivec;  (** edge weights, same order *)
  sec_g_threshold : ivec;  (** per packed gate, ascending per segment *)
  sec_g_wire : ivec;  (** per packed gate: output wire *)
  sec_seg_off : int array;  (** per segment: first pool slot *)
  sec_seg_fan : int array;  (** per segment: fan-in *)
  sec_seg_gates : int array;  (** packed-gate ranges, [nsegs + 1] *)
  sec_seg_grp : int array;  (** weight-group ranges, [nsegs + 1] *)
  sec_grp_off : int array;  (** per group: pool range, [ngroups + 1] *)
  sec_grp_weight : int array;  (** per group: the shared weight *)
  sec_level_segs : int array;  (** segment ranges per level, [levels + 1] *)
  sec_outputs : int array;
  sec_kern : int array;
      (** {!Kernel.encode_specs} of the per-segment dispatch decisions;
          [[||]] asks {!load} to recompile them from the pools (the
          kernel-format-rev-mismatch path) *)
}

val save : t -> sections
(** O(num_segments) — kernel specs are re-encoded, everything else is
    shared with [t]. *)

val load : ?kernels:bool -> ?recompile:bool -> sections -> (t, string) result
(** Validate and adopt sections (the vectors are shared, so they must
    not be mutated afterwards).  [kernels:false] forces all-generic
    dispatch regardless of [sec_kern].  [recompile] (default [false])
    ignores [sec_kern] and rebuilds every segment's kernel from the
    CSR pools — the artifact store's path when the persisted dispatch
    tags predate the current {!Kernel.format_rev}.  An {e empty}
    [sec_kern] with [recompile:false] is reproduced faithfully as
    all-generic dispatch (the original was packed without kernels).  [Error] describes the first
    violated invariant; on [Ok t], every evaluator entry point is
    memory-safe even if the sections were corrupt in ways a checksum
    would miss.  {!circuit} raises on a loaded [t] — the explicit gate
    list is not persisted. *)

val structural_equal : t -> t -> bool
(** Field-for-field equality of the packed representation (pools,
    tables, kernel dispatch, coverage) — the round-trip identity the
    store's tests assert.  Ignores the lazy circuit view. *)
