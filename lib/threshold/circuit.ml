type t = {
  num_inputs : int;
  gates : Gate.t array;
  outputs : Wire.t array;
  depths : int array;
}

let make ~num_inputs ~gates ~outputs =
  if num_inputs < 0 then invalid_arg "Circuit.make: negative input count";
  let num_wires = num_inputs + Array.length gates in
  let depths = Array.make num_wires 0 in
  Array.iteri
    (fun g (gate : Gate.t) ->
      let self = num_inputs + g in
      let d = ref 0 in
      Array.iter
        (fun w ->
          if w < 0 || w >= self then
            invalid_arg
              (Printf.sprintf "Circuit.make: gate %d reads wire %d (not topological)" g w);
          d := max !d depths.(w))
        gate.Gate.inputs;
      depths.(self) <- !d + 1)
    gates;
  Array.iter
    (fun w ->
      if w < 0 || w >= num_wires then
        invalid_arg (Printf.sprintf "Circuit.make: output wire %d out of range" w))
    outputs;
  { num_inputs; gates; outputs; depths }

let map_gates c ~f =
  make ~num_inputs:c.num_inputs ~gates:(Array.mapi f c.gates) ~outputs:c.outputs

let num_wires c = c.num_inputs + Array.length c.gates
let num_gates c = Array.length c.gates
let wire_of_gate c g = c.num_inputs + g

let gate_of_wire c w =
  if w < c.num_inputs then None else Some c.gates.(w - c.num_inputs)

let depth_of_wire c w = c.depths.(w)

let stats c =
  let depth = Array.fold_left max 0 c.depths in
  let gates_by_depth = Array.make depth 0 in
  let edges = ref 0 and max_fan_in = ref 0 and max_w = ref 0 in
  Array.iteri
    (fun g gate ->
      let d = c.depths.(c.num_inputs + g) in
      gates_by_depth.(d - 1) <- gates_by_depth.(d - 1) + 1;
      edges := !edges + Gate.fan_in gate;
      max_fan_in := max !max_fan_in (Gate.fan_in gate);
      max_w := max !max_w (Gate.max_abs_weight gate))
    c.gates;
  {
    Stats.inputs = c.num_inputs;
    outputs = Array.length c.outputs;
    gates = Array.length c.gates;
    edges = !edges;
    depth;
    max_fan_in = !max_fan_in;
    max_abs_weight = !max_w;
    gates_by_depth;
  }
