type engine = Reference | Packed

type result = {
  values : Bytes.t;
  outputs : bool array;
  firings : int;
  level_firings : int array;
}

let run ?(check = false) (c : Circuit.t) inputs =
  if Array.length inputs <> c.Circuit.num_inputs then
    invalid_arg
      (Printf.sprintf "Simulator.run: expected %d inputs, got %d"
         c.Circuit.num_inputs (Array.length inputs));
  let values = Bytes.make (Circuit.num_wires c) '\000' in
  Array.iteri
    (fun i v -> if v then Bytes.unsafe_set values i '\001')
    inputs;
  let read w = Bytes.unsafe_get values w <> '\000' in
  let depth = Array.fold_left max 0 c.Circuit.depths in
  let level_firings = Array.make depth 0 in
  let firings = ref 0 in
  let eval = if check then Gate.eval_checked else Gate.eval in
  Array.iteri
    (fun g gate ->
      if eval gate read then begin
        let w = c.Circuit.num_inputs + g in
        Bytes.unsafe_set values w '\001';
        incr firings;
        let l = c.Circuit.depths.(w) - 1 in
        level_firings.(l) <- level_firings.(l) + 1
      end)
    c.Circuit.gates;
  let outputs = Array.map read c.Circuit.outputs in
  { values; outputs; firings = !firings; level_firings }

let value r w = Bytes.get r.values w <> '\000'
let read_outputs c inputs = (run c inputs).outputs
