(* Relocatable circuit-block templates.

   The paper's constructions stamp the same few block shapes (Lemma 3.1
   shared-threshold layers inside weighted sums, Lemma 3.3 product
   blocks, sum-tree / recombination nodes) thousands of times: the
   recursion tree T_A has r^level structurally identical nodes per
   level.  A template captures one such block with wire *offsets*
   instead of wire ids — refs >= 0 name a gate inside the block, refs
   < 0 name a formal input slot — so an instance is reproduced by
   offset arithmetic alone, without re-running the constructor.

   Templates are hash-consed by an exact structural key (call-site tag
   plus the bit-widths, weights and wire-duplication pattern that
   determine the emitted gates); [Builder.templated] records a block on
   the first miss and stamps on every hit. *)

module Intvec = Tcmm_util.Intvec

(* ------------------------------------------------------------------ *)
(* Hash-cons keys                                                     *)
(* ------------------------------------------------------------------ *)

type key = { tag : int; data : int array }

(* OCaml's polymorphic [Hashtbl.hash] samples only a prefix of large
   values; the keys here are long weight vectors that can differ deep
   inside, so fold over every element. *)
let fold_hash h x = ((h * 1000003) lxor x) land max_int

let hash_int_array a = Array.fold_left fold_hash (Array.length a) a

module Ktbl = Hashtbl.Make (struct
  type t = key

  let equal a b = a.tag = b.tag && a.data = b.data
  let hash k = fold_hash (hash_int_array k.data) k.tag
end)

module Dtbl = Hashtbl.Make (struct
  type t = int array

  let equal (a : int array) b = a = b
  let hash = hash_int_array
end)

(* The wire-duplication pattern of an input vector: position [i] maps to
   the first position holding the same wire.  Two instances with equal
   patterns read their formals in the same aliasing structure, which is
   what e.g. [Weighted_sum]'s duplicate-wire merging depends on — so
   call sites fold this into the key. *)
let pattern wires =
  let n = Array.length wires in
  let tbl = Hashtbl.create n in
  Array.init n (fun i ->
      match Hashtbl.find_opt tbl wires.(i) with
      | Some j -> j
      | None ->
          Hashtbl.add tbl wires.(i) i;
          i)

(* ------------------------------------------------------------------ *)
(* Template bodies                                                    *)
(* ------------------------------------------------------------------ *)

(* Depth plan for one vector of slot depths: instances whose formals sit
   at the same depths share the absolute per-gate depth block and the
   gates-by-depth histogram, so a stamp is one array blit. *)
type plan = {
  p_depths : int array;  (* absolute depth per template gate *)
  p_hist_lo : int;  (* depth value counted by p_hist.(0) *)
  p_hist : int array;
  p_max_depth : int;
}

(* Lowering plan for one segment (a run of gates physically sharing
   input/weight arrays): the weight grouping, edge permutation and
   threshold sort that [Packed.of_circuit] derives per segment per
   circuit are computed once per template and replayed per instance. *)
type pseg = {
  q_gate0 : int;  (* first gate (template index; absolute wire for raw) *)
  q_count : int;
  q_fan : int;
  q_refs : int array;  (* encoded refs in pool (weight-grouped) order *)
  q_weights : int array;  (* weights in pool order *)
  q_grp_start : int array;  (* per group: start offset within the segment *)
  q_grp_weight : int array;
  q_th : int array;  (* thresholds, ascending *)
  q_th_gate : int array;  (* gate (same index space as q_gate0) per position *)
  q_kernel : Kernel.spec;  (* specialized evaluator, or Generic *)
}

type t = {
  n_slots : int;
  n_gates : int;
  seg_start : int array;  (* length n_segs + 1; gate index boundaries *)
  seg_off : int array;  (* length n_segs + 1; offsets into s_refs *)
  s_refs : int array;  (* per-segment leader refs; >= 0 gate, < 0 slot -(r+1) *)
  s_weights : int array array;  (* per segment, shared by its gates *)
  g_threshold : int array;
  edges : int;  (* logical: sum over segments of count * fan *)
  max_fan_in : int;
  max_abs_weight : int;
  outs : int array;  (* encoded refs of the block's result wires *)
  meta : int array array;  (* call-site payload, returned verbatim on stamp *)
  plans : plan Dtbl.t;
  mutable lower : pseg array option;
}

let n_gates t = t.n_gates

(* ------------------------------------------------------------------ *)
(* Capture                                                            *)
(* ------------------------------------------------------------------ *)

let encode_ref ~wire0 ~slot_of w =
  if w >= wire0 then w - wire0
  else
    match Hashtbl.find_opt slot_of w with
    | Some s -> -s - 1
    | None ->
        invalid_arg
          (Printf.sprintf
             "Builder.templated: block reads wire %d absent from ~inputs" w)

(* [capture ~wire0 ~inputs ~gates ~outs ~meta] compiles the freshly
   recorded region (gates with absolute wire ids, first output wire
   [wire0]) into a relocatable template.  Raises [Invalid_argument] if
   the region reads or returns a wire that is neither internal nor
   listed in [inputs]. *)
let capture ~wire0 ~inputs ~(gates : Gate.t array) ~outs ~meta =
  let n = Array.length gates in
  let slot_of = Hashtbl.create (Array.length inputs) in
  Array.iteri
    (fun i w -> if not (Hashtbl.mem slot_of w) then Hashtbl.add slot_of w i)
    inputs;
  let max_fan_in = ref 0 and max_abs_weight = ref 0 in
  let edges = ref 0 in
  let seg_start = Intvec.create () in
  let seg_off = Intvec.create () in
  let s_refs = Intvec.create () in
  let s_weights_rev = ref [] in
  for g = 0 to n - 1 do
    let gate = gates.(g) in
    let ins = gate.Gate.inputs in
    let fan = Array.length ins in
    edges := !edges + fan;
    (* A new segment starts unless this gate physically shares its
       input/weight arrays with the previous one — the same run
       detection [Packed.of_circuit] performs.  Only the segment leader's
       refs are encoded, keeping capture (and the template's footprint)
       proportional to the block's *physical* edges; followers read the
       same shared array. *)
    if
      g = 0
      || not
           (gates.(g - 1).Gate.inputs == ins
           && gates.(g - 1).Gate.weights == gate.Gate.weights)
    then begin
      Intvec.push seg_start g;
      Intvec.push seg_off (Intvec.length s_refs);
      if fan > !max_fan_in then max_fan_in := fan;
      Array.iter
        (fun w -> if abs w > !max_abs_weight then max_abs_weight := abs w)
        gate.Gate.weights;
      for i = 0 to fan - 1 do
        Intvec.push s_refs (encode_ref ~wire0 ~slot_of ins.(i))
      done;
      s_weights_rev := gate.Gate.weights :: !s_weights_rev
    end
  done;
  Intvec.push seg_start n;
  Intvec.push seg_off (Intvec.length s_refs);
  {
    n_slots = Array.length inputs;
    n_gates = n;
    seg_start = Intvec.to_array seg_start;
    seg_off = Intvec.to_array seg_off;
    s_refs = Intvec.to_array s_refs;
    s_weights = Array.of_list (List.rev !s_weights_rev);
    g_threshold = Array.map (fun (g : Gate.t) -> g.Gate.threshold) gates;
    edges = !edges;
    max_fan_in = !max_fan_in;
    max_abs_weight = !max_abs_weight;
    outs = Array.map (encode_ref ~wire0 ~slot_of) outs;
    meta;
    plans = Dtbl.create 4;
    lower = None;
  }

(* ------------------------------------------------------------------ *)
(* Depth plans                                                        *)
(* ------------------------------------------------------------------ *)

let plan t ~slot_depths =
  match Dtbl.find_opt t.plans slot_depths with
  | Some p -> p
  | None ->
      let n = t.n_gates in
      let d = Array.make (max n 1) 0 in
      let lo = ref max_int and hi = ref 0 in
      (* Gates within a segment share one input array, hence one depth:
         one pass over the leader's refs covers the whole run. *)
      let nsegs = Array.length t.seg_start - 1 in
      for s = 0 to nsegs - 1 do
        let m = ref 0 in
        for k = t.seg_off.(s) to t.seg_off.(s + 1) - 1 do
          let r = t.s_refs.(k) in
          let dep = if r >= 0 then d.(r) else slot_depths.(-r - 1) in
          if dep > !m then m := dep
        done;
        let dg = !m + 1 in
        for g = t.seg_start.(s) to t.seg_start.(s + 1) - 1 do
          d.(g) <- dg
        done;
        if dg < !lo then lo := dg;
        if dg > !hi then hi := dg
      done;
      let p =
        if n = 0 then
          { p_depths = [||]; p_hist_lo = 1; p_hist = [||]; p_max_depth = 0 }
        else begin
          let hist = Array.make (!hi - !lo + 1) 0 in
          Array.iter (fun dg -> hist.(dg - !lo) <- hist.(dg - !lo) + 1) d;
          { p_depths = d; p_hist_lo = !lo; p_hist = hist; p_max_depth = !hi }
        end
      in
      Dtbl.add t.plans (Array.copy slot_depths) p;
      p

(* ------------------------------------------------------------------ *)
(* Lowering plans                                                     *)
(* ------------------------------------------------------------------ *)

(* Weight-group one segment exactly like [Packed.of_circuit]: edges
   grouped by weight value, stable within a group, groups ordered by
   first appearance; thresholds sorted ascending with the same
   (comparator, algorithm) pair so the packed layout is reproduced
   bit-for-bit. *)
let make_pseg ~kern ~gate0 ~count ~refs ~weights ~thresholds ~th_gates =
  let fan = Array.length refs in
  let gid = Array.make (max fan 1) 0 in
  let tbl = Hashtbl.create 8 in
  let gcount = ref 0 in
  for i = 0 to fan - 1 do
    match Hashtbl.find_opt tbl weights.(i) with
    | Some g -> gid.(i) <- g
    | None ->
        Hashtbl.add tbl weights.(i) !gcount;
        gid.(i) <- !gcount;
        incr gcount
  done;
  let gcount = !gcount in
  let sizes = Array.make (max gcount 1) 0 in
  for i = 0 to fan - 1 do
    sizes.(gid.(i)) <- sizes.(gid.(i)) + 1
  done;
  let starts = Array.make (max gcount 1) 0 in
  let acc = ref 0 in
  for g = 0 to gcount - 1 do
    starts.(g) <- !acc;
    acc := !acc + sizes.(g)
  done;
  let gw = Array.make (max gcount 1) 0 in
  let q_refs = Array.make (max fan 1) 0 in
  let q_weights = Array.make (max fan 1) 0 in
  let cur = Array.copy starts in
  for i = 0 to fan - 1 do
    let g = gid.(i) in
    gw.(g) <- weights.(i);
    q_refs.(cur.(g)) <- refs.(i);
    q_weights.(cur.(g)) <- weights.(i);
    cur.(g) <- cur.(g) + 1
  done;
  let pairs = Array.init count (fun i -> (thresholds.(i), th_gates.(i))) in
  Array.sort (fun (a, _) (b, _) -> compare (a : int) b) pairs;
  let q_weights = if fan = 0 then [||] else q_weights in
  let q_th = Array.map fst pairs in
  {
    q_gate0 = gate0;
    q_count = count;
    q_fan = fan;
    q_refs = (if fan = 0 then [||] else q_refs);
    q_weights;
    q_grp_start = Array.sub starts 0 gcount;
    q_grp_weight = Array.sub gw 0 gcount;
    q_th;
    q_th_gate = Array.map snd pairs;
    q_kernel =
      (if kern then Kernel.compile ~fan ~weights:q_weights ~thresholds:q_th
       else Kernel.Generic);
  }

let lower_plan t =
  match t.lower with
  | Some segs -> segs
  | None ->
      let nsegs = Array.length t.seg_start - 1 in
      let segs =
        Array.init nsegs (fun s ->
            let g0 = t.seg_start.(s) in
            let count = t.seg_start.(s + 1) - g0 in
            let off = t.seg_off.(s) in
            let fan = t.seg_off.(s + 1) - off in
            make_pseg ~kern:true ~gate0:g0 ~count
              ~refs:(Array.sub t.s_refs off fan)
              ~weights:t.s_weights.(s)
              ~thresholds:(Array.sub t.g_threshold g0 count)
              ~th_gates:(Array.init count (fun i -> g0 + i)))
      in
      t.lower <- Some segs;
      segs

(* Lowering plan for a run of raw (non-templated) gates: absolute wire
   ids double as "internal" refs relative to a zero base.  Raw runs are
   compiled once per circuit (not once per template), so they stay on
   the generic evaluator — specializing them would move kernel
   compilation back onto the per-gate path. *)
let raw_psegs (gates : Gate.t array) ~gv0 ~count ~wire_of =
  let segs = ref [] in
  let i = ref 0 in
  while !i < count do
    let gate = gates.(gv0 + !i) in
    let j = ref (!i + 1) in
    while
      !j < count
      && gates.(gv0 + !j).Gate.inputs == gate.Gate.inputs
      && gates.(gv0 + !j).Gate.weights == gate.Gate.weights
    do
      incr j
    done;
    let count' = !j - !i in
    let base = !i in
    segs :=
      make_pseg ~kern:false ~gate0:(wire_of base) ~count:count'
        ~refs:gate.Gate.inputs
        ~weights:gate.Gate.weights
        ~thresholds:
          (Array.init count' (fun k ->
               gates.(gv0 + base + k).Gate.threshold))
        ~th_gates:(Array.init count' (fun k -> wire_of (base + k)))
      :: !segs;
    i := !j
  done;
  Array.of_list (List.rev !segs)
