type cache = (Circuit.t, Packed.t) Tcmm_util.Lru.t

let create_cache ?(capacity = 16) () =
  Tcmm_util.Lru.create ~capacity ~equal:( == ) ()

(* The drivers in lib/core all share one keyed cache, so a workload that
   alternates between several built circuits keeps every compiled form
   live (up to the capacity) instead of recompiling on each switch. *)
let shared_cache = lazy (create_cache ~capacity:32 ())
let shared () = Lazy.force shared_cache

let packed cache c =
  Tcmm_util.Lru.find_or_add cache c ~create:(fun () -> Packed.of_circuit c)

let stats = Tcmm_util.Lru.stats

let run ?check ?(engine = Simulator.Packed) ?pool ?domains cache c inputs =
  match engine with
  | Simulator.Reference -> Simulator.run ?check c inputs
  | Simulator.Packed -> Packed.run ?check ?pool ?domains (packed cache c) inputs

let run_batch ?check ?pool ?domains cache c batch =
  Packed.run_batch ?check ?pool ?domains (packed cache c) batch
