type cache = { mutable packed : Packed.t option }

let create_cache () = { packed = None }

let packed cache c =
  match cache.packed with
  | Some p when Packed.circuit p == c -> p
  | _ ->
      let p = Packed.of_circuit c in
      cache.packed <- Some p;
      p

let run ?check ?(engine = Simulator.Packed) ?pool ?domains cache c inputs =
  match engine with
  | Simulator.Reference -> Simulator.run ?check c inputs
  | Simulator.Packed -> Packed.run ?check ?pool ?domains (packed cache c) inputs

let run_batch ?check ?pool ?domains cache c batch =
  Packed.run_batch ?check ?pool ?domains (packed cache c) batch
