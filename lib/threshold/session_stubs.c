/* The hot flip path of incremental (dirty-cone) session evaluation.
 *
 * Touching one fanout edge is two sequential loads plus one random
 * access into the per-segment state array; the loop is bound by
 * memory-level parallelism, not arithmetic.  Wires average only ~10
 * fanout edges on the flagship trace circuits, so the stub takes a
 * whole batch of changed wires at once — prefetching a single wire's
 * edges buys nothing when the range is shorter than the prefetch
 * distance.  The state layout mirrors Packed.session: 4 native ints
 * per segment — cached sum, bracket low, bracket high, and
 * (level lsl 1) lor dirty-bit.
 *
 * All arrays are Bigarray.int (untagged native words), so the stub
 * does no boxing, allocates nothing, raises nothing, and never calls
 * back into the runtime — [@@noalloc] on the OCaml side is sound.
 */

#include <caml/mlvalues.h>
#include <caml/bigarray.h>

/* Delta-adjust the cached sums of every segment reading any wire in
 * [wires] (packed as wire lsl 1 lor new-value) through the transposed
 * CSR [off]/[seg]/[wt], and append the ids of segments whose sum
 * newly left its firing-cut bracket (dirty bit clear) to [out].
 * Returns how many were appended; the caller distributes them to the
 * per-level queues.  Wire value bytes are maintained by the caller. */
CAMLprim value tcmm_session_touch_many(value vst, value voff, value vseg,
                                       value vwt, value vwires, value vnw,
                                       value vout)
{
  intnat *st = (intnat *) Caml_ba_data_val(vst);
  const intnat *off = (const intnat *) Caml_ba_data_val(voff);
  const intnat *seg = (const intnat *) Caml_ba_data_val(vseg);
  const intnat *wt = (const intnat *) Caml_ba_data_val(vwt);
  const intnat *wires = (const intnat *) Caml_ba_data_val(vwires);
  intnat *out = (intnat *) Caml_ba_data_val(vout);
  intnat nw = Long_val(vnw);
  intnat nout = 0;
  for (intnat k = 0; k < nw; k++) {
    intnat wv = wires[k];
    intnat w = wv >> 1;
    intnat sgn = (wv & 1) ? 1 : -1;
    intnat lo = off[w], hi = off[w + 1];
    /* Issue all of this wire's state-line prefetches up front: ~10
     * independent misses in flight beats one at a time on a box with
     * no other source of memory-level parallelism. */
    for (intnat i = lo; i < hi; i++)
      __builtin_prefetch(&st[seg[i] << 2], 1, 1);
    if (k + 1 < nw) {
      intnat w2 = wires[k + 1] >> 1;
      intnat lo2 = off[w2], hi2 = off[w2 + 1];
      if (hi2 > lo2 + 8) hi2 = lo2 + 8;
      for (intnat i = lo2; i < hi2; i++)
        __builtin_prefetch(&st[seg[i] << 2], 1, 1);
    }
    for (intnat i = lo; i < hi; i++) {
      intnat s = seg[i];
      intnat *p = &st[s << 2];
      intnat sum = p[0] + sgn * wt[i];
      p[0] = sum;
      if (sum < p[1] || sum >= p[2]) {
        intnat lvd = p[3];
        if (!(lvd & 1)) {
          p[3] = lvd | 1;
          out[nout++] = s;
        }
      }
    }
  }
  return Val_long(nout);
}

CAMLprim value tcmm_session_touch_many_byte(value *argv, int argn)
{
  (void) argn;
  return tcmm_session_touch_many(argv[0], argv[1], argv[2], argv[3], argv[4],
                                 argv[5], argv[6]);
}
