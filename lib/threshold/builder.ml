module Intvec = Tcmm_util.Intvec

type mode = Materialize | Count_only | Direct

(* Growable gate store; used in Materialize and Direct modes, and
   transiently in Count_only while a template is being recorded. *)
module Gvec = struct
  type t = { mutable data : Gate.t array; mutable len : int }

  let dummy = Gate.make ~inputs:[||] ~weights:[||] ~threshold:0
  let create () = { data = Array.make 16 dummy; len = 0 }

  let push t g =
    if t.len = Array.length t.data then begin
      let data = Array.make (2 * t.len) dummy in
      Array.blit t.data 0 data 0 t.len;
      t.data <- data
    end;
    t.data.(t.len) <- g;
    t.len <- t.len + 1

  let to_array t = Array.sub t.data 0 t.len
  let sub t pos len = Array.sub t.data pos len

  let truncate t len =
    (* Clear the dropped slots so captured gates don't keep whole
       recorded regions alive through the store. *)
    Array.fill t.data len (t.len - len) dummy;
    t.len <- len
end

(* Arena item log (Direct mode): construction order of raw-gate runs and
   template instances, enough to lower straight to the packed form. *)
type item =
  | A_raw of { gate0 : int; gv0 : int; mutable count : int }
  | A_inst of { tpl : Template.t; wire0 : int; slots : int array }

type arena = {
  a_num_inputs : int;
  a_num_wires : int;
  a_num_gates : int;
  a_levels : int;
  a_depths : int array;
  a_items : item array;
  a_raw : Gate.t array;
  a_outputs : int array;
}

type t = {
  mode : mode;
  depths : Intvec.t;  (* one entry per wire *)
  gates : Gvec.t;  (* empty in Count_only mode outside recording *)
  mutable inputs : int;
  mutable gate_count : int;
  mutable edges : int;
  mutable max_fan_in : int;
  mutable max_abs_weight : int;
  by_depth : Intvec.t;  (* gates at depth d+1 stored at index d *)
  mutable outputs_rev : Wire.t list;
  mutable n_outputs : int;
  templates : Template.t Template.Ktbl.t option;
  mutable recording : bool;  (* inside a [templated] cache-miss build *)
  mutable items_rev : item list;  (* Direct mode only *)
  mutable raw_open : bool;  (* last item is an extendable A_raw run *)
  mutable tpl_templates : int;
  mutable tpl_instances : int;
  mutable tpl_gates : int;
}

let create ?(mode = Materialize) ?(templates = true) () =
  {
    mode;
    depths = Intvec.create ~capacity:1024 ();
    gates = Gvec.create ();
    inputs = 0;
    gate_count = 0;
    edges = 0;
    max_fan_in = 0;
    max_abs_weight = 0;
    by_depth = Intvec.create ();
    outputs_rev = [];
    n_outputs = 0;
    templates = (if templates then Some (Template.Ktbl.create 64) else None);
    recording = false;
    items_rev = [];
    raw_open = false;
    tpl_templates = 0;
    tpl_instances = 0;
    tpl_gates = 0;
  }

let mode t = t.mode

let add_input t =
  if t.gate_count > 0 then
    invalid_arg "Builder.add_input: inputs must precede all gates";
  let w = t.inputs in
  t.inputs <- t.inputs + 1;
  Intvec.push t.depths 0;
  w

let add_inputs t n = Array.init n (fun _ -> add_input t)

let bump_by_depth t d =
  while Intvec.length t.by_depth < d do
    Intvec.push t.by_depth 0
  done;
  Intvec.set t.by_depth (d - 1) (Intvec.get t.by_depth (d - 1) + 1)

(* Whether the store keeps gate records right now. *)
let keeps_gates t =
  match t.mode with Materialize | Direct -> true | Count_only -> t.recording

(* Log [count] freshly appended raw gates (first wire [wire0], first
   store slot [gv0]) in the Direct-mode item log, coalescing with an
   open run when the ids are still consecutive. *)
let log_raw t ~wire0 ~gv0 ~count =
  if t.mode = Direct && not t.recording then
    match t.items_rev with
    | A_raw r :: _ when t.raw_open -> r.count <- r.count + count
    | _ ->
        t.items_rev <- A_raw { gate0 = wire0; gv0; count } :: t.items_rev;
        t.raw_open <- true

let add_gate t ~inputs ~weights ~threshold =
  let self = Intvec.length t.depths in
  if Array.length inputs <> Array.length weights then
    invalid_arg "Builder.add_gate: inputs/weights length mismatch";
  let d = ref 0 in
  Array.iter
    (fun w ->
      if w < 0 || w >= self then
        invalid_arg (Printf.sprintf "Builder.add_gate: dangling wire %d" w);
      d := max !d (Intvec.get t.depths w))
    inputs;
  let depth = !d + 1 in
  Intvec.push t.depths depth;
  t.gate_count <- t.gate_count + 1;
  t.edges <- t.edges + Array.length inputs;
  t.max_fan_in <- max t.max_fan_in (Array.length inputs);
  Array.iter (fun w -> t.max_abs_weight <- max t.max_abs_weight (abs w)) weights;
  bump_by_depth t depth;
  if keeps_gates t then begin
    let gv0 = t.gates.Gvec.len in
    Gvec.push t.gates (Gate.make ~inputs ~weights ~threshold);
    log_raw t ~wire0:self ~gv0 ~count:1
  end;
  self

let add_gate_terms t ~terms ~threshold =
  let inputs = Array.of_list (List.map fst terms) in
  let weights = Array.of_list (List.map snd terms) in
  add_gate t ~inputs ~weights ~threshold

let add_shared_gates t ~inputs ~weights ~thresholds =
  let self = Intvec.length t.depths in
  if Array.length inputs <> Array.length weights then
    invalid_arg "Builder.add_shared_gates: inputs/weights length mismatch";
  let d = ref 0 in
  Array.iter
    (fun w ->
      if w < 0 || w >= self then
        invalid_arg (Printf.sprintf "Builder.add_shared_gates: dangling wire %d" w);
      d := max !d (Intvec.get t.depths w))
    inputs;
  let depth = !d + 1 in
  let fan_in = Array.length inputs in
  let count = Array.length thresholds in
  if count > 0 then begin
    Array.iter (fun w -> t.max_abs_weight <- max t.max_abs_weight (abs w)) weights;
    t.gate_count <- t.gate_count + count;
    t.edges <- t.edges + (count * fan_in);
    t.max_fan_in <- max t.max_fan_in fan_in;
    while Intvec.length t.by_depth < depth do
      Intvec.push t.by_depth 0
    done;
    Intvec.set t.by_depth (depth - 1) (Intvec.get t.by_depth (depth - 1) + count)
  end;
  let keep = keeps_gates t in
  let gv0 = t.gates.Gvec.len in
  let wires =
    Array.map
      (fun threshold ->
        let wire = Intvec.length t.depths in
        Intvec.push t.depths depth;
        if keep then Gvec.push t.gates (Gate.make ~inputs ~weights ~threshold);
        wire)
      thresholds
  in
  if keep && count > 0 then log_raw t ~wire0:self ~gv0 ~count;
  wires

let const t v =
  add_gate t ~inputs:[||] ~weights:[||] ~threshold:(if v then 0 else 1)

let output t w =
  if w < 0 || w >= Intvec.length t.depths then
    invalid_arg "Builder.output: dangling wire";
  t.outputs_rev <- w :: t.outputs_rev;
  t.n_outputs <- t.n_outputs + 1

let depth_of t w = Intvec.get t.depths w
let num_wires t = Intvec.length t.depths
let num_inputs t = t.inputs
let num_gates t = t.gate_count

(* ------------------------------------------------------------------ *)
(* Template stamping                                                  *)
(* ------------------------------------------------------------------ *)

let templating t =
  match t.templates with Some _ -> not t.recording | None -> false

let resolve ~wire0 ~inputs r = if r >= 0 then wire0 + r else inputs.(-r - 1)

(* Reproduce a previously captured block by offset arithmetic: depths
   come from a per-slot-depth plan (one array blit), aggregate stats
   from the template's exact totals.  Gate-for-gate this is identical to
   re-running the constructor. *)
let stamp t tpl ~inputs =
  let open Template in
  if Array.length inputs <> tpl.n_slots then
    invalid_arg
      (Printf.sprintf "Builder.templated: expected %d slot wires, got %d"
         tpl.n_slots (Array.length inputs));
  let self = Intvec.length t.depths in
  let slot_depths =
    Array.map
      (fun w ->
        if w < 0 || w >= self then
          invalid_arg (Printf.sprintf "Builder.templated: dangling wire %d" w);
        Intvec.get t.depths w)
      inputs
  in
  let plan = Template.plan tpl ~slot_depths in
  let wire0 = self in
  Intvec.push_array t.depths plan.p_depths;
  if tpl.n_gates > 0 then begin
    t.gate_count <- t.gate_count + tpl.n_gates;
    t.edges <- t.edges + tpl.edges;
    t.max_fan_in <- max t.max_fan_in tpl.max_fan_in;
    t.max_abs_weight <- max t.max_abs_weight tpl.max_abs_weight;
    while Intvec.length t.by_depth < plan.p_max_depth do
      Intvec.push t.by_depth 0
    done;
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          let d = plan.p_hist_lo + i - 1 in
          Intvec.set t.by_depth d (Intvec.get t.by_depth d + c)
        end)
      plan.p_hist;
    match t.mode with
    | Count_only -> ()
    | Direct ->
        t.items_rev <-
          A_inst { tpl; wire0; slots = Array.copy inputs } :: t.items_rev;
        t.raw_open <- false
    | Materialize ->
        (* One fresh resolved input array per segment, weights shared
           from the template: within an instance the physical-sharing
           structure matches what the constructor emitted, so
           [Packed.of_circuit] finds the same segments. *)
        let nsegs = Array.length tpl.seg_start - 1 in
        for s = 0 to nsegs - 1 do
          let g0 = tpl.seg_start.(s) in
          let gend = tpl.seg_start.(s + 1) in
          let off = tpl.seg_off.(s) in
          let fan = tpl.seg_off.(s + 1) - off in
          let ins =
            Array.init fan (fun i ->
                resolve ~wire0 ~inputs tpl.s_refs.(off + i))
          in
          let weights = tpl.s_weights.(s) in
          for g = g0 to gend - 1 do
            Gvec.push t.gates
              (Gate.make ~inputs:ins ~weights ~threshold:tpl.g_threshold.(g))
          done
        done
  end;
  t.tpl_instances <- t.tpl_instances + 1;
  t.tpl_gates <- t.tpl_gates + tpl.n_gates;
  (Array.map (resolve ~wire0 ~inputs) tpl.outs, tpl.meta)

let templated t ~tag ~data ~inputs ~build =
  match t.templates with
  | None -> build ()
  | Some _ when t.recording -> build ()
  | Some tbl -> (
      let key = { Template.tag; data } in
      match Template.Ktbl.find_opt tbl key with
      | Some tpl -> stamp t tpl ~inputs
      | None ->
          let wire0 = Intvec.length t.depths in
          let gv0 = t.gates.Gvec.len in
          t.recording <- true;
          let outs, meta =
            Fun.protect
              ~finally:(fun () -> t.recording <- false)
              build
          in
          let gates = Gvec.sub t.gates gv0 (t.gates.Gvec.len - gv0) in
          let tpl = Template.capture ~wire0 ~inputs ~gates ~outs ~meta in
          Template.Ktbl.add tbl key tpl;
          t.tpl_templates <- t.tpl_templates + 1;
          t.tpl_instances <- t.tpl_instances + 1;
          t.tpl_gates <- t.tpl_gates + Template.n_gates tpl;
          (match t.mode with
          | Materialize -> ()
          | Count_only -> Gvec.truncate t.gates gv0
          | Direct ->
              Gvec.truncate t.gates gv0;
              if Template.n_gates tpl > 0 then begin
                t.items_rev <-
                  A_inst { tpl; wire0; slots = Array.copy inputs }
                  :: t.items_rev;
                t.raw_open <- false
              end);
          (outs, meta))

type template_stats = { templates : int; instances : int; stamped_gates : int }

let template_stats t =
  {
    templates = t.tpl_templates;
    instances = t.tpl_instances;
    stamped_gates = t.tpl_gates;
  }

let arena t =
  match t.mode with
  | Direct ->
      {
        a_num_inputs = t.inputs;
        a_num_wires = Intvec.length t.depths;
        a_num_gates = t.gate_count;
        a_levels = Intvec.length t.by_depth;
        a_depths = Intvec.to_array t.depths;
        a_items = Array.of_list (List.rev t.items_rev);
        a_raw = Gvec.to_array t.gates;
        a_outputs = Array.of_list (List.rev t.outputs_rev);
      }
  | Materialize | Count_only ->
      invalid_arg "Builder.arena: builder is not in Direct mode"

let stats t =
  {
    Stats.inputs = t.inputs;
    outputs = t.n_outputs;
    gates = t.gate_count;
    edges = t.edges;
    depth = Intvec.length t.by_depth;
    max_fan_in = t.max_fan_in;
    max_abs_weight = t.max_abs_weight;
    gates_by_depth = Intvec.to_array t.by_depth;
  }

let finalize t =
  match t.mode with
  | Count_only -> invalid_arg "Builder.finalize: builder is in Count_only mode"
  | Direct ->
      invalid_arg
        "Builder.finalize: builder is in Direct mode (lower the arena with \
         Packed.of_arena)"
  | Materialize ->
      Circuit.make ~num_inputs:t.inputs ~gates:(Gvec.to_array t.gates)
        ~outputs:(Array.of_list (List.rev t.outputs_rev))
