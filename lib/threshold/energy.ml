type summary = {
  samples : int;
  mean_firings : float;
  min_firings : int;
  max_firings : int;
  gates : int;
  mean_level_firings : float array;
}

(* Lanes per batched traversal when measuring with the packed engine:
   a few words' worth bounds the transient per-wire word storage. *)
let batch_chunk = 248

let measure ?(engine = Simulator.Packed) ?domains c inputs =
  if inputs = [] then invalid_arg "Energy.measure: no inputs";
  let total = ref 0 and mn = ref max_int and mx = ref 0 and n = ref 0 in
  let lf_total = ref [||] in
  let record ~firings ~level_firings =
    total := !total + firings;
    mn := min !mn firings;
    mx := max !mx firings;
    if Array.length !lf_total = 0 then
      lf_total := Array.make (Array.length level_firings) 0;
    Array.iteri (fun i v -> !lf_total.(i) <- !lf_total.(i) + v) level_firings;
    incr n
  in
  (match engine with
  | Simulator.Reference ->
      List.iter
        (fun input ->
          let r = Simulator.run c input in
          record ~firings:r.Simulator.firings
            ~level_firings:r.Simulator.level_firings)
        inputs
  | Simulator.Packed ->
      let p = Packed.of_circuit c in
      let arr = Array.of_list inputs in
      let len = Array.length arr in
      let pos = ref 0 in
      while !pos < len do
        let b = min batch_chunk (len - !pos) in
        let br = Packed.run_batch ?domains p (Array.sub arr !pos b) in
        for lane = 0 to b - 1 do
          record
            ~firings:(Packed.batch_firings br ~lane)
            ~level_firings:(Packed.batch_level_firings br ~lane)
        done;
        pos := !pos + b
      done);
  let samples = !n in
  {
    samples;
    mean_firings = float_of_int !total /. float_of_int samples;
    min_firings = !mn;
    max_firings = !mx;
    gates = Circuit.num_gates c;
    mean_level_firings =
      Array.map (fun v -> float_of_int v /. float_of_int samples) !lf_total;
  }

let random_inputs rng ~num_inputs ~samples =
  List.init samples (fun _ ->
      Array.init num_inputs (fun _ -> Tcmm_util.Prng.bool rng))

let firing_fraction s =
  if s.gates = 0 then 0. else s.mean_firings /. float_of_int s.gates

let pp ppf s =
  Format.fprintf ppf "firings: mean %.1f of %d gates (%.1f%%), range [%d, %d], %d samples"
    s.mean_firings s.gates (100. *. firing_fraction s) s.min_firings s.max_firings
    s.samples
