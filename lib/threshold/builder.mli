(** Incremental construction of threshold circuits.

    All circuit constructors in this repository (the arithmetic circuits of
    Section 3 and the trace / matrix-product circuits of Section 4) are
    written against this builder.  It runs in one of two modes:

    - {b Materialize}: gates are stored and {!finalize} yields a
      {!Circuit.t} that can be simulated exactly.
    - {b Count_only}: gates are only tallied (count, edges, per-wire depth,
      fan-in, weight range).  This gives {i exact} structural statistics for
      circuits far too large to hold in memory — the paper's scaling claims
      are about gate counts, so the count-only sweeps are the primary
      experimental instrument.
    - {b Direct}: gates are kept as an {!arena} — an ordered log of raw
      gate runs and template instances — that {!Packed.of_arena} lowers
      straight to the packed CSR form, skipping the per-gate
      [Circuit.t] heap walk.

    Constructor code is identical under all modes; only [finalize] is
    restricted to [Materialize].

    {b Templates.} The paper's constructions stamp a handful of block
    shapes (Lemma 3.1 shared-threshold layers, Lemma 3.3 product blocks,
    sum-tree recombination nodes) thousands of times.  Constructors wrap
    such blocks in {!templated}: the first occurrence of a structural key
    records the block into a relocatable {!Template.t}, every later
    occurrence is reproduced by offset arithmetic — same wires, same
    depths, same stats, same gates — without re-running the constructor. *)

type mode = Materialize | Count_only | Direct

type t

val create : ?mode:mode -> ?templates:bool -> unit -> t
(** [create ()] starts an empty builder in [Materialize] mode with
    template stamping enabled ([templates] defaults to [true]). *)

val mode : t -> mode

val add_input : t -> Wire.t
(** Appends one input wire (depth 0).  Inputs must be created before any
    gate; raises [Invalid_argument] otherwise (keeps the input block dense
    at the bottom of the wire id space). *)

val add_inputs : t -> int -> Wire.t array
(** [add_inputs b n] appends [n] input wires. *)

val add_gate : t -> inputs:Wire.t array -> weights:int array -> threshold:int -> Wire.t
(** Appends a gate reading existing wires; returns its output wire.
    Raises [Invalid_argument] on a dangling wire id or mismatched
    weight array. *)

val add_gate_terms : t -> terms:(Wire.t * int) list -> threshold:int -> Wire.t
(** Convenience form of {!add_gate} taking [(wire, weight)] pairs. *)

val add_shared_gates :
  t -> inputs:Wire.t array -> weights:int array -> thresholds:int array -> Wire.t array
(** One gate per threshold, all reading the same (physically shared)
    input/weight arrays.  Counts are identical to calling {!add_gate}
    repeatedly; the point is performance: input validation, depth and
    weight scans happen once for the whole layer instead of per gate.
    Lemma 3.1's first layer — [2^k] gates that differ only in their
    threshold — is built through this. *)

val const : t -> bool -> Wire.t
(** [const b v] is a wire carrying constant [v], built as a fan-in-0 gate
    with threshold 0 (true) or 1 (false).  Each call creates a gate;
    constructors avoid constants where a value is statically known. *)

val output : t -> Wire.t -> unit
(** Marks a wire as a circuit output (in call order). *)

val depth_of : t -> Wire.t -> int
val num_wires : t -> int
val num_inputs : t -> int
val num_gates : t -> int

val stats : t -> Stats.t
(** Exact structural statistics of the circuit built so far (all modes). *)

val finalize : t -> Circuit.t
(** Raises [Invalid_argument] in [Count_only] and [Direct] modes (lower a
    Direct builder with {!Packed.of_arena} instead). *)

(** {2 Template stamping} *)

val templating : t -> bool
(** [true] when a call to {!templated} may hit the template cache — i.e.
    templates are enabled and no recording is in flight.  Call sites use
    this to skip building the structural key on the legacy path. *)

val templated :
  t ->
  tag:int ->
  data:int array ->
  inputs:Wire.t array ->
  build:(unit -> Wire.t array * int array array) ->
  Wire.t array * int array array
(** [templated b ~tag ~data ~inputs ~build] builds one block through the
    template cache.  [(tag, data)] is the structural key: it must
    determine the emitted gates {i exactly} (including the
    wire-duplication pattern of [inputs] — see {!Template.pattern}),
    with wire identities abstracted to positions in [inputs].  [build]
    runs the real constructor and returns the block's result wires plus
    an opaque metadata payload; on a cache hit both are reproduced from
    the template without calling [build].  With templates disabled (or
    during a recording) this is exactly [build ()]. *)

type template_stats = { templates : int; instances : int; stamped_gates : int }

val template_stats : t -> template_stats
(** Distinct templates recorded, instances built through {!templated}
    (recordings included), and total gates those instances produced. *)

(** {2 Direct-mode arena} *)

(** One construction-order step: a run of raw (non-templated) gates with
    consecutive wire ids, or one template instance. *)
type item =
  | A_raw of { gate0 : int; gv0 : int; mutable count : int }
      (** [count] gates: wire ids [gate0..], stored at [a_raw.(gv0..)]. *)
  | A_inst of { tpl : Template.t; wire0 : int; slots : int array }
      (** Instance of [tpl] whose first gate drives wire [wire0], formal
          slots bound to [slots]. *)

type arena = {
  a_num_inputs : int;
  a_num_wires : int;
  a_num_gates : int;
  a_levels : int;
  a_depths : int array;  (* per wire *)
  a_items : item array;
  a_raw : Gate.t array;
  a_outputs : int array;
}

val arena : t -> arena
(** The arena built so far.  Raises [Invalid_argument] unless the
    builder is in [Direct] mode. *)
