(** Firing-count energy model.

    The paper's open problems (Section 6) cite the energy model of
    Uchizawa, Douglas and Maass: a gate costs one unit iff it fires.
    This module measures that cost empirically over input distributions,
    which is the per-experiment quantity E9 reports. *)

type summary = {
  samples : int;
  mean_firings : float;
  min_firings : int;
  max_firings : int;
  gates : int;  (** circuit size, for computing the firing fraction *)
  mean_level_firings : float array;
      (** mean firings per depth level (entry [d] = gates of depth
          [d + 1]); sums to [mean_firings] *)
}

val measure :
  ?engine:Simulator.engine -> ?domains:int -> Circuit.t -> bool array list -> summary
(** [measure c inputs] simulates [c] on each input vector and aggregates
    firing counts.  With the default {!Simulator.Packed} engine the
    inputs are evaluated in batched traversals
    ({!Packed.run_batch}, the dominant cost of energy sweeps);
    [Simulator.Reference] falls back to one {!Simulator.run} per input.
    Raises [Invalid_argument] on an empty list. *)

val random_inputs :
  Tcmm_util.Prng.t -> num_inputs:int -> samples:int -> bool array list
(** Uniform random boolean input vectors. *)

val firing_fraction : summary -> float
(** Mean fraction of gates that fire per evaluation. *)

val pp : Format.formatter -> summary -> unit
