(** Exact evaluation of a threshold circuit.

    The simulator walks the gates in topological order, so one pass over
    the gate array (linear in the edge count) computes every wire.  It also
    records the number of gates that fire, which is the energy measure of
    Uchizawa, Douglas and Maass cited in the paper's open problems
    (Section 6).

    This module is the {i reference} semantics: one gate at a time, in
    gate-id order.  {!Packed} compiles a circuit into a flat levelized
    form and evaluates it much faster (optionally on several cores, or on
    whole batches of input vectors) with bit-identical results; the
    circuit drivers in [lib/core] accept an {!engine} argument to choose
    between the two. *)

type engine = Reference | Packed
(** Which evaluator a driver should use: the gate-at-a-time reference
    interpreter above, or the {!Packed} levelized engine.  Both produce
    identical [outputs], [firings] and [level_firings]. *)

type result = {
  values : Bytes.t;  (** one byte per wire: 0 or 1 *)
  outputs : bool array;  (** values of the circuit's designated outputs *)
  firings : int;  (** number of gates whose output is 1 *)
  level_firings : int array;
      (** firing count per depth level: entry [d] counts firing gates of
          depth [d + 1]; sums to [firings] *)
}

val run : ?check:bool -> Circuit.t -> bool array -> result
(** [run c inputs] evaluates [c] on [inputs].
    [check] (default [false]) enables overflow-checked accumulation.
    Raises [Invalid_argument] if [inputs] length differs from
    [c.num_inputs]. *)

val value : result -> Wire.t -> bool
(** [value r w] reads one wire from a result. *)

val read_outputs : Circuit.t -> bool array -> bool array
(** Convenience: [run] then return just the output values. *)
