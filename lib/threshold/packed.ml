module Intvec = Tcmm_util.Intvec
module Checked = Tcmm_util.Checked

(* ------------------------------------------------------------------ *)
(* Off-heap storage                                                   *)
(* ------------------------------------------------------------------ *)

(* The hot CSR arrays (edge wires, edge weights, gate thresholds, gate
   output wires) live in Bigarray storage: off the OCaml heap, so the
   GC never scans or moves the circuit metadata (hundreds of MB at
   N=32), and unsafe accesses compile to direct loads with no tag
   arithmetic.  [Array1.create] leaves the storage uninitialized — both
   constructors below write every live slot, and the one padding slot
   of an empty array is never read. *)
type ivec = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let ba_create n : ivec =
  Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max n 1)

let ba_of_array a =
  let b = ba_create (Array.length a) in
  Array.iteri (fun i x -> Bigarray.Array1.unsafe_set b i x) a;
  b

(* Eta-expanded on purpose: a bare alias of the primitive is a closure
   the non-flambda compiler calls out to on every edge; a syntactic
   function this small inlines to the raw load/store at every direct
   call site. *)
let[@inline always] bget (v : ivec) i = Bigarray.Array1.unsafe_get v i
let[@inline always] bset (v : ivec) i x = Bigarray.Array1.unsafe_set v i x

(* ------------------------------------------------------------------ *)
(* Packed representation                                              *)
(* ------------------------------------------------------------------ *)

type t = {
  (* Lazy: arena-built circuits (Builder Direct mode) lower straight to
     this packed form; the [Circuit.t] view is only materialized if a
     consumer (Simulator, Validate, Export) actually asks for it. *)
  circuit : Circuit.t Lazy.t;
  num_inputs : int;
  num_wires : int;
  num_gates : int;
  levels : int;
  (* Flat CSR edge pools.  Gates built through [Builder.add_shared_gates]
     physically share their input/weight arrays; consecutive gates (in
     level order) sharing arrays collapse into one *segment*, so the
     pools hold each shared array once — for the big matmul circuits
     this is ~250x smaller than the logical edge count. *)
  pool_wires : ivec;
  pool_weights : ivec;
  (* Per segment: pool offset, fan-in, and the packed-gate range
     [seg_gates.(s), seg_gates.(s+1)) of gates sharing that sum. *)
  seg_off : int array;
  seg_fan : int array;
  seg_gates : int array;  (* length num_segments + 1 *)
  (* Edges within a segment are stored grouped by weight value (stable,
     groups in order of first appearance): segment [s] owns groups
     [seg_grp.(s), seg_grp.(s+1)), group [g] owns pool slots
     [grp_off.(g), grp_off.(g+1)) all carrying weight [grp_weight.(g)].
     The paper's wide layers have huge fan-in but only a handful of
     distinct weights (e.g. the alternating +/- rows of Lemma 3.1), so
     the batched evaluator can replace per-set-bit adds with a carry-save
     per-lane popcount over each group. *)
  seg_grp : int array;  (* length num_segments + 1 *)
  grp_off : int array;  (* length num_groups + 1 *)
  grp_weight : int array;
  (* Segments grouped by level: segments [level_segs.(l), level_segs.(l+1))
     hold exactly the gates of depth l+1.  Gates within a level are
     mutually independent, which is what the parallel and batched
     evaluators exploit. *)
  level_segs : int array;  (* length levels + 1 *)
  (* Per packed gate (level-major order; thresholds ascend within each
     segment so the firing gates of a segment are a prefix). *)
  g_threshold : ivec;
  g_wire : ivec;  (* output wire id *)
  outputs : int array;
  max_seg_gates : int;
  (* Per segment: the specialized batch evaluator compiled from the
     segment's template ([Kernel.Generic] = CSR fallback).  Empty when
     kernels are disabled or the circuit was packed via [of_circuit] —
     dispatch then always takes the generic path. *)
  kern : Kernel.spec array;
  k_gates : int;  (* gates covered by a non-generic kernel *)
  k_segs : int;
  (* Transposed (wire -> reading pool slots) CSR, built on first
     [session] and memoized: slot positions into [pool_wires] /
     [pool_weights] of every edge that reads a given wire.  Pure
     derived data — ignored by [structural_equal] and not persisted. *)
  mutable fanout : fanout option;
}

and fanout = {
  fan_off : ivec;  (* num_wires + 1 *)
  (* Per fanout slot, the reading edge resolved to what [update]
     actually needs: the owning segment and the edge weight.  Storing
     the resolution (instead of the raw pool position) keeps the
     per-edge cost of a flip at two sequential loads — a binary search
     for the owning segment on every touched edge dominated update
     latency before this. *)
  fan_seg : ivec;  (* owning segment id, length pool_edges *)
  fan_weight : ivec;  (* edge weight, length pool_edges *)
}

let of_circuit (c : Circuit.t) =
  let num_inputs = c.Circuit.num_inputs in
  let gates = c.Circuit.gates in
  let ng = Array.length gates in
  let num_wires = num_inputs + ng in
  let depths = c.Circuit.depths in
  let levels = Array.fold_left max 0 depths in
  (* Stable counting sort of gate ids by level (level l = depth l+1). *)
  let counts = Array.make (levels + 1) 0 in
  for g = 0 to ng - 1 do
    let d = depths.(num_inputs + g) in
    counts.(d) <- counts.(d) + 1
  done;
  (* lvl_start.(l) = first packed position of level l; sentinel at [levels]. *)
  let lvl_start = Array.make (levels + 1) 0 in
  for l = 0 to levels - 1 do
    lvl_start.(l + 1) <- lvl_start.(l) + counts.(l + 1)
  done;
  let order = Array.make (max ng 1) 0 in
  let cursor = Array.copy lvl_start in
  for g = 0 to ng - 1 do
    let l = depths.(num_inputs + g) - 1 in
    order.(cursor.(l)) <- g;
    cursor.(l) <- cursor.(l) + 1
  done;
  let pool_wires = Intvec.create ~capacity:1024 () in
  let pool_weights = Intvec.create ~capacity:1024 () in
  let seg_off = Intvec.create () in
  let seg_fan = Intvec.create () in
  let seg_gates = Intvec.create () in
  let seg_grp = Intvec.create () in
  let grp_off = Intvec.create () in
  let grp_weight = Intvec.create () in
  let level_segs = Array.make (levels + 1) 0 in
  let g_threshold = Array.make (max ng 1) 0 in
  let g_wire = Array.make (max ng 1) 0 in
  let max_seg_gates = ref 0 in
  let p = ref 0 in
  for l = 0 to levels - 1 do
    level_segs.(l) <- Intvec.length seg_off;
    let level_end = lvl_start.(l + 1) in
    while !p < level_end do
      let g0 = order.(!p) in
      let gate0 = gates.(g0) in
      Intvec.push seg_off (Intvec.length pool_wires);
      Intvec.push seg_fan (Array.length gate0.Gate.inputs);
      Intvec.push seg_gates !p;
      Intvec.push seg_grp (Intvec.length grp_weight);
      (* Push the segment's edges grouped by weight value (stable within
         a group, groups ordered by first appearance). *)
      let ins = gate0.Gate.inputs and wts = gate0.Gate.weights in
      let fan = Array.length ins in
      let gid = Array.make (max fan 1) 0 in
      let tbl = Hashtbl.create 8 in
      let gcount = ref 0 in
      for i = 0 to fan - 1 do
        match Hashtbl.find_opt tbl wts.(i) with
        | Some g -> gid.(i) <- g
        | None ->
            Hashtbl.add tbl wts.(i) !gcount;
            gid.(i) <- !gcount;
            incr gcount
      done;
      let gcount = !gcount in
      let sizes = Array.make (max gcount 1) 0 in
      for i = 0 to fan - 1 do
        sizes.(gid.(i)) <- sizes.(gid.(i)) + 1
      done;
      let base = Intvec.length pool_wires in
      let starts = Array.make (max gcount 1) 0 in
      let acc = ref 0 in
      for g = 0 to gcount - 1 do
        starts.(g) <- !acc;
        acc := !acc + sizes.(g)
      done;
      let gw = Array.make (max gcount 1) 0 in
      let perm = Array.make (max fan 1) 0 in
      let cur = Array.copy starts in
      for i = 0 to fan - 1 do
        let g = gid.(i) in
        gw.(g) <- wts.(i);
        perm.(cur.(g)) <- i;
        cur.(g) <- cur.(g) + 1
      done;
      for j = 0 to fan - 1 do
        let i = perm.(j) in
        Intvec.push pool_wires ins.(i);
        Intvec.push pool_weights wts.(i)
      done;
      for g = 0 to gcount - 1 do
        Intvec.push grp_off (base + starts.(g));
        Intvec.push grp_weight gw.(g)
      done;
      (* Extend the segment over consecutive gates that physically share
         the input/weight arrays (they necessarily sit at the same
         depth, so the level boundary is respected automatically — but
         we re-check it to stay robust to exotic circuits). *)
      let q = ref (!p + 1) in
      while
        !q < level_end
        && gates.(order.(!q)).Gate.inputs == gate0.Gate.inputs
        && gates.(order.(!q)).Gate.weights == gate0.Gate.weights
      do
        incr q
      done;
      let k = !q - !p in
      if k > !max_seg_gates then max_seg_gates := k;
      let pairs =
        Array.init k (fun i ->
            let g = order.(!p + i) in
            (gates.(g).Gate.threshold, num_inputs + g))
      in
      Array.sort (fun (a, _) (b, _) -> compare (a : int) b) pairs;
      for i = 0 to k - 1 do
        let th, w = pairs.(i) in
        g_threshold.(!p + i) <- th;
        g_wire.(!p + i) <- w
      done;
      p := !q
    done
  done;
  level_segs.(levels) <- Intvec.length seg_off;
  Intvec.push seg_gates ng;
  Intvec.push seg_grp (Intvec.length grp_weight);
  Intvec.push grp_off (Intvec.length pool_wires);
  {
    circuit = Lazy.from_val c;
    num_inputs;
    num_wires;
    num_gates = ng;
    levels;
    pool_wires = ba_of_array (Intvec.to_array pool_wires);
    pool_weights = ba_of_array (Intvec.to_array pool_weights);
    seg_off = Intvec.to_array seg_off;
    seg_fan = Intvec.to_array seg_fan;
    seg_gates = Intvec.to_array seg_gates;
    seg_grp = Intvec.to_array seg_grp;
    grp_off = Intvec.to_array grp_off;
    grp_weight = Intvec.to_array grp_weight;
    level_segs;
    g_threshold = ba_of_array g_threshold;
    g_wire = ba_of_array g_wire;
    outputs = c.Circuit.outputs;
    max_seg_gates = !max_seg_gates;
    kern = [||];
    k_gates = 0;
    k_segs = 0;
    fanout = None;
  }

let circuit t = Lazy.force t.circuit
let num_gates t = t.num_gates
let num_levels t = t.levels
let num_segments t = Array.length t.seg_off
(* [grp_off]'s sentinel is the pool size (the Bigarray itself is padded
   to length >= 1, so its dim is not authoritative). *)
let pool_edges t = t.grp_off.(Array.length t.grp_off - 1)

type coverage = {
  kernel_gates : int;
  fallback_gates : int;
  kernel_segments : int;
  generic_segments : int;
}

let coverage t =
  {
    kernel_gates = t.k_gates;
    fallback_gates = t.num_gates - t.k_gates;
    kernel_segments = t.k_segs;
    generic_segments = Array.length t.seg_off - t.k_segs;
  }

(* ------------------------------------------------------------------ *)
(* Domain pool                                                        *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  type pool = {
    size : int;
    mutable task : int -> unit;
    mutable nchunks : int;
    next : int Atomic.t;
    mutable done_workers : int;
    mutable epoch : int;
    mutable stop : bool;
    m : Mutex.t;
    work_cv : Condition.t;
    done_cv : Condition.t;
    mutable err : exn option;
    mutable handles : unit Domain.t list;
  }

  type t = pool

  let size t = t.size

  (* Claim and run chunks until the current job is drained.  The first
     exception (e.g. a [Checked.Overflow] from a checked evaluation) is
     parked in [err] and re-raised by the caller after the barrier. *)
  let drain t =
    let rec loop () =
      let i = Atomic.fetch_and_add t.next 1 in
      if i < t.nchunks then begin
        (try t.task i
         with e ->
           Mutex.lock t.m;
           if t.err = None then t.err <- Some e;
           Mutex.unlock t.m);
        loop ()
      end
    in
    loop ()

  let worker t () =
    let my_epoch = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock t.m;
      while (not t.stop) && t.epoch = !my_epoch do
        Condition.wait t.work_cv t.m
      done;
      if t.stop then begin
        Mutex.unlock t.m;
        running := false
      end
      else begin
        my_epoch := t.epoch;
        Mutex.unlock t.m;
        drain t;
        Mutex.lock t.m;
        t.done_workers <- t.done_workers + 1;
        if t.done_workers = t.size then Condition.signal t.done_cv;
        Mutex.unlock t.m
      end
    done

  let create ~domains =
    if domains < 1 then invalid_arg "Packed.Pool.create: domains must be >= 1";
    let t =
      {
        size = domains;
        task = ignore;
        nchunks = 0;
        next = Atomic.make 0;
        done_workers = 0;
        epoch = 0;
        stop = false;
        m = Mutex.create ();
        work_cv = Condition.create ();
        done_cv = Condition.create ();
        err = None;
        handles = [];
      }
    in
    t.handles <- List.init (domains - 1) (fun _ -> Domain.spawn (worker t));
    t

  (* Run [task 0 .. task (chunks-1)] across the pool; returns when every
     chunk has finished (level barrier).  Not reentrant. *)
  let run t ~chunks task =
    if chunks < 0 then invalid_arg "Packed.Pool.run: negative chunk count";
    if chunks = 0 then ()
    else if t.size = 1 then
      for i = 0 to chunks - 1 do
        task i
      done
    else begin
      Mutex.lock t.m;
      t.task <- task;
      t.nchunks <- chunks;
      Atomic.set t.next 0;
      t.done_workers <- 0;
      t.err <- None;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.work_cv;
      Mutex.unlock t.m;
      drain t;
      Mutex.lock t.m;
      t.done_workers <- t.done_workers + 1;
      while t.done_workers < t.size do
        Condition.wait t.done_cv t.m
      done;
      let err = t.err in
      t.err <- None;
      t.task <- ignore;
      Mutex.unlock t.m;
      match err with Some e -> raise e | None -> ()
    end

  let shutdown t =
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.m;
    List.iter Domain.join t.handles;
    t.handles <- []

  let with_pool ~domains f =
    let t = create ~domains in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
end

let chunk_bounds lo nseg nchunks i =
  (lo + (i * nseg / nchunks), lo + ((i + 1) * nseg / nchunks))

(* ------------------------------------------------------------------ *)
(* Direct lowering from a builder arena                               *)
(* ------------------------------------------------------------------ *)

(* [of_arena] produces the same packed form as
   [of_circuit (materialized arena)] without ever materializing the
   per-gate [Circuit.t]: each template carries a precomputed lowering
   plan (weight grouping, edge permutation, threshold sort — see
   [Template.lower_plan]) that is replayed per instance by offset
   arithmetic.  Items appear in construction order and wire ids grow
   monotonically with it, so appending each segment to its level
   reproduces exactly the stable level-major order of [of_circuit]. *)

let dummy_pseg =
  {
    Template.q_gate0 = 0;
    q_count = 0;
    q_fan = 0;
    q_refs = [||];
    q_weights = [||];
    q_grp_start = [||];
    q_grp_weight = [||];
    q_th = [||];
    q_th_gate = [||];
    q_kernel = Kernel.Generic;
  }

(* Materialize the gate array of an arena (only reached through the lazy
   [circuit] field; the packed evaluators never need it). *)
let gates_of_arena (a : Builder.arena) =
  let num_inputs = a.Builder.a_num_inputs in
  let ng = a.Builder.a_num_gates in
  let dummy = Gate.make ~inputs:[||] ~weights:[||] ~threshold:0 in
  let gates = Array.make (max ng 1) dummy in
  Array.iter
    (function
      | Builder.A_raw { gate0; gv0; count } ->
          Array.blit a.Builder.a_raw gv0 gates (gate0 - num_inputs) count
      | Builder.A_inst { tpl; wire0; slots } ->
          let nsegs = Array.length tpl.Template.seg_start - 1 in
          for s = 0 to nsegs - 1 do
            let g0 = tpl.Template.seg_start.(s) in
            let gend = tpl.Template.seg_start.(s + 1) in
            let off = tpl.Template.seg_off.(s) in
            let fan = tpl.Template.seg_off.(s + 1) - off in
            let ins =
              Array.init fan (fun i ->
                  let r = tpl.Template.s_refs.(off + i) in
                  if r >= 0 then wire0 + r else slots.(-r - 1))
            in
            let weights = tpl.Template.s_weights.(s) in
            for g = g0 to gend - 1 do
              gates.(wire0 - num_inputs + g) <-
                Gate.make ~inputs:ins ~weights
                  ~threshold:tpl.Template.g_threshold.(g)
            done
          done)
    a.Builder.a_items;
  if ng = 0 then [||] else gates

let of_arena ?pool ?(domains = 1) ?(kernels = true) (a : Builder.arena) =
  let num_inputs = a.Builder.a_num_inputs in
  let ng = a.Builder.a_num_gates in
  let num_wires = a.Builder.a_num_wires in
  let depths = a.Builder.a_depths in
  let levels = a.Builder.a_levels in
  let items = a.Builder.a_items in
  let item_psegs =
    Array.map
      (function
        | Builder.A_inst { tpl; _ } -> Template.lower_plan tpl
        | Builder.A_raw { gate0; gv0; count } ->
            Template.raw_psegs a.Builder.a_raw ~gv0 ~count ~wire_of:(fun i ->
                gate0 + i))
      items
  in
  let base_of idx =
    match items.(idx) with
    | Builder.A_inst { wire0; slots; _ } -> (wire0, slots)
    | Builder.A_raw _ -> (0, [||])
  in
  (* Pass 0: per-level segment/gate/group/edge counts. *)
  let seg_cnt = Array.make (max levels 1) 0 in
  let gate_cnt = Array.make (max levels 1) 0 in
  let grp_cnt = Array.make (max levels 1) 0 in
  let edge_cnt = Array.make (max levels 1) 0 in
  Array.iteri
    (fun idx psegs ->
      let w0, _ = base_of idx in
      Array.iter
        (fun (ps : Template.pseg) ->
          let l = depths.(w0 + ps.Template.q_gate0) - 1 in
          seg_cnt.(l) <- seg_cnt.(l) + 1;
          gate_cnt.(l) <- gate_cnt.(l) + ps.Template.q_count;
          grp_cnt.(l) <- grp_cnt.(l) + Array.length ps.Template.q_grp_weight;
          edge_cnt.(l) <- edge_cnt.(l) + ps.Template.q_fan)
        psegs)
    item_psegs;
  let level_segs = Array.make (levels + 1) 0 in
  let lvl_gate0 = Array.make (levels + 1) 0 in
  let lvl_grp0 = Array.make (levels + 1) 0 in
  let lvl_edge0 = Array.make (levels + 1) 0 in
  for l = 0 to levels - 1 do
    level_segs.(l + 1) <- level_segs.(l) + seg_cnt.(l);
    lvl_gate0.(l + 1) <- lvl_gate0.(l) + gate_cnt.(l);
    lvl_grp0.(l + 1) <- lvl_grp0.(l) + grp_cnt.(l);
    lvl_edge0.(l + 1) <- lvl_edge0.(l) + edge_cnt.(l)
  done;
  let nsegs = level_segs.(levels) in
  let ngroups = lvl_grp0.(levels) in
  let nedges = lvl_edge0.(levels) in
  assert (lvl_gate0.(levels) = ng);
  let pool_wires = ba_create nedges in
  let pool_weights = ba_create nedges in
  let seg_off = Array.make (max nsegs 1) 0 in
  let seg_fan = Array.make (max nsegs 1) 0 in
  let seg_gates = Array.make (nsegs + 1) 0 in
  let seg_grp = Array.make (nsegs + 1) 0 in
  let grp_off = Array.make (ngroups + 1) 0 in
  let grp_weight = Array.make (max ngroups 1) 0 in
  let g_threshold = ba_create ng in
  let g_wire = ba_create ng in
  let kern = if kernels then Array.make (max nsegs 1) Kernel.Generic else [||] in
  let k_gates = ref 0 and k_segs = ref 0 in
  let src_ps = Array.make (max nsegs 1) dummy_pseg in
  let src_w0 = Array.make (max nsegs 1) 0 in
  let src_slots = Array.make (max nsegs 1) [||] in
  (* Pass 1: walk items in construction order, assigning each segment
     its slot in the level-major layout and filling every per-segment
     array that pass 2's parallel fill indexes into. *)
  let seg_cursor = Array.copy level_segs in
  let gate_cursor = Array.copy lvl_gate0 in
  let grp_cursor = Array.copy lvl_grp0 in
  let edge_cursor = Array.copy lvl_edge0 in
  let max_seg_gates = ref 0 in
  Array.iteri
    (fun idx psegs ->
      let w0, slots = base_of idx in
      Array.iter
        (fun (ps : Template.pseg) ->
          let l = depths.(w0 + ps.Template.q_gate0) - 1 in
          let s = seg_cursor.(l) in
          seg_cursor.(l) <- s + 1;
          let p = gate_cursor.(l) in
          gate_cursor.(l) <- p + ps.Template.q_count;
          let e = edge_cursor.(l) in
          edge_cursor.(l) <- e + ps.Template.q_fan;
          let g = grp_cursor.(l) in
          let ngr = Array.length ps.Template.q_grp_weight in
          grp_cursor.(l) <- g + ngr;
          seg_off.(s) <- e;
          seg_fan.(s) <- ps.Template.q_fan;
          seg_gates.(s) <- p;
          seg_grp.(s) <- g;
          for k = 0 to ngr - 1 do
            grp_off.(g + k) <- e + ps.Template.q_grp_start.(k);
            grp_weight.(g + k) <- ps.Template.q_grp_weight.(k)
          done;
          if ps.Template.q_count > !max_seg_gates then
            max_seg_gates := ps.Template.q_count;
          (if kernels then
             match ps.Template.q_kernel with
             | Kernel.Generic -> ()
             | spec ->
                 kern.(s) <- spec;
                 k_gates := !k_gates + ps.Template.q_count;
                 incr k_segs);
          src_ps.(s) <- ps;
          src_w0.(s) <- w0;
          src_slots.(s) <- slots)
        psegs)
    item_psegs;
  seg_gates.(nsegs) <- ng;
  seg_grp.(nsegs) <- ngroups;
  grp_off.(ngroups) <- nedges;
  (* Pass 2: resolve refs into the edge pools and blit thresholds —
     independent per segment, so it fans out across the domain pool. *)
  let fill_seg s =
    let ps = src_ps.(s) in
    let w0 = src_w0.(s) and slots = src_slots.(s) in
    let e = seg_off.(s) in
    let refs = ps.Template.q_refs in
    let weights = ps.Template.q_weights in
    for i = 0 to ps.Template.q_fan - 1 do
      let r = Array.unsafe_get refs i in
      bset pool_wires (e + i)
        (if r >= 0 then w0 + r else Array.unsafe_get slots (-r - 1));
      bset pool_weights (e + i) (Array.unsafe_get weights i)
    done;
    (* Kernel-grade CSR: sort each sizable weight group's edges by wire
       id.  Within a group every edge carries the same weight, so any
       order computes the same sums (checked evaluation simply follows
       the sorted order), and the truth-table kernels are invariant
       under permuting equal-weight positions.  The paper's wide shared
       layers gather thousands of scattered wires per segment; the
       batched fold is memory-latency-bound on those reads, and a
       monotone scan turns them into cache-line-coalesced sweeps. *)
    (if kernels then
       let gs = ps.Template.q_grp_start in
       let ngr = Array.length gs in
       for g = 0 to ngr - 1 do
         let a0 = e + gs.(g) in
         let a1 = if g + 1 < ngr then e + gs.(g + 1) else e + ps.Template.q_fan in
         let len = a1 - a0 in
         if len >= 16 then begin
           let tmp = Array.init len (fun i -> bget pool_wires (a0 + i)) in
           Array.sort (fun (x : int) y -> compare x y) tmp;
           for i = 0 to len - 1 do
             bset pool_wires (a0 + i) tmp.(i)
           done
         end
       done);
    let p = seg_gates.(s) in
    let th = ps.Template.q_th and thg = ps.Template.q_th_gate in
    for i = 0 to ps.Template.q_count - 1 do
      bset g_threshold (p + i) (Array.unsafe_get th i);
      bset g_wire (p + i) (w0 + Array.unsafe_get thg i)
    done
  in
  let run_fill pl =
    let nchunks = min (max nsegs 1) (8 * Pool.size pl) in
    Pool.run pl ~chunks:nchunks (fun i ->
        let a, b = chunk_bounds 0 nsegs nchunks i in
        for s = a to b - 1 do
          fill_seg s
        done)
  in
  (match pool with
  | Some p -> run_fill p
  | None ->
      if domains <= 1 then
        for s = 0 to nsegs - 1 do
          fill_seg s
        done
      else Pool.with_pool ~domains run_fill);
  {
    circuit =
      lazy
        (Circuit.make ~num_inputs ~gates:(gates_of_arena a)
           ~outputs:a.Builder.a_outputs);
    num_inputs;
    num_wires;
    num_gates = ng;
    levels;
    pool_wires;
    pool_weights;
    seg_off;
    seg_fan;
    seg_gates;
    seg_grp;
    grp_off;
    grp_weight;
    level_segs;
    g_threshold;
    g_wire;
    outputs = a.Builder.a_outputs;
    max_seg_gates = !max_seg_gates;
    kern;
    k_gates = !k_gates;
    k_segs = !k_segs;
    fanout = None;
  }

(* ------------------------------------------------------------------ *)
(* Single-vector evaluation                                           *)
(* ------------------------------------------------------------------ *)

(* Evaluate segments [lo, hi) against [values]; returns the number of
   gates fired.  Each segment computes its shared weighted sum once and
   fires the prefix of its (ascending) thresholds that the sum reaches. *)
let eval_segs ~check t values lo hi =
  let pw = t.pool_wires and pwt = t.pool_weights in
  let th = t.g_threshold and gw = t.g_wire in
  let fired = ref 0 in
  for s = lo to hi - 1 do
    let off = Array.unsafe_get t.seg_off s in
    let fan = Array.unsafe_get t.seg_fan s in
    let sum = ref 0 in
    if check then
      for i = off to off + fan - 1 do
        if Bytes.unsafe_get values (bget pw i) <> '\000' then
          sum := Checked.add !sum (bget pwt i)
      done
    else
      for i = off to off + fan - 1 do
        if Bytes.unsafe_get values (bget pw i) <> '\000' then
          sum := !sum + bget pwt i
      done;
    let s0 = !sum in
    let glo = Array.unsafe_get t.seg_gates s in
    let ghi = Array.unsafe_get t.seg_gates (s + 1) in
    let cut =
      if ghi - glo = 1 then if s0 >= bget th glo then ghi else glo
      else begin
        (* first index whose threshold exceeds the sum *)
        let a = ref glo and b = ref ghi in
        while !a < !b do
          let mid = (!a + !b) lsr 1 in
          if bget th mid <= s0 then a := mid + 1 else b := mid
        done;
        !a
      end
    in
    for g = glo to cut - 1 do
      Bytes.unsafe_set values (bget gw g) '\001'
    done;
    fired := !fired + (cut - glo)
  done;
  !fired

let run_seq_levels ~check t values level_firings =
  for l = 0 to t.levels - 1 do
    level_firings.(l) <-
      eval_segs ~check t values t.level_segs.(l) t.level_segs.(l + 1)
  done

let run_par_levels ~check t values level_firings pool =
  let size = Pool.size pool in
  for l = 0 to t.levels - 1 do
    let lo = t.level_segs.(l) and hi = t.level_segs.(l + 1) in
    let nseg = hi - lo in
    if nseg = 0 then level_firings.(l) <- 0
    else if size = 1 || nseg = 1 then
      level_firings.(l) <- eval_segs ~check t values lo hi
    else begin
      let nchunks = min nseg (4 * size) in
      let partial = Array.make nchunks 0 in
      Pool.run pool ~chunks:nchunks (fun i ->
          let a, b = chunk_bounds lo nseg nchunks i in
          partial.(i) <- eval_segs ~check t values a b);
      level_firings.(l) <- Array.fold_left ( + ) 0 partial
    end
  done

let prep_values t inputs =
  if Array.length inputs <> t.num_inputs then
    invalid_arg
      (Printf.sprintf "Packed.run: expected %d inputs, got %d" t.num_inputs
         (Array.length inputs));
  let values = Bytes.make t.num_wires '\000' in
  Array.iteri (fun i v -> if v then Bytes.unsafe_set values i '\001') inputs;
  values

let run ?(check = false) ?pool ?(domains = 1) t inputs =
  let values = prep_values t inputs in
  let level_firings = Array.make t.levels 0 in
  (match pool with
  | Some p -> run_par_levels ~check t values level_firings p
  | None ->
      if domains <= 1 then run_seq_levels ~check t values level_firings
      else
        Pool.with_pool ~domains (fun p ->
            run_par_levels ~check t values level_firings p));
  let outputs =
    Array.map (fun w -> Bytes.unsafe_get values w <> '\000') t.outputs
  in
  {
    Simulator.values;
    outputs;
    firings = Array.fold_left ( + ) 0 level_firings;
    level_firings;
  }

(* ------------------------------------------------------------------ *)
(* Incremental (dirty-cone) evaluation                                *)
(* ------------------------------------------------------------------ *)

(* Streaming workloads (edge flips on a held graph) change a handful of
   input bits between evaluations.  A [session] keeps the whole wire
   state of the last evaluation plus per-segment cached sums and firing
   cuts; [update] walks the transposed CSR from the flipped wires and
   re-decides only the segments whose inputs actually changed, level by
   level.  The cone collapses as soon as a level's firing set is
   unchanged — no segment downstream is ever touched (the Crossbow
   incremental-instantiation idiom: extend the live instance, never
   rebuild). *)

let fanout_index t =
  match t.fanout with
  | Some f -> f
  | None ->
      let nedges = pool_edges t in
      let nw = t.num_wires in
      let off = ba_create (nw + 1) in
      Bigarray.Array1.fill off 0;
      for e = 0 to nedges - 1 do
        let w = bget t.pool_wires e in
        bset off (w + 1) (bget off (w + 1) + 1)
      done;
      for w = 1 to nw do
        bset off w (bget off w + bget off (w - 1))
      done;
      (* Owning segment of each pool slot, linear in pool order: the
         last segment whose edge range starts at or before the slot
         (empty segments share their successor's offset and sit before
         it, so advancing while the next offset fits picks the real
         owner). *)
      let nsegs = Array.length t.seg_off in
      let slot_seg = ba_create nedges in
      let s = ref 0 in
      for e = 0 to nedges - 1 do
        while !s + 1 < nsegs && Array.unsafe_get t.seg_off (!s + 1) <= e do
          incr s
        done;
        bset slot_seg e !s
      done;
      let seg = ba_create nedges in
      let wgt = ba_create nedges in
      let cur = ba_create (nw + 1) in
      Bigarray.Array1.blit off cur;
      for e = 0 to nedges - 1 do
        let w = bget t.pool_wires e in
        let c = bget cur w in
        bset seg c (bget slot_seg e);
        bset wgt c (bget t.pool_weights e);
        bset cur w (c + 1)
      done;
      let f = { fan_off = off; fan_seg = seg; fan_weight = wgt } in
      t.fanout <- Some f;
      f

let seg_sum ~check t values s =
  let off = Array.unsafe_get t.seg_off s in
  let fan = Array.unsafe_get t.seg_fan s in
  let sum = ref 0 in
  if check then
    for i = off to off + fan - 1 do
      if Bytes.unsafe_get values (bget t.pool_wires i) <> '\000' then
        sum := Checked.add !sum (bget t.pool_weights i)
    done
  else
    for i = off to off + fan - 1 do
      if Bytes.unsafe_get values (bget t.pool_wires i) <> '\000' then
        sum := !sum + bget t.pool_weights i
    done;
  !sum

(* Firing-prefix length within gate range [glo, ghi) under weighted sum
   [sum] (thresholds ascend within a segment). *)
let seg_cut t ~glo ~ghi sum =
  let a = ref glo and b = ref ghi in
  while !a < !b do
    let mid = (!a + !b) lsr 1 in
    if bget t.g_threshold mid <= sum then a := mid + 1 else b := mid
  done;
  !a - glo

(* Per-segment session state, interleaved 4 ints (32 bytes) per segment
   so that touching a segment in the hot flip path costs at most one
   cache line, not one miss per parallel array (the scattered layout
   dominated update latency before this):
     base+0  cached weighted sum
     base+1  bracket low   — the cut is unchanged while lo <= sum
     base+2  bracket high  — ... and sum < hi
     base+3  level lsl 1 lor queued-dirty bit for the in-flight update
   The firing-prefix length (cut) is only read by the sweep — two
   orders of magnitude fewer touches than the flip path — and lives in
   a side array to keep the hot stride at a half line. *)
type session = {
  ss_t : t;
  ss_check : bool;
  ss_values : Bytes.t;  (* last-known value of every wire *)
  ss_st : ivec;  (* 4 * num_segments, layout above *)
  ss_cut : int array;  (* per segment: firing-prefix length *)
  ss_lf : int array;  (* per level: cached firing count *)
  ss_queue : Intvec.t array;  (* per level: queued dirty segment ids *)
  ss_out : ivec;  (* scratch: crossing segment ids from the C touch loop *)
  ss_wires : ivec;  (* scratch: staged wire flips, wire lsl 1 lor value *)
  mutable ss_nwires : int;  (* staged flips pending a flush *)
  mutable ss_updates : int;
  mutable ss_flips : int;
  mutable ss_dirty_segs : int;
  mutable ss_dirty_gates : int;
}

(* The per-edge delta loop lives in C (session_stubs.c) so it can issue
   software prefetches for the random state-array lines; the box this
   targets is latency-bound on exactly that access.  Wire flips are
   staged into [ss_wires] (values bytes written eagerly so duplicate
   delta entries still cancel) and flushed a level at a time, giving
   the stub enough edges in one call to keep many misses in flight.
   The stub appends bracket-crossing segment ids to [ss_out]; the
   level-queue distribution stays here.  No allocation, no callbacks,
   no exceptions on the C side. *)
external session_touch_many_stub :
  ivec -> ivec -> ivec -> ivec -> ivec -> int -> ivec -> int
  = "tcmm_session_touch_many_byte" "tcmm_session_touch_many"
[@@noalloc]

(* The cut is unchanged exactly while the sum stays inside
   [thr(glo + cut - 1), thr(glo + cut)) — refresh after any cut move.
   The open ends use integer sentinels a real sum never escapes. *)
let set_bracket t st base ~glo ~ghi cut =
  bset st (base + 1)
    (if cut = 0 then min_int else bget t.g_threshold (glo + cut - 1));
  bset st (base + 2)
    (if glo + cut >= ghi then max_int else bget t.g_threshold (glo + cut))

let session ?(check = false) t inputs =
  let values = prep_values t inputs in
  ignore (fanout_index t : fanout);
  let nsegs = Array.length t.seg_off in
  let st = ba_create (4 * max nsegs 1) in
  Bigarray.Array1.fill st 0;
  let ss_cut = Array.make (max nsegs 1) 0 in
  let ss_lf = Array.make t.levels 0 in
  for l = 0 to t.levels - 1 do
    let fired = ref 0 in
    for s = t.level_segs.(l) to t.level_segs.(l + 1) - 1 do
      let glo = t.seg_gates.(s) and ghi = t.seg_gates.(s + 1) in
      let sum = seg_sum ~check t values s in
      let cut = seg_cut t ~glo ~ghi sum in
      let base = s lsl 2 in
      bset st (base + 0) sum;
      bset st (base + 3) (l lsl 1);
      set_bracket t st base ~glo ~ghi cut;
      ss_cut.(s) <- cut;
      for g = glo to glo + cut - 1 do
        Bytes.unsafe_set values (bget t.g_wire g) '\001'
      done;
      fired := !fired + cut
    done;
    ss_lf.(l) <- !fired
  done;
  {
    ss_t = t;
    ss_check = check;
    ss_values = values;
    ss_st = st;
    ss_cut;
    ss_lf;
    ss_queue = Array.init (max t.levels 1) (fun _ -> Intvec.create ());
    ss_out = ba_create (max nsegs 1);
    ss_wires = ba_create (max (Bytes.length values) 1);
    ss_nwires = 0;
    ss_updates = 0;
    ss_flips = 0;
    ss_dirty_segs = 0;
    ss_dirty_gates = 0;
  }

let session_result ss =
  let t = ss.ss_t in
  {
    Simulator.values = ss.ss_values;
    outputs =
      Array.map (fun w -> Bytes.unsafe_get ss.ss_values w <> '\000') t.outputs;
    firings = Array.fold_left ( + ) 0 ss.ss_lf;
    level_firings = Array.copy ss.ss_lf;
  }

let session_inputs ss =
  Array.init ss.ss_t.num_inputs (fun i ->
      Bytes.unsafe_get ss.ss_values i <> '\000')

(* Flip wire [w] to [v]: delta-adjust every segment reading it through
   the transposed index, and queue only the segments whose sum left its
   firing-cut bracket — a segment whose cut cannot have moved is never
   swept at all.  Readers sit at strictly later levels than the writer
   (depths increase along edges), so a flip raised while level [l] is
   swept only ever queues levels > l.  Checked sessions skip the delta
   bookkeeping and queue every reader: their dirty segments are
   recomputed from the pool during the sweep, keeping overflow
   behaviour identical to a from-scratch checked run. *)
let touch_wire ss f w v =
  Bytes.unsafe_set ss.ss_values w (if v then '\001' else '\000');
  if ss.ss_check then begin
    let st = ss.ss_st in
    let queue = ss.ss_queue in
    let lo = bget f.fan_off w and hi = bget f.fan_off (w + 1) in
    for i = lo to hi - 1 do
      let s = bget f.fan_seg i in
      let base = s lsl 2 in
      let lvd = bget st (base + 3) in
      if lvd land 1 = 0 then begin
        bset st (base + 3) (lvd lor 1);
        Intvec.push (Array.unsafe_get queue (lvd lsr 1)) s
      end
    done
  end
  else begin
    let n = ss.ss_nwires in
    bset ss.ss_wires n ((w lsl 1) lor Bool.to_int v);
    ss.ss_nwires <- n + 1
  end

(* Run the staged wire flips through the C touch loop and queue the
   bracket-crossing segments by level.  A wire is staged at most once
   between flushes: delta entries are deduplicated against the value
   bytes, and within one level sweep each gate wire changes at most
   once. *)
let flush_touches ss f =
  let n = ss.ss_nwires in
  if n > 0 then begin
    ss.ss_nwires <- 0;
    let st = ss.ss_st in
    let queue = ss.ss_queue in
    let out = ss.ss_out in
    let m =
      session_touch_many_stub st f.fan_off f.fan_seg f.fan_weight ss.ss_wires n
        out
    in
    for k = 0 to m - 1 do
      let s = bget out k in
      let lvd = bget st ((s lsl 2) + 3) in
      Intvec.push (Array.unsafe_get queue (lvd lsr 1)) s
    done
  end

let update ss delta =
  let t = ss.ss_t in
  let f = fanout_index t in
  ss.ss_updates <- ss.ss_updates + 1;
  Array.iter
    (fun (i, v) ->
      if i < 0 || i >= t.num_inputs then
        invalid_arg
          (Printf.sprintf "Packed.update: wire %d is not an input (inputs: %d)"
             i t.num_inputs);
      if Bytes.unsafe_get ss.ss_values i <> '\000' <> v then begin
        ss.ss_flips <- ss.ss_flips + 1;
        touch_wire ss f i v
      end)
    delta;
  flush_touches ss f;
  (* Sweep the queued segments level by level.  Only segments whose sum
     crossed a threshold are ever queued, so the sweep re-decides the
     cut, patches the level firing count, and propagates the changed
     gate wires; when no level queues anything further the cone has
     collapsed — the early exit is structural, not a test. *)
  let st = ss.ss_st in
  for l = 0 to t.levels - 1 do
    let q = ss.ss_queue.(l) in
    let n = Intvec.length q in
    if n > 0 then begin
      ss.ss_dirty_segs <- ss.ss_dirty_segs + n;
      for k = 0 to n - 1 do
        let s = Intvec.get q k in
        let base = s lsl 2 in
        bset st (base + 3) (bget st (base + 3) land lnot 1);
        let glo = Array.unsafe_get t.seg_gates s in
        let ghi = Array.unsafe_get t.seg_gates (s + 1) in
        ss.ss_dirty_gates <- ss.ss_dirty_gates + ghi - glo;
        let sum =
          if ss.ss_check then begin
            let sum = seg_sum ~check:true t ss.ss_values s in
            bset st (base + 0) sum;
            sum
          end
          else bget st (base + 0)
        in
        let cut = seg_cut t ~glo ~ghi sum in
        let old = Array.unsafe_get ss.ss_cut s in
        if cut <> old then begin
          Array.unsafe_set ss.ss_cut s cut;
          set_bracket t st base ~glo ~ghi cut;
          ss.ss_lf.(l) <- ss.ss_lf.(l) + cut - old;
          if cut > old then
            for g = glo + old to glo + cut - 1 do
              touch_wire ss f (bget t.g_wire g) true
            done
          else
            for g = glo + cut to glo + old - 1 do
              touch_wire ss f (bget t.g_wire g) false
            done
        end
      done;
      Intvec.clear q;
      flush_touches ss f
    end
  done;
  session_result ss

type session_stats = {
  su_updates : int;
  su_flips : int;
  su_dirty_segments : int;
  su_dirty_gates : int;
  su_segments : int;
  su_gates : int;
}

let session_stats ss =
  {
    su_updates = ss.ss_updates;
    su_flips = ss.ss_flips;
    su_dirty_segments = ss.ss_dirty_segs;
    su_dirty_gates = ss.ss_dirty_gates;
    su_segments = Array.length ss.ss_t.seg_off;
    su_gates = ss.ss_t.num_gates;
  }

(* ------------------------------------------------------------------ *)
(* Batched evaluation                                                 *)
(* ------------------------------------------------------------------ *)

(* Lanes are packed into the low [word_lanes] bits of a native int (62
   keeps every word nonnegative, so isolated bits stay in 1 lsl 0..61).
   One traversal of the circuit metadata evaluates the whole batch:
   wire values are stored wire-major ([vals.(wire * wordc + word)]), so
   each segment reads its metadata once and sweeps the words of each
   edge contiguously. *)
let word_lanes = Kernel.word_lanes

(* de Bruijn-style bit indexing (see [Kernel]): a single multiply maps
   an isolated bit to a 7-bit hash slot — no division in the innermost
   batched loop.  [ctz_table] decodes a slot back to its lane;
   [lane_slot] is the inverse (lane -> slot), letting the per-lane
   accumulators live directly at their hash slots so the accumulate loop
   needs no decode at all. *)
let ctz_mul = Kernel.ctz_mul
let ctz_slots = Kernel.ctz_slots
let ctz_table = Kernel.ctz_table
let lane_slot = Kernel.lane_slot
let full_word = (1 lsl word_lanes) - 1

type batch_result = {
  b_lanes : int;
  b_wordc : int;
  b_vals : int array;  (* wire-major: vals.(wire * wordc + word) *)
  b_outputs : bool array array;
  b_firings : int array;
  b_level_firings : int array array;
}

(* Below this group size the carry-save ladder's fixed costs (zeroing
   and unslicing the counters) outweigh the per-set-bit adds it saves. *)
let csa_cutoff = 16

(* Counter words for the carry-save popcount: counts fit in
   [log2 max_fan] bits; 62 is a safe ceiling (group sizes are < 2^62). *)
let csa_bits = 62

(* Per-evaluator scratch, allocated once per [run_batch] (per chunk
   slot under a pool) and reused across every level — the level loop
   itself is allocation-free.  The [wordc]-scaled areas are sliced per
   lane word ([wd * ctz_slots], [wd * csa_bits]); [sc_cnt] is kept
   all-zero between segments (both writers re-zero exactly the slots
   they rippled into). *)
type scratch = {
  sc_accs : int array;  (* wordc * ctz_slots: per-lane sums by hash slot *)
  sc_cnt : int array;  (* wordc * csa_bits: bit-sliced per-lane counters *)
  sc_maxj : int array;  (* wordc: counter bits in use per word *)
  sc_gate_out : int array;  (* max_seg_gates: per-gate firing words *)
  sc_bucket : int array;
      (* max_seg_gates + 1: lanes bucketed by firing-prefix length;
         kept all-zero between segments *)
  sc_mt : int array;  (* 2^tt_max_fan: minterm tree *)
  sc_ew : int array;  (* tt_max_fan: edge input words *)
  sc_ewi : int array;  (* tt_max_fan: edge value-row offsets *)
  sc_gv : int array;
      (* max_seg_fan * wordc: gathered edge value words.  The carry-save
         kernels gather a group's scattered wire rows here in a pure
         load/store pass — no arithmetic between the loads, so the
         out-of-order window keeps tens of cache misses in flight —
         then fold the contiguous copy. *)
  sc_ms : int array;
      (* wordc * csa_bits: bit-sliced master accumulator of the
         carry-save kernels (plane j = bit j of every lane's biased
         segment sum); kept all-zero between segments *)
}

let make_scratch t ~wordc =
  let max_fan = Array.fold_left max 1 t.seg_fan in
  {
    sc_accs = Array.make (wordc * ctz_slots) 0;
    sc_cnt = Array.make (wordc * csa_bits) 0;
    sc_maxj = Array.make wordc 0;
    sc_gate_out = Array.make (max t.max_seg_gates 1) 0;
    sc_bucket = Array.make (t.max_seg_gates + 1) 0;
    sc_mt = Array.make (1 lsl Kernel.tt_max_fan) 0;
    sc_ew = Array.make Kernel.tt_max_fan 0;
    sc_ewi = Array.make Kernel.tt_max_fan 0;
    sc_gv = Array.make (max_fan * wordc) 0;
    sc_ms = Array.make (wordc * csa_bits) 0;
  }

(* Evaluate segments [lo, hi) for every lane word in one metadata
   traversal, adding per-lane firing counts into [fires] (length
   [lanes], indexed by global lane = word * 62 + bit).  Dead lanes of
   the last word hold 0 on every wire: inputs are only packed for real
   lanes, and every gate write below is masked to the word's active
   lanes — so set-bit iteration never visits them. *)
let eval_batch_segs ~check t sc vals ~wordc ~lanes ~fires lo hi =
  let pw = t.pool_wires and pwt = t.pool_weights in
  let th = t.g_threshold and gw = t.g_wire in
  let ctz = ctz_table and ls = lane_slot in
  let accs = sc.sc_accs and cnt = sc.sc_cnt and maxjs = sc.sc_maxj in
  let gate_out = sc.sc_gate_out in
  let kern = t.kern in
  let have_kern = (not check) && Array.length kern <> 0 in
  (* Branchless carry-save fold of edges [e0, e1) into the bit-sliced
     counters, [w] levels deep ([w >= bits_for (e1 - e0)], so the carry
     out of the top level is always zero).  Edges are consumed in
     pairs: a 3:2 compressor at level 0, then a fixed-depth ripple.
     The fixed trip count is the point — the generic path's
     data-dependent early-out mispredicts on nearly every edge, and
     each flush discards the speculative gather loads; this form keeps
     the loads streaming. *)
  let gv = sc.sc_gv in
  let fold_group ~neg e0 e1 w =
    let len = e1 - e0 in
    (* [neg] complements every word on the way in — a negative-weight
       group counts zeros (see the carry-save branch below); the
       garbage this plants in dead lane positions never crosses lanes
       in the bit-sliced arithmetic and is masked off before any
       output is written.

       Single-word batches read [vals] straight through the wire
       indices inside the ladder (its 16 loads per chunk are mutually
       independent, so the misses overlap).  Multi-word batches first
       gather each edge's row into contiguous scratch so the per-word
       passes below stream it. *)
    let nmask = if neg then -1 else 0 in
    (if wordc > 1 then
       for i = 0 to len - 1 do
         let wb = bget pw (e0 + i) * wordc in
         for wd = 0 to wordc - 1 do
           Array.unsafe_set gv ((i * wordc) + wd)
             (Array.unsafe_get vals (wb + wd) lxor nmask)
         done
       done);
    (* Compute pass: a Harley-Seal carry-save ladder.  Running
       [ones]/[twos]/[fours]/[eights] registers absorb the stream two
       words at a time (15 compressors per 16 edges, all in
       registers), and only the one sixteens-carry per chunk — zero
       for most chunks on ~8%-ones wires — touches the counter array.
       That is ~5 word ops per edge where the naive pairwise ripple
       pays ~4(w-1); every compressor conserves the summed count, and
       the group total stays below [2^w], so no carry ever leaves the
       top level and the counts are exact. *)
    for wd = 0 to wordc - 1 do
      let cb = wd * csa_bits in
      (* Ripple [x] into counter levels [l0, w). *)
      let[@inline always] insert x l0 =
        if x <> 0 then begin
          let carry = ref x in
          for j = l0 to w - 1 do
            let c = Array.unsafe_get cnt (cb + j) in
            Array.unsafe_set cnt (cb + j) (c lxor !carry);
            carry := c land !carry
          done
        end
      in
      let direct = wordc = 1 in
      let i = ref 0 in
      if len >= 16 then begin
        (* len >= 16 forces w = bits_for len >= 5, so the
           sixteens-carry always has a level to land on. *)
        let ones = ref 0 and twos = ref 0 in
        let fours = ref 0 and eights = ref 0 in
        while !i + 16 <= len do
          let b = (!i * wordc) + wd in
          let i0 = e0 + !i in
          let[@inline always] g k =
            if direct then
              Array.unsafe_get vals (bget pw (i0 + k)) lxor nmask
            else Array.unsafe_get gv (b + (k * wordc))
          in
          let x0 = g 0 and x1 = g 1 in
          let u = !ones lxor x0 in
          let t2a = (!ones land x0) lor (u land x1) in
          ones := u lxor x1;
          let x2 = g 2 and x3 = g 3 in
          let u = !ones lxor x2 in
          let t2b = (!ones land x2) lor (u land x3) in
          ones := u lxor x3;
          let u = !twos lxor t2a in
          let f4a = (!twos land t2a) lor (u land t2b) in
          twos := u lxor t2b;
          let x4 = g 4 and x5 = g 5 in
          let u = !ones lxor x4 in
          let t2a = (!ones land x4) lor (u land x5) in
          ones := u lxor x5;
          let x6 = g 6 and x7 = g 7 in
          let u = !ones lxor x6 in
          let t2b = (!ones land x6) lor (u land x7) in
          ones := u lxor x7;
          let u = !twos lxor t2a in
          let f4b = (!twos land t2a) lor (u land t2b) in
          twos := u lxor t2b;
          let u = !fours lxor f4a in
          let e8a = (!fours land f4a) lor (u land f4b) in
          fours := u lxor f4b;
          let x8 = g 8 and x9 = g 9 in
          let u = !ones lxor x8 in
          let t2a = (!ones land x8) lor (u land x9) in
          ones := u lxor x9;
          let x10 = g 10 and x11 = g 11 in
          let u = !ones lxor x10 in
          let t2b = (!ones land x10) lor (u land x11) in
          ones := u lxor x11;
          let u = !twos lxor t2a in
          let f4a = (!twos land t2a) lor (u land t2b) in
          twos := u lxor t2b;
          let x12 = g 12 and x13 = g 13 in
          let u = !ones lxor x12 in
          let t2a = (!ones land x12) lor (u land x13) in
          ones := u lxor x13;
          let x14 = g 14 and x15 = g 15 in
          let u = !ones lxor x14 in
          let t2b = (!ones land x14) lor (u land x15) in
          ones := u lxor x15;
          let u = !twos lxor t2a in
          let f4b = (!twos land t2a) lor (u land t2b) in
          twos := u lxor t2b;
          let u = !fours lxor f4a in
          let e8b = (!fours land f4a) lor (u land f4b) in
          fours := u lxor f4b;
          let u = !eights lxor e8a in
          let s16 = (!eights land e8a) lor (u land e8b) in
          eights := u lxor e8b;
          insert s16 4;
          i := !i + 16
        done;
        insert !ones 0;
        insert !twos 1;
        insert !fours 2;
        insert !eights 3
      end;
      while !i < len do
        insert
          (if direct then
             Array.unsafe_get vals (bget pw (e0 + !i)) lxor nmask
           else Array.unsafe_get gv ((!i * wordc) + wd))
          0;
        incr i
      done
    done
  in
  for s = lo to hi - 1 do
    let glo = Array.unsafe_get t.seg_gates s in
    let ghi = Array.unsafe_get t.seg_gates (s + 1) in
    let k = ghi - glo in
    let spec = if have_kern then Array.unsafe_get kern s else Kernel.Generic in
    match spec with
    | Kernel.Tt { k_fan; k_tt } ->
        (* Truth-table kernel: shared minterm tree per word, baked
           firing sets per gate — no accumulators at all. *)
        let off = Array.unsafe_get t.seg_off s in
        let ew = sc.sc_ew and ewi = sc.sc_ewi and mt = sc.sc_mt in
        for i = 0 to k_fan - 1 do
          Array.unsafe_set ewi i (bget pw (off + i) * wordc)
        done;
        for wd = 0 to wordc - 1 do
          let base = wd * word_lanes in
          let w_lanes = lanes - base in
          let full =
            if w_lanes >= word_lanes then full_word else (1 lsl w_lanes) - 1
          in
          for i = 0 to k_fan - 1 do
            Array.unsafe_set ew i
              (Array.unsafe_get vals (Array.unsafe_get ewi i + wd))
          done;
          Kernel.eval_tt ~mt ~fan:k_fan ~tt:k_tt ~count:k ~full ~ew
            ~out:gate_out;
          (* Ascending thresholds nest the firing words
             ([gate_out.(j)] contains [gate_out.(j+1)]), so each lane's
             firing count is its prefix length: walk top-down and
             charge [j + 1] to the lanes whose prefix ends exactly
             there — one set-bit visit per firing lane instead of one
             per firing gate. *)
          let prev = ref 0 in
          for j = k - 1 downto 0 do
            let out = Array.unsafe_get gate_out j in
            if out <> 0 then begin
              Array.unsafe_set vals (bget gw (glo + j) * wordc + wd) out;
              let m = ref (out land lnot !prev) in
              while !m <> 0 do
                let b = !m land (- !m) in
                let l = Array.unsafe_get ctz ((b * ctz_mul) lsr 56) in
                Array.unsafe_set fires (base + l)
                  (Array.unsafe_get fires (base + l) + j + 1);
                m := !m lxor b
              done;
              prev := out
            end
          done
        done
    | Kernel.Pop { k_bits; k_cmp; k_c } ->
        (* Popcount kernel: carry-save fold of the (single-weight)
           segment into bit-sliced counters, then one MSB-first compare
           per gate per word against the baked count bound.  Bounds are
           monotone in the (ascending) thresholds, so the first empty
           gate word ends the word's prefix. *)
        let off = Array.unsafe_get t.seg_off s in
        let fan = Array.unsafe_get t.seg_fan s in
        fold_group ~neg:false off (off + fan) k_bits;
        for wd = 0 to wordc - 1 do
          let base = wd * word_lanes in
          let w_lanes = lanes - base in
          let full =
            if w_lanes >= word_lanes then full_word else (1 lsl w_lanes) - 1
          in
          let cb = wd * csa_bits in
          (* Monotone bounds nest the firing words, so charge each
             lane its prefix length once: lanes leaving the prefix at
             gate [j] get [j], and whatever survives the loop gets the
             final prefix length. *)
          let j = ref 0 in
          let go = ref true in
          let prev = ref 0 in
          while !go && !j < k do
            let c = Array.unsafe_get k_c !j in
            let out =
              match k_cmp with
              | Kernel.Ge -> Kernel.cmp_ge cnt ~base:cb ~bits:k_bits ~c ~full
              | Kernel.Le -> Kernel.cmp_le cnt ~base:cb ~bits:k_bits ~c ~full
            in
            if out = 0 then go := false
            else begin
              Array.unsafe_set vals (bget gw (glo + !j) * wordc + wd) out;
              let m = ref (!prev land lnot out) in
              while !m <> 0 do
                let b = !m land (- !m) in
                let l = Array.unsafe_get ctz ((b * ctz_mul) lsr 56) in
                Array.unsafe_set fires (base + l)
                  (Array.unsafe_get fires (base + l) + !j);
                m := !m lxor b
              done;
              prev := out;
              incr j
            end
          done;
          let m = ref !prev in
          while !m <> 0 do
            let b = !m land (- !m) in
            let l = Array.unsafe_get ctz ((b * ctz_mul) lsr 56) in
            Array.unsafe_set fires (base + l)
              (Array.unsafe_get fires (base + l) + !j);
            m := !m lxor b
          done;
          for j = 0 to k_bits - 1 do
            Array.unsafe_set cnt (cb + j) 0
          done
        done;
    | Kernel.Csa { k_widths; k_mbits; k_bth } ->
        (* Carry-save kernel: fully bit-sliced.  Each weight group's
           per-lane count is folded branchlessly (fixed depth baked in
           [k_widths]), then shift-added into the bit-sliced master
           accumulator — one ripple add per set bit of [|weight|]; a
           negative group folds complemented inputs (counting zeros),
           which the compile-time threshold bias accounts for.  No
           per-lane accumulators are ever touched: thresholding reads
           the master planes directly.  Counts and biased sums are
           exact (every compressor conserves them and the master is
           bounded by the baked span), so outputs match the generic
           path bit for bit. *)
        let ms = sc.sc_ms in
        let g0 = Array.unsafe_get t.seg_grp s in
        let g1 = Array.unsafe_get t.seg_grp (s + 1) in
        for g = g0 to g1 - 1 do
          let e0 = Array.unsafe_get t.grp_off g in
          let e1 = Array.unsafe_get t.grp_off (g + 1) in
          let wt = Array.unsafe_get t.grp_weight g in
          let w = Array.unsafe_get k_widths (g - g0) in
          fold_group ~neg:(wt < 0) e0 e1 w;
          (* master += count << sh, for each set bit sh of |wt|; the
             counters are read, not consumed, so multi-bit magnitudes
             just add again at their next shift. *)
          let a = ref (abs wt) in
          while !a <> 0 do
            let b = !a land (- !a) in
            let sh = Array.unsafe_get ctz ((b * ctz_mul) lsr 56) in
            for wd = 0 to wordc - 1 do
              let cb = wd * csa_bits in
              let carry = ref 0 in
              for j = 0 to w - 1 do
                let x = Array.unsafe_get cnt (cb + j) in
                let m = Array.unsafe_get ms (cb + sh + j) in
                let u = m lxor x in
                Array.unsafe_set ms (cb + sh + j) (u lxor !carry);
                carry := (m land x) lor (u land !carry)
              done;
              let j = ref (sh + w) in
              while !carry <> 0 && !j < k_mbits do
                let m = Array.unsafe_get ms (cb + !j) in
                Array.unsafe_set ms (cb + !j) (m lxor !carry);
                carry := m land !carry;
                incr j
              done
            done;
            a := !a land (!a - 1)
          done;
          for wd = 0 to wordc - 1 do
            let cb = wd * csa_bits in
            for j = 0 to w - 1 do
              Array.unsafe_set cnt (cb + j) 0
            done
          done
        done;
        (* Biased-threshold phase straight off the master planes. *)
        for wd = 0 to wordc - 1 do
          let base = wd * word_lanes in
          let w_lanes = lanes - base in
          let full =
            if w_lanes >= word_lanes then full_word else (1 lsl w_lanes) - 1
          in
          let mb = wd * csa_bits in
          let live =
            Kernel.cmp_ge ms ~base:mb ~bits:k_mbits
              ~c:(Array.unsafe_get k_bth 0) ~full
          in
          if live <> 0 then
            if k = 1 then begin
              Array.unsafe_set vals (bget gw glo * wordc + wd) live;
              let m = ref live in
              while !m <> 0 do
                let b = !m land (- !m) in
                let l = Array.unsafe_get ctz ((b * ctz_mul) lsr 56) in
                Array.unsafe_set fires (base + l)
                  (Array.unsafe_get fires (base + l) + 1);
                m := !m lxor b
              done
            end
            else begin
              (* Ascending biased thresholds nest the firing words, so
                 evaluate gates in threshold order — one bit-sliced
                 compare each, all lanes at once — and stop at the
                 first empty word.  The average firing prefix is a
                 small fraction of [k] on the paper's circuits, which
                 beats extracting every live lane's sum from the
                 planes.  Lanes leaving the prefix at gate [j] fired
                 exactly [j] gates; survivors are charged the final
                 prefix length (same accounting as the Pop branch). *)
              Array.unsafe_set vals (bget gw glo * wordc + wd) live;
              let j = ref 1 in
              let prev = ref live in
              let go = ref true in
              while !go && !j < k do
                let out =
                  Kernel.cmp_ge ms ~base:mb ~bits:k_mbits
                    ~c:(Array.unsafe_get k_bth !j) ~full
                in
                if out = 0 then go := false
                else begin
                  Array.unsafe_set vals (bget gw (glo + !j) * wordc + wd) out;
                  let m = ref (!prev land lnot out) in
                  while !m <> 0 do
                    let b = !m land (- !m) in
                    let l = Array.unsafe_get ctz ((b * ctz_mul) lsr 56) in
                    Array.unsafe_set fires (base + l)
                      (Array.unsafe_get fires (base + l) + !j);
                    m := !m lxor b
                  done;
                  prev := out;
                  incr j
                end
              done;
              let m = ref !prev in
              while !m <> 0 do
                let b = !m land (- !m) in
                let l = Array.unsafe_get ctz ((b * ctz_mul) lsr 56) in
                Array.unsafe_set fires (base + l)
                  (Array.unsafe_get fires (base + l) + !j);
                m := !m lxor b
              done
            end;
          for j = 0 to k_mbits - 1 do
            Array.unsafe_set ms (mb + j) 0
          done
        done
    | Kernel.Generic ->
        Array.fill accs 0 (wordc * ctz_slots) 0;
        (* Per-lane accumulators, addressed by hash slot: one metadata
           read per edge, then only the lanes whose wire is 1 pay an add
           (firing is sparse on the paper's circuits, so iterating set
           bits beats a dense lane loop). *)
        (if check then begin
           (* Checked mode stays on the straightforward per-edge loop so
              the running per-lane sums follow pool order exactly. *)
           let off = Array.unsafe_get t.seg_off s in
           let fan = Array.unsafe_get t.seg_fan s in
           for i = off to off + fan - 1 do
             let wb = bget pw i * wordc in
             let wt = bget pwt i in
             for wd = 0 to wordc - 1 do
               let m = ref (Array.unsafe_get vals (wb + wd)) in
               if !m <> 0 then begin
                 let ab = wd * ctz_slots in
                 while !m <> 0 do
                   let b = !m land (- !m) in
                   let sl = ab + ((b * ctz_mul) lsr 56) in
                   Array.unsafe_set accs sl
                     (Checked.add (Array.unsafe_get accs sl) wt);
                   m := !m lxor b
                 done
               end
             done
           done
         end
         else begin
           (* Edges come grouped by weight.  Large groups (the paper's
              wide shared layers have fan-in in the hundreds but only a
              few distinct weights) use a carry-save ladder: per edge,
              one xor/and ripple folds the wire word into bit-sliced
              per-lane counters for all 62 lanes at once; the counters
              are unsliced once per group via [acc += (wt lsl j)] per
              set counter bit.  Wrap-around arithmetic agrees
              bit-for-bit with per-edge adds (sums are computed mod 2^63
              either way).  Small groups keep the direct per-set-bit
              adds. *)
           let g0 = Array.unsafe_get t.seg_grp s in
           let g1 = Array.unsafe_get t.seg_grp (s + 1) in
           for g = g0 to g1 - 1 do
             let e0 = Array.unsafe_get t.grp_off g in
             let e1 = Array.unsafe_get t.grp_off (g + 1) in
             let wt = Array.unsafe_get t.grp_weight g in
             if e1 - e0 >= csa_cutoff then begin
               Array.fill maxjs 0 wordc 0;
               for i = e0 to e1 - 1 do
                 let wb = bget pw i * wordc in
                 for wd = 0 to wordc - 1 do
                   let x = ref (Array.unsafe_get vals (wb + wd)) in
                   if !x <> 0 then begin
                     let cb = wd * csa_bits in
                     let j = ref 0 in
                     while !x <> 0 do
                       let c = Array.unsafe_get cnt (cb + !j) in
                       Array.unsafe_set cnt (cb + !j) (c lxor !x);
                       x := c land !x;
                       incr j
                     done;
                     if !j > Array.unsafe_get maxjs wd then
                       Array.unsafe_set maxjs wd !j
                   end
                 done
               done;
               for wd = 0 to wordc - 1 do
                 let cb = wd * csa_bits and ab = wd * ctz_slots in
                 for j = 0 to Array.unsafe_get maxjs wd - 1 do
                   let m = ref (Array.unsafe_get cnt (cb + j)) in
                   Array.unsafe_set cnt (cb + j) 0;
                   let wj = wt lsl j in
                   while !m <> 0 do
                     let b = !m land (- !m) in
                     let sl = ab + ((b * ctz_mul) lsr 56) in
                     Array.unsafe_set accs sl (Array.unsafe_get accs sl + wj);
                     m := !m lxor b
                   done
                 done
               done
             end
             else begin
               for i = e0 to e1 - 1 do
                 let wb = bget pw i * wordc in
                 for wd = 0 to wordc - 1 do
                   let m = ref (Array.unsafe_get vals (wb + wd)) in
                   if !m <> 0 then begin
                     let ab = wd * ctz_slots in
                     while !m <> 0 do
                       let b = !m land (- !m) in
                       let sl = ab + ((b * ctz_mul) lsr 56) in
                       Array.unsafe_set accs sl (Array.unsafe_get accs sl + wt);
                       m := !m lxor b
                     done
                   end
                 done
               done
             end
           done
         end);
        for wd = 0 to wordc - 1 do
          let base = wd * word_lanes in
          let w_lanes = min word_lanes (lanes - base) in
          let ab = wd * ctz_slots in
          if k = 1 then begin
            let t0 = bget th glo in
            let out = ref 0 in
            for l = 0 to w_lanes - 1 do
              if Array.unsafe_get accs (ab + Array.unsafe_get ls l) >= t0 then
                out := !out lor (1 lsl l)
            done;
            let out = !out in
            if out <> 0 then begin
              Array.unsafe_set vals (bget gw glo * wordc + wd) out;
              let m = ref out in
              while !m <> 0 do
                let b = !m land (- !m) in
                let l = Array.unsafe_get ctz ((b * ctz_mul) lsr 56) in
                Array.unsafe_set fires (base + l)
                  (Array.unsafe_get fires (base + l) + 1);
                m := !m lxor b
              done
            end
          end
          else begin
            (* Lanes clearing even the lowest threshold fire a nonempty
               prefix; often there are none, and the word is skipped. *)
            let t0 = bget th glo in
            let live = ref 0 in
            for l = 0 to w_lanes - 1 do
              if Array.unsafe_get accs (ab + Array.unsafe_get ls l) >= t0 then
                live := !live lor (1 lsl l)
            done;
            if !live <> 0 then begin
              (* Bucket each live lane by its firing-prefix length (one
                 binary search per lane), then build every gate word in
                 a single suffix-OR sweep: gate j fires the union of
                 lanes whose prefix extends past it.  O(k + lanes)
                 instead of the O(lanes * k) per-lane prefix marking —
                 the paper's wide shared layers put thousands of gates
                 in one segment, so this is the difference that lets
                 multi-gate segments keep up with the kernels. *)
              let bucket = sc.sc_bucket in
              let maxcut = ref 0 in
              let m = ref !live in
              while !m <> 0 do
                let b = !m land (- !m) in
                let l = Array.unsafe_get ctz ((b * ctz_mul) lsr 56) in
                let s0 = Array.unsafe_get accs (ab + Array.unsafe_get ls l) in
                (* th.(glo) <= s0 already, so search in (glo, ghi]. *)
                let a = ref (glo + 1) and hi2 = ref ghi in
                while !a < !hi2 do
                  let mid = (!a + !hi2) lsr 1 in
                  if bget th mid <= s0 then a := mid + 1 else hi2 := mid
                done;
                let c = !a - glo in
                Array.unsafe_set bucket c (Array.unsafe_get bucket c lor b);
                if c > !maxcut then maxcut := c;
                Array.unsafe_set fires (base + l)
                  (Array.unsafe_get fires (base + l) + c);
                m := !m lxor b
              done;
              (* Sweep from the longest prefix down; [acc] is nonempty
                 throughout (bucket.(maxcut) is nonzero by construction)
                 and each bucket is re-zeroed as it is consumed, keeping
                 [sc_bucket] clean for the next segment. *)
              let acc = ref 0 in
              for j = !maxcut - 1 downto 0 do
                acc := !acc lor Array.unsafe_get bucket (j + 1);
                Array.unsafe_set bucket (j + 1) 0;
                Array.unsafe_set vals (bget gw (glo + j) * wordc + wd) !acc
              done
            end
          end
        done
  done

(* Per-level wall time plus batch counters, accumulated across calls —
   [run_batch ?profile] fills one in when asked ([tcmm verify/serve
   --profile-eval]). *)
type eval_profile = {
  mutable ep_batches : int;
  mutable ep_lanes : int;
  ep_level_ns : float array;
}

let make_profile t =
  { ep_batches = 0; ep_lanes = 0; ep_level_ns = Array.make (max t.levels 1) 0. }

type workspace = { mutable w_vals : int array }

let workspace () = { w_vals = [||] }

let run_batch ?(check = false) ?pool ?(domains = 1) ?profile ?ws t inputs =
  let lanes = Array.length inputs in
  if lanes = 0 then invalid_arg "Packed.run_batch: empty batch";
  Array.iter
    (fun v ->
      if Array.length v <> t.num_inputs then
        invalid_arg
          (Printf.sprintf "Packed.run_batch: expected %d inputs, got %d"
             t.num_inputs (Array.length v)))
    inputs;
  let wordc = (lanes + word_lanes - 1) / word_lanes in
  let nv = t.num_wires * wordc in
  let vals =
    match ws with
    | None -> Array.make nv 0
    | Some w ->
        if Array.length w.w_vals >= nv then begin
          let v = w.w_vals in
          Array.fill v 0 nv 0;
          v
        end
        else begin
          let v = Array.make nv 0 in
          w.w_vals <- v;
          v
        end
  in
  for v = 0 to lanes - 1 do
    let wd = v / word_lanes and bit = 1 lsl (v mod word_lanes) in
    let iv = inputs.(v) in
    for i = 0 to t.num_inputs - 1 do
      if iv.(i) then
        vals.(i * wordc + wd) <- vals.(i * wordc + wd) lor bit
    done
  done;
  let lf = Array.init lanes (fun _ -> Array.make t.levels 0) in
  let record l fires =
    for ln = 0 to lanes - 1 do
      let f = Array.unsafe_get fires ln in
      if f <> 0 then lf.(ln).(l) <- lf.(ln).(l) + f
    done
  in
  let now =
    match profile with
    | None -> fun () -> 0.
    | Some _ -> Tcmm_util.Clock.now
  in
  let tock l t0 =
    match profile with
    | None -> ()
    | Some p -> p.ep_level_ns.(l) <- p.ep_level_ns.(l) +. ((now () -. t0) *. 1e9)
  in
  (* One traversal of the circuit metadata for the whole batch: levels
     outer, lane words handled inside each segment.  Under a pool the
     chunks split segments (as for single-vector runs); per-chunk
     scratch and firing buffers are preallocated once, so every level
     runs allocation-free. *)
  let run_levels pool_opt =
    match pool_opt with
    | Some pool when Pool.size pool > 1 ->
        let maxchunks = 4 * Pool.size pool in
        let scs = Array.init maxchunks (fun _ -> make_scratch t ~wordc) in
        let partial = Array.init maxchunks (fun _ -> Array.make lanes 0) in
        for l = 0 to t.levels - 1 do
          let t0 = now () in
          let lo = t.level_segs.(l) and hi = t.level_segs.(l + 1) in
          let nseg = hi - lo in
          if nseg = 1 then begin
            let f = partial.(0) in
            Array.fill f 0 lanes 0;
            eval_batch_segs ~check t scs.(0) vals ~wordc ~lanes ~fires:f lo hi;
            record l f
          end
          else if nseg > 0 then begin
            let nchunks = min nseg maxchunks in
            Pool.run pool ~chunks:nchunks (fun i ->
                let a, b = chunk_bounds lo nseg nchunks i in
                let f = partial.(i) in
                Array.fill f 0 lanes 0;
                eval_batch_segs ~check t scs.(i) vals ~wordc ~lanes ~fires:f a
                  b);
            for i = 0 to nchunks - 1 do
              record l partial.(i)
            done
          end;
          tock l t0
        done
    | _ ->
        let sc = make_scratch t ~wordc in
        let fires = Array.make lanes 0 in
        for l = 0 to t.levels - 1 do
          let t0 = now () in
          let lo = t.level_segs.(l) and hi = t.level_segs.(l + 1) in
          if hi > lo then begin
            Array.fill fires 0 lanes 0;
            eval_batch_segs ~check t sc vals ~wordc ~lanes ~fires lo hi;
            record l fires
          end;
          tock l t0
        done
  in
  (match pool with
  | Some p -> run_levels (Some p)
  | None ->
      if domains <= 1 then run_levels None
      else Pool.with_pool ~domains (fun p -> run_levels (Some p)));
  (match profile with
  | None -> ()
  | Some p ->
      p.ep_batches <- p.ep_batches + 1;
      p.ep_lanes <- p.ep_lanes + lanes);
  let b_outputs =
    Array.init lanes (fun v ->
        let wd = v / word_lanes and bit = v mod word_lanes in
        Array.map (fun ow -> (vals.(ow * wordc + wd) lsr bit) land 1 = 1)
          t.outputs)
  in
  let b_firings = Array.map (Array.fold_left ( + ) 0) lf in
  {
    b_lanes = lanes;
    b_wordc = wordc;
    b_vals = vals;
    b_outputs;
    b_firings;
    b_level_firings = lf;
  }

let lanes r = r.b_lanes

let check_lane r lane =
  if lane < 0 || lane >= r.b_lanes then
    invalid_arg (Printf.sprintf "Packed: lane %d out of range" lane)

let batch_outputs r ~lane =
  check_lane r lane;
  r.b_outputs.(lane)

let batch_firings r ~lane =
  check_lane r lane;
  r.b_firings.(lane)

let batch_level_firings r ~lane =
  check_lane r lane;
  r.b_level_firings.(lane)

let batch_value r ~lane w =
  check_lane r lane;
  (r.b_vals.((w * r.b_wordc) + (lane / word_lanes)) lsr (lane mod word_lanes))
  land 1
  = 1

(* ------------------------------------------------------------------ *)
(* Persistence                                                        *)
(* ------------------------------------------------------------------ *)

(* The store subsystem persists a packed circuit as flat sections and
   hands them back on load.  This module stays I/O-free: [save] is a
   field projection (plus the kernel-spec encoding) and [load] is
   re-validation — the store layer owns files, mmap, and checksums. *)

type sections = {
  sec_num_inputs : int;
  sec_num_gates : int;
  sec_levels : int;
  sec_pool_wires : ivec;
  sec_pool_weights : ivec;
  sec_g_threshold : ivec;
  sec_g_wire : ivec;
  sec_seg_off : int array;
  sec_seg_fan : int array;
  sec_seg_gates : int array;
  sec_seg_grp : int array;
  sec_grp_off : int array;
  sec_grp_weight : int array;
  sec_level_segs : int array;
  sec_outputs : int array;
  sec_kern : int array;
}

let save t =
  {
    sec_num_inputs = t.num_inputs;
    sec_num_gates = t.num_gates;
    sec_levels = t.levels;
    sec_pool_wires = t.pool_wires;
    sec_pool_weights = t.pool_weights;
    sec_g_threshold = t.g_threshold;
    sec_g_wire = t.g_wire;
    sec_seg_off = t.seg_off;
    sec_seg_fan = t.seg_fan;
    sec_seg_gates = t.seg_gates;
    sec_seg_grp = t.seg_grp;
    sec_grp_off = t.grp_off;
    sec_grp_weight = t.grp_weight;
    sec_level_segs = t.level_segs;
    sec_outputs = t.outputs;
    sec_kern = Kernel.encode_specs t.kern;
  }

(* Recompile one segment's kernel from the CSR pools — the fallback
   when an artifact predates the current {!Kernel.format_rev}. *)
let recompile_kern s pool_weights g_threshold ~seg_off ~seg_fan ~seg_gates =
  let fan = seg_fan.(s) and e = seg_off.(s) in
  let p = seg_gates.(s) in
  let count = seg_gates.(s + 1) - p in
  let weights = Array.init fan (fun i -> bget pool_weights (e + i)) in
  let thresholds = Array.init count (fun i -> bget g_threshold (p + i)) in
  Kernel.compile ~fan ~weights ~thresholds

exception Invalid of string

let load ?(kernels = true) ?(recompile = false) s =
  let fail fmt = Printf.ksprintf (fun m -> raise (Invalid m)) fmt in
  let check_monotone name a lo hi =
    let n = Array.length a in
    if n = 0 then fail "%s is empty" name;
    if a.(0) <> lo then fail "%s does not start at %d" name lo;
    if a.(n - 1) <> hi then fail "%s does not end at %d" name hi;
    for i = 1 to n - 1 do
      if a.(i) < a.(i - 1) then fail "%s is not monotone at %d" name i
    done
  in
  match
    let num_inputs = s.sec_num_inputs in
    let ng = s.sec_num_gates in
    let levels = s.sec_levels in
    if num_inputs < 0 || ng < 0 || levels < 0 then fail "negative counts";
    if ng > 0 && levels = 0 then fail "gates without levels";
    let num_wires = num_inputs + ng in
    let nsegs = Array.length s.sec_seg_off in
    if Array.length s.sec_seg_fan <> nsegs then fail "seg_fan length mismatch";
    if Array.length s.sec_seg_gates <> nsegs + 1 then
      fail "seg_gates length mismatch";
    if Array.length s.sec_seg_grp <> nsegs + 1 then fail "seg_grp length mismatch";
    if Array.length s.sec_level_segs <> levels + 1 then
      fail "level_segs length mismatch";
    let ngroups = Array.length s.sec_grp_weight in
    if Array.length s.sec_grp_off <> ngroups + 1 then
      fail "grp_off length mismatch";
    check_monotone "level_segs" s.sec_level_segs 0 nsegs;
    check_monotone "seg_gates" s.sec_seg_gates 0 ng;
    check_monotone "seg_grp" s.sec_seg_grp 0 ngroups;
    let nedges = s.sec_grp_off.(ngroups) in
    check_monotone "grp_off" s.sec_grp_off 0 nedges;
    let dim = Bigarray.Array1.dim in
    if dim s.sec_pool_wires < max nedges 1 then fail "pool_wires too short";
    if dim s.sec_pool_weights < max nedges 1 then fail "pool_weights too short";
    if dim s.sec_g_threshold < max ng 1 then fail "g_threshold too short";
    if dim s.sec_g_wire < max ng 1 then fail "g_wire too short";
    (* Each segment's edge range must be exactly its group range — the
       evaluators walk both views of the same pool slots. *)
    for seg = 0 to nsegs - 1 do
      if s.sec_seg_fan.(seg) < 0 then fail "negative fan at segment %d" seg;
      if s.sec_seg_off.(seg) <> s.sec_grp_off.(s.sec_seg_grp.(seg)) then
        fail "segment %d edge/group range mismatch" seg;
      if
        s.sec_seg_off.(seg) + s.sec_seg_fan.(seg)
        <> s.sec_grp_off.(s.sec_seg_grp.(seg + 1))
      then fail "segment %d fan/group extent mismatch" seg
    done;
    (* Bounds that make the evaluators' unsafe accesses safe. *)
    for e = 0 to nedges - 1 do
      let w = bget s.sec_pool_wires e in
      if w < 0 || w >= num_wires then fail "edge %d reads out-of-range wire" e
    done;
    for g = 0 to ng - 1 do
      let w = bget s.sec_g_wire g in
      if w < num_inputs || w >= num_wires then
        fail "gate %d writes out-of-range wire" g
    done;
    Array.iteri
      (fun i w ->
        if w < 0 || w >= num_wires then fail "output %d out of range" i)
      s.sec_outputs;
    (* Thresholds ascend within each segment (binary-searched firing
       prefix); gate ranges per level must follow segment order. *)
    for seg = 0 to nsegs - 1 do
      for g = s.sec_seg_gates.(seg) + 1 to s.sec_seg_gates.(seg + 1) - 1 do
        if bget s.sec_g_threshold g < bget s.sec_g_threshold (g - 1) then
          fail "thresholds not ascending in segment %d" seg
      done
    done;
    let max_seg_gates = ref 0 in
    for seg = 0 to nsegs - 1 do
      let k = s.sec_seg_gates.(seg + 1) - s.sec_seg_gates.(seg) in
      if k > !max_seg_gates then max_seg_gates := k
    done;
    let kern =
      if not kernels then [||]
      else if recompile && nsegs > 0 then
        Array.init nsegs (fun seg ->
            recompile_kern seg s.sec_pool_weights s.sec_g_threshold
              ~seg_off:s.sec_seg_off ~seg_fan:s.sec_seg_fan
              ~seg_gates:s.sec_seg_gates)
      else if Array.length s.sec_kern > 0 then
        match Kernel.decode_specs s.sec_kern ~count:nsegs with
        | Some k -> k
        | None -> fail "malformed kernel dispatch tags"
      else
        (* An empty section means the circuit was packed without kernel
           dispatch (of_circuit, or kernels off) — reproduce that
           faithfully rather than inventing kernels the original never
           had. *)
        [||]
    in
    let k_gates = ref 0 and k_segs = ref 0 in
    Array.iteri
      (fun seg spec ->
        match spec with
        | Kernel.Generic -> ()
        | _ ->
            k_gates := !k_gates + s.sec_seg_gates.(seg + 1) - s.sec_seg_gates.(seg);
            incr k_segs)
      kern;
    {
      circuit =
        lazy
          (failwith
             "Packed.circuit: the explicit circuit view is not persisted; \
              rebuild from the spec to materialize it");
      num_inputs;
      num_wires;
      num_gates = ng;
      levels;
      pool_wires = s.sec_pool_wires;
      pool_weights = s.sec_pool_weights;
      seg_off = s.sec_seg_off;
      seg_fan = s.sec_seg_fan;
      seg_gates = s.sec_seg_gates;
      seg_grp = s.sec_seg_grp;
      grp_off = s.sec_grp_off;
      grp_weight = s.sec_grp_weight;
      level_segs = s.sec_level_segs;
      g_threshold = s.sec_g_threshold;
      g_wire = s.sec_g_wire;
      outputs = s.sec_outputs;
      max_seg_gates = !max_seg_gates;
      kern;
      k_gates = !k_gates;
      k_segs = !k_segs;
      fanout = None;
    }
  with
  | t -> Ok t
  | exception Invalid m -> Error m

let structural_equal a b =
  let ivec_eq va vb n =
    let ok = ref true in
    for i = 0 to n - 1 do
      if bget va i <> bget vb i then ok := false
    done;
    !ok
  in
  let edges_a = a.grp_off.(Array.length a.grp_off - 1) in
  let edges_b = b.grp_off.(Array.length b.grp_off - 1) in
  a.num_inputs = b.num_inputs && a.num_wires = b.num_wires
  && a.num_gates = b.num_gates && a.levels = b.levels && edges_a = edges_b
  && a.max_seg_gates = b.max_seg_gates
  && a.k_gates = b.k_gates && a.k_segs = b.k_segs
  && a.seg_off = b.seg_off && a.seg_fan = b.seg_fan
  && a.seg_gates = b.seg_gates && a.seg_grp = b.seg_grp
  && a.grp_off = b.grp_off && a.grp_weight = b.grp_weight
  && a.level_segs = b.level_segs && a.outputs = b.outputs
  && a.kern = b.kern
  && ivec_eq a.pool_wires b.pool_wires edges_a
  && ivec_eq a.pool_weights b.pool_weights edges_a
  && ivec_eq a.g_threshold b.g_threshold a.num_gates
  && ivec_eq a.g_wire b.g_wire a.num_gates
