module Intvec = Tcmm_util.Intvec
module Checked = Tcmm_util.Checked

(* ------------------------------------------------------------------ *)
(* Packed representation                                              *)
(* ------------------------------------------------------------------ *)

type t = {
  (* Lazy: arena-built circuits (Builder Direct mode) lower straight to
     this packed form; the [Circuit.t] view is only materialized if a
     consumer (Simulator, Validate, Export) actually asks for it. *)
  circuit : Circuit.t Lazy.t;
  num_inputs : int;
  num_wires : int;
  num_gates : int;
  levels : int;
  (* Flat CSR edge pools.  Gates built through [Builder.add_shared_gates]
     physically share their input/weight arrays; consecutive gates (in
     level order) sharing arrays collapse into one *segment*, so the
     pools hold each shared array once — for the big matmul circuits
     this is ~250x smaller than the logical edge count. *)
  pool_wires : int array;
  pool_weights : int array;
  (* Per segment: pool offset, fan-in, and the packed-gate range
     [seg_gates.(s), seg_gates.(s+1)) of gates sharing that sum. *)
  seg_off : int array;
  seg_fan : int array;
  seg_gates : int array;  (* length num_segments + 1 *)
  (* Edges within a segment are stored grouped by weight value (stable,
     groups in order of first appearance): segment [s] owns groups
     [seg_grp.(s), seg_grp.(s+1)), group [g] owns pool slots
     [grp_off.(g), grp_off.(g+1)) all carrying weight [grp_weight.(g)].
     The paper's wide layers have huge fan-in but only a handful of
     distinct weights (e.g. the alternating +/- rows of Lemma 3.1), so
     the batched evaluator can replace per-set-bit adds with a carry-save
     per-lane popcount over each group. *)
  seg_grp : int array;  (* length num_segments + 1 *)
  grp_off : int array;  (* length num_groups + 1 *)
  grp_weight : int array;
  (* Segments grouped by level: segments [level_segs.(l), level_segs.(l+1))
     hold exactly the gates of depth l+1.  Gates within a level are
     mutually independent, which is what the parallel and batched
     evaluators exploit. *)
  level_segs : int array;  (* length levels + 1 *)
  (* Per packed gate (level-major order; thresholds ascend within each
     segment so the firing gates of a segment are a prefix). *)
  g_threshold : int array;
  g_wire : int array;  (* output wire id *)
  outputs : int array;
  max_seg_gates : int;
}

let of_circuit (c : Circuit.t) =
  let num_inputs = c.Circuit.num_inputs in
  let gates = c.Circuit.gates in
  let ng = Array.length gates in
  let num_wires = num_inputs + ng in
  let depths = c.Circuit.depths in
  let levels = Array.fold_left max 0 depths in
  (* Stable counting sort of gate ids by level (level l = depth l+1). *)
  let counts = Array.make (levels + 1) 0 in
  for g = 0 to ng - 1 do
    let d = depths.(num_inputs + g) in
    counts.(d) <- counts.(d) + 1
  done;
  (* lvl_start.(l) = first packed position of level l; sentinel at [levels]. *)
  let lvl_start = Array.make (levels + 1) 0 in
  for l = 0 to levels - 1 do
    lvl_start.(l + 1) <- lvl_start.(l) + counts.(l + 1)
  done;
  let order = Array.make (max ng 1) 0 in
  let cursor = Array.copy lvl_start in
  for g = 0 to ng - 1 do
    let l = depths.(num_inputs + g) - 1 in
    order.(cursor.(l)) <- g;
    cursor.(l) <- cursor.(l) + 1
  done;
  let pool_wires = Intvec.create ~capacity:1024 () in
  let pool_weights = Intvec.create ~capacity:1024 () in
  let seg_off = Intvec.create () in
  let seg_fan = Intvec.create () in
  let seg_gates = Intvec.create () in
  let seg_grp = Intvec.create () in
  let grp_off = Intvec.create () in
  let grp_weight = Intvec.create () in
  let level_segs = Array.make (levels + 1) 0 in
  let g_threshold = Array.make (max ng 1) 0 in
  let g_wire = Array.make (max ng 1) 0 in
  let max_seg_gates = ref 0 in
  let p = ref 0 in
  for l = 0 to levels - 1 do
    level_segs.(l) <- Intvec.length seg_off;
    let level_end = lvl_start.(l + 1) in
    while !p < level_end do
      let g0 = order.(!p) in
      let gate0 = gates.(g0) in
      Intvec.push seg_off (Intvec.length pool_wires);
      Intvec.push seg_fan (Array.length gate0.Gate.inputs);
      Intvec.push seg_gates !p;
      Intvec.push seg_grp (Intvec.length grp_weight);
      (* Push the segment's edges grouped by weight value (stable within
         a group, groups ordered by first appearance). *)
      let ins = gate0.Gate.inputs and wts = gate0.Gate.weights in
      let fan = Array.length ins in
      let gid = Array.make (max fan 1) 0 in
      let tbl = Hashtbl.create 8 in
      let gcount = ref 0 in
      for i = 0 to fan - 1 do
        match Hashtbl.find_opt tbl wts.(i) with
        | Some g -> gid.(i) <- g
        | None ->
            Hashtbl.add tbl wts.(i) !gcount;
            gid.(i) <- !gcount;
            incr gcount
      done;
      let gcount = !gcount in
      let sizes = Array.make (max gcount 1) 0 in
      for i = 0 to fan - 1 do
        sizes.(gid.(i)) <- sizes.(gid.(i)) + 1
      done;
      let base = Intvec.length pool_wires in
      let starts = Array.make (max gcount 1) 0 in
      let acc = ref 0 in
      for g = 0 to gcount - 1 do
        starts.(g) <- !acc;
        acc := !acc + sizes.(g)
      done;
      let gw = Array.make (max gcount 1) 0 in
      let perm = Array.make (max fan 1) 0 in
      let cur = Array.copy starts in
      for i = 0 to fan - 1 do
        let g = gid.(i) in
        gw.(g) <- wts.(i);
        perm.(cur.(g)) <- i;
        cur.(g) <- cur.(g) + 1
      done;
      for j = 0 to fan - 1 do
        let i = perm.(j) in
        Intvec.push pool_wires ins.(i);
        Intvec.push pool_weights wts.(i)
      done;
      for g = 0 to gcount - 1 do
        Intvec.push grp_off (base + starts.(g));
        Intvec.push grp_weight gw.(g)
      done;
      (* Extend the segment over consecutive gates that physically share
         the input/weight arrays (they necessarily sit at the same
         depth, so the level boundary is respected automatically — but
         we re-check it to stay robust to exotic circuits). *)
      let q = ref (!p + 1) in
      while
        !q < level_end
        && gates.(order.(!q)).Gate.inputs == gate0.Gate.inputs
        && gates.(order.(!q)).Gate.weights == gate0.Gate.weights
      do
        incr q
      done;
      let k = !q - !p in
      if k > !max_seg_gates then max_seg_gates := k;
      let pairs =
        Array.init k (fun i ->
            let g = order.(!p + i) in
            (gates.(g).Gate.threshold, num_inputs + g))
      in
      Array.sort (fun (a, _) (b, _) -> compare (a : int) b) pairs;
      for i = 0 to k - 1 do
        let th, w = pairs.(i) in
        g_threshold.(!p + i) <- th;
        g_wire.(!p + i) <- w
      done;
      p := !q
    done
  done;
  level_segs.(levels) <- Intvec.length seg_off;
  Intvec.push seg_gates ng;
  Intvec.push seg_grp (Intvec.length grp_weight);
  Intvec.push grp_off (Intvec.length pool_wires);
  {
    circuit = Lazy.from_val c;
    num_inputs;
    num_wires;
    num_gates = ng;
    levels;
    pool_wires = Intvec.to_array pool_wires;
    pool_weights = Intvec.to_array pool_weights;
    seg_off = Intvec.to_array seg_off;
    seg_fan = Intvec.to_array seg_fan;
    seg_gates = Intvec.to_array seg_gates;
    seg_grp = Intvec.to_array seg_grp;
    grp_off = Intvec.to_array grp_off;
    grp_weight = Intvec.to_array grp_weight;
    level_segs;
    g_threshold;
    g_wire;
    outputs = c.Circuit.outputs;
    max_seg_gates = !max_seg_gates;
  }

let circuit t = Lazy.force t.circuit
let num_gates t = t.num_gates
let num_levels t = t.levels
let num_segments t = Array.length t.seg_off
let pool_edges t = Array.length t.pool_wires

(* ------------------------------------------------------------------ *)
(* Domain pool                                                        *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  type pool = {
    size : int;
    mutable task : int -> unit;
    mutable nchunks : int;
    next : int Atomic.t;
    mutable done_workers : int;
    mutable epoch : int;
    mutable stop : bool;
    m : Mutex.t;
    work_cv : Condition.t;
    done_cv : Condition.t;
    mutable err : exn option;
    mutable handles : unit Domain.t list;
  }

  type t = pool

  let size t = t.size

  (* Claim and run chunks until the current job is drained.  The first
     exception (e.g. a [Checked.Overflow] from a checked evaluation) is
     parked in [err] and re-raised by the caller after the barrier. *)
  let drain t =
    let rec loop () =
      let i = Atomic.fetch_and_add t.next 1 in
      if i < t.nchunks then begin
        (try t.task i
         with e ->
           Mutex.lock t.m;
           if t.err = None then t.err <- Some e;
           Mutex.unlock t.m);
        loop ()
      end
    in
    loop ()

  let worker t () =
    let my_epoch = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock t.m;
      while (not t.stop) && t.epoch = !my_epoch do
        Condition.wait t.work_cv t.m
      done;
      if t.stop then begin
        Mutex.unlock t.m;
        running := false
      end
      else begin
        my_epoch := t.epoch;
        Mutex.unlock t.m;
        drain t;
        Mutex.lock t.m;
        t.done_workers <- t.done_workers + 1;
        if t.done_workers = t.size then Condition.signal t.done_cv;
        Mutex.unlock t.m
      end
    done

  let create ~domains =
    if domains < 1 then invalid_arg "Packed.Pool.create: domains must be >= 1";
    let t =
      {
        size = domains;
        task = ignore;
        nchunks = 0;
        next = Atomic.make 0;
        done_workers = 0;
        epoch = 0;
        stop = false;
        m = Mutex.create ();
        work_cv = Condition.create ();
        done_cv = Condition.create ();
        err = None;
        handles = [];
      }
    in
    t.handles <- List.init (domains - 1) (fun _ -> Domain.spawn (worker t));
    t

  (* Run [task 0 .. task (chunks-1)] across the pool; returns when every
     chunk has finished (level barrier).  Not reentrant. *)
  let run t ~chunks task =
    if chunks < 0 then invalid_arg "Packed.Pool.run: negative chunk count";
    if chunks = 0 then ()
    else if t.size = 1 then
      for i = 0 to chunks - 1 do
        task i
      done
    else begin
      Mutex.lock t.m;
      t.task <- task;
      t.nchunks <- chunks;
      Atomic.set t.next 0;
      t.done_workers <- 0;
      t.err <- None;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.work_cv;
      Mutex.unlock t.m;
      drain t;
      Mutex.lock t.m;
      t.done_workers <- t.done_workers + 1;
      while t.done_workers < t.size do
        Condition.wait t.done_cv t.m
      done;
      let err = t.err in
      t.err <- None;
      t.task <- ignore;
      Mutex.unlock t.m;
      match err with Some e -> raise e | None -> ()
    end

  let shutdown t =
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.m;
    List.iter Domain.join t.handles;
    t.handles <- []

  let with_pool ~domains f =
    let t = create ~domains in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
end

let chunk_bounds lo nseg nchunks i =
  (lo + (i * nseg / nchunks), lo + ((i + 1) * nseg / nchunks))

(* ------------------------------------------------------------------ *)
(* Direct lowering from a builder arena                               *)
(* ------------------------------------------------------------------ *)

(* [of_arena] produces the same packed form as
   [of_circuit (materialized arena)] without ever materializing the
   per-gate [Circuit.t]: each template carries a precomputed lowering
   plan (weight grouping, edge permutation, threshold sort — see
   [Template.lower_plan]) that is replayed per instance by offset
   arithmetic.  Items appear in construction order and wire ids grow
   monotonically with it, so appending each segment to its level
   reproduces exactly the stable level-major order of [of_circuit]. *)

let dummy_pseg =
  {
    Template.q_gate0 = 0;
    q_count = 0;
    q_fan = 0;
    q_refs = [||];
    q_weights = [||];
    q_grp_start = [||];
    q_grp_weight = [||];
    q_th = [||];
    q_th_gate = [||];
  }

(* Materialize the gate array of an arena (only reached through the lazy
   [circuit] field; the packed evaluators never need it). *)
let gates_of_arena (a : Builder.arena) =
  let num_inputs = a.Builder.a_num_inputs in
  let ng = a.Builder.a_num_gates in
  let dummy = Gate.make ~inputs:[||] ~weights:[||] ~threshold:0 in
  let gates = Array.make (max ng 1) dummy in
  Array.iter
    (function
      | Builder.A_raw { gate0; gv0; count } ->
          Array.blit a.Builder.a_raw gv0 gates (gate0 - num_inputs) count
      | Builder.A_inst { tpl; wire0; slots } ->
          let nsegs = Array.length tpl.Template.seg_start - 1 in
          for s = 0 to nsegs - 1 do
            let g0 = tpl.Template.seg_start.(s) in
            let gend = tpl.Template.seg_start.(s + 1) in
            let off = tpl.Template.seg_off.(s) in
            let fan = tpl.Template.seg_off.(s + 1) - off in
            let ins =
              Array.init fan (fun i ->
                  let r = tpl.Template.s_refs.(off + i) in
                  if r >= 0 then wire0 + r else slots.(-r - 1))
            in
            let weights = tpl.Template.s_weights.(s) in
            for g = g0 to gend - 1 do
              gates.(wire0 - num_inputs + g) <-
                Gate.make ~inputs:ins ~weights
                  ~threshold:tpl.Template.g_threshold.(g)
            done
          done)
    a.Builder.a_items;
  if ng = 0 then [||] else gates

let of_arena ?pool ?(domains = 1) (a : Builder.arena) =
  let num_inputs = a.Builder.a_num_inputs in
  let ng = a.Builder.a_num_gates in
  let num_wires = a.Builder.a_num_wires in
  let depths = a.Builder.a_depths in
  let levels = a.Builder.a_levels in
  let items = a.Builder.a_items in
  let item_psegs =
    Array.map
      (function
        | Builder.A_inst { tpl; _ } -> Template.lower_plan tpl
        | Builder.A_raw { gate0; gv0; count } ->
            Template.raw_psegs a.Builder.a_raw ~gv0 ~count ~wire_of:(fun i ->
                gate0 + i))
      items
  in
  let base_of idx =
    match items.(idx) with
    | Builder.A_inst { wire0; slots; _ } -> (wire0, slots)
    | Builder.A_raw _ -> (0, [||])
  in
  (* Pass 0: per-level segment/gate/group/edge counts. *)
  let seg_cnt = Array.make (max levels 1) 0 in
  let gate_cnt = Array.make (max levels 1) 0 in
  let grp_cnt = Array.make (max levels 1) 0 in
  let edge_cnt = Array.make (max levels 1) 0 in
  Array.iteri
    (fun idx psegs ->
      let w0, _ = base_of idx in
      Array.iter
        (fun (ps : Template.pseg) ->
          let l = depths.(w0 + ps.Template.q_gate0) - 1 in
          seg_cnt.(l) <- seg_cnt.(l) + 1;
          gate_cnt.(l) <- gate_cnt.(l) + ps.Template.q_count;
          grp_cnt.(l) <- grp_cnt.(l) + Array.length ps.Template.q_grp_weight;
          edge_cnt.(l) <- edge_cnt.(l) + ps.Template.q_fan)
        psegs)
    item_psegs;
  let level_segs = Array.make (levels + 1) 0 in
  let lvl_gate0 = Array.make (levels + 1) 0 in
  let lvl_grp0 = Array.make (levels + 1) 0 in
  let lvl_edge0 = Array.make (levels + 1) 0 in
  for l = 0 to levels - 1 do
    level_segs.(l + 1) <- level_segs.(l) + seg_cnt.(l);
    lvl_gate0.(l + 1) <- lvl_gate0.(l) + gate_cnt.(l);
    lvl_grp0.(l + 1) <- lvl_grp0.(l) + grp_cnt.(l);
    lvl_edge0.(l + 1) <- lvl_edge0.(l) + edge_cnt.(l)
  done;
  let nsegs = level_segs.(levels) in
  let ngroups = lvl_grp0.(levels) in
  let nedges = lvl_edge0.(levels) in
  assert (lvl_gate0.(levels) = ng);
  let pool_wires = Array.make (max nedges 1) 0 in
  let pool_weights = Array.make (max nedges 1) 0 in
  let seg_off = Array.make (max nsegs 1) 0 in
  let seg_fan = Array.make (max nsegs 1) 0 in
  let seg_gates = Array.make (nsegs + 1) 0 in
  let seg_grp = Array.make (nsegs + 1) 0 in
  let grp_off = Array.make (ngroups + 1) 0 in
  let grp_weight = Array.make (max ngroups 1) 0 in
  let g_threshold = Array.make (max ng 1) 0 in
  let g_wire = Array.make (max ng 1) 0 in
  let src_ps = Array.make (max nsegs 1) dummy_pseg in
  let src_w0 = Array.make (max nsegs 1) 0 in
  let src_slots = Array.make (max nsegs 1) [||] in
  (* Pass 1: walk items in construction order, assigning each segment
     its slot in the level-major layout and filling every per-segment
     array that pass 2's parallel fill indexes into. *)
  let seg_cursor = Array.copy level_segs in
  let gate_cursor = Array.copy lvl_gate0 in
  let grp_cursor = Array.copy lvl_grp0 in
  let edge_cursor = Array.copy lvl_edge0 in
  let max_seg_gates = ref 0 in
  Array.iteri
    (fun idx psegs ->
      let w0, slots = base_of idx in
      Array.iter
        (fun (ps : Template.pseg) ->
          let l = depths.(w0 + ps.Template.q_gate0) - 1 in
          let s = seg_cursor.(l) in
          seg_cursor.(l) <- s + 1;
          let p = gate_cursor.(l) in
          gate_cursor.(l) <- p + ps.Template.q_count;
          let e = edge_cursor.(l) in
          edge_cursor.(l) <- e + ps.Template.q_fan;
          let g = grp_cursor.(l) in
          let ngr = Array.length ps.Template.q_grp_weight in
          grp_cursor.(l) <- g + ngr;
          seg_off.(s) <- e;
          seg_fan.(s) <- ps.Template.q_fan;
          seg_gates.(s) <- p;
          seg_grp.(s) <- g;
          for k = 0 to ngr - 1 do
            grp_off.(g + k) <- e + ps.Template.q_grp_start.(k);
            grp_weight.(g + k) <- ps.Template.q_grp_weight.(k)
          done;
          if ps.Template.q_count > !max_seg_gates then
            max_seg_gates := ps.Template.q_count;
          src_ps.(s) <- ps;
          src_w0.(s) <- w0;
          src_slots.(s) <- slots)
        psegs)
    item_psegs;
  seg_gates.(nsegs) <- ng;
  seg_grp.(nsegs) <- ngroups;
  grp_off.(ngroups) <- nedges;
  (* Pass 2: resolve refs into the edge pools and blit thresholds —
     independent per segment, so it fans out across the domain pool. *)
  let fill_seg s =
    let ps = src_ps.(s) in
    let w0 = src_w0.(s) and slots = src_slots.(s) in
    let e = seg_off.(s) in
    let refs = ps.Template.q_refs in
    for i = 0 to ps.Template.q_fan - 1 do
      let r = Array.unsafe_get refs i in
      Array.unsafe_set pool_wires (e + i)
        (if r >= 0 then w0 + r else Array.unsafe_get slots (-r - 1))
    done;
    Array.blit ps.Template.q_weights 0 pool_weights e ps.Template.q_fan;
    let p = seg_gates.(s) in
    Array.blit ps.Template.q_th 0 g_threshold p ps.Template.q_count;
    for i = 0 to ps.Template.q_count - 1 do
      g_wire.(p + i) <- w0 + ps.Template.q_th_gate.(i)
    done
  in
  let run_fill pl =
    let nchunks = min (max nsegs 1) (8 * Pool.size pl) in
    Pool.run pl ~chunks:nchunks (fun i ->
        let a, b = chunk_bounds 0 nsegs nchunks i in
        for s = a to b - 1 do
          fill_seg s
        done)
  in
  (match pool with
  | Some p -> run_fill p
  | None ->
      if domains <= 1 then
        for s = 0 to nsegs - 1 do
          fill_seg s
        done
      else Pool.with_pool ~domains run_fill);
  {
    circuit =
      lazy
        (Circuit.make ~num_inputs ~gates:(gates_of_arena a)
           ~outputs:a.Builder.a_outputs);
    num_inputs;
    num_wires;
    num_gates = ng;
    levels;
    pool_wires;
    pool_weights;
    seg_off;
    seg_fan;
    seg_gates;
    seg_grp;
    grp_off;
    grp_weight;
    level_segs;
    g_threshold;
    g_wire;
    outputs = a.Builder.a_outputs;
    max_seg_gates = !max_seg_gates;
  }

(* ------------------------------------------------------------------ *)
(* Single-vector evaluation                                           *)
(* ------------------------------------------------------------------ *)

(* Evaluate segments [lo, hi) against [values]; returns the number of
   gates fired.  Each segment computes its shared weighted sum once and
   fires the prefix of its (ascending) thresholds that the sum reaches. *)
let eval_segs ~check t values lo hi =
  let pw = t.pool_wires and pwt = t.pool_weights in
  let th = t.g_threshold and gw = t.g_wire in
  let fired = ref 0 in
  for s = lo to hi - 1 do
    let off = Array.unsafe_get t.seg_off s in
    let fan = Array.unsafe_get t.seg_fan s in
    let sum = ref 0 in
    if check then
      for i = off to off + fan - 1 do
        if Bytes.unsafe_get values (Array.unsafe_get pw i) <> '\000' then
          sum := Checked.add !sum (Array.unsafe_get pwt i)
      done
    else
      for i = off to off + fan - 1 do
        if Bytes.unsafe_get values (Array.unsafe_get pw i) <> '\000' then
          sum := !sum + Array.unsafe_get pwt i
      done;
    let s0 = !sum in
    let glo = Array.unsafe_get t.seg_gates s in
    let ghi = Array.unsafe_get t.seg_gates (s + 1) in
    let cut =
      if ghi - glo = 1 then if s0 >= Array.unsafe_get th glo then ghi else glo
      else begin
        (* first index whose threshold exceeds the sum *)
        let a = ref glo and b = ref ghi in
        while !a < !b do
          let mid = (!a + !b) lsr 1 in
          if Array.unsafe_get th mid <= s0 then a := mid + 1 else b := mid
        done;
        !a
      end
    in
    for g = glo to cut - 1 do
      Bytes.unsafe_set values (Array.unsafe_get gw g) '\001'
    done;
    fired := !fired + (cut - glo)
  done;
  !fired

let run_seq_levels ~check t values level_firings =
  for l = 0 to t.levels - 1 do
    level_firings.(l) <-
      eval_segs ~check t values t.level_segs.(l) t.level_segs.(l + 1)
  done

let run_par_levels ~check t values level_firings pool =
  let size = Pool.size pool in
  for l = 0 to t.levels - 1 do
    let lo = t.level_segs.(l) and hi = t.level_segs.(l + 1) in
    let nseg = hi - lo in
    if nseg = 0 then level_firings.(l) <- 0
    else if size = 1 || nseg = 1 then
      level_firings.(l) <- eval_segs ~check t values lo hi
    else begin
      let nchunks = min nseg (4 * size) in
      let partial = Array.make nchunks 0 in
      Pool.run pool ~chunks:nchunks (fun i ->
          let a, b = chunk_bounds lo nseg nchunks i in
          partial.(i) <- eval_segs ~check t values a b);
      level_firings.(l) <- Array.fold_left ( + ) 0 partial
    end
  done

let prep_values t inputs =
  if Array.length inputs <> t.num_inputs then
    invalid_arg
      (Printf.sprintf "Packed.run: expected %d inputs, got %d" t.num_inputs
         (Array.length inputs));
  let values = Bytes.make t.num_wires '\000' in
  Array.iteri (fun i v -> if v then Bytes.unsafe_set values i '\001') inputs;
  values

let run ?(check = false) ?pool ?(domains = 1) t inputs =
  let values = prep_values t inputs in
  let level_firings = Array.make t.levels 0 in
  (match pool with
  | Some p -> run_par_levels ~check t values level_firings p
  | None ->
      if domains <= 1 then run_seq_levels ~check t values level_firings
      else
        Pool.with_pool ~domains (fun p ->
            run_par_levels ~check t values level_firings p));
  let outputs =
    Array.map (fun w -> Bytes.unsafe_get values w <> '\000') t.outputs
  in
  {
    Simulator.values;
    outputs;
    firings = Array.fold_left ( + ) 0 level_firings;
    level_firings;
  }

(* ------------------------------------------------------------------ *)
(* Batched evaluation                                                 *)
(* ------------------------------------------------------------------ *)

(* Lanes are packed into the low [word_lanes] bits of a native int (62
   keeps every word nonnegative, so isolated bits stay in 1 lsl 0..61).
   One traversal of the circuit metadata evaluates up to 62 input
   vectors. *)
let word_lanes = 62

(* de Bruijn-style bit indexing: [(b * ctz_mul) lsr 56] is distinct for
   every b = 1 lsl e with e in 0..61 (verified at init), so a single
   multiply maps an isolated bit to a 7-bit hash slot — no division in
   the innermost batched loop.  [ctz_table] decodes a slot back to its
   lane; [lane_slot] is the inverse (lane -> slot), letting the per-lane
   accumulators live directly at their hash slots so the accumulate loop
   needs no decode at all. *)
let ctz_mul = 0x540ddf87957338eb
let ctz_slots = 128

let ctz_table, lane_slot =
  let t = Array.make ctz_slots (-1) in
  let inv = Array.make word_lanes 0 in
  for e = 0 to word_lanes - 1 do
    let idx = ((1 lsl e) * ctz_mul) lsr 56 in
    assert (t.(idx) = -1);
    t.(idx) <- e;
    inv.(e) <- idx
  done;
  (t, inv)

type batch_result = {
  b_lanes : int;
  b_wordc : int;
  b_words : int array array;  (* per lane-word: one value word per wire *)
  b_outputs : bool array array;
  b_firings : int array;
  b_level_firings : int array array;
}

(* Below this group size the carry-save ladder's fixed costs (zeroing
   and unslicing the counters) outweigh the per-set-bit adds it saves. *)
let csa_cutoff = 16

(* Counter words for the carry-save popcount: counts fit in
   [log2 max_fan] bits; 62 is a safe ceiling (group sizes are < 2^62). *)
let csa_bits = 62

(* Evaluate segments [lo, hi) for one word of [w_lanes] lanes; returns
   per-lane firing counts for those segments. *)
let eval_batch_segs ~check t vals ~w_lanes lo hi =
  let fires = Array.make w_lanes 0 in
  let accs = Array.make ctz_slots 0 in
  let cnt = Array.make csa_bits 0 in
  let gate_out = Array.make (max t.max_seg_gates 1) 0 in
  let pw = t.pool_wires and pwt = t.pool_weights in
  let th = t.g_threshold and gw = t.g_wire in
  let ctz = ctz_table and ls = lane_slot in
  for s = lo to hi - 1 do
    Array.fill accs 0 ctz_slots 0;
    (* Per-lane accumulators, addressed by hash slot: one metadata read
       per edge, then only the lanes whose wire is 1 pay an add (firing
       is sparse on the paper's circuits, so iterating set bits beats a
       dense lane loop). *)
    if check then begin
      (* Checked mode stays on the straightforward per-edge loop so the
         running per-lane sums follow pool order exactly. *)
      let off = Array.unsafe_get t.seg_off s in
      let fan = Array.unsafe_get t.seg_fan s in
      for i = off to off + fan - 1 do
        let m = ref (Array.unsafe_get vals (Array.unsafe_get pw i)) in
        if !m <> 0 then begin
          let wt = Array.unsafe_get pwt i in
          while !m <> 0 do
            let b = !m land (- !m) in
            let sl = (b * ctz_mul) lsr 56 in
            Array.unsafe_set accs sl (Checked.add (Array.unsafe_get accs sl) wt);
            m := !m lxor b
          done
        end
      done
    end
    else begin
      (* Edges come grouped by weight.  Large groups (the paper's wide
         shared layers have fan-in in the hundreds but only a few
         distinct weights) use a carry-save ladder: per edge, one xor/and
         ripple folds the wire word into bit-sliced per-lane counters for
         all 62 lanes at once; the counters are unsliced once per group
         via [acc += (wt lsl j)] per set counter bit.  Wrap-around
         arithmetic agrees bit-for-bit with per-edge adds (sums are
         computed mod 2^63 either way).  Small groups keep the direct
         per-set-bit adds. *)
      let g0 = Array.unsafe_get t.seg_grp s in
      let g1 = Array.unsafe_get t.seg_grp (s + 1) in
      for g = g0 to g1 - 1 do
        let e0 = Array.unsafe_get t.grp_off g in
        let e1 = Array.unsafe_get t.grp_off (g + 1) in
        let wt = Array.unsafe_get t.grp_weight g in
        if e1 - e0 >= csa_cutoff then begin
          let maxj = ref 0 in
          for i = e0 to e1 - 1 do
            let x = ref (Array.unsafe_get vals (Array.unsafe_get pw i)) in
            let j = ref 0 in
            while !x <> 0 do
              let c = Array.unsafe_get cnt !j in
              Array.unsafe_set cnt !j (c lxor !x);
              x := c land !x;
              incr j
            done;
            if !j > !maxj then maxj := !j
          done;
          for j = 0 to !maxj - 1 do
            let m = ref (Array.unsafe_get cnt j) in
            Array.unsafe_set cnt j 0;
            let wj = wt lsl j in
            while !m <> 0 do
              let b = !m land (- !m) in
              let sl = (b * ctz_mul) lsr 56 in
              Array.unsafe_set accs sl (Array.unsafe_get accs sl + wj);
              m := !m lxor b
            done
          done
        end
        else
          for i = e0 to e1 - 1 do
            let m = ref (Array.unsafe_get vals (Array.unsafe_get pw i)) in
            while !m <> 0 do
              let b = !m land (- !m) in
              let sl = (b * ctz_mul) lsr 56 in
              Array.unsafe_set accs sl (Array.unsafe_get accs sl + wt);
              m := !m lxor b
            done
          done
      done
    end;
    let glo = Array.unsafe_get t.seg_gates s in
    let ghi = Array.unsafe_get t.seg_gates (s + 1) in
    let k = ghi - glo in
    if k = 1 then begin
      let t0 = Array.unsafe_get th glo in
      let out = ref 0 in
      for l = 0 to w_lanes - 1 do
        if Array.unsafe_get accs (Array.unsafe_get ls l) >= t0 then
          out := !out lor (1 lsl l)
      done;
      let out = !out in
      if out <> 0 then begin
        Array.unsafe_set vals (Array.unsafe_get gw glo) out;
        let m = ref out in
        while !m <> 0 do
          let b = !m land (- !m) in
          let l = Array.unsafe_get ctz ((b * ctz_mul) lsr 56) in
          Array.unsafe_set fires l (Array.unsafe_get fires l + 1);
          m := !m lxor b
        done
      end
    end
    else begin
      (* Lanes clearing even the lowest threshold fire a nonempty prefix;
         often there are none, and the whole segment is skipped. *)
      let t0 = Array.unsafe_get th glo in
      let live = ref 0 in
      for l = 0 to w_lanes - 1 do
        if Array.unsafe_get accs (Array.unsafe_get ls l) >= t0 then
          live := !live lor (1 lsl l)
      done;
      if !live <> 0 then begin
        Array.fill gate_out 0 k 0;
        let m = ref !live in
        while !m <> 0 do
          let b = !m land (- !m) in
          let l = Array.unsafe_get ctz ((b * ctz_mul) lsr 56) in
          let s0 = Array.unsafe_get accs (Array.unsafe_get ls l) in
          (* th.(glo) <= s0 already, so search in (glo, ghi]. *)
          let a = ref (glo + 1) and hi2 = ref ghi in
          while !a < !hi2 do
            let mid = (!a + !hi2) lsr 1 in
            if Array.unsafe_get th mid <= s0 then a := mid + 1 else hi2 := mid
          done;
          let cut = !a in
          for j = 0 to cut - glo - 1 do
            Array.unsafe_set gate_out j (Array.unsafe_get gate_out j lor b)
          done;
          Array.unsafe_set fires l (Array.unsafe_get fires l + (cut - glo));
          m := !m lxor b
        done;
        for j = 0 to k - 1 do
          let out = Array.unsafe_get gate_out j in
          if out <> 0 then
            Array.unsafe_set vals (Array.unsafe_get gw (glo + j)) out
        done
      end
    end
  done;
  fires

let run_batch ?(check = false) ?pool ?(domains = 1) t inputs =
  let lanes = Array.length inputs in
  if lanes = 0 then invalid_arg "Packed.run_batch: empty batch";
  Array.iter
    (fun v ->
      if Array.length v <> t.num_inputs then
        invalid_arg
          (Printf.sprintf "Packed.run_batch: expected %d inputs, got %d"
             t.num_inputs (Array.length v)))
    inputs;
  let wordc = (lanes + word_lanes - 1) / word_lanes in
  let words = Array.init wordc (fun _ -> Array.make t.num_wires 0) in
  for v = 0 to lanes - 1 do
    let w = words.(v / word_lanes) and bit = 1 lsl (v mod word_lanes) in
    let iv = inputs.(v) in
    for i = 0 to t.num_inputs - 1 do
      if iv.(i) then w.(i) <- w.(i) lor bit
    done
  done;
  let lf = Array.init lanes (fun _ -> Array.make t.levels 0) in
  let eval_word pool_opt ci =
    let vals = words.(ci) in
    let base = ci * word_lanes in
    let w_lanes = min word_lanes (lanes - base) in
    for l = 0 to t.levels - 1 do
      let lo = t.level_segs.(l) and hi = t.level_segs.(l + 1) in
      let nseg = hi - lo in
      let record fires =
        for ln = 0 to w_lanes - 1 do
          lf.(base + ln).(l) <- lf.(base + ln).(l) + fires.(ln)
        done
      in
      match pool_opt with
      | Some pool when Pool.size pool > 1 && nseg > 1 ->
          let nchunks = min nseg (4 * Pool.size pool) in
          let partial = Array.make nchunks [||] in
          Pool.run pool ~chunks:nchunks (fun i ->
              let a, b = chunk_bounds lo nseg nchunks i in
              partial.(i) <- eval_batch_segs ~check t vals ~w_lanes a b);
          Array.iter record partial
      | _ ->
          if nseg > 0 then record (eval_batch_segs ~check t vals ~w_lanes lo hi)
    done
  in
  (match pool with
  | Some p -> Array.iteri (fun ci _ -> eval_word (Some p) ci) words
  | None ->
      if domains <= 1 then Array.iteri (fun ci _ -> eval_word None ci) words
      else
        Pool.with_pool ~domains (fun p ->
            Array.iteri (fun ci _ -> eval_word (Some p) ci) words));
  let b_outputs =
    Array.init lanes (fun v ->
        let w = words.(v / word_lanes) and bit = v mod word_lanes in
        Array.map (fun ow -> (w.(ow) lsr bit) land 1 = 1) t.outputs)
  in
  let b_firings = Array.map (Array.fold_left ( + ) 0) lf in
  {
    b_lanes = lanes;
    b_wordc = wordc;
    b_words = words;
    b_outputs;
    b_firings;
    b_level_firings = lf;
  }

let lanes r = r.b_lanes

let check_lane r lane =
  if lane < 0 || lane >= r.b_lanes then
    invalid_arg (Printf.sprintf "Packed: lane %d out of range" lane)

let batch_outputs r ~lane =
  check_lane r lane;
  r.b_outputs.(lane)

let batch_firings r ~lane =
  check_lane r lane;
  r.b_firings.(lane)

let batch_level_firings r ~lane =
  check_lane r lane;
  r.b_level_firings.(lane)

let batch_value r ~lane w =
  check_lane r lane;
  (r.b_words.(lane / word_lanes).(w) lsr (lane mod word_lanes)) land 1 = 1
