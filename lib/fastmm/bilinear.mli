(** Bilinear fast matrix multiplication algorithms.

    An algorithm [<T,T,T; r>] multiplies two [T x T] matrices with [r]
    scalar multiplications (Section 2.3 of the paper):

    - [M_i = (sum_j u.(i).(j) * A_j) * (sum_j v.(i).(j) * B_j)] for
      [0 <= i < r], where [A_j], [B_j] range over the [T^2] blocks in
      row-major order ([j = p*T + q] for block row [p], block column [q]);
    - [C_j = sum_i w.(j).(i) * M_i].

    Coefficients are arbitrary integers; the paper's main constructions
    assume [{-1,0,1}] and all bundled instances satisfy that, but the
    circuit compiler accepts any integer coefficients (they become gate
    weights, as the paper notes below Definition 2.1). *)

type t = private {
  name : string;
  t_dim : int;  (** T: the base block dimension *)
  rank : int;  (** r: number of scalar multiplications *)
  u : int array array;  (** [r x T^2]: A-side coefficients *)
  v : int array array;  (** [r x T^2]: B-side coefficients *)
  w : int array array;  (** [T^2 x r]: C-side coefficients *)
}

val make :
  name:string ->
  t_dim:int ->
  u:int array array ->
  v:int array array ->
  w:int array array ->
  t
(** Validates all dimensions.  Does {i not} verify algebraic correctness —
    use {!Verify}. *)

val kronecker : ?name:string -> t -> t -> t
(** Kronecker (tensor) product of two algorithms: if [p] multiplies
    [T1 x T1] with [r1] products and [q] multiplies [T2 x T2] with [r2],
    then [kronecker p q] multiplies [T1*T2 x T1*T2] with [r1*r2] — the
    standard way to derive larger base cases.  The combined coefficients
    are products of the factors'.  [name] defaults to ["p x q"].
    {!Tensor.product} and {!Tensor.power} are thin wrappers. *)

val block_index : t -> int -> int -> int
(** [block_index algo p q = p * T + q]; bounds-checked. *)

val block_pos : t -> int -> int * int
(** Inverse of {!block_index}. *)

val omega : t -> float
(** [log_T r], the work exponent of the recursive algorithm. *)

val apply_once : t -> Matrix.t -> Matrix.t -> Matrix.t
(** One level of block recursion: splits the operands into [T x T] blocks,
    forms the [r] products with naive block multiplication, and recombines.
    Operand size must be a positive multiple of [T].  Exercise the U/V/W
    tables directly — used by the verifier and tests. *)

val multiply : ?cutoff:int -> t -> Matrix.t -> Matrix.t -> Matrix.t
(** Full recursive fast multiplication.  Operands must be square of size
    [T^l].  Recursion stops at [cutoff] (default [t_dim]) and falls back
    to naive multiplication. *)

val scalar_multiplications : t -> n:int -> cutoff:int -> int
(** Number of scalar multiplications the recursion performs on [n x n]
    operands: [r^(levels) * cutoff'^3] accounting. *)

val pp : Format.formatter -> t -> unit
(** Prints the algorithm's defining expressions in the style of the
    paper's Figure 1. *)
