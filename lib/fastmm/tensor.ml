let product ~name (p : Bilinear.t) (q : Bilinear.t) = Bilinear.kronecker ~name p q

let power ~name a k =
  if k < 1 then invalid_arg "Tensor.power: k < 1";
  let rec go acc k = if k = 1 then acc else go (product ~name acc a) (k - 1) in
  go a k
