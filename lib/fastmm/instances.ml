let naive ~t_dim =
  if t_dim < 1 then invalid_arg "Instances.naive: t_dim < 1";
  let t = t_dim in
  let t2 = t * t in
  let rank = t * t * t in
  (* Multiplication index (i, k, j) |-> A_(i,k) * B_(k,j), contributing to
     C_(i,j). *)
  let u = Array.make_matrix rank t2 0 in
  let v = Array.make_matrix rank t2 0 in
  let w = Array.make_matrix t2 rank 0 in
  let m = ref 0 in
  for i = 0 to t - 1 do
    for k = 0 to t - 1 do
      for j = 0 to t - 1 do
        u.(!m).((i * t) + k) <- 1;
        v.(!m).((k * t) + j) <- 1;
        w.((i * t) + j).(!m) <- 1;
        incr m
      done
    done
  done;
  Bilinear.make ~name:(Printf.sprintf "naive-%d" t) ~t_dim:t ~u ~v ~w

(* Strassen's algorithm, coefficient-for-coefficient from Figure 1 of the
   paper.  Blocks in row-major order: A11 A12 A21 A22. *)
let strassen =
  Bilinear.make ~name:"strassen" ~t_dim:2
    ~u:
      [|
        [| 1; 0; 0; 0 |] (* M1: A11 *);
        [| 0; 0; 1; 1 |] (* M2: A21 + A22 *);
        [| 1; 0; 0; 1 |] (* M3: A11 + A22 *);
        [| 0; 0; 0; 1 |] (* M4: A22 *);
        [| 1; 1; 0; 0 |] (* M5: A11 + A12 *);
        [| -1; 0; 1; 0 |] (* M6: A21 - A11 *);
        [| 0; 1; 0; -1 |] (* M7: A12 - A22 *);
      |]
    ~v:
      [|
        [| 0; 1; 0; -1 |] (* M1: B12 - B22 *);
        [| 1; 0; 0; 0 |] (* M2: B11 *);
        [| 1; 0; 0; 1 |] (* M3: B11 + B22 *);
        [| -1; 0; 1; 0 |] (* M4: B21 - B11 *);
        [| 0; 0; 0; 1 |] (* M5: B22 *);
        [| 1; 1; 0; 0 |] (* M6: B11 + B12 *);
        [| 0; 0; 1; 1 |] (* M7: B21 + B22 *);
      |]
    ~w:
      [|
        [| 0; 0; 1; 1; -1; 0; 1 |] (* C11 = M3 + M4 - M5 + M7 *);
        [| 1; 0; 0; 0; 1; 0; 0 |] (* C12 = M1 + M5 *);
        [| 0; 1; 0; 1; 0; 0; 0 |] (* C21 = M2 + M4 *);
        [| 1; -1; 1; 0; 0; 1; 0 |] (* C22 = M1 - M2 + M3 + M6 *);
      |]

(* Winograd's 15-addition variant of Strassen.  With S1 = A21 + A22,
   S2 = S1 - A11, S3 = A11 - A21, S4 = A12 - S2 and T1 = B12 - B11,
   T2 = B22 - T1, T3 = B22 - B12, T4 = T2 - B21:
     M1 = A11 B11, M2 = A12 B21, M3 = S4 B22, M4 = A22 T4,
     M5 = S1 T1, M6 = S2 T2, M7 = S3 T3
     C11 = M1 + M2, C12 = M1 + M3 + M5 + M6,
     C21 = M1 - M4 + M6 + M7, C22 = M1 + M5 + M6 + M7. *)
let winograd =
  Bilinear.make ~name:"winograd" ~t_dim:2
    ~u:
      [|
        [| 1; 0; 0; 0 |] (* A11 *);
        [| 0; 1; 0; 0 |] (* A12 *);
        [| 1; 1; -1; -1 |] (* S4 = A11 + A12 - A21 - A22 *);
        [| 0; 0; 0; 1 |] (* A22 *);
        [| 0; 0; 1; 1 |] (* S1 = A21 + A22 *);
        [| -1; 0; 1; 1 |] (* S2 = A21 + A22 - A11 *);
        [| 1; 0; -1; 0 |] (* S3 = A11 - A21 *);
      |]
    ~v:
      [|
        [| 1; 0; 0; 0 |] (* B11 *);
        [| 0; 0; 1; 0 |] (* B21 *);
        [| 0; 0; 0; 1 |] (* B22 *);
        [| 1; -1; -1; 1 |] (* T4 = B11 - B12 - B21 + B22 *);
        [| -1; 1; 0; 0 |] (* T1 = B12 - B11 *);
        [| 1; -1; 0; 1 |] (* T2 = B11 - B12 + B22 *);
        [| 0; -1; 0; 1 |] (* T3 = B22 - B12 *);
      |]
    ~w:
      [|
        [| 1; 1; 0; 0; 0; 0; 0 |] (* C11 *);
        [| 1; 0; 1; 0; 1; 1; 0 |] (* C12 *);
        [| 1; 0; 0; -1; 0; 1; 1 |] (* C21 *);
        [| 1; 0; 0; 0; 1; 1; 1 |] (* C22 *);
      |]

(* Laderman's <3,3,3;23> algorithm (Laderman 1976), blocks row-major
   A11..A33 / B11..B33.  All 23 products below are verified exactly
   against the <3,3,3> matmul tensor by Verify.exact in the test suite;
   every U/V/W side has exactly 51 nonzero coefficients.  The table is
   symmetric under simultaneously swapping rows 2<->3 of A, columns
   2<->3 of B and rows+columns 2<->3 of C (m2<->m8, m3<->m11, m4<->m7,
   m5<->m9, m12<->m16, m13<->m17, m15<->m18, m20<->m23, m21<->m22,
   m1<->m10), which cross-checks the transcription. *)
let laderman =
  let u =
    [|
      [| 1; 1; 1; -1; -1; 0; 0; -1; -1 |] (* M1 *);
      [| 1; 0; 0; -1; 0; 0; 0; 0; 0 |] (* M2: A11 - A21 *);
      [| 0; 0; 0; 0; 1; 0; 0; 0; 0 |] (* M3: A22 *);
      [| -1; 0; 0; 1; 1; 0; 0; 0; 0 |] (* M4: -A11 + A21 + A22 *);
      [| 0; 0; 0; 1; 1; 0; 0; 0; 0 |] (* M5: A21 + A22 *);
      [| 1; 0; 0; 0; 0; 0; 0; 0; 0 |] (* M6: A11 *);
      [| -1; 0; 0; 0; 0; 0; 1; 1; 0 |] (* M7: -A11 + A31 + A32 *);
      [| -1; 0; 0; 0; 0; 0; 1; 0; 0 |] (* M8: -A11 + A31 *);
      [| 0; 0; 0; 0; 0; 0; 1; 1; 0 |] (* M9: A31 + A32 *);
      [| 1; 1; 1; 0; -1; -1; -1; -1; 0 |] (* M10 *);
      [| 0; 0; 0; 0; 0; 0; 0; 1; 0 |] (* M11: A32 *);
      [| 0; 0; -1; 0; 0; 0; 0; 1; 1 |] (* M12: -A13 + A32 + A33 *);
      [| 0; 0; 1; 0; 0; 0; 0; 0; -1 |] (* M13: A13 - A33 *);
      [| 0; 0; 1; 0; 0; 0; 0; 0; 0 |] (* M14: A13 *);
      [| 0; 0; 0; 0; 0; 0; 0; 1; 1 |] (* M15: A32 + A33 *);
      [| 0; 0; -1; 0; 1; 1; 0; 0; 0 |] (* M16: -A13 + A22 + A23 *);
      [| 0; 0; 1; 0; 0; -1; 0; 0; 0 |] (* M17: A13 - A23 *);
      [| 0; 0; 0; 0; 1; 1; 0; 0; 0 |] (* M18: A22 + A23 *);
      [| 0; 1; 0; 0; 0; 0; 0; 0; 0 |] (* M19: A12 *);
      [| 0; 0; 0; 0; 0; 1; 0; 0; 0 |] (* M20: A23 *);
      [| 0; 0; 0; 1; 0; 0; 0; 0; 0 |] (* M21: A21 *);
      [| 0; 0; 0; 0; 0; 0; 1; 0; 0 |] (* M22: A31 *);
      [| 0; 0; 0; 0; 0; 0; 0; 0; 1 |] (* M23: A33 *);
    |]
  in
  let v =
    [|
      [| 0; 0; 0; 0; 1; 0; 0; 0; 0 |] (* M1: B22 *);
      [| 0; -1; 0; 0; 1; 0; 0; 0; 0 |] (* M2: -B12 + B22 *);
      [| -1; 1; 0; 1; -1; -1; -1; 0; 1 |] (* M3 *);
      [| 1; -1; 0; 0; 1; 0; 0; 0; 0 |] (* M4: B11 - B12 + B22 *);
      [| -1; 1; 0; 0; 0; 0; 0; 0; 0 |] (* M5: -B11 + B12 *);
      [| 1; 0; 0; 0; 0; 0; 0; 0; 0 |] (* M6: B11 *);
      [| 1; 0; -1; 0; 0; 1; 0; 0; 0 |] (* M7: B11 - B13 + B23 *);
      [| 0; 0; 1; 0; 0; -1; 0; 0; 0 |] (* M8: B13 - B23 *);
      [| -1; 0; 1; 0; 0; 0; 0; 0; 0 |] (* M9: -B11 + B13 *);
      [| 0; 0; 0; 0; 0; 1; 0; 0; 0 |] (* M10: B23 *);
      [| -1; 0; 1; 1; -1; -1; -1; 1; 0 |] (* M11 *);
      [| 0; 0; 0; 0; 1; 0; 1; -1; 0 |] (* M12: B22 + B31 - B32 *);
      [| 0; 0; 0; 0; 1; 0; 0; -1; 0 |] (* M13: B22 - B32 *);
      [| 0; 0; 0; 0; 0; 0; 1; 0; 0 |] (* M14: B31 *);
      [| 0; 0; 0; 0; 0; 0; -1; 1; 0 |] (* M15: -B31 + B32 *);
      [| 0; 0; 0; 0; 0; 1; 1; 0; -1 |] (* M16: B23 + B31 - B33 *);
      [| 0; 0; 0; 0; 0; 1; 0; 0; -1 |] (* M17: B23 - B33 *);
      [| 0; 0; 0; 0; 0; 0; -1; 0; 1 |] (* M18: -B31 + B33 *);
      [| 0; 0; 0; 1; 0; 0; 0; 0; 0 |] (* M19: B21 *);
      [| 0; 0; 0; 0; 0; 0; 0; 1; 0 |] (* M20: B32 *);
      [| 0; 0; 1; 0; 0; 0; 0; 0; 0 |] (* M21: B13 *);
      [| 0; 1; 0; 0; 0; 0; 0; 0; 0 |] (* M22: B12 *);
      [| 0; 0; 0; 0; 0; 0; 0; 0; 1 |] (* M23: B33 *);
    |]
  in
  (* C entries are plain sums of products (all W coefficients are +1). *)
  let c_terms =
    [|
      [ 6; 14; 19 ] (* C11 *);
      [ 1; 4; 5; 6; 12; 14; 15 ] (* C12 *);
      [ 6; 7; 9; 10; 14; 16; 18 ] (* C13 *);
      [ 2; 3; 4; 6; 14; 16; 17 ] (* C21 *);
      [ 2; 4; 5; 6; 20 ] (* C22 *);
      [ 14; 16; 17; 18; 21 ] (* C23 *);
      [ 6; 7; 8; 11; 12; 13; 14 ] (* C31 *);
      [ 12; 13; 14; 15; 22 ] (* C32 *);
      [ 6; 7; 8; 9; 23 ] (* C33 *);
    |]
  in
  let w = Array.make_matrix 9 23 0 in
  Array.iteri (fun j ms -> List.iter (fun m -> w.(j).(m - 1) <- 1) ms) c_terms;
  Bilinear.make ~name:"laderman" ~t_dim:3 ~u ~v ~w

(* Derived generically: the hand-written Kronecker square this replaced
   is pinned equal by a regression test. *)
let strassen_squared = Bilinear.kronecker ~name:"strassen^2" strassen strassen

let all () =
  [
    naive ~t_dim:2;
    naive ~t_dim:3;
    strassen;
    winograd;
    strassen_squared;
    laderman;
  ]
