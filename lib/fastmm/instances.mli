(** Bundled fast matrix multiplication algorithms.

    All instances are verified exactly by the test suite via
    {!Verify.exact}. *)

val naive : t_dim:int -> Bilinear.t
(** The definitional algorithm [<T,T,T; T^3>]: one multiplication per
    [(i,k,j)] triple.  Requires [t_dim >= 1]. *)

val strassen : Bilinear.t
(** Strassen's [<2,2,2;7>] algorithm, exactly as printed in the paper's
    Figure 1.  Sparsity profile (Definition 2.1): [s_A = s_B = s_C = 12],
    so [alpha = 7/12], [beta = 3], [gamma ~ 0.491]. *)

val winograd : Bilinear.t
(** The Winograd variant of Strassen's algorithm ([<2,2,2;7>] with 15
    additions).  Same rank as Strassen but strictly worse sparsity
    ([s = 14] vs [12]) — the ablation benchmark E6 uses this to show the
    paper's gate bound really depends on sparsity, not only rank. *)

val strassen_squared : Bilinear.t
(** [strassen ⊗ strassen]: a [<4,4,4;49>] algorithm (same omega, larger
    base case — fewer circuit levels per leaf depth).  Derived via
    {!Bilinear.kronecker}. *)

val laderman : Bilinear.t
(** Laderman's [<3,3,3;23>] algorithm — the base-3 point of the
    algorithm matrix ([omega ~ 2.854]).  [s_A = s_B = s_C = 51], so the
    rank beats naive-3's 27 while the linear layers are much denser than
    Strassen's; its Theorem 4.5 constants come straight out of
    {!Sparsity.analyze}. *)

val all : unit -> Bilinear.t list
(** The instances above (with [naive] at [T = 2] and [T = 3]), in a
    stable presentation order for tables. *)
