module Checked = Tcmm_util.Checked

type plan = Flat | Split of { d1 : int }

let pp_plan ppf = function
  | Flat -> Format.fprintf ppf "flat"
  | Split { d1 } -> Format.fprintf ppf "split@%d" d1

let splits ~delta = List.init (max 0 (delta - 1)) (fun i -> i + 1)

let choose ~flat ~splits =
  fst
    (List.fold_left
       (fun (bp, bc) (d1, c) -> if c < bc then (Split { d1 }, c) else (bp, bc))
       (Flat, flat) splits)

(* Per product path of length [delta], the (coefficient, block path id)
   list of the Kronecker power's nonzero entries — the offset-free twin
   of [Sum_tree.expansions], used for the coarse stage of a factored
   step (block path ids index the partial sums instead of offsets). *)
let path_expansions ~coeffs ~t_dim ~delta =
  let r = Array.length coeffs in
  let t2 = t_dim * t_dim in
  let result = Array.make (Checked.pow r delta) [] in
  let rec go level path_id exp =
    if level = delta then result.(path_id) <- exp
    else
      for i = 0 to r - 1 do
        let exp' =
          List.concat_map
            (fun (c, bid) ->
              let acc = ref [] in
              Array.iteri
                (fun j w ->
                  if w <> 0 then acc := (Checked.mul c w, (bid * t2) + j) :: !acc)
                coeffs.(i);
              List.rev !acc)
            exp
        in
        go (level + 1) ((path_id * r) + i) exp'
      done
  in
  go 0 0 [ (1, 0) ];
  result

(* (row, col) offset of every length-[delta] block path inside a node of
   dimension [size], indexed by the path read as a base-T^2 numeral. *)
let block_offsets ~t_dim ~delta ~size =
  let t2 = t_dim * t_dim in
  let result = Array.make (Checked.pow t2 delta) (0, 0) in
  let rec go level bid ro co =
    if level = delta then result.(bid) <- (ro, co)
    else begin
      let sub = size / Checked.pow t_dim (level + 1) in
      for j = 0 to t2 - 1 do
        let p = j / t_dim and q = j mod t_dim in
        go (level + 1) ((bid * t2) + j) (ro + (p * sub)) (co + (q * sub))
      done
    end
  in
  go 0 0 0 0;
  result

(* Offset expansions of the flat step, shared with Sum_tree.expansions'
   recursion but kept here so the integer reference below has no circuit
   dependencies. *)
let offset_expansions ~coeffs ~t_dim ~delta ~size =
  let r = Array.length coeffs in
  let result = Array.make (Checked.pow r delta) [] in
  let rec go level path_id exp =
    if level = delta then result.(path_id) <- exp
    else begin
      let sub = size / Checked.pow t_dim (level + 1) in
      for i = 0 to r - 1 do
        let exp' =
          List.concat_map
            (fun (c, ro, co) ->
              let acc = ref [] in
              Array.iteri
                (fun j w ->
                  if w <> 0 then begin
                    let p = j / t_dim and q = j mod t_dim in
                    acc := (Checked.mul c w, ro + (p * sub), co + (q * sub)) :: !acc
                  end)
                coeffs.(i);
              List.rev !acc)
            exp
        in
        go (level + 1) ((path_id * r) + i) exp'
      done
    end
  in
  go 0 0 [ (1, 0, 0) ];
  result

(* Pure-integer evaluation of one delta-step of the sum tree under a
   plan: [apply ~coeffs ~t_dim ~delta ~plan m] returns the r^delta child
   matrices of node [m].  Factored plans stage the computation through
   the coarse-block x fine-path partial sums exactly as the circuit
   emitter does, so the QCheck2 equivalence property pins the factoring
   algebra itself, independently of any circuit machinery. *)
let apply ~coeffs ~t_dim ~delta ~plan (m : Matrix.t) =
  let r = Array.length coeffs in
  let size = Matrix.rows m in
  if Matrix.cols m <> size then invalid_arg "Kronpow.apply: matrix must be square";
  if delta < 1 then invalid_arg "Kronpow.apply: delta < 1";
  if size mod Checked.pow t_dim delta <> 0 then
    invalid_arg "Kronpow.apply: size must be divisible by T^delta";
  let size' = size / Checked.pow t_dim delta in
  let child terms =
    Matrix.init ~rows:size' ~cols:size' (fun x y ->
        List.fold_left
          (fun acc (c, ro, co) ->
            Checked.add acc (Checked.mul c (Matrix.get m (ro + x) (co + y))))
          0 terms)
  in
  match plan with
  | Flat ->
      let exps = offset_expansions ~coeffs ~t_dim ~delta ~size in
      Array.map child exps
  | Split { d1 } ->
      if d1 < 1 || d1 >= delta then invalid_arg "Kronpow.apply: bad split";
      let d2 = delta - d1 in
      let offsets = block_offsets ~t_dim ~delta:d1 ~size in
      let s1 = size / Checked.pow t_dim d1 in
      let fine = offset_expansions ~coeffs ~t_dim ~delta:d2 ~size:s1 in
      let coarse = path_expansions ~coeffs ~t_dim ~delta:d1 in
      let r2 = Checked.pow r d2 in
      let partials = Hashtbl.create 64 in
      let partial j1 p2 =
        match Hashtbl.find_opt partials (j1, p2) with
        | Some z -> z
        | None ->
            let ro1, co1 = offsets.(j1) in
            let z =
              child
                (List.map (fun (c, ro, co) -> (c, ro1 + ro, co1 + co)) fine.(p2))
            in
            Hashtbl.add partials (j1, p2) z;
            z
      in
      Array.init (Checked.pow r delta) (fun p ->
          let p1 = p / r2 and p2 = p mod r2 in
          List.fold_left
            (fun acc (c, j1) -> Matrix.add acc (Matrix.scale c (partial j1 p2)))
            (Matrix.create ~rows:size' ~cols:size')
            coarse.(p1))
