(** Kronecker-power linear-circuit optimization (cf. "Smaller Low-Depth
    Circuits for Kronecker Powers").

    A multi-level sum-tree step applies the Kronecker power [C^{⊗delta}]
    of a coefficient matrix [C] ([r x T^2]) to a node's entries: child
    product path [p] is a weighted sum of [s(p)] ancestor blocks, with
    [sum_p s(p) = s^delta] terms overall (s = total nonzeros of [C]).
    A {e factored} plan splits [delta = d1 + d2] and routes the step
    through partial sums indexed by (coarse block path, fine product
    path): stage A computes [C^{⊗d2}] inside every depth-[d1] coarse
    block ([T^{2*d1} * s^{d2}] terms), stage B combines the partials with
    [C^{⊗d1}] tracked by block-path id ([s^{d1} * r^{d2}] terms).  Values
    are exactly preserved (every stage is an exact integer sum); the win
    is fewer wide threshold sums, which shrinks edges sharply at wider
    entry widths — at the price of extra partial-sum gates and +2 circuit
    depth per factored step.  The emitter in {!Tcmm.Sum_tree} prices both
    shapes with the exact arithmetic mirror
    {!Tcmm_arith.Weighted_sum.to_bits_cost} and only factors when
    [gates + edges] strictly drops, so the rewrite can never grow the
    circuit. *)

type plan = Flat | Split of { d1 : int }

val pp_plan : Format.formatter -> plan -> unit

val splits : delta:int -> int list
(** Candidate coarse depths [d1 = 1 .. delta-1] (empty below [delta = 2]). *)

val choose : flat:int -> splits:(int * int) list -> plan
(** [choose ~flat ~splits] picks the cheapest plan by total cost
    ([splits] pairs each candidate [d1] with its cost); ties and empty
    candidate lists resolve to [Flat]. *)

val path_expansions :
  coeffs:int array array -> t_dim:int -> delta:int -> (int * int) list array
(** Per product path of length [delta] (base-[r] numeral, root digit
    first), the list of (coefficient, block path id) nonzero entries of
    the Kronecker power — the offset-free twin of
    [Sum_tree.expansions]. *)

val block_offsets : t_dim:int -> delta:int -> size:int -> (int * int) array
(** (row, col) offset of each length-[delta] block path inside a node of
    dimension [size], indexed by the path as a base-[T^2] numeral. *)

val offset_expansions :
  coeffs:int array array ->
  t_dim:int ->
  delta:int ->
  size:int ->
  (int * int * int) list array
(** Per product path, the (coefficient, row offset, column offset) terms
    of the flat step — a circuit-free copy of [Sum_tree.expansions] used
    by {!apply}. *)

val apply :
  coeffs:int array array ->
  t_dim:int ->
  delta:int ->
  plan:plan ->
  Matrix.t ->
  Matrix.t array
(** Pure-integer evaluation of one [delta]-step under a plan, staged the
    same way the circuit emitter stages it.  Every plan computes the same
    [r^delta] child matrices — the QCheck2 property that pins the
    factoring algebra. *)
