module Checked = Tcmm_util.Checked
module Ilog = Tcmm_util.Ilog

type t = {
  name : string;
  t_dim : int;
  rank : int;
  u : int array array;
  v : int array array;
  w : int array array;
}

let make ~name ~t_dim ~u ~v ~w =
  if t_dim < 1 then invalid_arg "Bilinear.make: t_dim < 1";
  let t2 = t_dim * t_dim in
  let rank = Array.length u in
  if rank = 0 then invalid_arg "Bilinear.make: empty u";
  let check_rows what m rows cols =
    if Array.length m <> rows then
      invalid_arg (Printf.sprintf "Bilinear.make: %s has %d rows, expected %d" what (Array.length m) rows);
    Array.iter
      (fun r ->
        if Array.length r <> cols then
          invalid_arg (Printf.sprintf "Bilinear.make: %s row width %d, expected %d" what (Array.length r) cols))
      m
  in
  check_rows "u" u rank t2;
  check_rows "v" v rank t2;
  check_rows "w" w t2 rank;
  { name; t_dim; rank; u; v; w }

(* Kronecker (tensor) product: the combined block (p1p2, q1q2)
   decomposes into factor blocks (p1, q1) and (p2, q2); every combined
   coefficient is the product of the factors' coefficients. *)
let kronecker ?name (p : t) (q : t) =
  let t1 = p.t_dim and t2 = q.t_dim in
  let r1 = p.rank and r2 = q.rank in
  let t = Checked.mul t1 t2 in
  let t_sq = t * t in
  let rank = Checked.mul r1 r2 in
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s x %s" p.name q.name
  in
  let factor_indices j =
    let bp = j / t and bq = j mod t in
    let p1 = bp / t2 and p2 = bp mod t2 in
    let q1 = bq / t2 and q2 = bq mod t2 in
    ((p1 * t1) + q1, (p2 * t2) + q2)
  in
  let u = Array.make_matrix rank t_sq 0 in
  let v = Array.make_matrix rank t_sq 0 in
  let w = Array.make_matrix t_sq rank 0 in
  for i1 = 0 to r1 - 1 do
    for i2 = 0 to r2 - 1 do
      let i = (i1 * r2) + i2 in
      for j = 0 to t_sq - 1 do
        let j1, j2 = factor_indices j in
        u.(i).(j) <- Checked.mul p.u.(i1).(j1) q.u.(i2).(j2);
        v.(i).(j) <- Checked.mul p.v.(i1).(j1) q.v.(i2).(j2);
        w.(j).(i) <- Checked.mul p.w.(j1).(i1) q.w.(j2).(i2)
      done
    done
  done;
  make ~name ~t_dim:t ~u ~v ~w

let block_index algo p q =
  if p < 0 || p >= algo.t_dim || q < 0 || q >= algo.t_dim then
    invalid_arg "Bilinear.block_index: out of range";
  (p * algo.t_dim) + q

let block_pos algo j =
  if j < 0 || j >= algo.t_dim * algo.t_dim then
    invalid_arg "Bilinear.block_pos: out of range";
  (j / algo.t_dim, j mod algo.t_dim)

let omega algo = log (float_of_int algo.rank) /. log (float_of_int algo.t_dim)

(* Weighted sum of blocks selected by a coefficient row. *)
let combine_blocks coeffs blocks size =
  let acc = ref (Matrix.create ~rows:size ~cols:size) in
  Array.iteri
    (fun j c ->
      if c <> 0 then acc := Matrix.add !acc (Matrix.scale c blocks.(j)))
    coeffs;
  !acc

let split_blocks algo m size =
  let t = algo.t_dim in
  Array.init (t * t) (fun j ->
      let p, q = block_pos algo j in
      Matrix.sub_block m ~row:(p * size) ~col:(q * size) ~rows:size ~cols:size)

let recombine algo products size =
  let t = algo.t_dim in
  let c = Matrix.create ~rows:(t * size) ~cols:(t * size) in
  Array.iteri
    (fun j coeffs ->
      let p, q = block_pos algo j in
      let block = combine_blocks coeffs products size in
      Matrix.blit_block ~src:block ~dst:c ~row:(p * size) ~col:(q * size))
    algo.w;
  c

let apply_with algo mul_block a b =
  let n = Matrix.rows a in
  if Matrix.cols a <> n || Matrix.rows b <> n || Matrix.cols b <> n then
    invalid_arg "Bilinear.apply: operands must be square and equal-sized";
  if n mod algo.t_dim <> 0 || n = 0 then
    invalid_arg "Bilinear.apply: size must be a positive multiple of t_dim";
  let size = n / algo.t_dim in
  let ablocks = split_blocks algo a size and bblocks = split_blocks algo b size in
  let products =
    Array.init algo.rank (fun i ->
        mul_block (combine_blocks algo.u.(i) ablocks size)
          (combine_blocks algo.v.(i) bblocks size))
  in
  recombine algo products size

let apply_once algo a b = apply_with algo Matrix.mul a b

let multiply ?cutoff algo a b =
  let cutoff = match cutoff with None -> algo.t_dim | Some c -> max c 1 in
  let n = Matrix.rows a in
  if not (Ilog.is_pow ~base:algo.t_dim n) then
    invalid_arg "Bilinear.multiply: size must be a power of t_dim";
  let rec go a b =
    let n = Matrix.rows a in
    if n <= cutoff then Matrix.mul a b else apply_with algo go a b
  in
  go a b

let scalar_multiplications algo ~n ~cutoff =
  if not (Ilog.is_pow ~base:algo.t_dim n) then
    invalid_arg "Bilinear.scalar_multiplications: size must be a power of t_dim";
  let rec go n =
    if n <= cutoff then Checked.mul n (Checked.mul n n)
    else Checked.mul algo.rank (go (n / algo.t_dim))
  in
  go n

let pp_terms ppf ~coeffs ~term =
  let first = ref true in
  Array.iteri
    (fun j c ->
      if c <> 0 then begin
        if c > 0 && not !first then Format.fprintf ppf " + "
        else if c < 0 then Format.fprintf ppf (if !first then "-" else " - ");
        let mag = abs c in
        if mag <> 1 then Format.fprintf ppf "%d*" mag;
        Format.fprintf ppf "%s" (term j);
        first := false
      end)
    coeffs;
  if !first then Format.fprintf ppf "0"

let pp_linear ppf ~coeffs ~sym ~t =
  pp_terms ppf ~coeffs ~term:(fun j ->
      Printf.sprintf "%s%d%d" sym ((j / t) + 1) ((j mod t) + 1))

let pp ppf algo =
  Format.fprintf ppf "@[<v>%s: <%d,%d,%d; %d>@," algo.name algo.t_dim algo.t_dim
    algo.t_dim algo.rank;
  Array.iteri
    (fun i ucoeffs ->
      Format.fprintf ppf "M%d = (" (i + 1);
      pp_linear ppf ~coeffs:ucoeffs ~sym:"A" ~t:algo.t_dim;
      Format.fprintf ppf ")(";
      pp_linear ppf ~coeffs:algo.v.(i) ~sym:"B" ~t:algo.t_dim;
      Format.fprintf ppf ")@,")
    algo.u;
  Array.iteri
    (fun j coeffs ->
      let p, q = (j / algo.t_dim, j mod algo.t_dim) in
      Format.fprintf ppf "C%d%d = " (p + 1) (q + 1);
      pp_terms ppf ~coeffs ~term:(fun i -> Printf.sprintf "M%d" (i + 1));
      Format.fprintf ppf "@,")
    algo.w;
  Format.fprintf ppf "@]"
