(** Growable integer vectors.

    The circuit builder appends one depth entry per wire; circuits reach
    tens of millions of wires in count-only sweeps, so this is a flat
    [int array] with amortized doubling rather than a list or a boxed
    structure. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> int -> unit

val push_array : t -> int array -> unit
(** Appends a whole array in one blit — the template stamper pushes a
    precomputed per-gate depth block per instance, so this is on the
    construction fast path. *)

val get : t -> int -> int
(** Raises [Invalid_argument] when out of bounds. *)

val clear : t -> unit
(** Resets the length to 0, keeping the capacity — the incremental
    evaluator drains and refills its per-level dirty queues on every
    update, so dropping the storage would churn the allocator. *)

val set : t -> int -> int -> unit
val to_array : t -> int array
val fold_left : ('a -> int -> 'a) -> 'a -> t -> 'a
