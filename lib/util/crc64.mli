(** CRC-64 checksums (the "XZ" parameterization: polynomial
    [0x42F0E1EBA9EA3693] reflected, init/xorout all-ones) for the
    artifact store's header and payload integrity checks.

    OCaml's native [int] is 63 bits wide, so a digest is carried as two
    32-bit halves packed in ordinary ints — every operation stays
    unboxed.  Two feeding granularities are provided: byte streams (for
    headers, exact CRC-64/XZ over the bytes) and {i word} streams, where
    each 63-bit int contributes its eight little-endian bytes (bit 63
    reads as zero).  The word path runs slicing-by-8 — one table round
    per word instead of per byte — which is what makes whole-payload
    verification cheap enough to sit on the circuit warm-load path. *)

type t = private { hi : int; lo : int }
(** A running digest; [hi]/[lo] are the high/low 32 bits. *)

val init : t
(** The empty-message running state. *)

val feed_string : t -> string -> t
(** Byte-wise update over a whole string. *)

val feed_bytes : t -> Bytes.t -> pos:int -> len:int -> t
(** Byte-wise update over [len] bytes of [b] starting at [pos].
    Raises [Invalid_argument] on an out-of-bounds range. *)

val feed_word : t -> int -> t
(** Update with the eight little-endian bytes of [w]'s 63-bit value
    (bit 63 is fed as zero).  Equal to {!feed_bytes} over those bytes —
    the test suite checks the equivalence exhaustively. *)

val feed_ivec :
  t ->
  (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t ->
  pos:int ->
  len:int ->
  t
(** {!feed_word} over [len] consecutive elements starting at [pos],
    with the table lookups inlined into one tight loop.  Raises
    [Invalid_argument] on an out-of-bounds range. *)

val digest : t -> int * int
(** Finalize: the [(hi, lo)] 32-bit halves of the checksum. *)

val to_hex : int * int -> string
(** 16-digit lowercase hex of a finalized digest. *)

val equal : int * int -> int * int -> bool
