(** A monotonic (non-decreasing) clock for timers and deadlines.

    Timer arithmetic on the raw wall clock breaks when the clock is
    stepped backwards: every armed deadline appears overdue at once.
    [now] reads {!Unix.gettimeofday} and clamps the result to be
    non-decreasing across the whole process, so durations computed as
    differences of [now] readings never go negative and deadlines never
    fire early after a backward step.  Readings are only meaningful
    relative to each other, not as absolute times of day. *)

val now : unit -> float
(** Seconds; non-decreasing across every caller in the process
    (thread- and domain-safe). *)
