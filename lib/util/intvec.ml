type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () = { data = Array.make (max capacity 1) 0; len = 0 }
let length t = t.len

let ensure t n =
  if n > Array.length t.data then begin
    let cap = max n (2 * Array.length t.data) in
    let data = Array.make cap 0 in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let push_array t a =
  let n = Array.length a in
  ensure t (t.len + n);
  Array.blit a 0 t.data t.len n;
  t.len <- t.len + n

let check t i name =
  if i < 0 || i >= t.len then invalid_arg (Printf.sprintf "Intvec.%s: index %d/%d" name i t.len)

let get t i =
  check t i "get";
  t.data.(i)

let set t i x =
  check t i "set";
  t.data.(i) <- x

let clear t = t.len <- 0
let to_array t = Array.sub t.data 0 t.len

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc
