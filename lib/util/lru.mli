(** A small keyed LRU cache with hit/miss/eviction counters.

    Backs the compiled-circuit caches: {!Tcmm_threshold.Engine} keys
    compiled [Packed.t] forms by circuit identity, and the serving
    daemon's [Circuit_cache] keys whole built drivers by request spec.
    Capacities are small (tens of entries), so the store is a
    most-recently-used-first association list — O(capacity) per lookup,
    which is noise next to the cost of compiling a circuit. *)

type ('k, 'v) t

type stats = {
  hits : int;
  misses : int;  (** lookups that found nothing (counted by {!find} / {!find_or_add}) *)
  evictions : int;  (** entries dropped because the cache was full *)
  size : int;
  capacity : int;
}

val create : capacity:int -> ?equal:('k -> 'k -> bool) -> unit -> ('k, 'v) t
(** [equal] defaults to structural [( = )].  Raises [Invalid_argument]
    when [capacity < 1]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Promotes the entry to most-recently-used; counts a hit or a miss. *)

val find_or_add : ('k, 'v) t -> 'k -> create:(unit -> 'v) -> 'v
(** {!find}, or insert [create ()] (evicting the least-recently-used
    entry when full).  If [create] raises, nothing is inserted. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace without touching the hit/miss counters (a
    replacement is not an eviction; a capacity drop is). *)

val mem : ('k, 'v) t -> 'k -> bool
(** No counter or recency effect. *)

val stats : ('k, 'v) t -> stats
val clear : ('k, 'v) t -> unit
(** Drops all entries (not counted as evictions); counters survive. *)

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Most-recently-used first. *)
