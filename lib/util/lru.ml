type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

type ('k, 'v) t = {
  capacity : int;
  equal : 'k -> 'k -> bool;
  mutable items : ('k * 'v) list;  (* most-recently-used first *)
  mutable size : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity ?(equal = ( = )) () =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
  { capacity; equal; items = []; size = 0; hits = 0; misses = 0; evictions = 0 }

(* Splits out the entry for [k], if present. *)
let take t k =
  let rec go acc = function
    | [] -> None
    | ((k', _) as entry) :: rest when t.equal k k' ->
        Some (entry, List.rev_append acc rest)
    | entry :: rest -> go (entry :: acc) rest
  in
  go [] t.items

let find t k =
  match take t k with
  | Some ((_, v) as entry, rest) ->
      t.hits <- t.hits + 1;
      t.items <- entry :: rest;
      Some v
  | None ->
      t.misses <- t.misses + 1;
      None

(* Drops the least-recently-used entry; [t.items] must be non-empty. *)
let evict_last t =
  t.items <- List.filteri (fun i _ -> i < t.size - 1) t.items;
  t.size <- t.size - 1;
  t.evictions <- t.evictions + 1

let insert t k v =
  if t.size >= t.capacity then evict_last t;
  t.items <- (k, v) :: t.items;
  t.size <- t.size + 1

let find_or_add t k ~create =
  match find t k with
  | Some v -> v
  | None ->
      let v = create () in
      insert t k v;
      v

let add t k v =
  match take t k with
  | Some (_, rest) -> t.items <- (k, v) :: rest
  | None -> insert t k v

let mem t k = List.exists (fun (k', _) -> t.equal k k') t.items

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    size = t.size;
    capacity = t.capacity;
  }

let clear t =
  t.items <- [];
  t.size <- 0

let to_list t = t.items
