(* CRC-64/XZ with the 64-bit register split into two 32-bit halves so
   the whole computation runs in unboxed native ints (OCaml ints are 63
   bits — one bit short).  A right-shift-by-8 of the register moves the
   low byte of [hi] into the top byte of [lo]; everything else is table
   lookups and xors. *)

type t = { hi : int; lo : int }

let mask32 = 0xFFFFFFFF

(* Reflected form of the ECMA-182 polynomial 0x42F0E1EBA9EA3693. *)
let poly_hi = 0xC96C5795
let poly_lo = 0xD7870F42

(* Base byte table: t0_hi/t0_lo.(b) is the CRC register after absorbing
   byte [b] into a zero register. *)
let t0_hi = Array.make 256 0
let t0_lo = Array.make 256 0

(* Slicing-by-8: t_hi/t_lo.(k * 256 + b) is the base entry for [b]
   shifted right by [k] further bytes (k = 0 is the base table).  One
   flat array per half keeps the eight tables on adjacent cache lines. *)
let t_hi = Array.make (8 * 256) 0
let t_lo = Array.make (8 * 256) 0

let () =
  for b = 0 to 255 do
    let hi = ref 0 and lo = ref b in
    for _ = 1 to 8 do
      let odd = !lo land 1 = 1 in
      lo := (!lo lsr 1) lor ((!hi land 1) lsl 31);
      hi := !hi lsr 1;
      if odd then begin
        hi := !hi lxor poly_hi;
        lo := !lo lxor poly_lo
      end
    done;
    t0_hi.(b) <- !hi;
    t0_lo.(b) <- !lo;
    t_hi.(b) <- !hi;
    t_lo.(b) <- !lo
  done;
  for k = 1 to 7 do
    for b = 0 to 255 do
      let hi = t_hi.(((k - 1) * 256) + b) and lo = t_lo.(((k - 1) * 256) + b) in
      let idx = lo land 0xff in
      let lo' = (lo lsr 8) lor ((hi land 0xff) lsl 24) in
      let hi' = hi lsr 8 in
      t_hi.((k * 256) + b) <- hi' lxor t0_hi.(idx);
      t_lo.((k * 256) + b) <- lo' lxor t0_lo.(idx)
    done
  done

let init = { hi = mask32; lo = mask32 }

let[@inline] feed_byte hi lo byte =
  let idx = (lo lxor byte) land 0xff in
  let lo' = (lo lsr 8) lor ((hi land 0xff) lsl 24) in
  let hi' = hi lsr 8 in
  (hi' lxor Array.unsafe_get t0_hi idx, lo' lxor Array.unsafe_get t0_lo idx)

let feed_bytes t b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc64.feed_bytes: range out of bounds";
  let hi = ref t.hi and lo = ref t.lo in
  for i = pos to pos + len - 1 do
    let h, l = feed_byte !hi !lo (Char.code (Bytes.unsafe_get b i)) in
    hi := h;
    lo := l
  done;
  { hi = !hi; lo = !lo }

let feed_string t s =
  feed_bytes t (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

(* One slicing-by-8 round: absorb the eight little-endian bytes of
   [w]'s 63-bit value in a single table pass. *)
let[@inline] word_round hi lo w =
  let x_lo = lo lxor (w land mask32) in
  let x_hi = hi lxor (w lsr 32) in
  let i7 = x_lo land 0xff
  and i6 = (x_lo lsr 8) land 0xff
  and i5 = (x_lo lsr 16) land 0xff
  and i4 = (x_lo lsr 24) land 0xff
  and i3 = x_hi land 0xff
  and i2 = (x_hi lsr 8) land 0xff
  and i1 = (x_hi lsr 16) land 0xff
  and i0 = (x_hi lsr 24) land 0xff in
  let hi' =
    Array.unsafe_get t_hi (0x700 + i7)
    lxor Array.unsafe_get t_hi (0x600 + i6)
    lxor Array.unsafe_get t_hi (0x500 + i5)
    lxor Array.unsafe_get t_hi (0x400 + i4)
    lxor Array.unsafe_get t_hi (0x300 + i3)
    lxor Array.unsafe_get t_hi (0x200 + i2)
    lxor Array.unsafe_get t_hi (0x100 + i1)
    lxor Array.unsafe_get t_hi i0
  and lo' =
    Array.unsafe_get t_lo (0x700 + i7)
    lxor Array.unsafe_get t_lo (0x600 + i6)
    lxor Array.unsafe_get t_lo (0x500 + i5)
    lxor Array.unsafe_get t_lo (0x400 + i4)
    lxor Array.unsafe_get t_lo (0x300 + i3)
    lxor Array.unsafe_get t_lo (0x200 + i2)
    lxor Array.unsafe_get t_lo (0x100 + i1)
    lxor Array.unsafe_get t_lo i0
  in
  (hi', lo')

let feed_word t w =
  let hi, lo = word_round t.hi t.lo w in
  { hi; lo }

let feed_ivec t (v : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t)
    ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bigarray.Array1.dim v then
    invalid_arg "Crc64.feed_ivec: range out of bounds";
  (* [word_round] unrolled by hand: returning a tuple per element would
     allocate on the non-flambda compiler and halve throughput on the
     warm-load verification path. *)
  let hi = ref t.hi and lo = ref t.lo in
  for i = pos to pos + len - 1 do
    (* No masking: [lsr]/[land mask32] below already read the 63-bit
       pattern with bit 63 as zero.  Masking with [max_int] here would
       clear the {e sign} bit (bit 62) and blind the checksum to the
       one corruption that flips a stored value's sign. *)
    let w = Bigarray.Array1.unsafe_get v i in
    let x_lo = !lo lxor (w land mask32) in
    let x_hi = !hi lxor (w lsr 32) in
    let i7 = x_lo land 0xff
    and i6 = (x_lo lsr 8) land 0xff
    and i5 = (x_lo lsr 16) land 0xff
    and i4 = (x_lo lsr 24) land 0xff
    and i3 = x_hi land 0xff
    and i2 = (x_hi lsr 8) land 0xff
    and i1 = (x_hi lsr 16) land 0xff
    and i0 = (x_hi lsr 24) land 0xff in
    hi :=
      Array.unsafe_get t_hi (0x700 + i7)
      lxor Array.unsafe_get t_hi (0x600 + i6)
      lxor Array.unsafe_get t_hi (0x500 + i5)
      lxor Array.unsafe_get t_hi (0x400 + i4)
      lxor Array.unsafe_get t_hi (0x300 + i3)
      lxor Array.unsafe_get t_hi (0x200 + i2)
      lxor Array.unsafe_get t_hi (0x100 + i1)
      lxor Array.unsafe_get t_hi i0;
    lo :=
      Array.unsafe_get t_lo (0x700 + i7)
      lxor Array.unsafe_get t_lo (0x600 + i6)
      lxor Array.unsafe_get t_lo (0x500 + i5)
      lxor Array.unsafe_get t_lo (0x400 + i4)
      lxor Array.unsafe_get t_lo (0x300 + i3)
      lxor Array.unsafe_get t_lo (0x200 + i2)
      lxor Array.unsafe_get t_lo (0x100 + i1)
      lxor Array.unsafe_get t_lo i0
  done;
  { hi = !hi; lo = !lo }

let digest t = (t.hi lxor mask32, t.lo lxor mask32)
let to_hex (hi, lo) = Printf.sprintf "%08x%08x" (hi land mask32) (lo land mask32)
let equal (ahi, alo) (bhi, blo) = ahi = bhi && alo = blo
