(* No monotonic clock is exposed by the unix library this build pins,
   so monotonicity is enforced by construction: readings are clamped to
   be non-decreasing process-wide.  A backward wall-clock step (NTP,
   manual adjustment) therefore freezes [now] until real time catches
   up instead of firing every timer in the past; a forward step is
   indistinguishable from elapsed time, which only shortens timeouts. *)

let last = Atomic.make neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  let rec clamp () =
    let prev = Atomic.get last in
    if t <= prev then prev
    else if Atomic.compare_and_set last prev t then t
    else clamp ()
  in
  clamp ()
