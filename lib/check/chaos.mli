(** Chaos and soak harness for the serving stack.

    Drives real forked [Tcmm_server.Server] processes over loopback TCP
    while injecting transport faults {e below} the client library —
    truncated frames, single-bit payload corruption, mid-frame stalls,
    connection resets, swapped pipelined frames — plus process-level
    faults: a mid-soak [SIGKILL]-and-restart and a [SIGTERM] drain with
    an in-flight burst.  Three segments run in sequence:

    + {b Fault soak}: [requests] matmul requests, each independently
      faulted with probability [fault_rate]; one kill-and-restart at the
      midpoint; finishes with a quiescent metrics-accounting check and a
      SIGTERM drain whose exit is watchdog-enforced.
    + {b Overload}: a single-write pipelined burst against
      [max_pending = 8]; sheds must interleave with completions, every
      completed product must multiset-match a request, and every shed
      request must complete on sequential re-issue.
    + {b Deadline}: lone requests against [flush_ms >> deadline_ms] must
      expire with {!Tcmm_server.Protocol.Deadline_exceeded}; a
      batch-filling burst must dispatch and complete bit-exactly.

    With [workers > 1], {!run} instead soaks a forked
    {!Tcmm_server.Fleet} supervisor: requests route through the
    spec-affinity {!Tcmm_server.Client.Pool} over the fleet's worker
    endpoints while random workers are SIGKILLed at [fault_rate]
    (including one mid-pipelined-burst), and the run ends with the
    fleet-wide accounting checks — summed worker metrics and the
    control-plane aggregate both satisfying
    [accepted = run_requests + deadline_expired + eval_failures] — and
    a supervisor SIGTERM drain.

    The harness asserts, for every request it ever sends: the reply is
    either bit-identical to {!Tcmm.Matmul_circuit.run} on the decoded
    request, or a {e typed} failure — never a hang (every read is
    deadline-bounded) and never a silent loss (client-side conservation
    [sent = completed + typed failures] is checked at the end).

    Everything is driven by one seeded {!Tcmm_util.Prng} stream, so a
    failing run is reproducible from its seed.  The harness forks; like
    the rest of [lib/check] it must run before any code spawns domains,
    and all oracle evaluation is sequential. *)

type outcome = {
  seed : int;
  requests : int;  (** logical requests issued across all segments *)
  completed : int;  (** answered with a result *)
  verified : int;  (** completed responses checked bit-identical to the oracle *)
  typed_failures : int;  (** requests resolved by a typed client failure *)
  watchdog_timeouts : int;  (** reads cut off by the client watchdog *)
  faults_injected : int;
  per_fault : (string * int) list;  (** injection count per fault kind *)
  shed_observed : int;  (** [Overloaded] replies in the overload segment *)
  expired_observed : int;  (** [Deadline_exceeded] replies in the deadline segment *)
  retried_ok : int;  (** requests completed only after bounded retry *)
  drained_ok : bool;  (** SIGTERM drain answered the whole in-flight burst *)
  accounting_ok : bool;  (** server metrics account for every admitted request *)
  store_saves : int;  (** artifacts the store segment's first life persisted *)
  store_loads : int;  (** warm loads after the store segment's SIGKILL restart *)
  store_zero_rebuilds : bool;
      (** the restarted server served every miss from the store — zero
          builds in its second life *)
  fleet_workers : int;  (** fleet size of the fleet segment; 0 = not run *)
  fleet_kills : int;  (** fleet workers SIGKILLed mid-soak *)
  fleet_restarts : int;
      (** supervisor crash-restarts in the final roster; in a clean run
          [1 <= fleet_restarts <= fleet_kills] whenever a kill landed *)
  violations : string list;  (** empty iff the soak found no robustness bug *)
}

val run :
  ?seed:int ->
  ?requests:int ->
  ?fault_rate:float ->
  ?workers:int ->
  unit ->
  outcome
(** [run ()] executes the single-daemon segments (defaults: [seed = 1],
    [requests = 200], [fault_rate = 0.25], [workers = 1]); [workers > 1]
    runs the fleet segment instead, with [fault_rate] reinterpreted as
    the per-request worker-SIGKILL probability.  Never raises on a
    server misbehaviour — those become [violations]. *)

val ok : outcome -> bool
(** [ok o] iff [o.violations = []]. *)

val print_report : outcome -> unit
(** Aligned table of counters, then any violations, then a final
    [OK]/[FAILED] line. *)

val to_json : outcome -> string
(** Single JSON object mirroring {!outcome}, for CI artifacts. *)
