module Th = Tcmm_threshold
module P = Tcmm_server.Protocol
module F = Tcmm_fastmm
module Prng = Tcmm_util.Prng

type op = Flip_weight_sign | Perturb_threshold | Drop_wire | Duplicate_wire

let op_name = function
  | Flip_weight_sign -> "flip-weight-sign"
  | Perturb_threshold -> "perturb-threshold"
  | Drop_wire -> "drop-wire"
  | Duplicate_wire -> "duplicate-wire"

let all_ops = [ Flip_weight_sign; Perturb_threshold; Drop_wire; Duplicate_wire ]

type mutant = { op : op; gate : int; detail : string; circuit : Th.Circuit.t }

(* Gates from which some circuit output is reachable.  Mutating a dead
   gate cannot change any output, so dead gates would be guaranteed
   equivalent mutants. *)
let live_gates (c : Th.Circuit.t) =
  let n_in = c.Th.Circuit.num_inputs in
  let n_gates = Array.length c.Th.Circuit.gates in
  let live = Array.make n_gates false in
  let stack = ref [] in
  let push w =
    if w >= n_in && not live.(w - n_in) then begin
      live.(w - n_in) <- true;
      stack := (w - n_in) :: !stack
    end
  in
  Array.iter push c.Th.Circuit.outputs;
  let rec drain () =
    match !stack with
    | [] -> ()
    | g :: rest ->
        stack := rest;
        Array.iter push c.Th.Circuit.gates.(g).Th.Gate.inputs;
        drain ()
  in
  drain ();
  let out = ref [] in
  for g = n_gates - 1 downto 0 do
    if live.(g) then out := g :: !out
  done;
  Array.of_list !out

let replace_gate c ~gate ~with_ =
  Th.Circuit.map_gates c ~f:(fun g old -> if g = gate then with_ else old)

let sum_range (gate : Th.Gate.t) =
  Array.fold_left
    (fun (lo, hi) w -> if w < 0 then (lo + w, hi) else (lo, hi + w))
    (0, 0) gate.Th.Gate.weights

(* All weighted sums the gate can produce over free boolean inputs,
   skipping the weight at [except] — exact while the set stays under
   [cap] distinct values, [None] beyond that.  Duplicate reads of one
   wire are treated as independent, which only over-approximates the
   set (the filter then errs toward keeping a mutant, never toward
   discarding a detectable one). *)
let achievable_sums ?(cap = 4096) ?(except = -1) (gate : Th.Gate.t) =
  let sums = Hashtbl.create 64 in
  Hashtbl.add sums 0 ();
  try
    Array.iteri
      (fun i w ->
        if i <> except && w <> 0 then begin
          let shifted = Hashtbl.fold (fun s () acc -> (s + w) :: acc) sums [] in
          List.iter
            (fun s -> if not (Hashtbl.mem sums s) then Hashtbl.add sums s ())
            shifted;
          if Hashtbl.length sums > cap then raise Exit
        end)
      gate.Th.Gate.weights;
    Some sums
  with Exit -> None

(* Try to make one mutant at the given live gate; [None] when the op has
   no viable (non-provably-equivalent) site there. *)
let try_mutate rng c op gate =
  let g = c.Th.Circuit.gates.(gate) in
  let fan_in = Array.length g.Th.Gate.inputs in
  match op with
  | Flip_weight_sign ->
      if fan_in = 0 then None
      else
        let i = Prng.int rng ~bound:fan_in in
        let w = g.Th.Gate.weights.(i) in
        if w = 0 then None
        else
          let equivalent =
            (* Negating [w] only matters on assignments setting wire [i];
               there the old sum [r + w] and new sum [r - w] must land on
               opposite sides of the threshold for some achievable rest
               [r] — otherwise the mutant provably computes the same
               function. *)
            match achievable_sums ~except:i g with
            | None -> false
            | Some rest ->
                let t = g.Th.Gate.threshold in
                not
                  (Hashtbl.fold
                     (fun r () acc -> acc || r + w >= t <> (r - w >= t))
                     rest false)
          in
          if equivalent then None
          else
          let weights = Array.copy g.Th.Gate.weights in
          weights.(i) <- -weights.(i);
          let with_ =
            Th.Gate.make ~inputs:g.Th.Gate.inputs ~weights
              ~threshold:g.Th.Gate.threshold
          in
          Some
            {
              op;
              gate;
              detail = Printf.sprintf "weight %d on wire %d negated" i
                  g.Th.Gate.inputs.(i);
              circuit = replace_gate c ~gate ~with_;
            }
  | Perturb_threshold ->
      if fan_in = 0 then None
      else
        let delta = if Prng.bool rng then 1 else -1 in
        let t = g.Th.Gate.threshold in
        (* The moved decision boundary: t -> t+1 reclassifies sum t;
           t -> t-1 reclassifies sum t-1.  Outside the achievable range
           the mutant provably computes the same function. *)
        let critical = if delta = 1 then t else t - 1 in
        let feasible =
          match achievable_sums g with
          | Some sums -> Hashtbl.mem sums critical
          | None ->
              let lo, hi = sum_range g in
              critical >= lo && critical <= hi
        in
        if not feasible then None
        else
          let with_ =
            Th.Gate.make ~inputs:g.Th.Gate.inputs ~weights:g.Th.Gate.weights
              ~threshold:(t + delta)
          in
          Some
            {
              op;
              gate;
              detail = Printf.sprintf "threshold %d -> %d" t (t + delta);
              circuit = replace_gate c ~gate ~with_;
            }
  | Drop_wire ->
      if fan_in < 2 then None
      else
        let i = Prng.int rng ~bound:fan_in in
        let drop a =
          Array.init (Array.length a - 1) (fun j -> if j < i then a.(j) else a.(j + 1))
        in
        let with_ =
          Th.Gate.make ~inputs:(drop g.Th.Gate.inputs)
            ~weights:(drop g.Th.Gate.weights) ~threshold:g.Th.Gate.threshold
        in
        Some
          {
            op;
            gate;
            detail = Printf.sprintf "dropped wire %d" g.Th.Gate.inputs.(i);
            circuit = replace_gate c ~gate ~with_;
          }
  | Duplicate_wire ->
      if fan_in = 0 then None
      else
        let i = Prng.int rng ~bound:fan_in in
        let dup a extra = Array.append a [| extra |] in
        let with_ =
          Th.Gate.make
            ~inputs:(dup g.Th.Gate.inputs g.Th.Gate.inputs.(i))
            ~weights:(dup g.Th.Gate.weights g.Th.Gate.weights.(i))
            ~threshold:g.Th.Gate.threshold
        in
        Some
          {
            op;
            gate;
            detail = Printf.sprintf "duplicated wire %d" g.Th.Gate.inputs.(i);
            circuit = replace_gate c ~gate ~with_;
          }

let sample ~rng ~count (c : Th.Circuit.t) =
  if Array.length c.Th.Circuit.gates = 0 then
    invalid_arg "Mutate.sample: circuit has no gates";
  let live = live_gates c in
  if Array.length live = 0 then invalid_arg "Mutate.sample: no live gates";
  let ops = Array.of_list all_ops in
  let seen = Hashtbl.create count in
  let out = ref [] and found = ref 0 and attempts = ref 0 in
  while !found < count && !attempts < count * 50 do
    incr attempts;
    let op = ops.(Prng.int rng ~bound:(Array.length ops)) in
    let gate = live.(Prng.int rng ~bound:(Array.length live)) in
    match try_mutate rng c op gate with
    | None -> ()
    | Some m ->
        let key = (op_name m.op, m.gate, m.detail) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          out := m :: !out;
          incr found
        end
  done;
  List.rev !out

type kill = Structural of string | Behavioral of int

let default_observe (r : Th.Simulator.result) =
  String.init (Array.length r.Th.Simulator.outputs) (fun i ->
      if r.Th.Simulator.outputs.(i) then '1' else '0')

let judge ?(observe = default_observe) ~original ~inputs m =
  let so = Th.Circuit.stats original and sm = Th.Circuit.stats m.circuit in
  if so <> sm then
    Some
      (Structural
         (Printf.sprintf "stats deviate (gates %d->%d, edges %d->%d, depth %d->%d)"
            so.Th.Stats.gates sm.Th.Stats.gates so.Th.Stats.edges sm.Th.Stats.edges
            so.Th.Stats.depth sm.Th.Stats.depth))
  else if Th.Validate.check original <> Th.Validate.check m.circuit then
    Some (Structural "validation issue list deviates")
  else
    let n = Array.length inputs in
    let rec go i =
      if i >= n then None
      else
        let ro = Th.Simulator.run original inputs.(i) in
        let rm = Th.Simulator.run m.circuit inputs.(i) in
        if observe ro <> observe rm then Some (Behavioral i) else go (i + 1)
    in
    go 0

type sweep = {
  total : int;
  structural : int;
  behavioral : int;
  survived : (string * int) list;
  per_op : (string * int * int) list;
}

let kill_rate s =
  if s.total = 0 then 1.
  else float_of_int (s.structural + s.behavioral) /. float_of_int s.total

let sweep ?(observe = default_observe) ~rng ~count ~inputs c =
  let mutants = sample ~rng ~count c in
  (* Evaluate the original once per workload; every mutant reuses it. *)
  let original_obs =
    Array.map (fun input -> observe (Th.Simulator.run c input)) inputs
  in
  let original_stats = Th.Circuit.stats c in
  let original_issues = Th.Validate.check c in
  let judge_fast m =
    let sm = Th.Circuit.stats m.circuit in
    if original_stats <> sm then Some (Structural "stats deviate")
    else if original_issues <> Th.Validate.check m.circuit then
      Some (Structural "validation issue list deviates")
    else
      let n = Array.length inputs in
      let rec go i =
        if i >= n then None
        else
          let rm = Th.Simulator.run m.circuit inputs.(i) in
          if original_obs.(i) <> observe rm then Some (Behavioral i)
          else go (i + 1)
      in
      go 0
  in
  let tally = Hashtbl.create 4 in
  let bump op killed =
    let k, t = Option.value ~default:(0, 0) (Hashtbl.find_opt tally op) in
    Hashtbl.replace tally op ((k + if killed then 1 else 0), t + 1)
  in
  let structural = ref 0 and behavioral = ref 0 and survived = ref [] in
  List.iter
    (fun m ->
      match judge_fast m with
      | Some (Structural _) ->
          incr structural;
          bump (op_name m.op) true
      | Some (Behavioral _) ->
          incr behavioral;
          bump (op_name m.op) true
      | None ->
          survived := (op_name m.op, m.gate) :: !survived;
          bump (op_name m.op) false)
    mutants;
  {
    total = List.length mutants;
    structural = !structural;
    behavioral = !behavioral;
    survived = List.rev !survived;
    per_op =
      List.filter_map
        (fun op ->
          Option.map
            (fun (k, t) -> (op_name op, k, t))
            (Hashtbl.find_opt tally (op_name op)))
        all_ops;
  }

let merge sweeps =
  let tally = Hashtbl.create 4 in
  List.iter
    (fun s ->
      List.iter
        (fun (op, k, t) ->
          let k0, t0 = Option.value ~default:(0, 0) (Hashtbl.find_opt tally op) in
          Hashtbl.replace tally op (k0 + k, t0 + t))
        s.per_op)
    sweeps;
  {
    total = List.fold_left (fun a s -> a + s.total) 0 sweeps;
    structural = List.fold_left (fun a s -> a + s.structural) 0 sweeps;
    behavioral = List.fold_left (fun a s -> a + s.behavioral) 0 sweeps;
    survived = List.concat_map (fun s -> s.survived) sweeps;
    per_op =
      List.filter_map
        (fun op ->
          Option.map
            (fun (k, t) -> (op_name op, k, t))
            (Hashtbl.find_opt tally (op_name op)))
        all_ops;
  }

(* ------------------------------------------------------------------ *)
(* Protocol-frame truncation                                          *)
(* ------------------------------------------------------------------ *)

type protocol_sweep = { frames : int; cuts : int; killed : int }

let sample_payloads () =
  let spec =
    {
      P.kind = P.Trace;
      algo = "strassen";
      schedule = "direct";
      d = 2;
      n = 4;
      entry_bits = 1;
      signed = false;
      tau = 1;
      kronpow = false;
    }
  in
  let m = F.Matrix.identity 4 in
  [
    P.encode_request P.Ping;
    P.encode_request (P.Compile spec);
    P.encode_request (P.Run_trace (spec, m));
    P.encode_request (P.Run_matmul ({ spec with kind = P.Matmul }, m, m));
    P.encode_request P.Metrics;
    P.encode_response P.Pong;
    P.encode_response (P.Trace_result (true, 42));
    P.encode_response (P.Error "boom");
    P.encode_response (P.Matmul_result (m, 7));
  ]

let decoders payload =
  (* A truncated payload is detected when *neither* decoder accepts it:
     the attacker controls bytes, not which endpoint reads them. *)
  match (P.decode_request payload, P.decode_response payload) with
  | Error _, Error _ -> true
  | _ -> false

let stream_truncation_detected framed cut =
  let d = P.create_dechunker () in
  let bytes = Bytes.of_string (String.sub framed 0 cut) in
  P.feed d bytes 0 (Bytes.length bytes);
  match P.next_frame d with `Frame _ -> false | `More | `Corrupt _ -> true

let payload_truncation_detected payload cut =
  let truncated = String.sub payload 0 cut in
  let d = P.create_dechunker () in
  let framed = Bytes.of_string (P.frame truncated) in
  P.feed d framed 0 (Bytes.length framed);
  match P.next_frame d with
  | `Frame p -> decoders p
  | `More | `Corrupt _ -> true

let protocol_truncation_sweep ?(seed = 11) ?(cuts_per_frame = 8) () =
  let rng = Prng.create ~seed in
  let payloads = sample_payloads () in
  let cuts = ref 0 and killed = ref 0 in
  List.iter
    (fun payload ->
      let framed = P.frame payload in
      for _ = 1 to cuts_per_frame do
        let cut = 1 + Prng.int rng ~bound:(String.length framed - 1) in
        incr cuts;
        if stream_truncation_detected framed cut then incr killed;
        let pcut = 1 + Prng.int rng ~bound:(String.length payload - 1) in
        incr cuts;
        if payload_truncation_detected payload pcut then incr killed
      done)
    payloads;
  { frames = List.length payloads; cuts = !cuts; killed = !killed }
