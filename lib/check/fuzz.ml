module T = Tcmm
module F = Tcmm_fastmm
module P = Tcmm_server.Protocol
module Client = Tcmm_server.Client

type failure = { case : Case.t; original : Case.t; message : string }
type outcome = { tested : int; failures : failure list }

(* Generator. Sizes are biased small (shrinking prefers them anyway, and
   builds are memoized per configuration); tau is frequently pinned to
   the exact trace value so the comparison boundary itself is fuzzed. *)
let gen =
  let open QCheck2.Gen in
  let* kind = oneofl [ Case.Trace; Case.Matmul ] in
  let* algo = frequencyl [ (3, "strassen"); (2, "naive-2"); (1, "winograd") ] in
  let* n = frequencyl [ (3, 2); (4, 4); (1, 8) ] in
  let* schedule = oneofl [ "direct"; "uniform-2"; "full"; "thm44"; "thm45" ] in
  let* d = int_range 1 3 in
  let* entry_bits = if n >= 8 then return 1 else int_range 1 2 in
  let* signed = bool in
  let* seed = int_range 0 1_000_000 in
  let+ tau_choice = oneofl [ `Zero; `One; `Exact; `Above; `Below ] in
  let base =
    {
      Case.kind;
      algo;
      schedule;
      d;
      n;
      entry_bits;
      signed;
      tau = 0;
      seed;
    }
  in
  match kind with
  | Case.Matmul -> base
  | Case.Trace ->
      let tau =
        match tau_choice with
        | `Zero -> 0
        | `One -> 1
        | `Exact -> T.Trace_circuit.reference (Case.matrix base ~index:0)
        | `Above -> T.Trace_circuit.reference (Case.matrix base ~index:0) + 1
        | `Below -> T.Trace_circuit.reference (Case.matrix base ~index:0) - 1
      in
      { base with tau }

let fails c = match Oracle.check c with Ok () -> None | Error m -> Some m

let candidates (c : Case.t) =
  List.concat
    [
      (if c.n > 2 then [ { c with n = c.n / 2 } ] else []);
      (if c.schedule <> "direct" then [ { c with schedule = "direct" } ] else []);
      (if c.signed then [ { c with signed = false } ] else []);
      (if c.entry_bits > 1 then [ { c with entry_bits = 1 } ] else []);
      (if c.algo <> "strassen" then [ { c with algo = "strassen" } ] else []);
      (if c.kind = Case.Trace && c.tau <> 1 then [ { c with tau = 1 } ] else []);
      (if c.d > 1 then [ { c with d = 1 } ] else []);
      (if c.seed <> 0 then [ { c with seed = 0 }; { c with seed = c.seed / 2 } ]
       else []);
    ]

let shrink c =
  let msg0 =
    match fails c with
    | Some m -> m
    | None -> invalid_arg "Fuzz.shrink: case does not fail"
  in
  let rec go c msg steps =
    if steps > 64 then (c, msg)
    else
      match
        List.find_map
          (fun c' -> Option.map (fun m -> (c', m)) (fails c'))
          (candidates c)
      with
      | Some (c', m) -> go c' m (steps + 1)
      | None -> (c, msg)
  in
  go c msg0 0

let run ?(seed = 1) ~cases () =
  let rand = Random.State.make [| seed |] in
  let tested = ref 0 and failures = ref [] in
  (try
     for _ = 1 to cases do
       if List.length !failures >= 5 then raise Exit;
       let c = QCheck2.Gen.generate1 ~rand gen in
       incr tested;
       match Oracle.check c with
       | Ok () -> ()
       | Error _ ->
           let shrunk, message = shrink c in
           failures := { case = shrunk; original = c; message } :: !failures
     done
   with Exit -> ());
  { tested = !tested; failures = List.rev !failures }

let spec_of_case (c : Case.t) =
  {
    P.kind = (match c.kind with Case.Trace -> P.Trace | Case.Matmul -> P.Matmul);
    algo = c.algo;
    schedule = c.schedule;
    d = c.d;
    n = c.n;
    entry_bits = c.entry_bits;
    signed = c.signed;
    tau = c.tau;
  }

let check_server cl (c : Case.t) =
  let spec = spec_of_case c in
  match c.kind with
  | Case.Trace -> (
      let a = Case.matrix c ~index:0 in
      let expected = T.Trace_circuit.reference a >= c.tau in
      match Client.request cl (P.Run_trace (spec, a)) with
      | Ok (P.Trace_result (b, _)) when b = expected -> Ok ()
      | Ok (P.Trace_result (b, _)) ->
          Error
            (Printf.sprintf "server says %b, integer reference says %b" b expected)
      | Ok (P.Error e) -> Error ("server error: " ^ e)
      | Ok _ -> Error "unexpected response kind"
      | Error e -> Error ("transport: " ^ e))
  | Case.Matmul -> (
      let a = Case.matrix c ~index:0 and b = Case.matrix c ~index:1 in
      let expected = F.Matrix.mul a b in
      match Client.request cl (P.Run_matmul (spec, a, b)) with
      | Ok (P.Matmul_result (m, _)) when F.Matrix.equal m expected -> Ok ()
      | Ok (P.Matmul_result (_, _)) ->
          Error "server product disagrees with integer reference"
      | Ok (P.Error e) -> Error ("server error: " ^ e)
      | Ok _ -> Error "unexpected response kind"
      | Error e -> Error ("transport: " ^ e))

let run_server ?(seed = 1) ~cases cl =
  let rand = Random.State.make [| seed |] in
  let tested = ref 0 and failures = ref [] in
  (try
     for _ = 1 to cases do
       if List.length !failures >= 5 then raise Exit;
       let c = QCheck2.Gen.generate1 ~rand gen in
       (* Keep the server's per-request build cost bounded. *)
       let c = if c.Case.n > 4 then { c with Case.n = 4 } else c in
       incr tested;
       match check_server cl c with
       | Ok () -> ()
       | Error message -> failures := { case = c; original = c; message } :: !failures
     done
   with Exit -> ());
  { tested = !tested; failures = List.rev !failures }
