module T = Tcmm
module F = Tcmm_fastmm
module G = Tcmm_graph
module Th = Tcmm_threshold
module Cn = Tcmm_convnet
module P = Tcmm_server.Protocol
module Client = Tcmm_server.Client

type failure = { case : Case.t; original : Case.t; message : string }
type outcome = { tested : int; failures : failure list }

(* Valid circuit dimensions per algorithm: powers of the algorithm's
   base dimension, biased small (shrinking prefers them anyway, and
   builds are memoized per configuration). *)
let sizes_of_algo = function
  | "laderman" -> [ (3, 3); (1, 9) ]
  | _ -> [ (3, 2); (4, 4); (1, 8) ]

(* Generator.  The algorithm is drawn first so [n] can range over its
   valid power ladder; tau is frequently pinned to the exact trace
   value so the comparison boundary itself is fuzzed. *)
let gen =
  let open QCheck2.Gen in
  let* kind = frequencyl [ (3, Case.Trace); (3, Case.Matmul); (1, Case.Conv) ] in
  let* algo =
    frequencyl
      [ (3, "strassen"); (2, "naive-2"); (1, "winograd"); (2, "laderman") ]
  in
  let* n = frequencyl (sizes_of_algo algo) in
  (* The conv leg's Q = 4 patch values need a circuit of n >= 4. *)
  let n =
    if kind = Case.Conv && n < 4 then if algo = "laderman" then 9 else 4 else n
  in
  let* schedule = oneofl [ "direct"; "uniform-2"; "full"; "thm44"; "thm45" ] in
  let* d = int_range 1 3 in
  let* entry_bits = if n >= 8 then return 1 else int_range 1 2 in
  let* signed = bool in
  let* kronpow = frequencyl [ (3, false); (1, true) ] in
  let* seed = int_range 0 1_000_000 in
  let+ tau_choice = oneofl [ `Zero; `One; `Exact; `Above; `Below ] in
  let base =
    {
      Case.kind;
      algo;
      schedule;
      d;
      n;
      entry_bits;
      signed;
      tau = 0;
      seed;
      flips = [];
      kronpow;
    }
  in
  match kind with
  | Case.Matmul | Case.Conv -> base
  | Case.Trace ->
      let tau =
        match tau_choice with
        | `Zero -> 0
        | `One -> 1
        | `Exact -> T.Trace_circuit.reference (Case.matrix base ~index:0)
        | `Above -> T.Trace_circuit.reference (Case.matrix base ~index:0) + 1
        | `Below -> T.Trace_circuit.reference (Case.matrix base ~index:0) - 1
      in
      { base with tau }

(* The incremental generator: unsigned 1-bit trace cases (the adjacency
   encoding) carrying 1-5 edge-flip batches of 1-3 flips each, with an
   explicit bias toward a flip-then-unflip pair inside one batch (a
   delta that must be a structural no-op) and toward tau pinned at the
   post-flip trace value (the boundary a stale cached sum would cross
   wrongly). *)
let gen_incremental =
  let open QCheck2.Gen in
  let* algo =
    frequencyl
      [ (3, "strassen"); (2, "naive-2"); (1, "winograd"); (2, "laderman") ]
  in
  let* n = frequencyl (sizes_of_algo algo) in
  let* schedule = oneofl [ "direct"; "uniform-2"; "full"; "thm44"; "thm45" ] in
  let* d = int_range 1 3 in
  let* seed = int_range 0 1_000_000 in
  let pair =
    let* i = int_range 0 (n - 2) in
    let* j = int_range (i + 1) (n - 1) in
    return (i, j)
  in
  let batch =
    let* flips = list_size (int_range 1 3) pair in
    let+ dup = frequencyl [ (1, true); (3, false) ] in
    match flips with f :: _ when dup -> flips @ [ f ] | _ -> flips
  in
  let* nbatches = int_range 1 5 in
  let* flips = list_repeat nbatches batch in
  let+ tau_choice = oneofl [ `Zero; `One; `ExactBase; `ExactFinal; `AboveFinal ] in
  let base =
    {
      Case.kind = Case.Trace;
      algo;
      schedule;
      d;
      n;
      entry_bits = 1;
      signed = false;
      tau = 0;
      seed;
      flips;
      kronpow = false;
    }
  in
  let trace_of g = T.Trace_circuit.reference (G.Graph.adjacency g) in
  let tau =
    match tau_choice with
    | `Zero -> 0
    | `One -> 1
    | `ExactBase -> trace_of (Case.graph base)
    | `ExactFinal ->
        trace_of (G.Graph.flip_edges (Case.graph base) (List.concat flips))
    | `AboveFinal ->
        trace_of (G.Graph.flip_edges (Case.graph base) (List.concat flips)) + 1
  in
  { base with tau }

let fails c = match Oracle.check c with Ok () -> None | Error m -> Some m

(* Keep a flip list valid under an [n] shrink: drop out-of-range pairs,
   then empty batches. *)
let clip_flips n flips =
  List.filter_map
    (fun batch ->
      match List.filter (fun (i, j) -> i < n && j < n) batch with
      | [] -> None
      | batch -> Some batch)
    flips

let drop_last l = List.filteri (fun i _ -> i < List.length l - 1) l

(* Drop the last flip of the first multi-flip batch, if any. *)
let rec shorten_batch = function
  | [] -> None
  | batch :: rest when List.length batch > 1 -> Some (drop_last batch :: rest)
  | batch :: rest ->
      Option.map (fun rest -> batch :: rest) (shorten_batch rest)

(* The smallest n a case's kind admits (a conv case's Q = 4 patch
   values need n >= 4). *)
let min_n (c : Case.t) = if c.kind = Case.Conv then 4 else 2

(* Shrinking n divides by the algorithm's base dimension (laderman
   shrinks 9 -> 3, the power-of-2 algorithms halve); switching the
   algorithm to strassen must also move n onto the power-of-2 ladder. *)
let shrink_n (c : Case.t) =
  let t = (Case.algo_of_name c.algo).F.Bilinear.t_dim in
  let n' = c.n / t in
  if c.n > t && n' >= min_n c then
    [ { c with n = n'; flips = clip_flips n' c.flips } ]
  else []

let shrink_algo (c : Case.t) =
  if c.algo = "strassen" then []
  else
    let n =
      if (Case.algo_of_name c.algo).F.Bilinear.t_dim <> 2 then
        (* Nearest power of 2 not above n, floored at the kind's
           minimum. *)
        let rec pow2 p = if p * 2 <= c.n then pow2 (p * 2) else p in
        max (pow2 2) (min_n c)
      else c.n
    in
    [ { c with algo = "strassen"; n; flips = clip_flips n c.flips } ]

let candidates (c : Case.t) =
  List.concat
    [
      shrink_n c;
      (if c.schedule <> "direct" then [ { c with schedule = "direct" } ] else []);
      (if c.signed then [ { c with signed = false } ] else []);
      (if c.entry_bits > 1 then [ { c with entry_bits = 1 } ] else []);
      shrink_algo c;
      (if c.kronpow then [ { c with kronpow = false } ] else []);
      (if c.kind = Case.Conv then [ { c with kind = Case.Matmul } ] else []);
      (if c.kind = Case.Trace && c.tau <> 1 then [ { c with tau = 1 } ] else []);
      (if c.d > 1 then [ { c with d = 1 } ] else []);
      (if c.seed <> 0 then [ { c with seed = 0 }; { c with seed = c.seed / 2 } ]
       else []);
      (match c.flips with
      | [] -> []
      | flips ->
          [ { c with flips = [] } ]
          @ (if List.length flips > 1 then
               [ { c with flips = List.tl flips };
                 { c with flips = drop_last flips } ]
             else [])
          @ (match shorten_batch flips with
            | Some flips' -> [ { c with flips = flips' } ]
            | None -> []));
    ]

let shrink c =
  let msg0 =
    match fails c with
    | Some m -> m
    | None -> invalid_arg "Fuzz.shrink: case does not fail"
  in
  let rec go c msg steps =
    if steps > 64 then (c, msg)
    else
      match
        List.find_map
          (fun c' -> Option.map (fun m -> (c', m)) (fails c'))
          (candidates c)
      with
      | Some (c', m) -> go c' m (steps + 1)
      | None -> (c, msg)
  in
  go c msg0 0

(* Pin a generated case to one algorithm (the `tcmm check --algo`
   slice): n is remapped onto that algorithm's power ladder at a
   comparable scale, flips clipped accordingly. *)
let pin_algo algo (c : Case.t) =
  match algo with
  | None -> c
  | Some algo when algo = c.algo -> c
  | Some algo ->
      let t = (Case.algo_of_name algo).F.Bilinear.t_dim in
      let rec ladder n = if n * t <= c.n then ladder (n * t) else n in
      let n = ladder t in
      let n = if c.kind = Case.Conv && n < 4 then t * t else n in
      { c with algo; n; flips = clip_flips n c.flips }

let run_with generator ?algo ~seed ~cases () =
  let rand = Random.State.make [| seed |] in
  let tested = ref 0 and failures = ref [] in
  (try
     for _ = 1 to cases do
       if List.length !failures >= 5 then raise Exit;
       let c = pin_algo algo (QCheck2.Gen.generate1 ~rand generator) in
       incr tested;
       match Oracle.check c with
       | Ok () -> ()
       | Error _ ->
           let shrunk, message = shrink c in
           failures := { case = shrunk; original = c; message } :: !failures
     done
   with Exit -> ());
  { tested = !tested; failures = List.rev !failures }

let run ?(seed = 1) ?algo ~cases () = run_with gen ?algo ~seed ~cases ()

let run_incremental ?(seed = 1) ?algo ~cases () =
  run_with gen_incremental ?algo ~seed ~cases ()

let spec_of_case (c : Case.t) =
  {
    P.kind =
      (match c.kind with
      | Case.Trace -> P.Trace
      | Case.Matmul -> P.Matmul
      | Case.Conv -> P.Conv);
    algo = c.algo;
    schedule = c.schedule;
    d = c.d;
    n = c.n;
    entry_bits = c.entry_bits;
    signed = c.signed;
    tau = c.tau;
    kronpow = c.kronpow;
  }

let check_server cl (c : Case.t) =
  let spec = spec_of_case c in
  match c.kind with
  | Case.Trace -> (
      let a = Case.matrix c ~index:0 in
      let expected = T.Trace_circuit.reference a >= c.tau in
      match Client.request cl (P.Run_trace (spec, a)) with
      | Ok (P.Trace_result (b, _)) when b = expected -> Ok ()
      | Ok (P.Trace_result (b, _)) ->
          Error
            (Printf.sprintf "server says %b, integer reference says %b" b expected)
      | Ok (P.Error e) -> Error ("server error: " ^ e)
      | Ok _ -> Error "unexpected response kind"
      | Error e -> Error ("transport: " ^ e))
  | Case.Matmul -> (
      let a = Case.matrix c ~index:0 and b = Case.matrix c ~index:1 in
      let expected = F.Matrix.mul a b in
      match Client.request cl (P.Run_matmul (spec, a, b)) with
      | Ok (P.Matmul_result (m, _)) when F.Matrix.equal m expected -> Ok ()
      | Ok (P.Matmul_result (_, _)) ->
          Error "server product disagrees with integer reference"
      | Ok (P.Error e) -> Error ("server error: " ^ e)
      | Ok _ -> Error "unexpected response kind"
      | Error e -> Error ("transport: " ^ e))
  | Case.Conv -> (
      let cspec, img, kernels = Case.conv_job c in
      let expected = Cn.Conv.direct cspec img kernels in
      let job =
        {
          P.cj_q = cspec.Cn.Im2col.q;
          cj_stride = cspec.Cn.Im2col.stride;
          cj_image = img;
          cj_kernels = kernels;
        }
      in
      match Client.request cl (P.Run_conv (spec, job)) with
      | Ok (P.Conv_result (scores, _)) when scores = expected -> Ok ()
      | Ok (P.Conv_result _) ->
          Error "served conv scores disagree with direct convolution"
      | Ok (P.Error e) -> Error ("server error: " ^ e)
      | Ok _ -> Error "unexpected response kind"
      | Error e -> Error ("transport: " ^ e))

let run_server ?(seed = 1) ?algo ~cases cl =
  let rand = Random.State.make [| seed |] in
  let tested = ref 0 and failures = ref [] in
  (try
     for _ = 1 to cases do
       if List.length !failures >= 5 then raise Exit;
       let c = pin_algo algo (QCheck2.Gen.generate1 ~rand gen) in
       (* Keep the server's per-request build cost bounded; the cap
          must land on the algorithm's own power ladder (and a conv
          case needs n >= 4, so laderman conv stays at 9). *)
       let cap =
         match (c.Case.algo, c.Case.kind) with
         | "laderman", Case.Conv -> 9
         | "laderman", _ -> 3
         | _ -> 4
       in
       let c = if c.Case.n > cap then { c with Case.n = cap } else c in
       incr tested;
       match check_server cl c with
       | Ok () -> ()
       | Error message -> failures := { case = c; original = c; message } :: !failures
     done
   with Exit -> ());
  { tested = !tested; failures = List.rev !failures }

(* One incremental trial through a live server session: the server's
   dirty-cone updates must report the same output bit and firing count
   as a local from-scratch packed evaluation (which the in-process leg
   separately holds bit-identical to the reference interpreter). *)
let check_server_incremental cl (c : Case.t) =
  let ( let* ) = Result.bind in
  let built = Oracle.trace_built c in
  let layout = built.T.Trace_circuit.layout in
  let g = ref (Case.graph c) in
  let local () =
    let adj = G.Graph.adjacency !g in
    let res =
      Th.Packed.run (Oracle.trace_packed c)
        (T.Trace_circuit.encode_input built adj)
    in
    (T.Trace_circuit.reference adj >= c.tau, res.Th.Simulator.firings)
  in
  let agree ~where ~fires ~firings =
    let want_fires, want_firings = local () in
    if fires <> want_fires then
      Error
        (Printf.sprintf "%s: server session says %b, local says %b" where fires
           want_fires)
    else if firings <> want_firings then
      Error
        (Printf.sprintf "%s: server session fired %d gates, local fired %d"
           where firings want_firings)
    else Ok ()
  in
  match Client.open_session cl (spec_of_case c) (G.Graph.adjacency !g) with
  | Error e -> Error ("open_session: " ^ e)
  | Ok so ->
      let sid = so.P.so_sid in
      Fun.protect
        ~finally:(fun () -> ignore (Client.close_session cl ~sid))
      @@ fun () ->
      let* () = agree ~where:"base" ~fires:so.P.so_fires ~firings:so.P.so_firings in
      let rec batches idx = function
        | [] -> Ok ()
        | batch :: rest ->
            let g', delta = G.Stream.delta ~layout !g batch in
            g := g';
            let* u =
              Result.map_error
                (fun e -> Printf.sprintf "update %d: %s" idx e)
                (Client.update cl ~sid delta)
            in
            let* () =
              agree
                ~where:(Printf.sprintf "after batch %d" idx)
                ~fires:u.P.ur_fires ~firings:u.P.ur_firings
            in
            batches (idx + 1) rest
      in
      batches 0 c.flips

let run_server_incremental ?(seed = 1) ?algo ~cases cl =
  let rand = Random.State.make [| seed |] in
  let tested = ref 0 and failures = ref [] in
  (try
     for _ = 1 to cases do
       if List.length !failures >= 5 then raise Exit;
       let c = pin_algo algo (QCheck2.Gen.generate1 ~rand gen_incremental) in
       (* Same build-cost bound as [run_server]. *)
       let cap = if c.Case.algo = "laderman" then 3 else 4 in
       let c =
         if c.Case.n > cap then
           { c with Case.n = cap; flips = clip_flips cap c.Case.flips }
         else c
       in
       incr tested;
       match check_server_incremental cl c with
       | Ok () -> ()
       | Error message -> failures := { case = c; original = c; message } :: !failures
     done
   with Exit -> ());
  { tested = !tested; failures = List.rev !failures }
