(** The `tcmm check` battery: certify + fuzz + mutation sweep.

    One call runs the whole correctness harness and returns an aggregate
    report the CLI renders as {!Tcmm_util.Tablefmt} tables, the E19
    experiment records as JSON, and CI gates on ({!all_ok} demands every
    certificate clean, zero fuzz failures, a protocol sweep with no
    survivors, and a mutant kill rate of at least {!kill_threshold}). *)

type report = {
  certificates : Certify.t list;
  fuzz : Fuzz.outcome;
  incremental : Fuzz.outcome;
      (** the dirty-cone session leg ({!Fuzz.run_incremental}) *)
  server_fuzz : Fuzz.outcome option;  (** [None] when the server was skipped *)
  server_incremental : Fuzz.outcome option;
      (** stateful-session leg against the forked server; [None] when
          the server was skipped *)
  mutation : Mutate.sweep;
  protocol : Mutate.protocol_sweep;
  seed : int;
}

val kill_threshold : float
(** 0.95 — the minimum acceptable mutant kill rate. *)

val certify_battery :
  ?materialize_cap:int -> ?algo:string -> unit -> Certify.t list
(** Certificates for the bundled bilinear instances (Strassen, naive,
    and Laderman), all four standard schedules and both circuit kinds
    across each algorithm's power ladder (N in {4, 8, 16}, or {3, 9}
    for base-3 Laderman; matmul capped at the sizes a count-only build
    handles quickly).  [algo] restricts the battery to one algorithm. *)

val mutation_battery : ?seed:int -> mutants:int -> unit -> Mutate.sweep
(** The mutation sweep over a set of small materialized subjects
    (trace and matmul, Strassen and naive), [mutants] split across
    them, judged against 32 encoded random workloads each. *)

val with_loopback_server : (Tcmm_server.Client.t -> 'a) -> 'a
(** Fork a server on a private Unix socket, connect, run, then shut the
    server down and reap the child (also on exceptions).  Must be called
    before anything in the process spawns a domain: OCaml forbids
    [Unix.fork] once another domain has ever been created, and the
    in-process oracle's multi-domain evaluation does exactly that
    ({!run} therefore takes its server leg first). *)

val run :
  ?seed:int ->
  ?cases:int ->
  ?incremental_cases:int ->
  ?mutants:int ->
  ?include_server:bool ->
  ?corpus_dir:string ->
  ?algo:string ->
  unit ->
  report
(** Defaults: seed 1, 50 fuzz cases, 120 mutants, no server leg;
    [incremental_cases] defaults to [cases].  When [corpus_dir] is
    given, corpus cases are replayed first (failures count toward the
    leg they exercise — flip-carrying cases toward [incremental]) and
    new shrunk counterexamples are saved there.  [algo] pins every
    certificate and fuzz case to one algorithm (the CI per-algorithm
    slice); the mutation battery and corpus replay are unaffected. *)

val all_ok : report -> bool
val print_report : report -> unit
val to_json : report -> string
