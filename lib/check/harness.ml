module T = Tcmm
module F = Tcmm_fastmm
module Th = Tcmm_threshold
module P = Tcmm_server.Protocol
module Prng = Tcmm_util.Prng
module Tablefmt = Tcmm_util.Tablefmt

type report = {
  certificates : Certify.t list;
  fuzz : Fuzz.outcome;
  incremental : Fuzz.outcome;
  server_fuzz : Fuzz.outcome option;
  server_incremental : Fuzz.outcome option;
  mutation : Mutate.sweep;
  protocol : Mutate.protocol_sweep;
  seed : int;
}

let kill_threshold = 0.95

(* ------------------------------------------------------------------ *)
(* Certification battery                                              *)
(* ------------------------------------------------------------------ *)

(* Certification sizes per algorithm: powers of the algorithm's base
   dimension.  Laderman's base-3 ladder stops at 9 — its n = 27 builds
   are count-only but the DP alone costs minutes there. *)
let certify_sizes = function "laderman" -> [ 3; 9 ] | _ -> [ 4; 8; 16 ]

let certify_battery ?materialize_cap ?algo:only () =
  let algos =
    match only with
    | None -> [ "strassen"; "naive-2"; "laderman" ]
    | Some a -> [ a ]
  in
  let specs = ref [] in
  List.iter
    (fun kind ->
      List.iter
        (fun algo ->
          List.iter
            (fun schedule ->
              List.iter
                (fun n ->
                  (* Count-only matmul builds at N = 16 are exact but cost
                     minutes; the DP and the N <= 8 builds already cover the
                     matmul accounting, so the N = 16 row is trace-only. *)
                  if not (kind = Case.Matmul && n >= 16) then
                    specs :=
                      {
                        Certify.kind;
                        algo;
                        schedule;
                        d = 2;
                        n;
                        entry_bits = 1;
                        signed = false;
                        tau = 1;
                      }
                      :: !specs)
                (certify_sizes algo))
            T.Level_schedule.standard_names)
        algos)
    [ Case.Trace; Case.Matmul ];
  List.rev_map (fun spec -> Certify.certify ?materialize_cap spec) !specs

(* ------------------------------------------------------------------ *)
(* Mutation battery                                                   *)
(* ------------------------------------------------------------------ *)

let mutation_subjects () =
  let case kind algo schedule n ~entry_bits ~signed tau =
    {
      Case.kind;
      algo;
      schedule;
      d = 2;
      n;
      entry_bits;
      signed;
      tau;
      seed = 0;
      flips = [];
      kronpow = false;
    }
  in
  [
    case Case.Trace "strassen" "direct" 4 ~entry_bits:1 ~signed:false 1;
    case Case.Trace "naive-2" "uniform-2" 4 ~entry_bits:1 ~signed:false 1;
    case Case.Trace "strassen" "uniform-2" 4 ~entry_bits:2 ~signed:true 0;
    case Case.Matmul "strassen" "direct" 2 ~entry_bits:1 ~signed:false 0;
    case Case.Trace "laderman" "direct" 3 ~entry_bits:1 ~signed:false 1;
  ]

(* Workload matrices for judging mutants: random draws plus structured
   patterns random sampling rarely reaches — the extremes (all-zero,
   all-max, scaled identity, all-min when signed) that saturate carry
   chains, one matrix per single nonzero entry (drives each input weight
   in isolation), and a density ramp hitting the intermediate sums
   between the extremes. *)
let subject_matrices (c : Case.t) ~index =
  let hi = (1 lsl c.Case.entry_bits) - 1 in
  let n = c.Case.n in
  let extremes =
    [
      F.Matrix.create ~rows:n ~cols:n;
      F.Matrix.init ~rows:n ~cols:n (fun _ _ -> hi);
      F.Matrix.scale hi (F.Matrix.identity n);
    ]
    @ (if c.Case.signed then [ F.Matrix.init ~rows:n ~cols:n (fun _ _ -> -hi) ]
       else [])
  in
  let singles =
    List.concat_map
      (fun v ->
        List.init (n * n) (fun e ->
            F.Matrix.init ~rows:n ~cols:n (fun i j ->
                if (i * n) + j = e then v else 0)))
      (hi :: (if c.Case.signed then [ -hi ] else []))
  in
  let ramp =
    List.init ((n * n) - 1) (fun k ->
        F.Matrix.init ~rows:n ~cols:n (fun i j ->
            if (i * n) + j <= k then hi else 0))
  in
  extremes @ singles @ ramp
  @ List.init 40 (fun i -> Case.matrix { c with Case.seed = c.Case.seed + i } ~index)

let subject_circuit_and_inputs (c : Case.t) =
  match c.kind with
  | Case.Trace ->
      let built = Oracle.trace_built c in
      let circuit = Option.get built.T.Trace_circuit.circuit in
      let inputs =
        Array.of_list
          (List.map (T.Trace_circuit.encode_input built) (subject_matrices c ~index:0))
      in
      (* The differential oracle compares the decoded trace value — read
         off internal [trace_repr] wires — across engines, not just the
         single threshold-query output bit.  Judging mutants on the
         output bit alone would under-report the oracle's power: a
         perturbed interior gate that shifts the trace value without
         crossing [tau] is caught by the oracle but masked at the
         output. *)
      let observe r =
        Mutate.default_observe r
        ^ "|"
        ^ string_of_int
            (Tcmm_arith.Repr.eval_signed
               (fun w -> Th.Simulator.value r w)
               built.T.Trace_circuit.trace_repr)
      in
      (circuit, inputs, observe)
  | Case.Matmul | Case.Conv ->
      let built = Oracle.matmul_built c in
      let circuit = Option.get built.T.Matmul_circuit.circuit in
      let bs = subject_matrices c ~index:1 in
      let inputs =
        Array.of_list
          (List.map2
             (fun a b -> T.Matmul_circuit.encode_inputs built ~a ~b)
             (subject_matrices c ~index:0)
             (List.rev bs))
      in
      (* Matmul outputs carry the full product matrix bit-by-bit, so the
         output observation already matches the oracle. *)
      (circuit, inputs, Mutate.default_observe)

let mutation_battery ?(seed = 3) ~mutants () =
  let subjects = mutation_subjects () in
  let per = max 1 (mutants / List.length subjects) in
  let rng = Prng.create ~seed in
  Mutate.merge
    (List.map
       (fun c ->
         let circuit, inputs, observe = subject_circuit_and_inputs c in
         Mutate.sweep ~observe ~rng:(Prng.split rng) ~count:per ~inputs circuit)
       subjects)

(* ------------------------------------------------------------------ *)
(* Forked loopback server                                             *)
(* ------------------------------------------------------------------ *)

(* Port 0 binds a kernel-assigned ephemeral port in the parent before
   forking, so concurrent harness runs never collide on an address and
   the client connects into the already-listening backlog with no
   bind-retry loop. *)
let with_loopback_server f =
  let cfg =
    {
      (Tcmm_server.Server.default_config (P.Tcp ("127.0.0.1", 0))) with
      Tcmm_server.Server.cache_capacity = 8;
    }
  in
  let listen_fd, addr = Tcmm_server.Server.bind cfg in
  let cfg = { cfg with Tcmm_server.Server.addr } in
  match Unix.fork () with
  | 0 ->
      (try Tcmm_server.Server.serve_fd cfg listen_fd with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close listen_fd;
      Fun.protect
        ~finally:(fun () ->
          (try ignore (Tcmm_server.Client.shutdown addr) with _ -> ());
          ignore (Unix.waitpid [] pid))
        (fun () ->
          let cl = Tcmm_server.Client.connect addr in
          Fun.protect
            ~finally:(fun () -> Tcmm_server.Client.close cl)
            (fun () -> f cl))

(* ------------------------------------------------------------------ *)
(* Aggregate run                                                      *)
(* ------------------------------------------------------------------ *)

let replay_corpus dir =
  List.filter_map
    (fun (file, case) ->
      match Oracle.check case with
      | Ok () -> None
      | Error message ->
          Some { Fuzz.case; original = case; message = file ^ ": " ^ message })
    (Corpus.load_dir dir)

let run ?(seed = 1) ?(cases = 50) ?incremental_cases ?(mutants = 120)
    ?(include_server = false) ?corpus_dir ?algo () =
  let incremental_cases = Option.value incremental_cases ~default:cases in
  (* The server legs must run first: they fork, and OCaml forbids
     [Unix.fork] once any domain has ever been spawned — which the
     in-process oracle's multi-domain evaluation does.  (The incremental
     server leg builds circuits client-side too, but sequentially.) *)
  let server_legs =
    if include_server then
      Some
        (with_loopback_server (fun cl ->
             let plain =
               Fuzz.run_server ~seed ?algo ~cases:(max 10 (cases / 5)) cl
             in
             let incr =
               Fuzz.run_server_incremental ~seed:(seed + 4) ?algo
                 ~cases:(max 10 (incremental_cases / 5))
                 cl
             in
             (plain, incr)))
    else None
  in
  let server_fuzz = Option.map fst server_legs in
  let server_incremental = Option.map snd server_legs in
  let corpus_failures =
    match corpus_dir with None -> [] | Some dir -> replay_corpus dir
  in
  (* Replayed corpus cases count toward the leg they exercise. *)
  let corpus_incr, corpus_plain =
    List.partition
      (fun (f : Fuzz.failure) -> f.Fuzz.case.Case.flips <> [])
      corpus_failures
  in
  let certificates = certify_battery ?algo () in
  let fuzz = Fuzz.run ~seed ?algo ~cases () in
  let incremental =
    Fuzz.run_incremental ~seed:(seed + 1) ?algo ~cases:incremental_cases ()
  in
  (match corpus_dir with
  | Some dir ->
      List.iter
        (fun (f : Fuzz.failure) ->
          ignore (Corpus.save ~dir ~message:f.Fuzz.message f.Fuzz.case))
        (fuzz.Fuzz.failures @ incremental.Fuzz.failures)
  | None -> ());
  let merge extra (o : Fuzz.outcome) =
    {
      Fuzz.tested = o.Fuzz.tested + List.length extra;
      failures = extra @ o.Fuzz.failures;
    }
  in
  let fuzz = merge corpus_plain fuzz in
  let incremental = merge corpus_incr incremental in
  let mutation = mutation_battery ~seed:(seed + 2) ~mutants () in
  let protocol = Mutate.protocol_truncation_sweep ~seed:(seed + 3) () in
  {
    certificates;
    fuzz;
    incremental;
    server_fuzz;
    server_incremental;
    mutation;
    protocol;
    seed;
  }

let all_ok r =
  let clean = function
    | None -> true
    | Some (o : Fuzz.outcome) -> o.Fuzz.failures = []
  in
  List.for_all Certify.ok r.certificates
  && r.fuzz.Fuzz.failures = []
  && r.incremental.Fuzz.failures = []
  && clean r.server_fuzz
  && clean r.server_incremental
  && Mutate.kill_rate r.mutation >= kill_threshold
  && r.protocol.Mutate.killed = r.protocol.Mutate.cuts

(* ------------------------------------------------------------------ *)
(* Reporting                                                          *)
(* ------------------------------------------------------------------ *)

let print_report r =
  let open Tablefmt in
  print ~title:"Certificates"
    ~header:[ "kind"; "algo"; "schedule"; "n"; "gates"; "edges"; "depth"; "built"; "verdict" ]
    ~rows:
      (List.map
         (fun (c : Certify.t) ->
           [
             Str (Case.kind_name c.Certify.spec.Certify.kind);
             Str c.Certify.spec.Certify.algo;
             Str c.Certify.spec.Certify.schedule;
             Int c.Certify.spec.Certify.n;
             Int c.Certify.stats.Th.Stats.gates;
             Int c.Certify.stats.Th.Stats.edges;
             Int c.Certify.stats.Th.Stats.depth;
             Str (if c.Certify.materialized then "full" else "count");
             Str (if Certify.ok c then "ok" else "VIOLATED");
           ])
         r.certificates);
  List.iter
    (fun (c : Certify.t) ->
      if not (Certify.ok c) then Format.printf "  %a@." Certify.pp c)
    r.certificates;
  let fuzz_row label (o : Fuzz.outcome) =
    [
      Str label;
      Int o.Fuzz.tested;
      Int (List.length o.Fuzz.failures);
      Str
        (match o.Fuzz.failures with
        | [] -> ""
        | f :: _ -> Format.asprintf "%a" Case.pp f.Fuzz.case);
    ]
  in
  let opt_row label = function
    | None -> []
    | Some o -> [ fuzz_row label o ]
  in
  print ~title:"Differential fuzzing"
    ~header:[ "target"; "cases"; "failures"; "first counterexample" ]
    ~rows:
      ([ fuzz_row "in-process" r.fuzz; fuzz_row "incremental" r.incremental ]
      @ opt_row "server" r.server_fuzz
      @ opt_row "server-incremental" r.server_incremental);
  let opt_failures = function
    | None -> []
    | Some (o : Fuzz.outcome) -> o.Fuzz.failures
  in
  List.iter
    (fun (f : Fuzz.failure) ->
      Format.printf "  FAIL %a: %s@." Case.pp f.Fuzz.case f.Fuzz.message)
    (r.fuzz.Fuzz.failures @ r.incremental.Fuzz.failures
    @ opt_failures r.server_fuzz
    @ opt_failures r.server_incremental);
  print ~title:"Mutation sweep"
    ~header:[ "operator"; "killed"; "total"; "rate" ]
    ~rows:
      (List.map
         (fun (op, k, t) ->
           [ Str op; Int k; Int t; Ratio (float_of_int k /. float_of_int (max 1 t)) ])
         r.mutation.Mutate.per_op
      @ [
          [
            Str "total";
            Int (r.mutation.Mutate.structural + r.mutation.Mutate.behavioral);
            Int r.mutation.Mutate.total;
            Ratio (Mutate.kill_rate r.mutation);
          ];
          [
            Str "protocol-truncation";
            Int r.protocol.Mutate.killed;
            Int r.protocol.Mutate.cuts;
            Ratio
              (float_of_int r.protocol.Mutate.killed
              /. float_of_int (max 1 r.protocol.Mutate.cuts));
          ];
        ]);
  List.iter
    (fun (op, gate) -> Format.printf "  survivor: %s at gate %d@." op gate)
    r.mutation.Mutate.survived;
  Format.printf "overall: %s@." (if all_ok r then "OK" else "FAILED")

let to_json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"certificates\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Certify.to_json c))
    r.certificates;
  Buffer.add_string b "],";
  let fuzz_json (o : Fuzz.outcome) =
    Printf.sprintf "{\"tested\":%d,\"failures\":%d}" o.Fuzz.tested
      (List.length o.Fuzz.failures)
  in
  Buffer.add_string b (Printf.sprintf "\"fuzz\":%s," (fuzz_json r.fuzz));
  Buffer.add_string b
    (Printf.sprintf "\"incremental\":%s," (fuzz_json r.incremental));
  (match r.server_fuzz with
  | Some o -> Buffer.add_string b (Printf.sprintf "\"server_fuzz\":%s," (fuzz_json o))
  | None -> ());
  (match r.server_incremental with
  | Some o ->
      Buffer.add_string b
        (Printf.sprintf "\"server_incremental\":%s," (fuzz_json o))
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf
       "\"mutation\":{\"total\":%d,\"structural\":%d,\"behavioral\":%d,\
        \"kill_rate\":%.4f},"
       r.mutation.Mutate.total r.mutation.Mutate.structural
       r.mutation.Mutate.behavioral
       (Mutate.kill_rate r.mutation));
  Buffer.add_string b
    (Printf.sprintf
       "\"protocol\":{\"cuts\":%d,\"killed\":%d},\"seed\":%d,\"ok\":%b}"
       r.protocol.Mutate.cuts r.protocol.Mutate.killed r.seed (all_ok r));
  Buffer.contents b
