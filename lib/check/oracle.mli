(** The differential oracle: one {!Case.t} in, agreement or a
    counterexample out.

    For each case the oracle builds the circuit once (builds are memoized
    on {!Case.build_key} across calls, so a fuzz run pays for each
    configuration once) and demands {e bit-identical} results from every
    evaluation path in the repository:

    - plain integer arithmetic ({!Tcmm.Trace_circuit.reference} /
      {!Tcmm_fastmm.Matrix.mul}) — the ground truth;
    - the gate-at-a-time reference interpreter ({!Tcmm_threshold.Simulator},
      overflow-checked);
    - the packed levelized engine, sequential and with 2 domains;
    - {!Tcmm_threshold.Packed.run_batch} with several lanes (the case's
      matrix plus further deterministic draws);
    - for matmul cases, the same lanes through a [Builder.Direct] build
      whose packed form dispatches the template-specialized kernels
      ({!Tcmm_threshold.Kernel}), pitted against the all-generic batch —
      a kernel miscompile shows up as a lane disagreement and is shrunk
      and saved to the corpus like any other divergence.

    A [Conv] case runs the {e conv} leg instead: the case's im2col
    workload ({!Case.conv_job}) must score identically under direct
    convolution, the integer im2col product, and the circuit-evaluated
    embedded product.  A [kronpow] case builds all of its circuits with
    the Kronecker-power optimization — the same agreement demands then
    pit the rewritten linear circuits against ground truth.

    A case carrying [flips] batches instead runs the {e incremental}
    leg ({!check_incremental}): the batches replay through one
    {!Tcmm_threshold.Packed.session} and every intermediate state must
    be bit-identical — [values], [outputs], [firings], [level_firings]
    — to a from-scratch evaluation of the same inputs. *)

val check : Case.t -> (unit, string) result
(** [Ok ()] when every path agrees; [Error msg] names the first
    disagreeing pair.  Raised exceptions from building (unsatisfiable
    schedules, overflow) are caught and reported as [Error].
    Dispatches to {!check_incremental} when [flips <> []]. *)

val check_incremental : Case.t -> (unit, string) result
(** The incremental-session leg on a [flips]-carrying case: evaluate
    {!Case.graph}'s adjacency from scratch, then apply each flip batch
    via {!Tcmm_graph.Stream.delta} + {!Tcmm_threshold.Packed.update},
    comparing every state (base included) against a from-scratch
    {!Tcmm_threshold.Packed.run} and the integer trace reference.
    [Error] on a non-trace / signed / multi-bit case.  Exceptions
    propagate (callers go through {!check}, which catches them). *)

val trace_built : Case.t -> Tcmm.Trace_circuit.built
(** The memoized build behind a [Trace] case (for mutation sweeps that
    need the circuit and its input encoder).  Raises [Invalid_argument]
    on a [Matmul] case. *)

val trace_packed : Case.t -> Tcmm_threshold.Packed.t
(** The packed form of {!trace_built}, memoized on the same key (the
    incremental leg's sessions share its transposed fanout index). *)

val matmul_built : Case.t -> Tcmm.Matmul_circuit.built
(** Likewise for [Matmul] (and [Conv] — the im2col product runs through
    the same circuit) cases.  Raises [Invalid_argument] on a [Trace]
    case. *)

val clear_cache : unit -> unit
(** Drop the memoized builds (tests use this to bound memory). *)
