(** The differential oracle: one {!Case.t} in, agreement or a
    counterexample out.

    For each case the oracle builds the circuit once (builds are memoized
    on {!Case.build_key} across calls, so a fuzz run pays for each
    configuration once) and demands {e bit-identical} results from every
    evaluation path in the repository:

    - plain integer arithmetic ({!Tcmm.Trace_circuit.reference} /
      {!Tcmm_fastmm.Matrix.mul}) — the ground truth;
    - the gate-at-a-time reference interpreter ({!Tcmm_threshold.Simulator},
      overflow-checked);
    - the packed levelized engine, sequential and with 2 domains;
    - {!Tcmm_threshold.Packed.run_batch} with several lanes (the case's
      matrix plus further deterministic draws);
    - for matmul cases, the same lanes through a [Builder.Direct] build
      whose packed form dispatches the template-specialized kernels
      ({!Tcmm_threshold.Kernel}), pitted against the all-generic batch —
      a kernel miscompile shows up as a lane disagreement and is shrunk
      and saved to the corpus like any other divergence. *)

val check : Case.t -> (unit, string) result
(** [Ok ()] when every path agrees; [Error msg] names the first
    disagreeing pair.  Raised exceptions from building (unsatisfiable
    schedules, overflow) are caught and reported as [Error]. *)

val trace_built : Case.t -> Tcmm.Trace_circuit.built
(** The memoized build behind a [Trace] case (for mutation sweeps that
    need the circuit and its input encoder).  Raises [Invalid_argument]
    on a [Matmul] case. *)

val matmul_built : Case.t -> Tcmm.Matmul_circuit.built
(** Likewise for [Matmul] cases. *)

val clear_cache : unit -> unit
(** Drop the memoized builds (tests use this to bound memory). *)
