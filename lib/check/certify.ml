module T = Tcmm
module F = Tcmm_fastmm
module Th = Tcmm_threshold
module Prng = Tcmm_util.Prng

type spec = {
  kind : Case.kind;
  algo : string;
  schedule : string;
  d : int;
  n : int;
  entry_bits : int;
  signed : bool;
  tau : int;
}

type verdict = { name : string; ok : bool; detail : string }

type t = {
  spec : spec;
  materialized : bool;
  stats : Th.Stats.t;
  verdicts : verdict list;
}

let ok t = List.for_all (fun v -> v.ok) t.verdicts
let failures t = List.filter (fun v -> not v.ok) t.verdicts

let verdict name ok fmt = Format.kasprintf (fun detail -> { name; ok; detail }) fmt

let gate_kind = function
  | Case.Trace -> `Trace
  | Case.Matmul | Case.Conv -> `Matmul

let random_matrix rng ~n ~entry_bits ~signed =
  let hi = (1 lsl entry_bits) - 1 in
  let lo = if signed then -hi else 0 in
  F.Matrix.random rng ~rows:n ~cols:n ~lo ~hi

(* Independent re-derivation of the structural measures from the raw gate
   array — no use of the circuit's precomputed [depths] or the builder's
   running tallies. *)
let walk (c : Th.Circuit.t) =
  let num_inputs = c.Th.Circuit.num_inputs in
  let num_gates = Array.length c.Th.Circuit.gates in
  let depth_of = Array.make (num_inputs + num_gates) 0 in
  let edges = ref 0 and max_fan_in = ref 0 and depth = ref 0 in
  Array.iteri
    (fun g (gate : Th.Gate.t) ->
      let fan_in = Array.length gate.Th.Gate.inputs in
      edges := !edges + fan_in;
      max_fan_in := max !max_fan_in fan_in;
      let d = ref 0 in
      Array.iter (fun w -> d := max !d depth_of.(w)) gate.Th.Gate.inputs;
      depth_of.(num_inputs + g) <- !d + 1;
      depth := max !depth (!d + 1))
    c.Th.Circuit.gates;
  (num_gates, num_inputs + num_gates, !edges, !max_fan_in, !depth)

let check_schedule spec schedule =
  let algo = Case.algo_of_name spec.algo in
  let levels = T.Level_schedule.levels schedule in
  let l = T.Level_schedule.height ~t_dim:algo.F.Bilinear.t_dim ~n:spec.n in
  let shape_ok =
    Array.length levels >= 2
    && levels.(0) = 0
    && T.Level_schedule.final_level schedule = l
    && Array.for_all Fun.id
         (Array.init (Array.length levels - 1) (fun i -> levels.(i) < levels.(i + 1)))
  in
  let shape =
    verdict "schedule-shape" shape_ok "%a, L=%d" T.Level_schedule.pp schedule l
  in
  if spec.schedule = "thm45" then
    let steps = T.Level_schedule.steps schedule in
    [
      shape;
      verdict "schedule-steps" (steps <= spec.d) "steps %d <= d %d" steps spec.d;
    ]
  else [ shape ]

let check_depths spec schedule (stats : Th.Stats.t) =
  let kind = gate_kind spec.kind in
  let model = T.Gate_model.predicted_depth ~kind schedule in
  let depth_model =
    verdict "depth-model" (stats.Th.Stats.depth <= model) "depth %d <= model %d"
      stats.Th.Stats.depth model
  in
  if spec.schedule = "thm45" then
    let bound = T.Gate_model.depth_bound ~kind ~d:spec.d in
    [
      depth_model;
      verdict "depth-theorem"
        (stats.Th.Stats.depth <= bound)
        "depth %d <= %s %d" stats.Th.Stats.depth
        (match kind with `Trace -> "2d+5" | `Matmul -> "4d+1")
        bound;
    ]
  else [ depth_model ]

let check_dp (dp : T.Gate_count.totals) (stats : Th.Stats.t) =
  verdict "gate-count-dp"
    (stats.Th.Stats.gates = dp.T.Gate_count.gates
    && stats.Th.Stats.edges = dp.T.Gate_count.edges)
    "built %d gates / %d edges, DP predicts %d / %d" stats.Th.Stats.gates
    stats.Th.Stats.edges dp.T.Gate_count.gates dp.T.Gate_count.edges

let check_walk circuit (stats : Th.Stats.t) =
  match circuit with
  | None -> verdict "walk" true "skipped (count-only build)"
  | Some c ->
      let gates, wires, edges, max_fan_in, depth = walk c in
      let ok =
        gates = stats.Th.Stats.gates
        && wires = Th.Circuit.num_wires c
        && edges = stats.Th.Stats.edges
        && max_fan_in = stats.Th.Stats.max_fan_in
        && depth = stats.Th.Stats.depth
      in
      verdict "walk" ok
        "re-derived %d gates, %d wires, %d edges, fan-in %d, depth %d" gates wires
        edges max_fan_in depth

let check_validate circuit =
  match circuit with
  | None -> verdict "validate" true "skipped (count-only build)"
  | Some c -> (
      match Th.Validate.errors c with
      | [] -> verdict "validate" true "no error-severity issues"
      | issues ->
          verdict "validate" false "%d error(s), first: %a" (List.length issues)
            Th.Validate.pp_issue (List.hd issues))

let check_firings ~samples ~seed circuit encode (stats : Th.Stats.t) =
  match circuit with
  | None -> verdict "firing-feasibility" true "skipped (count-only build)"
  | Some c ->
      let rng = Prng.create ~seed in
      let rec go i =
        if i >= samples then verdict "firing-feasibility" true "%d samples" samples
        else
          let input = encode rng in
          let r = Th.Simulator.run ~check:true c input in
          let lf = r.Th.Simulator.level_firings in
          if Array.length lf <> stats.Th.Stats.depth then
            verdict "firing-feasibility" false "sample %d: %d levels, depth %d" i
              (Array.length lf) stats.Th.Stats.depth
          else if Array.fold_left ( + ) 0 lf <> r.Th.Simulator.firings then
            verdict "firing-feasibility" false
              "sample %d: level firings sum %d <> firings %d" i
              (Array.fold_left ( + ) 0 lf)
              r.Th.Simulator.firings
          else
            let bad = ref (-1) in
            Array.iteri
              (fun l f ->
                if f < 0 || f > stats.Th.Stats.gates_by_depth.(l) then bad := l)
              lf;
            if !bad >= 0 then
              verdict "firing-feasibility" false
                "sample %d: level %d fires %d of %d gates" i !bad lf.(!bad)
                stats.Th.Stats.gates_by_depth.(!bad)
            else go (i + 1)
      in
      (try go 0
       with e -> verdict "firing-feasibility" false "%s" (Printexc.to_string e))

let certify ?(samples = 4) ?(seed = 7) ?(materialize_cap = 150_000) spec =
  let algo = Case.algo_of_name spec.algo in
  let schedule =
    T.Level_schedule.resolve ~algo ~name:spec.schedule ~d:spec.d ~n:spec.n
  in
  let dp =
    match spec.kind with
    | Case.Trace ->
        T.Gate_count.trace ~algo ~schedule ~entry_bits:spec.entry_bits
          ~signed_inputs:spec.signed ~n:spec.n ()
    | Case.Matmul | Case.Conv ->
        T.Gate_count_matmul.matmul ~algo ~schedule ~entry_bits:spec.entry_bits
          ~signed_inputs:spec.signed ~n:spec.n ()
  in
  let materialized = dp.T.Gate_count.gates <= materialize_cap in
  let mode = if materialized then Th.Builder.Materialize else Th.Builder.Count_only in
  let stats, circuit, encode =
    match spec.kind with
    | Case.Trace ->
        let built =
          T.Trace_circuit.build ~mode ~algo ~schedule ~signed_inputs:spec.signed
            ~entry_bits:spec.entry_bits ~tau:spec.tau ~n:spec.n ()
        in
        ( T.Trace_circuit.stats built,
          built.T.Trace_circuit.circuit,
          fun rng ->
            T.Trace_circuit.encode_input built
              (random_matrix rng ~n:spec.n ~entry_bits:spec.entry_bits
                 ~signed:spec.signed) )
    | Case.Matmul | Case.Conv ->
        let built =
          T.Matmul_circuit.build ~mode ~algo ~schedule ~signed_inputs:spec.signed
            ~entry_bits:spec.entry_bits ~n:spec.n ()
        in
        ( T.Matmul_circuit.stats built,
          built.T.Matmul_circuit.circuit,
          fun rng ->
            let a =
              random_matrix rng ~n:spec.n ~entry_bits:spec.entry_bits
                ~signed:spec.signed
            in
            let b =
              random_matrix rng ~n:spec.n ~entry_bits:spec.entry_bits
                ~signed:spec.signed
            in
            T.Matmul_circuit.encode_inputs built ~a ~b )
  in
  let verdicts =
    check_schedule spec schedule
    @ check_depths spec schedule stats
    @ [
        check_dp dp stats;
        check_walk circuit stats;
        check_validate circuit;
        check_firings ~samples ~seed circuit encode stats;
      ]
  in
  { spec; materialized; stats; verdicts }

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let b = Buffer.create 512 in
  Buffer.add_string b "{";
  Buffer.add_string b
    (Printf.sprintf
       "\"kind\":\"%s\",\"algo\":\"%s\",\"schedule\":\"%s\",\"d\":%d,\"n\":%d,\
        \"entry_bits\":%d,\"signed\":%b,\"materialized\":%b,\"ok\":%b,"
       (Case.kind_name t.spec.kind)
       (json_escape t.spec.algo) (json_escape t.spec.schedule) t.spec.d t.spec.n
       t.spec.entry_bits t.spec.signed t.materialized (ok t));
  Buffer.add_string b
    (Printf.sprintf "\"gates\":%d,\"edges\":%d,\"depth\":%d,\"max_fan_in\":%d,"
       t.stats.Th.Stats.gates t.stats.Th.Stats.edges t.stats.Th.Stats.depth
       t.stats.Th.Stats.max_fan_in);
  Buffer.add_string b "\"checks\":[";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"name\":\"%s\",\"ok\":%b,\"detail\":\"%s\"}"
           (json_escape v.name) v.ok (json_escape v.detail)))
    t.verdicts;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp ppf t =
  Format.fprintf ppf "%s/%s/%s n=%d: %s"
    (Case.kind_name t.spec.kind)
    t.spec.algo t.spec.schedule t.spec.n
    (if ok t then "certified"
     else
       String.concat ", "
         (List.map (fun v -> v.name ^ ": " ^ v.detail) (failures t)))
