module P = Tcmm_server.Protocol
module Sv = Tcmm_server
module T = Tcmm
module F = Tcmm_fastmm
module Prng = Tcmm_util.Prng
module Clock = Tcmm_util.Clock
module Tablefmt = Tcmm_util.Tablefmt

type fault = Truncate | Corrupt | Stall | Reset | Reorder | Kill_restart

let fault_name = function
  | Truncate -> "truncate"
  | Corrupt -> "corrupt"
  | Stall -> "stall"
  | Reset -> "reset"
  | Reorder -> "reorder"
  | Kill_restart -> "kill-restart"

let all_faults = [ Truncate; Corrupt; Stall; Reset; Reorder; Kill_restart ]

type outcome = {
  seed : int;
  requests : int;  (** logical requests issued across all segments *)
  completed : int;  (** answered with a result *)
  verified : int;  (** completed responses checked bit-identical to the oracle *)
  typed_failures : int;  (** requests resolved by a typed client failure *)
  watchdog_timeouts : int;  (** reads cut off by the client watchdog *)
  faults_injected : int;
  per_fault : (string * int) list;
  shed_observed : int;  (** [Overloaded] replies in the overload segment *)
  expired_observed : int;  (** [Deadline_exceeded] replies in the deadline segment *)
  retried_ok : int;  (** requests completed only after bounded retry *)
  drained_ok : bool;  (** SIGTERM drain answered the whole in-flight burst *)
  accounting_ok : bool;  (** server metrics account for every admitted request *)
  store_saves : int;  (** artifacts persisted by the store segment's first life *)
  store_loads : int;  (** warm loads observed after its SIGKILL restart *)
  store_zero_rebuilds : bool;
      (** the restarted server answered everything without building *)
  fleet_workers : int;  (** fleet size of the fleet segment; 0 = not run *)
  fleet_kills : int;  (** fleet workers SIGKILLed mid-soak *)
  fleet_restarts : int;  (** supervisor restarts observed in the final roster *)
  violations : string list;
}

let ok o = o.violations = []

(* ------------------------------------------------------------------ *)
(* The workload: one small matmul circuit, oracle-checked             *)
(* ------------------------------------------------------------------ *)

let spec =
  {
    P.kind = P.Matmul;
    algo = "strassen";
    schedule = "thm45";
    d = 2;
    n = 4;
    entry_bits = 2;
    signed = true;
    tau = 0;
    kronpow = false;
  }

let oracle_built =
  lazy
    (let algo = F.Instances.strassen in
     let schedule =
       T.Level_schedule.resolve ~algo ~name:spec.P.schedule ~d:spec.P.d
         ~n:spec.P.n
     in
     T.Matmul_circuit.build ~algo ~schedule ~signed_inputs:spec.P.signed
       ~entry_bits:spec.P.entry_bits ~n:spec.P.n ())

(* Sequential packed evaluation only: this module forks server children,
   and OCaml forbids [Unix.fork] after any domain has been spawned. *)
let oracle ~a ~b = T.Matmul_circuit.run (Lazy.force oracle_built) ~a ~b

let random_pair rng =
  let n = spec.P.n in
  let hi = (1 lsl spec.P.entry_bits) - 1 in
  ( F.Matrix.random rng ~rows:n ~cols:n ~lo:(-hi) ~hi,
    F.Matrix.random rng ~rows:n ~cols:n ~lo:(-hi) ~hi )

(* ------------------------------------------------------------------ *)
(* Server lifecycle (kill-and-restart needs ownership)                *)
(* ------------------------------------------------------------------ *)

type server = { pid : int; addr : P.addr }

(* Port 0 on every (re)start: a restarted server comes back on a fresh
   kernel-assigned address, exactly the reconnect path a failed-over
   client must handle. *)
let start_server cfg0 =
  let cfg = { cfg0 with Sv.Server.addr = P.Tcp ("127.0.0.1", 0) } in
  let listen_fd, addr = Sv.Server.bind cfg in
  let cfg = { cfg with Sv.Server.addr = addr } in
  match Unix.fork () with
  | 0 ->
      (try Sv.Server.serve_fd cfg listen_fd with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close listen_fd;
      { pid; addr }

let kill_server s =
  (try Unix.kill s.pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] s.pid)

(* Wait for exit with a watchdog: a drain that never quiesces is
   exactly the hang class this harness exists to catch, so escalate to
   SIGKILL and report instead of blocking forever. *)
let await_exit ~patience s =
  let deadline = Clock.now () +. patience in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] s.pid with
    | 0, _ ->
        if Clock.now () >= deadline then begin
          (try Unix.kill s.pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] s.pid);
          false
        end
        else begin
          Unix.sleepf 0.02;
          go ()
        end
    | _ -> true
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Raw transport (fault injection works below the client)             *)
(* ------------------------------------------------------------------ *)

let raw_connect addr =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  match Unix.connect fd (P.sockaddr_of_addr addr) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)

let write_all fd s =
  let len = String.length s in
  let written = ref 0 in
  try
    while !written < len do
      written := !written + Unix.write_substring fd s !written (len - !written)
    done;
    Ok ()
  with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let read_timeout = 10.

let read_response fd =
  match
    P.read_frame_within fd
      ~deadline:(Clock.now () +. read_timeout)
      ~now:Clock.now
  with
  | Error `Timeout -> Error `Timeout
  | Error (`Closed msg) -> Error (`Closed msg)
  | Ok payload -> (
      match P.decode_response payload with
      | Ok r -> Ok r
      | Error msg -> Error (`Closed ("undecodable response: " ^ msg)))

(* ------------------------------------------------------------------ *)
(* Soak state                                                         *)
(* ------------------------------------------------------------------ *)

type st = {
  rng : Prng.t;
  mutable requests : int;
  mutable completed : int;
  mutable verified : int;
  mutable typed_failures : int;
  mutable watchdog_timeouts : int;
  mutable faults_injected : int;
  fault_counts : (fault * int ref) list;
  mutable shed_observed : int;
  mutable expired_observed : int;
  mutable retried_ok : int;
  mutable drained_ok : bool;
  mutable accounting_ok : bool;
  mutable store_saves : int;
  mutable store_loads : int;
  mutable store_zero_rebuilds : bool;
  mutable fleet_kills : int;
  mutable fleet_restarts : int;
  mutable violations : string list;
}

let violation st fmt =
  Printf.ksprintf (fun msg -> st.violations <- msg :: st.violations) fmt

let count_fault st f =
  st.faults_injected <- st.faults_injected + 1;
  incr (List.assq f st.fault_counts)

let policy =
  { Sv.Client.attempts = 6; timeout_ms = read_timeout *. 1000.;
    base_delay_ms = 25.; max_delay_ms = 500. }

(* One logical request through the retrying client.  Every terminal
   state is typed: a verified completion, a typed failure, or a
   correctness violation. *)
let issue st addr (a, b) =
  st.requests <- st.requests + 1;
  match Sv.Client.call ~policy ~seed:(Prng.next st.rng) addr (P.Run_matmul (spec, a, b)) with
  | Ok (P.Matmul_result (c, _)) ->
      st.completed <- st.completed + 1;
      let expect = oracle ~a ~b in
      if F.Matrix.equal c expect && F.Matrix.equal c (F.Matrix.mul a b) then
        st.verified <- st.verified + 1
      else violation st "completed response differs from Matmul_circuit.run"
  | Ok _ ->
      violation st "run request answered with a non-run response"
  | Error f ->
      (match f with Sv.Client.Timeout -> st.watchdog_timeouts <- st.watchdog_timeouts + 1 | _ -> ());
      st.typed_failures <- st.typed_failures + 1

(* ------------------------------------------------------------------ *)
(* Fault legs                                                         *)
(* ------------------------------------------------------------------ *)

let frame_of req = P.frame (P.encode_request req)

(* Truncate / Reset: a partial frame then close.  The server must treat
   it as a dead connection, never as a request; the request is then
   made for real on a fresh connection. *)
let leg_partial_then_retry st addr pair =
  let full = frame_of (P.Run_matmul (spec, fst pair, snd pair)) in
  let cut = 1 + Prng.int st.rng ~bound:(String.length full - 1) in
  (match raw_connect addr with
  | Error _ -> ()
  | Ok fd ->
      ignore (write_all fd (String.sub full 0 cut));
      close_fd fd);
  issue st addr pair

(* Stall: split a valid frame around a mid-frame pause.  The dechunker
   must reassemble it and the reply must still be bit-exact. *)
let leg_stall st addr (a, b) =
  st.requests <- st.requests + 1;
  let full = frame_of (P.Run_matmul (spec, a, b)) in
  let cut = 1 + Prng.int st.rng ~bound:(String.length full - 1) in
  match raw_connect addr with
  | Error _ ->
      st.typed_failures <- st.typed_failures + 1
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> close_fd fd)
        (fun () ->
          match
            match write_all fd (String.sub full 0 cut) with
            | Error _ as e -> e
            | Ok () ->
                Unix.sleepf (0.01 +. (Prng.float st.rng *. 0.04));
                write_all fd (String.sub full cut (String.length full - cut))
          with
          | Error _ -> st.typed_failures <- st.typed_failures + 1
          | Ok () -> (
              match read_response fd with
              | Ok (P.Matmul_result (c, _)) ->
                  st.completed <- st.completed + 1;
                  if F.Matrix.equal c (oracle ~a ~b) then
                    st.verified <- st.verified + 1
                  else violation st "stalled frame produced wrong bits"
              | Ok _ -> violation st "stalled frame: unexpected response"
              | Error `Timeout ->
                  st.watchdog_timeouts <- st.watchdog_timeouts + 1;
                  violation st "stalled frame: server hung instead of replying"
              | Error (`Closed _) -> st.typed_failures <- st.typed_failures + 1))

(* Corrupt: flip one payload byte (framing intact — framing damage is
   the truncate/reset legs' job and the dechunker property test's).
   The flipped bytes may still decode to a VALID request; the reply is
   then verified against that request's own oracle, so the
   bit-exactness claim survives the server answering "the question the
   wire actually asked". *)
let leg_corrupt st addr (a, b) =
  let payload = P.encode_request (P.Run_matmul (spec, a, b)) in
  let pick () =
    let pos = Prng.int st.rng ~bound:(String.length payload) in
    let bit = Prng.int st.rng ~bound:8 in
    let bytes = Bytes.of_string payload in
    Bytes.set bytes pos
      (Char.chr (Char.code (Bytes.get bytes pos) lxor (1 lsl bit)));
    Bytes.to_string bytes
  in
  (* Only send corruptions whose server-side meaning we can predict
     cheaply: an undecodable payload, the same-spec matmul with
     perturbed matrices, or a ping.  A flip that rewrites the spec
     would trigger an arbitrary (possibly huge) circuit build. *)
  let rec find tries =
    if tries = 0 then None
    else
      let corrupted = pick () in
      match P.decode_request corrupted with
      | Error _ -> Some (corrupted, `Undecodable)
      | Ok (P.Run_matmul (s, a', b')) when s = spec ->
          Some (corrupted, `Matmul (a', b'))
      | Ok P.Ping -> Some (corrupted, `Ping)
      | Ok _ -> find (tries - 1)
  in
  match find 8 with
  | None -> leg_partial_then_retry st addr (a, b)
  | Some (corrupted, expectation) -> (
      st.requests <- st.requests + 1;
      match raw_connect addr with
      | Error _ -> st.typed_failures <- st.typed_failures + 1
      | Ok fd ->
          Fun.protect
            ~finally:(fun () -> close_fd fd)
            (fun () ->
              match write_all fd (P.frame corrupted) with
              | Error _ -> st.typed_failures <- st.typed_failures + 1
              | Ok () -> (
                  match (read_response fd, expectation) with
                  | Ok (P.Error _), `Undecodable ->
                      st.typed_failures <- st.typed_failures + 1
                  | Ok P.Pong, `Ping -> st.completed <- st.completed + 1
                  | Ok (P.Matmul_result (c, _)), `Matmul (a', b') -> (
                      st.completed <- st.completed + 1;
                      match oracle ~a:a' ~b:b' with
                      | expect ->
                          if F.Matrix.equal c expect then
                            st.verified <- st.verified + 1
                          else
                            violation st
                              "corrupted-but-valid request answered with wrong \
                               bits"
                      | exception _ ->
                          violation st
                            "server evaluated a request the oracle rejects")
                  | Ok (P.Error _), `Matmul (a', b') -> (
                      (* Entries knocked out of the layout's range are
                         rejected — the oracle must reject them too. *)
                      match oracle ~a:a' ~b:b' with
                      | _ ->
                          violation st
                            "server rejected a request the oracle accepts"
                      | exception _ ->
                          st.typed_failures <- st.typed_failures + 1)
                  | Ok _, _ -> violation st "corrupt leg: unexpected response"
                  | Error `Timeout, _ ->
                      st.watchdog_timeouts <- st.watchdog_timeouts + 1;
                      violation st "corrupt leg: server hung instead of replying"
                  | Error (`Closed _), _ ->
                      st.typed_failures <- st.typed_failures + 1)))

(* Reorder: two pipelined requests written in one swapped burst.  The
   server answers in arrival order, so the replies must match the
   swapped order bit-for-bit. *)
let leg_reorder st addr pair1 pair2 =
  let send_order = [ pair2; pair1 ] in
  let burst =
    String.concat ""
      (List.map
         (fun (a, b) -> frame_of (P.Run_matmul (spec, a, b)))
         send_order)
  in
  match raw_connect addr with
  | Error _ ->
      st.requests <- st.requests + 2;
      st.typed_failures <- st.typed_failures + 2
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> close_fd fd)
        (fun () ->
          match write_all fd burst with
          | Error _ ->
              st.requests <- st.requests + 2;
              st.typed_failures <- st.typed_failures + 2
          | Ok () ->
              List.iter
                (fun (a, b) ->
                  st.requests <- st.requests + 1;
                  match read_response fd with
                  | Ok (P.Matmul_result (c, _)) ->
                      st.completed <- st.completed + 1;
                      if F.Matrix.equal c (oracle ~a ~b) then
                        st.verified <- st.verified + 1
                      else violation st "reordered burst answered out of order"
                  | Ok _ -> violation st "reorder leg: unexpected response"
                  | Error `Timeout ->
                      st.watchdog_timeouts <- st.watchdog_timeouts + 1;
                      violation st "reorder leg: server hung"
                  | Error (`Closed _) ->
                      st.typed_failures <- st.typed_failures + 1)
                send_order)

(* Kill mid-request: write a request, SIGKILL the server before reading,
   then restart on a fresh address and complete the same request through
   the retrying client — the idempotency that makes retry safe. *)
let leg_kill_restart st server cfg pair =
  let full = frame_of (P.Run_matmul (spec, fst pair, snd pair)) in
  (match raw_connect !server.addr with
  | Error _ -> ()
  | Ok fd ->
      ignore (write_all fd full);
      kill_server !server;
      (match read_response fd with
      | Ok (P.Matmul_result (c, _)) ->
          (* The reply raced out before the kill landed — still must be
             correct.  The re-issue below then just completes again. *)
          if not (F.Matrix.equal c (oracle ~a:(fst pair) ~b:(snd pair))) then
            violation st "pre-kill reply had wrong bits"
      | Ok _ | Error (`Closed _) -> ()
      | Error `Timeout -> st.watchdog_timeouts <- st.watchdog_timeouts + 1);
      close_fd fd);
  server := start_server cfg;
  issue st !server.addr pair

(* ------------------------------------------------------------------ *)
(* Accounting check                                                   *)
(* ------------------------------------------------------------------ *)

(* Fetched sequentially while the server is idle, so the queue is empty
   and the invariant must hold exactly. *)
let check_accounting st addr label =
  match Sv.Client.call ~policy ~seed:(Prng.next st.rng) addr P.Metrics with
  | Ok (P.Metrics_result m) ->
      let balanced =
        m.P.accepted
        = m.P.run_requests + m.P.deadline_expired + m.P.eval_failures
      in
      if not balanced then begin
        st.accounting_ok <- false;
        violation st
          "%s: metrics do not account for every admitted request \
           (accepted=%d completed=%d expired=%d failed=%d)"
          label m.P.accepted m.P.run_requests m.P.deadline_expired
          m.P.eval_failures
      end;
      Some m
  | Ok _ | Error _ ->
      violation st "%s: metrics request failed" label;
      None

(* ------------------------------------------------------------------ *)
(* Segment A: fault soak + kill/restart + SIGTERM drain               *)
(* ------------------------------------------------------------------ *)

let segment_faults st ~requests ~fault_rate =
  let cfg = Sv.Server.default_config (P.Tcp ("127.0.0.1", 0)) in
  let cfg = { cfg with Sv.Server.cache_capacity = 4; grace_s = 8. } in
  let server = ref (start_server cfg) in
  let kill_at = requests / 2 in
  (* Warm the build so fault legs exercise serving, not compilation. *)
  (match
     Sv.Client.call ~policy ~seed:(Prng.next st.rng) !server.addr
       (P.Compile spec)
   with
  | Ok (P.Compiled _) -> ()
  | _ -> violation st "warm-up compile failed");
  for i = 0 to requests - 1 do
    let pair = random_pair st.rng in
    if i = kill_at then begin
      count_fault st Kill_restart;
      leg_kill_restart st server cfg pair
    end
    else if Prng.float st.rng < fault_rate then begin
      match List.nth all_faults (Prng.int st.rng ~bound:5) with
      | Truncate ->
          count_fault st Truncate;
          leg_partial_then_retry st !server.addr pair
      | Reset ->
          count_fault st Reset;
          leg_partial_then_retry st !server.addr pair
      | Corrupt ->
          count_fault st Corrupt;
          leg_corrupt st !server.addr pair
      | Stall ->
          count_fault st Stall;
          leg_stall st !server.addr pair
      | Reorder ->
          count_fault st Reorder;
          leg_reorder st !server.addr pair (random_pair st.rng)
      | Kill_restart -> assert false
    end
    else issue st !server.addr pair
  done;
  (* Quiescent accounting: every request the restarted server admitted
     is completed/expired/failed, none lost. *)
  ignore (check_accounting st !server.addr "fault segment");
  (* SIGTERM drain: a pipelined burst is in flight when the signal
     lands; the drain must answer all of it before exiting. *)
  let burst = Array.init 30 (fun _ -> random_pair st.rng) in
  (match raw_connect !server.addr with
  | Error msg -> violation st "drain burst connect failed: %s" msg
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> close_fd fd)
        (fun () ->
          let bytes =
            String.concat ""
              (Array.to_list
                 (Array.map
                    (fun (a, b) -> frame_of (P.Run_matmul (spec, a, b)))
                    burst))
          in
          match write_all fd bytes with
          | Error msg -> violation st "drain burst write failed: %s" msg
          | Ok () ->
              (try Unix.kill !server.pid Sys.sigterm
               with Unix.Unix_error _ -> ());
              Array.iter
                (fun (a, b) ->
                  st.requests <- st.requests + 1;
                  match read_response fd with
                  | Ok (P.Matmul_result (c, _)) ->
                      st.completed <- st.completed + 1;
                      if F.Matrix.equal c (oracle ~a ~b) then
                        st.verified <- st.verified + 1
                      else violation st "drained reply had wrong bits"
                  | Ok _ ->
                      st.drained_ok <- false;
                      violation st "drain: unexpected response"
                  | Error `Timeout ->
                      st.watchdog_timeouts <- st.watchdog_timeouts + 1;
                      st.drained_ok <- false;
                      violation st "drain: reply never arrived (hang)"
                  | Error (`Closed _) ->
                      st.drained_ok <- false;
                      violation st "drain: connection dropped before reply")
                burst));
  if not (await_exit ~patience:10. !server) then begin
    st.drained_ok <- false;
    violation st "server did not exit after SIGTERM drain"
  end

(* ------------------------------------------------------------------ *)
(* Segment B: overload and shedding                                   *)
(* ------------------------------------------------------------------ *)

let segment_overload st ~burst_size =
  let cfg = Sv.Server.default_config (P.Tcp ("127.0.0.1", 0)) in
  let cfg = { cfg with Sv.Server.cache_capacity = 4; max_pending = 8 } in
  let server = start_server cfg in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (Sv.Client.shutdown server.addr) with _ -> ());
      ignore (await_exit ~patience:10. server))
    (fun () ->
      (match
         Sv.Client.call ~policy ~seed:(Prng.next st.rng) server.addr
           (P.Compile spec)
       with
      | Ok (P.Compiled _) -> ()
      | _ -> violation st "overload warm-up compile failed");
      let pairs = Array.init burst_size (fun _ -> random_pair st.rng) in
      (* Completed replies interleave with [Overloaded] on the wire (a
         shed is answered during frame processing, a run at dispatch),
         so match results against the expected-product multiset. *)
      let unmatched =
        ref (Array.to_list (Array.map (fun (a, b) -> oracle ~a ~b) pairs))
      in
      let shed = ref 0 and completed = ref 0 in
      (match raw_connect server.addr with
      | Error msg -> violation st "overload connect failed: %s" msg
      | Ok fd ->
          Fun.protect
            ~finally:(fun () -> close_fd fd)
            (fun () ->
              (* One write: the whole burst lands ahead of any dispatch,
                 so the admission gate must actually engage. *)
              let bytes =
                String.concat ""
                  (Array.to_list
                     (Array.map
                        (fun (a, b) -> frame_of (P.Run_matmul (spec, a, b)))
                        pairs))
              in
              match write_all fd bytes with
              | Error msg -> violation st "overload write failed: %s" msg
              | Ok () ->
                  Array.iter
                    (fun _ ->
                      st.requests <- st.requests + 1;
                      match read_response fd with
                      | Ok P.Overloaded ->
                          incr shed;
                          st.typed_failures <- st.typed_failures + 1
                      | Ok (P.Matmul_result (c, _)) ->
                          incr completed;
                          st.completed <- st.completed + 1;
                          let rec take acc = function
                            | [] -> None
                            | m :: rest when F.Matrix.equal m c ->
                                Some (List.rev_append acc rest)
                            | m :: rest -> take (m :: acc) rest
                          in
                          (match take [] !unmatched with
                          | Some rest ->
                              unmatched := rest;
                              st.verified <- st.verified + 1
                          | None ->
                              violation st
                                "overload: completed product matches no request")
                      | Ok _ -> violation st "overload: unexpected response"
                      | Error `Timeout ->
                          st.watchdog_timeouts <- st.watchdog_timeouts + 1;
                          violation st "overload: reply never arrived (hang)"
                      | Error (`Closed _) ->
                          violation st "overload: connection dropped mid-burst")
                    pairs));
      st.shed_observed <- st.shed_observed + !shed;
      if !shed = 0 then
        violation st "overload: %d-request burst against max_pending=8 shed \
                      nothing" burst_size;
      if !shed + !completed <> burst_size then
        violation st "overload: %d replies for %d requests" (!shed + !completed)
          burst_size;
      (* Every shed request retried to completion: sequential re-issue is
         always admitted. *)
      Array.iter
        (fun pair ->
          let before = st.verified in
          issue st server.addr pair;
          if st.verified > before then st.retried_ok <- st.retried_ok + 1)
        pairs;
      ignore (check_accounting st server.addr "overload segment"))

(* ------------------------------------------------------------------ *)
(* Segment C: deadlines                                               *)
(* ------------------------------------------------------------------ *)

let segment_deadline st =
  let cfg = Sv.Server.default_config (P.Tcp ("127.0.0.1", 0)) in
  (* flush_ms far beyond deadline_ms: a lone request cannot fill a
     batch, so it must be answered by deadline expiry, not dispatch. *)
  let cfg =
    { cfg with Sv.Server.cache_capacity = 4; flush_ms = 2000.; deadline_ms = 50. }
  in
  let server = start_server cfg in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (Sv.Client.shutdown server.addr) with _ -> ());
      ignore (await_exit ~patience:10. server))
    (fun () ->
      (match
         Sv.Client.call ~policy ~seed:(Prng.next st.rng) server.addr
           (P.Compile spec)
       with
      | Ok (P.Compiled _) -> ()
      | _ -> violation st "deadline warm-up compile failed");
      let single = { policy with Sv.Client.attempts = 1 } in
      for _ = 1 to 5 do
        st.requests <- st.requests + 1;
        let a, b = random_pair st.rng in
        match
          Sv.Client.call ~policy:single ~seed:(Prng.next st.rng) server.addr
            (P.Run_matmul (spec, a, b))
        with
        | Error Sv.Client.Deadline_exceeded ->
            st.typed_failures <- st.typed_failures + 1;
            st.expired_observed <- st.expired_observed + 1
        | Ok (P.Matmul_result _) ->
            violation st
              "deadline: a lone request completed although the batch could \
               not fill before its deadline"
        | Ok _ -> violation st "deadline: unexpected response"
        | Error Sv.Client.Timeout ->
            st.watchdog_timeouts <- st.watchdog_timeouts + 1;
            violation st "deadline: expiry never answered (hang)"
        | Error _ -> st.typed_failures <- st.typed_failures + 1
      done;
      (* A full 62-lane burst fills the batch, which dispatches on fill —
         before any deadline — so all of it completes bit-exactly. *)
      let pairs = Array.init 62 (fun _ -> random_pair st.rng) in
      (match raw_connect server.addr with
      | Error msg -> violation st "deadline burst connect failed: %s" msg
      | Ok fd ->
          Fun.protect
            ~finally:(fun () -> close_fd fd)
            (fun () ->
              let bytes =
                String.concat ""
                  (Array.to_list
                     (Array.map
                        (fun (a, b) -> frame_of (P.Run_matmul (spec, a, b)))
                        pairs))
              in
              match write_all fd bytes with
              | Error msg -> violation st "deadline burst write failed: %s" msg
              | Ok () ->
                  Array.iter
                    (fun (a, b) ->
                      st.requests <- st.requests + 1;
                      match read_response fd with
                      | Ok (P.Matmul_result (c, _)) ->
                          st.completed <- st.completed + 1;
                          if F.Matrix.equal c (oracle ~a ~b) then
                            st.verified <- st.verified + 1
                          else violation st "deadline burst: wrong bits"
                      | Ok P.Deadline_exceeded ->
                          (* A filled batch dispatches synchronously on
                             enqueue; expiry here means the wheel fired
                             on a dispatchable batch. *)
                          violation st
                            "deadline burst: a full batch was expired instead \
                             of dispatched"
                      | Ok _ -> violation st "deadline burst: unexpected response"
                      | Error `Timeout ->
                          st.watchdog_timeouts <- st.watchdog_timeouts + 1;
                          violation st "deadline burst: hang"
                      | Error (`Closed _) ->
                          violation st "deadline burst: connection dropped")
                    pairs));
      match check_accounting st server.addr "deadline segment" with
      | Some m ->
          if m.P.deadline_expired < 5 then
            violation st "deadline segment: expected >= 5 expirations, saw %d"
              m.P.deadline_expired
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Segment D: SIGKILL with a persistent artifact store                 *)
(* ------------------------------------------------------------------ *)

(* Remove the store directory the segment created (flat: artifacts only). *)
let remove_dir dir =
  (try Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
         (Sys.readdir dir)
   with _ -> ());
  try Unix.rmdir dir with _ -> ()

(* The crash-recovery claim of the artifact store: a server SIGKILLed
   mid-service and restarted on the same store directory must answer
   bit-identically to the oracle having rebuilt NOTHING — every cache
   miss of its second life is a warm mmap load of what the first life
   persisted. *)
let segment_store st =
  let dir =
    let f = Filename.temp_file "tcmm_chaos_store" "" in
    Sys.remove f;
    Unix.mkdir f 0o700;
    f
  in
  Fun.protect ~finally:(fun () -> remove_dir dir) @@ fun () ->
  let cfg = Sv.Server.default_config (P.Tcp ("127.0.0.1", 0)) in
  let cfg = { cfg with Sv.Server.cache_capacity = 4; store = Some dir } in
  let server = start_server cfg in
  (* First life: cold build, persisted write-behind. *)
  let pairs = Array.init 6 (fun _ -> random_pair st.rng) in
  Array.iter (fun pair -> issue st server.addr pair) pairs;
  (match Sv.Client.call ~policy ~seed:(Prng.next st.rng) server.addr P.Metrics with
  | Ok (P.Metrics_result m) ->
      st.store_saves <- m.P.store_saves;
      if m.P.store_saves < 1 then
        violation st "store segment: first life persisted no artifact"
  | Ok _ | Error _ -> violation st "store segment: first-life metrics failed");
  (* SIGKILL: no drain, no flush — only the already-published artifact
     survives. *)
  kill_server server;
  let server = start_server cfg in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (Sv.Client.shutdown server.addr) with _ -> ());
      ignore (await_exit ~patience:10. server))
    (fun () ->
      (* Second life: same requests (and fresh ones) answered warm;
         [issue] verifies every reply against the in-process oracle, so
         bit-identity is checked here, not just liveness. *)
      Array.iter (fun pair -> issue st server.addr pair) pairs;
      Array.iter (fun _ -> issue st server.addr (random_pair st.rng)) pairs;
      match
        Sv.Client.call ~policy ~seed:(Prng.next st.rng) server.addr P.Metrics
      with
      | Ok (P.Metrics_result m) ->
          st.store_loads <- m.P.store_loads;
          let zero_rebuilds =
            m.P.store_loads >= 1
            && m.P.store_saves = 0
            && m.P.build_seconds = 0.
            && m.P.cache.P.misses = m.P.store_loads
          in
          st.store_zero_rebuilds <- zero_rebuilds;
          if not zero_rebuilds then
            violation st
              "store segment: restart rebuilt instead of loading warm \
               (loads=%d saves=%d build_seconds=%g misses=%d)"
              m.P.store_loads m.P.store_saves m.P.build_seconds
              m.P.cache.P.misses;
          if m.P.store_invalid > 0 then
            violation st "store segment: %d artifacts quarantined on restart"
              m.P.store_invalid
      | Ok _ | Error _ ->
          violation st "store segment: second-life metrics failed")

(* ------------------------------------------------------------------ *)
(* Segment E: fleet — SIGKILL random workers mid-soak                  *)
(* ------------------------------------------------------------------ *)

(* Distinct cache keys over the same tiny circuit: [tau] is part of the
   spec key but ignored by matmul evaluation, so the rendezvous router
   spreads these keys across workers while the one in-process oracle
   verifies every reply. *)
let fleet_specs = List.init 4 (fun t -> { spec with P.tau = t })

let fleet_roster st control =
  match Sv.Client.call ~policy ~seed:(Prng.next st.rng) control P.Fleet with
  | Ok (P.Fleet_result ws) -> ws
  | Ok _ | Error _ -> []

(* One logical request through the failing-over shard router. *)
let issue_pool st pool sp (a, b) =
  st.requests <- st.requests + 1;
  match
    Sv.Client.Pool.call ~policy ~seed:(Prng.next st.rng) pool
      ~key:(Sv.Client.Pool.key_of_spec sp)
      (P.Run_matmul (sp, a, b))
  with
  | Ok (P.Matmul_result (c, _)) ->
      st.completed <- st.completed + 1;
      if F.Matrix.equal c (oracle ~a ~b) && F.Matrix.equal c (F.Matrix.mul a b)
      then st.verified <- st.verified + 1
      else
        violation st "fleet: completed response differs from Matmul_circuit.run"
  | Ok _ -> violation st "fleet: run request answered with a non-run response"
  | Error f ->
      (match f with
      | Sv.Client.Timeout ->
          st.watchdog_timeouts <- st.watchdog_timeouts + 1
      | _ -> ());
      st.typed_failures <- st.typed_failures + 1

(* The roster is refreshed right before every kill so a restart between
   kills cannot leave us signalling a recycled pid. *)
let kill_random_worker st control =
  match
    List.filter (fun w -> w.P.fw_alive && w.P.fw_pid > 0)
      (fleet_roster st control)
  with
  | [] -> ()
  | live -> (
      let w = List.nth live (Prng.int st.rng ~bound:(List.length live)) in
      match Unix.kill w.P.fw_pid Sys.sigkill with
      | () ->
          st.fleet_kills <- st.fleet_kills + 1;
          count_fault st Kill_restart
      | exception Unix.Unix_error _ -> ())

(* SIGKILL the shard mid-pipelined-burst: every reply that did arrive
   must be bit-exact, the remainder must resolve as typed failures and
   complete on re-issue through the failing-over pool — no request is
   ever silently dropped and no completed response is ever wrong. *)
let leg_fleet_burst st pool control sp =
  let key = Sv.Client.Pool.key_of_spec sp in
  let shard = Sv.Client.Pool.shard pool ~key in
  let pairs = Array.init 20 (fun _ -> random_pair st.rng) in
  let reissue pair = issue_pool st pool sp pair in
  match raw_connect shard with
  | Error _ -> Array.iter reissue pairs
  | Ok fd ->
      Fun.protect ~finally:(fun () -> close_fd fd) @@ fun () ->
      let bytes =
        String.concat ""
          (Array.to_list
             (Array.map (fun (a, b) -> frame_of (P.Run_matmul (sp, a, b))) pairs))
      in
      (match write_all fd bytes with
      | Error _ -> Array.iter reissue pairs
      | Ok () ->
          let dead = ref false in
          Array.iteri
            (fun i (a, b) ->
              if i = 5 then
                (match
                   List.find_opt
                     (fun w -> w.P.fw_addr = P.addr_string shard)
                     (fleet_roster st control)
                 with
                | Some w when w.P.fw_pid > 0 -> (
                    match Unix.kill w.P.fw_pid Sys.sigkill with
                    | () ->
                        st.fleet_kills <- st.fleet_kills + 1;
                        count_fault st Kill_restart
                    | exception Unix.Unix_error _ -> ())
                | _ -> ());
              if !dead then reissue (a, b)
              else begin
                st.requests <- st.requests + 1;
                match read_response fd with
                | Ok (P.Matmul_result (c, _)) ->
                    st.completed <- st.completed + 1;
                    if F.Matrix.equal c (oracle ~a ~b) then
                      st.verified <- st.verified + 1
                    else violation st "fleet burst: completed reply had wrong bits"
                | Ok _ -> violation st "fleet burst: unexpected response"
                | Error `Timeout ->
                    st.watchdog_timeouts <- st.watchdog_timeouts + 1;
                    st.typed_failures <- st.typed_failures + 1;
                    dead := true
                | Error (`Closed _) ->
                    st.typed_failures <- st.typed_failures + 1;
                    dead := true
              end)
            pairs)

let segment_fleet st ~workers ~requests ~fault_rate =
  let dir =
    let f = Filename.temp_file "tcmm_chaos_fleet" "" in
    Sys.remove f;
    Unix.mkdir f 0o700;
    f
  in
  Fun.protect ~finally:(fun () -> remove_dir dir) @@ fun () ->
  let cfg = Sv.Server.default_config (P.Tcp ("127.0.0.1", 0)) in
  let cfg =
    { cfg with Sv.Server.cache_capacity = 8; grace_s = 8.; store = Some dir }
  in
  (* The soak IS a crash loop by design: the restart budget must never
     exhaust, or kills late in the run would down a shard for good. *)
  let fleet_cfg =
    {
      (Sv.Fleet.default_config cfg) with
      Sv.Fleet.workers;
      restart_limit = requests + 8;
      restart_window_s = 3600.;
    }
  in
  (* Bind-then-fork, fleet edition: every front / control / endpoint
     port is concrete before the supervisor child exists. *)
  let handle = Sv.Fleet.bind fleet_cfg in
  let endpoints = Sv.Fleet.endpoints handle in
  let control = Sv.Fleet.control_addr handle in
  let front = Sv.Fleet.front_addr handle in
  match Unix.fork () with
  | 0 ->
      (try Sv.Fleet.supervise handle with _ -> ());
      Unix._exit 0
  | sup_pid ->
      Sv.Fleet.close_handle handle;
      let sup = { pid = sup_pid; addr = front } in
      let pool = Sv.Client.Pool.create endpoints in
      (* Warm every spec through the kernel-balanced front socket, so
         the shared store holds all artifacts before the first kill and
         every restart is warm. *)
      List.iter
        (fun sp ->
          match
            Sv.Client.call ~policy ~seed:(Prng.next st.rng) front (P.Compile sp)
          with
          | Ok (P.Compiled _) -> ()
          | _ -> violation st "fleet warm-up compile failed")
        fleet_specs;
      let burst_at = max 1 (requests / 3) in
      for i = 0 to requests - 1 do
        let sp =
          List.nth fleet_specs
            (Prng.int st.rng ~bound:(List.length fleet_specs))
        in
        if i = burst_at then leg_fleet_burst st pool control sp
        else begin
          if Prng.float st.rng < fault_rate then kill_random_worker st control;
          issue_pool st pool sp (random_pair st.rng)
        end
      done;
      (* Settle: one request per spec proves every shard is serving
         again, and leaves every worker quiescent for the accounting
         fetch below. *)
      List.iter (fun sp -> issue_pool st pool sp (random_pair st.rng)) fleet_specs;
      let ws = fleet_roster st control in
      if List.length ws <> workers then
        violation st "fleet: roster has %d workers, expected %d" (List.length ws)
          workers;
      st.fleet_restarts <-
        List.fold_left (fun acc w -> acc + w.P.fw_restarts) 0 ws;
      List.iter
        (fun w ->
          if not w.P.fw_alive then
            violation st "fleet: worker %d left down (restart budget exhausted)"
              w.P.fw_id)
        ws;
      if st.fleet_kills > 0 && st.fleet_restarts = 0 then
        violation st "fleet: %d SIGKILLs but the roster shows no restarts"
          st.fleet_kills;
      if st.fleet_restarts > st.fleet_kills then
        violation st "fleet: %d restarts for %d kills (spontaneous crashes)"
          st.fleet_restarts st.fleet_kills;
      (* The PR 5 identity, fleet-wide: summed over the live workers'
         metrics, accepted = run_requests + deadline_expired +
         eval_failures — fetched at quiescence, so it must hold exactly
         even though every counter-holding process may have been
         SIGKILLed and restarted since the soak began. *)
      let acc = ref 0 and run = ref 0 and dl = ref 0 and ef = ref 0 in
      let invalid = ref 0 in
      List.iter
        (fun w ->
          match P.parse_addr w.P.fw_addr with
          | Error msg ->
              violation st "fleet: roster endpoint %S does not parse: %s"
                w.P.fw_addr msg
          | Ok a -> (
              match
                Sv.Client.call ~policy ~seed:(Prng.next st.rng) a P.Metrics
              with
              | Ok (P.Metrics_result m) ->
                  if m.P.worker_id <> w.P.fw_id then
                    violation st "fleet: worker %d reports worker_id %d"
                      w.P.fw_id m.P.worker_id;
                  acc := !acc + m.P.accepted;
                  run := !run + m.P.run_requests;
                  dl := !dl + m.P.deadline_expired;
                  ef := !ef + m.P.eval_failures;
                  invalid := !invalid + m.P.store_invalid
              | Ok _ | Error _ ->
                  violation st "fleet: worker %d metrics failed" w.P.fw_id))
        ws;
      if !acc <> !run + !dl + !ef then begin
        st.accounting_ok <- false;
        violation st
          "fleet: summed worker metrics do not balance (accepted=%d run=%d \
           expired=%d failed=%d)"
          !acc !run !dl !ef
      end;
      if !invalid > 0 then
        violation st "fleet: %d artifacts quarantined during the soak" !invalid;
      (* The supervisor-side aggregate must satisfy the same identity
         (it is a sum of balanced snapshots) and stamp worker_id 0. *)
      (match Sv.Client.call ~policy ~seed:(Prng.next st.rng) control P.Metrics with
      | Ok (P.Metrics_result m) ->
          if m.P.worker_id <> 0 then
            violation st "fleet: aggregate stamped worker_id %d, want 0"
              m.P.worker_id;
          if
            m.P.accepted
            <> m.P.run_requests + m.P.deadline_expired + m.P.eval_failures
          then begin
            st.accounting_ok <- false;
            violation st
              "fleet: aggregated metrics do not balance (accepted=%d run=%d \
               expired=%d failed=%d)"
              m.P.accepted m.P.run_requests m.P.deadline_expired
              m.P.eval_failures
          end
      | Ok _ | Error _ -> violation st "fleet: aggregated metrics request failed");
      (* SIGTERM to the supervisor is a fleet-wide graceful drain: every
         worker must drain and exit, the supervisor must reap them all
         and terminate inside grace + slack. *)
      (try Unix.kill sup_pid Sys.sigterm with Unix.Unix_error _ -> ());
      if not (await_exit ~patience:(cfg.Sv.Server.grace_s +. 6.) sup) then begin
        st.drained_ok <- false;
        violation st "fleet: supervisor did not exit after SIGTERM drain"
      end

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)
(* ------------------------------------------------------------------ *)

let run ?(seed = 1) ?(requests = 200) ?(fault_rate = 0.25) ?(workers = 1) () =
  let st =
    {
      rng = Prng.create ~seed;
      requests = 0;
      completed = 0;
      verified = 0;
      typed_failures = 0;
      watchdog_timeouts = 0;
      faults_injected = 0;
      fault_counts = List.map (fun f -> (f, ref 0)) all_faults;
      shed_observed = 0;
      expired_observed = 0;
      retried_ok = 0;
      drained_ok = true;
      accounting_ok = true;
      store_saves = 0;
      store_loads = 0;
      store_zero_rebuilds = false;
      fleet_kills = 0;
      fleet_restarts = 0;
      violations = [];
    }
  in
  (* [workers > 1] runs the fleet soak alone (the single-daemon
     segments are the [workers = 1] run's job — CI runs both slices);
     its kill-heavy loop wants the whole request budget. *)
  if workers > 1 then segment_fleet st ~workers ~requests ~fault_rate
  else begin
    segment_faults st ~requests ~fault_rate;
    segment_overload st ~burst_size:(max 40 (requests / 2));
    segment_deadline st;
    segment_store st
  end;
  (* Client-side conservation: every issued request resolved exactly
     once — completed or a typed failure.  Anything else is a hang or a
     lost request. *)
  if st.completed + st.typed_failures <> st.requests then
    violation st "client accounting: %d requests but %d completed + %d failed"
      st.requests st.completed st.typed_failures;
  if st.completed <> st.verified then
    violation st "%d completed responses but only %d verified"
      st.completed st.verified;
  {
    seed;
    requests = st.requests;
    completed = st.completed;
    verified = st.verified;
    typed_failures = st.typed_failures;
    watchdog_timeouts = st.watchdog_timeouts;
    faults_injected = st.faults_injected;
    per_fault = List.map (fun (f, r) -> (fault_name f, !r)) st.fault_counts;
    shed_observed = st.shed_observed;
    expired_observed = st.expired_observed;
    retried_ok = st.retried_ok;
    drained_ok = st.drained_ok;
    accounting_ok = st.accounting_ok;
    store_saves = st.store_saves;
    store_loads = st.store_loads;
    store_zero_rebuilds = st.store_zero_rebuilds;
    fleet_workers = (if workers > 1 then workers else 0);
    fleet_kills = st.fleet_kills;
    fleet_restarts = st.fleet_restarts;
    violations = List.rev st.violations;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                          *)
(* ------------------------------------------------------------------ *)

let print_report o =
  let open Tablefmt in
  print ~title:"Chaos soak"
    ~header:[ "metric"; "value" ]
    ~rows:
      ([
         [ Str "seed"; Int o.seed ];
         [ Str "requests"; Int o.requests ];
         [ Str "completed"; Int o.completed ];
         [ Str "verified bit-exact"; Int o.verified ];
         [ Str "typed failures"; Int o.typed_failures ];
         [ Str "watchdog timeouts"; Int o.watchdog_timeouts ];
         [ Str "faults injected"; Int o.faults_injected ];
       ]
      @ List.map (fun (name, k) -> [ Str ("  " ^ name); Int k ]) o.per_fault
      @ [
          [ Str "shed observed"; Int o.shed_observed ];
          [ Str "deadline expirations"; Int o.expired_observed ];
          [ Str "retried to completion"; Int o.retried_ok ];
          [ Str "SIGTERM drain"; Str (if o.drained_ok then "ok" else "FAILED") ];
          [
            Str "metrics accounting";
            Str (if o.accounting_ok then "ok" else "FAILED");
          ];
          [ Str "store artifacts saved"; Int o.store_saves ];
          [ Str "store warm loads"; Int o.store_loads ];
          [
            Str "SIGKILL restart rebuilds";
            Str
              (if o.fleet_workers > 0 then "n/a"
               else if o.store_zero_rebuilds then "zero"
               else "FAILED");
          ];
          [ Str "fleet workers"; Int o.fleet_workers ];
          [ Str "fleet kills"; Int o.fleet_kills ];
          [ Str "fleet restarts"; Int o.fleet_restarts ];
        ]);
  List.iter (fun v -> Format.printf "  VIOLATION: %s@." v) o.violations;
  Format.printf "chaos: %s@." (if ok o then "OK" else "FAILED")

let to_json o =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"seed\":%d,\"requests\":%d,\"completed\":%d,\"verified\":%d,\
        \"typed_failures\":%d,\"watchdog_timeouts\":%d,\"faults_injected\":%d,"
       o.seed o.requests o.completed o.verified o.typed_failures
       o.watchdog_timeouts o.faults_injected);
  Buffer.add_string b "\"per_fault\":{";
  List.iteri
    (fun i (name, k) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" name k))
    o.per_fault;
  Buffer.add_string b "},";
  Buffer.add_string b
    (Printf.sprintf
       "\"shed_observed\":%d,\"expired_observed\":%d,\"retried_ok\":%d,\
        \"drained_ok\":%b,\"accounting_ok\":%b,\"store_saves\":%d,\
        \"store_loads\":%d,\"store_zero_rebuilds\":%b,\"fleet_workers\":%d,\
        \"fleet_kills\":%d,\"fleet_restarts\":%d,\"violations\":["
       o.shed_observed o.expired_observed o.retried_ok o.drained_ok
       o.accounting_ok o.store_saves o.store_loads o.store_zero_rebuilds
       o.fleet_workers o.fleet_kills o.fleet_restarts);
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%S" v))
    o.violations;
  Buffer.add_string b (Printf.sprintf "],\"ok\":%b}" (ok o));
  Buffer.contents b
