(** The shrunk-counterexample regression corpus.

    Every case the fuzzer ever minimizes is written here (one
    [*.case] file each, {!Case.to_string} format with the oracle's
    message as a leading comment) and replayed as a deterministic test
    on every run — a failure found once is guarded forever. *)

val save : dir:string -> message:string -> Case.t -> string
(** Persist a shrunk case; returns the file path.  The file name is
    derived from the case's contents, so re-saving the same case is
    idempotent.  Creates [dir] if needed. *)

val load_file : string -> (Case.t, string) result

val load_dir : string -> (string * Case.t) list
(** All [*.case] files under [dir] (sorted by name), with parse errors
    raised as [Failure] — a corrupt corpus should fail loudly.  An
    absent directory is an empty corpus. *)
