(** The structural certifier.

    Given a circuit configuration, [certify] builds it (materialized when
    small enough, count-only otherwise — structural statistics are exact
    in both modes), independently re-derives its structural measures, and
    checks them against everything the repository claims about them:

    - the schedule's shape (starts at 0, strictly increasing, ends at
      [L = log_T n]);
    - the implementation depth model ([2*steps + 2] / [4*steps + 1],
      {!Tcmm.Gate_model.predicted_depth});
    - the paper's theorem bounds ([2d + 5] Theorem 4.5 / [4d + 1]
      Theorem 4.9) for ["thm45"] schedules;
    - exact gate {e and} edge counts against the independent
      {!Tcmm.Gate_count} / {!Tcmm.Gate_count_matmul} dynamic programs;
    - an independent walk over the materialized gate array re-deriving
      depth, gate/wire/edge counts, and max fan-in from scratch;
    - {!Tcmm_threshold.Validate} cleanliness (no error-severity issues);
    - sampled firing feasibility: on random workloads, per-level firings
      never exceed the level's gate population and sum to the total.

    The result is a machine-readable certificate (one named verdict per
    check) that serializes to JSON for the E19 artifact. *)

type spec = {
  kind : Case.kind;
  algo : string;
  schedule : string;
  d : int;
  n : int;
  entry_bits : int;
  signed : bool;
  tau : int;
}

type verdict = { name : string; ok : bool; detail : string }

type t = {
  spec : spec;
  materialized : bool;
  stats : Tcmm_threshold.Stats.t;
  verdicts : verdict list;
}

val ok : t -> bool
(** All verdicts passed. *)

val failures : t -> verdict list

val certify : ?samples:int -> ?seed:int -> ?materialize_cap:int -> spec -> t
(** [samples] (default 4) random workloads for the firing-feasibility
    check; [materialize_cap] (default 150_000 gates, decided from the
    exact DP count) bounds which subjects are built for real. *)

val to_json : t -> string
val pp : Format.formatter -> t -> unit
