(** Mutation testing of the differential oracle.

    A correctness harness is only as good as the bugs it can catch, so
    this module injects single-gate faults into compiled circuits and
    measures whether the oracle notices.  A mutant is {e killed} when

    - the structural layer flags it (gate/edge/depth/fan-in statistics
      deviate from the unmutated circuit, or {!Tcmm_threshold.Validate}
      reports a different issue list), or
    - the behavioral layer flags it (outputs differ from the original
      circuit on at least one of the supplied workloads).

    Provably-equivalent mutants are excluded at generation: only gates
    from which an output is reachable are mutated; a threshold
    perturbation is only emitted when the decision boundary it moves is
    an achievable weighted sum (computed exactly for gates whose sum set
    is small, by interval bound beyond that); and a weight-sign flip is
    only emitted when some achievable rest-sum straddles the threshold
    under the flip.  Beyond those proofs the sweep reports what it
    measures — a masked-but-inequivalent mutant counts as a survivor.

    A separate sweep attacks the serving protocol instead of a circuit:
    frames truncated mid-stream must never decode as a complete valid
    message. *)

type op = Flip_weight_sign | Perturb_threshold | Drop_wire | Duplicate_wire

val op_name : op -> string
val all_ops : op list

type mutant = {
  op : op;
  gate : int;
  detail : string;
  circuit : Tcmm_threshold.Circuit.t;
}

val sample :
  rng:Tcmm_util.Prng.t -> count:int -> Tcmm_threshold.Circuit.t -> mutant list
(** Up to [count] mutants (fewer when the circuit offers fewer viable
    sites).  Raises [Invalid_argument] on a circuit with no gates. *)

type kill = Structural of string | Behavioral of int  (** killing input index *)

val default_observe : Tcmm_threshold.Simulator.result -> string
(** Renders the output bits — the weakest observation the oracle makes. *)

val judge :
  ?observe:(Tcmm_threshold.Simulator.result -> string) ->
  original:Tcmm_threshold.Circuit.t ->
  inputs:bool array array ->
  mutant ->
  kill option
(** [None] means the mutant survived every layer of the oracle.
    [observe] projects a simulation result onto what the differential
    oracle actually compares; it defaults to {!default_observe} (output
    bits only), but the harness passes a stronger projection for trace
    circuits — the decoded trace value read off internal wires — because
    {!Oracle.check} compares exactly that across engines.  The judge must
    observe neither more nor less than the oracle, or the kill rate
    stops measuring the oracle's real power. *)

type sweep = {
  total : int;
  structural : int;
  behavioral : int;
  survived : (string * int) list;  (** (op name, gate) per survivor *)
  per_op : (string * int * int) list;  (** (op name, killed, total) *)
}

val kill_rate : sweep -> float
(** Killed fraction in [0, 1]; [1.] for an empty sweep. *)

val sweep :
  ?observe:(Tcmm_threshold.Simulator.result -> string) ->
  rng:Tcmm_util.Prng.t ->
  count:int ->
  inputs:bool array array ->
  Tcmm_threshold.Circuit.t ->
  sweep
(** Samples mutants and judges each with {!judge} semantics (the
    original circuit's observations are computed once and reused). *)

val merge : sweep list -> sweep

(** {1 Protocol-frame truncation} *)

type protocol_sweep = { frames : int; cuts : int; killed : int }

val protocol_truncation_sweep : ?seed:int -> ?cuts_per_frame:int -> unit -> protocol_sweep
(** For a set of representative request/response frames and random cut
    points: (a) the truncated byte stream must not yield a complete
    frame from the dechunker, and (b) a truncated payload re-framed with
    a consistent length must fail to decode.  Each cut contributes two
    trials to [cuts]; [killed] counts detections. *)
