(** A fuzz workload: everything needed to rebuild one differential test
    deterministically — the circuit configuration plus the PRNG seed the
    input matrices are drawn from.

    Cases serialize to a one-value-per-line text format (version-tagged
    like {!Tcmm_threshold.Export}'s netlists) so shrunk counterexamples
    can live in [test/support/corpus/] and be replayed forever:
    {v
    tcmm-case 1
    kind trace
    algo strassen
    schedule uniform-2
    d 2
    n 4
    entry_bits 1
    signed false
    tau 1
    seed 42
    v} *)

type kind = Trace | Matmul

type t = {
  kind : kind;
  algo : string;  (** bundled algorithm name ({!Tcmm_fastmm.Instances}) *)
  schedule : string;  (** {!Tcmm.Level_schedule.resolve} vocabulary *)
  d : int;  (** Theorem 4.5 depth parameter *)
  n : int;
  entry_bits : int;
  signed : bool;
  tau : int;  (** trace threshold; ignored for [Matmul] *)
  seed : int;  (** input matrices are [Prng] draws from this seed *)
  flips : (int * int) list list;
      (** incremental leg: edge-flip batches applied in order to the
          case's {!graph}, each batch one {!Tcmm_threshold.Packed.update}
          delta.  [[]] (the default, and what a missing [flips] line in
          the text format means) is a plain one-shot case.  Only
          meaningful for unsigned 1-bit [Trace] cases — the adjacency
          encoding {!Tcmm_graph.Stream} speaks. *)
}

val pp : Format.formatter -> t -> unit

val build_key : t -> string
(** Cache key covering every field that affects the compiled circuit
    (everything but [seed]) — the oracle memoizes builds on this. *)

val algo_of_name : string -> Tcmm_fastmm.Bilinear.t
(** Raises [Invalid_argument] on an unknown name. *)

val resolve_schedule : t -> Tcmm.Level_schedule.t

val matrix : t -> index:int -> Tcmm_fastmm.Matrix.t
(** The [index]-th input matrix of the case ([index] 0 is [A], 1 is [B]),
    drawn deterministically from [seed] with entries in
    [[-(2^entry_bits - 1), 2^entry_bits - 1]] (signed) or
    [[0, 2^entry_bits - 1]]. *)

val graph : t -> Tcmm_graph.Graph.t
(** The incremental leg's base graph: an Erdős–Rényi draw on [n]
    vertices, deterministic in [seed] (independent of the {!matrix}
    stream).  Its adjacency matrix is what a [flips]-carrying case
    evaluates the trace circuit on before any flip is applied. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** A missing [flips] line decodes as [flips = []], so every corpus
    file written before the incremental leg still parses. *)

val equal : t -> t -> bool
