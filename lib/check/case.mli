(** A fuzz workload: everything needed to rebuild one differential test
    deterministically — the circuit configuration plus the PRNG seed the
    input matrices are drawn from.

    Cases serialize to a one-value-per-line text format (version-tagged
    like {!Tcmm_threshold.Export}'s netlists) so shrunk counterexamples
    can live in [test/support/corpus/] and be replayed forever:
    {v
    tcmm-case 1
    kind trace
    algo strassen
    schedule uniform-2
    d 2
    n 4
    entry_bits 1
    signed false
    tau 1
    seed 42
    v} *)

type kind = Trace | Matmul | Conv

type t = {
  kind : kind;
  algo : string;  (** bundled algorithm name ({!Tcmm_fastmm.Instances}) *)
  schedule : string;  (** {!Tcmm.Level_schedule.resolve} vocabulary *)
  d : int;  (** Theorem 4.5 depth parameter *)
  n : int;
  entry_bits : int;
  signed : bool;
  tau : int;  (** trace threshold; ignored for [Matmul] *)
  seed : int;  (** input matrices are [Prng] draws from this seed *)
  flips : (int * int) list list;
      (** incremental leg: edge-flip batches applied in order to the
          case's {!graph}, each batch one {!Tcmm_threshold.Packed.update}
          delta.  [[]] (the default, and what a missing [flips] line in
          the text format means) is a plain one-shot case.  Only
          meaningful for unsigned 1-bit [Trace] cases — the adjacency
          encoding {!Tcmm_graph.Stream} speaks. *)
  kronpow : bool;
      (** build the case's circuits with the Kronecker-power
          linear-circuit optimization ({!Tcmm.Sum_tree}).  [false] (the
          default, and what a missing [kronpow] line means) is the flat
          build; a missing line keeps pre-kronpow corpus files
          byte-identical. *)
}

val kind_name : kind -> string
(** ["trace"], ["matmul"], or ["conv"] — the serialized form. *)

val pp : Format.formatter -> t -> unit

val build_key : t -> string
(** Cache key covering every field that affects the compiled circuit
    (everything but [seed]) — the oracle memoizes builds on this. *)

val algo_of_name : string -> Tcmm_fastmm.Bilinear.t
(** Raises [Invalid_argument] on an unknown name. *)

val resolve_schedule : t -> Tcmm.Level_schedule.t

val matrix : t -> index:int -> Tcmm_fastmm.Matrix.t
(** The [index]-th input matrix of the case ([index] 0 is [A], 1 is [B]),
    drawn deterministically from [seed] with entries in
    [[-(2^entry_bits - 1), 2^entry_bits - 1]] (signed) or
    [[0, 2^entry_bits - 1]]. *)

val conv_job : t -> Tcmm_convnet.Im2col.spec * Tcmm_convnet.Image.t * Tcmm_convnet.Image.t array
(** The conv leg's im2col workload, deterministic in [seed]: a
    single-channel image and two 2x2 kernels sized so the patch and
    kernel matrices fit the case's [n x n] circuit.  Raises
    [Invalid_argument] when [n < 4]. *)

val graph : t -> Tcmm_graph.Graph.t
(** The incremental leg's base graph: an Erdős–Rényi draw on [n]
    vertices, deterministic in [seed] (independent of the {!matrix}
    stream).  Its adjacency matrix is what a [flips]-carrying case
    evaluates the trace circuit on before any flip is applied. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** A missing [flips] line decodes as [flips = []], so every corpus
    file written before the incremental leg still parses. *)

val equal : t -> t -> bool
