module T = Tcmm
module F = Tcmm_fastmm
module Th = Tcmm_threshold

let trace_builds : (string, T.Trace_circuit.built) Hashtbl.t = Hashtbl.create 16
let matmul_builds : (string, T.Matmul_circuit.built) Hashtbl.t = Hashtbl.create 16

(* Direct-mode builds, kept separately: their packed form dispatches the
   template-specialized kernels, which is exactly the leg the kernel
   differential wants to pit against the materialized (all-generic)
   builds above. *)
let direct_matmul_builds : (string, T.Matmul_circuit.built) Hashtbl.t =
  Hashtbl.create 16

let clear_cache () =
  Hashtbl.reset trace_builds;
  Hashtbl.reset matmul_builds;
  Hashtbl.reset direct_matmul_builds

(* Keep the memo bounded: a long fuzz run touches only a handful of
   configurations, but a pathological generator should not accumulate
   circuits without end. *)
let bound tbl =
  if Hashtbl.length tbl > 24 then Hashtbl.reset tbl

let trace_built (c : Case.t) =
  if c.kind <> Case.Trace then invalid_arg "Oracle.trace_built: not a trace case";
  let key = Case.build_key c in
  match Hashtbl.find_opt trace_builds key with
  | Some b -> b
  | None ->
      bound trace_builds;
      let b =
        T.Trace_circuit.build ~algo:(Case.algo_of_name c.algo)
          ~schedule:(Case.resolve_schedule c) ~signed_inputs:c.signed
          ~entry_bits:c.entry_bits ~tau:c.tau ~n:c.n ()
      in
      Hashtbl.add trace_builds key b;
      b

let matmul_built (c : Case.t) =
  if c.kind <> Case.Matmul then invalid_arg "Oracle.matmul_built: not a matmul case";
  let key = Case.build_key c in
  match Hashtbl.find_opt matmul_builds key with
  | Some b -> b
  | None ->
      bound matmul_builds;
      let b =
        T.Matmul_circuit.build ~algo:(Case.algo_of_name c.algo)
          ~schedule:(Case.resolve_schedule c) ~signed_inputs:c.signed
          ~entry_bits:c.entry_bits ~n:c.n ()
      in
      Hashtbl.add matmul_builds key b;
      b

let direct_matmul_built (c : Case.t) =
  let key = Case.build_key c in
  match Hashtbl.find_opt direct_matmul_builds key with
  | Some b -> b
  | None ->
      bound direct_matmul_builds;
      let b =
        T.Matmul_circuit.build ~mode:Th.Builder.Direct
          ~algo:(Case.algo_of_name c.algo)
          ~schedule:(Case.resolve_schedule c) ~signed_inputs:c.signed
          ~entry_bits:c.entry_bits ~n:c.n ()
      in
      Hashtbl.add direct_matmul_builds key b;
      b

let fail fmt = Format.kasprintf (fun s -> Error s) fmt

let check_trace (c : Case.t) =
  let built = trace_built c in
  let a = Case.matrix c ~index:0 in
  let expected_trace = T.Trace_circuit.reference a in
  let expected = expected_trace >= c.tau in
  let reference = T.Trace_circuit.run ~engine:Th.Simulator.Reference built a in
  let packed = T.Trace_circuit.run ~engine:Th.Simulator.Packed built a in
  let packed2 = T.Trace_circuit.run ~engine:Th.Simulator.Packed ~domains:2 built a in
  let value = T.Trace_circuit.trace_value built a in
  if value <> expected_trace then
    fail "trace_value %d <> integer reference %d" value expected_trace
  else if reference <> expected then
    fail "Simulator says %b, integer reference says %b (trace %d, tau %d)"
      reference expected expected_trace c.tau
  else if packed <> reference then
    fail "Packed (sequential) says %b, Simulator says %b" packed reference
  else if packed2 <> reference then
    fail "Packed (2 domains) says %b, Simulator says %b" packed2 reference
  else
    (* Batched lanes: the case's matrix plus two further draws. *)
    let lanes = Array.init 3 (fun i -> Case.matrix c ~index:i) in
    let batch = T.Trace_circuit.run_batch built lanes in
    let rec lanes_ok i =
      if i >= Array.length lanes then Ok ()
      else
        let want = T.Trace_circuit.reference lanes.(i) >= c.tau in
        if batch.(i) <> want then
          fail "batched lane %d says %b, integer reference says %b" i batch.(i) want
        else lanes_ok (i + 1)
    in
    lanes_ok 0

let check_matmul (c : Case.t) =
  let built = matmul_built c in
  let a = Case.matrix c ~index:0 and b = Case.matrix c ~index:1 in
  let expected = F.Matrix.mul a b in
  let reference = T.Matmul_circuit.run ~engine:Th.Simulator.Reference built ~a ~b in
  let packed = T.Matmul_circuit.run ~engine:Th.Simulator.Packed built ~a ~b in
  let packed2 =
    T.Matmul_circuit.run ~engine:Th.Simulator.Packed ~domains:2 built ~a ~b
  in
  if not (F.Matrix.equal reference expected) then
    fail "Simulator product disagrees with integer reference on %a" Case.pp c
  else if not (F.Matrix.equal packed reference) then
    fail "Packed (sequential) product disagrees with Simulator"
  else if not (F.Matrix.equal packed2 reference) then
    fail "Packed (2 domains) product disagrees with Simulator"
  else
    let pairs =
      Array.init 3 (fun i ->
          ( Case.matrix c ~index:(2 * i),
            Case.matrix c ~index:((2 * i) + 1) ))
    in
    let batch = T.Matmul_circuit.run_batch built pairs in
    (* Kernel leg: the same pairs through a Direct-mode build, whose
       packed form dispatches the template-specialized kernels. *)
    let kernel_batch = T.Matmul_circuit.run_batch (direct_matmul_built c) pairs in
    let rec lanes_ok i =
      if i >= Array.length pairs then Ok ()
      else
        let la, lb = pairs.(i) in
        if not (F.Matrix.equal batch.(i) (F.Matrix.mul la lb)) then
          fail "batched lane %d disagrees with integer reference" i
        else if not (F.Matrix.equal kernel_batch.(i) batch.(i)) then
          fail "kernel batched lane %d disagrees with generic batch" i
        else lanes_ok (i + 1)
    in
    lanes_ok 0

let check (c : Case.t) =
  match c.kind with
  | Case.Trace -> ( try check_trace c with e -> fail "exception: %s" (Printexc.to_string e))
  | Case.Matmul -> (
      try check_matmul c with e -> fail "exception: %s" (Printexc.to_string e))
