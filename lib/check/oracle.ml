module T = Tcmm
module F = Tcmm_fastmm
module Th = Tcmm_threshold
module G = Tcmm_graph
module Cn = Tcmm_convnet

let trace_builds : (string, T.Trace_circuit.built) Hashtbl.t = Hashtbl.create 16
let matmul_builds : (string, T.Matmul_circuit.built) Hashtbl.t = Hashtbl.create 16

(* Packed forms of [trace_builds], for the incremental leg: sessions
   memoize their transposed fanout index on the packed value, so
   re-packing per case would defeat that sharing. *)
let trace_packs : (string, Th.Packed.t) Hashtbl.t = Hashtbl.create 16

(* Direct-mode builds, kept separately: their packed form dispatches the
   template-specialized kernels, which is exactly the leg the kernel
   differential wants to pit against the materialized (all-generic)
   builds above. *)
let direct_matmul_builds : (string, T.Matmul_circuit.built) Hashtbl.t =
  Hashtbl.create 16

(* Packed circuits recovered through a save/load round trip of the
   artifact store, keyed like the builds above.  Loading goes through
   the full validation path (checksums, bounds, kernel dispatch tags),
   so a divergence here is shrunk and saved to the corpus exactly like
   an engine bug. *)
let store_loaded : (string, Th.Packed.t) Hashtbl.t = Hashtbl.create 16

let clear_cache () =
  Hashtbl.reset trace_builds;
  Hashtbl.reset matmul_builds;
  Hashtbl.reset direct_matmul_builds;
  Hashtbl.reset store_loaded;
  Hashtbl.reset trace_packs

(* Keep the memo bounded: a long fuzz run touches only a handful of
   configurations, but a pathological generator should not accumulate
   circuits without end. *)
let bound tbl =
  if Hashtbl.length tbl > 24 then Hashtbl.reset tbl

let trace_built (c : Case.t) =
  if c.kind <> Case.Trace then invalid_arg "Oracle.trace_built: not a trace case";
  let key = Case.build_key c in
  match Hashtbl.find_opt trace_builds key with
  | Some b -> b
  | None ->
      bound trace_builds;
      let b =
        T.Trace_circuit.build ~kronpow:c.kronpow
          ~algo:(Case.algo_of_name c.algo)
          ~schedule:(Case.resolve_schedule c) ~signed_inputs:c.signed
          ~entry_bits:c.entry_bits ~tau:c.tau ~n:c.n ()
      in
      Hashtbl.add trace_builds key b;
      b

let trace_packed (c : Case.t) =
  let key = Case.build_key c in
  match Hashtbl.find_opt trace_packs key with
  | Some p -> p
  | None ->
      bound trace_packs;
      let p = T.Trace_circuit.pack (trace_built c) in
      Hashtbl.add trace_packs key p;
      p

let matmul_built (c : Case.t) =
  (* [Conv] cases run through the same matmul circuit (the im2col
     operands are embedded into [n x n]). *)
  if c.kind = Case.Trace then invalid_arg "Oracle.matmul_built: not a matmul case";
  let key = Case.build_key c in
  match Hashtbl.find_opt matmul_builds key with
  | Some b -> b
  | None ->
      bound matmul_builds;
      let b =
        T.Matmul_circuit.build ~kronpow:c.kronpow
          ~algo:(Case.algo_of_name c.algo)
          ~schedule:(Case.resolve_schedule c) ~signed_inputs:c.signed
          ~entry_bits:c.entry_bits ~n:c.n ()
      in
      Hashtbl.add matmul_builds key b;
      b

let direct_matmul_built (c : Case.t) =
  let key = Case.build_key c in
  match Hashtbl.find_opt direct_matmul_builds key with
  | Some b -> b
  | None ->
      bound direct_matmul_builds;
      let b =
        T.Matmul_circuit.build ~mode:Th.Builder.Direct ~kronpow:c.kronpow
          ~algo:(Case.algo_of_name c.algo)
          ~schedule:(Case.resolve_schedule c) ~signed_inputs:c.signed
          ~entry_bits:c.entry_bits ~n:c.n ()
      in
      Hashtbl.add direct_matmul_builds key b;
      b

let fail fmt = Format.kasprintf (fun s -> Error s) fmt

(* One scratch artifact per round trip: written, read back, removed.
   [Artifact.read] keeps the mapping alive through the returned packed
   value even after the file is unlinked. *)
let store_round_trip ~key ~io packed =
  let path = Filename.temp_file "tcmm_oracle" ".tcmm" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let meta =
    {
      Tcmm_store.Artifact.m_key = key;
      m_templates = true;
      m_kernels = true;
      m_build_seconds = 0.;
      m_stats = Th.Stats.zero;
      m_io = io;
    }
  in
  match Tcmm_store.Artifact.write ~path meta packed with
  | Error msg -> Error ("artifact write failed: " ^ msg)
  | Ok _ -> (
      match Tcmm_store.Artifact.read ~key ~path () with
      | Error msg -> Error ("artifact read failed: " ^ msg)
      | Ok a ->
          let loaded = a.Tcmm_store.Artifact.a_packed in
          if not (Th.Packed.structural_equal packed loaded) then
            Error "loaded artifact is not structurally equal to the fresh build"
          else Ok loaded)

let store_loaded_packed (c : Case.t) ~io packed =
  let key = Case.build_key c in
  match Hashtbl.find_opt store_loaded key with
  | Some p -> Ok p
  | None -> (
      bound store_loaded;
      match store_round_trip ~key ~io packed with
      | Ok p ->
          Hashtbl.add store_loaded key p;
          Ok p
      | Error _ as e -> e)

let check_trace (c : Case.t) =
  let built = trace_built c in
  let a = Case.matrix c ~index:0 in
  let expected_trace = T.Trace_circuit.reference a in
  let expected = expected_trace >= c.tau in
  let reference = T.Trace_circuit.run ~engine:Th.Simulator.Reference built a in
  let packed = T.Trace_circuit.run ~engine:Th.Simulator.Packed built a in
  let packed2 = T.Trace_circuit.run ~engine:Th.Simulator.Packed ~domains:2 built a in
  let value = T.Trace_circuit.trace_value built a in
  if value <> expected_trace then
    fail "trace_value %d <> integer reference %d" value expected_trace
  else if reference <> expected then
    fail "Simulator says %b, integer reference says %b (trace %d, tau %d)"
      reference expected expected_trace c.tau
  else if packed <> reference then
    fail "Packed (sequential) says %b, Simulator says %b" packed reference
  else if packed2 <> reference then
    fail "Packed (2 domains) says %b, Simulator says %b" packed2 reference
  else
    (* Batched lanes: the case's matrix plus two further draws. *)
    let lanes = Array.init 3 (fun i -> Case.matrix c ~index:i) in
    let batch = T.Trace_circuit.run_batch built lanes in
    (* Store round-trip leg: the packed circuit through a save / mmap
       load must answer the same lanes identically. *)
    let io =
      Tcmm_store.Artifact.Trace_io
        {
          layout = built.T.Trace_circuit.layout;
          output = built.T.Trace_circuit.output;
          tau = built.T.Trace_circuit.tau;
        }
    in
    match store_loaded_packed c ~io (T.Trace_circuit.pack built) with
    | Error msg -> fail "store round trip: %s" msg
    | Ok loaded ->
        let inputs = Array.map (T.Trace_circuit.encode_input built) lanes in
        let br = Th.Packed.run_batch loaded inputs in
        let out = built.T.Trace_circuit.output in
        let rec lanes_ok i =
          if i >= Array.length lanes then Ok ()
          else
            let want = T.Trace_circuit.reference lanes.(i) >= c.tau in
            if batch.(i) <> want then
              fail "batched lane %d says %b, integer reference says %b" i
                batch.(i) want
            else if Th.Packed.batch_value br ~lane:i out <> batch.(i) then
              fail "store-loaded lane %d disagrees with the fresh build" i
            else lanes_ok (i + 1)
        in
        lanes_ok 0

let check_matmul (c : Case.t) =
  let built = matmul_built c in
  let a = Case.matrix c ~index:0 and b = Case.matrix c ~index:1 in
  let expected = F.Matrix.mul a b in
  let reference = T.Matmul_circuit.run ~engine:Th.Simulator.Reference built ~a ~b in
  let packed = T.Matmul_circuit.run ~engine:Th.Simulator.Packed built ~a ~b in
  let packed2 =
    T.Matmul_circuit.run ~engine:Th.Simulator.Packed ~domains:2 built ~a ~b
  in
  if not (F.Matrix.equal reference expected) then
    fail "Simulator product disagrees with integer reference on %a" Case.pp c
  else if not (F.Matrix.equal packed reference) then
    fail "Packed (sequential) product disagrees with Simulator"
  else if not (F.Matrix.equal packed2 reference) then
    fail "Packed (2 domains) product disagrees with Simulator"
  else
    let pairs =
      Array.init 3 (fun i ->
          ( Case.matrix c ~index:(2 * i),
            Case.matrix c ~index:((2 * i) + 1) ))
    in
    let batch = T.Matmul_circuit.run_batch built pairs in
    (* Kernel leg: the same pairs through a Direct-mode build, whose
       packed form dispatches the template-specialized kernels. *)
    let direct = direct_matmul_built c in
    let kernel_batch = T.Matmul_circuit.run_batch direct pairs in
    (* Store round-trip leg: the kernel-dispatching packed form through
       a save / mmap load (including kernel spec decode) must match. *)
    let io =
      Tcmm_store.Artifact.Matmul_io
        {
          layout_a = direct.T.Matmul_circuit.layout_a;
          layout_b = direct.T.Matmul_circuit.layout_b;
          c_grid = direct.T.Matmul_circuit.c_grid;
        }
    in
    match store_loaded_packed c ~io (T.Matmul_circuit.pack direct) with
    | Error msg -> fail "store round trip: %s" msg
    | Ok loaded ->
        let inputs =
          Array.map
            (fun (la, lb) -> T.Matmul_circuit.encode_inputs direct ~a:la ~b:lb)
            pairs
        in
        let br = Th.Packed.run_batch loaded inputs in
        let loaded_batch =
          Array.init (Array.length pairs) (fun lane ->
              T.Matmul_circuit.decode direct (Th.Packed.batch_value br ~lane))
        in
        let rec lanes_ok i =
          if i >= Array.length pairs then Ok ()
          else
            let la, lb = pairs.(i) in
            if not (F.Matrix.equal batch.(i) (F.Matrix.mul la lb)) then
              fail "batched lane %d disagrees with integer reference" i
            else if not (F.Matrix.equal kernel_batch.(i) batch.(i)) then
              fail "kernel batched lane %d disagrees with generic batch" i
            else if not (F.Matrix.equal loaded_batch.(i) batch.(i)) then
              fail "store-loaded lane %d disagrees with the fresh build" i
            else lanes_ok (i + 1)
        in
        lanes_ok 0

(* The conv leg: the case's im2col workload through the n x n matmul
   circuit — direct convolution, the integer im2col product, and the
   circuit-evaluated product must all agree score-for-score. *)
let check_conv (c : Case.t) =
  let cspec, img, kernels = Case.conv_job c in
  let expected = Cn.Conv.direct cspec img kernels in
  if Cn.Conv.via_matmul cspec img kernels <> expected then
    fail "via_matmul disagrees with direct convolution on %a" Case.pp c
  else
    let built = matmul_built c in
    let patches = Cn.Im2col.patch_matrix cspec img in
    let kmat = Cn.Im2col.kernel_matrix kernels in
    let p = F.Matrix.rows patches and k = F.Matrix.cols kmat in
    let a = Cn.Im2col.embed patches ~n:c.n
    and b = Cn.Im2col.embed kmat ~n:c.n in
    let m = T.Matmul_circuit.run ~engine:Th.Simulator.Packed built ~a ~b in
    let product = F.Matrix.init ~rows:p ~cols:k (fun i j -> F.Matrix.get m i j) in
    if Cn.Im2col.scores_of_product cspec img product <> expected then
      fail "circuit conv scores disagree with direct convolution on %a" Case.pp
        c
    else Ok ()

(* The incremental leg: replay the case's edge-flip batches through one
   [Packed.session] and demand that every intermediate state — the base
   evaluation and each [update] — is bit-identical in every observable
   field to a from-scratch [Packed.run] on the same inputs, and that the
   output bit agrees with plain integer arithmetic on the graph. *)
let check_incremental (c : Case.t) =
  if c.kind <> Case.Trace || c.entry_bits <> 1 || c.signed then
    fail "incremental case must be an unsigned 1-bit trace case"
  else
    let built = trace_built c in
    let packed = trace_packed c in
    let layout = built.T.Trace_circuit.layout in
    let g = ref (Case.graph c) in
    let session =
      Th.Packed.session packed
        (T.Trace_circuit.encode_input built (G.Graph.adjacency !g))
    in
    let compare_state ~where (res : Th.Simulator.result) =
      let adj = G.Graph.adjacency !g in
      let inputs = T.Trace_circuit.encode_input built adj in
      let full = Th.Packed.run packed inputs in
      let expected = T.Trace_circuit.reference adj >= c.tau in
      if Th.Packed.session_inputs session <> inputs then
        fail "%s: session input bits diverge from a fresh encode" where
      else if not (Bytes.equal res.Th.Simulator.values full.Th.Simulator.values)
      then fail "%s: wire values diverge from from-scratch evaluation" where
      else if res.Th.Simulator.outputs <> full.Th.Simulator.outputs then
        fail "%s: outputs diverge from from-scratch evaluation" where
      else if res.Th.Simulator.firings <> full.Th.Simulator.firings then
        fail "%s: firings %d, from-scratch %d" where res.Th.Simulator.firings
          full.Th.Simulator.firings
      else if res.Th.Simulator.level_firings <> full.Th.Simulator.level_firings
      then fail "%s: level_firings diverge from from-scratch evaluation" where
      else
        let fires =
          Bytes.get res.Th.Simulator.values built.T.Trace_circuit.output
          <> '\000'
        in
        if fires <> expected then
          fail "%s: output says %b, integer reference says %b" where fires
            expected
        else Ok ()
    in
    let rec batches idx = function
      | [] -> Ok ()
      | batch :: rest -> (
          let g', delta = G.Stream.delta ~layout !g batch in
          g := g';
          let res = Th.Packed.update session delta in
          match compare_state ~where:(Printf.sprintf "after batch %d" idx) res with
          | Error _ as e -> e
          | Ok () -> batches (idx + 1) rest)
    in
    match compare_state ~where:"base" (Th.Packed.session_result session) with
    | Error _ as e -> e
    | Ok () -> batches 0 c.flips

let check (c : Case.t) =
  if c.flips <> [] then (
    try check_incremental c
    with e -> fail "exception: %s" (Printexc.to_string e))
  else
    match c.kind with
    | Case.Trace -> (
        try check_trace c with e -> fail "exception: %s" (Printexc.to_string e))
    | Case.Matmul -> (
        try check_matmul c with e -> fail "exception: %s" (Printexc.to_string e))
    | Case.Conv -> (
        try check_conv c with e -> fail "exception: %s" (Printexc.to_string e))
