(** The differential fuzzing driver.

    Workloads are drawn from a QCheck2 generator (seeded, so runs are
    reproducible) biased toward small configurations and adversarial
    extremes (signed entries, tau at the exact trace value, the naive
    algorithm's degenerate gamma = 0 schedules).  Failing cases are
    greedily shrunk — each shrink step simplifies one field and is kept
    only while the oracle still fails — and the minimal case is what
    gets persisted to the regression corpus. *)

type failure = {
  case : Case.t;  (** the shrunk (minimal) failing case *)
  original : Case.t;  (** the case as generated *)
  message : string;  (** the oracle's complaint on [case] *)
}

type outcome = { tested : int; failures : failure list }

val gen : Case.t QCheck2.Gen.t

val gen_incremental : Case.t QCheck2.Gen.t
(** Flip-carrying cases for the incremental leg: unsigned 1-bit trace
    circuits with 1-5 edge-flip batches, biased toward
    flip-then-unflip no-op deltas and toward [tau] pinned at the
    post-flip trace value (the boundary a stale cached sum would cross
    wrongly). *)

val shrink : Case.t -> Case.t * string
(** Greedy minimization of a failing case; returns the smallest still
    failing case and its oracle message.  The input case must fail.
    Flip-carrying cases additionally shrink their flip sequence
    (dropping batches, then flips within a batch). *)

val run : ?seed:int -> ?algo:string -> cases:int -> unit -> outcome
(** Fuzz the in-process paths ({!Oracle.check}).  Stops early after 5
    failures.  [algo] pins every generated case to that algorithm,
    remapping [n] onto its power ladder (the `tcmm check --algo`
    slice). *)

val run_incremental : ?seed:int -> ?algo:string -> cases:int -> unit -> outcome
(** Like {!run} but drawing from {!gen_incremental}: every case replays
    its flip batches through one {!Tcmm_threshold.Packed.session},
    demanding bit-identity with from-scratch evaluation at every
    intermediate state ({!Oracle.check_incremental}). *)

val check_server : Tcmm_server.Client.t -> Case.t -> (unit, string) result
(** One differential trial against a live server: the request's result
    must match plain integer arithmetic computed locally. *)

val check_server_incremental :
  Tcmm_server.Client.t -> Case.t -> (unit, string) result
(** One incremental trial through a live server's stateful session
    (protocol v6 [Open_session] / [Update]): the session's output bit
    and firing count after every flip batch must match a local
    from-scratch packed evaluation.  The session is closed on exit. *)

val run_server :
  ?seed:int -> ?algo:string -> cases:int -> Tcmm_server.Client.t -> outcome
(** Fuzz a live server connection (no shrinking across the socket — the
    generated case is reported as-is). *)

val run_server_incremental :
  ?seed:int -> ?algo:string -> cases:int -> Tcmm_server.Client.t -> outcome
(** {!check_server_incremental} over {!gen_incremental} draws ([n]
    clamped to 4 like {!run_server}). *)
