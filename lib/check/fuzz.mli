(** The differential fuzzing driver.

    Workloads are drawn from a QCheck2 generator (seeded, so runs are
    reproducible) biased toward small configurations and adversarial
    extremes (signed entries, tau at the exact trace value, the naive
    algorithm's degenerate gamma = 0 schedules).  Failing cases are
    greedily shrunk — each shrink step simplifies one field and is kept
    only while the oracle still fails — and the minimal case is what
    gets persisted to the regression corpus. *)

type failure = {
  case : Case.t;  (** the shrunk (minimal) failing case *)
  original : Case.t;  (** the case as generated *)
  message : string;  (** the oracle's complaint on [case] *)
}

type outcome = { tested : int; failures : failure list }

val gen : Case.t QCheck2.Gen.t

val shrink : Case.t -> Case.t * string
(** Greedy minimization of a failing case; returns the smallest still
    failing case and its oracle message.  The input case must fail. *)

val run : ?seed:int -> cases:int -> unit -> outcome
(** Fuzz the in-process paths ({!Oracle.check}).  Stops early after 5
    failures. *)

val check_server : Tcmm_server.Client.t -> Case.t -> (unit, string) result
(** One differential trial against a live server: the request's result
    must match plain integer arithmetic computed locally. *)

val run_server :
  ?seed:int -> cases:int -> Tcmm_server.Client.t -> outcome
(** Fuzz a live server connection (no shrinking across the socket — the
    generated case is reported as-is). *)
