module F = Tcmm_fastmm
module Prng = Tcmm_util.Prng

type kind = Trace | Matmul | Conv

type t = {
  kind : kind;
  algo : string;
  schedule : string;
  d : int;
  n : int;
  entry_bits : int;
  signed : bool;
  tau : int;
  seed : int;
  flips : (int * int) list list;
  kronpow : bool;
}

let kind_name = function Trace -> "trace" | Matmul -> "matmul" | Conv -> "conv"

let kind_of_name = function
  | "trace" -> Ok Trace
  | "matmul" -> Ok Matmul
  | "conv" -> Ok Conv
  | s -> Error (Printf.sprintf "unknown case kind %S" s)

(* Flip batches as "0-1,2-3;1-2": batches ';'-separated, pairs within a
   batch ','-separated, one pair "i-j". *)
let flips_to_string flips =
  String.concat ";"
    (List.map
       (fun batch ->
         String.concat ","
           (List.map (fun (i, j) -> Printf.sprintf "%d-%d" i j) batch))
       flips)

let flips_of_string s =
  let ( let* ) = Result.bind in
  let pair p =
    match String.index_opt p '-' with
    | None -> Error (Printf.sprintf "malformed flip %S" p)
    | Some k -> (
        let i = String.sub p 0 k
        and j = String.sub p (k + 1) (String.length p - k - 1) in
        match (int_of_string_opt i, int_of_string_opt j) with
        | Some i, Some j when i >= 0 && j >= 0 -> Ok (i, j)
        | _ -> Error (Printf.sprintf "malformed flip %S" p))
  in
  let batch b =
    List.fold_left
      (fun acc p ->
        let* acc = acc in
        let* f = pair p in
        Ok (f :: acc))
      (Ok [])
      (String.split_on_char ',' b)
    |> Result.map List.rev
  in
  if s = "" then Ok []
  else
    List.fold_left
      (fun acc b ->
        let* acc = acc in
        let* batch = batch b in
        Ok (batch :: acc))
      (Ok [])
      (String.split_on_char ';' s)
    |> Result.map List.rev

let pp ppf c =
  Format.fprintf ppf "%s/%s/%s d=%d n=%d bits=%d%s tau=%d seed=%d%s%s"
    (kind_name c.kind) c.algo c.schedule c.d c.n c.entry_bits
    (if c.signed then " signed" else "")
    c.tau c.seed
    (if c.flips = [] then "" else " flips=" ^ flips_to_string c.flips)
    (if c.kronpow then " kronpow" else "")

let build_key c =
  Printf.sprintf "%s|%s|%s|%d|%d|%d|%b|%d%s" (kind_name c.kind) c.algo
    c.schedule c.d c.n c.entry_bits c.signed
    (match c.kind with Trace -> c.tau | Matmul | Conv -> 0)
    (if c.kronpow then "|kronpow" else "")

let algo_of_name name =
  match
    List.find_opt (fun a -> a.F.Bilinear.name = name) (F.Instances.all ())
  with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Case.algo_of_name: unknown algorithm %S" name)

let resolve_schedule c =
  Tcmm.Level_schedule.resolve ~algo:(algo_of_name c.algo) ~name:c.schedule ~d:c.d
    ~n:c.n

let matrix c ~index =
  let rng = Prng.create ~seed:c.seed in
  (* Skip ahead deterministically so A and B are independent draws. *)
  let rng = ref rng in
  for _ = 1 to index do
    rng := Prng.split !rng
  done;
  let hi = (1 lsl c.entry_bits) - 1 in
  let lo = if c.signed then -hi else 0 in
  F.Matrix.random !rng ~rows:c.n ~cols:c.n ~lo ~hi

(* A distinct seed offset keeps the graph draw independent of the
   matrix stream above: the same case can use both. *)
let graph c =
  let rng = Prng.create ~seed:(c.seed + 0x9e3779) in
  Tcmm_graph.Generate.erdos_renyi rng ~n:c.n ~p:0.4

(* The conv leg's workload, scaled so the im2col operands fit the
   case's [n x n] circuit: a single-channel [side x side] image and two
   2x2 kernels give P = (side - 1)^2 patches and Q = 4 patch values, so
   the largest admissible side is [isqrt n + 1] (and [n >= 4] covers
   Q). *)
let conv_q = 2

let conv_job c =
  if c.n < 4 then invalid_arg "Case.conv_job: conv cases need n >= 4";
  let side =
    let rec grow s = if (s + 1) * (s + 1) <= c.n then grow (s + 1) else s in
    grow 1 + 1
  in
  let hi = (1 lsl c.entry_bits) - 1 in
  let lo = if c.signed then -hi else 0 in
  let rng = Prng.create ~seed:(c.seed + 0x517cc1) in
  let image =
    Tcmm_convnet.Image.random rng ~channels:1 ~height:side ~width:side ~lo ~hi
  in
  let rng = Prng.split rng in
  let k0 =
    Tcmm_convnet.Image.random rng ~channels:1 ~height:conv_q ~width:conv_q ~lo
      ~hi
  in
  let rng = Prng.split rng in
  let k1 =
    Tcmm_convnet.Image.random rng ~channels:1 ~height:conv_q ~width:conv_q ~lo
      ~hi
  in
  ({ Tcmm_convnet.Im2col.q = conv_q; stride = 1 }, image, [| k0; k1 |])

let to_string c =
  String.concat "\n"
    ([
       "tcmm-case 1";
       "kind " ^ kind_name c.kind;
       "algo " ^ c.algo;
       "schedule " ^ c.schedule;
       "d " ^ string_of_int c.d;
       "n " ^ string_of_int c.n;
       "entry_bits " ^ string_of_int c.entry_bits;
       "signed " ^ string_of_bool c.signed;
       "tau " ^ string_of_int c.tau;
       "seed " ^ string_of_int c.seed;
     ]
    (* Written only when present, so pre-incremental corpus files are
       reproduced byte-for-byte. *)
    @ (if c.flips = [] then [] else [ "flips " ^ flips_to_string c.flips ])
    @ (if c.kronpow then [ "kronpow true" ] else [])
    @ [ "" ])

let of_string s =
  let ( let* ) = Result.bind in
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> Error "empty case"
  | header :: fields ->
      let* () =
        if header = "tcmm-case 1" then Ok ()
        else Error (Printf.sprintf "bad case header %S" header)
      in
      let* pairs =
        List.fold_left
          (fun acc line ->
            let* acc = acc in
            match String.index_opt line ' ' with
            | None -> Error (Printf.sprintf "malformed case line %S" line)
            | Some i ->
                let k = String.sub line 0 i in
                let v = String.sub line (i + 1) (String.length line - i - 1) in
                Ok ((k, String.trim v) :: acc))
          (Ok []) fields
      in
      let field k =
        match List.assoc_opt k pairs with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "case is missing field %S" k)
      in
      let int_field k =
        let* v = field k in
        match int_of_string_opt v with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "field %s: not an integer: %S" k v)
      in
      let bool_field k =
        let* v = field k in
        match bool_of_string_opt v with
        | Some b -> Ok b
        | None -> Error (Printf.sprintf "field %s: not a boolean: %S" k v)
      in
      let* kind_s = field "kind" in
      let* kind = kind_of_name kind_s in
      let* algo = field "algo" in
      let* schedule = field "schedule" in
      let* d = int_field "d" in
      let* n = int_field "n" in
      let* entry_bits = int_field "entry_bits" in
      let* signed = bool_field "signed" in
      let* tau = int_field "tau" in
      let* seed = int_field "seed" in
      let* flips =
        match List.assoc_opt "flips" pairs with
        | None -> Ok []
        | Some v -> flips_of_string v
      in
      let* kronpow =
        match List.assoc_opt "kronpow" pairs with
        | None -> Ok false
        | Some _ -> bool_field "kronpow"
      in
      Ok
        {
          kind;
          algo;
          schedule;
          d;
          n;
          entry_bits;
          signed;
          tau;
          seed;
          flips;
          kronpow;
        }

let equal a b = a = b
