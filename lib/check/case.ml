module F = Tcmm_fastmm
module Prng = Tcmm_util.Prng

type kind = Trace | Matmul

type t = {
  kind : kind;
  algo : string;
  schedule : string;
  d : int;
  n : int;
  entry_bits : int;
  signed : bool;
  tau : int;
  seed : int;
}

let kind_name = function Trace -> "trace" | Matmul -> "matmul"

let kind_of_name = function
  | "trace" -> Ok Trace
  | "matmul" -> Ok Matmul
  | s -> Error (Printf.sprintf "unknown case kind %S" s)

let pp ppf c =
  Format.fprintf ppf "%s/%s/%s d=%d n=%d bits=%d%s tau=%d seed=%d"
    (kind_name c.kind) c.algo c.schedule c.d c.n c.entry_bits
    (if c.signed then " signed" else "")
    c.tau c.seed

let build_key c =
  Printf.sprintf "%s|%s|%s|%d|%d|%d|%b|%d" (kind_name c.kind) c.algo c.schedule
    c.d c.n c.entry_bits c.signed
    (match c.kind with Trace -> c.tau | Matmul -> 0)

let algo_of_name name =
  match
    List.find_opt (fun a -> a.F.Bilinear.name = name) (F.Instances.all ())
  with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Case.algo_of_name: unknown algorithm %S" name)

let resolve_schedule c =
  Tcmm.Level_schedule.resolve ~algo:(algo_of_name c.algo) ~name:c.schedule ~d:c.d
    ~n:c.n

let matrix c ~index =
  let rng = Prng.create ~seed:c.seed in
  (* Skip ahead deterministically so A and B are independent draws. *)
  let rng = ref rng in
  for _ = 1 to index do
    rng := Prng.split !rng
  done;
  let hi = (1 lsl c.entry_bits) - 1 in
  let lo = if c.signed then -hi else 0 in
  F.Matrix.random !rng ~rows:c.n ~cols:c.n ~lo ~hi

let to_string c =
  String.concat "\n"
    [
      "tcmm-case 1";
      "kind " ^ kind_name c.kind;
      "algo " ^ c.algo;
      "schedule " ^ c.schedule;
      "d " ^ string_of_int c.d;
      "n " ^ string_of_int c.n;
      "entry_bits " ^ string_of_int c.entry_bits;
      "signed " ^ string_of_bool c.signed;
      "tau " ^ string_of_int c.tau;
      "seed " ^ string_of_int c.seed;
      "";
    ]

let of_string s =
  let ( let* ) = Result.bind in
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> Error "empty case"
  | header :: fields ->
      let* () =
        if header = "tcmm-case 1" then Ok ()
        else Error (Printf.sprintf "bad case header %S" header)
      in
      let* pairs =
        List.fold_left
          (fun acc line ->
            let* acc = acc in
            match String.index_opt line ' ' with
            | None -> Error (Printf.sprintf "malformed case line %S" line)
            | Some i ->
                let k = String.sub line 0 i in
                let v = String.sub line (i + 1) (String.length line - i - 1) in
                Ok ((k, String.trim v) :: acc))
          (Ok []) fields
      in
      let field k =
        match List.assoc_opt k pairs with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "case is missing field %S" k)
      in
      let int_field k =
        let* v = field k in
        match int_of_string_opt v with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "field %s: not an integer: %S" k v)
      in
      let bool_field k =
        let* v = field k in
        match bool_of_string_opt v with
        | Some b -> Ok b
        | None -> Error (Printf.sprintf "field %s: not a boolean: %S" k v)
      in
      let* kind_s = field "kind" in
      let* kind = kind_of_name kind_s in
      let* algo = field "algo" in
      let* schedule = field "schedule" in
      let* d = int_field "d" in
      let* n = int_field "n" in
      let* entry_bits = int_field "entry_bits" in
      let* signed = bool_field "signed" in
      let* tau = int_field "tau" in
      let* seed = int_field "seed" in
      Ok { kind; algo; schedule; d; n; entry_bits; signed; tau; seed }

let equal a b = a = b
