let hash_string s =
  (* FNV-1a, 64-bit: stable across runs and OCaml versions, unlike
     [Hashtbl.hash] which is unspecified. *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "%08Lx" (Int64.logand !h 0xffffffffL)

let save ~dir ~message (c : Case.t) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let body = Case.to_string c in
  let name =
    Printf.sprintf "%s-%s.case" (Case.kind_name c.Case.kind) (hash_string body)
  in
  let path = Filename.concat dir name in
  let comment =
    String.concat ""
      (List.map
         (fun l -> "# " ^ l ^ "\n")
         (String.split_on_char '\n' message))
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (comment ^ body));
  path

let load_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      Case.of_string (really_input_string ic len))

let load_dir dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".case")
    |> List.sort compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           match load_file path with
           | Ok c -> (f, c)
           | Error e -> failwith (Printf.sprintf "corpus %s: %s" path e))
