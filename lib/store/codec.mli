(** Self-describing binary codec combinators for the artifact header.

    Small typed combinators in the style of Zipperposition's [Bij]: a
    ['a t] pairs an encoder and a decoder, composite codecs are built
    from primitives with [pair] / [array] / [view], and every encoded
    value carries a one-byte type tag.  The tags are what make headers
    {i self-describing}: a reader holding a codec that disagrees with
    the writer's (schema drift, stale format, bit rot the CRC happened
    to miss) fails with {!Error} at the first mismatched tag instead of
    silently misparsing — the store turns that into quarantine +
    rebuild.

    This is a header codec, not a bulk one: the packed circuit's
    megabyte-scale sections are written as raw page-aligned words
    outside it (see {!Artifact}), so decode cost never scales with the
    circuit. *)

type 'a t

exception Error of string
(** Raised by {!decode} on tag mismatch, truncation, trailing bytes, or
    a [view] rejecting a value. *)

val encode : 'a t -> 'a -> string
val decode : 'a t -> string -> 'a

val unit : unit t
val bool : bool t

val int : int t
(** Full 63-bit range. *)

val float : float t
val string : string t

val int_array : int array t
(** Raw fixed-width words — no per-element tags, unlike {!array}. *)

val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
val option : 'a t -> 'a option t
val list : 'a t -> 'a list t
val array : 'a t -> 'a array t

val view : inject:('a -> 'b) -> extract:('b -> 'a) -> 'b t -> 'a t
(** Codec for ['a] through its representation as a ['b] (records via
    nested pairs, variants via a tag pairing).  [extract] may raise
    {!Error} to reject representable-but-invalid values. *)
