(** One compiled-circuit artifact file: self-describing header + the
    packed CSR sections as page-aligned flat words.

    {b Layout.}  A file is [magic "TCMMART1"], a u64 header length, the
    {!Codec}-encoded {!header}, a CRC-64 of those header bytes, zero
    padding to a 4 KiB boundary, then each section's words at a
    page-aligned offset recorded in the header's section table.  The
    header carries everything needed to interpret the payload —
    format/kernel revisions, the spec key, builder flags, structural
    counts, circuit stats, the I/O descriptor, and per-section
    [(offset, length, CRC-64)] — so a load is: read + checksum + decode
    the header, one [Unix.map_file] of the whole file, checksum each
    section through the mapped view, and adopt the big vectors by
    aliasing ({!Tcmm_threshold.Packed.load} re-validates structure).
    No per-gate deserialization happens anywhere.

    {b Checksums.}  The header CRC is over its exact bytes.  Section
    CRCs are over {i logical 63-bit words} — each OCaml int contributes
    its eight little-endian bytes with bit 63 as zero — which is
    precisely what an [int]-kind Bigarray view of the file yields, so
    verification streams straight out of the mapping.  (A flip of a
    stored word's bit 63 is the one undetectable corruption, and it is
    also value-neutral: the loaded int is unchanged.)

    {b Atomicity} (temp file + rename) and quarantine policy live in
    {!Store}; this module reads and writes single paths. *)

type io =
  | Matmul_io of {
      layout_a : Tcmm.Encode.t;
      layout_b : Tcmm.Encode.t;
      c_grid : Tcmm_arith.Repr.signed_bits array array;
    }
  | Trace_io of {
      layout : Tcmm.Encode.t;
      output : Tcmm_threshold.Wire.t;
      tau : int;
    }
      (** How to feed and read the circuit — what the serving layer
          needs to answer requests without the original driver value
          (layouts are rebuilt via {!Tcmm.Encode.restore}). *)

type section = {
  s_name : string;
  s_off : int;  (** word offset from the start of the file *)
  s_len : int;  (** length in words *)
  s_crc : int * int;
}

type header = {
  h_format : int;
  h_kernel_rev : int;  (** {!Tcmm_threshold.Kernel.format_rev} at write time *)
  h_key : string;  (** spec key the artifact was compiled for *)
  h_templates : bool;  (** builder flags used for the compile *)
  h_kernels : bool;
  h_created : float;  (** unix time of the write *)
  h_build_seconds : float;  (** what the original build cost *)
  h_num_inputs : int;
  h_num_gates : int;
  h_levels : int;
  h_segments : int;
  h_groups : int;
  h_edges : int;
  h_stats : Tcmm_threshold.Stats.t;
  h_io : io;
  h_sections : section list;
}

type t = {
  a_packed : Tcmm_threshold.Packed.t;
  a_io : io;
  a_header : header;
  a_path : string;
  a_bytes : int;  (** file size *)
  a_kern_recompiled : bool;
      (** the artifact predated {!Tcmm_threshold.Kernel.format_rev} and
          kernels were recompiled from the CSR pools *)
}

val format_version : int

type meta = {
  m_key : string;
  m_templates : bool;
  m_kernels : bool;
  m_build_seconds : float;
  m_stats : Tcmm_threshold.Stats.t;
  m_io : io;
}

val write :
  path:string -> meta -> Tcmm_threshold.Packed.t -> (int, string) result
(** Write one artifact file at [path] (clobbering it), returning its
    size in bytes.  Not atomic on its own — {!Store.save} writes to a
    temp path and renames. *)

val read :
  ?kernels:bool -> ?key:string -> path:string -> unit -> (t, string) result
(** Load and fully verify an artifact: magic, header CRC + decode,
    format version, [key] match when given, section bounds, every
    section CRC, then {!Tcmm_threshold.Packed.load}.  [Error] is a
    human-readable reason; the file is untouched either way. *)

val read_header : path:string -> (header * int, string) result
(** Header and file size only — no mapping, no payload verification.
    What [tcmm artifacts list] runs per file. *)

val pp_header : Format.formatter -> header -> unit
(** Human-readable dump ([tcmm artifacts inspect]). *)
