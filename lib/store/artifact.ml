module Crc64 = Tcmm_util.Crc64
module Packed = Tcmm_threshold.Packed
module Kernel = Tcmm_threshold.Kernel
module Stats = Tcmm_threshold.Stats
module Encode = Tcmm.Encode
module Repr = Tcmm_arith.Repr

(* v2: section CRCs cover the full 63-bit word (v1 masked out the sign
   bit, leaving sign flips of stored weights undetectable). *)
let format_version = 2
let magic = "TCMMART1"
let page = 4096
let page_words = page / 8

type io =
  | Matmul_io of {
      layout_a : Encode.t;
      layout_b : Encode.t;
      c_grid : Repr.signed_bits array array;
    }
  | Trace_io of { layout : Encode.t; output : Tcmm_threshold.Wire.t; tau : int }

type section = { s_name : string; s_off : int; s_len : int; s_crc : int * int }

type header = {
  h_format : int;
  h_kernel_rev : int;
  h_key : string;
  h_templates : bool;
  h_kernels : bool;
  h_created : float;
  h_build_seconds : float;
  h_num_inputs : int;
  h_num_gates : int;
  h_levels : int;
  h_segments : int;
  h_groups : int;
  h_edges : int;
  h_stats : Stats.t;
  h_io : io;
  h_sections : section list;
}

type t = {
  a_packed : Packed.t;
  a_io : io;
  a_header : header;
  a_path : string;
  a_bytes : int;
  a_kern_recompiled : bool;
}

type meta = {
  m_key : string;
  m_templates : bool;
  m_kernels : bool;
  m_build_seconds : float;
  m_stats : Stats.t;
  m_io : io;
}

(* ------------------------------------------------------------------ *)
(* Header codec                                                       *)
(* ------------------------------------------------------------------ *)

let layout_codec : Encode.t Codec.t =
  Codec.view
    ~inject:(fun (l : Encode.t) ->
      ((l.Encode.rows, l.Encode.cols, l.Encode.entry_bits), (l.Encode.signed, l.Encode.base)))
    ~extract:(fun ((rows, cols, entry_bits), (signed, base)) ->
      match Encode.restore ~rows ~cols ~entry_bits ~signed ~base with
      | l -> l
      | exception Invalid_argument m -> raise (Codec.Error m))
    Codec.(pair (triple int int int) (pair bool int))

let sbits_codec : Repr.signed_bits Codec.t =
  Codec.view
    ~inject:(fun (s : Repr.signed_bits) -> (s.Repr.pos_bits, s.Repr.neg_bits))
    ~extract:(fun (pos_bits, neg_bits) -> { Repr.pos_bits; neg_bits })
    Codec.(pair int_array int_array)

let io_codec : io Codec.t =
  Codec.view
    ~inject:(function
      | Matmul_io { layout_a; layout_b; c_grid } ->
          (0, ((Some (layout_a, layout_b, c_grid) : _ option), (None : _ option)))
      | Trace_io { layout; output; tau } ->
          (1, (None, Some (layout, output, tau))))
    ~extract:(function
      | 0, (Some (layout_a, layout_b, c_grid), None) ->
          Matmul_io { layout_a; layout_b; c_grid }
      | 1, (None, Some (layout, output, tau)) -> Trace_io { layout; output; tau }
      | _ -> raise (Codec.Error "invalid io descriptor"))
    Codec.(
      pair int
        (pair
           (option (triple layout_codec layout_codec (array (array sbits_codec))))
           (option (triple layout_codec int int))))

let stats_codec : Stats.t Codec.t =
  Codec.view
    ~inject:(fun (s : Stats.t) ->
      ( (s.Stats.inputs, s.Stats.outputs, s.Stats.gates),
        (s.Stats.edges, s.Stats.depth, s.Stats.max_fan_in),
        (s.Stats.max_abs_weight, s.Stats.gates_by_depth) ))
    ~extract:(fun
        ( (inputs, outputs, gates),
          (edges, depth, max_fan_in),
          (max_abs_weight, gates_by_depth) )
      ->
      {
        Stats.inputs;
        outputs;
        gates;
        edges;
        depth;
        max_fan_in;
        max_abs_weight;
        gates_by_depth;
      })
    Codec.(
      triple (triple int int int) (triple int int int) (pair int int_array))

let section_codec : section Codec.t =
  Codec.view
    ~inject:(fun s -> ((s.s_name, s.s_off, s.s_len), s.s_crc))
    ~extract:(fun ((s_name, s_off, s_len), s_crc) -> { s_name; s_off; s_len; s_crc })
    Codec.(pair (triple string int int) (pair int int))

let header_codec : header Codec.t =
  Codec.view
    ~inject:(fun h ->
      ( ( (h.h_format, h.h_kernel_rev, h.h_key),
          (h.h_templates, h.h_kernels),
          (h.h_created, h.h_build_seconds) ),
        ( (h.h_num_inputs, h.h_num_gates, h.h_levels),
          (h.h_segments, h.h_groups, h.h_edges) ),
        (h.h_stats, h.h_io, h.h_sections) ))
    ~extract:(fun
        ( ( (h_format, h_kernel_rev, h_key),
            (h_templates, h_kernels),
            (h_created, h_build_seconds) ),
          ( (h_num_inputs, h_num_gates, h_levels),
            (h_segments, h_groups, h_edges) ),
          (h_stats, h_io, h_sections) )
      ->
      {
        h_format;
        h_kernel_rev;
        h_key;
        h_templates;
        h_kernels;
        h_created;
        h_build_seconds;
        h_num_inputs;
        h_num_gates;
        h_levels;
        h_segments;
        h_groups;
        h_edges;
        h_stats;
        h_io;
        h_sections;
      })
    Codec.(
      triple
        (triple (triple int int string) (pair bool bool) (pair float float))
        (pair (triple int int int) (triple int int int))
        (triple stats_codec io_codec (list section_codec)))

(* ------------------------------------------------------------------ *)
(* Writing                                                            *)
(* ------------------------------------------------------------------ *)

type ivec = Packed.ivec

(* A section's in-memory source: either an off-heap vector or an OCaml
   int array — both are written as raw words. *)
type src = Vec of ivec | Arr of int array

let src_crc ~len = function
  | Vec v -> Crc64.digest (Crc64.feed_ivec Crc64.init v ~pos:0 ~len)
  | Arr a ->
      let c = ref Crc64.init in
      for i = 0 to len - 1 do
        c := Crc64.feed_word !c a.(i)
      done;
      Crc64.digest !c

let round_up_words w = (w + page_words - 1) / page_words * page_words

let sections_of (s : Packed.sections) =
  let nsegs = Array.length s.Packed.sec_seg_off in
  let ngroups = Array.length s.Packed.sec_grp_weight in
  let nedges = s.Packed.sec_grp_off.(ngroups) in
  let ng = s.Packed.sec_num_gates in
  [
    ("pool_wires", nedges, Vec s.Packed.sec_pool_wires);
    ("pool_weights", nedges, Vec s.Packed.sec_pool_weights);
    ("g_threshold", ng, Vec s.Packed.sec_g_threshold);
    ("g_wire", ng, Vec s.Packed.sec_g_wire);
    ("seg_off", nsegs, Arr s.Packed.sec_seg_off);
    ("seg_fan", nsegs, Arr s.Packed.sec_seg_fan);
    ("seg_gates", nsegs + 1, Arr s.Packed.sec_seg_gates);
    ("seg_grp", nsegs + 1, Arr s.Packed.sec_seg_grp);
    ("grp_off", ngroups + 1, Arr s.Packed.sec_grp_off);
    ("grp_weight", ngroups, Arr s.Packed.sec_grp_weight);
    ("level_segs", Array.length s.Packed.sec_level_segs, Arr s.Packed.sec_level_segs);
    ("outputs", Array.length s.Packed.sec_outputs, Arr s.Packed.sec_outputs);
    ("kern", Array.length s.Packed.sec_kern, Arr s.Packed.sec_kern);
  ]

let crc_string s = Crc64.digest (Crc64.feed_string Crc64.init s)

let pack_crc (hi, lo) =
  Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)

let unpack_crc c =
  ( Int64.to_int (Int64.shift_right_logical c 32),
    Int64.to_int (Int64.logand c 0xFFFFFFFFL) )

let map_words fd ~shared words =
  Bigarray.array1_of_genarray
    (Unix.map_file fd Bigarray.int Bigarray.c_layout shared [| words |])

let write ~path meta packed =
  match
    let secs = Packed.save packed in
    let srcs = sections_of secs in
    let ngroups = Array.length secs.Packed.sec_grp_weight in
    (* Header size does not depend on the values inside it (the codec's
       ints are fixed-width), so encode once with placeholder offsets
       to learn where the payload starts, then re-encode for real. *)
    let mk_header placed =
      {
        h_format = format_version;
        h_kernel_rev = Kernel.format_rev;
        h_key = meta.m_key;
        h_templates = meta.m_templates;
        h_kernels = meta.m_kernels;
        h_created = Unix.time ();
        h_build_seconds = meta.m_build_seconds;
        h_num_inputs = secs.Packed.sec_num_inputs;
        h_num_gates = secs.Packed.sec_num_gates;
        h_levels = secs.Packed.sec_levels;
        h_segments = Array.length secs.Packed.sec_seg_off;
        h_groups = ngroups;
        h_edges = secs.Packed.sec_grp_off.(ngroups);
        h_stats = meta.m_stats;
        h_io = meta.m_io;
        h_sections = placed;
      }
    in
    let dummy =
      List.map (fun (s_name, len, _) -> { s_name; s_off = 0; s_len = len; s_crc = (0, 0) }) srcs
    in
    let header_bytes_len = String.length (Codec.encode header_codec (mk_header dummy)) in
    let payload_start = round_up_words ((8 + 8 + header_bytes_len + 8 + 7) / 8) in
    let cursor = ref payload_start in
    let placed =
      List.map
        (fun (s_name, len, src) ->
          let s_off = !cursor in
          cursor := round_up_words (!cursor + len);
          { s_name; s_off; s_len = len; s_crc = src_crc ~len src })
        srcs
    in
    let total_words = !cursor in
    let hdr = Codec.encode header_codec (mk_header placed) in
    assert (String.length hdr = header_bytes_len);
    let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Unix.ftruncate fd (total_words * 8);
        (if total_words > payload_start then begin
           let map = map_words fd ~shared:true total_words in
           List.iter2
             (fun { s_off; s_len; _ } (_, _, src) ->
               match src with
               | Vec v ->
                   if s_len > 0 then
                     Bigarray.Array1.blit
                       (Bigarray.Array1.sub v 0 s_len)
                       (Bigarray.Array1.sub map s_off s_len)
               | Arr a ->
                   for i = 0 to s_len - 1 do
                     Bigarray.Array1.unsafe_set map (s_off + i) a.(i)
                   done)
             placed srcs
         end);
        let head = Buffer.create (page :> int) in
        Buffer.add_string head magic;
        Buffer.add_int64_le head (Int64.of_int (String.length hdr));
        Buffer.add_string head hdr;
        Buffer.add_int64_le head (pack_crc (crc_string hdr));
        let hb = Buffer.to_bytes head in
        let n = Unix.write fd hb 0 (Bytes.length hb) in
        if n <> Bytes.length hb then failwith "short header write";
        Unix.fsync fd;
        total_words * 8)
  with
  | bytes -> Ok bytes
  | exception e -> Error (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Reading                                                            *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let read_exact fd buf pos len =
  let got = ref 0 in
  while !got < len do
    let n = Unix.read fd buf (pos + !got) (len - !got) in
    if n = 0 then bad "truncated file (wanted %d more header bytes)" (len - !got);
    got := !got + n
  done

(* Read and authenticate the header; returns it with the file size. *)
let header_of_fd fd =
  let size = (Unix.fstat fd).Unix.st_size in
  if size < 24 then bad "file too small (%d bytes)" size;
  let fixed = Bytes.create 16 in
  read_exact fd fixed 0 16;
  if Bytes.sub_string fixed 0 8 <> magic then bad "bad magic";
  let hlen = Int64.to_int (Bytes.get_int64_le fixed 8) in
  if hlen < 0 || hlen > size - 24 then bad "implausible header length %d" hlen;
  let rest = Bytes.create (hlen + 8) in
  read_exact fd rest 0 (hlen + 8);
  let hdr = Bytes.sub_string rest 0 hlen in
  let stored = unpack_crc (Bytes.get_int64_le rest hlen) in
  if not (Crc64.equal stored (crc_string hdr)) then bad "header checksum mismatch";
  let h =
    match Codec.decode header_codec hdr with
    | h -> h
    | exception Codec.Error m -> bad "header decode: %s" m
  in
  if h.h_format <> format_version then
    bad "stale format version %d (current %d)" h.h_format format_version;
  (h, size)

let read_header ~path =
  match
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> header_of_fd fd)
  with
  | r -> Ok r
  | exception Bad m -> Error m
  | exception e -> Error (Printexc.to_string e)

let find_section h name =
  match List.find_opt (fun s -> s.s_name = name) h.h_sections with
  | Some s -> s
  | None -> bad "missing section %S" name

let read ?(kernels = true) ?key ~path () =
  match
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let h, size = header_of_fd fd in
        (match key with
        | Some k when k <> h.h_key ->
            bad "spec key mismatch: artifact is for %S, wanted %S" h.h_key k
        | _ -> ());
        if size mod 8 <> 0 then bad "file size not word-aligned";
        let total_words = size / 8 in
        List.iter
          (fun s ->
            if s.s_off < 0 || s.s_len < 0 || s.s_off + s.s_len > total_words then
              bad "section %S out of bounds (truncated file?)" s.s_name)
          h.h_sections;
        let map = map_words fd ~shared:false total_words in
        let sec name =
          let s = find_section h name in
          if not (Crc64.equal s.s_crc
                    (Crc64.digest (Crc64.feed_ivec Crc64.init map ~pos:s.s_off ~len:s.s_len)))
          then bad "section %S checksum mismatch" s.s_name;
          s
        in
        (* The evaluators index padded vectors, so an empty section
           still needs one backing word. *)
        let vec name =
          let s = sec name in
          if s.s_len > 0 then Bigarray.Array1.sub map s.s_off s.s_len
          else Bigarray.Array1.create Bigarray.int Bigarray.c_layout 1
        in
        let arr name =
          let s = sec name in
          Array.init s.s_len (fun i -> Bigarray.Array1.get map (s.s_off + i))
        in
        let kern_section = arr "kern" in
        let kern_recompiled = h.h_kernel_rev <> Kernel.format_rev in
        let sections =
          {
            Packed.sec_num_inputs = h.h_num_inputs;
            sec_num_gates = h.h_num_gates;
            sec_levels = h.h_levels;
            sec_pool_wires = vec "pool_wires";
            sec_pool_weights = vec "pool_weights";
            sec_g_threshold = vec "g_threshold";
            sec_g_wire = vec "g_wire";
            sec_seg_off = arr "seg_off";
            sec_seg_fan = arr "seg_fan";
            sec_seg_gates = arr "seg_gates";
            sec_seg_grp = arr "seg_grp";
            sec_grp_off = arr "grp_off";
            sec_grp_weight = arr "grp_weight";
            sec_level_segs = arr "level_segs";
            sec_outputs = arr "outputs";
            sec_kern = kern_section;
          }
        in
        match
          Packed.load ~kernels ~recompile:(kernels && kern_recompiled) sections
        with
        | Error m -> bad "invalid packed sections: %s" m
        | Ok packed ->
            {
              a_packed = packed;
              a_io = h.h_io;
              a_header = h;
              a_path = path;
              a_bytes = size;
              a_kern_recompiled = kern_recompiled && kernels;
            })
  with
  | a -> Ok a
  | exception Bad m -> Error m
  | exception e -> Error (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Inspection                                                         *)
(* ------------------------------------------------------------------ *)

let pp_header ppf h =
  let open Format in
  fprintf ppf "@[<v>format:        v%d (kernel rev %d%s)@," h.h_format h.h_kernel_rev
    (if h.h_kernel_rev = Kernel.format_rev then "" else ", stale: loads recompile kernels");
  fprintf ppf "key:           %s@," h.h_key;
  fprintf ppf "flags:         templates=%b kernels=%b@," h.h_templates h.h_kernels;
  let tm = Unix.gmtime h.h_created in
  fprintf ppf "created:       %04d-%02d-%02dT%02d:%02d:%02dZ (build took %.3fs)@,"
    (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour
    tm.Unix.tm_min tm.Unix.tm_sec h.h_build_seconds;
  fprintf ppf "circuit:       %d inputs, %d gates, %d levels, %d segments, %d groups, %d edges@,"
    h.h_num_inputs h.h_num_gates h.h_levels h.h_segments h.h_groups h.h_edges;
  fprintf ppf "stats:         %a@," Stats.pp h.h_stats;
  (match h.h_io with
  | Matmul_io { layout_a; _ } ->
      fprintf ppf "io:            matmul %dx%d, %d entry bits, signed=%b@,"
        layout_a.Encode.rows layout_a.Encode.cols layout_a.Encode.entry_bits
        layout_a.Encode.signed
  | Trace_io { layout; output; tau } ->
      fprintf ppf "io:            trace %dx%d, %d entry bits, output wire %d, tau %d@,"
        layout.Encode.rows layout.Encode.cols layout.Encode.entry_bits output tau);
  fprintf ppf "sections:@,";
  List.iter
    (fun s ->
      fprintf ppf "  %-14s off %10d  words %10d  crc %s@," s.s_name s.s_off s.s_len
        (Crc64.to_hex s.s_crc))
    h.h_sections;
  fprintf ppf "@]"
