(** Spec-keyed artifact directory: the persistent tier behind the
    server's circuit cache and the [tcmm compile] / [tcmm artifacts]
    subcommands.

    One {!Artifact} file per compiled circuit, named by a
    percent-encoded spec key plus [".tcmm"].  All writes are {b temp
    file + atomic rename} (the temp name embeds the pid), so two
    daemons sharing a directory race cleanly: a reader sees either the
    old complete file or the new complete file, never a torn one, and
    the last writer wins with identical content.  Any artifact that
    fails validation on load — bad magic, checksum mismatch, stale
    format version, spec-key mismatch, truncation — is logged and
    {b quarantined} by renaming it to [<name>.corrupt], and the caller
    falls back to a fresh build; a poisoned file can never crash the
    daemon or change an answer, and never gets read twice. *)

type t

type counters = {
  loads : int;  (** artifacts successfully loaded *)
  saves : int;  (** artifacts written *)
  invalid : int;  (** artifacts that failed validation and were quarantined *)
}

val create : ?kernels:bool -> dir:string -> unit -> (t, string) result
(** Open (and [mkdir -p]) an artifact directory.  [kernels] (default
    [true]) is passed through to {!Artifact.read} on every load. *)

val dir : t -> string
val counters : t -> counters

val path_of_key : t -> string -> string
(** Where an artifact for this spec key lives (percent-encoded). *)

val find : t -> key:string -> Artifact.t option
(** Read-through lookup.  [None] when absent {i or} invalid — invalid
    files are quarantined and counted, so the caller just rebuilds. *)

val save :
  t ->
  meta:Artifact.meta ->
  Tcmm_threshold.Packed.t ->
  (int, string) result
(** Write-behind: persist a freshly built circuit (keyed by
    [meta.m_key]) via temp file + atomic rename.  Returns the artifact
    size in bytes. *)

val list : t -> (string * (Artifact.header * int, string) result) list
(** Every [.tcmm] file (by filename, sorted) with its decoded header
    and size, or the reason it could not be read.  Does not verify
    payloads or quarantine. *)

val gc : t -> removed:(string -> unit) -> int
(** Delete quarantined [.corrupt] files, orphaned temp files, and
    artifacts whose header is unreadable or whose format version is
    stale (they would never load again).  Calls [removed] per deleted
    file; returns the number of bytes freed. *)
